//===- examples/log_patterns.cpp - Inferring log-token patterns ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A realistic by-example scenario over a non-binary alphabet: an
/// operator labels a handful of log tokens as well-formed diagnostic
/// codes (a severity letter E/W/I followed by one or more digits) or
/// malformed, and Paresy infers the validation pattern. Demonstrates
/// arbitrary alphabets (Sec. 3: "over arbitrary alphabets") and how
/// cost functions shape the result.
///
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"
#include "regex/Matcher.h"
#include "support/Format.h"

#include <cstdio>

using namespace paresy;

int main() {
  // Labelled tokens scraped from a (synthetic) log stream.
  Spec Examples(
      /*Pos=*/{"E1", "E2", "W1", "W12", "I9", "E10", "I2"},
      /*Neg=*/{"E", "W", "I", "1", "12", "EE", "1E", "W2W", "9I"});
  Alphabet Sigma = Alphabet::of("EWI0129");

  std::printf("Learning a diagnostic-code pattern from %zu+%zu examples\n",
              Examples.Pos.size(), Examples.Neg.size());

  // Uniform costs first.
  SynthOptions Uniform;
  SynthResult R1 = synthesize(Examples, Sigma, Uniform);
  if (!R1.found()) {
    std::printf("failed: %s\n", statusName(R1.Status));
    return 1;
  }
  std::printf("  uniform cost (1,1,1,1,1):   %-28s cost %llu, "
              "%s candidates\n",
              R1.Regex.c_str(), (unsigned long long)R1.Cost,
              withCommas(R1.Stats.CandidatesGenerated).c_str());

  // A star-averse cost function (the paper's (1,1,10,1,1)): repetition
  // must pay for itself, biasing towards enumerated alternatives.
  SynthOptions StarAverse;
  StarAverse.Cost = CostFn(1, 1, 10, 1, 1);
  SynthResult R2 = synthesize(Examples, Sigma, StarAverse);
  if (R2.found())
    std::printf("  star-averse (1,1,10,1,1):   %-28s cost %llu\n",
                R2.Regex.c_str(), (unsigned long long)R2.Cost);

  // Sanity: the uniform result classifies a few unseen tokens.
  RegexManager M;
  ParseResult P = parseRegex(M, R1.Regex);
  if (!P)
    return 1;
  DerivativeMatcher D(M);
  std::printf("  unseen tokens under '%s':\n", R1.Regex.c_str());
  for (const char *Token : {"W9", "E99", "II", "21E"})
    std::printf("    %-4s -> %s\n", Token,
                D.matches(P.Re, Token) ? "accepted" : "rejected");
  return 0;
}
