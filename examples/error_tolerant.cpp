//===- examples/error_tolerant.cpp - The Sec. 5.2 allowed-error sweep ---------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the future-work demonstration of Sec. 5.2 interactively:
/// the same specification solved with an allowed error from 0% to 50%,
/// showing the (roughly exponential) collapse of search cost and the
/// simplification of the returned expression. The bench_error binary
/// prints the paper-formatted table; this example is the walk-through.
///
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"
#include "support/Format.h"

#include <cstdio>

using namespace paresy;

int main() {
  // The specification of Sec. 5.2 (Table 1's first row).
  Spec Examples(
      {"00", "1101", "0001", "0111", "001", "1", "10", "1100", "111",
       "1010"},
      {"", "0", "0000", "0011", "01", "010", "011", "100", "1000",
       "1001", "11", "1110"});
  Alphabet Sigma = Alphabet::of("01");

  std::printf("REI with error (Sec. 5.2): %zu+%zu examples, cost "
              "(1,1,1,1,1)\n\n",
              Examples.Pos.size(), Examples.Neg.size());
  TextTable Table({"Allowed Error", "# REs", "RE", "Cost(RE)"});

  for (int Percent = 0; Percent <= 50; Percent += 5) {
    SynthOptions Opts;
    Opts.AllowedError = double(Percent) / 100.0;
    // The 0% row is the paper's hardest Table 1 instance (took ~85
    // minutes of single-core CPU in our measurements; 26.7 billion
    // candidates on the paper's A100). Cap each row for interactivity;
    // bench_error --timeout N reproduces the full table.
    Opts.TimeoutSeconds = 10;
    SynthResult R = synthesize(Examples, Sigma, Opts);
    Table.addRow({std::to_string(Percent) + " %",
                  R.found()
                      ? withCommas(R.Stats.CandidatesGenerated)
                      : "-",
                  R.found() ? R.Regex : statusName(R.Status),
                  R.found() ? std::to_string(R.Cost) : "-"});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\nMore tolerance => earlier termination: the paper "
              "conjectures an\nexponential dependency between allowed "
              "error and synthesis cost.\n");
  return 0;
}
