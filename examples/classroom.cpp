//===- examples/classroom.cpp - Paresy vs AlphaRegex on assignments -----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Side-by-side run of the bottom-up Paresy search and the top-down
/// AlphaRegex baseline on a handful of the classroom instances
/// (benchgen/AlphaSuite.h) - a miniature of the paper's Table 2, with
/// the AlphaRegex-comparable cost function (20, 20, 20, 5, 30).
///
//===----------------------------------------------------------------------===//

#include "baseline/AlphaRegex.h"
#include "benchgen/AlphaSuite.h"
#include "core/Synthesizer.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <cstdio>

using namespace paresy;

int main() {
  const CostFn TableCost(20, 20, 20, 5, 30);
  Alphabet Sigma = Alphabet::of("01");

  TextTable Table({"No", "Assignment", "Paresy", "AlphaRegex",
                   "Cost(P/A)", "#REs(P/A)"});

  // The lightest instances; the full 25 run in bench_table2.
  for (const char *Name : {"no1", "no2", "no11", "no15", "no18", "no19",
                           "no23", "no24"}) {
    const benchgen::SuiteInstance *Inst = nullptr;
    for (const auto &Candidate : benchgen::alphaRegexSuite())
      if (std::string(Candidate.Name) == Name)
        Inst = &Candidate;
    if (!Inst)
      continue;

    SynthOptions POpts;
    POpts.Cost = TableCost;
    SynthResult P = synthesize(Inst->Examples, Sigma, POpts);

    baseline::AlphaRegexOptions AOpts;
    AOpts.Cost = TableCost;
    AOpts.TimeoutSeconds = 30;
    baseline::AlphaRegexResult A =
        baseline::alphaRegexSynthesize(Inst->Examples, Sigma, AOpts);

    Table.addRow(
        {Name, Inst->Description,
         P.found() ? P.Regex : statusName(P.Status),
         A.found() ? A.Regex : statusName(A.Status),
         (P.found() && A.found())
             ? std::to_string(P.Cost) + "/" + std::to_string(A.Cost)
             : "-",
         withCommas(P.Stats.CandidatesGenerated) + "/" +
             withCommas(A.Checked)});
  }

  std::printf("%s", Table.render().c_str());
  std::printf("\nBoth engines verify their answers against the examples;"
              "\nequal costs confirm both found a minimum (this "
              "reimplementation's\nAlphaRegex pruning is language-"
              "preserving, unlike the original's).\n");
  return 0;
}
