//===- examples/paresy_cli.cpp - Command-line regular expression inference ----===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A complete command-line front end over the public API:
///
///   paresy_cli [options] <specfile>
///   paresy_cli [options] --pos 10,101,100 --neg ,0,1
///
/// Spec files use the '+example' / '-example' line format (see
/// lang/Spec.h). Options:
///
///   --backend NAME                search backend: any registered name
///                                 (cpu, cpu-parallel, gpusim, hetero,
///                                 ...) or alpharegex (default cpu);
///                                 hetero co-schedules each level across
///                                 the CPU and GPU-sim engines with
///                                 work stealing (DESIGN.md Sec. 10)
///   --jobs N                      worker threads for parallel backends
///                                 (default: backend's choice)
///   --engine cpu|gpu|alpharegex   legacy alias for --backend (gpu
///                                 means gpusim)
///   --cost c1,c2,c3,c4,c5         cost homomorphism (default 1,1,1,1,1)
///   --error FRACTION              allowed error in [0,1) (default 0)
///   --max-cost N                  cost budget (default: overfit bound)
///   --memory-mb N                 cache budget in MiB (default 256)
///   --memory-limit N              hard RAM cap in MiB: same budget as
///                                 --memory-mb, but enforced on
///                                 *resident* bytes through the
///                                 compressed store (DESIGN.md Sec. 11)
///   --compress-store              per-row codec for sealed levels
///                                 without changing the budget
///   --spill-dir DIR               tiering: sealed chunks beyond the
///                                 pinned budget spill to DIR and page
///                                 back on demand (implies compression)
///   --shards N                    hash-partitioned shards of the
///                                 search state, 1..64 (default 1;
///                                 results are identical for every
///                                 value while the memory budget
///                                 holds - see DESIGN.md Sec. 8)
///   --timeout SECONDS             wall-clock limit (default none)
///   --alphabet CHARS              alphabet (default: inferred)
///   --wildcard                    AlphaRegex wild-card heuristic
///   --portfolio                   race result-equivalent sweep
///                                 configurations (guide table, shards,
///                                 padding) on the chosen backend and
///                                 return the first winner, cancelling
///                                 the losers (engine/Portfolio.h)
///   --stats                       print search statistics
///
/// Anytime synthesis (resumable sessions, DESIGN.md Sec. 9):
///
///   --checkpoint FILE             if the search stops on a budget
///                                 (Timeout/NotFound), write the parked
///                                 session to FILE; a later run resumes
///                                 it instead of restarting from level 1
///   --resume FILE                 restore the session from FILE (same
///                                 spec and options; --max-cost and
///                                 --timeout may be larger) and continue
///
/// Serving mode (the repeated-workload demo over service/SynthService):
///
///   --serve-demo N                replay the request N times through a
///                                 caching synthesis service and print
///                                 per-round times plus service stats;
///                                 each round permutes the example
///                                 order to show canonicalization
///   --serve-workers K             service worker threads (default 0 =
///                                 synchronous; in --serve mode: server
///                                 worker threads, default 1)
///
/// Interactive refinement (spec-delta resynthesis, DESIGN.md Sec. 14):
///
///   --repl                        read edit commands from stdin:
///                                 '+WORD' / '-WORD' add a positive /
///                                 negative example (a bare '+' or '-'
///                                 adds the empty word), '=' or an
///                                 empty line synthesizes the current
///                                 spec, 'show' prints it, 'stats' the
///                                 service counters, 'quit' exits. An
///                                 example-adding edit grafts the
///                                 previous round's parked sweep and
///                                 resumes it instead of restarting
///                                 cold; the result is bit-identical
///                                 either way. A spec file or
///                                 --pos/--neg seeds the first round.
///
/// Network serving (the real multi-tenant server, DESIGN.md Sec. 12):
///
///   --serve PORT                  serve the wire protocol on
///                                 127.0.0.1:PORT (0 picks an ephemeral
///                                 port) with the backend/options above
///                                 as server defaults; runs until
///                                 SIGINT/SIGTERM, then prints stats
///   --connect HOST:PORT           client mode: submit the spec to a
///                                 running server, print streamed
///                                 progress frames and the result
///   --tenant NAME                 tenant identity for --connect
///                                 (default "default")
///
/// Distributed execution (coordinator + shard workers, DESIGN.md
/// Sec. 13; results are bit-identical to every in-process backend at
/// every worker count):
///
///   --workers-dist N              run the sweep on N in-process
///                                 virtual shard workers (the "dist"
///                                 backend over loopback channels)
///   --coordinator PORT            coordinate a worker cluster: listen
///                                 on 127.0.0.1:PORT, wait for
///                                 --workers-dist N joiners (default
///                                 2), then run the spec across them;
///                                 late joiners are admitted by live
///                                 resharding at level boundaries
///   --join HOST:PORT              be a shard worker: connect to a
///                                 --coordinator and serve until
///                                 shutdown (no spec needed)
///   --reshard N                   grow the cluster to N workers at
///                                 the first level boundary (live
///                                 migration; implies the "dist"
///                                 backend when none was chosen)
///
/// The plain registry-backend path also runs through a (one-request)
/// SynthService, so the CLI exercises the full serving stack.
///
//===----------------------------------------------------------------------===//

#include "baseline/AlphaRegex.h"
#include "core/ShardedStore.h"
#include "dist/Channel.h"
#include "dist/Coordinator.h"
#include "dist/Worker.h"
#include "core/Snapshot.h"
#include "core/Synthesizer.h"
#include "engine/BackendRegistry.h"
#include "engine/Session.h"
#include "gpusim/GpuSynthesizer.h"
#include "regex/Matcher.h"
#include "serve/Client.h"
#include "serve/SynthServer.h"
#include "service/SynthService.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace paresy;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: paresy_cli [options] <specfile>\n"
               "       paresy_cli [options] --pos a,b,c --neg d,e\n"
               "see the header of examples/paresy_cli.cpp for options\n");
  std::exit(2);
}

std::vector<std::string> splitCommas(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Begin = 0;
  for (;;) {
    size_t Comma = Text.find(',', Begin);
    if (Comma == std::string::npos) {
      Out.push_back(Text.substr(Begin));
      return Out;
    }
    Out.push_back(Text.substr(Begin, Comma - Begin));
    Begin = Comma + 1;
  }
}

bool parseCost(const std::string &Text, CostFn &Out) {
  std::vector<std::string> Parts = splitCommas(Text);
  if (Parts.size() != 5)
    return false;
  uint32_t Values[5];
  for (int I = 0; I != 5; ++I) {
    char *End = nullptr;
    long V = std::strtol(Parts[size_t(I)].c_str(), &End, 10);
    if (*End || V <= 0)
      return false;
    Values[I] = uint32_t(V);
  }
  Out = CostFn(Values[0], Values[1], Values[2], Values[3], Values[4]);
  return true;
}

void printStats(const SynthStats &St) {
  std::printf("  universe (#ic)     %llu words, %llu x 64-bit CS\n",
              (unsigned long long)St.UniverseSize,
              (unsigned long long)St.CsWords);
  std::printf("  guide pairs        %s\n",
              withCommas(St.GuidePairs).c_str());
  std::printf("  candidates (#REs)  %s\n",
              withCommas(St.CandidatesGenerated).c_str());
  std::printf("  unique languages   %s\n",
              withCommas(St.UniqueLanguages).c_str());
  std::printf("  cache entries      %s (%s bytes)\n",
              withCommas(St.CacheEntries).c_str(),
              withCommas(St.MemoryBytes).c_str());
  std::printf("  precompute/search  %s s / %s s\n",
              formatSeconds(St.PrecomputeSeconds).c_str(),
              formatSeconds(St.SearchSeconds).c_str());
  if (St.ShardCount > 1) {
    std::printf("  shards             %llu (rows per shard:",
                (unsigned long long)St.ShardCount);
    for (uint64_t Rows : St.ShardRows)
      std::printf(" %llu", (unsigned long long)Rows);
    std::printf(")\n");
  }
  if (St.HeteroCpuTasks + St.HeteroGpuTasks > 0) {
    std::printf("  hetero split       cpu %s / gpu %s tasks "
                "(%s steals, final cpu share %.2f)\n",
                withCommas(St.HeteroCpuTasks).c_str(),
                withCommas(St.HeteroGpuTasks).c_str(),
                withCommas(St.HeteroSteals).c_str(), St.HeteroCpuShare);
    std::printf("  hetero co-sched    %s s modelled concurrent kernels\n",
                formatSeconds(St.HeteroCoschedSeconds).c_str());
  }
  if (St.StoreCompressed) {
    std::printf("  store              compressed %.2fx (%s sealed + %s "
                "window rows, %s compressed bytes)\n",
                St.StoreCompressionRatio,
                withCommas(St.StoreSealedRows).c_str(),
                withCommas(St.StoreWindowRows).c_str(),
                withCommas(St.StoreCompressedBytes).c_str());
    std::printf("  codec mix          raw %s, all-zero %s, sparse-bits "
                "%s, sparse-words %s\n",
                withCommas(St.StoreCodecRows[0]).c_str(),
                withCommas(St.StoreCodecRows[1]).c_str(),
                withCommas(St.StoreCodecRows[2]).c_str(),
                withCommas(St.StoreCodecRows[3]).c_str());
    if (St.StoreSpilledChunks > 0 || St.StoreHotChunks > 0)
      std::printf("  store tiers        hot %s chunk(s) / %s bytes, "
                  "spilled %s chunk(s) / %s bytes\n",
                  withCommas(St.StoreHotChunks).c_str(),
                  withCommas(St.StoreHotBytes).c_str(),
                  withCommas(St.StoreSpilledChunks).c_str(),
                  withCommas(St.StoreSpilledBytes).c_str());
  }
  if (St.DistWorkers > 0) {
    std::printf("  dist workers       %u (%s rows / %s bytes exchanged)\n",
                St.DistWorkers, withCommas(St.DistExchangedRows).c_str(),
                withCommas(St.DistExchangedBytes).c_str());
    if (St.DistMigrations > 0)
      std::printf("  dist migrations    %llu (%s s)\n",
                  (unsigned long long)St.DistMigrations,
                  formatSeconds(St.DistMigrationSeconds).c_str());
  }
  if (St.OnTheFly)
    std::printf("  note               entered OnTheFly mode\n");
}

bool readFileBytes(const std::string &Path, std::string &Out,
                   std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "' for reading";
    return false;
  }
  char Buf[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, Read);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok)
    Error = "error reading '" + Path + "'";
  return Ok;
}

bool writeFileBytes(const std::string &Path, const std::string &Bytes,
                    std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok)
    Error = "error writing '" + Path + "'";
  return Ok;
}

/// Rotates both example lists by \p Shift: a different request text
/// with the identical canonical form, so every round past the first is
/// a service cache hit.
Spec rotatedSpec(const Spec &S, size_t Shift) {
  Spec Out = S;
  auto Rotate = [Shift](std::vector<std::string> &V) {
    if (V.size() > 1)
      std::rotate(V.begin(),
                  V.begin() + ptrdiff_t(Shift % V.size()), V.end());
  };
  Rotate(Out.Pos);
  Rotate(Out.Neg);
  return Out;
}

/// The repeated-workload demo: one spec, \p Rounds submissions.
int runServeDemo(paresy::service::SynthService &Service, const Spec &S,
                 const Alphabet &Sigma, const SynthOptions &Options,
                 unsigned Rounds) {
  // Self-describing demo logs: the resolved execution configuration
  // up front, so a pasted transcript answers "what ran this?". The
  // banner is shared with --serve (service/SynthService.h).
  std::printf("%s\n",
              service::serviceBanner(Service.options(), Options).c_str());
  SynthResult First;
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    WallTimer Timer;
    SynthResult R = Service.synthesize(rotatedSpec(S, Round), Sigma,
                                       Options);
    double Millis = Timer.millis();
    if (!R.found()) {
      std::printf("round %u: %s %s\n", Round + 1, statusName(R.Status),
                  R.Message.c_str());
      return 1;
    }
    if (Round == 0)
      First = R;
    else if (R.Regex != First.Regex) {
      std::fprintf(stderr, "internal error: round %u diverged\n",
                   Round + 1);
      return 1;
    }
    std::printf("round %u: %s  (cost %llu, %.3f ms)\n", Round + 1,
                R.Regex.c_str(), (unsigned long long)R.Cost, Millis);
  }
  // The same stats text a network client gets from a StatsReq frame.
  std::fputs(service::serviceStatsText(Service.stats()).c_str(), stdout);
  return 0;
}

/// The --repl mode: an interactive refinement loop over one caching
/// service. Every round submits the full current spec; when the edit
/// only added examples, the service grafts the previous round's parked
/// sweep via spec-delta resynthesis (engine/DeltaStage.h) instead of
/// restarting cold, and the per-round note says which path served it.
int runRepl(const std::string &Engine, unsigned Workers,
            const engine::BackendConfig &Config, Spec Examples,
            const std::string &AlphabetChars, const SynthOptions &Options) {
  service::ServiceOptions SOpts;
  SOpts.Backend = Engine;
  SOpts.Workers = Workers;
  SOpts.Kernels = Config;
  SOpts.Portfolio = Options.Portfolio;
  service::SynthService Service(std::move(SOpts));
  std::printf("%s\n",
              service::serviceBanner(Service.options(), Options).c_str());
  std::printf("repl: +WORD / -WORD add examples (bare +/- adds the empty "
              "word); '=' or an empty\n"
              "      line synthesizes; show | stats | quit. Edits that "
              "only add examples reuse\n"
              "      the previous sweep.\n");

  RegexManager M;
  auto Synthesize = [&]() {
    Alphabet Sigma;
    std::string Error;
    if (!AlphabetChars.empty())
      Sigma = Alphabet::create(AlphabetChars, &Error);
    else if (!inferAlphabet(Examples, Sigma, &Error))
      Sigma = Alphabet();
    if (!Error.empty()) {
      std::printf("error: %s\n", Error.c_str());
      return;
    }
    service::ServiceStats Before = Service.stats();
    WallTimer Timer;
    SynthResult R = Service.synthesize(Examples, Sigma, Options);
    double Millis = Timer.millis();
    service::ServiceStats After = Service.stats();
    if (!R.found()) {
      std::printf("result: %s %s\n", statusName(R.Status),
                  R.Message.c_str());
      return;
    }
    ParseResult Parsed = parseRegex(M, R.Regex);
    if (Options.AllowedError == 0 &&
        !(Parsed &&
          satisfiesExamples(M, Parsed.Re, Examples.Pos, Examples.Neg))) {
      std::printf("internal error: result failed verification\n");
      return;
    }
    std::printf("result: %s  (cost %llu, %.3f ms)\n", R.Regex.c_str(),
                (unsigned long long)R.Cost, Millis);
    if (After.DeltaHits > Before.DeltaHits)
      std::printf("  via spec-delta graft: %llu level(s) skipped, %llu "
                  "replayed, %llu column(s) appended\n",
                  (unsigned long long)(After.DeltaLevelsSkipped -
                                       Before.DeltaLevelsSkipped),
                  (unsigned long long)(After.DeltaLevelsReplayed -
                                       Before.DeltaLevelsReplayed),
                  (unsigned long long)(After.DeltaColumnsAppended -
                                       Before.DeltaColumnsAppended));
    else if (After.Hits > Before.Hits)
      std::printf("  via result cache\n");
    else if (After.SessionsResumed > Before.SessionsResumed)
      std::printf("  via resumed parked session\n");
  };

  char Line[4096];
  for (;;) {
    std::printf("paresy> ");
    std::fflush(stdout);
    if (!std::fgets(Line, sizeof Line, stdin))
      break;
    std::string Cmd = Line;
    while (!Cmd.empty() && (Cmd.back() == '\n' || Cmd.back() == '\r'))
      Cmd.pop_back();
    if (Cmd == "quit" || Cmd == "exit")
      break;
    if (Cmd == "show") {
      std::printf("%s", Examples.toText().c_str());
    } else if (Cmd == "stats") {
      std::fputs(service::serviceStatsText(Service.stats()).c_str(),
                 stdout);
    } else if (Cmd.empty() || Cmd == "=" || Cmd == "go") {
      Synthesize();
    } else if (Cmd[0] == '+') {
      Examples.Pos.push_back(Cmd.substr(1));
    } else if (Cmd[0] == '-') {
      Examples.Neg.push_back(Cmd.substr(1));
    } else {
      std::printf("unknown command '%s' (want +WORD, -WORD, =, show, "
                  "stats, quit)\n",
                  Cmd.c_str());
    }
  }
  std::fputs(service::serviceStatsText(Service.stats()).c_str(), stdout);
  return 0;
}

/// The --join mode: one shard worker process serving one coordinator
/// until shutdown. Needs no spec - Init carries it.
int runJoin(const std::string &Addr) {
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == Addr.size()) {
    std::fprintf(stderr, "error: --join wants HOST:PORT\n");
    return 2;
  }
  std::string Host = Addr.substr(0, Colon);
  long Port = std::atol(Addr.c_str() + Colon + 1);
  if (Port <= 0 || Port > 65535) {
    std::fprintf(stderr, "error: bad port in --join '%s'\n", Addr.c_str());
    return 2;
  }
  std::string Error;
  Socket S = connectTo(Host, uint16_t(Port), &Error);
  if (!S.valid()) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("joined coordinator at %s; serving as shard worker\n",
              Addr.c_str());
  std::fflush(stdout);
  dist::SocketChannel Ch(std::move(S));
  bool Clean = dist::runWorker(Ch);
  std::printf("worker done (%s)\n",
              Clean ? "clean shutdown" : "coordinator lost");
  return Clean ? 0 : 1;
}

/// Builds the distributed backend for the direct-session path:
/// --coordinator accepts real --join workers from the network,
/// otherwise in-process virtual workers stand in (same code path).
std::unique_ptr<dist::DistBackend> makeDistBackend(long CoordinatorPort,
                                                   unsigned Workers) {
  if (CoordinatorPort < 0)
    return dist::DistBackend::inProcess(Workers);
  auto L = std::make_shared<Listener>();
  std::string Error;
  if (!L->open("127.0.0.1", uint16_t(CoordinatorPort), &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return nullptr;
  }
  unsigned Want = Workers ? Workers : 2;
  std::printf("coordinating on 127.0.0.1:%u; waiting for %u worker(s) "
              "(paresy_cli --join 127.0.0.1:%u)\n",
              unsigned(L->port()), Want, unsigned(L->port()));
  std::fflush(stdout);
  std::vector<std::unique_ptr<dist::ShardChannel>> Channels;
  while (Channels.size() < Want) {
    Socket S = L->accept(500);
    if (!S.valid())
      continue;
    Channels.push_back(
        std::make_unique<dist::SocketChannel>(std::move(S)));
    std::printf("worker %zu joined\n", Channels.size() - 1);
    std::fflush(stdout);
  }
  dist::DistClusterOptions Cluster;
  // Late joiners are admitted at level boundaries by live resharding:
  // the coordinator polls the listener whenever it wants to grow.
  Cluster.JoinPoll = [L]() -> std::unique_ptr<dist::ShardChannel> {
    Socket S = L->accept(0);
    if (!S.valid())
      return nullptr;
    return std::make_unique<dist::SocketChannel>(std::move(S));
  };
  return dist::DistBackend::overChannels(std::move(Channels),
                                         std::move(Cluster));
}

volatile std::sig_atomic_t GStopServing = 0;
void onStopSignal(int) { GStopServing = 1; }

/// The --serve mode: a real multi-tenant TCP server over the wire
/// protocol, configured from the same CLI options as a local search.
int runServe(const std::string &Engine, uint16_t Port, unsigned Workers,
             const engine::BackendConfig &Config,
             const SynthOptions &Options) {
  serve::ServerOptions SrvOpts;
  SrvOpts.Port = Port;
  SrvOpts.Workers = Workers ? Workers : 1;
  SrvOpts.Service.Backend = Engine;
  SrvOpts.Service.Kernels = Config;
  SrvOpts.Service.Portfolio = Options.Portfolio;
  SrvOpts.Defaults = Options;
  serve::SynthServer Server(std::move(SrvOpts));
  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%s\n", Server.banner().c_str());
  std::printf("serving on %s:%u\n", Server.options().Host.c_str(),
              unsigned(Server.port()));
  std::fflush(stdout);
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);
  while (!GStopServing)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Server.stop();
  std::fputs(Server.statsText().c_str(), stdout);
  return 0;
}

/// The --connect mode: submit the spec to a running server and print
/// the streamed anytime frames plus the final result.
int runConnect(const std::string &Addr, const std::string &Tenant,
               const Spec &Examples, const std::string &AlphabetChars,
               const SynthOptions &Options, bool ShowStats) {
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == Addr.size()) {
    std::fprintf(stderr, "error: --connect wants HOST:PORT\n");
    return 2;
  }
  std::string Host = Addr.substr(0, Colon);
  long Port = std::atol(Addr.c_str() + Colon + 1);
  if (Port <= 0 || Port > 65535) {
    std::fprintf(stderr, "error: bad port in --connect '%s'\n",
                 Addr.c_str());
    return 2;
  }
  serve::ServeClient Client;
  std::string Error;
  if (!Client.connect(Host, uint16_t(Port), Tenant, 1.0, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("connected: %s\n", Client.banner().c_str());
  if (!Client.submit(1, Examples, AlphabetChars, Options)) {
    std::fprintf(stderr, "error: connection closed on submit\n");
    return 1;
  }
  serve::Frame F;
  for (;;) {
    if (!Client.next(F, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    if (F.Type == serve::FrameType::Progress) {
      std::printf("progress: no solution of cost <= %llu (horizon "
                  "%llu); best %s (cost %llu), %s candidates, %s s\n",
                  (unsigned long long)F.Progress.CompletedCost,
                  (unsigned long long)F.Progress.Horizon,
                  F.Progress.BestRegex.c_str(),
                  (unsigned long long)F.Progress.BestCost,
                  withCommas(F.Progress.Candidates).c_str(),
                  formatSeconds(F.Progress.ConsumedSeconds).c_str());
      continue;
    }
    if (F.Type == serve::FrameType::Overloaded) {
      std::printf("overloaded: %s%s\n", F.Overloaded.Reason.c_str(),
                  F.Overloaded.Retryable ? " (retryable)" : "");
      return 3;
    }
    if (F.Type == serve::FrameType::Error) {
      std::fprintf(stderr, "error: server said: %s\n",
                   F.Error.Message.c_str());
      return 1;
    }
    if (F.Type == serve::FrameType::Result)
      break;
  }
  const serve::ResultFrame &R = F.Result;
  if (SynthStatus(R.Status) != SynthStatus::Found) {
    std::printf("result: %s %s\n", statusName(SynthStatus(R.Status)),
                R.Message.c_str());
    if (R.Parked)
      std::printf("note: session parked server-side; resubmitting with "
                  "an equal-or-wider budget resumes it\n");
    return 1;
  }
  std::printf("result: %s  (cost %llu)\n", R.Regex.c_str(),
              (unsigned long long)R.Cost);
  // Verify locally, exactly like the in-process path.
  RegexManager M;
  ParseResult Parsed = parseRegex(M, R.Regex);
  if (Options.AllowedError == 0 &&
      !(Parsed &&
        satisfiesExamples(M, Parsed.Re, Examples.Pos, Examples.Neg))) {
    std::fprintf(stderr, "internal error: result failed verification\n");
    return 1;
  }
  if (ShowStats && Client.requestStats() && Client.next(F) &&
      F.Type == serve::FrameType::StatsReply)
    std::fputs(F.Stats.Text.c_str(), stdout);
  Client.goodbye();
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Engine = "cpu";
  SynthOptions Options;
  engine::BackendConfig Config;
  bool Wildcard = false;
  bool ShowStats = false;
  unsigned ServeDemoRounds = 0;
  unsigned ServeWorkers = 0;
  bool ServeMode = false;
  bool ReplMode = false;
  long ServePort = 0;
  std::string ConnectAddr;
  std::string Tenant = "default";
  long CoordinatorPort = -1;
  std::string JoinAddr;
  unsigned ReshardWorkers = 0;
  std::string CheckpointFile;
  std::string ResumeFile;
  std::string AlphabetChars;
  std::string SpecFile;
  Spec Examples;
  bool InlineSpec = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= Argc)
        usage();
      return Argv[++I];
    };
    if (Arg == "--engine" || Arg == "--backend") {
      Engine = Next();
      if (Engine == "gpu")
        Engine = "gpusim"; // Legacy --engine spelling.
    } else if (Arg == "--jobs") {
      long Jobs = std::atol(Next().c_str());
      if (Jobs < 0) {
        std::fprintf(stderr, "error: --jobs wants a non-negative count\n");
        return 2;
      }
      Config.Workers = unsigned(Jobs);
    } else if (Arg == "--cost") {
      if (!parseCost(Next(), Options.Cost)) {
        std::fprintf(stderr, "error: bad --cost (want c1,c2,c3,c4,c5)\n");
        return 2;
      }
    } else if (Arg == "--error")
      Options.AllowedError = std::atof(Next().c_str());
    else if (Arg == "--max-cost")
      Options.MaxCost = uint64_t(std::atoll(Next().c_str()));
    else if (Arg == "--memory-mb")
      Options.MemoryLimitBytes =
          uint64_t(std::atoll(Next().c_str())) << 20;
    else if (Arg == "--memory-limit") {
      // The hard-cap spelling: same budget, enforced on resident bytes
      // through the compressed store.
      Options.MemoryLimitBytes =
          uint64_t(std::atoll(Next().c_str())) << 20;
      Options.CompressStore = true;
    } else if (Arg == "--compress-store")
      Options.CompressStore = true;
    else if (Arg == "--spill-dir")
      Options.SpillDir = Next();
    else if (Arg == "--timeout")
      Options.TimeoutSeconds = std::atof(Next().c_str());
    else if (Arg == "--shards") {
      long Shards = std::atol(Next().c_str());
      if (Shards < 1 || Shards > long(ShardedStore::MaxShards)) {
        std::fprintf(stderr, "error: --shards wants a count in [1, %u]\n",
                     ShardedStore::MaxShards);
        return 2;
      }
      Options.Shards = unsigned(Shards);
    }
    else if (Arg == "--alphabet")
      AlphabetChars = Next();
    else if (Arg == "--wildcard")
      Wildcard = true;
    else if (Arg == "--repl")
      ReplMode = true;
    else if (Arg == "--portfolio")
      Options.Portfolio = true;
    else if (Arg == "--stats")
      ShowStats = true;
    else if (Arg == "--serve-demo") {
      long Rounds = std::atol(Next().c_str());
      if (Rounds <= 0) {
        std::fprintf(stderr, "error: --serve-demo wants a round count\n");
        return 2;
      }
      ServeDemoRounds = unsigned(Rounds);
    } else if (Arg == "--serve") {
      ServePort = std::atol(Next().c_str());
      if (ServePort < 0 || ServePort > 65535) {
        std::fprintf(stderr, "error: --serve wants a port in [0, 65535]\n");
        return 2;
      }
      ServeMode = true;
    } else if (Arg == "--connect")
      ConnectAddr = Next();
    else if (Arg == "--tenant")
      Tenant = Next();
    else if (Arg == "--serve-workers") {
      long Workers = std::atol(Next().c_str());
      if (Workers < 0) {
        std::fprintf(stderr,
                     "error: --serve-workers wants a non-negative count\n");
        return 2;
      }
      ServeWorkers = unsigned(Workers);
    }
    else if (Arg == "--workers-dist") {
      long N = std::atol(Next().c_str());
      if (N < 1) {
        std::fprintf(stderr,
                     "error: --workers-dist wants a worker count\n");
        return 2;
      }
      Engine = "dist";
      Config.Workers = unsigned(N);
    } else if (Arg == "--coordinator") {
      CoordinatorPort = std::atol(Next().c_str());
      if (CoordinatorPort < 0 || CoordinatorPort > 65535) {
        std::fprintf(stderr,
                     "error: --coordinator wants a port in [0, 65535]\n");
        return 2;
      }
    } else if (Arg == "--join")
      JoinAddr = Next();
    else if (Arg == "--reshard") {
      long N = std::atol(Next().c_str());
      if (N < 1) {
        std::fprintf(stderr, "error: --reshard wants a worker count\n");
        return 2;
      }
      ReshardWorkers = unsigned(N);
    }
    else if (Arg == "--checkpoint")
      CheckpointFile = Next();
    else if (Arg == "--resume")
      ResumeFile = Next();
    else if (Arg == "--pos") {
      Examples.Pos = splitCommas(Next());
      InlineSpec = true;
    } else if (Arg == "--neg") {
      Examples.Neg = splitCommas(Next());
      InlineSpec = true;
    } else if (Arg[0] == '-')
      usage();
    else
      SpecFile = Arg;
  }

  if (!JoinAddr.empty())
    // A worker needs no spec either; the coordinator's Init carries it.
    return runJoin(JoinAddr);

  if (ServeMode) {
    // Serving needs no spec; the clients bring those.
    if (!engine::hasBackend(Engine)) {
      std::fprintf(stderr, "error: --serve wants a registry backend "
                           "(have '%s')\n",
                   Engine.c_str());
      return 2;
    }
    return runServe(Engine, uint16_t(ServePort), ServeWorkers, Config,
                    Options);
  }

  if (!InlineSpec) {
    // The REPL may start from an empty spec and grow it from stdin.
    if (SpecFile.empty() && !ReplMode)
      usage();
    std::string Error;
    if (!SpecFile.empty() &&
        !readSpecFile(SpecFile, Examples, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
  }

  if (ReplMode) {
    if (!engine::hasBackend(Engine)) {
      std::fprintf(stderr, "error: --repl wants a registry backend "
                           "(have '%s')\n",
                   Engine.c_str());
      return 2;
    }
    return runRepl(Engine, ServeWorkers, Config, std::move(Examples),
                   AlphabetChars, Options);
  }

  Alphabet Sigma;
  std::string Error;
  if (!AlphabetChars.empty())
    Sigma = Alphabet::create(AlphabetChars, &Error);
  else if (!inferAlphabet(Examples, Sigma, &Error))
    Sigma = Alphabet();
  if (!Error.empty()) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }

  std::printf("spec: %zu positive, %zu negative example(s); alphabet {%s}\n",
              Examples.Pos.size(), Examples.Neg.size(),
              Sigma.symbols().c_str());
  std::printf("cost: %s, allowed error %.0f%%\n",
              Options.Cost.name().c_str(), Options.AllowedError * 100);

  if (!ConnectAddr.empty())
    return runConnect(ConnectAddr, Tenant, Examples, AlphabetChars,
                      Options, ShowStats);

  if (Engine == "alpharegex") {
    baseline::AlphaRegexOptions AOpts;
    AOpts.Cost = Options.Cost;
    AOpts.UseWildcard = Wildcard;
    AOpts.TimeoutSeconds = Options.TimeoutSeconds;
    baseline::AlphaRegexResult R =
        baseline::alphaRegexSynthesize(Examples, Sigma, AOpts);
    if (!R.found()) {
      std::printf("result: %s\n", statusName(R.Status));
      return 1;
    }
    std::printf("result: %s  (cost %llu, %s REs checked, %.4f s)\n",
                R.Regex.c_str(), (unsigned long long)R.Cost,
                withCommas(R.Checked).c_str(), R.Seconds);
    return 0;
  }

  if (ServeDemoRounds > 0 || Engine != "gpusim") {
    // All registry backends are served through a SynthService; the
    // demo mode replays the workload, the plain mode is a one-request
    // service client.
    std::vector<std::string> Known = engine::backendNames();
    if (std::find(Known.begin(), Known.end(), Engine) == Known.end()) {
      std::string Names;
      for (const std::string &Name : Known)
        Names += (Names.empty() ? "" : ", ") + Name;
      std::fprintf(stderr, "error: unknown backend '%s' (have: %s, "
                           "alpharegex)\n",
                   Engine.c_str(), Names.c_str());
      return 2;
    }
  }

  SynthResult R;
  if (ServeDemoRounds > 0) {
    service::ServiceOptions SOpts;
    SOpts.Backend = Engine;
    SOpts.Workers = ServeWorkers;
    SOpts.Kernels = Config;
    SOpts.Portfolio = Options.Portfolio;
    service::SynthService Service(std::move(SOpts));
    return runServeDemo(Service, Examples, Sigma, Options,
                        ServeDemoRounds);
  }
  bool DistDirect = CoordinatorPort >= 0 || ReshardWorkers > 0;
  if (!CheckpointFile.empty() || !ResumeFile.empty() || DistDirect) {
    if (Options.Portfolio) {
      // A race's arms die with the race; there is no single session to
      // park or resume (and a coordinator owns exactly one cluster).
      std::fprintf(stderr, "error: --portfolio cannot be combined with "
                           "--checkpoint/--resume/--coordinator\n");
      return 2;
    }
    // Anytime synthesis: drive the session state machine directly so a
    // budget-exhausted search can park to disk and a retry can resume.
    // The distributed modes ride the same session path, so --checkpoint
    // and --resume keep working across live migrations.
    if (!DistDirect && !engine::hasBackend(Engine)) {
      std::fprintf(stderr,
                   "error: --checkpoint/--resume need a registry "
                   "backend (have '%s')\n",
                   Engine.c_str());
      return 2;
    }
    std::shared_ptr<const engine::StagedQuery> Q =
        engine::stage(Examples, Sigma, Options);
    std::unique_ptr<engine::Backend> B;
    if (DistDirect) {
      std::unique_ptr<dist::DistBackend> D =
          makeDistBackend(CoordinatorPort, Config.Workers);
      if (!D)
        return 1;
      if (ReshardWorkers > 0)
        D->requestReshard(ReshardWorkers);
      B = std::move(D);
    } else {
      B = engine::createBackend(Engine, Config);
    }
    std::unique_ptr<engine::SearchSession> S;
    std::string Error;
    if (!ResumeFile.empty()) {
      std::string Bytes;
      if (!readFileBytes(ResumeFile, Bytes, Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 2;
      }
      S = engine::SearchSession::restore(Bytes, Q, std::move(B), &Error);
      if (!S) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 2;
      }
      std::printf("resumed session at cost level %llu "
                  "(budget: max cost %llu%s)\n",
                  (unsigned long long)S->nextCost(),
                  (unsigned long long)S->maxCost(),
                  Options.TimeoutSeconds > 0 ? ", timed" : "");
      // Re-enter the sweep under the (possibly wider) CLI budgets; with
      // unchanged budgets this re-parks immediately.
      S->extendBudget(Options.MaxCost, Options.TimeoutSeconds);
    } else {
      S = std::make_unique<engine::SearchSession>(Q, std::move(B));
    }
    R = S->run();
    if (!CheckpointFile.empty() &&
        S->state() == engine::SessionState::Parked) {
      SnapshotWriter W;
      if (!S->save(W)) {
        std::fprintf(stderr,
                     "warning: session is not serializable; no "
                     "checkpoint written\n");
      } else if (!writeFileBytes(CheckpointFile, W.buffer(), Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 2;
      } else {
        std::printf("session parked at cost level %llu -> %s "
                    "(%zu bytes; re-run with --resume %s and a larger "
                    "--max-cost/--timeout)\n",
                    (unsigned long long)S->nextCost(),
                    CheckpointFile.c_str(), W.size(),
                    CheckpointFile.c_str());
      }
    }
  } else if (Engine == "gpusim" && !Options.Portfolio) {
    // Route through the public GPU entry point so the device-side
    // accounting can be reported alongside the result.
    gpusim::GpuOptions Gpu;
    Gpu.HostWorkers = Config.Workers;
    gpusim::GpuSynthResult G =
        gpusim::synthesizeGpu(Examples, Sigma, Options, Gpu);
    R = G.Result;
    if (R.found())
      std::printf("modelled device time: %s s (%llu kernel launches)\n",
                  formatSeconds(G.ModeledGpuSeconds).c_str(),
                  (unsigned long long)G.KernelLaunches);
  } else {
    service::ServiceOptions SOpts;
    SOpts.Backend = Engine;
    SOpts.Workers = ServeWorkers;
    SOpts.Kernels = Config;
    SOpts.Portfolio = Options.Portfolio;
    service::SynthService Service(std::move(SOpts));
    R = Service.synthesize(Examples, Sigma, Options);
  }

  if (!R.found()) {
    std::printf("result: %s %s\n", statusName(R.Status), R.Message.c_str());
    if (R.Status == SynthStatus::OutOfMemory &&
        !storeCompressionEnabled(Options))
      std::fprintf(stderr,
                   "hint: the language store hit the memory budget; "
                   "enable tiering with --memory-limit %llu (compressed "
                   "store) or --spill-dir DIR (disk spill) to search "
                   "further in the same RAM\n",
                   (unsigned long long)(Options.MemoryLimitBytes >> 20));
    if (ShowStats)
      printStats(R.Stats);
    return 1;
  }
  std::printf("result: %s  (cost %llu)\n", R.Regex.c_str(),
              (unsigned long long)R.Cost);

  // Always verify before reporting success.
  RegexManager M;
  ParseResult Parsed = parseRegex(M, R.Regex);
  if (Options.AllowedError == 0 &&
      !(Parsed &&
        satisfiesExamples(M, Parsed.Re, Examples.Pos, Examples.Neg))) {
    std::fprintf(stderr, "internal error: result failed verification\n");
    return 1;
  }
  if (ShowStats)
    printStats(R.Stats);
  return 0;
}
