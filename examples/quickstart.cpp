//===- examples/quickstart.cpp - Five-minute tour of the library --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's introductory example, end to end: give positive and
/// negative example strings, get back a provably minimal regular
/// expression. Shows the CPU search, the GPU-style search (with its
/// modelled device time), and how to verify the result independently.
///
/// Build & run:  ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"
#include "gpusim/GpuSynthesizer.h"
#include "regex/Matcher.h"
#include "support/Format.h"

#include <cstdio>

using namespace paresy;

int main() {
  // Specification (1) from the paper: strings that start with "10".
  Spec Examples({"10", "101", "100", "1010", "1011", "1000", "1001"},
                {"", "0", "1", "00", "11", "010"});
  Alphabet Sigma = Alphabet::of("01");

  // --- 1. Synthesize with the sequential (CPU) search. -----------------
  SynthOptions Options; // Uniform cost function (1,1,1,1,1) by default.
  SynthResult Result = synthesize(Examples, Sigma, Options);
  if (!Result.found()) {
    std::printf("synthesis failed: %s %s\n", statusName(Result.Status),
                Result.Message.c_str());
    return 1;
  }
  std::printf("inferred:   %s   (cost %llu)\n", Result.Regex.c_str(),
              static_cast<unsigned long long>(Result.Cost));
  std::printf("explored:   %s candidate expressions, %s unique languages\n",
              withCommas(Result.Stats.CandidatesGenerated).c_str(),
              withCommas(Result.Stats.UniqueLanguages).c_str());

  // --- 2. Verify independently with the derivative matcher. ------------
  RegexManager M;
  ParseResult Parsed = parseRegex(M, Result.Regex);
  bool Precise =
      Parsed && satisfiesExamples(M, Parsed.Re, Examples.Pos, Examples.Neg);
  std::printf("verified:   %s\n", Precise ? "accepts every positive, "
                                            "rejects every negative"
                                          : "VERIFICATION FAILED");

  // --- 3. The same search in GPU (CUDA-grid) style. ---------------------
  gpusim::GpuSynthResult Gpu =
      gpusim::synthesizeGpu(Examples, Sigma, Options);
  std::printf("gpu-style:  %s  (same answer: %s)\n",
              Gpu.Result.Regex.c_str(),
              Gpu.Result.Regex == Result.Regex ? "yes" : "NO");
  std::printf("            %llu kernel launches, modelled device time %s s\n",
              static_cast<unsigned long long>(Gpu.KernelLaunches),
              formatSeconds(Gpu.ModeledGpuSeconds).c_str());
  return Precise ? 0 : 1;
}
