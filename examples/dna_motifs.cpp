//===- examples/dna_motifs.cpp - Motif inference over {a,c,g,t} ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inferring a sequence motif from labelled DNA fragments - a
/// four-letter alphabet and an error-tolerant run: one of the
/// "positive" fragments is deliberately mislabelled, and the Sec. 5.2
/// allowed-error mode recovers the clean motif that precise REI
/// cannot see past.
///
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"
#include "support/Format.h"

#include <cstdio>

using namespace paresy;

int main() {
  // Fragments whose label says "contains the ta-repeat motif". The
  // fragment "ggg" is mislabelled noise.
  Spec Examples(
      /*Pos=*/{"ta", "tata", "tataa", "atata", "ggg"},
      /*Neg=*/{"t", "a", "at", "aat", "gg", "tg"});
  Alphabet Sigma = Alphabet::of("acgt");

  std::printf("Motif inference over the DNA alphabet {a,c,g,t}\n");

  // Precise REI must also cover the noisy "ggg".
  SynthOptions Precise;
  SynthResult R0 = synthesize(Examples, Sigma, Precise);
  if (R0.found())
    std::printf("  0%% error:  %-24s cost %llu (forced to cover noise)\n",
                R0.Regex.c_str(), (unsigned long long)R0.Cost);

  // Allowing one misclassified example recovers the clean motif.
  SynthOptions Tolerant;
  Tolerant.AllowedError = 0.10; // floor(0.10 * 11) = 1 mistake allowed.
  SynthResult R1 = synthesize(Examples, Sigma, Tolerant);
  if (R1.found())
    std::printf("  10%% error: %-24s cost %llu "
                "(noise absorbed by the budget)\n",
                R1.Regex.c_str(), (unsigned long long)R1.Cost);

  if (R0.found() && R1.found() && R1.Cost < R0.Cost)
    std::printf("  => the error budget yielded a strictly simpler "
                "expression (%llu < %llu)\n",
                (unsigned long long)R1.Cost, (unsigned long long)R0.Cost);
  return R0.found() && R1.found() ? 0 : 1;
}
