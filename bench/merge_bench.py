#!/usr/bin/env python3
"""Merge several runs of one harness bench into a best-of-N report.

Used when (re)capturing ``bench/baselines/``: a single run bakes its
process-level noise (allocator layout, ASLR) into the baseline
forever, so baselines are captured as the per-metric best of a few
independent runs, mirroring what compare_bench.py does with multiple
``--current-dir`` arguments on the other side of the gate.

Values are compared after normalising by each run's own
``harness.calibration`` and re-expressed against the first run's
calibration, so the merged file stays internally consistent.

Usage:
  python3 bench/merge_bench.py --out BENCH_kernels.json \
      run1/BENCH_kernels.json run2/BENCH_kernels.json [...]
"""

import argparse
import json
import sys

CALIBRATION = "harness.calibration"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True)
    parser.add_argument("runs", nargs="+")
    args = parser.parse_args()

    with open(args.runs[0]) as f:
        merged = json.load(f)
    metrics = {m["name"]: m for m in merged["metrics"]}
    base_cal = metrics[CALIBRATION]["value"]

    for path in args.runs[1:]:
        with open(path) as f:
            run = json.load(f)
        run_metrics = {m["name"]: m for m in run["metrics"]}
        cal = run_metrics[CALIBRATION]["value"]
        for name, m in run_metrics.items():
            if name == CALIBRATION or m.get("unit") != "items/s":
                continue
            old = metrics.get(name)
            rescaled = m["value"] * base_cal / cal
            if old is None or rescaled > old["value"]:
                # Keep the derived fields consistent with the rescaled
                # value (value == items_per_iter / seconds_per_iter).
                metrics[name] = dict(
                    m,
                    value=rescaled,
                    seconds_per_iter=m["seconds_per_iter"] * cal / base_cal,
                )

    merged["metrics"] = list(metrics.values())
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"merged {len(args.runs)} runs -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
