//===- bench/bench_resume.cpp - Anytime-synthesis resume quick bench ----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resume perf gate (DESIGN.md Sec. 9): a Table-2-sized classroom
/// instance (no3, under the AlphaRegex-comparable cost function) is
/// first starved at a budget one below its solving cost so the session
/// parks on NotFound, then resumed with the budget doubled. Two gated
/// metrics:
///
///   resume.cold - the full-budget sweep from scratch (the price every
///                 budget retry used to pay);
///   resume.warm - SearchSession::restore() of the parked snapshot +
///                 extendBudget + run to Found (what a retry pays now).
///
/// Both count the *full* workload's candidates as items, so the warm
/// throughput exceeding the cold one by construction is the measured
/// speedup; info.resume.speedup reports the ratio directly. The warm
/// result is asserted bit-equal to the cold one before anything is
/// timed - a wrong resume must never be gated as a fast one.
///
/// Emits BENCH_resume.json; the CI perf-smoke job gates it against
/// bench/baselines/BENCH_resume.json.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "benchgen/AlphaSuite.h"
#include "core/Snapshot.h"
#include "engine/CpuBackend.h"
#include "engine/Session.h"
#include "support/Timer.h"

#include <cstdio>
#include <memory>

using namespace paresy;
using namespace paresy::engine;

int main(int Argc, char **Argv) {
  bench::Harness H("resume", Argc, Argv);

  // Table 2 row no3: heavy enough that the sweep dominates staging,
  // small enough for CI (same instance as bench_shards).
  const benchgen::SuiteInstance &Inst = benchgen::alphaRegexSuite()[2];
  const Alphabet Sigma = Alphabet::of("01");
  const CostFn TableCost(20, 20, 20, 5, 30);

  SynthOptions Full;
  Full.Cost = TableCost;
  std::shared_ptr<const StagedQuery> FullQ =
      engine::stage(Inst.Examples, Sigma, Full);

  auto coldRun = [&] {
    CpuBackend B;
    return runStaged(*FullQ, B);
  };

  SynthResult Cold = coldRun();
  if (!Cold.found()) {
    std::fprintf(stderr, "error: workload did not solve (%s)\n",
                 statusName(Cold.Status));
    return 1;
  }

  // Park just below the solving cost - the retry-heavy shape: a budget
  // guessed slightly too small sweeps every level but the last, parks
  // on NotFound, and the retry doubles the budget. Cost levels grow
  // combinatorially, so the parked prefix is most of the total work.
  SynthOptions Half = Full;
  Half.MaxCost = Cold.Cost - 1;
  std::shared_ptr<const StagedQuery> HalfQ =
      engine::stage(Inst.Examples, Sigma, Half);
  std::string Snapshot;
  uint64_t ParkedCandidates = 0;
  {
    SearchSession Session(HalfQ, std::make_unique<CpuBackend>());
    SynthResult Starved = Session.run();
    ParkedCandidates = Starved.Stats.CandidatesGenerated;
    if (Starved.Status != SynthStatus::NotFound ||
        Session.state() != SessionState::Parked) {
      std::fprintf(stderr, "error: half-budget run did not park\n");
      return 1;
    }
    SnapshotWriter W;
    if (!Session.save(W)) {
      std::fprintf(stderr, "error: parked session did not serialize\n");
      return 1;
    }
    Snapshot = W.take();
  }

  auto warmRun = [&] {
    std::unique_ptr<SearchSession> Session = SearchSession::restore(
        Snapshot, FullQ, std::make_unique<CpuBackend>());
    if (!Session)
      std::exit(1); // A rejected snapshot would gate on garbage.
    Session->extendBudget(Full.MaxCost, Full.TimeoutSeconds);
    return Session->run();
  };

  // Resume-equivalence sanity before timing anything.
  SynthResult Warm = warmRun();
  if (Warm.Regex != Cold.Regex || Warm.Cost != Cold.Cost ||
      Warm.Stats.CandidatesGenerated != Cold.Stats.CandidatesGenerated) {
    std::fprintf(stderr, "error: resumed run diverged from cold run\n");
    return 1;
  }

  uint64_t Candidates = Cold.Stats.CandidatesGenerated;
  H.bench("resume.cold", Candidates, [&] {
    if (!coldRun().found())
      std::exit(1);
  });
  H.bench("resume.warm", Candidates, [&] {
    if (!warmRun().found())
      std::exit(1);
  });

  // The ratio a budget retry gains, measured directly (min of a few
  // interleaved pairs so machine noise hits both sides alike).
  double ColdSecs = 1e100, WarmSecs = 1e100;
  for (int Rep = 0; Rep != (H.quick() ? 3 : 5); ++Rep) {
    WallTimer T;
    coldRun();
    ColdSecs = std::min(ColdSecs, T.seconds());
    T.reset();
    warmRun();
    WarmSecs = std::min(WarmSecs, T.seconds());
  }
  H.metric("info.resume.speedup", ColdSecs / WarmSecs, "x");
  H.metric("info.resume.snapshot_bytes", double(Snapshot.size()),
           "bytes");
  H.metric("info.workload.candidates", double(Candidates), "count");
  // Work the warm run inherits from the parked levels instead of
  // regenerating.
  H.metric("info.workload.skipped_candidates", double(ParkedCandidates),
           "count");
  return H.finish();
}
