#!/usr/bin/env python3
"""Gate BENCH_*.json results against checked-in baselines.

For every ``BENCH_<name>.json`` in the baseline directory, the
same-named file must exist in at least one current directory, and no
throughput metric may regress more than ``--max-regress`` (default
25%).

Cross-machine comparability: every harness report contains a
``harness.calibration`` metric (a fixed pure-ALU workload tracking
single-core machine speed). Each throughput metric is divided by its
own file's calibration before comparing, so a slower CI runner does
not read as a code regression; only changes relative to the machine's
own speed do. See DESIGN.md Sec. 6.

Several ``--current-dir`` arguments may be given (CI runs every quick
bench twice): per metric the best normalised result wins, the
cross-process analogue of the harness's min-of-N repetitions, which
filters process-level noise such as allocator layout.

Exit status: 0 when every gated metric passes, 1 otherwise.

Usage:
  python3 bench/compare_bench.py \
      --baseline-dir bench/baselines --current-dir perf1 \
      [--current-dir perf2 ...] [--max-regress 0.25]

No dependencies beyond the standard library.
"""

import argparse
import json
import os
import shutil
import sys

CALIBRATION = "harness.calibration"


def is_gated(name, metric):
    """Gated = calibration-normalised throughput with baseline teeth.

    ``info.*`` metrics and non-throughput units are context only.
    """
    return (
        metric.get("unit") == "items/s"
        and name != CALIBRATION
        and not name.startswith("info.")
    )


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "paresy-bench/v1":
        raise ValueError(f"{path}: unknown schema {report.get('schema')!r}")
    metrics = {m["name"]: m for m in report.get("metrics", [])}
    cal = metrics.get(CALIBRATION, {}).get("value", 0)
    if cal <= 0:
        raise ValueError(f"{path}: missing or non-positive {CALIBRATION}")
    return metrics, cal


def load_normalized(path):
    """name -> throughput normalised by the run's own calibration.

    Metrics named ``info.*`` are context, not gates (e.g. a path whose
    cost intentionally moved into it from elsewhere).
    """
    metrics, cal = load_report(path)
    return {
        name: m["value"] / cal
        for name, m in metrics.items()
        if is_gated(name, m)
    }


def classify_current(paths):
    """(gated names, info-only names) across several current runs."""
    gated, info = set(), set()
    for path in paths:
        metrics, _ = load_report(path)
        for name, m in metrics.items():
            if name == CALIBRATION:
                continue
            (gated if is_gated(name, m) else info).add(name)
    return gated, info


def best_of(paths):
    """Per-metric best normalised value across several runs."""
    merged = {}
    for path in paths:
        for name, value in load_normalized(path).items():
            merged[name] = max(merged.get(name, 0.0), value)
    return merged


def load_context(path):
    """name -> metric dict for context (non-gated, non-calibration)."""
    metrics, _ = load_report(path)
    return {
        name: m
        for name, m in metrics.items()
        if name != CALIBRATION and not is_gated(name, m)
    }


def compare_file(base_path, cur_paths, max_regress):
    base = load_normalized(base_path)
    cur = best_of(cur_paths)
    ok = True
    for name, base_norm in sorted(base.items()):
        if name not in cur:
            print(f"  FAIL {name}: metric missing from current results")
            ok = False
            continue
        if base_norm <= 0:
            print(f"  SKIP {name}: non-positive baseline")
            continue
        ratio = cur[name] / base_norm
        status = "ok  "
        if ratio < 1.0 - max_regress:
            status = "FAIL"
            ok = False
        # The signed delta is printed for passing metrics too, so the
        # perf trajectory (slow drift as well as hard failures) stays
        # visible in CI logs between baseline refreshes.
        delta = (ratio - 1.0) * 100.0
        print(
            f"  {status} {name:32s} {ratio:6.2f}x of baseline "
            f"({delta:+6.1f}%, norm {base_norm:.3f} -> {cur[name]:.3f})"
        )

    # Context metrics (info.* and non-throughput units) never gate, but
    # their drift is part of the trajectory: print raw deltas when the
    # baseline tracked the same metric. Values are unnormalised - they
    # are machine-local context, compared best-effort.
    base_ctx = load_context(base_path)
    cur_ctx = {}
    for path in cur_paths:
        for name, m in load_context(path).items():
            cur_ctx.setdefault(name, m)
    for name in sorted(set(base_ctx) & set(cur_ctx)):
        bv, cv = base_ctx[name]["value"], cur_ctx[name]["value"]
        unit = cur_ctx[name].get("unit", "")
        if bv > 0:
            print(
                f"  info {name:32s} {bv:.3f} -> {cv:.3f} {unit} "
                f"({(cv / bv - 1.0) * 100.0:+6.1f}%)"
            )
        else:
            print(f"  info {name:32s} {bv:.3f} -> {cv:.3f} {unit}")

    # A gate-class metric that only exists in the current results is
    # running ungated - usually a new bench metric whose baseline was
    # never captured. Warn loudly instead of passing in silence.
    gated, info = classify_current(cur_paths)
    unbaselined = sorted(gated - set(base))
    for name in unbaselined:
        print(f"  WARN {name}: not in baseline, running ungated")
    print(
        f"  summary: {len(base)} gated, {len(info)} info-only, "
        f"{len(unbaselined)} ungated (warn)"
    )
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument(
        "--current-dir",
        action="append",
        default=None,
        help="directory with current BENCH_*.json; repeatable",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.25,
        help="maximum tolerated fractional regression (0.25 = 25%%)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy each current BENCH_*.json (first --current-dir that "
        "has it) into the baseline directory instead of gating; for "
        "best-of-N captures merge runs with bench/merge_bench.py first",
    )
    args = parser.parse_args()
    current_dirs = args.current_dir or ["."]

    if args.update_baseline:
        os.makedirs(args.baseline_dir, exist_ok=True)
        updated = 0
        names = set()
        for d in current_dirs:
            if os.path.isdir(d):
                names.update(
                    f
                    for f in os.listdir(d)
                    if f.startswith("BENCH_") and f.endswith(".json")
                )
        for fname in sorted(names):
            for d in current_dirs:
                src = os.path.join(d, fname)
                if os.path.exists(src):
                    load_report(src)  # Refuse to bless malformed files.
                    shutil.copyfile(
                        src, os.path.join(args.baseline_dir, fname)
                    )
                    print(f"baseline updated: {fname} (from {d})")
                    updated += 1
                    break
        if not updated:
            print(f"error: no BENCH_*.json under {current_dirs}")
            return 1
        return 0

    baselines = sorted(
        f
        for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not baselines:
        print(f"error: no BENCH_*.json under {args.baseline_dir}")
        return 1

    all_ok = True
    for fname in baselines:
        base_path = os.path.join(args.baseline_dir, fname)
        cur_paths = [
            os.path.join(d, fname)
            for d in current_dirs
            if os.path.exists(os.path.join(d, fname))
        ]
        print(f"{fname}:")
        if not cur_paths:
            print(f"  FAIL no current result in {current_dirs}")
            all_ok = False
            continue
        try:
            if not compare_file(base_path, cur_paths, args.max_regress):
                all_ok = False
        except (ValueError, KeyError, json.JSONDecodeError) as e:
            print(f"  FAIL {e}")
            all_ok = False

    # A whole current-only report (a bench wired into CI whose baseline
    # was never committed) would otherwise run ungated in silence.
    current_only = set()
    for d in current_dirs:
        if os.path.isdir(d):
            current_only.update(
                f
                for f in os.listdir(d)
                if f.startswith("BENCH_")
                and f.endswith(".json")
                and f not in baselines
            )
    for fname in sorted(current_only):
        print(
            f"{fname}:\n  WARN no baseline file - every metric runs "
            "ungated (--update-baseline to capture one)"
        )

    print("perf gate:", "PASS" if all_ok else "FAIL")
    if not all_ok:
        print(
            "hint: if the change is an accepted trade-off, refresh the "
            "baselines with --update-baseline (after a clean-machine "
            "best-of-N capture; see bench/merge_bench.py)"
        )
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
