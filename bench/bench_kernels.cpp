//===- bench/bench_kernels.cpp - CS kernel hot-path microbench ----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks for the shared CS kernel hot path: the staged
/// concat and star folds at the row widths that matter (1-word and
/// 2-word CSs cover RIC-sized specs; a wider universe exercises the
/// generic path), plus the uniqueness sets and the cache append path.
/// Workloads are RIC-style Type 1 specs from the deterministic
/// generator, so numbers are reproducible bit-for-bit.
///
/// Emits BENCH_kernels.json; the CI perf-smoke job gates this file
/// against bench/baselines/BENCH_kernels.json.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "benchgen/Generators.h"
#include "core/CsHashSet.h"
#include "core/LanguageCache.h"
#include "engine/Kernels.h"
#include "gpusim/WarpHashSet.h"
#include "lang/CharSeq.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "support/Compiler.h"
#include "support/Rng.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace paresy;

namespace {

/// One kernel workload: a universe of the requested CS width with two
/// non-trivial operand CSs (0? and 1? - sparse but not degenerate,
/// like the low-cost languages that dominate a real sweep).
struct KernelSetup {
  Universe U;
  GuideTable GT;
  std::vector<uint64_t> A, B, Dst;

  explicit KernelSetup(const Spec &S) : U(S), GT(U) {
    A.assign(U.csWords(), 0);
    B.assign(U.csWords(), 0);
    Dst.assign(U.csWords(), 0);
    CsAlgebra Algebra(U, &GT);
    Algebra.makeLiteral(A.data(), '0');
    Algebra.makeLiteral(B.data(), '1');
    Algebra.question(A.data(), A.data());
    Algebra.question(B.data(), B.data());
  }
};

/// Finds a deterministic Type 1 spec whose universe needs exactly
/// \p WantWords CS words, scanning example lengths and seeds.
std::unique_ptr<KernelSetup> setupForWords(size_t WantWords) {
  for (unsigned MaxLen = 2; MaxLen <= 10; ++MaxLen) {
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      benchgen::GenParams Params;
      Params.MaxLen = MaxLen;
      Params.NumPos = 6;
      Params.NumNeg = 6;
      Params.Seed = Seed;
      benchgen::GeneratedBenchmark B;
      if (!benchgen::generate(benchgen::BenchType::Type1, Params, B,
                              nullptr))
        continue;
      Universe Probe(B.Examples);
      if (Probe.csWords() == WantWords)
        return std::make_unique<KernelSetup>(B.Examples);
    }
  }
  return nullptr;
}

void benchConcatStar(bench::Harness &H, size_t Words) {
  std::unique_ptr<KernelSetup> S = setupForWords(Words);
  if (!S) {
    std::fprintf(stderr, "warning: no spec found for %zu-word CS\n",
                 Words);
    return;
  }
  std::string Suffix = "w" + std::to_string(Words);

  H.bench("concat." + Suffix, S->GT.totalPairs(), [&] {
    engine::csConcat(S->Dst.data(), S->A.data(), S->B.data(), S->U,
                     &S->GT);
  });

  // Star's work depends on the fixpoint depth; charge the measured
  // split pairs of one call so items/s stays comparable to concat.
  uint64_t StarOps =
      engine::csStar(S->Dst.data(), S->A.data(), S->U, &S->GT);
  H.bench("star." + Suffix, StarOps, [&] {
    engine::csStar(S->Dst.data(), S->A.data(), S->U, &S->GT);
  });
}

void benchHashSets(bench::Harness &H) {
  constexpr size_t Words = 2;
  // Sized so every per-iteration allocation stays below malloc's mmap
  // threshold: recycled arena memory keeps timings OS-state-free.
  constexpr size_t Keys = 2048;
  // One shared deterministic key stream, distinct keys with near-
  // uniform hashes: the realistic uniqueness workload.
  std::vector<uint64_t> KeyWords(Keys * Words);
  Rng R(H.seed());
  for (uint64_t &W : KeyWords)
    W = R.next();

  H.bench("cshashset.insert", Keys, [&] {
    LanguageCache Cache(Words, Keys);
    CsHashSet Set(Cache);
    for (size_t K = 0; K != Keys; ++K) {
      const uint64_t *Key = KeyWords.data() + K * Words;
      if (!Set.contains(Key)) {
        uint32_t Idx = Cache.append(Key, Provenance{});
        Set.insert(Key, Idx);
      }
    }
  });

  // Misses probe the whole cluster; the tag bytes exist for this.
  {
    LanguageCache Cache(Words, Keys);
    CsHashSet Set(Cache);
    for (size_t K = 0; K != Keys; ++K) {
      const uint64_t *Key = KeyWords.data() + K * Words;
      if (!Set.contains(Key))
        Set.insert(Key, Cache.append(Key, Provenance{}));
    }
    Rng Probe(H.seed() + 1);
    std::vector<uint64_t> Missing(Keys * Words);
    for (uint64_t &W : Missing)
      W = Probe.next();
    H.bench("cshashset.miss", Keys, [&] {
      size_t Hits = 0;
      for (size_t K = 0; K != Keys; ++K)
        Hits += Set.contains(Missing.data() + K * Words);
      if (Hits > Keys)
        reportFatalError("impossible hit count");
    });
  }

  H.bench("warphashset.insert", Keys, [&] {
    gpusim::WarpHashSet Set(Words, Keys * 2);
    for (size_t K = 0; K != Keys; ++K)
      Set.insert(KeyWords.data() + K * Words, uint32_t(K));
  });
}

void benchCacheAppend(bench::Harness &H) {
  constexpr size_t Words = 2;
  constexpr size_t Rows = 4096;
  std::vector<uint64_t> RowWords(Rows * Words);
  Rng R(H.seed() + 2);
  for (uint64_t &W : RowWords)
    W = R.next();
  // info. prefix: reported but not gated. Appends deliberately absorb
  // the row-hash computation the uniqueness set used to pay on insert
  // and growth; cshashset.insert gates the combined pipeline.
  H.bench("info.cache.append", Rows, [&] {
    LanguageCache Cache(Words, Rows);
    for (size_t I = 0; I != Rows; ++I)
      Cache.append(RowWords.data() + I * Words, Provenance{});
  });
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Harness H("kernels", Argc, Argv);
  benchConcatStar(H, 1);
  benchConcatStar(H, 2);
  benchConcatStar(H, 4);
  benchHashSets(H);
  benchCacheAppend(H);
  return H.finish();
}
