//===- bench/bench_store.cpp - Compressed + tiered store quick bench ----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compressed-store perf gate (DESIGN.md Sec. 11), two parts:
///
///  * codec throughput: encode/decode rates over a mixed-sparsity row
///    corpus, plus the end-to-end seal rate through a compressed
///    LanguageCache - the cost every level boundary pays;
///  * fixed-RAM ceiling: a Table-2-shaped instance (classroom-style
///    pos/neg examples over {0,1}, sized for a multi-word universe)
///    swept on the sequential backend at a fixed MemoryLimitBytes,
///    raw versus compressed + tiered. The compressed store caches a
///    multiple of the raw row count in the same budget
///    (info.store.capacity_lift) and keeps larger sub-instances
///    (higher --max-cost horizons) solvable (info.store.
///    solvable_lift) - the Sec. 11 headline numbers README quotes.
///
/// Emits BENCH_store.json; the CI perf-smoke job gates the timed
/// metrics against bench/baselines/BENCH_store.json (info.* metrics
/// are reported, not gated).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "benchgen/Generators.h"
#include "core/LanguageCache.h"
#include "engine/BackendRegistry.h"
#include "lang/RowCodec.h"
#include "support/Bits.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace paresy;

namespace {

/// A mixed-sparsity corpus shaped like real cache contents: empty and
/// near-universal star languages, single-hit and few-hit sparse rows,
/// and a dense minority.
std::vector<std::vector<uint64_t>> rowCorpus(size_t Words, size_t Count,
                                             uint64_t Seed) {
  std::vector<std::vector<uint64_t>> Rows;
  Rows.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    std::vector<uint64_t> Row(Words, 0);
    switch (I % 8) { // 1-in-8 dense, the rest sparse/regular.
    case 0:
      for (size_t W = 0; W != Words; ++W)
        Row[W] = hashMix64(Seed + I * 131 + W);
      break;
    case 1: // All-zero.
      break;
    case 2: // Near-universal.
      Row.assign(Words, ~uint64_t(0));
      Row[hashMix64(Seed + I) % Words] ^= 0xff;
      break;
    default: { // A few scattered bits.
      for (uint64_t B = 0; B != 1 + I % 6; ++B) {
        size_t Bit = hashMix64(Seed + I * 31 + B) % (Words * 64);
        Row[Bit / 64] |= uint64_t(1) << (Bit % 64);
      }
      break;
    }
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Harness H("store", Argc, Argv);

  //===------------------------------------------------------------------===//
  // Codec throughput
  //===------------------------------------------------------------------===//

  const size_t Words = 8;
  const size_t CorpusRows = 4096;
  std::vector<std::vector<uint64_t>> Corpus =
      rowCorpus(Words, CorpusRows, H.seed());

  std::string Encoded;
  std::vector<uint32_t> Offsets;
  for (const std::vector<uint64_t> &Row : Corpus) {
    Offsets.push_back(uint32_t(Encoded.size()));
    encodeRow(Row.data(), Words, Encoded);
  }
  Offsets.push_back(uint32_t(Encoded.size()));
  double Logical = double(CorpusRows) * Words * sizeof(uint64_t);
  H.metric("info.store.codec_ratio", Logical / double(Encoded.size()),
           "x");

  H.bench("codec.encode.w8", CorpusRows, [&] {
    std::string Out;
    Out.reserve(Encoded.size());
    for (const std::vector<uint64_t> &Row : Corpus)
      encodeRow(Row.data(), Words, Out);
    if (Out.size() != Encoded.size())
      std::exit(1);
  });

  std::vector<uint64_t> Scratch(Words);
  H.bench("codec.decode.w8", CorpusRows, [&] {
    uint64_t Sink = 0;
    for (size_t I = 0; I != CorpusRows; ++I) {
      size_t Off = Offsets[I];
      if (decodeRow(Encoded.data() + Off, Offsets[I + 1] - Off,
                    Scratch.data(), Words) == 0)
        std::exit(1);
      Sink ^= Scratch[0];
    }
    if (Sink == 0x12345678u) // Keep the decode loop observable.
      std::puts("");
  });

  // The end-to-end boundary cost: append a level's rows into a
  // compressed cache and seal it.
  StoreTierConfig Tier;
  Tier.Compress = true;
  H.bench("cache.seal.w8", CorpusRows, [&] {
    LanguageCache C(Words, CorpusRows, Tier);
    for (const std::vector<uint64_t> &Row : Corpus)
      C.append(Row.data(), Provenance{});
    C.sealLevel();
    if (C.sealedRows() != CorpusRows)
      std::exit(1);
  });

  //===------------------------------------------------------------------===//
  // Fixed-RAM ceiling: raw vs compressed + tiered
  //===------------------------------------------------------------------===//

  // A Table-2-shaped instance whose examples are long enough that the
  // infix universe spans several words (wide rows are where the codec
  // pays; classroom instances with one-word universes only save the
  // padding). MaxLen 16 gives a 16-word universe - 128-byte strides -
  // so one geometric level would dominate a small budget without the
  // window auto-seal.
  benchgen::GenParams Params;
  Params.MaxLen = 16;
  Params.NumPos = 10;
  Params.NumNeg = 10;
  Params.Seed = H.seed();
  benchgen::GeneratedBenchmark Inst;
  std::string Error;
  if (!benchgen::generate(benchgen::BenchType::Type1, Params, Inst,
                          &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  const uint64_t Budget = uint64_t(4) << 20; // 4 MiB, both modes.
  auto sweep = [&](bool Compressed, uint64_t MaxCost) {
    SynthOptions Opts;
    Opts.MemoryLimitBytes = Budget;
    Opts.MaxCost = MaxCost;
    if (Compressed) {
      Opts.CompressStore = true;
      Opts.SpillDir = ".";
      Opts.PinnedStoreBytes = 64 << 10;
    }
    return engine::synthesizeWith("cpu", Inst.Examples, Params.Sigma,
                                  Opts);
  };

  // Ceiling: push both modes past their budget (OutOfMemory) and read
  // how far each got - rows cached at the fill point, and the highest
  // cost level still completed with the minimality guarantee intact.
  const uint64_t CeilingCost = 24;
  SynthResult Raw = sweep(false, CeilingCost);
  SynthResult Comp = sweep(true, CeilingCost);
  if (Raw.Stats.CacheEntries == 0 || Comp.Stats.CacheEntries == 0 ||
      Raw.Stats.LastCompletedCost == 0 ||
      Comp.Stats.LastCompletedCost == 0) {
    std::fprintf(stderr, "error: ceiling sweep cached no rows\n");
    return 1;
  }
  H.metric("info.store.cs_words", double(Comp.Stats.CsWords), "words");
  H.metric("info.store.rows_raw", double(Raw.Stats.CacheEntries), "rows");
  H.metric("info.store.rows_compressed", double(Comp.Stats.CacheEntries),
           "rows");
  H.metric("info.store.capacity_lift",
           double(Comp.Stats.CacheEntries) /
               double(Raw.Stats.CacheEntries),
           "x");
  H.metric("info.store.compression_ratio",
           Comp.Stats.StoreCompressionRatio, "x");
  H.metric("info.store.levels_raw", double(Raw.Stats.LastCompletedCost),
           "cost");
  H.metric("info.store.levels_compressed",
           double(Comp.Stats.LastCompletedCost), "cost");

  // Solvability: the largest sub-instance (--max-cost horizon) each
  // mode still answers exactly - Found or NotFound, not OutOfMemory -
  // in the same budget. Start at the ceiling run's last completed
  // level and walk down until the verdict is exact (normally the
  // first try); the exact run's candidate count is the instance size
  // that fits. Completing even one extra level is a ~3x candidate
  // lift on Type-1 shapes, which is what the compressed store buys.
  auto solvable = [&](bool Compressed, uint64_t FromCost) {
    for (uint64_t MaxCost = FromCost; MaxCost > 0; --MaxCost) {
      SynthResult R = sweep(Compressed, MaxCost);
      if (R.Status != SynthStatus::OutOfMemory)
        return R.Stats.CandidatesGenerated;
    }
    return uint64_t(0);
  };
  uint64_t RawSolvable = solvable(false, Raw.Stats.LastCompletedCost);
  uint64_t CompSolvable = solvable(true, Comp.Stats.LastCompletedCost);
  H.metric("info.store.solvable_raw", double(RawSolvable), "candidates");
  H.metric("info.store.solvable_compressed", double(CompSolvable),
           "candidates");
  if (RawSolvable > 0)
    H.metric("info.store.solvable_lift",
             double(CompSolvable) / double(RawSolvable), "x");

  // The timed gate: the same fixed-budget sweep in both modes at a
  // shared horizon both finish quickly (the raw mode's last exact
  // level), so the codec/tier overhead on a real workload is
  // regression-tested without timing the deep compressed-only levels.
  const uint64_t GateCost = Raw.Stats.LastCompletedCost;
  SynthResult RawGate = sweep(false, GateCost);
  SynthResult CompGate = sweep(true, GateCost);
  H.bench("sweep.fixedram.raw", RawGate.Stats.CandidatesGenerated, [&] {
    if (sweep(false, GateCost).Stats.CacheEntries !=
        RawGate.Stats.CacheEntries)
      std::exit(1);
  });
  H.bench("sweep.fixedram.compressed",
          CompGate.Stats.CandidatesGenerated, [&] {
            if (sweep(true, GateCost).Stats.CacheEntries !=
                CompGate.Stats.CacheEntries)
              std::exit(1);
          });

  return H.finish();
}
