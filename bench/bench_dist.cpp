//===- bench/bench_dist.cpp - Distributed pipeline quick bench ----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distributed-mode perf gate (DESIGN.md Sec. 13): one Table-2
/// classroom instance swept through the coordinator + loopback-worker
/// cluster at 1 worker and at 3 workers. The 1-worker metric guards
/// the exchange-protocol overhead over the in-process batched path
/// (same sweep, every batch crossing a channel); the 3-worker metric
/// guards the cross-owner routing hub. A third metric times the sweep
/// with a live 1->2 reshard requested mid-run, so the cost of a
/// migration (store sync + replica rebuild at a level boundary) stays
/// on the perf trajectory; the measured migration pause itself is
/// emitted as the context metric ``info.dist.migration_ms``.
///
/// Emits BENCH_dist.json; the CI perf-smoke job gates this file
/// against bench/baselines/BENCH_dist.json.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "benchgen/AlphaSuite.h"
#include "dist/Coordinator.h"
#include "engine/Session.h"
#include "engine/Staging.h"

#include <cstdio>
#include <memory>

using namespace paresy;

int main(int Argc, char **Argv) {
  bench::Harness H("dist", Argc, Argv);

  // The same Table 2 row the sharding gate uses (no3): heavy enough
  // that level traffic dominates cluster setup, small enough for CI.
  const benchgen::SuiteInstance &Inst = benchgen::alphaRegexSuite()[2];
  const CostFn TableCost(20, 20, 20, 5, 30);

  SynthOptions Opts;
  Opts.Cost = TableCost;
  Opts.Shards = 4; // Multiple shards so 3 workers actually split owners.
  std::shared_ptr<const engine::StagedQuery> Q =
      engine::stage(Inst.Examples, Alphabet::of("01"), Opts);

  auto runCluster = [&](unsigned Workers) {
    std::unique_ptr<dist::DistBackend> B = dist::DistBackend::inProcess(Workers);
    return engine::runStaged(*Q, *B);
  };

  // One full sweep with a live 1->2 reshard two levels in; returns the
  // result carrying DistMigrationSeconds.
  auto runMigrating = [&] {
    std::unique_ptr<dist::DistBackend> B = dist::DistBackend::inProcess(1);
    dist::DistBackend *Cluster = B.get();
    engine::SearchSession Session(Q, std::move(B));
    Session.step();
    Session.step();
    Cluster->requestReshard(2);
    return Session.run();
  };

  SynthResult Probe = runCluster(1);
  if (!Probe.found()) {
    std::fprintf(stderr, "error: workload did not solve (%s)\n",
                 statusName(Probe.Status));
    return 1;
  }
  uint64_t Candidates = Probe.Stats.CandidatesGenerated;

  for (unsigned Workers : {1u, 3u}) {
    SynthResult Check = runCluster(Workers);
    if (Check.Regex != Probe.Regex ||
        Check.Stats.CandidatesGenerated != Candidates) {
      std::fprintf(stderr, "error: workers=%u diverged from workers=1\n",
                   Workers);
      return 1;
    }
    char Name[32];
    std::snprintf(Name, sizeof(Name), "sweep.no3.workers%u", Workers);
    H.bench(Name, Candidates, [&] {
      SynthResult R = runCluster(Workers);
      if (!R.found())
        std::exit(1); // A failed sweep would gate on garbage.
    });
  }

  SynthResult Migrated = runMigrating();
  if (Migrated.Regex != Probe.Regex ||
      Migrated.Stats.CandidatesGenerated != Candidates ||
      Migrated.Stats.DistMigrations != 1) {
    std::fprintf(stderr, "error: migrating sweep diverged\n");
    return 1;
  }
  H.bench("sweep.no3.migrate1to2", Candidates, [&] {
    SynthResult R = runMigrating();
    if (!R.found())
      std::exit(1);
  });

  H.metric("info.workload.candidates", double(Candidates), "count");
  H.metric("info.dist.migration_ms",
           Migrated.Stats.DistMigrationSeconds * 1e3, "ms");
  H.metric("info.dist.exchanged_rows",
           double(runCluster(3).Stats.DistExchangedRows), "count");
  return H.finish();
}
