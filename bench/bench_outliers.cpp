//===- bench/bench_outliers.cpp - Sec 4.3 outlier distribution ----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the "note on outliers" table of Sec. 4.3: the
/// percentage of benchmark runs finishing under increasing duration
/// thresholds. The sweep is the Fig. 1 grid; thresholds are scaled
/// from the paper's (which bucketed up to 800 s) to this harness's
/// second-scale workload - the claim being reproduced is the heavy
/// concentration at the fast end with a thin tail.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Format.h"

#include <algorithm>
#include <vector>

using namespace paresy;
using namespace paresy::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  if (Opts.TimeoutSeconds == 5.0)
    Opts.TimeoutSeconds = 4.0;

  std::vector<double> Durations;
  const auto &Costs = paperCostFunctions();
  for (benchgen::BenchType Type :
       {benchgen::BenchType::Type1, benchgen::BenchType::Type2})
    for (const benchgen::GenParams &Params : sweepGrid(Type, Opts.Scale)) {
      benchgen::GeneratedBenchmark B;
      std::string Error;
      if (!benchgen::generate(Type, Params, B, &Error))
        continue;
      for (const CostFn &Cost : Costs)
        Durations.push_back(
            runCell(B, Cost, Opts.TimeoutSeconds).Seconds);
    }

  std::printf("# Outlier distribution over %zu (benchmark, cost) runs\n",
              Durations.size());
  // Threshold ladder: factors of the median-ish scale, mirroring the
  // paper's 2,3,4,5,10,25,50,100,200,400,800 ladder.
  const double Thresholds[] = {0.02, 0.03, 0.04, 0.05, 0.1, 0.25,
                               0.5,  1.0,  2.0,  4.0,  8.0};
  TextTable Table({"Duration (sec) <", "% of runs"});
  for (double T : Thresholds) {
    size_t Under = size_t(std::count_if(
        Durations.begin(), Durations.end(),
        [T](double D) { return D < T; }));
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%.2f",
                  100.0 * double(Under) / double(Durations.size()));
    Table.addRow({formatSeconds(T, 2), Buf});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\nPaper ladder (unscaled): <2s 89.48%% ... <800s "
              "100.00%% - concentration at the fast end, thin tail\n");
  return 0;
}
