//===- bench/bench_micro.cpp - Substrate microbenchmarks ----------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the substrate operations whose
/// throughput dominates a Paresy run: CS union/concatenation/star,
/// staging (infix closure + guide table construction), uniqueness
/// (sequential and concurrent hash set inserts), the compaction scan
/// and the two contains-check engines.
///
//===----------------------------------------------------------------------===//

#include "benchgen/Generators.h"
#include "core/CsHashSet.h"
#include "core/LanguageCache.h"
#include "gpusim/Scan.h"
#include "gpusim/WarpHashSet.h"
#include "lang/CharSeq.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "regex/Matcher.h"
#include "support/Compiler.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace paresy;

namespace {

/// A spec whose universe size grows with the range argument.
Spec specOfScale(int Scale) {
  benchgen::GenParams Params;
  Params.MaxLen = unsigned(Scale);
  Params.NumPos = 6;
  Params.NumNeg = 6;
  Params.Seed = 11;
  benchgen::GeneratedBenchmark B;
  std::string Error;
  if (!benchgen::generate(benchgen::BenchType::Type1, Params, B, &Error))
    reportFatalError("benchmark generation failed");
  return B.Examples;
}

struct CsSetup {
  Universe U;
  GuideTable GT;
  CsAlgebra A;
  std::vector<uint64_t> X, Y, Out;
  explicit CsSetup(const Spec &S) : U(S), GT(U), A(U, &GT) {
    X.assign(U.csWords(), 0);
    Y.assign(U.csWords(), 0);
    Out.assign(U.csWords(), 0);
    A.makeLiteral(X.data(), '0');
    A.makeLiteral(Y.data(), '1');
    A.question(X.data(), X.data());
    A.question(Y.data(), Y.data());
  }
};

} // namespace

static void BM_InfixClosure(benchmark::State &State) {
  Spec S = specOfScale(int(State.range(0)));
  std::vector<std::string> All = S.Pos;
  All.insert(All.end(), S.Neg.begin(), S.Neg.end());
  for (auto _ : State)
    benchmark::DoNotOptimize(infixClosure(All));
}
BENCHMARK(BM_InfixClosure)->Arg(4)->Arg(6)->Arg(8);

static void BM_GuideTableBuild(benchmark::State &State) {
  Spec S = specOfScale(int(State.range(0)));
  Universe U(S);
  for (auto _ : State) {
    GuideTable GT(U);
    benchmark::DoNotOptimize(GT.totalPairs());
  }
}
BENCHMARK(BM_GuideTableBuild)->Arg(4)->Arg(6)->Arg(8);

static void BM_CsUnion(benchmark::State &State) {
  CsSetup Setup(specOfScale(int(State.range(0))));
  for (auto _ : State) {
    Setup.A.unionOf(Setup.Out.data(), Setup.X.data(), Setup.Y.data());
    benchmark::DoNotOptimize(Setup.Out.data());
  }
}
BENCHMARK(BM_CsUnion)->Arg(4)->Arg(6)->Arg(8);

static void BM_CsConcatStaged(benchmark::State &State) {
  CsSetup Setup(specOfScale(int(State.range(0))));
  for (auto _ : State) {
    Setup.A.concat(Setup.Out.data(), Setup.X.data(), Setup.Y.data());
    benchmark::DoNotOptimize(Setup.Out.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Setup.GT.totalPairs()));
}
BENCHMARK(BM_CsConcatStaged)->Arg(4)->Arg(6)->Arg(8);

static void BM_CsConcatUnstaged(benchmark::State &State) {
  Spec S = specOfScale(int(State.range(0)));
  Universe U(S);
  CsAlgebra A(U, nullptr); // Ablation: no guide table.
  std::vector<uint64_t> X(U.csWords()), Y(U.csWords()), Out(U.csWords());
  A.makeLiteral(X.data(), '0');
  A.makeLiteral(Y.data(), '1');
  for (auto _ : State) {
    A.concat(Out.data(), X.data(), Y.data());
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_CsConcatUnstaged)->Arg(4)->Arg(6)->Arg(8);

static void BM_CsStar(benchmark::State &State) {
  CsSetup Setup(specOfScale(int(State.range(0))));
  for (auto _ : State) {
    Setup.A.star(Setup.Out.data(), Setup.X.data());
    benchmark::DoNotOptimize(Setup.Out.data());
  }
}
BENCHMARK(BM_CsStar)->Arg(4)->Arg(6)->Arg(8);

static void BM_CsHashSetInsert(benchmark::State &State) {
  size_t Words = 2;
  LanguageCache Cache(Words, 1 << 20);
  CsHashSet Set(Cache);
  Rng R(3);
  std::vector<uint64_t> Cs(Words);
  for (auto _ : State) {
    Cs[0] = R.next();
    Cs[1] = R.next();
    if (!Set.contains(Cs.data())) {
      uint32_t Idx = Cache.append(Cs.data(), Provenance{});
      Set.insert(Cs.data(), Idx);
    }
    benchmark::DoNotOptimize(Set.size());
    if (Cache.size() + 2 >= Cache.capacity())
      break;
  }
}
BENCHMARK(BM_CsHashSetInsert);

static void BM_WarpHashSetInsert(benchmark::State &State) {
  gpusim::WarpHashSet Set(2, 1 << 21);
  Rng R(3);
  uint64_t Key[2];
  uint32_t Id = 0;
  for (auto _ : State) {
    Key[0] = R.next();
    Key[1] = R.next();
    benchmark::DoNotOptimize(Set.insert(Key, Id++));
    if (Set.size() + 2 >= Set.capacity() * 8 / 10)
      break;
  }
}
BENCHMARK(BM_WarpHashSetInsert);

static void BM_ExclusiveScan(benchmark::State &State) {
  gpusim::Device D(gpusim::DeviceSpec{}, 0);
  size_t N = size_t(State.range(0));
  std::vector<uint32_t> In(N, 1);
  std::vector<uint64_t> Out(N);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        gpusim::exclusiveScan(D, In.data(), Out.data(), N));
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(N));
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 10)->Arg(1 << 16);

static void BM_DerivativeMatcher(benchmark::State &State) {
  RegexManager M;
  const Regex *Re = parseRegex(M, "10(0+1)*").Re;
  DerivativeMatcher D(M);
  for (auto _ : State)
    benchmark::DoNotOptimize(D.matches(Re, "101100101"));
}
BENCHMARK(BM_DerivativeMatcher);

static void BM_NfaMatcher(benchmark::State &State) {
  RegexManager M;
  const Regex *Re = parseRegex(M, "10(0+1)*").Re;
  NfaMatcher N(Re);
  for (auto _ : State)
    benchmark::DoNotOptimize(N.matches("101100101"));
}
BENCHMARK(BM_NfaMatcher);

BENCHMARK_MAIN();
