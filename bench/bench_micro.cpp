//===- bench/bench_micro.cpp - Substrate microbenchmarks ----------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks for the substrate operations whose throughput
/// dominates a Paresy run: CS union/concatenation/star, staging (infix
/// closure + guide table construction), the compaction scan and the
/// two contains-check engines. The uniqueness sets are covered by
/// bench_kernels (the hot-path bench), not duplicated here. Runs on
/// the shared bench harness (fixed seed, min-of-N) and emits
/// BENCH_micro.json; the CI perf-smoke job gates this file against
/// bench/baselines/BENCH_micro.json.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "benchgen/Generators.h"
#include "core/CsHashSet.h"
#include "core/LanguageCache.h"
#include "gpusim/Scan.h"
#include "gpusim/WarpHashSet.h"
#include "lang/CharSeq.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "regex/Matcher.h"
#include "support/Compiler.h"
#include "support/Rng.h"

#include <string>
#include <vector>

using namespace paresy;

namespace {

/// A spec whose universe size grows with the scale argument.
Spec specOfScale(int Scale) {
  benchgen::GenParams Params;
  Params.MaxLen = unsigned(Scale);
  Params.NumPos = 6;
  Params.NumNeg = 6;
  Params.Seed = 11;
  benchgen::GeneratedBenchmark B;
  std::string Error;
  if (!benchgen::generate(benchgen::BenchType::Type1, Params, B, &Error))
    reportFatalError("benchmark generation failed");
  return B.Examples;
}

struct CsSetup {
  Universe U;
  GuideTable GT;
  CsAlgebra A;
  std::vector<uint64_t> X, Y, Out;
  explicit CsSetup(const Spec &S) : U(S), GT(U), A(U, &GT) {
    X.assign(U.csWords(), 0);
    Y.assign(U.csWords(), 0);
    Out.assign(U.csWords(), 0);
    A.makeLiteral(X.data(), '0');
    A.makeLiteral(Y.data(), '1');
    A.question(X.data(), X.data());
    A.question(Y.data(), Y.data());
  }
};

std::string scaled(const char *Base, int Scale) {
  return std::string(Base) + ".le" + std::to_string(Scale);
}

void benchStaging(bench::Harness &H, int Scale) {
  Spec S = specOfScale(Scale);
  std::vector<std::string> All = S.Pos;
  All.insert(All.end(), S.Neg.begin(), S.Neg.end());
  H.bench(scaled("info.infix_closure", Scale), 1,
          [&] { infixClosure(All); });
  Universe U(S);
  H.bench(scaled("info.guide_table", Scale), 1, [&] {
    GuideTable GT(U);
    if (GT.totalPairs() == 0)
      reportFatalError("empty guide table");
  });
}

void benchAlgebra(bench::Harness &H, int Scale) {
  CsSetup Setup(specOfScale(Scale));
  H.bench(scaled("cs_union", Scale), Setup.U.csWords(), [&] {
    Setup.A.unionOf(Setup.Out.data(), Setup.X.data(), Setup.Y.data());
  });
  H.bench(scaled("cs_concat_staged", Scale), Setup.GT.totalPairs(),
          [&] {
            Setup.A.concat(Setup.Out.data(), Setup.X.data(),
                           Setup.Y.data());
          });
  H.bench(scaled("cs_star", Scale), Setup.GT.totalPairs(), [&] {
    Setup.A.star(Setup.Out.data(), Setup.X.data());
  });
}

void benchUnstaged(bench::Harness &H, int Scale) {
  Spec S = specOfScale(Scale);
  Universe U(S);
  CsAlgebra A(U, nullptr); // Ablation: no guide table.
  std::vector<uint64_t> X(U.csWords()), Y(U.csWords()), Out(U.csWords());
  A.makeLiteral(X.data(), '0');
  A.makeLiteral(Y.data(), '1');
  H.bench(scaled("info.cs_concat_unstaged", Scale), U.size(), [&] {
    A.concat(Out.data(), X.data(), Y.data());
  });
}

void benchScan(bench::Harness &H, size_t N) {
  gpusim::Device D(gpusim::DeviceSpec{}, 0);
  std::vector<uint32_t> In(N, 1);
  std::vector<uint64_t> Out(N);
  H.bench("info.exclusive_scan.n" + std::to_string(N), N, [&] {
    gpusim::exclusiveScan(D, In.data(), Out.data(), N);
  });
}

void benchMatchers(bench::Harness &H) {
  RegexManager M;
  const Regex *Re = parseRegex(M, "10(0+1)*").Re;
  // A batch of inputs per iteration: single-match iterations are so
  // short that allocator layout noise dominates them.
  std::vector<std::string> Inputs;
  Rng R(H.seed() + 3);
  for (int I = 0; I != 16; ++I) {
    std::string W = "10";
    for (uint64_t Len = R.range(0, 10); Len; --Len)
      W += R.chance(0.5) ? '1' : '0';
    Inputs.push_back(W);
  }
  DerivativeMatcher D(M);
  H.bench("info.matcher.derivative", Inputs.size(), [&] {
    for (const std::string &W : Inputs)
      D.matches(Re, W);
  });
  NfaMatcher N(Re);
  H.bench("info.matcher.nfa", Inputs.size(), [&] {
    for (const std::string &W : Inputs)
      N.matches(W);
  });
}

} // namespace

int main(int Argc, char **Argv) {
  bench::Harness H("micro", Argc, Argv);
  for (int Scale : {4, 6, 8}) {
    benchStaging(H, Scale);
    benchAlgebra(H, Scale);
  }
  benchUnstaged(H, 4);
  benchScan(H, size_t(1) << 10);
  benchScan(H, size_t(1) << 16);
  benchMatchers(H);
  return H.finish();
}
