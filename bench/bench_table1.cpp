//===- bench/bench_table1.cpp - Table 1: CPU vs GPU(model) --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: the same hard instance per benchmark type,
/// solved under all twelve cost functions by the measured sequential
/// CPU implementation and by the GPU-style implementation, whose time
/// comes from the calibrated SIMT model (DESIGN.md Sec. 1 - this
/// machine has no GPU; the column is labelled accordingly).
///
/// Scale note: the paper's rows each take ~1 h of CPU; ours take
/// seconds, which lands modelled GPU time on the ~0.2 s session floor
/// (the very "measurement threshold" the paper reports for small
/// Colab-GPU tasks, Sec. 4.2). The wall-clock speed-up column is
/// therefore floor-limited here; the scale-free comparison is the
/// *throughput* ratio (REs/s), which reproduces the paper's three
/// orders of magnitude, roughly independent of cost function.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "gpusim/GpuSynthesizer.h"
#include "support/Format.h"

using namespace paresy;
using namespace paresy::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  if (Opts.TimeoutSeconds == 5.0)
    Opts.TimeoutSeconds = 30.0;

  std::printf("# Table 1 reproduction: Paresy on hard scaled instances, "
              "CPU (measured) vs GPU (modelled)\n");
  std::printf("# GPU columns: analytical A100 model over the simulated "
              "kernels - see DESIGN.md hardware substitutions\n\n");

  TextTable Table({"Type", "Name", "Cost Function", "CPU Sec", "GPU Sec",
                   "Wall x", "CPU REs/s", "GPU REs/s", "Thruput x",
                   "# REs"});
  double ThroughputSum = 0, WallSum = 0, CpuSum = 0, GpuSum = 0;
  uint64_t ResSum = 0;
  unsigned Rows = 0;

  const auto &Costs = paperCostFunctions();
  gpusim::GpuOptions Gpu; // Default device spec: the modelled A100.
  double SessionFloor = Gpu.Spec.SessionOverheadSeconds;

  for (benchgen::BenchType Type :
       {benchgen::BenchType::Type1, benchgen::BenchType::Type2}) {
    // One known-hard instance per type (selected via the Fig. 1
    // sweep), solved under every cost function, like the paper's 12
    // rows per type.
    benchgen::GenParams Params;
    Params.MaxLen = 5;
    Params.NumPos = 6;
    Params.NumNeg = 6;
    Params.Seed = Type == benchgen::BenchType::Type1 ? 42 : 150;
    benchgen::GeneratedBenchmark B;
    std::string Error;
    if (!benchgen::generate(Type, Params, B, &Error))
      continue;

    for (size_t C = 0; C != Costs.size(); ++C) {
      SynthOptions SOpts;
      SOpts.Cost = Costs[C];
      SOpts.TimeoutSeconds = Opts.TimeoutSeconds;

      WallTimer CpuTimer;
      SynthResult Cpu = synthesize(B.Examples, Alphabet::of("01"), SOpts);
      double CpuSec = CpuTimer.seconds();

      gpusim::GpuSynthResult GpuR =
          gpusim::synthesizeGpu(B.Examples, Alphabet::of("01"), SOpts, Gpu);

      if (!Cpu.found() || !GpuR.found()) {
        Table.addRow({std::to_string(int(Type)), B.Name, Costs[C].name(),
                      statusName(Cpu.Status),
                      statusName(GpuR.Result.Status)});
        continue;
      }

      uint64_t Res = GpuR.Result.Stats.CandidatesGenerated;
      double GpuSec = GpuR.ModeledGpuSeconds;
      double GpuCompute = GpuSec - SessionFloor;
      double Wall = CpuSec / GpuSec;
      double CpuRate = double(Res) / CpuSec;
      double GpuRate = GpuCompute > 0 ? double(Res) / GpuCompute : 0;
      double Thruput = CpuRate > 0 ? GpuRate / CpuRate : 0;

      Table.addRow({std::to_string(int(Type)), B.Name, Costs[C].name(),
                    formatSeconds(CpuSec), formatSeconds(GpuSec),
                    formatSpeedup(Wall), withCommas(uint64_t(CpuRate)),
                    withCommas(uint64_t(GpuRate)),
                    formatSpeedup(Thruput), withCommas(Res)});
      CpuSum += CpuSec;
      GpuSum += GpuSec;
      WallSum += Wall;
      ThroughputSum += Thruput;
      ResSum += Res;
      ++Rows;
    }
  }

  std::printf("%s", Table.render().c_str());
  if (Rows) {
    std::printf("\nAverage: CPU %.4f s, GPU(model) %.4f s, wall "
                "speed-up %s, throughput speed-up %s, #REs %s\n",
                CpuSum / Rows, GpuSum / Rows,
                formatSpeedup(WallSum / Rows).c_str(),
                formatSpeedup(ThroughputSum / Rows).c_str(),
                withCommas(ResSum / Rows).c_str());
    std::printf("Paper (unscaled): avg CPU 4465 s, GPU 4.12 s, 1077x, "
                "19,127,861,447 REs.\n");
    std::printf("At paper-sized workloads the session floor amortises "
                "away and the wall ratio converges to the\nthroughput "
                "ratio; at this harness's scale the GPU column sits on "
                "the ~%.1fs floor (the paper's own\nColab measurement "
                "threshold), capping the wall ratio.\n",
                SessionFloor);
  }
  return 0;
}
