//===- bench/bench_table2.cpp - Table 2: Paresy vs AlphaRegex -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2: the 25 classroom instances (reconstructed;
/// see benchgen/AlphaSuite.h) solved by the AlphaRegex baseline and by
/// Paresy's CPU implementation on the same machine, with the
/// AlphaRegex-comparable cost function (20, 20, 20, 5, 30). Reported
/// per row: running times, speed-up, costs (with a marker when
/// AlphaRegex's answer is not minimal), and expressions checked.
///
/// Notes mirrored from the paper:
///  * rows that exceed the timeout print the timeout bound, like the
///    paper's ">20000";
///  * no6/no9 need >64-bit characteristic sequences - the paper's GPU
///    rejects them (WarpCore key width); our WarpHashSet handles
///    multi-word keys, so they run here (documented improvement).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "baseline/AlphaRegex.h"
#include "benchgen/AlphaSuite.h"
#include "support/Format.h"

#include <cmath>

using namespace paresy;
using namespace paresy::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  if (Opts.TimeoutSeconds == 5.0)
    Opts.TimeoutSeconds = 10.0;
  const CostFn TableCost(20, 20, 20, 5, 30);

  std::printf("# Table 2 reproduction: AlphaRegex vs Paresy (CPU), "
              "cost %s, timeout %.0f s per engine per row\n\n",
              TableCost.name().c_str(), Opts.TimeoutSeconds);

  // "aR checked" counts complete expressions tested against the spec
  // (the paper's metric); "aR states" counts every search state popped
  // - our reimplementation's approximation pruning is strong enough
  // that few complete candidates survive to be checked.
  TextTable Table({"No", "aR Sec", "Paresy Sec", "Speed-up", "aR Cost",
                   "P Cost", "aR checked", "aR states", "P #REs"});
  unsigned BothSolved = 0, ParesyFaster = 0, AlphaNonMinimal = 0;

  for (const benchgen::SuiteInstance &Inst : benchgen::alphaRegexSuite()) {
    baseline::AlphaRegexOptions AOpts;
    AOpts.Cost = TableCost;
    AOpts.TimeoutSeconds = Opts.TimeoutSeconds;
    WallTimer ATimer;
    baseline::AlphaRegexResult A =
        baseline::alphaRegexSynthesize(Inst.Examples, Alphabet::of("01"),
                                       AOpts);
    double ASec = ATimer.seconds();

    SynthOptions POpts;
    POpts.Cost = TableCost;
    POpts.TimeoutSeconds = Opts.TimeoutSeconds;
    WallTimer PTimer;
    SynthResult P = synthesize(Inst.Examples, Alphabet::of("01"), POpts);
    double PSec = PTimer.seconds();

    std::string ACell = A.found() ? formatSeconds(ASec)
                                  : (std::string(">") +
                                     formatSeconds(Opts.TimeoutSeconds, 0));
    std::string PCell = P.found() ? formatSeconds(PSec)
                                  : statusName(P.Status);
    std::string Speedup = "-", ACost = "-", PCost = "-";
    if (A.found() && P.found()) {
      ++BothSolved;
      if (PSec < ASec)
        ++ParesyFaster;
      Speedup = formatSpeedup(ASec / PSec);
      ACost = std::to_string(A.Cost);
      if (A.Cost > P.Cost) {
        ACost += "*"; // Not minimal (the paper prints these bold).
        ++AlphaNonMinimal;
      }
      PCost = std::to_string(P.Cost);
    }
    Table.addRow({Inst.Name, ACell, PCell, Speedup, ACost, PCost,
                  A.found() ? withCommas(A.Checked) : "-",
                  A.found() ? withCommas(A.Expanded) : "-",
                  P.found() ? withCommas(P.Stats.CandidatesGenerated)
                            : "-"});
  }

  std::printf("%s", Table.render().c_str());
  std::printf("\n%u/25 solved by both engines within the timeout; "
              "Paresy faster on %u of those; AlphaRegex non-minimal "
              "(marked *) on %u\n",
              BothSolved, ParesyFaster, AlphaNonMinimal);
  std::printf("Paper shape: Paresy always faster despite checking more "
              "REs; AlphaRegex non-minimal on ~25%% of rows\n");
  return 0;
}
