//===- bench/Harness.h - Self-describing benchmark harness -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared measurement harness every bench binary links. It fixes
/// the methodology the perf trajectory depends on:
///
///  * deterministic workloads: a fixed RNG seed exposed via seed(),
///  * auto-calibrated iteration counts (each repetition runs long
///    enough to dominate clock granularity),
///  * warmup plus min-of-N repetitions (min, not mean: the minimum is
///    the best estimate of the code's true cost under CI noise),
///  * machine/config capture (compiler, build type, arch, threads) and
///    a synthetic calibration metric so results from different
///    machines can be compared after normalisation,
///  * canonical JSON output to BENCH_<name>.json (schema documented in
///    DESIGN.md Sec. 6; consumed by bench/compare_bench.py and the CI
///    perf-smoke job).
///
/// Flags understood by every harness binary:
///
///   --quick          CI-sized run (fewer reps, shorter reps)
///   --out PATH       output path (default BENCH_<name>.json)
///   --reps N         repetitions per metric
///   --filter SUBSTR  only run metrics whose name contains SUBSTR
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_BENCH_HARNESS_H
#define PARESY_BENCH_HARNESS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace paresy {
namespace bench {

/// One measured metric as it lands in the JSON report.
struct MetricResult {
  std::string Name;
  std::string Unit;       ///< "items/s" for timed metrics.
  double Value = 0;       ///< Throughput (items/s) or the raw value.
  double SecondsPerIter = 0;
  uint64_t ItemsPerIter = 0;
  uint64_t Iterations = 0; ///< Per repetition, after calibration.
  int Repetitions = 0;
};

/// Measurement session of one bench binary. Construct, call bench() /
/// metric() for every workload, then return finish() from main().
class Harness {
public:
  /// \p Name keys the output file (BENCH_<Name>.json); \p Argc/Argv
  /// are the binary's command line (unknown flags abort with usage).
  Harness(std::string Name, int Argc, char **Argv);

  /// True when --quick was passed: CI-sized repetitions.
  bool quick() const { return Quick; }

  /// The fixed seed every workload must use for its RNG.
  uint64_t seed() const { return 42; }

  /// Times \p Fn, which performs ONE iteration of the workload
  /// processing \p ItemsPerIter items. The harness calibrates how many
  /// iterations fill a repetition, warms up, then records the minimum
  /// over the configured repetitions.
  void bench(const std::string &Metric, uint64_t ItemsPerIter,
             const std::function<void()> &Fn);

  /// Records a metric measured by the caller (e.g. a speedup ratio or
  /// a byte count). Not gated by the calibration-normalised compare.
  void metric(const std::string &Name, double Value,
              const std::string &Unit);

  /// Runs the synthetic calibration workload, prints the table, and
  /// writes the JSON report. Returns the process exit code.
  int finish();

private:
  bool selected(const std::string &Metric) const;

  std::string Name;
  std::string Out;
  std::string Filter;
  bool Quick = false;
  bool RepsExplicit = false;
  int Reps = 9;
  double MinRepSeconds = 0.05;
  std::vector<MetricResult> Results;
};

} // namespace bench
} // namespace paresy

#endif // PARESY_BENCH_HARNESS_H
