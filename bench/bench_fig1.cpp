//===- bench/bench_fig1.cpp - Figure 1: cost-function sweep -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 1: synthesis time of every generated benchmark
/// under all twelve cost functions, with benchmarks ordered by their
/// (1,1,1,1,1) duration on the x-axis. Emits one CSV-ish series block
/// per cost function plus the observation summary the paper draws
/// (fast-benchmark clustering, the clean (1,1,1,1,1) ramp, cheap
/// Kleene-star-averse runs, slow expensive-union runs).
///
/// Scaled instance sizes; see EXPERIMENTS.md for paper-vs-measured.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace paresy;
using namespace paresy::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  if (Opts.TimeoutSeconds == 5.0)
    Opts.TimeoutSeconds = 2.0; // Paper used 5 s on an A100; scale down.

  // Generate the benchmark list (Type 1 + Type 2).
  std::vector<benchgen::GeneratedBenchmark> Benchmarks;
  for (benchgen::BenchType Type :
       {benchgen::BenchType::Type1, benchgen::BenchType::Type2}) {
    for (const benchgen::GenParams &Params : sweepGrid(Type, Opts.Scale)) {
      benchgen::GeneratedBenchmark B;
      std::string Error;
      if (benchgen::generate(Type, Params, B, &Error))
        Benchmarks.push_back(std::move(B));
    }
  }
  std::printf("# Figure 1 reproduction: %zu benchmarks x 12 cost "
              "functions, timeout %.1fs\n",
              Benchmarks.size(), Opts.TimeoutSeconds);

  // Run the full grid.
  const auto &Costs = paperCostFunctions();
  // Results[cost][bench] = cell.
  std::vector<std::vector<SweepCell>> Results(Costs.size());
  for (size_t C = 0; C != Costs.size(); ++C)
    for (const auto &B : Benchmarks)
      Results[C].push_back(runCell(B, Costs[C], Opts.TimeoutSeconds));

  // Order benchmarks by their (1,1,1,1,1) duration - the x-axis.
  std::vector<size_t> Order(Benchmarks.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Results[0][A].Seconds < Results[0][B].Seconds;
  });

  // Series output (x = rank, y = seconds; timeouts marked).
  std::printf("\nbenchmark,costfn,rank,seconds,status\n");
  for (size_t C = 0; C != Costs.size(); ++C)
    for (size_t Rank = 0; Rank != Order.size(); ++Rank) {
      const SweepCell &Cell = Results[C][Order[Rank]];
      std::printf("%s,\"%s\",%zu,%.4f,%s\n", Cell.Benchmark.c_str(),
                  Cell.CostName.c_str(), Rank, Cell.Seconds,
                  statusName(Cell.Status));
    }

  if (Opts.Csv)
    return 0;

  // The paper's headline observations, quantified on this run.
  std::printf("\n# Summary per cost function\n");
  TextTable Table({"Cost function", "solved", "timeout", "mean s",
                   "max s", "mean #REs"});
  double Under1 = 0, Total = 0;
  for (size_t C = 0; C != Costs.size(); ++C) {
    unsigned Solved = 0, Timeouts = 0;
    double Sum = 0, Max = 0;
    double Res = 0;
    for (const SweepCell &Cell : Results[C]) {
      if (Cell.Status == SynthStatus::Found)
        ++Solved;
      if (Cell.Status == SynthStatus::Timeout)
        ++Timeouts;
      Sum += Cell.Seconds;
      Max = std::max(Max, Cell.Seconds);
      Res += double(Cell.Candidates);
      if (Cell.Seconds < 1.0)
        ++Under1;
      ++Total;
    }
    Table.addRow({Costs[C].name(), std::to_string(Solved),
                  std::to_string(Timeouts),
                  formatSeconds(Sum / double(Results[C].size()), 3),
                  formatSeconds(Max, 3),
                  withCommas(uint64_t(Res / double(Results[C].size())))});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\n%.1f%% of all (benchmark, cost) cells finished in "
              "under 1 second\n",
              100.0 * Under1 / Total);
  return 0;
}
