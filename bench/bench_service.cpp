//===- bench/bench_service.cpp - Repeated-spec workload through the service ---===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving benchmark: a request stream with heavy spec repetition
/// (the realistic serving distribution per the REI challenge corpus)
/// replayed twice - once cold through per-request runSearch, once
/// through a SynthService - and the per-request cost compared. Emits
/// machine-readable JSON to BENCH_service.json (override with --out)
/// so the perf trajectory of the service layer has data points.
///
///   bench_service [--requests N] [--distinct M] [--workers W]
///                 [--out PATH]
///
//===----------------------------------------------------------------------===//

#include "benchgen/Generators.h"
#include "engine/BackendRegistry.h"
#include "service/SynthService.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace paresy;

namespace {

struct Options {
  size_t Requests = 200;
  size_t Distinct = 8;
  unsigned Workers = 4;
  std::string Out = "BENCH_service.json";
};

Options parseArgs(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--requests")
      Opts.Requests = size_t(std::atoll(Next()));
    else if (Arg == "--distinct")
      Opts.Distinct = size_t(std::atoll(Next()));
    else if (Arg == "--workers")
      Opts.Workers = unsigned(std::atol(Next()));
    else if (Arg == "--out")
      Opts.Out = Next();
    else {
      std::fprintf(stderr,
                   "usage: bench_service [--requests N] [--distinct M] "
                   "[--workers W] [--out PATH]\n");
      std::exit(2);
    }
  }
  // atoll parses garbage as 0; a zero pool or stream is meaningless.
  if (Opts.Requests == 0)
    Opts.Requests = 1;
  if (Opts.Distinct == 0)
    Opts.Distinct = 1;
  return Opts;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts = parseArgs(Argc, Argv);

  // The distinct spec pool: small Type 1/2 instances that each solve
  // in milliseconds, so the benchmark measures serving overhead and
  // reuse, not one giant search.
  std::vector<Spec> Pool;
  for (size_t I = 0; Pool.size() < Opts.Distinct; ++I) {
    benchgen::GenParams Params;
    Params.MaxLen = 4;
    Params.NumPos = 4;
    Params.NumNeg = 4;
    Params.Seed = 100 + I;
    benchgen::GeneratedBenchmark B;
    std::string Error;
    benchgen::BenchType Type = I % 2 ? benchgen::BenchType::Type2
                                     : benchgen::BenchType::Type1;
    if (!benchgen::generate(Type, Params, B, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    Pool.push_back(B.Examples);
  }

  // A skewed request stream over the pool (low ids dominate, as hot
  // specs dominate real traffic).
  Rng R(42);
  std::vector<size_t> Stream;
  Stream.reserve(Opts.Requests);
  for (size_t I = 0; I != Opts.Requests; ++I) {
    size_t A = R.next() % Pool.size();
    size_t B = R.next() % Pool.size();
    Stream.push_back(std::min(A, B));
  }

  Alphabet Sigma = Alphabet::of("01");
  SynthOptions SOpts;

  // Cold baseline: every request pays staging + search.
  WallTimer ColdTimer;
  std::vector<SynthResult> Cold;
  Cold.reserve(Stream.size());
  for (size_t Idx : Stream)
    Cold.push_back(engine::synthesizeWith("cpu", Pool[Idx], Sigma, SOpts));
  double ColdSeconds = ColdTimer.seconds();

  // The same stream through the service.
  service::ServiceOptions SvcOpts;
  SvcOpts.Backend = "cpu";
  SvcOpts.Workers = Opts.Workers;
  SvcOpts.ResultCacheCapacity = Opts.Distinct;
  service::SynthService Service(std::move(SvcOpts));
  WallTimer ServiceTimer;
  std::vector<service::SynthService::ResultFuture> Futures;
  Futures.reserve(Stream.size());
  for (size_t Idx : Stream)
    Futures.push_back(Service.submit(Pool[Idx], Sigma, SOpts));
  std::vector<SynthResult> Served;
  Served.reserve(Futures.size());
  for (auto &F : Futures)
    Served.push_back(F.get());
  double ServiceSeconds = ServiceTimer.seconds();

  // Served results must match the cold baseline request for request.
  size_t Mismatches = 0;
  for (size_t I = 0; I != Stream.size(); ++I)
    if (Cold[I].Status != Served[I].Status ||
        Cold[I].Regex != Served[I].Regex || Cold[I].Cost != Served[I].Cost)
      ++Mismatches;

  service::ServiceStats St = Service.stats();
  double Speedup = ServiceSeconds > 0 ? ColdSeconds / ServiceSeconds : 0;

  std::printf("requests            %zu over %zu distinct specs\n",
              Stream.size(), Pool.size());
  std::printf("cold                %.4f s (%.4f ms/request)\n", ColdSeconds,
              1e3 * ColdSeconds / double(Stream.size()));
  std::printf("service (W=%u)      %.4f s (%.4f ms/request, %.1fx)\n",
              Opts.Workers, ServiceSeconds,
              1e3 * ServiceSeconds / double(Stream.size()), Speedup);
  std::printf("hits/misses/coal    %llu / %llu / %llu\n",
              (unsigned long long)St.Hits, (unsigned long long)St.Misses,
              (unsigned long long)St.Coalesced);
  std::printf("mismatches          %zu\n", Mismatches);

  std::FILE *Json = std::fopen(Opts.Out.c_str(), "w");
  if (!Json) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Opts.Out.c_str());
    return 1;
  }
  std::fprintf(
      Json,
      "{\n"
      "  \"bench\": \"service\",\n"
      "  \"requests\": %zu,\n"
      "  \"distinct_specs\": %zu,\n"
      "  \"workers\": %u,\n"
      "  \"cold_seconds\": %.6f,\n"
      "  \"service_seconds\": %.6f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"hits\": %llu,\n"
      "  \"misses\": %llu,\n"
      "  \"coalesced\": %llu,\n"
      "  \"evictions\": %llu,\n"
      "  \"searches\": %llu,\n"
      "  \"peak_queue_depth\": %zu,\n"
      "  \"mismatches\": %zu\n"
      "}\n",
      Stream.size(), Pool.size(), Opts.Workers, ColdSeconds,
      ServiceSeconds, Speedup, (unsigned long long)St.Hits,
      (unsigned long long)St.Misses, (unsigned long long)St.Coalesced,
      (unsigned long long)St.Evictions, (unsigned long long)St.Searches,
      St.PeakQueueDepth, Mismatches);
  std::fclose(Json);
  std::printf("wrote %s\n", Opts.Out.c_str());
  return Mismatches == 0 ? 0 : 1;
}
