//===- bench/bench_serve.cpp - Network serving load replay --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving perf gate (DESIGN.md Sec. 12): an REI-shaped request
/// stream replayed against a real SynthServer over loopback TCP. The
/// stream has the serving distribution's signature features: a small
/// distinct-spec pool with heavy repetition (cache hits), an 80/20
/// two-tenant skew, and mid-stream disconnects that park in-flight
/// sessions. Requests are pipelined, so latency includes queueing.
///
/// Gated metrics (calibration-normalised by compare_bench.py):
///
///   serve.throughput - completed requests per wall second;
///   serve.p50 / serve.p99 - *inverse* latency percentiles (requests
///       per second at the percentile latency), so "bigger is better"
///       holds and the standard items/s gate applies. Disconnected
///       requests never complete and are excluded.
///
/// Context metrics: info.serve.shed_rate (from a deliberately
/// undersized-queue overload phase), info.serve.hit_rate,
/// info.serve.progress_frames.
///
/// Emits BENCH_serve.json; CI perf-smoke gates it against
/// bench/baselines/BENCH_serve.json.
///
/// A second, harness-free mode drives a LIVE server instead of
/// spawning one:
///
///   bench_serve --soak HOST:PORT [--seconds N]
///
/// replays the connect / pipeline / disconnect churn in a loop until
/// the deadline, asserting every request completes and that answers
/// stay stable loop over loop. The CI server-integration job runs it
/// against its long-lived server and then asserts the server process
/// leaked no file descriptors and no unbounded memory.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "benchgen/Generators.h"
#include "serve/Client.h"
#include "serve/SynthServer.h"
#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace paresy;
using namespace paresy::serve;

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

Spec generated(uint64_t Seed, bool Type2) {
  benchgen::GenParams Params;
  Params.MaxLen = 4;
  Params.NumPos = 4;
  Params.NumNeg = 4;
  Params.Seed = Seed;
  benchgen::GeneratedBenchmark B;
  std::string Error;
  if (!benchgen::generate(Type2 ? benchgen::BenchType::Type2
                                : benchgen::BenchType::Type1,
                          Params, B, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    std::exit(1);
  }
  return B.Examples;
}

/// Latency at quantile \p Q (0..1] over \p Sorted ascending latencies.
double percentile(const std::vector<double> &Sorted, double Q) {
  size_t N = Sorted.size();
  size_t I = size_t(Q * double(N));
  return Sorted[std::min(I, N - 1)];
}

struct ReplayResult {
  std::vector<double> Latencies; ///< Seconds, completed requests only.
  double WallSeconds = 0;
  uint64_t Completed = 0;
  uint64_t Shed = 0;
  uint64_t Hits = 0;
  uint64_t Submitted = 0;
  uint64_t ProgressFrames = 0;
  std::vector<std::string> Regexes; ///< Per request id ("" if no result).
};

/// One full replay against a fresh server: fresh caches, so every
/// rep sees the same hit/miss mix and reps are comparable.
ReplayResult replay(const std::vector<Spec> &Pool,
                    const std::vector<size_t> &Stream,
                    const std::vector<bool> &HotTenant,
                    const std::vector<Spec> &ChurnSpecs) {
  ServerOptions O;
  O.Workers = 1;
  O.Service.Backend = "cpu";
  O.MaxQueueDepth = Stream.size() + 8; // The replay must never shed.
  SynthServer Server(std::move(O));
  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    std::exit(1);
  }

  ServeClient Hot, Cold;
  if (!Hot.connect("127.0.0.1", Server.port(), "hot", 1.0, &Error) ||
      !Cold.connect("127.0.0.1", Server.port(), "cold", 1.0, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    std::exit(1);
  }

  const size_t N = Stream.size();
  std::vector<double> SubmitAt(N, 0);
  std::vector<double> DoneAt(N, -1);
  ReplayResult R;
  R.Regexes.assign(N, "");

  SynthOptions Opts;
  Clock::time_point Start = Clock::now();

  // Pipelined submission, with mid-stream disconnects at the quarter
  // marks: a churn client submits a fresh (cache-missing) spec and
  // vanishes, parking its search - background work the server carries
  // while serving the measured stream.
  size_t HotCount = 0, ColdCount = 0, Churn = 0;
  for (size_t I = 0; I != N; ++I) {
    if (Churn < ChurnSpecs.size() && I == (Churn + 1) * N / 4) {
      ServeClient D;
      if (D.connect("127.0.0.1", Server.port(), "churn", 1.0, &Error)) {
        D.submit(1, ChurnSpecs[Churn], "01", Opts);
        D.disconnect();
      }
      ++Churn;
    }
    ServeClient &C = HotTenant[I] ? Hot : Cold;
    (HotTenant[I] ? HotCount : ColdCount)++;
    SubmitAt[I] = since(Start);
    if (!C.submit(I, Pool[Stream[I]], "01", Opts)) {
      std::fprintf(stderr, "error: submit failed mid-replay\n");
      std::exit(1);
    }
  }

  // Drain both connections concurrently, stamping arrival times; each
  // thread owns its own connection and its own request ids.
  auto drain = [&](ServeClient &C, size_t Expect) {
    Frame F;
    size_t Got = 0;
    while (Got < Expect && C.next(F)) {
      if (F.Type == FrameType::Result) {
        DoneAt[F.Result.RequestId] = since(Start);
        R.Regexes[F.Result.RequestId] =
            SynthStatus(F.Result.Status) == SynthStatus::Found
                ? F.Result.Regex
                : "<" + std::string(statusName(SynthStatus(F.Result.Status))) +
                      ">";
        ++Got;
      } else if (F.Type == FrameType::Overloaded) {
        DoneAt[F.Overloaded.RequestId] = -2;
        ++Got;
      }
    }
  };
  std::thread ColdDrain([&] { drain(Cold, ColdCount); });
  drain(Hot, HotCount);
  ColdDrain.join();
  R.WallSeconds = since(Start);

  for (size_t I = 0; I != N; ++I) {
    if (DoneAt[I] >= 0) {
      ++R.Completed;
      R.Latencies.push_back(DoneAt[I] - SubmitAt[I]);
    } else if (DoneAt[I] == -2)
      ++R.Shed;
  }
  std::sort(R.Latencies.begin(), R.Latencies.end());

  service::ServiceStats St = Server.service().stats();
  R.Hits = St.Hits;
  R.Submitted = St.Submitted;
  R.ProgressFrames = Server.stats().ProgressFrames;
  Hot.goodbye();
  Cold.goodbye();
  Server.stop();
  return R;
}

/// The --soak mode: loops the churn pattern against an already-running
/// server until \p Seconds elapse. Returns a process exit code.
int runSoak(const std::string &Addr, double Seconds) {
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon + 1 == Addr.size()) {
    std::fprintf(stderr, "error: --soak wants HOST:PORT\n");
    return 2;
  }
  std::string Host = Addr.substr(0, Colon);
  long Port = std::atol(Addr.c_str() + Colon + 1);
  if (Port <= 0 || Port > 65535) {
    std::fprintf(stderr, "error: bad port in --soak '%s'\n", Addr.c_str());
    return 2;
  }

  const size_t Distinct = 6;
  std::vector<Spec> Pool;
  for (size_t I = 0; I != Distinct; ++I)
    Pool.push_back(generated(100 + I, I % 2));

  std::vector<std::string> FirstAnswers(Distinct);
  uint64_t Loops = 0, Requests = 0, Churned = 0;
  SynthOptions Opts;
  std::string Error;
  Clock::time_point Start = Clock::now();
  while (since(Start) < Seconds) {
    // Fresh connections every loop: connection setup/teardown is the
    // descriptor-churn half of what the soak is probing.
    ServeClient C;
    if (!C.connect(Host, uint16_t(Port), "soak", 1.0, &Error)) {
      std::fprintf(stderr, "error: loop %llu: %s\n",
                   (unsigned long long)Loops, Error.c_str());
      return 1;
    }
    for (size_t I = 0; I != Distinct; ++I)
      if (!C.submit(I, Pool[I], "01", Opts)) {
        std::fprintf(stderr, "error: loop %llu: submit failed\n",
                     (unsigned long long)Loops);
        return 1;
      }
    Frame F;
    size_t Got = 0;
    while (Got < Distinct && C.next(F, &Error)) {
      if (F.Type != FrameType::Result)
        continue;
      ++Got;
      ++Requests;
      std::string Answer =
          SynthStatus(F.Result.Status) == SynthStatus::Found
              ? F.Result.Regex
              : "<" +
                    std::string(
                        statusName(SynthStatus(F.Result.Status))) +
                    ">";
      std::string &First = FirstAnswers[F.Result.RequestId];
      if (First.empty())
        First = Answer;
      else if (First != Answer) {
        std::fprintf(stderr,
                     "error: loop %llu: answer drifted (%s vs %s)\n",
                     (unsigned long long)Loops, Answer.c_str(),
                     First.c_str());
        return 1;
      }
    }
    if (Got != Distinct) {
      std::fprintf(stderr, "error: loop %llu: lost %zu request(s): %s\n",
                   (unsigned long long)Loops, Distinct - Got,
                   Error.c_str());
      return 1;
    }
    C.goodbye();

    // Every fourth loop a churn client parks an in-flight search by
    // vanishing: the park budget must evict, not accumulate.
    if (Loops % 4 == 3) {
      ServeClient D;
      if (D.connect(Host, uint16_t(Port), "soak-churn", 1.0, &Error)) {
        D.submit(1, generated(3000 + Loops, Loops % 2), "01", Opts);
        D.disconnect();
        ++Churned;
      }
    }
    ++Loops;
  }

  // One last stats round trip, printed for the CI log.
  ServeClient C;
  if (C.connect(Host, uint16_t(Port), "soak", 1.0, &Error)) {
    Frame F;
    if (C.requestStats() && C.next(F) &&
        F.Type == FrameType::StatsReply)
      std::fputs(F.Stats.Text.c_str(), stdout);
    C.goodbye();
  }
  std::printf("soak: %llu loop(s), %llu request(s), %llu churn "
              "disconnect(s), %.1f s, answers stable\n",
              (unsigned long long)Loops, (unsigned long long)Requests,
              (unsigned long long)Churned, since(Start));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // The soak mode is handled before the harness (it measures nothing
  // and must not write a BENCH report).
  std::string SoakAddr;
  double SoakSeconds = 120;
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--soak" && I + 1 < Argc)
      SoakAddr = Argv[I + 1];
    else if (std::string(Argv[I]) == "--seconds" && I + 1 < Argc)
      SoakSeconds = std::atof(Argv[I + 1]);
  }
  if (!SoakAddr.empty())
    return runSoak(SoakAddr, SoakSeconds);

  bench::Harness H("serve", Argc, Argv);

  // The distinct pool: small Type 1/2 instances (the bench_service
  // sizing - each solves in milliseconds, so the replay measures
  // serving, not one giant search).
  const size_t Distinct = 8;
  std::vector<Spec> Pool;
  for (size_t I = 0; I != Distinct; ++I)
    Pool.push_back(generated(100 + I, I % 2));
  std::vector<Spec> ChurnSpecs;
  for (size_t I = 0; I != 3; ++I)
    ChurnSpecs.push_back(generated(900 + I, I % 2));

  // The skewed stream: low pool ids dominate (hot specs dominate real
  // traffic), and ~80% of requests come from the "hot" tenant.
  const size_t Requests = H.quick() ? 60 : 120;
  Rng Rand(H.seed());
  std::vector<size_t> Stream;
  std::vector<bool> HotTenant;
  for (size_t I = 0; I != Requests; ++I) {
    size_t A = Rand.next() % Distinct;
    size_t B = Rand.next() % Distinct;
    Stream.push_back(std::min(A, B));
    HotTenant.push_back(Rand.next() % 10 < 8);
  }

  // Min-of-N across fresh-server reps (the harness's own methodology,
  // applied per percentile: the minimum is the best estimate of true
  // cost under CI noise).
  const int Reps = H.quick() ? 2 : 3;
  double BestP50 = 1e9, BestP99 = 1e9, BestThroughput = 0;
  ReplayResult First;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    ReplayResult R =
        replay(Pool, Stream, HotTenant, ChurnSpecs);
    if (R.Completed != Requests || R.Shed != 0) {
      std::fprintf(stderr,
                   "error: replay lost requests (%llu/%zu done, %llu "
                   "shed)\n",
                   (unsigned long long)R.Completed, Requests,
                   (unsigned long long)R.Shed);
      return 1;
    }
    if (Rep == 0)
      First = R;
    else if (R.Regexes != First.Regexes) {
      // The wire must not change answers, rep over rep.
      std::fprintf(stderr, "error: replay results diverged across reps\n");
      return 1;
    }
    BestP50 = std::min(BestP50, percentile(R.Latencies, 0.50));
    BestP99 = std::min(BestP99, percentile(R.Latencies, 0.99));
    BestThroughput = std::max(
        BestThroughput, double(R.Completed) / R.WallSeconds);
  }

  // Overload phase (context only): an undersized queue under the same
  // pipelined stream must shed rather than stall.
  uint64_t OverloadShed = 0;
  const size_t OverloadRequests = 12;
  {
    ServerOptions O;
    O.Workers = 1;
    O.Service.Backend = "cpu";
    O.MaxQueueDepth = 2;
    SynthServer Server(std::move(O));
    std::string Error;
    if (!Server.start(&Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    ServeClient C;
    if (!C.connect("127.0.0.1", Server.port(), "burst", 1.0, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    SynthOptions Opts;
    for (size_t I = 0; I != OverloadRequests; ++I)
      C.submit(I, generated(700 + I, I % 2), "01", Opts);
    Frame F;
    size_t Got = 0;
    while (Got < OverloadRequests && C.next(F)) {
      if (F.Type == FrameType::Overloaded) {
        ++OverloadShed;
        ++Got;
      } else if (F.Type == FrameType::Result)
        ++Got;
    }
    C.goodbye();
    Server.stop();
  }

  std::printf("replay              %zu requests over %zu specs, "
              "%d rep(s), %zu disconnect(s)\n",
              Requests, Distinct, Reps, ChurnSpecs.size());
  std::printf("latency             p50 %.3f ms, p99 %.3f ms\n",
              1e3 * BestP50, 1e3 * BestP99);
  std::printf("throughput          %.1f requests/s\n", BestThroughput);
  std::printf("hit rate            %.2f (%llu/%llu)\n",
              double(First.Hits) / double(First.Submitted),
              (unsigned long long)First.Hits,
              (unsigned long long)First.Submitted);
  std::printf("overload shed       %llu/%zu\n",
              (unsigned long long)OverloadShed, OverloadRequests);

  H.metric("serve.throughput", BestThroughput, "items/s");
  H.metric("serve.p50", 1.0 / BestP50, "items/s");
  H.metric("serve.p99", 1.0 / BestP99, "items/s");
  H.metric("info.serve.shed_rate",
           double(OverloadShed) / double(OverloadRequests), "ratio");
  H.metric("info.serve.hit_rate",
           double(First.Hits) / double(First.Submitted), "ratio");
  H.metric("info.serve.progress_frames", double(First.ProgressFrames),
           "count");
  return H.finish();
}
