//===- bench/bench_ablations.cpp - Design-choice ablations --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the algorithmic choices DESIGN.md calls out, by running
/// one midsize instance with each choice disabled:
///
///   guide-table   staging off: splits re-derived per concatenation;
///   uniqueness    duplicate languages kept (bounded by memory);
///   pow2-padding  exact CS bit counts;
///   eps-seed      the pseudocode-faithful cache without {epsilon}
///                 (run under a cost function where it matters);
///   naive-syntax  the strawman of Sec. 3: enumerate syntax trees
///                 instead of languages (the regex/Enumerator oracle).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "regex/Enumerator.h"
#include "support/Format.h"

using namespace paresy;
using namespace paresy::bench;

namespace {

struct Variant {
  const char *Name;
  SynthOptions Options;
};

void runVariant(TextTable &Table, const char *Name, const Spec &S,
                const SynthOptions &Opts) {
  WallTimer Timer;
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  Table.addRow({Name,
                R.found() ? R.Regex : statusName(R.Status),
                R.found() ? std::to_string(R.Cost) : "-",
                withCommas(R.Stats.CandidatesGenerated),
                withCommas(R.Stats.UniqueLanguages),
                formatSeconds(Timer.seconds(), 3)});
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  if (Opts.TimeoutSeconds == 5.0)
    Opts.TimeoutSeconds = 60.0;

  benchgen::GenParams Params;
  Params.MaxLen = 5;
  Params.NumPos = 6;
  Params.NumNeg = 6;
  Params.Seed = 7;
  benchgen::GeneratedBenchmark B;
  std::string Error;
  if (!benchgen::generate(benchgen::BenchType::Type1, Params, B, &Error)) {
    std::fprintf(stderr, "generation failed: %s\n", Error.c_str());
    return 1;
  }

  std::printf("# Ablations on %s (timeout %.0f s per variant)\n\n",
              B.Name.c_str(), Opts.TimeoutSeconds);
  TextTable Table({"Variant", "Result", "Cost", "# REs",
                   "Unique CSs", "Seconds"});

  SynthOptions Baseline;
  Baseline.TimeoutSeconds = Opts.TimeoutSeconds;
  runVariant(Table, "baseline (all on)", B.Examples, Baseline);

  SynthOptions NoGt = Baseline;
  NoGt.UseGuideTable = false;
  runVariant(Table, "no guide table (unstaged)", B.Examples, NoGt);

  SynthOptions NoUnique = Baseline;
  NoUnique.UniquenessCheck = false;
  NoUnique.MemoryLimitBytes = uint64_t(64) << 20;
  runVariant(Table, "no uniqueness check", B.Examples, NoUnique);

  SynthOptions NoPad = Baseline;
  NoPad.PadToPowerOfTwo = false;
  runVariant(Table, "no power-of-two padding", B.Examples, NoPad);

  std::printf("%s", Table.render().c_str());

  // Epsilon seeding matters only for cost functions with
  // cost(?) > cost(literal) + cost(+): show the minimality loss.
  std::printf("\n# Epsilon seeding under (1, 10, 1, 1, 1) on "
              "{eps,0} vs {00,1,01}\n\n");
  Spec EpsSpec({"", "0"}, {"00", "1", "01"});
  TextTable EpsTable({"Variant", "Result", "Cost", "# REs",
                      "Unique CSs", "Seconds"});
  SynthOptions Seeded;
  Seeded.Cost = CostFn(1, 10, 1, 1, 1);
  runVariant(EpsTable, "epsilon seeded (ours)", EpsSpec, Seeded);
  SynthOptions Unseeded = Seeded;
  Unseeded.SeedEpsilon = false;
  runVariant(EpsTable, "pseudocode-faithful (non-minimal!)", EpsSpec,
             Unseeded);
  std::printf("%s", EpsTable.render().c_str());

  // The Sec. 3 strawman: searching over raw syntax trees.
  std::printf("\n# Naive syntactic enumeration (the 'redundant, not "
              "succinct, slow contains-check' strawman)\n\n");
  Spec SmallSpec({"10", "101", "100"}, {"", "0", "1", "11", "010"});
  TextTable NaiveTable(
      {"Engine", "Result", "Cost", "# checked", "Seconds"});
  {
    SynthOptions SOpts;
    SOpts.TimeoutSeconds = Opts.TimeoutSeconds;
    WallTimer Timer;
    SynthResult R = synthesize(SmallSpec, Alphabet::of("01"), SOpts);
    NaiveTable.addRow({"paresy (CS search)",
                       R.found() ? R.Regex : statusName(R.Status),
                       std::to_string(R.Cost),
                       withCommas(R.Stats.CandidatesGenerated),
                       formatSeconds(Timer.seconds(), 4)});
  }
  {
    RegexManager M;
    NaiveEnumerator E(M, {'0', '1'});
    WallTimer Timer;
    EnumeratorResult R = E.findMinimal(SmallSpec.Pos, SmallSpec.Neg,
                                       CostFn(), 30, 30000000);
    NaiveTable.addRow({"naive syntax enumeration",
                       R.found() ? toString(R.Re)
                                 : (R.Aborted ? "aborted" : "not found"),
                       R.found() ? std::to_string(R.Cost) : "-",
                       withCommas(R.Checked),
                       formatSeconds(Timer.seconds(), 4)});
  }
  std::printf("%s", NaiveTable.render().c_str());
  return 0;
}
