//===- bench/BenchUtil.h - Shared harness helpers ------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flag parsing and the shared benchmark sweep used by the Fig. 1 and
/// outlier harnesses. Every harness accepts:
///
///   --timeout S     per-instance timeout in seconds
///   --scale  F      scales instance counts (1.0 = default CI scale)
///   --csv           machine-readable CSV instead of tables
///
/// Scaling note (EXPERIMENTS.md): the paper's instances take ~1 h per
/// CPU run on a Xeon; the defaults here are sized so the whole harness
/// finishes in minutes on one core, preserving shape, not magnitude.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_BENCH_BENCHUTIL_H
#define PARESY_BENCH_BENCHUTIL_H

#include "benchgen/Generators.h"
#include "core/Synthesizer.h"
#include "regex/Cost.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace paresy {
namespace bench {

/// Common command-line options.
struct HarnessOptions {
  double TimeoutSeconds = 5.0;
  double Scale = 1.0;
  bool Csv = false;
};

inline HarnessOptions parseHarnessArgs(int Argc, char **Argv) {
  HarnessOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--timeout")
      Opts.TimeoutSeconds = std::atof(Next());
    else if (Arg == "--scale")
      Opts.Scale = std::atof(Next());
    else if (Arg == "--csv")
      Opts.Csv = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--timeout S] [--scale F] [--csv]\n",
                   Argv[0]);
      std::exit(2);
    }
  }
  return Opts;
}

/// One instance of the Fig. 1 sweep grid. Parameters follow the
/// paper's scheme (Sec. 4.3) at reduced magnitudes.
inline std::vector<benchgen::GenParams>
sweepGrid(benchgen::BenchType Type, double Scale) {
  std::vector<benchgen::GenParams> Grid;
  unsigned Seeds = unsigned(2 * Scale);
  if (Seeds == 0)
    Seeds = 1;
  // Type 1: longer strings dominate; Type 2 mixes in short strings.
  std::vector<unsigned> Lens =
      Type == benchgen::BenchType::Type1 ? std::vector<unsigned>{3, 4, 5}
                                         : std::vector<unsigned>{4, 5, 6};
  for (unsigned Len : Lens)
    for (unsigned Count : {5u, 6u}) {
      for (unsigned Seed = 1; Seed <= Seeds; ++Seed) {
        benchgen::GenParams P;
        P.MaxLen = Len;
        P.NumPos = Count;
        P.NumNeg = Count;
        P.Seed = Seed + 1000 * Len + 10 * Count;
        Grid.push_back(P);
      }
    }
  return Grid;
}

/// One timed run of the CPU synthesizer.
struct SweepCell {
  std::string Benchmark;
  std::string CostName;
  SynthStatus Status;
  double Seconds;
  uint64_t Candidates;
};

inline SweepCell runCell(const benchgen::GeneratedBenchmark &B,
                         const CostFn &Cost, double TimeoutSeconds) {
  SynthOptions Opts;
  Opts.Cost = Cost;
  Opts.TimeoutSeconds = TimeoutSeconds;
  WallTimer Timer;
  SynthResult R = synthesize(B.Examples, Alphabet::of("01"), Opts);
  SweepCell Cell;
  Cell.Benchmark = B.Name;
  Cell.CostName = Cost.name();
  Cell.Status = R.Status;
  Cell.Seconds = Timer.seconds();
  Cell.Candidates = R.Stats.CandidatesGenerated;
  return Cell;
}

} // namespace bench
} // namespace paresy

#endif // PARESY_BENCH_BENCHUTIL_H
