//===- bench/Harness.cpp - Self-describing benchmark harness -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Bits.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace paresy;
using namespace paresy::bench;

namespace {

std::string compilerString() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string buildString() {
#if defined(__SANITIZE_ADDRESS__)
  return "sanitize";
#elif defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

std::string osString() {
#if defined(__linux__)
  return "linux";
#elif defined(__APPLE__)
  return "darwin";
#elif defined(_WIN32)
  return "windows";
#else
  return "unknown";
#endif
}

std::string archString() {
#if defined(__x86_64__) || defined(_M_X64)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#else
  return "unknown";
#endif
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20)
      continue; // Control characters never occur in our names.
    Out += C;
  }
  return Out;
}

} // namespace

Harness::Harness(std::string Name, int Argc, char **Argv)
    : Name(std::move(Name)) {
  Out = "BENCH_" + this->Name + ".json";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--quick") {
      Quick = true;
    } else if (Arg == "--out") {
      Out = Next();
    } else if (Arg == "--reps") {
      Reps = std::atoi(Next());
      if (Reps < 1)
        Reps = 1;
      RepsExplicit = true;
    } else if (Arg == "--filter") {
      Filter = Next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--reps N] "
                   "[--filter SUBSTR]\n",
                   Argv[0]);
      std::exit(2);
    }
  }
  // --quick shrinks the defaults; an explicit --reps wins regardless
  // of flag order.
  if (Quick) {
    if (!RepsExplicit)
      Reps = 5;
    MinRepSeconds = 0.01;
  }
}

bool Harness::selected(const std::string &Metric) const {
  return Filter.empty() || Metric.find(Filter) != std::string::npos;
}

void Harness::bench(const std::string &Metric, uint64_t ItemsPerIter,
                    const std::function<void()> &Fn) {
  if (!selected(Metric))
    return;

  // Calibration doubles the iteration count until one repetition is
  // long enough to dominate clock granularity. The calibration runs
  // double as warmup: by the time timing starts, caches and branch
  // predictors have seen the workload.
  uint64_t Iters = 1;
  for (;;) {
    WallTimer Timer;
    for (uint64_t I = 0; I != Iters; ++I)
      Fn();
    double Seconds = Timer.seconds();
    if (Seconds >= MinRepSeconds || Iters >= (uint64_t(1) << 30))
      break;
    if (Seconds * 8 < MinRepSeconds)
      Iters *= 8;
    else
      Iters *= 2;
  }

  double Best = -1;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    WallTimer Timer;
    for (uint64_t I = 0; I != Iters; ++I)
      Fn();
    double Seconds = Timer.seconds();
    if (Best < 0 || Seconds < Best)
      Best = Seconds;
  }

  MetricResult R;
  R.Name = Metric;
  R.Unit = "items/s";
  R.SecondsPerIter = Best / double(Iters);
  R.ItemsPerIter = ItemsPerIter;
  R.Iterations = Iters;
  R.Repetitions = Reps;
  R.Value = R.SecondsPerIter > 0
                ? double(ItemsPerIter) / R.SecondsPerIter
                : 0;
  Results.push_back(R);
  std::printf("%-32s %12.3e items/s  (%.3e s/iter, %llu iters, "
              "min of %d)\n",
              Metric.c_str(), R.Value, R.SecondsPerIter,
              static_cast<unsigned long long>(Iters), Reps);
  std::fflush(stdout);
}

void Harness::metric(const std::string &Name, double Value,
                     const std::string &Unit) {
  if (!selected(Name))
    return;
  MetricResult R;
  R.Name = Name;
  R.Unit = Unit;
  R.Value = Value;
  Results.push_back(R);
  std::printf("%-32s %12.4g %s\n", Name.c_str(), Value, Unit.c_str());
  std::fflush(stdout);
}

int Harness::finish() {
  // The calibration metric: a fixed pure-ALU workload (SplitMix64
  // mixing) whose throughput tracks single-core machine speed. The
  // compare tool divides every metric by it, cancelling machine speed
  // to first order so baselines gate runs from different hardware.
  // Never filtered: every report must carry it to be comparable.
  Filter.clear();
  {
    uint64_t State = seed();
    bench("harness.calibration", 4096, [&] {
      for (int I = 0; I != 4096; ++I)
        State = hashMix64(State);
    });
    // The result must not be optimised away.
    if (State == 0x123456789abcdefULL)
      std::fprintf(stderr, "calibration sentinel\n");
  }

  std::FILE *F = std::fopen(Out.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write %s\n", Out.c_str());
    return 1;
  }
  std::fprintf(F, "{\n");
  std::fprintf(F, "  \"schema\": \"paresy-bench/v1\",\n");
  std::fprintf(F, "  \"name\": \"%s\",\n", jsonEscape(Name).c_str());
  std::fprintf(F, "  \"quick\": %s,\n", Quick ? "true" : "false");
  std::fprintf(F,
               "  \"config\": {\"repetitions\": %d, "
               "\"min_rep_seconds\": %g, \"seed\": %llu},\n",
               Reps, MinRepSeconds,
               static_cast<unsigned long long>(seed()));
  std::fprintf(F,
               "  \"machine\": {\"os\": \"%s\", \"arch\": \"%s\", "
               "\"compiler\": \"%s\", \"build\": \"%s\", "
               "\"hardware_threads\": %u},\n",
               osString().c_str(), archString().c_str(),
               jsonEscape(compilerString()).c_str(),
               buildString().c_str(),
               std::thread::hardware_concurrency());
  std::fprintf(F, "  \"metrics\": [\n");
  for (size_t I = 0; I != Results.size(); ++I) {
    const MetricResult &R = Results[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"unit\": \"%s\", "
                 "\"value\": %.6e, \"seconds_per_iter\": %.6e, "
                 "\"items_per_iter\": %llu, \"iterations\": %llu, "
                 "\"repetitions\": %d}%s\n",
                 jsonEscape(R.Name).c_str(), jsonEscape(R.Unit).c_str(),
                 R.Value, R.SecondsPerIter,
                 static_cast<unsigned long long>(R.ItemsPerIter),
                 static_cast<unsigned long long>(R.Iterations),
                 R.Repetitions, I + 1 == Results.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s (%zu metrics)\n", Out.c_str(), Results.size());
  return 0;
}
