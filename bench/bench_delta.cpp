//===- bench/bench_delta.cpp - Spec-delta resynthesis quick bench -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The spec-delta perf gate (DESIGN.md Sec. 14): an interactive
/// refinement trace on the Table-2 classroom instance no3. The user
/// starts from a partial example set and adds one example per round,
/// as a --repl session would; every round submits the full current
/// spec. Two gated metrics over the identical trace:
///
///   delta.replay - the rounds through one SynthService, so every
///                  example-adding edit grafts the previous round's
///                  parked sweep (appendColumns + dup-ledger replay)
///                  and resumes it (what a refinement session pays
///                  now);
///   delta.cold   - every round swept from scratch (the price each
///                  edit used to pay).
///
/// Both count the cumulative cold candidates as items, so the replay
/// throughput exceeding the cold one is the measured speedup;
/// info.delta.cumulative_speedup reports the ratio directly and the
/// bench FAILS below 2x - the tentpole claim is that a refinement
/// trace costs a fraction of its per-edit cold runs. Every round's
/// delta result is asserted bit-equal to its cold run before anything
/// is timed: a diverging graft must never be gated as a fast one.
///
/// Emits BENCH_delta.json; the CI perf-smoke job gates it against
/// bench/baselines/BENCH_delta.json.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "benchgen/AlphaSuite.h"
#include "engine/CpuBackend.h"
#include "engine/Staging.h"
#include "service/SynthService.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

using namespace paresy;
using namespace paresy::engine;

int main(int Argc, char **Argv) {
  bench::Harness H("delta", Argc, Argv);

  // Table 2 row no3 under the AlphaRegex-comparable cost function:
  // heavy enough that the sweep dominates staging, small enough for CI
  // (the same instance bench_resume gates on).
  const benchgen::SuiteInstance &Inst = benchgen::alphaRegexSuite()[2];
  const Alphabet Sigma = Alphabet::of("01");
  SynthOptions Opts;
  Opts.Cost = CostFn(20, 20, 20, 5, 30);

  // The refinement trace: hold back four of no3's examples, then add
  // them back one per round, ending on the full instance. Every edit
  // is a proper superset of its predecessor, so each round grafts the
  // previous round's parked sweep; every held-out word is an infix of
  // a kept one, so no graft appends universe columns (the appended-
  // column case legitimately replays split levels - see DESIGN.md
  // Sec. 14 - and is covered by delta_test, not gated here). Three of
  // the edits confirm the current answer (the graft finishes by
  // scanning the solved level); '-01' breaks it, and the graft resumes
  // the sweep at cost 206 instead of restarting at 1 - the tail is
  // the expensive part of the cold run, but the three confirmations
  // cost nearly nothing, which is where the cumulative win comes from.
  std::vector<Spec> Trace;
  {
    Spec S;
    S.Pos = {"00101", "01010", "110101", "0101011"};
    S.Neg = {"0", "0110", "1010", "00110", "010011"};
    Trace.push_back(S); // solves at cost 205
    S.Pos.push_back("0101"); // confirming
    Trace.push_back(S);
    S.Neg.push_back("01"); // breaking: re-solves at cost 230
    Trace.push_back(S);
    S.Pos.push_back("10101"); // confirming
    Trace.push_back(S);
    S.Neg.push_back("010"); // confirming
    Trace.push_back(S);
  }
  if (Trace.back().Pos.size() != Inst.Examples.Pos.size() ||
      Trace.back().Neg.size() != Inst.Examples.Neg.size()) {
    std::fprintf(stderr, "error: trace does not end on the suite spec\n");
    return 1;
  }

  auto coldRun = [&](const Spec &S) {
    CpuBackend B;
    return runStaged(*engine::stage(S, Sigma, Opts), B);
  };
  auto replayTrace = [&](std::vector<SynthResult> *Out,
                         service::ServiceStats *Stats) {
    // A fresh service per replay: the point is the graft path, not the
    // result cache (each round's spec is new text anyway).
    service::SynthService Service{{}};
    for (const Spec &S : Trace) {
      SynthResult R = Service.synthesize(S, Sigma, Opts);
      if (Out)
        Out->push_back(R);
      else if (!R.found())
        std::exit(1);
    }
    if (Stats)
      *Stats = Service.stats();
  };

  // Bit-identity sanity before timing anything: every round of the
  // delta replay must match its cold run exactly.
  std::vector<SynthResult> Colds;
  uint64_t TotalCandidates = 0;
  for (const Spec &S : Trace) {
    Colds.push_back(coldRun(S));
    if (!Colds.back().found()) {
      std::fprintf(stderr, "error: trace round %zu did not solve (%s)\n",
                   Colds.size() - 1, statusName(Colds.back().Status));
      return 1;
    }
    TotalCandidates += Colds.back().Stats.CandidatesGenerated;
  }
  std::vector<SynthResult> Deltas;
  service::ServiceStats Replay;
  replayTrace(&Deltas, &Replay);
  for (size_t I = 0; I != Trace.size(); ++I) {
    const SynthResult &D = Deltas[I], &C = Colds[I];
    if (D.Regex != C.Regex || D.Cost != C.Cost ||
        D.Stats.CandidatesGenerated != C.Stats.CandidatesGenerated ||
        D.Stats.UniqueLanguages != C.Stats.UniqueLanguages ||
        D.Stats.CacheEntries != C.Stats.CacheEntries) {
      std::fprintf(stderr,
                   "error: delta round %zu diverged from its cold run "
                   "(%s vs %s)\n",
                   I, D.Regex.c_str(), C.Regex.c_str());
      return 1;
    }
  }
  if (Replay.DeltaHits != Trace.size() - 1) {
    std::fprintf(stderr,
                 "error: expected %zu grafts, got %llu (%llu declined)\n",
                 Trace.size() - 1, (unsigned long long)Replay.DeltaHits,
                 (unsigned long long)Replay.DeltaDeclined);
    return 1;
  }

  H.bench("delta.replay", TotalCandidates,
          [&] { replayTrace(nullptr, nullptr); });
  H.bench("delta.cold", TotalCandidates, [&] {
    for (const Spec &S : Trace)
      if (!coldRun(S).found())
        std::exit(1);
  });

  // The cumulative ratio a refinement session gains, measured directly
  // (min of interleaved pairs so machine noise hits both sides alike).
  double ColdSecs = 1e100, DeltaSecs = 1e100;
  for (int Rep = 0; Rep != (H.quick() ? 3 : 5); ++Rep) {
    WallTimer T;
    for (const Spec &S : Trace)
      coldRun(S);
    ColdSecs = std::min(ColdSecs, T.seconds());
    T.reset();
    replayTrace(nullptr, nullptr);
    DeltaSecs = std::min(DeltaSecs, T.seconds());
  }
  double Speedup = ColdSecs / DeltaSecs;
  H.metric("info.delta.cumulative_speedup", Speedup, "x");
  H.metric("info.delta.rounds", double(Trace.size()), "count");
  H.metric("info.delta.levels_skipped", double(Replay.DeltaLevelsSkipped),
           "count");
  H.metric("info.delta.levels_replayed",
           double(Replay.DeltaLevelsReplayed), "count");
  H.metric("info.delta.columns_appended",
           double(Replay.DeltaColumnsAppended), "count");
  H.metric("info.workload.candidates", double(TotalCandidates), "count");
  if (Speedup < 2.0) {
    std::fprintf(stderr,
                 "error: cumulative speedup %.2fx is below the 2x gate\n",
                 Speedup);
    return 1;
  }
  return H.finish();
}
