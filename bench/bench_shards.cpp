//===- bench/bench_shards.cpp - Sharded-store overhead quick bench ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharding perf gate (DESIGN.md Sec. 8): one Table-2-sized
/// classroom instance (no3, ~1M candidates under the AlphaRegex-
/// comparable cost function) swept on the sequential backend with the
/// monolithic store (shards=1) and with a partitioned store
/// (shards=4). Sharding is a re-layout, not an algorithm change, so
/// both configurations must stay within the CI regression gate - the
/// shards=1 metric guards the single-arena fast path the default
/// options use, the shards=4 metric guards the owner-computes routing
/// overhead.
///
/// Emits BENCH_shards.json; the CI perf-smoke job gates this file
/// against bench/baselines/BENCH_shards.json.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "benchgen/AlphaSuite.h"
#include "engine/CpuBackend.h"
#include "engine/Staging.h"

#include <cstdio>
#include <memory>

using namespace paresy;

int main(int Argc, char **Argv) {
  bench::Harness H("shards", Argc, Argv);

  // Table 2 row no3 ("strings of even length"-class instance): heavy
  // enough that the sweep dominates staging, small enough for CI.
  const benchgen::SuiteInstance &Inst = benchgen::alphaRegexSuite()[2];
  const CostFn TableCost(20, 20, 20, 5, 30);

  auto runOnce = [&](unsigned Shards) {
    SynthOptions Opts;
    Opts.Cost = TableCost;
    Opts.Shards = Shards;
    std::shared_ptr<const engine::StagedQuery> Q =
        engine::stage(Inst.Examples, Alphabet::of("01"), Opts);
    engine::CpuBackend B;
    return engine::runStaged(*Q, B);
  };

  SynthResult Probe = runOnce(1);
  if (!Probe.found()) {
    std::fprintf(stderr, "error: workload did not solve (%s)\n",
                 statusName(Probe.Status));
    return 1;
  }
  uint64_t Candidates = Probe.Stats.CandidatesGenerated;

  for (unsigned Shards : {1u, 4u}) {
    SynthResult Check = runOnce(Shards);
    if (Check.Regex != Probe.Regex ||
        Check.Stats.CandidatesGenerated != Candidates) {
      std::fprintf(stderr, "error: shards=%u diverged from shards=1\n",
                   Shards);
      return 1;
    }
    char Name[32];
    std::snprintf(Name, sizeof(Name), "sweep.no3.shards%u", Shards);
    H.bench(Name, Candidates, [&] {
      SynthResult R = runOnce(Shards);
      if (!R.found())
        std::exit(1); // A failed sweep would gate on garbage.
    });
  }

  H.metric("info.workload.candidates", double(Candidates), "count");
  return H.finish();
}
