//===- bench/bench_error.cpp - Sec 5.2: REI with error ------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Sec. 5.2 table exactly: the dependency of synthesis
/// cost (number of REs checked) on the allowed error, for the very
/// specification printed in the paper (Table 1's first row), with the
/// (1, 1, 1, 1, 1) cost function and error 0%..50% in 5% steps.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Format.h"

using namespace paresy;
using namespace paresy::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  if (Opts.TimeoutSeconds == 5.0)
    Opts.TimeoutSeconds = 60.0;

  // Verbatim from Sec. 5.2.
  Spec Examples(
      {"00", "1101", "0001", "0111", "001", "1", "10", "1100", "111",
       "1010"},
      {"", "0", "0000", "0011", "01", "010", "011", "100", "1000",
       "1001", "11", "1110"});

  std::printf("# Sec. 5.2 reproduction: allowed error vs synthesis "
              "cost, cost function (1, 1, 1, 1, 1)\n\n");
  TextTable Table({"Allowed Error", "# REs", "RE", "Cost(RE)",
                   "Seconds"});

  uint64_t PreviousRes = UINT64_MAX;
  bool Monotone = true;
  for (int Percent = 0; Percent <= 50; Percent += 5) {
    SynthOptions SOpts;
    SOpts.AllowedError = double(Percent) / 100.0;
    SOpts.TimeoutSeconds = Opts.TimeoutSeconds;
    WallTimer Timer;
    SynthResult R = synthesize(Examples, Alphabet::of("01"), SOpts);
    double Sec = Timer.seconds();
    if (R.found()) {
      if (R.Stats.CandidatesGenerated > PreviousRes)
        Monotone = false;
      PreviousRes = R.Stats.CandidatesGenerated;
    }
    Table.addRow({std::to_string(Percent) + " %",
                  R.found() ? withCommas(R.Stats.CandidatesGenerated)
                            : "-",
                  R.found() ? R.Regex : statusName(R.Status),
                  R.found() ? std::to_string(R.Cost) : "-",
                  formatSeconds(Sec, 3)});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\n# REs decreases monotonically with error: %s "
              "(paper observes a roughly exponential drop,\n"
              "26,774,099,142 at 0%% down to 1 at 50%% on the unscaled "
              "A100 run)\n",
              Monotone ? "yes" : "NO");
  return 0;
}
