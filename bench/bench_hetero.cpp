//===- bench/bench_hetero.cpp - Heterogeneous co-scheduling quick bench -------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The co-scheduling perf gate (DESIGN.md Sec. 10): the Table-2 no3
/// instance swept by the hetero backend, which runs every kernel grid
/// on the CPU engine and the GPU-sim engine simultaneously with work
/// stealing.
///
/// Two claims are checked, matching the two things the backend is:
///
///  * a pipeline (regression teeth): "sweep.no3.hetero" times the
///    default threaded hetero path wall-clock, gated like every other
///    items/s metric by bench/compare_bench.py. This guards the
///    queue/split/accounting overhead, not a speed-up - on this
///    container the "GPU" executes on the same host cores, so real
///    wall-clock co-scheduling gain is impossible by construction.
///
///  * a scheduler (speed-up teeth): "info.hetero.speedup" is the
///    modelled co-scheduled time (per launch, max of the CPU side's
///    measured busy seconds and the GPU side's modelled device
///    seconds) against the better single engine running the whole
///    sweep alone. For the comparison to exercise the *scheduler*
///    rather than the device gap, the GPU spec is calibrated to a
///    peer of the measured host (one lane retiring ops at the
///    measured host rate): against the default A100 spec the model is
///    ~1000x one core and any schedule that ships everything to the
///    device wins, telling us nothing about the split/steal logic.
///    With peer devices an even co-schedule halves the time, and the
///    per-kernel splits beat 2x: the engines' relative speed differs
///    per kernel class, so shipping each engine the grids it is
///    relatively fast at wins more than aggregate-rate splitting ever
///    could. The bench fails (exit 1) below 1.2x - room for EWMA
///    convergence and imbalance, while still catching a scheduler
///    that serialises the engines.
///
/// A portfolio race over the same staged query is reported as info
/// metrics (first-winner race timing is too noisy for a 25% gate).
///
/// Emits BENCH_hetero.json; the CI perf-smoke job gates this file
/// against bench/baselines/BENCH_hetero.json.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "benchgen/AlphaSuite.h"
#include "engine/BackendRegistry.h"
#include "engine/HeteroBackend.h"
#include "engine/Portfolio.h"
#include "engine/Staging.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace paresy;

int main(int Argc, char **Argv) {
  bench::Harness H("hetero", Argc, Argv);

  // The same workload bench_shards gates: Table 2 row no3, heavy
  // enough that the sweep dominates staging, small enough for CI.
  const benchgen::SuiteInstance &Inst = benchgen::alphaRegexSuite()[2];
  SynthOptions Opts;
  Opts.Cost = CostFn(20, 20, 20, 5, 30);
  std::shared_ptr<const engine::StagedQuery> Q =
      engine::stage(Inst.Examples, Alphabet::of("01"), Opts);

  auto runNamed = [&](std::string_view Name) {
    std::unique_ptr<engine::Backend> B = engine::createBackend(Name);
    return engine::runStaged(*Q, *B);
  };

  SynthResult Ref = runNamed("cpu");
  if (!Ref.found()) {
    std::fprintf(stderr, "error: workload did not solve (%s)\n",
                 statusName(Ref.Status));
    return 1;
  }
  uint64_t Candidates = Ref.Stats.CandidatesGenerated;

  // Bit-identity first: timing a divergent backend would gate garbage.
  for (std::string_view Name : {"cpu-parallel", "gpusim", "hetero"}) {
    SynthResult Check = runNamed(Name);
    if (Check.Regex != Ref.Regex || Check.Cost != Ref.Cost ||
        Check.Stats.CandidatesGenerated != Candidates) {
      std::fprintf(stderr, "error: %.*s diverged from cpu\n",
                   int(Name.size()), Name.data());
      return 1;
    }
  }

  // Measured host kernel rate, from an inline hetero probe: only the
  // CPU side's drains are timed, so ops/busy-seconds is a pure kernel
  // rate with no staging or exchange-pass time mixed in.
  engine::HeteroOptions ProbeOpts;
  ProbeOpts.InlineKernels = true;
  engine::HeteroBackend Probe(ProbeOpts);
  SynthResult PR = engine::runStaged(*Q, Probe);
  if (PR.Stats.HeteroCpuSeconds <= 0 || PR.Stats.HeteroCpuOps == 0) {
    std::fprintf(stderr, "error: probe measured no CPU kernel time\n");
    return 1;
  }
  double HostRate =
      double(PR.Stats.HeteroCpuOps) / PR.Stats.HeteroCpuSeconds;

  // A device that is a peer of the measured host: one lane at the
  // host's measured rate, so ceil(tasks/lanes) * avgOps/laneRate
  // collapses to totalOps/hostRate per launch.
  gpusim::DeviceSpec Peer;
  Peer.Name = "sim-host-peer";
  Peer.ParallelLanes = 1;
  Peer.LaneOpsPerSecond = HostRate;
  Peer.LaunchLatencySeconds = 1e-6;
  Peer.SessionOverheadSeconds = 0;

  engine::HeteroOptions CoOpts;
  CoOpts.InlineKernels = true; // deterministic single-thread measurement
  CoOpts.GrainTasks = 16;
  CoOpts.GpuSpec = Peer;
  engine::HeteroBackend Co(CoOpts);
  SynthResult CR = engine::runStaged(*Q, Co);
  if (CR.Regex != Ref.Regex ||
      CR.Stats.CandidatesGenerated != Candidates) {
    std::fprintf(stderr, "error: peer-spec hetero diverged from cpu\n");
    return 1;
  }

  // Either engine alone costs TotalOps/HostRate: the host by the
  // probe's measurement of it running every kernel itself, the peer
  // device by construction of its spec. (The co-run's own blended CPU
  // rate is NOT a valid baseline - the scheduler offloads the CPU's
  // slow kernels, inflating the blend.)
  uint64_t TotalOps = CR.Stats.HeteroCpuOps + CR.Stats.HeteroGpuOps;
  double BestSingle = double(TotalOps) / HostRate;
  double Cosched = CR.Stats.HeteroCoschedSeconds;
  double Speedup = Cosched > 0 ? BestSingle / Cosched : 0;

  // Regression teeth: the default threaded hetero path, wall-clock.
  H.bench("sweep.no3.hetero", Candidates, [&] {
    SynthResult R = runNamed("hetero");
    if (!R.found())
      std::exit(1); // A failed sweep would gate on garbage.
  });

  // Portfolio race over the shared staged query (info only).
  WallTimer RaceTimer;
  engine::PortfolioOutcome Race = engine::runPortfolio(Q, "cpu");
  double RaceSeconds = RaceTimer.seconds();
  if (Race.Result.Regex != Ref.Regex || Race.Result.Cost != Ref.Cost) {
    std::fprintf(stderr, "error: portfolio winner diverged from cpu\n");
    return 1;
  }
  uint64_t ArmsCancelled = 0;
  for (const engine::PortfolioArmReport &Arm : Race.Arms)
    if (Arm.Status == SynthStatus::Cancelled)
      ++ArmsCancelled;

  H.metric("info.workload.candidates", double(Candidates), "count");
  H.metric("info.hetero.host_rate", HostRate, "ops/s");
  H.metric("info.hetero.cosched_seconds", Cosched, "s");
  H.metric("info.hetero.best_single_seconds", BestSingle, "s");
  H.metric("info.hetero.speedup", Speedup, "x");
  H.metric("info.hetero.cpu_share", CR.Stats.HeteroCpuShare, "ratio");
  H.metric("info.portfolio.arms", double(Race.Arms.size()), "count");
  H.metric("info.portfolio.cancelled", double(ArmsCancelled), "count");
  H.metric("info.portfolio.race_seconds", RaceSeconds, "s");

  int Exit = H.finish();
  if (Speedup < 1.2) {
    std::fprintf(stderr,
                 "error: modelled co-scheduled speedup %.3fx is below "
                 "the 1.2x acceptance floor\n",
                 Speedup);
    return 1;
  }
  return Exit;
}
