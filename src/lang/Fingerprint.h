//===- lang/Fingerprint.h - Canonical specs and query fingerprints -----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-level identity for synthesis queries. Example order inside
/// a specification is irrelevant to the search (the characteristic
/// sequences are keyed by the shortlex order of the infix closure), so
/// two requests differing only in example order are the *same* query
/// and must share one cache entry. canonicalSpec() produces the
/// normal form (shortlex-sorted, deduplicated examples) and
/// fingerprintQuery() derives a stable 128-bit fingerprint of
/// (canonical spec, alphabet, result-relevant SynthOptions) — the key
/// of the service-layer result cache (service/SynthService.h).
///
/// Fingerprints hash a versioned text serialization of the query
/// (canonicalQueryText); cache layers store that text alongside each
/// entry and compare it on hits, so a 128-bit collision degrades to a
/// cache miss, never to a wrong answer.
///
/// The staging variants (canonicalStagingText / fingerprintStaging)
/// cover only the inputs the staging phase of the search depends on —
/// the spec, the alphabet and the universe-geometry flags — so staged
/// artifacts (engine/Staging.h) can be shared across requests that
/// differ only in sweep options such as the cost function.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_LANG_FINGERPRINT_H
#define PARESY_LANG_FINGERPRINT_H

#include "core/Synthesizer.h"
#include "lang/Spec.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace paresy {

/// A 128-bit query fingerprint. Stable across runs, processes and
/// platforms: it depends only on the hashed bytes, never on addresses
/// or iteration order.
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Fingerprint &O) const = default;

  /// 32 lowercase hex digits, Hi first.
  std::string hex() const;
};

/// Hash functor for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  size_t operator()(const Fingerprint &F) const {
    return size_t(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Streaming builder: feed values, then finish(). Strings are
/// length-prefixed so concatenation ambiguities cannot collide.
class FingerprintBuilder {
public:
  FingerprintBuilder &addU64(uint64_t V);
  FingerprintBuilder &addBytes(std::string_view Bytes);
  Fingerprint finish() const { return {H1, H2}; }

private:
  uint64_t H1 = 0x243f6a8885a308d3ULL; // pi, first 16 hex digits
  uint64_t H2 = 0x13198a2e03707344ULL; // pi, next 16
  uint64_t Count = 0;
};

/// The canonical form of \p S: positive and negative examples each
/// shortlex-sorted and deduplicated. For valid specifications (which
/// are duplicate-free by definition) this only reorders, so the
/// canonical spec synthesizes to a result identical to the original.
Spec canonicalSpec(const Spec &S);

/// Versioned, exact text serialization of a query: \p Canonical (must
/// already be canonical), the alphabet, and every SynthOptions field
/// that can influence a SynthResult. Equal text iff equal query; this
/// is what fingerprints hash and what caches verify on hits.
std::string canonicalQueryText(const Spec &Canonical, const Alphabet &Sigma,
                               const SynthOptions &Opts);

/// Like canonicalQueryText, but restricted to what staging consumes:
/// the spec, the alphabet, and the PadToPowerOfTwo / UseGuideTable
/// flags. Queries with equal staging text share Universe/GuideTable.
std::string canonicalStagingText(const Spec &Canonical,
                                 const Alphabet &Sigma,
                                 const SynthOptions &Opts);

/// Like canonicalQueryText, but *excluding* the two budget fields
/// (MaxCost, TimeoutSeconds): the identity of a resumable search
/// session (engine/Session.h). The cost sweep is monotone in its
/// budgets - a run differing only in them retraces the same levels -
/// so a parked session can serve any retry with equal session text and
/// a larger budget. Result caches must keep using the query text: the
/// budgets do change results.
std::string canonicalSessionText(const Spec &Canonical,
                                 const Alphabet &Sigma,
                                 const SynthOptions &Opts);

/// Like canonicalSessionText, but *excluding the spec* as well: the
/// lineage key of spec-delta resynthesis (engine/DeltaStage.h). Two
/// sessions with equal lineage text differ at most in their examples
/// (same alphabet, same non-budget sweep options), which is exactly
/// when a superset edit of one can be grafted onto the other's parked
/// store. The examples still gate the graft - the delta path checks
/// the subset relation itself - so the lineage key only narrows the
/// candidate set, never decides alone.
std::string canonicalLineageText(const Alphabet &Sigma,
                                 const SynthOptions &Opts);

/// Fingerprint of an arbitrary byte string.
Fingerprint fingerprintText(std::string_view Text);

/// fingerprintText(canonicalQueryText(canonicalSpec(S), Sigma, Opts)).
Fingerprint fingerprintQuery(const Spec &S, const Alphabet &Sigma,
                             const SynthOptions &Opts);

/// fingerprintText(canonicalStagingText(canonicalSpec(S), Sigma, Opts)).
Fingerprint fingerprintStaging(const Spec &S, const Alphabet &Sigma,
                               const SynthOptions &Opts);

/// fingerprintText(canonicalSessionText(canonicalSpec(S), Sigma, Opts)).
Fingerprint fingerprintSession(const Spec &S, const Alphabet &Sigma,
                               const SynthOptions &Opts);

/// fingerprintText(canonicalLineageText(Sigma, Opts)).
Fingerprint fingerprintLineage(const Alphabet &Sigma,
                               const SynthOptions &Opts);

} // namespace paresy

#endif // PARESY_LANG_FINGERPRINT_H
