//===- lang/RowCodec.h - Per-row codecs for sealed cache rows ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-row compression of characteristic sequences (DESIGN.md
/// Sec. 11). A CS is a bitset over the universe ic(P u N); most cached
/// rows are extremely sparse (a few accepted infixes out of thousands)
/// or extremely regular (the empty language, near-universal star
/// languages), so the sealed tier of the language cache stores each
/// row under the smallest of four encodings instead of its padded
/// aligned form. The codec is chosen per row by the same sparsity
/// observation PR 3's kernel dispatch exploits: dense rows stay raw
/// (word-exact), sparse rows shrink to their set-bit or nonzero-word
/// deltas.
///
/// Encodings are byte-oriented and endian-stable (every multi-byte
/// value is least-significant-byte first), so encoded rows can be
/// serialized into snapshots verbatim and restored on any host. Every
/// encoding round-trips bit-exactly: decode(encode(row)) == row for
/// all inputs, including the padding-free logical width (the padded
/// stride is a host layout choice the decoder's caller re-applies).
///
/// Decoding is fail-closed: malformed bytes (bad tag, truncated
/// varint, out-of-range or non-increasing indices) return 0 consumed
/// bytes instead of writing garbage, so snapshot restores can reject
/// corrupt streams.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_LANG_ROWCODEC_H
#define PARESY_LANG_ROWCODEC_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace paresy {

/// How one sealed row is encoded. The tag is the first byte of every
/// encoded row.
enum class RowCodec : uint8_t {
  /// Tag + the logical words verbatim (LE). Chosen for dense rows
  /// where no sparse form wins.
  Raw = 0,
  /// Tag only: the all-zero row (the empty language).
  AllZero = 1,
  /// Tag + varint popcount + delta-varint set-*bit* indices (first
  /// index absolute, then gap-1). The extreme-sparsity form.
  SparseBits = 2,
  /// Tag + varint nonzero-word count + per word a delta-varint word
  /// index (first absolute, then gap-1) and its 8 LE value bytes. The
  /// clustered-sparsity form.
  SparseWords = 3,
};

/// Number of codec tags (the size of per-codec count arrays).
inline constexpr unsigned NumRowCodecs = 4;

/// Display name of \p C ("raw", "all-zero", "sparse-bits",
/// "sparse-words"); "?" for an invalid tag.
const char *rowCodecName(RowCodec C);

/// Upper bound on the encoded size of any \p Words-word row (the Raw
/// form plus its tag). Chunk writers can reserve against it.
constexpr size_t encodedRowBound(size_t Words) {
  return 1 + Words * sizeof(uint64_t);
}

/// Encodes \p Words words of \p Row under the smallest applicable
/// codec, appending the bytes to \p Out. Returns the codec chosen.
/// Deterministic: equal rows always produce equal bytes.
RowCodec encodeRow(const uint64_t *Row, size_t Words, std::string &Out);

/// Decodes one row of \p Words words from the first \p Avail bytes at
/// \p Bytes into \p Row (fully overwritten). Returns the number of
/// bytes consumed, or 0 if the bytes are not a well-formed encoding of
/// a \p Words-word row (Row is then zeroed, never partial garbage).
size_t decodeRow(const char *Bytes, size_t Avail, uint64_t *Row,
                 size_t Words);

} // namespace paresy

#endif // PARESY_LANG_ROWCODEC_H
