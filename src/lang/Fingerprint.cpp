//===- lang/Fingerprint.cpp - Canonical specs and query fingerprints ---------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Fingerprint.h"

#include "lang/Universe.h"

#include <algorithm>
#include <bit>
#include <cstdio>

using namespace paresy;

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mixer.
uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

std::vector<std::string> sortedUnique(const std::vector<std::string> &In) {
  std::vector<std::string> Out = In;
  std::sort(Out.begin(), Out.end(), shortlexLess);
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

void appendU64Hex(std::string &Out, uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  Out += Buf;
}

void appendDoubleBits(std::string &Out, double V) {
  appendU64Hex(Out, std::bit_cast<uint64_t>(V));
}

/// The staging-independent prefix shared by both serializations:
/// alphabet plus canonical examples. Examples never contain newlines
/// (alphabets exclude whitespace and non-printables), so the +/- line
/// format is unambiguous.
void appendSpecAndAlphabet(std::string &Out, const Spec &Canonical,
                           const Alphabet &Sigma) {
  Out += "alphabet=";
  Out += Sigma.symbols();
  Out += '\n';
  Out += Canonical.toText();
}

} // namespace

std::string Fingerprint::hex() const {
  std::string Out;
  appendU64Hex(Out, Hi);
  appendU64Hex(Out, Lo);
  return Out;
}

FingerprintBuilder &FingerprintBuilder::addU64(uint64_t V) {
  ++Count;
  H1 = mix64(H1 ^ (V + 0x9e3779b97f4a7c15ULL * Count));
  H2 = mix64(H2 + (V ^ 0xc2b2ae3d27d4eb4fULL * Count));
  return *this;
}

FingerprintBuilder &FingerprintBuilder::addBytes(std::string_view Bytes) {
  addU64(Bytes.size());
  // Bytes pack little-endian regardless of host endianness, so the
  // fingerprint of a given text is identical on every platform.
  for (size_t I = 0; I < Bytes.size(); I += 8) {
    uint64_t Word = 0;
    size_t End = std::min(Bytes.size(), I + 8);
    for (size_t J = I; J != End; ++J)
      Word |= uint64_t(uint8_t(Bytes[J])) << (8 * (J - I));
    addU64(Word);
  }
  return *this;
}

Spec paresy::canonicalSpec(const Spec &S) {
  return Spec(sortedUnique(S.Pos), sortedUnique(S.Neg));
}

namespace {

/// The budget-invariant sweep options: every SynthOptions field that
/// shapes the search *per level* - as opposed to MaxCost and
/// TimeoutSeconds, which only decide how many levels run. This is the
/// whole option block of the session key and the prefix the query key
/// extends with the budgets.
void appendSweepCore(std::string &Out, const SynthOptions &Opts) {
  Out += "cost=" + Opts.Cost.name() + '\n';
  Out += "memory=";
  appendU64Hex(Out, Opts.MemoryLimitBytes);
  // The *resolved* shard count: 0 and 1 are the same query (both mean
  // the single-arena layout), so they must share one cache entry.
  Out += "\nshards=";
  appendU64Hex(Out, Opts.Shards ? Opts.Shards : 1);
  // Error enters as its exact bit pattern: any difference can change
  // the mistake budget.
  Out += "\nerror=";
  appendDoubleBits(Out, Opts.AllowedError);
  // The storage tier shapes *verdicts* under memory pressure (byte-
  // driven fullness, the pinned budget), so it is part of the result
  // identity. The spill directory's path is environmental - only
  // whether a disk tier exists matters - and PinnedStoreBytes is
  // charged only when it does.
  Out += "\nstore=";
  appendU64Hex(Out, storeCompressionEnabled(Opts) ? 1 : 0);
  Out += ':';
  appendU64Hex(Out, Opts.SpillDir.empty() ? 0 : 1);
  Out += ':';
  appendU64Hex(Out, Opts.SpillDir.empty() ? 0 : Opts.PinnedStoreBytes);
  Out += "\nflags=";
  for (bool Flag : {Opts.EnableOnTheFly, Opts.SeedEpsilon,
                    Opts.UniquenessCheck, Opts.UseGuideTable,
                    Opts.PadToPowerOfTwo})
    Out += Flag ? '1' : '0';
  Out += '\n';
}

} // namespace

std::string paresy::canonicalQueryText(const Spec &Canonical,
                                       const Alphabet &Sigma,
                                       const SynthOptions &Opts) {
  std::string Out = "paresy-query-v4\n";
  appendSpecAndAlphabet(Out, Canonical, Sigma);
  appendSweepCore(Out, Opts);
  // The budgets complete the result identity: a different MaxCost or
  // timeout can change the status, so results never cross budgets.
  Out += "maxcost=";
  appendU64Hex(Out, Opts.MaxCost);
  Out += "\ntimeout=";
  appendDoubleBits(Out, Opts.TimeoutSeconds);
  Out += '\n';
  return Out;
}

std::string paresy::canonicalSessionText(const Spec &Canonical,
                                         const Alphabet &Sigma,
                                         const SynthOptions &Opts) {
  std::string Out = "paresy-session-v4\n";
  appendSpecAndAlphabet(Out, Canonical, Sigma);
  appendSweepCore(Out, Opts);
  return Out;
}

std::string paresy::canonicalLineageText(const Alphabet &Sigma,
                                         const SynthOptions &Opts) {
  std::string Out = "paresy-lineage-v1\n";
  Out += "alphabet=";
  Out += Sigma.symbols();
  Out += '\n';
  appendSweepCore(Out, Opts);
  return Out;
}

std::string paresy::canonicalStagingText(const Spec &Canonical,
                                         const Alphabet &Sigma,
                                         const SynthOptions &Opts) {
  std::string Out = "paresy-staging-v1\n";
  appendSpecAndAlphabet(Out, Canonical, Sigma);
  Out += "flags=";
  Out += Opts.UseGuideTable ? '1' : '0';
  Out += Opts.PadToPowerOfTwo ? '1' : '0';
  Out += '\n';
  return Out;
}

Fingerprint paresy::fingerprintText(std::string_view Text) {
  return FingerprintBuilder().addBytes(Text).finish();
}

Fingerprint paresy::fingerprintQuery(const Spec &S, const Alphabet &Sigma,
                                     const SynthOptions &Opts) {
  return fingerprintText(canonicalQueryText(canonicalSpec(S), Sigma, Opts));
}

Fingerprint paresy::fingerprintStaging(const Spec &S, const Alphabet &Sigma,
                                       const SynthOptions &Opts) {
  return fingerprintText(canonicalStagingText(canonicalSpec(S), Sigma, Opts));
}

Fingerprint paresy::fingerprintSession(const Spec &S, const Alphabet &Sigma,
                                       const SynthOptions &Opts) {
  return fingerprintText(canonicalSessionText(canonicalSpec(S), Sigma, Opts));
}

Fingerprint paresy::fingerprintLineage(const Alphabet &Sigma,
                                       const SynthOptions &Opts) {
  return fingerprintText(canonicalLineageText(Sigma, Opts));
}
