//===- lang/RowCodec.cpp - Per-row codecs for sealed cache rows -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/RowCodec.h"

#include "support/Bits.h"

#include <cassert>

using namespace paresy;

const char *paresy::rowCodecName(RowCodec C) {
  switch (C) {
  case RowCodec::Raw:
    return "raw";
  case RowCodec::AllZero:
    return "all-zero";
  case RowCodec::SparseBits:
    return "sparse-bits";
  case RowCodec::SparseWords:
    return "sparse-words";
  }
  return "?";
}

namespace {

/// Bytes a LEB128 varint of \p V occupies.
size_t varintSize(uint64_t V) {
  size_t Bytes = 1;
  while (V >= 0x80) {
    V >>= 7;
    ++Bytes;
  }
  return Bytes;
}

void putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(char(uint8_t(V) | 0x80));
    V >>= 7;
  }
  Out.push_back(char(uint8_t(V)));
}

void putWordLe(std::string &Out, uint64_t W) {
  for (unsigned B = 0; B != 8; ++B)
    Out.push_back(char(uint8_t(W >> (8 * B))));
}

/// Bounds-checked byte cursor over an encoded row; every get latches
/// failure instead of reading past Avail.
struct ByteCursor {
  const uint8_t *Bytes;
  size_t Avail;
  size_t Pos = 0;
  bool Failed = false;

  bool getByte(uint8_t &B) {
    if (Failed || Pos == Avail) {
      Failed = true;
      return false;
    }
    B = Bytes[Pos++];
    return true;
  }

  bool getVarint(uint64_t &V) {
    V = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      uint8_t B = 0;
      if (!getByte(B))
        return false;
      // Bits above 63 must be zero: a continuation past the 9th byte
      // or a final byte overflowing the width is malformed, not
      // silently truncated.
      if (Shift == 63 && (B & 0xfe)) {
        Failed = true;
        return false;
      }
      V |= uint64_t(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return true;
    }
    Failed = true;
    return false;
  }

  bool getWordLe(uint64_t &W) {
    W = 0;
    for (unsigned B = 0; B != 8; ++B) {
      uint8_t Byte = 0;
      if (!getByte(Byte))
        return false;
      W |= uint64_t(Byte) << (8 * B);
    }
    return true;
  }
};

} // namespace

RowCodec paresy::encodeRow(const uint64_t *Row, size_t Words,
                           std::string &Out) {
  assert(Words > 0 && "rows have at least one word");
  size_t RawSize = encodedRowBound(Words);

  // One scan for the structure every candidate encoding prices from.
  size_t NonZero = 0;
  unsigned Pop = 0;
  for (size_t I = 0; I != Words; ++I)
    if (Row[I]) {
      ++NonZero;
      Pop += unsigned(std::popcount(Row[I]));
    }

  if (NonZero == 0) {
    Out.push_back(char(uint8_t(RowCodec::AllZero)));
    return RowCodec::AllZero;
  }

  // Price SparseWords exactly: tag + count + per nonzero word its
  // index gap and 8 value bytes.
  size_t WordsSize = 1 + varintSize(NonZero);
  {
    uint64_t Prev = 0;
    bool First = true;
    for (size_t I = 0; I != Words; ++I) {
      if (!Row[I])
        continue;
      WordsSize += varintSize(First ? I : I - Prev - 1) + 8;
      Prev = I;
      First = false;
    }
  }

  // Price SparseBits exactly, but only when it can still win: each set
  // bit costs at least one gap byte, so a popcount at or above the
  // cheaper alternative's size cannot beat it.
  size_t BitsSize = SIZE_MAX;
  size_t BitsCutoff = std::min(RawSize, WordsSize);
  if (size_t(Pop) + 1 + varintSize(Pop) <= BitsCutoff) {
    size_t Size = 1 + varintSize(Pop);
    uint64_t Prev = 0;
    bool First = true;
    forEachSetBit(Row, Words, [&](size_t Bit) {
      Size += varintSize(First ? Bit : Bit - Prev - 1);
      Prev = Bit;
      First = false;
    });
    BitsSize = Size;
  }

  // Smallest wins; ties prefer the sparser form (cheaper to decode on
  // the set-bit walks the kernels favour).
  if (BitsSize <= WordsSize && BitsSize < RawSize) {
    Out.push_back(char(uint8_t(RowCodec::SparseBits)));
    putVarint(Out, Pop);
    uint64_t Prev = 0;
    bool First = true;
    forEachSetBit(Row, Words, [&](size_t Bit) {
      putVarint(Out, First ? Bit : Bit - Prev - 1);
      Prev = Bit;
      First = false;
    });
    return RowCodec::SparseBits;
  }
  if (WordsSize < RawSize) {
    Out.push_back(char(uint8_t(RowCodec::SparseWords)));
    putVarint(Out, NonZero);
    uint64_t Prev = 0;
    bool First = true;
    for (size_t I = 0; I != Words; ++I) {
      if (!Row[I])
        continue;
      putVarint(Out, First ? I : I - Prev - 1);
      putWordLe(Out, Row[I]);
      Prev = I;
      First = false;
    }
    return RowCodec::SparseWords;
  }

  Out.push_back(char(uint8_t(RowCodec::Raw)));
  for (size_t I = 0; I != Words; ++I)
    putWordLe(Out, Row[I]);
  return RowCodec::Raw;
}

size_t paresy::decodeRow(const char *Bytes, size_t Avail, uint64_t *Row,
                         size_t Words) {
  assert(Words > 0 && "rows have at least one word");
  clearWords(Row, Words);
  ByteCursor In{reinterpret_cast<const uint8_t *>(Bytes), Avail};
  uint8_t Tag = 0;
  if (!In.getByte(Tag))
    return 0;
  switch (RowCodec(Tag)) {
  case RowCodec::AllZero:
    return In.Pos;

  case RowCodec::Raw:
    for (size_t I = 0; I != Words; ++I)
      if (!In.getWordLe(Row[I]))
        break;
    break;

  case RowCodec::SparseBits: {
    uint64_t Count = 0;
    if (!In.getVarint(Count) || Count == 0 || Count > Words * BitsPerWord) {
      In.Failed = true;
      break;
    }
    uint64_t Bit = 0;
    for (uint64_t I = 0; I != Count; ++I) {
      uint64_t Gap = 0;
      if (!In.getVarint(Gap))
        break;
      Bit = I == 0 ? Gap : Bit + Gap + 1;
      if (Bit >= Words * BitsPerWord) {
        In.Failed = true;
        break;
      }
      setBit(Row, size_t(Bit));
    }
    break;
  }

  case RowCodec::SparseWords: {
    uint64_t Count = 0;
    if (!In.getVarint(Count) || Count == 0 || Count > Words) {
      In.Failed = true;
      break;
    }
    uint64_t Idx = 0;
    for (uint64_t I = 0; I != Count; ++I) {
      uint64_t Gap = 0, Value = 0;
      if (!In.getVarint(Gap))
        break;
      Idx = I == 0 ? Gap : Idx + Gap + 1;
      if (Idx >= Words || !In.getWordLe(Value)) {
        In.Failed = true;
        break;
      }
      Row[size_t(Idx)] = Value;
    }
    break;
  }

  default:
    In.Failed = true;
    break;
  }
  if (In.Failed) {
    clearWords(Row, Words);
    return 0;
  }
  return In.Pos;
}
