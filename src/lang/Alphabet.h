//===- lang/Alphabet.h - Ordered alphabets ----------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finite, totally ordered alphabets (Def. 2.3/2.5). Paresy supports
/// arbitrary alphabets; an Alphabet is any duplicate-free set of
/// printable characters excluding the regex meta characters
/// "()+*?@#" and whitespace. Characters are kept sorted ascending;
/// that order, lifted shortlex to strings, is the total order the
/// characteristic sequences index into.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_LANG_ALPHABET_H
#define PARESY_LANG_ALPHABET_H

#include <cassert>
#include <string>
#include <string_view>

namespace paresy {

/// An immutable, sorted set of symbol characters.
class Alphabet {
public:
  /// The empty alphabet (out-parameter default; see inferAlphabet).
  Alphabet() = default;

  /// Builds an alphabet from \p Chars. Returns an empty-string-backed
  /// alphabet and sets \p Error on invalid input (meta characters,
  /// whitespace, non-printables or duplicates).
  static Alphabet create(std::string_view Chars, std::string *Error);

  /// Convenience factory that aborts on invalid input; for literals in
  /// tests/examples, e.g. Alphabet::of("01").
  static Alphabet of(std::string_view Chars);

  /// True iff \p C is forbidden in alphabets (regex meta syntax).
  static bool isMetaChar(char C);

  size_t size() const { return Chars.size(); }
  bool empty() const { return Chars.empty(); }

  /// The \p Idx-th smallest symbol.
  char symbol(size_t Idx) const {
    assert(Idx < Chars.size() && "symbol index out of range");
    return Chars[Idx];
  }

  /// Index of \p C in sorted order, or -1 if absent.
  int indexOf(char C) const;

  bool contains(char C) const { return indexOf(C) >= 0; }

  /// True iff every character of \p Word is a symbol.
  bool containsAll(std::string_view Word) const;

  /// All symbols, ascending.
  const std::string &symbols() const { return Chars; }

  bool operator==(const Alphabet &O) const = default;

private:
  explicit Alphabet(std::string Sorted) : Chars(std::move(Sorted)) {}
  std::string Chars;
};

} // namespace paresy

#endif // PARESY_LANG_ALPHABET_H
