//===- lang/Alphabet.cpp - Ordered alphabets ---------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Alphabet.h"

#include "support/Compiler.h"

#include <algorithm>
#include <cctype>

using namespace paresy;

bool Alphabet::isMetaChar(char C) {
  return C == '(' || C == ')' || C == '+' || C == '*' || C == '?' ||
         C == '@' || C == '#';
}

Alphabet Alphabet::create(std::string_view Chars, std::string *Error) {
  std::string Sorted(Chars);
  std::sort(Sorted.begin(), Sorted.end());
  for (size_t I = 0; I != Sorted.size(); ++I) {
    char C = Sorted[I];
    if (isMetaChar(C)) {
      if (Error)
        *Error = std::string("alphabet uses reserved character '") + C + "'";
      return Alphabet("");
    }
    if (!std::isprint(static_cast<unsigned char>(C)) ||
        std::isspace(static_cast<unsigned char>(C))) {
      if (Error)
        *Error = "alphabet characters must be printable non-whitespace";
      return Alphabet("");
    }
    if (I > 0 && Sorted[I - 1] == C) {
      if (Error)
        *Error = std::string("duplicate alphabet character '") + C + "'";
      return Alphabet("");
    }
  }
  if (Error)
    Error->clear();
  return Alphabet(std::move(Sorted));
}

Alphabet Alphabet::of(std::string_view Chars) {
  std::string Error;
  Alphabet A = create(Chars, &Error);
  if (!Error.empty())
    reportFatalError(Error.c_str());
  return A;
}

int Alphabet::indexOf(char C) const {
  auto It = std::lower_bound(Chars.begin(), Chars.end(), C);
  if (It == Chars.end() || *It != C)
    return -1;
  return int(It - Chars.begin());
}

bool Alphabet::containsAll(std::string_view Word) const {
  for (char C : Word)
    if (!contains(C))
      return false;
  return true;
}
