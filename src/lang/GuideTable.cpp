//===- lang/GuideTable.cpp - Staged split pre-computation --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/GuideTable.h"

#include <cassert>

using namespace paresy;

GuideTable::GuideTable(const Universe &U) {
  RowBegin.reserve(U.size() + 1);
  RowBegin.push_back(0);
  for (size_t W = 0; W != U.size(); ++W) {
    const std::string &Word = U.word(W);
    // All |Word|+1 split points, including the two trivial splits with
    // epsilon (the IPS product of Def. 3.5 ranges over all of I).
    for (size_t Cut = 0; Cut <= Word.size(); ++Cut) {
      int64_t L = U.indexOf(std::string_view(Word).substr(0, Cut));
      int64_t R = U.indexOf(std::string_view(Word).substr(Cut));
      assert(L >= 0 && R >= 0 &&
             "infix closure must contain both split halves");
      Pairs.push_back(SplitPair{uint32_t(L), uint32_t(R)});
    }
    RowBegin.push_back(uint32_t(Pairs.size()));
  }
}
