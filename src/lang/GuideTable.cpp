//===- lang/GuideTable.cpp - Staged split pre-computation --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/GuideTable.h"

#include <cassert>

using namespace paresy;

GuideTable::GuideTable(const Universe &U) {
  RowBegin.reserve(U.size() + 1);
  RowBegin.push_back(0);
  // The pair count is known up front: every word contributes
  // |word| + 1 splits. Reserving avoids log(pairs) reallocation
  // copies of the hot array.
  size_t TotalPairs = 0;
  for (size_t W = 0; W != U.size(); ++W)
    TotalPairs += U.word(W).size() + 1;
  Pairs.reserve(TotalPairs);
  for (size_t W = 0; W != U.size(); ++W) {
    const std::string &Word = U.word(W);
    // All |Word|+1 split points, including the two trivial splits with
    // epsilon (the IPS product of Def. 3.5 ranges over all of I).
    for (size_t Cut = 0; Cut <= Word.size(); ++Cut) {
      int64_t L = U.indexOf(std::string_view(Word).substr(0, Cut));
      int64_t R = U.indexOf(std::string_view(Word).substr(Cut));
      assert(L >= 0 && R >= 0 &&
             "infix closure must contain both split halves");
      Pairs.push_back(SplitPair{uint32_t(L), uint32_t(R)});
    }
    RowBegin.push_back(uint32_t(Pairs.size()));
  }

  // Width-compressed copies of the pair stream (see pairs8()). Split
  // halves index universe words, so the bound is the universe size.
  if (U.size() <= 256) {
    Pairs8.reserve(Pairs.size() * 2);
    for (const SplitPair &P : Pairs) {
      Pairs8.push_back(uint8_t(P.Lhs));
      Pairs8.push_back(uint8_t(P.Rhs));
    }
  } else if (U.size() <= 65536) {
    Pairs16.reserve(Pairs.size() * 2);
    for (const SplitPair &P : Pairs) {
      Pairs16.push_back(uint16_t(P.Lhs));
      Pairs16.push_back(uint16_t(P.Rhs));
    }
  }
}

void GuideTable::ensureTransposed() const {
  assert(hasTransposed() && "universe too large for 8-bit transposes");
  std::call_once(TransposedOnce, [this] { buildTransposed(); });
}

void GuideTable::buildTransposed() const {
  // Transposed CSR views (see hasTransposed()), by counting sort: the
  // same (word, Lhs, Rhs) triples grouped by Lhs and by Rhs.
  size_t N = rowCount();
  LhsBegin.assign(N + 1, 0);
  RhsBegin.assign(N + 1, 0);
  for (const SplitPair &P : Pairs) {
    ++LhsBegin[P.Lhs + 1];
    ++RhsBegin[P.Rhs + 1];
  }
  for (size_t I = 0; I != N; ++I) {
    LhsBegin[I + 1] += LhsBegin[I];
    RhsBegin[I + 1] += RhsBegin[I];
  }
  LhsPairs.resize(Pairs.size() * 2);
  RhsPairs.resize(Pairs.size() * 2);
  std::vector<uint32_t> LhsFill(LhsBegin.begin(), LhsBegin.end() - 1);
  std::vector<uint32_t> RhsFill(RhsBegin.begin(), RhsBegin.end() - 1);
  for (size_t W = 0; W != N; ++W) {
    for (uint32_t P = RowBegin[W], E = RowBegin[W + 1]; P != E; ++P) {
      const SplitPair &S = Pairs[P];
      uint32_t LSlot = LhsFill[S.Lhs]++;
      LhsPairs[2 * LSlot] = uint8_t(W);
      LhsPairs[2 * LSlot + 1] = uint8_t(S.Rhs);
      uint32_t RSlot = RhsFill[S.Rhs]++;
      RhsPairs[2 * RSlot] = uint8_t(W);
      RhsPairs[2 * RSlot + 1] = uint8_t(S.Lhs);
    }
  }
}
