//===- lang/CharSeq.cpp - Characteristic-sequence algebra --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/CharSeq.h"

#include "lang/CsKernels.h"
#include "support/Bits.h"

#include <cassert>

using namespace paresy;

CsAlgebra::CsAlgebra(const Universe &U, const GuideTable *GT)
    : U(U), GT(GT), WordCount(U.csWords()) {
  StarCurrent.resize(WordCount);
  StarNext.resize(WordCount);
}

void CsAlgebra::makeEmpty(uint64_t *Dst) const {
  clearWords(Dst, WordCount);
}

void CsAlgebra::makeEpsilon(uint64_t *Dst) const {
  assert(U.size() > 0 && "epsilon CS needs a non-empty universe");
  clearWords(Dst, WordCount);
  setBit(Dst, U.epsilonIndex());
}

void CsAlgebra::makeLiteral(uint64_t *Dst, char C) const {
  clearWords(Dst, WordCount);
  int64_t Idx = U.indexOf(std::string_view(&C, 1));
  if (Idx >= 0)
    setBit(Dst, size_t(Idx));
}

void CsAlgebra::unionOf(uint64_t *Dst, const uint64_t *A,
                        const uint64_t *B) const {
  orWords(Dst, A, B, WordCount);
}

void CsAlgebra::concat(uint64_t *Dst, const uint64_t *A, const uint64_t *B) {
  assert(Dst != A && Dst != B && "concat destination must not alias");
  if (GT)
    concatStaged(Dst, A, B);
  else
    concatUnstaged(Dst, A, B);
}

void CsAlgebra::concatStaged(uint64_t *Dst, const uint64_t *A,
                             const uint64_t *B) {
  // The fold of Alg. 2 lines 10-13, width-specialized (see
  // lang/CsKernels.h); no data-dependent early exit.
  cskernel::concatStaged(Dst, A, B, *GT, U.size(), WordCount);
  PairsVisited += GT->totalPairs();
}

void CsAlgebra::concatUnstaged(uint64_t *Dst, const uint64_t *A,
                               const uint64_t *B) {
  // Ablation slow path: re-derive every split through string slicing
  // and hash lookups, i.e. what every concatenation would cost without
  // the staged guide table.
  clearWords(Dst, WordCount);
  for (size_t W = 0; W != U.size(); ++W) {
    const std::string &Word = U.word(W);
    bool Member = false;
    for (size_t Cut = 0; Cut <= Word.size(); ++Cut) {
      ++PairsVisited;
      int64_t L = U.indexOf(std::string_view(Word).substr(0, Cut));
      int64_t R = U.indexOf(std::string_view(Word).substr(Cut));
      assert(L >= 0 && R >= 0 && "universe must be infix-closed");
      Member |= testBit(A, size_t(L)) & testBit(B, size_t(R));
    }
    if (Member)
      setBit(Dst, W);
  }
}

void CsAlgebra::star(uint64_t *Dst, const uint64_t *A) {
  assert(Dst != A && "star destination must not alias its operand");
  // Fixpoint of S = 1 + S.A, reached after at most maxWordLength + 1
  // rounds because each round extends the witnessed decompositions by
  // one factor and universe words have bounded length.
  if (GT) {
    unsigned Rounds =
        cskernel::starStaged(Dst, A, *GT, U.size(), WordCount,
                             U.epsilonIndex(), StarCurrent.data(),
                             StarNext.data());
    PairsVisited += uint64_t(Rounds) * GT->totalPairs();
    return;
  }
  makeEpsilon(StarCurrent.data());
  for (;;) {
    concat(StarNext.data(), StarCurrent.data(), A);
    if (!orWordsInto(StarCurrent.data(), StarNext.data(), WordCount))
      break;
  }
  copyWords(Dst, StarCurrent.data(), WordCount);
}

void CsAlgebra::question(uint64_t *Dst, const uint64_t *A) const {
  if (Dst != A)
    copyWords(Dst, A, WordCount);
  setBit(Dst, U.epsilonIndex());
}

void CsAlgebra::complement(uint64_t *Dst, const uint64_t *A) const {
  notWords(Dst, A, WordCount, U.size());
}

void CsAlgebra::intersect(uint64_t *Dst, const uint64_t *A,
                          const uint64_t *B) const {
  andWords(Dst, A, B, WordCount);
}

unsigned CsAlgebra::mistakes(const uint64_t *Cs) const {
  return popcountAndNot(U.posMask().data(), Cs, WordCount) +
         popcountAnd(U.negMask().data(), Cs, WordCount);
}

bool CsAlgebra::satisfies(const uint64_t *Cs, unsigned MaxMistakes) const {
  if (MaxMistakes == 0)
    return containsWords(Cs, U.posMask().data(), WordCount) &&
           disjointWords(Cs, U.negMask().data(), WordCount);
  return mistakes(Cs) <= MaxMistakes;
}
