//===- lang/GuideTable.h - Staged split pre-computation ----------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guide table of Sec. 3 ("Staging"): because (P, N) - and hence
/// ic(P u N) - never changes during a run, all ways of splitting each
/// universe word w into w = u . v with u, v in ic(P u N) are computed
/// once, up front. Concatenation and Kleene star of characteristic
/// sequences then reduce to folds over these precomputed (index(u),
/// index(v)) pairs with no string handling in the inner loop.
///
/// Layout is CSR-style: one flat pair array plus per-word offsets, so
/// the GPU-style kernels can fetch a word's splits with two loads.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_LANG_GUIDETABLE_H
#define PARESY_LANG_GUIDETABLE_H

#include "lang/Universe.h"

#include <cstdint>
#include <mutex>
#include <vector>

namespace paresy {

/// One split w = words[Lhs] . words[Rhs].
struct SplitPair {
  uint32_t Lhs;
  uint32_t Rhs;
  bool operator==(const SplitPair &O) const = default;
};

/// Precomputed splits for every universe word.
class GuideTable {
public:
  /// Builds the table for \p U. Infix-closedness guarantees every
  /// split half is itself a universe word (asserted).
  explicit GuideTable(const Universe &U);

  /// Number of universe words (== number of rows).
  size_t rowCount() const { return RowBegin.size() - 1; }

  /// Splits of word \p WordIdx: [pairsBegin(w), pairsEnd(w)).
  const SplitPair *pairsBegin(size_t WordIdx) const {
    return Pairs.data() + RowBegin[WordIdx];
  }
  const SplitPair *pairsEnd(size_t WordIdx) const {
    return Pairs.data() + RowBegin[WordIdx + 1];
  }
  size_t pairCount(size_t WordIdx) const {
    return RowBegin[WordIdx + 1] - RowBegin[WordIdx];
  }

  /// Total number of split pairs over all words; the dominant factor
  /// in the cost of one CS concatenation.
  size_t totalPairs() const { return Pairs.size(); }

  /// Raw CSR arrays, exposed for the GPU-style kernels.
  const std::vector<uint32_t> &rowOffsets() const { return RowBegin; }
  const std::vector<SplitPair> &pairs() const { return Pairs; }

  /// The same pair stream re-encoded at the narrowest index width the
  /// universe allows, interleaved (Lhs, Rhs): the concat fold's only
  /// memory traffic is this stream, so an 8-bit encoding (every
  /// universe up to 256 words, i.e. every CS up to 4 words) carries
  /// 4x the pairs per cache line of the 32-bit one. Empty when the
  /// universe is too large for the width.
  const std::vector<uint8_t> &pairs8() const { return Pairs8; }
  const std::vector<uint16_t> &pairs16() const { return Pairs16; }

  /// Transposed views of the split relation for the sparse concat
  /// walk (available for universes up to 256 words): grouped by left
  /// half - lhsPairs8() stream of interleaved (word, Rhs) in CSR rows
  /// lhsRowOffsets() - and symmetrically by right half. A concat
  /// whose operand has few set bits visits only the groups of those
  /// bits instead of every split of every word.
  ///
  /// Built lazily on first ensureTransposed() call (thread-safe):
  /// staging stays cheap and queries that never take the sparse path
  /// never pay for the views. Accessors are valid only afterwards.
  bool hasTransposed() const { return !Pairs8.empty(); }
  void ensureTransposed() const;
  const std::vector<uint32_t> &lhsRowOffsets() const { return LhsBegin; }
  const std::vector<uint8_t> &lhsPairs8() const { return LhsPairs; }
  const std::vector<uint32_t> &rhsRowOffsets() const { return RhsBegin; }
  const std::vector<uint8_t> &rhsPairs8() const { return RhsPairs; }

private:
  void buildTransposed() const;

  std::vector<uint32_t> RowBegin; // size rowCount()+1
  std::vector<SplitPair> Pairs;
  std::vector<uint8_t> Pairs8;   // 2 entries per pair; size()<=256.
  std::vector<uint16_t> Pairs16; // 2 entries per pair; size()<=65536.
  // Lazily built transposed views (see ensureTransposed).
  mutable std::once_flag TransposedOnce;
  mutable std::vector<uint32_t> LhsBegin; // size rowCount()+1
  mutable std::vector<uint8_t> LhsPairs;  // (word, Rhs) grouped by Lhs.
  mutable std::vector<uint32_t> RhsBegin; // size rowCount()+1
  mutable std::vector<uint8_t> RhsPairs;  // (word, Lhs) grouped by Rhs.
};

} // namespace paresy

#endif // PARESY_LANG_GUIDETABLE_H
