//===- lang/GuideTable.h - Staged split pre-computation ----------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The guide table of Sec. 3 ("Staging"): because (P, N) - and hence
/// ic(P u N) - never changes during a run, all ways of splitting each
/// universe word w into w = u . v with u, v in ic(P u N) are computed
/// once, up front. Concatenation and Kleene star of characteristic
/// sequences then reduce to folds over these precomputed (index(u),
/// index(v)) pairs with no string handling in the inner loop.
///
/// Layout is CSR-style: one flat pair array plus per-word offsets, so
/// the GPU-style kernels can fetch a word's splits with two loads.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_LANG_GUIDETABLE_H
#define PARESY_LANG_GUIDETABLE_H

#include "lang/Universe.h"

#include <cstdint>
#include <vector>

namespace paresy {

/// One split w = words[Lhs] . words[Rhs].
struct SplitPair {
  uint32_t Lhs;
  uint32_t Rhs;
  bool operator==(const SplitPair &O) const = default;
};

/// Precomputed splits for every universe word.
class GuideTable {
public:
  /// Builds the table for \p U. Infix-closedness guarantees every
  /// split half is itself a universe word (asserted).
  explicit GuideTable(const Universe &U);

  /// Number of universe words (== number of rows).
  size_t rowCount() const { return RowBegin.size() - 1; }

  /// Splits of word \p WordIdx: [pairsBegin(w), pairsEnd(w)).
  const SplitPair *pairsBegin(size_t WordIdx) const {
    return Pairs.data() + RowBegin[WordIdx];
  }
  const SplitPair *pairsEnd(size_t WordIdx) const {
    return Pairs.data() + RowBegin[WordIdx + 1];
  }
  size_t pairCount(size_t WordIdx) const {
    return RowBegin[WordIdx + 1] - RowBegin[WordIdx];
  }

  /// Total number of split pairs over all words; the dominant factor
  /// in the cost of one CS concatenation.
  size_t totalPairs() const { return Pairs.size(); }

  /// Raw CSR arrays, exposed for the GPU-style kernels.
  const std::vector<uint32_t> &rowOffsets() const { return RowBegin; }
  const std::vector<SplitPair> &pairs() const { return Pairs; }

private:
  std::vector<uint32_t> RowBegin; // size rowCount()+1
  std::vector<SplitPair> Pairs;
};

} // namespace paresy

#endif // PARESY_LANG_GUIDETABLE_H
