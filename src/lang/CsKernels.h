//===- lang/CsKernels.h - Shared staged concat/star kernel bodies ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one implementation of the staged concatenation fold (Alg. 2
/// lines 10-13) and the star fixpoint built on it, shared by the
/// sequential algebra (lang/CharSeq) and the data-parallel kernel
/// bodies (engine/Kernels). The fold dominates every Paresy run, so it
/// is specialized along two axes:
///
///  * CS width. 1-word CSs (universes up to 64 words - the
///    overwhelming majority of RIC-sized specs): both operands live in
///    registers, the fold is pure shift/and/or with no loads besides
///    the pair stream, and the result is accumulated in a register and
///    stored once. 2-word CSs: operands are four register words
///    selected branchlessly. Wider: the generic path, still
///    accumulating each output word in a register instead of
///    read-modify-writing Dst bit by bit.
///
///  * Pair-stream width. The fold's only memory traffic is the guide
///    table's pair stream, so the kernels consume the narrowest
///    encoding the universe allows (GuideTable::pairs8/pairs16): an
///    8-bit stream carries 4x the pairs per cache line of the 32-bit
///    SplitPair array.
///
/// All variants hoist the CSR base pointers and the pair load out of
/// the split loop and are bit-for-bit equivalent
/// (tests/kernels_test.cpp enforces specialized == generic).
///
/// Functions are free inline over raw spans: no shared mutable state,
/// so any number of tasks may run them concurrently - mirroring how
/// the paper's CUDA kernels are structured.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_LANG_CSKERNELS_H
#define PARESY_LANG_CSKERNELS_H

#include "lang/GuideTable.h"
#include "support/Bits.h"

#include <cassert>
#include <cstdint>

namespace paresy {
namespace cskernel {

/// 1-word fold: Dst[0] = A.B for universes of at most 64 words.
/// \p Pairs is an interleaved (Lhs, Rhs) stream of any index width.
template <typename PairT>
inline void concatW1(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                     const uint32_t *Rows, const PairT *Pairs,
                     size_t NumWords) {
  assert(NumWords <= BitsPerWord && "1-word kernel on a wider universe");
  const uint64_t A0 = A[0];
  const uint64_t B0 = B[0];
  uint64_t Out = 0;
  for (size_t W = 0; W != NumWords; ++W) {
    uint64_t Bit = 0;
    for (uint32_t P = Rows[W], E = Rows[W + 1]; P != E; ++P) {
      const PairT Lhs = Pairs[2 * P];
      const PairT Rhs = Pairs[2 * P + 1];
      Bit |= (A0 >> Lhs) & (B0 >> Rhs);
    }
    Out |= (Bit & 1) << W;
  }
  Dst[0] = Out;
}

/// 2-word fold: operands held in four registers, the half holding a
/// given bit selected branchlessly (compiles to cmov/csel).
template <typename PairT>
inline void concatW2(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                     const uint32_t *Rows, const PairT *Pairs,
                     size_t NumWords) {
  assert(NumWords <= 2 * BitsPerWord &&
         "2-word kernel on a wider universe");
  const uint64_t A0 = A[0], A1 = A[1];
  const uint64_t B0 = B[0], B1 = B[1];
  uint64_t Out0 = 0, Out1 = 0;
  size_t Lo = NumWords < BitsPerWord ? NumWords : BitsPerWord;
  for (size_t W = 0; W != Lo; ++W) {
    uint64_t Bit = 0;
    for (uint32_t P = Rows[W], E = Rows[W + 1]; P != E; ++P) {
      const PairT Lhs = Pairs[2 * P];
      const PairT Rhs = Pairs[2 * P + 1];
      uint64_t AH = (Lhs & BitsPerWord) ? A1 : A0;
      uint64_t BH = (Rhs & BitsPerWord) ? B1 : B0;
      Bit |= (AH >> (Lhs & (BitsPerWord - 1))) &
             (BH >> (Rhs & (BitsPerWord - 1)));
    }
    Out0 |= (Bit & 1) << W;
  }
  for (size_t W = Lo; W != NumWords; ++W) {
    uint64_t Bit = 0;
    for (uint32_t P = Rows[W], E = Rows[W + 1]; P != E; ++P) {
      const PairT Lhs = Pairs[2 * P];
      const PairT Rhs = Pairs[2 * P + 1];
      uint64_t AH = (Lhs & BitsPerWord) ? A1 : A0;
      uint64_t BH = (Rhs & BitsPerWord) ? B1 : B0;
      Bit |= (AH >> (Lhs & (BitsPerWord - 1))) &
             (BH >> (Rhs & (BitsPerWord - 1)));
    }
    Out1 |= (Bit & 1) << (W - BitsPerWord);
  }
  Dst[0] = Out0;
  Dst[1] = Out1;
}

/// Generic fold for any width: per-pair loads stay, but each output
/// word is accumulated in a register and stored once (the old path
/// cleared Dst up front and set bits through memory).
template <typename PairT>
inline void concatGeneric(uint64_t *Dst, const uint64_t *A,
                          const uint64_t *B, const uint32_t *Rows,
                          const PairT *Pairs, size_t NumWords,
                          size_t CsWords) {
  size_t W = 0;
  for (size_t OW = 0; OW != CsWords; ++OW) {
    uint64_t Out = 0;
    size_t End = (OW + 1) * BitsPerWord;
    if (End > NumWords)
      End = NumWords;
    for (; W < End; ++W) {
      uint64_t Bit = 0;
      for (uint32_t P = Rows[W], E = Rows[W + 1]; P != E; ++P) {
        const uint32_t Lhs = Pairs[2 * P];
        const uint32_t Rhs = Pairs[2 * P + 1];
        Bit |= (A[Lhs / BitsPerWord] >> (Lhs % BitsPerWord)) &
               (B[Rhs / BitsPerWord] >> (Rhs % BitsPerWord));
      }
      Out |= (Bit & 1) << (W % BitsPerWord);
    }
    Dst[OW] = Out;
  }
}

/// The 32-bit pair stream: a SplitPair is two packed uint32s, so the
/// CSR array doubles as an interleaved stream.
inline const uint32_t *pairStream32(const GuideTable &GT) {
  static_assert(sizeof(SplitPair) == 2 * sizeof(uint32_t),
                "SplitPair must be two packed 32-bit indices");
  return reinterpret_cast<const uint32_t *>(GT.pairs().data());
}

/// Sparse fold over a transposed stream, 1-word CS: for each set bit
/// of \p Sparse (ctz word walk), OR in the completions whose other
/// half is set in \p Probe. \p Stream rows are interleaved
/// (word, other-half) grouped by the sparse operand's index.
inline void concatW1Sparse(uint64_t *Dst, uint64_t Sparse, uint64_t Probe,
                           const uint32_t *Rows, const uint8_t *Stream) {
  uint64_t Out = 0;
  while (Sparse) {
    unsigned U = countTrailingZeros(Sparse);
    Sparse &= Sparse - 1;
    for (uint32_t P = Rows[U], E = Rows[U + 1]; P != E; ++P) {
      const unsigned W = Stream[2 * P];
      const unsigned V = Stream[2 * P + 1];
      Out |= ((Probe >> V) & 1) << W;
    }
  }
  Dst[0] = Out;
}

/// Sparse fold, any CS width. Dst must not alias either operand.
inline void concatSparseGeneric(uint64_t *Dst, const uint64_t *Sparse,
                                const uint64_t *Probe,
                                const uint32_t *Rows,
                                const uint8_t *Stream, size_t CsWords) {
  clearWords(Dst, CsWords);
  forEachSetBit(Sparse, CsWords, [&](size_t U) {
    for (uint32_t P = Rows[U], E = Rows[U + 1]; P != E; ++P) {
      const unsigned W = Stream[2 * P];
      const unsigned V = Stream[2 * P + 1];
      Dst[W / BitsPerWord] |=
          ((Probe[V / BitsPerWord] >> (V % BitsPerWord)) & 1)
          << (W % BitsPerWord);
    }
  });
}

/// Picks the sparse walk when one operand's population is well below
/// the universe size (then only that operand's split groups are
/// visited, a fraction of the full fold). The dense fold visits
/// totalPairs() splits whatever the operands hold - the paper's
/// no-divergence GPU kernel - so the cutover is a pure win for the
/// host backends while outputs stay bit-identical.
inline bool preferSparse(unsigned MinPop, size_t NumWords) {
  return size_t(MinPop) * 4 <= NumWords;
}

/// Dst = A . B over the staged guide table, dispatched on the CS
/// width, operand sparsity, and the narrowest available pair stream.
/// \p NumWords is the universe size (== guide-table rows); \p CsWords
/// the row width. Dst must not alias A or B.
inline void concatStaged(uint64_t *Dst, const uint64_t *A,
                         const uint64_t *B, const GuideTable &GT,
                         size_t NumWords, size_t CsWords) {
  const uint32_t *Rows = GT.rowOffsets().data();

  if (GT.hasTransposed()) {
    unsigned PopA = popcountWords(A, CsWords);
    unsigned PopB = popcountWords(B, CsWords);
    if (preferSparse(PopA < PopB ? PopA : PopB, NumWords)) {
      // Walk the sparser operand's transposed groups; probe the other.
      GT.ensureTransposed();
      if (CsWords == 1) {
        if (PopA <= PopB)
          concatW1Sparse(Dst, A[0], B[0], GT.lhsRowOffsets().data(),
                         GT.lhsPairs8().data());
        else
          concatW1Sparse(Dst, B[0], A[0], GT.rhsRowOffsets().data(),
                         GT.rhsPairs8().data());
      } else if (PopA <= PopB) {
        concatSparseGeneric(Dst, A, B, GT.lhsRowOffsets().data(),
                            GT.lhsPairs8().data(), CsWords);
      } else {
        concatSparseGeneric(Dst, B, A, GT.rhsRowOffsets().data(),
                            GT.rhsPairs8().data(), CsWords);
      }
      return;
    }
  }

  switch (CsWords) {
  case 1:
    // A 1-word CS implies <= 64 universe words: the 8-bit stream
    // always exists.
    concatW1(Dst, A, B, Rows, GT.pairs8().data(), NumWords);
    break;
  case 2:
    concatW2(Dst, A, B, Rows, GT.pairs8().data(), NumWords);
    break;
  default:
    if (!GT.pairs8().empty())
      concatGeneric(Dst, A, B, Rows, GT.pairs8().data(), NumWords,
                    CsWords);
    else if (!GT.pairs16().empty())
      concatGeneric(Dst, A, B, Rows, GT.pairs16().data(), NumWords,
                    CsWords);
    else
      concatGeneric(Dst, A, B, Rows, pairStream32(GT), NumWords,
                    CsWords);
    break;
  }
}

/// Dst = A* as the fixpoint of S = 1 + S.A, entirely in registers for
/// 1-word CSs (the adaptive concat dispatch still applies per round:
/// a sparse A keeps every round on the transposed walk even after the
/// fixpoint iterate densifies). Returns the number of concat rounds
/// executed (the work measure call sites charge).
inline unsigned starW1(uint64_t *Dst, const uint64_t *A,
                       const GuideTable &GT, size_t NumWords,
                       size_t EpsIdx) {
  const uint64_t A0 = A[0];
  uint64_t Cur = uint64_t(1) << EpsIdx;
  unsigned Rounds = 0;
  for (;;) {
    ++Rounds;
    uint64_t Next;
    concatStaged(&Next, &Cur, &A0, GT, NumWords, 1);
    uint64_t Grown = Cur | Next;
    if (Grown == Cur)
      break;
    Cur = Grown;
  }
  Dst[0] = Cur;
  return Rounds;
}

/// Star for any width. \p Cur and \p Next are caller scratch of
/// \p CsWords words each (ignored for the 1-word case). Dst must not
/// alias A. Returns the number of concat rounds.
inline unsigned starStaged(uint64_t *Dst, const uint64_t *A,
                           const GuideTable &GT, size_t NumWords,
                           size_t CsWords, size_t EpsIdx, uint64_t *Cur,
                           uint64_t *Next) {
  if (CsWords == 1)
    return starW1(Dst, A, GT, NumWords, EpsIdx);

  clearWords(Cur, CsWords);
  setBit(Cur, EpsIdx);
  unsigned Rounds = 0;
  for (;;) {
    ++Rounds;
    concatStaged(Next, Cur, A, GT, NumWords, CsWords);
    // Fused union + fixpoint test: one pass, no copy.
    if (!orWordsInto(Cur, Next, CsWords))
      break;
  }
  copyWords(Dst, Cur, CsWords);
  return Rounds;
}

//===----------------------------------------------------------------------===//
// Spec-delta widening kernels (DESIGN.md Sec. 14)
//
// When a spec gains examples the universe ic(P u N) gains infixes, and
// every cached CS must widen: its old bits move to the new words'
// shortlex positions and the appended columns - the new words'
// membership bits - are recomputed per row. These kernels are the
// bit-level half of that edit; the provenance-directed membership
// recursion lives in core/DeltaWiden.h.
//===----------------------------------------------------------------------===//

/// Bit \p Idx of row \p Cs.
inline bool testBit(const uint64_t *Cs, uint32_t Idx) {
  return (Cs[Idx / BitsPerWord] >> (Idx % BitsPerWord)) & 1;
}

/// Scatters an old-universe row into its widened positions: new bit
/// NewOfOld[i] takes old bit i; every other bit of Dst (the appended
/// columns and the padding) is cleared. Walks only the set bits of
/// Src, so the cost tracks row population, not universe size.
inline void widenScatter(uint64_t *Dst, const uint64_t *Src,
                         const uint32_t *NewOfOld, size_t OldBits,
                         size_t SrcWords, size_t DstWords) {
  clearWords(Dst, DstWords);
  forEachSetBit(Src, SrcWords, [&](size_t I) {
    if (I < OldBits) {
      const uint32_t N = NewOfOld[I];
      Dst[N / BitsPerWord] |= uint64_t(1) << (N % BitsPerWord);
    }
  });
}

/// Membership fold for one appended column: true iff some split
/// w = u v in \p Pairs[2*Begin .. 2*End) has bit u set in L and bit v
/// set in R. \p SkipEpsilonLhs drops the u = epsilon split (bit 0) -
/// the star fixpoint's guard against the trivial self-decomposition.
inline bool deltaSplitAny(const uint64_t *L, const uint64_t *R,
                          const uint32_t *Pairs, uint32_t Begin,
                          uint32_t End, bool SkipEpsilonLhs) {
  for (uint32_t P = Begin; P != End; ++P) {
    const uint32_t U = Pairs[2 * P];
    const uint32_t V = Pairs[2 * P + 1];
    if (SkipEpsilonLhs && U == 0)
      continue;
    if (testBit(L, U) && testBit(R, V))
      return true;
  }
  return false;
}

} // namespace cskernel
} // namespace paresy

#endif // PARESY_LANG_CSKERNELS_H
