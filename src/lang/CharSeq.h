//===- lang/CharSeq.h - Characteristic-sequence algebra ----------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semiring of infix power series over the Booleans (Def. 3.5),
/// concretely: characteristic sequences (CS) are bitvectors over the
/// universe ic(P u N), and this class implements 0, 1, literals, +,
/// ., *, ? and the extra boolean operations on them. Union is a
/// bitwise OR; concatenation folds over the staged guide table (the
/// inner loop of Alg. 2); star iterates concatenation to a fixpoint.
///
/// All operations work on raw uint64_t spans supplied by the caller
/// (the language cache or kernel temporaries own the storage), and the
/// algebra counts the split pairs it visits - the work measure the
/// GPU performance model charges for.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_LANG_CHARSEQ_H
#define PARESY_LANG_CHARSEQ_H

#include "lang/GuideTable.h"
#include "lang/Universe.h"

#include <cstdint>
#include <vector>

namespace paresy {

/// Operations of the CS semiring for one fixed universe.
///
/// Passing a null guide table selects the unstaged slow path that
/// re-discovers splits through hash lookups on every concatenation;
/// it exists only to quantify the value of staging (ablation E6).
class CsAlgebra {
public:
  CsAlgebra(const Universe &U, const GuideTable *GT);

  const Universe &universe() const { return U; }

  /// CS length in 64-bit words.
  size_t csWords() const { return WordCount; }

  /// Dst = 0 (the empty language).
  void makeEmpty(uint64_t *Dst) const;

  /// Dst = 1 (the language {epsilon}).
  void makeEpsilon(uint64_t *Dst) const;

  /// Dst = {C}: the single one-character word, absent from the CS when
  /// C occurs nowhere in the examples (such literals are then
  /// indistinguishable from the empty language, which is correct
  /// relative to the specification).
  void makeLiteral(uint64_t *Dst, char C) const;

  /// Dst = A + B (bitwise or). Dst may alias A or B.
  void unionOf(uint64_t *Dst, const uint64_t *A, const uint64_t *B) const;

  /// Dst = A . B via the guide-table fold. Dst must not alias A or B.
  void concat(uint64_t *Dst, const uint64_t *A, const uint64_t *B);

  /// Dst = A* as the fixpoint of S = 1 + S.A. Dst must not alias A.
  void star(uint64_t *Dst, const uint64_t *A);

  /// Dst = A? = 1 + A. Dst may alias A.
  void question(uint64_t *Dst, const uint64_t *A) const;

  /// Dst = complement of A relative to the universe.
  void complement(uint64_t *Dst, const uint64_t *A) const;

  /// Dst = A n B (bitwise and; the conjunction Def. 3.5 mentions).
  void intersect(uint64_t *Dst, const uint64_t *A, const uint64_t *B) const;

  /// Number of examples the language misclassifies: positives it
  /// rejects plus negatives it accepts (Sec. 5.2 "REI with error").
  unsigned mistakes(const uint64_t *Cs) const;

  /// True iff Cs satisfies the specification with at most
  /// \p MaxMistakes misclassified examples (0 = precise REI).
  bool satisfies(const uint64_t *Cs, unsigned MaxMistakes = 0) const;

  /// Split pairs visited by concat/star so far (the dominant work
  /// term; the GPU performance model consumes this).
  uint64_t pairsVisited() const { return PairsVisited; }
  void resetPairsVisited() { PairsVisited = 0; }

private:
  void concatStaged(uint64_t *Dst, const uint64_t *A, const uint64_t *B);
  void concatUnstaged(uint64_t *Dst, const uint64_t *A, const uint64_t *B);

  const Universe &U;
  const GuideTable *GT;
  size_t WordCount;
  uint64_t PairsVisited = 0;
  std::vector<uint64_t> StarCurrent;
  std::vector<uint64_t> StarNext;
};

} // namespace paresy

#endif // PARESY_LANG_CHARSEQ_H
