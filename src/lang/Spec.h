//===- lang/Spec.h - REI specifications (Def. 3.1) --------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A specification is a pair (P, N) of finite sets of strings: the
/// positive examples a solution must accept and the negative examples
/// it must reject. This header also defines the on-disk format used by
/// the example tools and the shipped benchmark instances:
///
///   # comment
///   +10        positive example "10"
///   +          positive example "" (epsilon)
///   -0         negative example "0"
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_LANG_SPEC_H
#define PARESY_LANG_SPEC_H

#include "lang/Alphabet.h"

#include <string>
#include <string_view>
#include <vector>

namespace paresy {

/// Positive/negative string examples. Stored order is irrelevant to
/// the algorithm (characteristic sequences are keyed by the shortlex
/// order of the infix closure) but preserved for reporting.
struct Spec {
  std::vector<std::string> Pos;
  std::vector<std::string> Neg;

  Spec() = default;
  Spec(std::vector<std::string> Pos, std::vector<std::string> Neg)
      : Pos(std::move(Pos)), Neg(std::move(Neg)) {}

  size_t exampleCount() const { return Pos.size() + Neg.size(); }

  /// Length of the longest example (0 when there are none).
  size_t maxExampleLength() const;

  /// Validates the specification against \p Sigma: P and N must be
  /// duplicate-free, disjoint, and drawn from Sigma*. Returns true on
  /// success; otherwise fills \p Error.
  bool validate(const Alphabet &Sigma, std::string *Error) const;

  /// Renders in the +/- line format described above.
  std::string toText() const;
};

/// Parses the +/- line format. Returns false and fills \p Error on
/// malformed input (it does not validate against an alphabet; callers
/// combine with Spec::validate).
bool parseSpecText(std::string_view Text, Spec &Out, std::string *Error);

/// Reads and parses a spec file. Returns false and fills \p Error if
/// the file cannot be read or parsed.
bool readSpecFile(const std::string &Path, Spec &Out, std::string *Error);

/// The smallest alphabet containing every character of the examples.
/// Returns false (with \p Error) if an example uses a reserved
/// character.
bool inferAlphabet(const Spec &S, Alphabet &Out, std::string *Error);

} // namespace paresy

#endif // PARESY_LANG_SPEC_H
