//===- lang/Universe.h - Infix closure as an indexed word universe ----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The word universe of one Paresy run: ic(P u N), the infix closure of
/// the examples (Def. 2.2, Sec. 3 "first space-time trade-off"),
/// sorted in shortlex order (Def. 2.5). A characteristic sequence is a
/// bitvector whose i-th bit says whether the i-th universe word is in
/// the language; the universe also fixes the CS geometry: bit counts
/// are padded to the next power of two (the paper's second trade-off)
/// and stored in 64-bit words.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_LANG_UNIVERSE_H
#define PARESY_LANG_UNIVERSE_H

#include "lang/Spec.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace paresy {

/// Returns true iff \p A precedes \p B in shortlex order: shorter
/// strings first, ties broken lexicographically byte-wise (alphabets
/// are sorted ascending, so byte order realises the lifted order).
bool shortlexLess(const std::string &A, const std::string &B);

/// ic(S): the set of all infixes (substrings) of members of \p S.
/// Always contains the empty string when \p S is non-empty.
std::vector<std::string> infixClosure(const std::vector<std::string> &S);

/// The indexed, shortlex-sorted infix closure of a specification's
/// examples, plus the derived characteristic-sequence geometry and the
/// P/N membership masks used for the satisfaction check.
class Universe {
public:
  /// Builds ic(P u N) for \p S. \p PadToPowerOfTwo enables the paper's
  /// power-of-two padding (on by default; the ablation benchmark turns
  /// it off to quantify the trade-off).
  explicit Universe(const Spec &S, bool PadToPowerOfTwo = true);

  /// Number of words in ic(P u N).
  size_t size() const { return Words.size(); }

  /// The \p Idx-th word in shortlex order.
  const std::string &word(size_t Idx) const { return Words[Idx]; }

  /// All words, shortlex-sorted.
  const std::vector<std::string> &words() const { return Words; }

  /// Index of \p W, or -1 when W is not in the universe.
  int64_t indexOf(std::string_view W) const;

  /// Index of the empty string (always 0 in a non-empty universe).
  size_t epsilonIndex() const { return 0; }

  /// Characteristic-sequence length in bits (padded if enabled).
  size_t csBits() const { return PaddedBits; }

  /// Characteristic-sequence length in 64-bit words (>= 1).
  size_t csWords() const { return CsWordCount; }

  /// Bit mask of the positive examples (bit i set iff word i is in P).
  const std::vector<uint64_t> &posMask() const { return PosMask; }

  /// Bit mask of the negative examples.
  const std::vector<uint64_t> &negMask() const { return NegMask; }

  /// Renders a CS as the membership list the paper's figures show,
  /// e.g. "{11, 1, <eps>}" (for debugging and the examples).
  std::string describeCs(const uint64_t *Cs) const;

private:
  std::vector<std::string> Words;
  std::unordered_map<std::string, uint32_t> Index;
  size_t PaddedBits = 1;
  size_t CsWordCount = 1;
  std::vector<uint64_t> PosMask;
  std::vector<uint64_t> NegMask;
};

} // namespace paresy

#endif // PARESY_LANG_UNIVERSE_H
