//===- lang/Universe.cpp - Infix closure as an indexed word universe --------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Universe.h"

#include "support/Bits.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace paresy;

bool paresy::shortlexLess(const std::string &A, const std::string &B) {
  if (A.size() != B.size())
    return A.size() < B.size();
  return A < B;
}

std::vector<std::string>
paresy::infixClosure(const std::vector<std::string> &S) {
  std::unordered_set<std::string> Infixes;
  for (const std::string &W : S) {
    // Every substring W[I, I+Len) including the empty one.
    Infixes.emplace();
    for (size_t I = 0; I != W.size(); ++I)
      for (size_t Len = 1; Len <= W.size() - I; ++Len)
        Infixes.emplace(W, I, Len);
  }
  std::vector<std::string> Result(Infixes.begin(), Infixes.end());
  std::sort(Result.begin(), Result.end(), shortlexLess);
  return Result;
}

Universe::Universe(const Spec &S, bool PadToPowerOfTwo) {
  std::vector<std::string> All = S.Pos;
  All.insert(All.end(), S.Neg.begin(), S.Neg.end());
  Words = infixClosure(All);

  Index.reserve(Words.size());
  for (size_t I = 0; I != Words.size(); ++I)
    Index.emplace(Words[I], uint32_t(I));

  size_t Bits = std::max<size_t>(1, Words.size());
  PaddedBits = PadToPowerOfTwo ? size_t(nextPowerOfTwo(Bits)) : Bits;
  CsWordCount = wordsForBits(PaddedBits);

  PosMask.assign(CsWordCount, 0);
  NegMask.assign(CsWordCount, 0);
  for (const std::string &W : S.Pos) {
    int64_t Idx = indexOf(W);
    assert(Idx >= 0 && "positive example missing from its own closure");
    setBit(PosMask.data(), size_t(Idx));
  }
  for (const std::string &W : S.Neg) {
    int64_t Idx = indexOf(W);
    assert(Idx >= 0 && "negative example missing from its own closure");
    setBit(NegMask.data(), size_t(Idx));
  }
}

int64_t Universe::indexOf(std::string_view W) const {
  // Transparent lookup would avoid this copy; examples are tiny.
  auto It = Index.find(std::string(W));
  if (It == Index.end())
    return -1;
  return It->second;
}

std::string Universe::describeCs(const uint64_t *Cs) const {
  std::string Out = "{";
  bool First = true;
  // ctz word walk: cost tracks the members listed, not the bit length.
  forEachSetBit(Cs, CsWordCount, [&](size_t I) {
    if (I >= Words.size())
      return; // Padding bits are zero by construction; be defensive.
    if (!First)
      Out += ", ";
    First = false;
    Out += Words[I].empty() ? "<eps>" : Words[I];
  });
  Out += "}";
  return Out;
}
