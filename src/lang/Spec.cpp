//===- lang/Spec.cpp - REI specifications ------------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Spec.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace paresy;

size_t Spec::maxExampleLength() const {
  size_t Max = 0;
  for (const std::string &W : Pos)
    Max = std::max(Max, W.size());
  for (const std::string &W : Neg)
    Max = std::max(Max, W.size());
  return Max;
}

bool Spec::validate(const Alphabet &Sigma, std::string *Error) const {
  auto Describe = [](const std::string &W) {
    return W.empty() ? std::string("<epsilon>") : W;
  };
  std::set<std::string> Seen;
  for (const std::string &W : Pos) {
    if (!Sigma.containsAll(W)) {
      if (Error)
        *Error = "positive example '" + Describe(W) +
                 "' uses characters outside the alphabet";
      return false;
    }
    if (!Seen.insert(W).second) {
      if (Error)
        *Error = "duplicate positive example '" + Describe(W) + "'";
      return false;
    }
  }
  std::set<std::string> SeenNeg;
  for (const std::string &W : Neg) {
    if (!Sigma.containsAll(W)) {
      if (Error)
        *Error = "negative example '" + Describe(W) +
                 "' uses characters outside the alphabet";
      return false;
    }
    if (Seen.count(W)) {
      if (Error)
        *Error = "example '" + Describe(W) +
                 "' is both positive and negative";
      return false;
    }
    if (!SeenNeg.insert(W).second) {
      if (Error)
        *Error = "duplicate negative example '" + Describe(W) + "'";
      return false;
    }
  }
  if (Error)
    Error->clear();
  return true;
}

std::string Spec::toText() const {
  std::string Out;
  for (const std::string &W : Pos) {
    Out += '+';
    Out += W;
    Out += '\n';
  }
  for (const std::string &W : Neg) {
    Out += '-';
    Out += W;
    Out += '\n';
  }
  return Out;
}

bool paresy::parseSpecText(std::string_view Text, Spec &Out,
                           std::string *Error) {
  Out.Pos.clear();
  Out.Neg.clear();
  size_t LineNo = 0;
  size_t Begin = 0;
  while (Begin <= Text.size()) {
    size_t End = Text.find('\n', Begin);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Begin, End - Begin);
    Begin = End + 1;
    ++LineNo;
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    if (Line.empty() || Line.front() == '#')
      continue;
    if (Line.front() == '+')
      Out.Pos.emplace_back(Line.substr(1));
    else if (Line.front() == '-')
      Out.Neg.emplace_back(Line.substr(1));
    else {
      if (Error)
        *Error = "line " + std::to_string(LineNo) +
                 ": expected '+', '-' or '#' prefix";
      return false;
    }
    if (End == Text.size())
      break;
  }
  if (Error)
    Error->clear();
  return true;
}

bool paresy::readSpecFile(const std::string &Path, Spec &Out,
                          std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Text;
  char Buf[4096];
  size_t Read;
  while ((Read = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Text.append(Buf, Read);
  std::fclose(File);
  return parseSpecText(Text, Out, Error);
}

bool paresy::inferAlphabet(const Spec &S, Alphabet &Out,
                           std::string *Error) {
  std::set<char> Chars;
  for (const std::string &W : S.Pos)
    Chars.insert(W.begin(), W.end());
  for (const std::string &W : S.Neg)
    Chars.insert(W.begin(), W.end());
  std::string Symbols(Chars.begin(), Chars.end());
  std::string Err;
  Out = Alphabet::create(Symbols, &Err);
  if (!Err.empty()) {
    if (Error)
      *Error = Err;
    return false;
  }
  if (Error)
    Error->clear();
  return true;
}
