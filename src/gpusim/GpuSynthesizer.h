//===- gpusim/GpuSynthesizer.h - Paresy as data-parallel kernels --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GPU implementation of the Paresy search (Sec. 3 "GPU language
/// cache implementation"), expressed as bulk-synchronous kernels over
/// the simulated device:
///
///   per cost level, in batches:
///     1. generate   - one task per candidate, CS into temporary
///                     storage (the paper's grey area (a));
///     2. uniqueness - concurrent WarpHashSet insert, min-id winners;
///     3. check      - winners tested against the spec, atomic-min on
///                     the first satisfier;
///     4. scan + compact - winners copied contiguously into the
///                     language cache (the paper's blue area (b)).
///
/// Functionally it returns exactly what core/Synthesizer returns (same
/// expression cost, same candidate counts - asserted by tests); its
/// *time* is the PerfModel's modelled device seconds, which is the
/// number Table 1's "GPU" column reproduces.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_GPUSIM_GPUSYNTHESIZER_H
#define PARESY_GPUSIM_GPUSYNTHESIZER_H

#include "core/Synthesizer.h"
#include "gpusim/PerfModel.h"

namespace paresy {
namespace gpusim {

/// Device-side knobs for one GPU-style run.
struct GpuOptions {
  /// The simulated device (timing model + memory size).
  DeviceSpec Spec;
  /// Host threads executing the kernels (0 = inline).
  unsigned HostWorkers = 0;
  /// Tasks per kernel batch (bounds temporary storage). The paper's
  /// implementation materialises a whole cost level in temporary
  /// device memory before compaction; a large batch keeps kernel
  /// launch overhead amortised the same way.
  size_t BatchTasks = 1 << 20;
};

/// A SynthResult plus the device-side accounting.
struct GpuSynthResult {
  SynthResult Result;
  /// Modelled device wall-clock (Table 1 "GPU Sec").
  double ModeledGpuSeconds = 0;
  /// Kernel launches issued.
  uint64_t KernelLaunches = 0;
  /// Total device work units (split-pair evaluations and friends).
  uint64_t DeviceOps = 0;
  /// Host seconds actually spent executing the simulation.
  double HostSeconds = 0;

  bool found() const { return Result.found(); }
};

/// Runs the GPU-style Paresy search on \p S over \p Sigma.
GpuSynthResult synthesizeGpu(const Spec &S, const Alphabet &Sigma,
                             const SynthOptions &Opts,
                             const GpuOptions &Gpu = GpuOptions());

} // namespace gpusim
} // namespace paresy

#endif // PARESY_GPUSIM_GPUSYNTHESIZER_H
