//===- gpusim/Scan.cpp - Parallel prefix sum for stream compaction ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Scan.h"

using namespace paresy;
using namespace paresy::gpusim;

uint64_t paresy::gpusim::exclusiveScan(Device &D, const uint32_t *In,
                                       uint64_t *Out, size_t N) {
  if (N == 0)
    return 0;
  constexpr size_t BlockSize = 4096;
  size_t NumBlocks = (N + BlockSize - 1) / BlockSize;
  std::vector<uint64_t> BlockSums(NumBlocks, 0);

  // Kernel 1: per-block reduction.
  D.launch("scan.block_sums", NumBlocks, [&](size_t Block) -> uint64_t {
    size_t Begin = Block * BlockSize;
    size_t End = std::min(Begin + BlockSize, N);
    uint64_t Sum = 0;
    for (size_t I = Begin; I != End; ++I)
      Sum += In[I];
    BlockSums[Block] = Sum;
    return End - Begin;
  });

  // Kernel 2: scan of the (small) block-sum array; a real
  // implementation runs this as a single block.
  D.launch("scan.block_offsets", 1, [&](size_t) -> uint64_t {
    uint64_t Running = 0;
    for (size_t Block = 0; Block != NumBlocks; ++Block) {
      uint64_t Sum = BlockSums[Block];
      BlockSums[Block] = Running;
      Running += Sum;
    }
    return NumBlocks;
  });

  // Kernel 3: per-block exclusive rescan with the block offset.
  D.launch("scan.rescan", NumBlocks, [&](size_t Block) -> uint64_t {
    size_t Begin = Block * BlockSize;
    size_t End = std::min(Begin + BlockSize, N);
    uint64_t Running = BlockSums[Block];
    for (size_t I = Begin; I != End; ++I) {
      uint64_t Value = In[I];
      Out[I] = Running;
      Running += Value;
    }
    return End - Begin;
  });

  size_t LastBlock = NumBlocks - 1;
  (void)LastBlock;
  uint64_t Total = Out[N - 1] + In[N - 1];
  return Total;
}
