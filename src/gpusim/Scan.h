//===- gpusim/Scan.h - Parallel prefix sum for stream compaction --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocked exclusive prefix sum over a device. Stream compaction -
/// copying only the uniqueness winners from temporary storage into the
/// language cache (the paper's figure "(a)/(b)") - needs each winner's
/// output offset; the scan computes them in parallel the way a CUDA
/// implementation would: per-block partial sums, a scan over block
/// sums, then a per-block rescan with offsets.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_GPUSIM_SCAN_H
#define PARESY_GPUSIM_SCAN_H

#include "gpusim/Device.h"

#include <cstdint>
#include <vector>

namespace paresy {
namespace gpusim {

/// Writes into \p Out the exclusive prefix sum of \p In (both of
/// length \p N) and returns the total sum. Runs as three launches on
/// \p D.
uint64_t exclusiveScan(Device &D, const uint32_t *In, uint64_t *Out,
                       size_t N);

} // namespace gpusim
} // namespace paresy

#endif // PARESY_GPUSIM_SCAN_H
