//===- gpusim/GpuSynthesizer.cpp - Paresy as data-parallel kernels ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The public GPU-style entry point. The kernel pipeline lives in the
/// shared engine (engine/BatchedBackend.cpp runs generate/uniqueness/
/// check/compact on the simulated device); this translation unit binds
/// the cost sweep to that backend and surfaces the device-side
/// accounting the paper's Table 1 reproduces.
///
//===----------------------------------------------------------------------===//

#include "gpusim/GpuSynthesizer.h"

#include "engine/GpuSimBackend.h"
#include "engine/SearchDriver.h"
#include "support/Timer.h"

using namespace paresy;
using namespace paresy::gpusim;

GpuSynthResult paresy::gpusim::synthesizeGpu(const Spec &S,
                                             const Alphabet &Sigma,
                                             const SynthOptions &Opts,
                                             const GpuOptions &Gpu) {
  WallTimer Clock;
  engine::GpuSimBackend Backend(Gpu);
  GpuSynthResult R;
  R.Result = engine::runSearch(S, Sigma, Opts, Backend);
  R.ModeledGpuSeconds = Backend.perf().modeledSeconds();
  R.KernelLaunches = Backend.perf().launchCount();
  R.DeviceOps = Backend.perf().totalOps();
  R.HostSeconds = Clock.seconds();
  return R;
}
