//===- gpusim/GpuSynthesizer.cpp - Paresy as data-parallel kernels ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gpusim/GpuSynthesizer.h"

#include "core/LanguageCache.h"
#include "gpusim/Device.h"
#include "gpusim/Scan.h"
#include "gpusim/WarpHashSet.h"
#include "lang/CharSeq.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "support/Bits.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

using namespace paresy;
using namespace paresy::gpusim;

namespace {

//===----------------------------------------------------------------------===//
// Device-side CS routines (the kernel bodies' inner loops). These are
// free functions over raw words so that every task can run them
// without shared mutable state; each returns its work-unit count.
//===----------------------------------------------------------------------===//

uint64_t kernelConcat(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                      const GuideTable &GT, size_t Words, size_t NumWords) {
  clearWords(Dst, Words);
  const uint32_t *Rows = GT.rowOffsets().data();
  const SplitPair *Pairs = GT.pairs().data();
  for (size_t W = 0; W != NumWords; ++W) {
    uint64_t Bit = 0;
    for (uint32_t P = Rows[W], E = Rows[W + 1]; P != E; ++P)
      Bit |= uint64_t(testBit(A, Pairs[P].Lhs) & testBit(B, Pairs[P].Rhs));
    if (Bit)
      setBit(Dst, W);
  }
  return GT.totalPairs() + Words;
}

uint64_t kernelStar(uint64_t *Dst, const uint64_t *A, const GuideTable &GT,
                    size_t Words, size_t NumWords, size_t EpsilonIdx) {
  // Fixpoint of S = 1 + S.A with task-local scratch.
  static thread_local std::vector<uint64_t> Current, Next;
  Current.assign(Words, 0);
  Next.assign(Words, 0);
  setBit(Current.data(), EpsilonIdx);
  uint64_t Ops = Words;
  for (;;) {
    Ops += kernelConcat(Next.data(), Current.data(), A, GT, Words, NumWords);
    orWords(Next.data(), Next.data(), Current.data(), Words);
    Ops += Words;
    if (equalWords(Next.data(), Current.data(), Words))
      break;
    copyWords(Current.data(), Next.data(), Words);
  }
  copyWords(Dst, Current.data(), Words);
  return Ops + Words;
}

//===----------------------------------------------------------------------===//
// GpuSearcher
//===----------------------------------------------------------------------===//

/// Mirrors core/Synthesizer's Searcher but processes each cost level
/// as batched kernels. Enumeration order of candidates is identical,
/// so candidate ids, uniqueness winners and the chosen solution match
/// the sequential implementation exactly.
class GpuSearcher {
public:
  GpuSearcher(const Spec &S, const Alphabet &Sigma,
              const SynthOptions &Opts, const GpuOptions &Gpu)
      : S(S), Sigma(Sigma), Opts(Opts), Gpu(Gpu),
        Dev(Gpu.Spec, Gpu.HostWorkers) {}

  GpuSynthResult run();

private:
  GpuSynthResult wrap(SynthResult Base) {
    GpuSynthResult R;
    R.Result = std::move(Base);
    R.ModeledGpuSeconds = Dev.perf().modeledSeconds();
    R.KernelLaunches = Dev.perf().launchCount();
    R.DeviceOps = Dev.perf().totalOps();
    R.HostSeconds = Clock.seconds();
    return R;
  }

  GpuSynthResult invalid(std::string Message) {
    SynthResult R;
    R.Status = SynthStatus::InvalidInput;
    R.Message = std::move(Message);
    return wrap(std::move(R));
  }

  GpuSynthResult trivial(const char *Regex, uint64_t Cost) {
    SynthResult R;
    R.Status = SynthStatus::Found;
    R.Regex = Regex;
    R.Cost = Cost;
    return wrap(std::move(R));
  }

  GpuSynthResult finish(SynthStatus Status);

  /// Enumerates the candidate tasks of cost level \p C in the same
  /// order as the sequential search (?, *, ., +).
  void enumerateLevel(uint64_t C, std::vector<Provenance> &Tasks) const;

  /// Runs one batch of tasks through the four kernels. Returns false
  /// when the run must stop (hash set full).
  bool processBatch(const std::vector<Provenance> &Tasks, size_t Begin,
                    size_t End);

  const Spec &S;
  const Alphabet &Sigma;
  const SynthOptions &Opts;
  const GpuOptions &Gpu;
  Device Dev;
  WallTimer Clock;

  std::unique_ptr<Universe> U;
  std::unique_ptr<GuideTable> GT;
  std::unique_ptr<CsAlgebra> Algebra; // For masks/satisfies only.
  std::unique_ptr<LanguageCache> Cache;
  std::unique_ptr<WarpHashSet> HashSet;

  // Device buffers reused across batches.
  std::vector<uint64_t> TempCs;       // BatchTasks x CsWords.
  std::vector<int64_t> TaskSlot;      // Hash slot per task.
  std::vector<uint32_t> WinnerFlag;   // 1 iff task is unique winner.
  std::vector<uint64_t> WinnerOffset; // Exclusive scan of WinnerFlag.

  SynthStats Stats;
  unsigned MistakeBudget = 0;
  uint64_t GlobalIdBase = 0; // Candidate id of batch task 0.

  std::atomic<uint64_t> FoundId{UINT64_MAX};
  bool HavePending = false;
  Provenance Pending;
  uint64_t PendingCost = 0;

  bool CacheFilled = false;
  uint64_t FilledCost = 0;
  bool HashFull = false;
  uint64_t CurrentCost = 0;
  std::vector<uint64_t> NonEmptyLevels;
};

GpuSynthResult GpuSearcher::run() {
  const CostFn &Cost = Opts.Cost;
  if (!Cost.isValid())
    return invalid("cost function constants must all be positive");
  if (!(Opts.AllowedError >= 0.0 && Opts.AllowedError < 1.0))
    return invalid("allowed error must lie in [0, 1)");
  std::string SpecError;
  if (!S.validate(Sigma, &SpecError))
    return invalid(SpecError);

  MistakeBudget =
      unsigned(std::floor(Opts.AllowedError * double(S.exampleCount())));
  if (S.Pos.empty())
    return trivial("@", Cost.Literal);
  if (S.Pos.size() == 1 && S.Pos.front().empty() && MistakeBudget == 0)
    return trivial("#", Cost.Literal);

  U = std::make_unique<Universe>(S, Opts.PadToPowerOfTwo);
  GT = std::make_unique<GuideTable>(*U);
  Algebra = std::make_unique<CsAlgebra>(*U, GT.get());
  Stats.UniverseSize = U->size();
  Stats.CsWords = U->csWords();
  Stats.GuidePairs = GT->totalPairs();
  Stats.PrecomputeSeconds = Clock.seconds();

  // Split the device memory budget: ~60% language cache rows, ~30%
  // hash set slots, the rest temporaries.
  uint64_t Budget =
      std::min<uint64_t>(Opts.MemoryLimitBytes, Gpu.Spec.MemoryBytes);
  size_t Words = U->csWords();
  uint64_t RowBytes = Words * sizeof(uint64_t) + sizeof(Provenance);
  uint64_t SlotBytes = Words * sizeof(uint64_t) + 12;
  uint64_t CacheCap =
      std::max<uint64_t>(16, Budget * 6 / 10 / RowBytes);
  CacheCap = std::min<uint64_t>(CacheCap, 0xfffffffeu);
  uint64_t HashCap = std::max<uint64_t>(32, Budget * 3 / 10 / SlotBytes);
  HashCap = std::min<uint64_t>(HashCap, 0x7fffffffu);
  Cache = std::make_unique<LanguageCache>(Words, size_t(CacheCap));
  HashSet = std::make_unique<WarpHashSet>(Words, size_t(HashCap));

  size_t Batch = std::max<size_t>(1, Gpu.BatchTasks);
  TempCs.assign(Batch * Words, 0);
  TaskSlot.assign(Batch, -1);
  WinnerFlag.assign(Batch, 0);
  WinnerOffset.assign(Batch, 0);

  uint64_t MaxCost =
      Opts.MaxCost ? Opts.MaxCost : overfitCostBound(S, Cost);
  // Mirror the CPU search: widen the automatic bound when the epsilon
  // literal is not seeded (see core/Synthesizer.cpp).
  if (!Opts.MaxCost && !Opts.SeedEpsilon)
    MaxCost += Cost.Question;
  uint64_t MinExtra = std::min<uint64_t>(
      std::min<uint64_t>(Cost.Question, Cost.Star),
      std::min<uint64_t>(uint64_t(Cost.Concat) + Cost.Literal,
                         uint64_t(Cost.Union) + Cost.Literal));

  // Seed level (alphabet literals, {epsilon}, and under an error
  // budget the empty language), processed through the same kernels.
  std::vector<Provenance> Tasks;
  for (size_t I = 0; I != Sigma.size(); ++I) {
    Provenance Prov;
    Prov.Kind = CsOp::Literal;
    Prov.Symbol = Sigma.symbol(I);
    Tasks.push_back(Prov);
  }
  if (Opts.SeedEpsilon)
    Tasks.push_back(Provenance{CsOp::Epsilon, 0, 0, 0});
  if (MistakeBudget > 0)
    Tasks.push_back(Provenance{CsOp::Empty, 0, 0, 0});

  CurrentCost = Cost.Literal;
  uint32_t LevelBegin = uint32_t(Cache->size());
  for (size_t Begin = 0; Begin < Tasks.size(); Begin += Batch)
    if (!processBatch(Tasks, Begin,
                      std::min(Tasks.size(), Begin + Batch)))
      return finish(HavePending ? SynthStatus::Found
                                : SynthStatus::OutOfMemory);
  GlobalIdBase += Tasks.size();
  Cache->setLevel(Cost.Literal, LevelBegin, uint32_t(Cache->size()));
  if (Cache->size() != LevelBegin)
    NonEmptyLevels.push_back(Cost.Literal);
  Stats.LastCompletedCost = Cost.Literal;
  if (HavePending)
    return finish(SynthStatus::Found);

  for (uint64_t C = uint64_t(Cost.Literal) + 1; C <= MaxCost; ++C) {
    if (CacheFilled) {
      uint64_t Horizon = Opts.EnableOnTheFly ? FilledCost + MinExtra - 1
                                             : FilledCost;
      if (C > Horizon)
        return finish(HavePending ? SynthStatus::Found
                                : SynthStatus::OutOfMemory);
      Stats.OnTheFly = Opts.EnableOnTheFly;
    }
    if (Opts.TimeoutSeconds > 0 && Clock.seconds() > Opts.TimeoutSeconds)
      return finish(SynthStatus::Timeout);

    CurrentCost = C;
    Tasks.clear();
    enumerateLevel(C, Tasks);
    LevelBegin = uint32_t(Cache->size());
    for (size_t Begin = 0; Begin < Tasks.size(); Begin += Batch)
      if (!processBatch(Tasks, Begin,
                        std::min(Tasks.size(), Begin + Batch)))
        return finish(HavePending ? SynthStatus::Found
                                : SynthStatus::OutOfMemory);
    GlobalIdBase += Tasks.size();
    Cache->setLevel(C, LevelBegin, uint32_t(Cache->size()));
    if (Cache->size() != LevelBegin)
      NonEmptyLevels.push_back(C);
    Stats.LastCompletedCost = C;
    if (HavePending)
      return finish(SynthStatus::Found);
  }
  return finish(SynthStatus::NotFound);
}

void GpuSearcher::enumerateLevel(uint64_t C,
                                 std::vector<Provenance> &Tasks) const {
  const CostFn &Cost = Opts.Cost;
  if (C > Cost.Question) {
    auto [Begin, End] = Cache->level(C - Cost.Question);
    for (uint32_t I = Begin; I != End; ++I)
      Tasks.push_back(Provenance{CsOp::Question, 0, I, 0});
  }
  if (C > Cost.Star) {
    auto [Begin, End] = Cache->level(C - Cost.Star);
    for (uint32_t I = Begin; I != End; ++I)
      Tasks.push_back(Provenance{CsOp::Star, 0, I, 0});
  }
  if (C > Cost.Concat) {
    uint64_t Budget = C - Cost.Concat;
    for (uint64_t LC : NonEmptyLevels) {
      if (LC + Cost.Literal > Budget)
        break;
      auto [LB, LE] = Cache->level(LC);
      auto [RB, RE] = Cache->level(Budget - LC);
      if (LB == LE || RB == RE)
        continue;
      for (uint32_t I = LB; I != LE; ++I)
        for (uint32_t J = RB; J != RE; ++J)
          Tasks.push_back(Provenance{CsOp::Concat, 0, I, J});
    }
  }
  if (C > Cost.Union) {
    uint64_t Budget = C - Cost.Union;
    for (uint64_t LC : NonEmptyLevels) {
      if (2 * LC > Budget)
        break;
      uint64_t RC = Budget - LC;
      auto [LB, LE] = Cache->level(LC);
      auto [RB, RE] = Cache->level(RC);
      if (LB == LE || RB == RE)
        continue;
      for (uint32_t I = LB; I != LE; ++I) {
        uint32_t JBegin = LC == RC ? I + 1 : RB;
        for (uint32_t J = JBegin; J < RE; ++J)
          Tasks.push_back(Provenance{CsOp::Union, 0, I, J});
      }
    }
  }
}

bool GpuSearcher::processBatch(const std::vector<Provenance> &Tasks,
                               size_t Begin, size_t End) {
  size_t Count = End - Begin;
  size_t Words = U->csWords();
  const GuideTable &Table = *GT;
  size_t NumWords = U->size();
  size_t EpsIdx = U->epsilonIndex();

  // Kernel 1: generate every candidate CS into temporary storage.
  uint64_t GenOps =
      Dev.launch("paresy.generate", Count, [&](size_t T) -> uint64_t {
        const Provenance &Prov = Tasks[Begin + T];
        uint64_t *Dst = TempCs.data() + T * Words;
        switch (Prov.Kind) {
        case CsOp::Literal: {
          clearWords(Dst, Words);
          char Symbol = Prov.Symbol;
          int64_t Idx = U->indexOf(std::string_view(&Symbol, 1));
          if (Idx >= 0)
            setBit(Dst, size_t(Idx));
          return Words;
        }
        case CsOp::Epsilon:
          clearWords(Dst, Words);
          setBit(Dst, EpsIdx);
          return Words;
        case CsOp::Empty:
          clearWords(Dst, Words);
          return Words;
        case CsOp::Question:
          copyWords(Dst, Cache->cs(Prov.Lhs), Words);
          setBit(Dst, EpsIdx);
          return Words;
        case CsOp::Star:
          return kernelStar(Dst, Cache->cs(Prov.Lhs), Table, Words,
                            NumWords, EpsIdx);
        case CsOp::Concat:
          return kernelConcat(Dst, Cache->cs(Prov.Lhs), Cache->cs(Prov.Rhs),
                              Table, Words, NumWords);
        case CsOp::Union:
          orWords(Dst, Cache->cs(Prov.Lhs), Cache->cs(Prov.Rhs), Words);
          return Words;
        }
        return 0;
      });
  Stats.PairsVisited += GenOps;
  Stats.CandidatesGenerated += Count;

  // Kernel 2: concurrent uniqueness insertion (min-id winners).
  std::atomic<bool> Full{false};
  Dev.launch("paresy.unique", Count, [&](size_t T) -> uint64_t {
    uint32_t Id = uint32_t(GlobalIdBase + Begin + T);
    int64_t Slot = HashSet->insert(TempCs.data() + T * Words, Id);
    TaskSlot[T] = Slot;
    if (Slot < 0)
      Full.store(true, std::memory_order_relaxed);
    return Words + 2;
  });
  if (Full.load()) {
    HashFull = true;
    return false;
  }

  // Kernel 3: winner flags and specification check; the first
  // satisfying winner (minimum candidate id) is recorded atomically.
  Dev.launch("paresy.check", Count, [&](size_t T) -> uint64_t {
    uint32_t Id = uint32_t(GlobalIdBase + Begin + T);
    bool Winner = HashSet->isWinner(size_t(TaskSlot[T]), Id);
    WinnerFlag[T] = Winner ? 1 : 0;
    if (Winner &&
        Algebra->satisfies(TempCs.data() + T * Words, MistakeBudget)) {
      uint64_t Candidate = GlobalIdBase + Begin + T;
      uint64_t Expected = FoundId.load(std::memory_order_relaxed);
      while (Candidate < Expected &&
             !FoundId.compare_exchange_weak(Expected, Candidate,
                                            std::memory_order_relaxed)) {
      }
    }
    return Words;
  });

  uint64_t FoundNow = FoundId.load(std::memory_order_relaxed);
  if (!HavePending && FoundNow != UINT64_MAX &&
      FoundNow >= GlobalIdBase + Begin && FoundNow < GlobalIdBase + End) {
    HavePending = true;
    Pending = Tasks[size_t(FoundNow - GlobalIdBase)];
    PendingCost = CurrentCost;
  }

  // Kernel 4+5: compact winners into the language cache (scan for
  // offsets, then a parallel copy). Winners beyond the remaining
  // capacity are checked but not cached: the OnTheFly regime.
  uint64_t Winners =
      exclusiveScan(Dev, WinnerFlag.data(), WinnerOffset.data(), Count);
  Stats.UniqueLanguages += Winners;
  uint64_t Space = Cache->capacity() - Cache->size();
  uint64_t ToCache = std::min<uint64_t>(Winners, Space);
  if (ToCache < Winners && !CacheFilled) {
    CacheFilled = true;
    FilledCost = CurrentCost;
    Stats.OnTheFly = Opts.EnableOnTheFly;
  }
  if (ToCache > 0) {
    uint32_t Base = Cache->reserveRows(size_t(ToCache));
    Dev.launch("paresy.compact", Count, [&](size_t T) -> uint64_t {
      if (!WinnerFlag[T] || WinnerOffset[T] >= ToCache)
        return 1;
      Cache->writeRow(Base + size_t(WinnerOffset[T]),
                      TempCs.data() + T * Words, Tasks[Begin + T]);
      return Words + 1;
    });
  }
  if (CacheFilled && !Opts.EnableOnTheFly)
    return false; // Paper behaviour: an immediate OOM error.

  return true;
}

GpuSynthResult GpuSearcher::finish(SynthStatus Status) {
  SynthResult R;
  R.Status = Status;
  if (Status == SynthStatus::Found) {
    RegexManager M;
    const Regex *Re = Cache->reconstructCandidate(Pending, M);
    R.Regex = toString(Re);
    R.Cost = PendingCost;
    assert(Opts.Cost.of(Re) == PendingCost &&
           "reconstructed expression must cost exactly its level");
  }
  if (Status == SynthStatus::OutOfMemory && HashFull)
    R.Message = "uniqueness hash set exhausted";
  Stats.CacheEntries = Cache ? Cache->size() : 0;
  Stats.MemoryBytes = (Cache ? Cache->bytesUsed() : 0) +
                      (HashSet ? HashSet->bytesUsed() : 0);
  Stats.SearchSeconds = Clock.seconds() - Stats.PrecomputeSeconds;
  R.Stats = Stats;
  return wrap(std::move(R));
}

} // namespace

GpuSynthResult paresy::gpusim::synthesizeGpu(const Spec &S,
                                             const Alphabet &Sigma,
                                             const SynthOptions &Opts,
                                             const GpuOptions &Gpu) {
  return GpuSearcher(S, Sigma, Opts, Gpu).run();
}
