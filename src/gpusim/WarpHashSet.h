//===- gpusim/WarpHashSet.h - Concurrent CS hash set ---------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniqueness checker of the GPU-style synthesizer: a lock-free,
/// fixed-capacity, open-addressing hash set over fixed-width bitvector
/// keys, standing in for the WarpCore HashSet the paper uses (see
/// DESIGN.md Sec. 1). Differences worth knowing:
///
///  * Keys are arbitrary multiples of 64 bits; WarpCore supported only
///    32/64-bit keys, which is why the paper's GPU rejects benchmarks
///    needing 128/256-bit CSs (Table 2, no6/no9). Ours runs them.
///  * Insertion is deterministic under any interleaving: every insert
///    of the same key lands in the same logical entry, and the entry's
///    winner is the *minimum* inserter id (an atomic min), so "is this
///    candidate the unique representative?" has one answer regardless
///    of scheduling - and it is the same answer the sequential CPU
///    search computes (first construction in enumeration order).
///
/// Protocol per slot: claim Owner via CAS, publish the tag byte and
/// the key words, set the Ready flag (release); readers spin on Ready
/// (acquire) before comparing keys, then fold their id into Winner
/// with an atomic min.
///
/// Each slot also carries an 8-bit tag (hashTagByte of the key hash,
/// zero while unpublished). Because a published tag is a pure function
/// of the owner's key, a probe whose own tag differs can move on
/// without waiting for Ready or touching the key words - the common
/// case for collision probes, and the analogue of the fingerprint
/// bytes the sequential CsHashSet keeps.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_GPUSIM_WARPHASHSET_H
#define PARESY_GPUSIM_WARPHASHSET_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace paresy {

class SnapshotReader;
class SnapshotWriter;

namespace gpusim {

/// Fixed-capacity concurrent hash set of multi-word keys.
class WarpHashSet {
public:
  /// \p KeyWords 64-bit words per key; \p Capacity slots (rounded up
  /// to a power of two). Inserts start failing once the table is
  /// ~90% full, signalling device-memory exhaustion.
  WarpHashSet(size_t KeyWords, size_t Capacity);

  WarpHashSet(const WarpHashSet &) = delete;
  WarpHashSet &operator=(const WarpHashSet &) = delete;

  /// Inserts \p Key on behalf of candidate \p Id (ids must be unique
  /// across all inserts; enumeration order ids give CPU-identical
  /// winners). Returns the slot index, or -1 when the table is full.
  /// Thread-safe; any number of concurrent inserts.
  int64_t insert(const uint64_t *Key, uint32_t Id);

  /// insert() with a caller-precomputed hash of \p Key (the sharded
  /// pipeline hashes once for routing and reuses it here).
  int64_t insert(const uint64_t *Key, uint32_t Id, uint64_t Hash);

  /// True iff \p Id won slot \p Slot (the minimum id ever inserted
  /// with that key). Call after all inserts of the batch completed.
  bool isWinner(size_t Slot, uint32_t Id) const {
    return Slots[Slot].Winner.load(std::memory_order_relaxed) == Id;
  }

  /// Winner id of slot \p Slot. Call after all inserts of the batch
  /// completed.
  uint32_t winnerAt(size_t Slot) const {
    return Slots[Slot].Winner.load(std::memory_order_relaxed);
  }

  /// Rewrites slot \p Slot's winner. The batched pipeline's dup-ledger
  /// pass replaces a committed winner's candidate id with its global
  /// row id; row ids are strictly below every future candidate id, so
  /// the rewritten value keeps winning the atomic-min insert race
  /// exactly as the original would have. Quiescent-state operation (no
  /// insert in flight).
  void setWinner(size_t Slot, uint32_t Id) {
    Slots[Slot].Winner.store(Id, std::memory_order_relaxed);
  }

  /// Looks up \p Key without inserting; returns the slot or -1.
  int64_t find(const uint64_t *Key) const;

  size_t capacity() const { return Mask + 1; }
  size_t keyWords() const { return KeyWords; }
  size_t size() const {
    return Count.load(std::memory_order_relaxed);
  }
  uint64_t bytesUsed() const;

  /// Metadata bytes per slot (the capacity planners derive per-slot
  /// cost from this instead of a hand-written constant).
  static constexpr size_t slotBytes() { return sizeof(Slot); }

  /// Serializes the occupied slots as one tagged section of
  /// core/Snapshot.h. A quiescent-state operation: no insert may be in
  /// flight (the engine only snapshots at level boundaries). Only
  /// published slots are written, so the stream is proportional to
  /// size(), not capacity().
  void save(SnapshotWriter &W) const;

  /// Restores a set serialized by save(); null on a malformed stream
  /// (\p R is then failed()).
  static std::unique_ptr<WarpHashSet> restore(SnapshotReader &R);

private:
  struct Slot {
    std::atomic<uint32_t> Owner{EmptyOwner};
    std::atomic<uint32_t> Winner{EmptyOwner};
    std::atomic<uint8_t> Ready{0};
    /// hashTagByte of the slot's key; 0 until the owner publishes it.
    std::atomic<uint8_t> Tag{0};
  };

  static constexpr uint32_t EmptyOwner = 0xffffffffu;

  const uint64_t *keyAt(size_t SlotIdx) const {
    return Keys.get() + SlotIdx * KeyWords;
  }
  uint64_t *keyAt(size_t SlotIdx) {
    return Keys.get() + SlotIdx * KeyWords;
  }

  size_t KeyWords;
  size_t Mask;
  std::unique_ptr<Slot[]> Slots;
  std::unique_ptr<uint64_t[]> Keys;
  std::atomic<size_t> Count{0};
  size_t FullThreshold;
};

} // namespace gpusim
} // namespace paresy

#endif // PARESY_GPUSIM_WARPHASHSET_H
