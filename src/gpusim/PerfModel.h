//===- gpusim/PerfModel.h - Analytical SIMT timing model ---------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The timing half of the GPU substitution (see DESIGN.md Sec. 1).
/// The paper measured wall-clock seconds on an Nvidia A100; this
/// environment has no GPU, so kernels run functionally on the host
/// while this model charges them the time a massively parallel device
/// would take:
///
///   seconds(launch) = LaunchLatency
///                   + ceil(tasks / ParallelLanes)
///                   * (avgOpsPerTask / LaneOpsPerSecond)
///
/// plus a one-off session overhead reproducing the ~0.2 s "measurement
/// threshold" the paper reports for Colab GPUs (Sec. 4.2). An "op" is
/// one unit of the work measure the kernels report - dominated by
/// guide-table split-pair evaluations - the same currency in which the
/// measured CPU implementation's throughput is expressed, which is
/// what makes the modelled speed-up shape meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_GPUSIM_PERFMODEL_H
#define PARESY_GPUSIM_PERFMODEL_H

#include <cstddef>
#include <cstdint>

namespace paresy {
namespace gpusim {

/// Calibration constants. Defaults approximate an A100-SXM4-40GB
/// running this workload: 108 SMs x 64 integer lanes at 1.41 GHz,
/// derated ~10x for memory traffic per split-pair op, giving roughly
/// 1e12 pair-ops/s aggregate - about three orders of magnitude above a
/// single Xeon core on the same inner loop, which is the regime the
/// paper measures.
struct DeviceSpec {
  const char *Name = "sim-A100-SXM4-40GB";
  /// Fixed cost of one kernel launch.
  double LaunchLatencySeconds = 5e-6;
  /// One-off device/session initialisation (the paper's measurement
  /// threshold on Colab).
  double SessionOverheadSeconds = 0.2;
  /// Tasks executing truly concurrently (physical lanes).
  uint64_t ParallelLanes = 108 * 64;
  /// Work units one lane retires per second.
  double LaneOpsPerSecond = 1.41e8;
  /// Device memory available to the language cache and hash set. The
  /// paper capped the A100 at the CPU's 25 GB for comparability.
  uint64_t MemoryBytes = uint64_t(25) << 30;
};

/// Accumulates modelled time over kernel launches.
class PerfModel {
public:
  explicit PerfModel(const DeviceSpec &Spec) : Spec(Spec) {}

  /// Charges one launch of \p Tasks tasks doing \p TotalOps work units
  /// in aggregate.
  void recordLaunch(size_t Tasks, uint64_t TotalOps) {
    ++Launches;
    Ops += TotalOps;
    if (Tasks == 0) {
      Modeled += Spec.LaunchLatencySeconds;
      return;
    }
    uint64_t Waves = (Tasks + Spec.ParallelLanes - 1) / Spec.ParallelLanes;
    double AvgOps = double(TotalOps) / double(Tasks);
    Modeled += Spec.LaunchLatencySeconds +
               double(Waves) * (AvgOps / Spec.LaneOpsPerSecond);
  }

  /// Modelled wall-clock seconds including session overhead.
  double modeledSeconds() const {
    return Spec.SessionOverheadSeconds + Modeled;
  }

  uint64_t launchCount() const { return Launches; }
  uint64_t totalOps() const { return Ops; }
  const DeviceSpec &spec() const { return Spec; }

private:
  DeviceSpec Spec;
  double Modeled = 0;
  uint64_t Launches = 0;
  uint64_t Ops = 0;
};

} // namespace gpusim
} // namespace paresy

#endif // PARESY_GPUSIM_PERFMODEL_H
