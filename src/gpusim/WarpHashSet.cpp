//===- gpusim/WarpHashSet.cpp - Concurrent CS hash set -------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gpusim/WarpHashSet.h"

#include "support/Bits.h"

#include <cassert>
#include <thread>

using namespace paresy;
using namespace paresy::gpusim;

WarpHashSet::WarpHashSet(size_t KeyWords, size_t Capacity)
    : KeyWords(KeyWords) {
  assert(KeyWords > 0 && "keys need at least one word");
  size_t Pow2 = size_t(nextPowerOfTwo(Capacity < 16 ? 16 : Capacity));
  Mask = Pow2 - 1;
  Slots = std::make_unique<Slot[]>(Pow2);
  Keys = std::make_unique<uint64_t[]>(Pow2 * KeyWords);
  FullThreshold = Pow2 - Pow2 / 10; // ~90% load.
}

uint64_t WarpHashSet::bytesUsed() const {
  return capacity() * (sizeof(Slot) + KeyWords * sizeof(uint64_t));
}

int64_t WarpHashSet::insert(const uint64_t *Key, uint32_t Id) {
  return insert(Key, Id, hashWords(Key, KeyWords));
}

int64_t WarpHashSet::insert(const uint64_t *Key, uint32_t Id,
                            uint64_t Hash) {
  assert(Id != EmptyOwner && "id collides with the empty marker");
  assert(Hash == hashWords(Key, KeyWords) && "precomputed hash mismatch");
  uint8_t Tag = hashTagByte(Hash);
  size_t SlotIdx = size_t(Hash) & Mask;
  for (size_t Probes = 0; Probes <= Mask; ++Probes) {
    Slot &S = Slots[SlotIdx];
    // Fast reject: a published tag that differs proves a different
    // key without touching the key words or waiting on Ready.
    uint8_t SlotTag = S.Tag.load(std::memory_order_relaxed);
    if (SlotTag != 0 && SlotTag != Tag) {
      SlotIdx = (SlotIdx + 1) & Mask;
      continue;
    }
    uint32_t Owner = S.Owner.load(std::memory_order_acquire);
    if (Owner == EmptyOwner) {
      if (Count.load(std::memory_order_relaxed) >= FullThreshold)
        return -1;
      uint32_t Expected = EmptyOwner;
      if (S.Owner.compare_exchange_strong(Expected, Id,
                                          std::memory_order_acq_rel)) {
        // We own the slot: publish the tag and the key, then open the
        // slot to readers. The tag store may land before the key words
        // are visible; that is safe because other probes still gate
        // key comparison on Ready.
        S.Tag.store(Tag, std::memory_order_relaxed);
        copyWords(keyAt(SlotIdx), Key, KeyWords);
        S.Winner.store(Id, std::memory_order_relaxed);
        S.Ready.store(1, std::memory_order_release);
        Count.fetch_add(1, std::memory_order_relaxed);
        return int64_t(SlotIdx);
      }
      // Lost the race; re-examine the same slot, now owned.
    }
    // Wait for the owner to finish publishing its key.
    while (!S.Ready.load(std::memory_order_acquire))
      std::this_thread::yield();
    if (equalWords(keyAt(SlotIdx), Key, KeyWords)) {
      // Same key: fold our id into the winner (atomic min).
      uint32_t Winner = S.Winner.load(std::memory_order_relaxed);
      while (Id < Winner &&
             !S.Winner.compare_exchange_weak(Winner, Id,
                                             std::memory_order_relaxed)) {
      }
      return int64_t(SlotIdx);
    }
    SlotIdx = (SlotIdx + 1) & Mask;
  }
  return -1;
}

int64_t WarpHashSet::find(const uint64_t *Key) const {
  uint64_t Hash = hashWords(Key, KeyWords);
  uint8_t Tag = hashTagByte(Hash);
  size_t SlotIdx = size_t(Hash) & Mask;
  for (size_t Probes = 0; Probes <= Mask; ++Probes) {
    const Slot &S = Slots[SlotIdx];
    if (S.Owner.load(std::memory_order_acquire) == EmptyOwner)
      return -1;
    uint8_t SlotTag = S.Tag.load(std::memory_order_relaxed);
    if (SlotTag != 0 && SlotTag != Tag) {
      SlotIdx = (SlotIdx + 1) & Mask;
      continue;
    }
    if (S.Ready.load(std::memory_order_acquire) &&
        equalWords(keyAt(SlotIdx), Key, KeyWords))
      return int64_t(SlotIdx);
    SlotIdx = (SlotIdx + 1) & Mask;
  }
  return -1;
}
