//===- gpusim/WarpHashSet.cpp - Concurrent CS hash set -------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gpusim/WarpHashSet.h"

#include "core/Snapshot.h"
#include "support/Bits.h"

#include <cassert>
#include <new>
#include <thread>

using namespace paresy;
using namespace paresy::gpusim;

WarpHashSet::WarpHashSet(size_t KeyWords, size_t Capacity)
    : KeyWords(KeyWords) {
  assert(KeyWords > 0 && "keys need at least one word");
  size_t Pow2 = size_t(nextPowerOfTwo(Capacity < 16 ? 16 : Capacity));
  Mask = Pow2 - 1;
  Slots = std::make_unique<Slot[]>(Pow2);
  Keys = std::make_unique<uint64_t[]>(Pow2 * KeyWords);
  FullThreshold = Pow2 - Pow2 / 10; // ~90% load.
}

uint64_t WarpHashSet::bytesUsed() const {
  return capacity() * (sizeof(Slot) + KeyWords * sizeof(uint64_t));
}

int64_t WarpHashSet::insert(const uint64_t *Key, uint32_t Id) {
  return insert(Key, Id, hashWords(Key, KeyWords));
}

int64_t WarpHashSet::insert(const uint64_t *Key, uint32_t Id,
                            uint64_t Hash) {
  assert(Id != EmptyOwner && "id collides with the empty marker");
  assert(Hash == hashWords(Key, KeyWords) && "precomputed hash mismatch");
  uint8_t Tag = hashTagByte(Hash);
  size_t SlotIdx = size_t(Hash) & Mask;
  for (size_t Probes = 0; Probes <= Mask; ++Probes) {
    Slot &S = Slots[SlotIdx];
    // Fast reject: a published tag that differs proves a different
    // key without touching the key words or waiting on Ready.
    uint8_t SlotTag = S.Tag.load(std::memory_order_relaxed);
    if (SlotTag != 0 && SlotTag != Tag) {
      SlotIdx = (SlotIdx + 1) & Mask;
      continue;
    }
    uint32_t Owner = S.Owner.load(std::memory_order_acquire);
    if (Owner == EmptyOwner) {
      if (Count.load(std::memory_order_relaxed) >= FullThreshold)
        return -1;
      uint32_t Expected = EmptyOwner;
      if (S.Owner.compare_exchange_strong(Expected, Id,
                                          std::memory_order_acq_rel)) {
        // We own the slot: publish the tag and the key, then open the
        // slot to readers. The tag store may land before the key words
        // are visible; that is safe because other probes still gate
        // key comparison on Ready.
        S.Tag.store(Tag, std::memory_order_relaxed);
        copyWords(keyAt(SlotIdx), Key, KeyWords);
        S.Winner.store(Id, std::memory_order_relaxed);
        S.Ready.store(1, std::memory_order_release);
        Count.fetch_add(1, std::memory_order_relaxed);
        return int64_t(SlotIdx);
      }
      // Lost the race; re-examine the same slot, now owned.
    }
    // Wait for the owner to finish publishing its key.
    while (!S.Ready.load(std::memory_order_acquire))
      std::this_thread::yield();
    if (equalWords(keyAt(SlotIdx), Key, KeyWords)) {
      // Same key: fold our id into the winner (atomic min).
      uint32_t Winner = S.Winner.load(std::memory_order_relaxed);
      while (Id < Winner &&
             !S.Winner.compare_exchange_weak(Winner, Id,
                                             std::memory_order_relaxed)) {
      }
      return int64_t(SlotIdx);
    }
    SlotIdx = (SlotIdx + 1) & Mask;
  }
  return -1;
}

void WarpHashSet::save(SnapshotWriter &W) const {
  size_t Section = W.beginSection("warpset");
  W.u64(KeyWords);
  W.u64(capacity());
  W.u64(size());
  for (size_t SlotIdx = 0; SlotIdx != capacity(); ++SlotIdx) {
    const Slot &S = Slots[SlotIdx];
    if (S.Owner.load(std::memory_order_acquire) == EmptyOwner)
      continue;
    assert(S.Ready.load(std::memory_order_acquire) &&
           "snapshotting a set with an unpublished slot");
    W.u64(SlotIdx);
    W.u32(S.Owner.load(std::memory_order_relaxed));
    W.u32(S.Winner.load(std::memory_order_relaxed));
    W.u8(S.Tag.load(std::memory_order_relaxed));
    for (size_t Word = 0; Word != KeyWords; ++Word)
      W.u64(keyAt(SlotIdx)[Word]);
  }
  W.endSection(Section);
}

std::unique_ptr<WarpHashSet> WarpHashSet::restore(SnapshotReader &R) {
  if (!R.enterSection("warpset"))
    return nullptr;
  uint64_t KeyWords = 0, Capacity = 0, Count = 0;
  if (!R.u64(KeyWords) || !R.u64(Capacity) || !R.u64(Count))
    return nullptr;
  // The construction path rounds capacity to a power of two >= 16; a
  // stream claiming anything else (or more entries than the stream can
  // hold - each record is 17 bytes of metadata plus the key words) is
  // corrupt. The absolute caps keep a corrupt header from triggering a
  // giant allocation.
  if (KeyWords == 0 || KeyWords > (uint64_t(1) << 20) ||
      Capacity < 16 || Capacity > (uint64_t(1) << 34) ||
      (Capacity & (Capacity - 1)) != 0 || Count > Capacity ||
      (Count > 0 && Count > R.remaining() / (17 + KeyWords * 8))) {
    R.markFailed();
    return nullptr;
  }
  // A crafted capacity claim must reject, not abort: the stream's
  // fingerprint trailer is a checksum, not a MAC (see Snapshot.cpp).
  std::unique_ptr<WarpHashSet> Set;
  try {
    Set = std::make_unique<WarpHashSet>(size_t(KeyWords),
                                        size_t(Capacity));
  } catch (const std::bad_alloc &) {
    R.markFailed();
    return nullptr;
  }
  for (uint64_t I = 0; I != Count; ++I) {
    uint64_t SlotIdx = 0;
    uint32_t Owner = 0, Winner = 0;
    uint8_t Tag = 0;
    if (!R.u64(SlotIdx) || !R.u32(Owner) || !R.u32(Winner) || !R.u8(Tag))
      return nullptr;
    if (SlotIdx >= Capacity || Owner == EmptyOwner ||
        Set->Slots[SlotIdx].Owner.load(std::memory_order_relaxed) !=
            EmptyOwner) {
      R.markFailed();
      return nullptr;
    }
    Slot &S = Set->Slots[SlotIdx];
    for (size_t Word = 0; Word != size_t(KeyWords); ++Word)
      if (!R.u64(Set->keyAt(size_t(SlotIdx))[Word]))
        return nullptr;
    S.Owner.store(Owner, std::memory_order_relaxed);
    S.Winner.store(Winner, std::memory_order_relaxed);
    S.Tag.store(Tag, std::memory_order_relaxed);
    S.Ready.store(1, std::memory_order_release);
  }
  Set->Count.store(size_t(Count), std::memory_order_relaxed);
  if (!R.leaveSection())
    return nullptr;
  return Set;
}

int64_t WarpHashSet::find(const uint64_t *Key) const {
  uint64_t Hash = hashWords(Key, KeyWords);
  uint8_t Tag = hashTagByte(Hash);
  size_t SlotIdx = size_t(Hash) & Mask;
  for (size_t Probes = 0; Probes <= Mask; ++Probes) {
    const Slot &S = Slots[SlotIdx];
    if (S.Owner.load(std::memory_order_acquire) == EmptyOwner)
      return -1;
    uint8_t SlotTag = S.Tag.load(std::memory_order_relaxed);
    if (SlotTag != 0 && SlotTag != Tag) {
      SlotIdx = (SlotIdx + 1) & Mask;
      continue;
    }
    if (S.Ready.load(std::memory_order_acquire) &&
        equalWords(keyAt(SlotIdx), Key, KeyWords))
      return int64_t(SlotIdx);
    SlotIdx = (SlotIdx + 1) & Mask;
  }
  return -1;
}
