//===- gpusim/Device.h - CUDA-style execution engine --------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The functional half of the GPU substitution: a device that executes
/// "kernels" - bulk-synchronous grids of independent tasks - on a host
/// thread pool, while the PerfModel charges each launch its modelled
/// device time. Kernels are written exactly as the CUDA kernels are
/// structured (one thread per candidate, no inter-task communication
/// except atomics, results into pre-allocated device buffers), so the
/// algorithmic content matches the paper's GPU implementation even
/// though execution is on the host.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_GPUSIM_DEVICE_H
#define PARESY_GPUSIM_DEVICE_H

#include "gpusim/PerfModel.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <functional>

namespace paresy {
namespace gpusim {

/// A simulated data-parallel device.
class Device {
public:
  /// \p Workers host threads execute the grids (0 = inline; the
  /// functional result is identical either way).
  explicit Device(const DeviceSpec &Spec,
                  unsigned Workers = ThreadPool::defaultWorkers())
      : Model(Spec), Pool(Workers) {}

  /// Launches a kernel of \p Tasks tasks. \p Body(TaskIdx) returns the
  /// number of work units the task performed; the launch blocks until
  /// every task finished and is charged to the model. Returns the
  /// aggregate work units.
  uint64_t launch(const char *Name, size_t Tasks,
                  const std::function<uint64_t(size_t)> &Body) {
    (void)Name;
    std::atomic<uint64_t> TotalOps{0};
    Pool.parallelFor(Tasks, [&](size_t TaskIdx) {
      TotalOps.fetch_add(Body(TaskIdx), std::memory_order_relaxed);
    });
    uint64_t Ops = TotalOps.load(std::memory_order_relaxed);
    Model.recordLaunch(Tasks, Ops);
    return Ops;
  }

  PerfModel &perf() { return Model; }
  const PerfModel &perf() const { return Model; }
  unsigned workerCount() const { return Pool.workerCount(); }

private:
  PerfModel Model;
  ThreadPool Pool;
};

} // namespace gpusim
} // namespace paresy

#endif // PARESY_GPUSIM_DEVICE_H
