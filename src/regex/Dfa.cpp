//===- regex/Dfa.cpp - Deterministic finite automata ----------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Dfa.h"

#include "regex/Matcher.h"
#include "support/Compiler.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

using namespace paresy;

Dfa Dfa::fromRegex(RegexManager &M, const Regex *Re,
                   const std::vector<char> &Sigma) {
  assert(Re && "null regex");
  DerivativeMatcher D(M);

  // Every distinct simplified derivative is one state; simplification
  // (ACI unions etc.) keeps the state space finite.
  std::unordered_map<const Regex *, uint32_t> StateOf;
  std::vector<const Regex *> States;
  std::deque<const Regex *> Worklist;
  auto Intern = [&](const Regex *Node) -> uint32_t {
    auto It = StateOf.find(Node);
    if (It != StateOf.end())
      return It->second;
    uint32_t Id = uint32_t(States.size());
    StateOf.emplace(Node, Id);
    States.push_back(Node);
    Worklist.push_back(Node);
    return Id;
  };
  Intern(Re);

  std::vector<uint32_t> Transitions;
  std::vector<uint8_t> Accepting;
  while (!Worklist.empty()) {
    const Regex *State = Worklist.front();
    Worklist.pop_front();
    // States are popped in creation order, so rows align with ids.
    for (char C : Sigma)
      Transitions.push_back(Intern(D.derive(State, C)));
    Accepting.push_back(State->nullable() ? 1 : 0);
  }
  assert(Transitions.size() == Accepting.size() * Sigma.size() &&
         "transition table shape mismatch");
  return Dfa(Sigma, std::move(Transitions), std::move(Accepting));
}

bool Dfa::accepts(std::string_view W) const {
  size_t State = 0;
  for (char C : W) {
    auto It = std::lower_bound(Sigma.begin(), Sigma.end(), C);
    if (It == Sigma.end() || *It != C)
      return false; // Outside the alphabet.
    State = next(State, size_t(It - Sigma.begin()));
  }
  return Accepting[State];
}

Dfa Dfa::minimize() const {
  size_t K = Sigma.size();

  // Prune unreachable states first (they distort refinement blocks).
  size_t N = stateCount();
  std::vector<int64_t> NewId(N, -1);
  std::vector<uint32_t> Reachable;
  Reachable.push_back(0);
  NewId[0] = 0;
  for (size_t I = 0; I != Reachable.size(); ++I)
    for (size_t C = 0; C != K; ++C) {
      uint32_t T = uint32_t(next(Reachable[I], C));
      if (NewId[T] < 0) {
        NewId[T] = int64_t(Reachable.size());
        Reachable.push_back(T);
      }
    }

  // Moore partition refinement. Each round re-blocks states by the
  // signature (own block, successor blocks); the block count never
  // decreases and is bounded by the state count, so iterate until it
  // stops growing.
  size_t R = Reachable.size();
  std::vector<uint32_t> Block(R);
  size_t BlockCount = 1;
  for (size_t I = 0; I != R; ++I) {
    Block[I] = Accepting[Reachable[I]] ? 1 : 0;
    if (Block[I] != Block[0])
      BlockCount = 2;
  }
  // Normalise initial ids to a dense range {0[,1]}.
  if (BlockCount == 1)
    for (uint32_t &B : Block)
      B = 0;

  for (;;) {
    std::map<std::vector<uint32_t>, uint32_t> BlockOf;
    std::vector<uint32_t> Next(R);
    for (size_t I = 0; I != R; ++I) {
      std::vector<uint32_t> Sig;
      Sig.reserve(K + 1);
      Sig.push_back(Block[I]);
      for (size_t C = 0; C != K; ++C)
        Sig.push_back(Block[size_t(NewId[next(Reachable[I], C)])]);
      auto It = BlockOf.emplace(std::move(Sig), uint32_t(BlockOf.size()));
      Next[I] = It.first->second;
    }
    size_t NextCount = BlockOf.size();
    Block = std::move(Next);
    if (NextCount == BlockCount)
      break;
    BlockCount = NextCount;
  }

  // Quotient automaton with a canonical BFS numbering from the start
  // block (so minimised automata of equal languages are identical).
  std::vector<uint32_t> BlockRep(BlockCount, UINT32_MAX);
  for (size_t I = 0; I != R; ++I)
    if (BlockRep[Block[I]] == UINT32_MAX)
      BlockRep[Block[I]] = uint32_t(I);

  std::vector<uint32_t> Remap(BlockCount, UINT32_MAX);
  uint32_t Fresh = 0;
  std::deque<uint32_t> Queue;
  auto Visit = [&](uint32_t B) {
    if (Remap[B] == UINT32_MAX) {
      Remap[B] = Fresh++;
      Queue.push_back(B);
    }
  };
  Visit(Block[0]);
  std::vector<uint32_t> QuotientTrans(BlockCount * K, 0);
  std::vector<uint8_t> QuotientAccept(BlockCount, 0);
  while (!Queue.empty()) {
    uint32_t B = Queue.front();
    Queue.pop_front();
    uint32_t Rep = BlockRep[B];
    QuotientAccept[Remap[B]] = Accepting[Reachable[Rep]];
    for (size_t C = 0; C != K; ++C) {
      uint32_t SuccBlock = Block[size_t(NewId[next(Reachable[Rep], C)])];
      Visit(SuccBlock);
      QuotientTrans[Remap[B] * K + C] = Remap[SuccBlock];
    }
  }
  QuotientTrans.resize(Fresh * K);
  QuotientAccept.resize(Fresh);
  return Dfa(Sigma, std::move(QuotientTrans), std::move(QuotientAccept));
}

Dfa Dfa::complement() const {
  std::vector<uint8_t> Flipped(Accepting.size());
  for (size_t I = 0; I != Accepting.size(); ++I)
    Flipped[I] = Accepting[I] ? 0 : 1;
  return Dfa(Sigma, Transitions, std::move(Flipped));
}

bool Dfa::equivalent(const Dfa &A, const Dfa &B) {
  assert(A.Sigma == B.Sigma && "alphabets must match");
  size_t K = A.Sigma.size();
  std::unordered_map<uint64_t, bool> Seen;
  std::deque<std::pair<uint32_t, uint32_t>> Worklist;
  auto Push = [&](uint32_t X, uint32_t Y) {
    uint64_t Key = (uint64_t(X) << 32) | Y;
    if (Seen.emplace(Key, true).second)
      Worklist.push_back({X, Y});
  };
  Push(0, 0);
  while (!Worklist.empty()) {
    auto [X, Y] = Worklist.front();
    Worklist.pop_front();
    if (A.Accepting[X] != B.Accepting[Y])
      return false;
    for (size_t C = 0; C != K; ++C)
      Push(uint32_t(A.next(X, C)), uint32_t(B.next(Y, C)));
  }
  return true;
}

std::vector<std::vector<uint64_t>> Dfa::countTable(unsigned Len) const {
  size_t N = stateCount();
  size_t K = Sigma.size();
  // Counts[L][S] = number of length-L strings accepted from S.
  std::vector<std::vector<uint64_t>> Counts(Len + 1,
                                            std::vector<uint64_t>(N, 0));
  for (size_t S = 0; S != N; ++S)
    Counts[0][S] = Accepting[S] ? 1 : 0;
  for (unsigned L = 1; L <= Len; ++L)
    for (size_t S = 0; S != N; ++S) {
      uint64_t Sum = 0;
      for (size_t C = 0; C != K; ++C) {
        uint64_t Add = Counts[L - 1][next(S, C)];
        Sum = (UINT64_MAX - Sum < Add) ? UINT64_MAX : Sum + Add;
      }
      Counts[L][S] = Sum;
    }
  return Counts;
}

uint64_t Dfa::countAccepted(unsigned Len) const {
  return countTable(Len)[Len][0];
}

bool Dfa::sampleAccepted(unsigned Len, Rng &R, std::string &Out) const {
  std::vector<std::vector<uint64_t>> Counts = countTable(Len);
  if (Counts[Len][0] == 0)
    return false;
  Out.clear();
  Out.reserve(Len);
  size_t State = 0;
  for (unsigned Step = 0; Step != Len; ++Step) {
    unsigned Remaining = Len - Step;
    // Choose the next symbol weighted by continuation counts.
    uint64_t Pick = R.below(Counts[Remaining][State]);
    bool Stepped = false;
    for (size_t C = 0; C != Sigma.size(); ++C) {
      uint64_t Here = Counts[Remaining - 1][next(State, C)];
      if (Pick < Here) {
        Out += Sigma[C];
        State = next(State, C);
        Stepped = true;
        break;
      }
      Pick -= Here;
    }
    assert(Stepped && "count table inconsistent");
    (void)Stepped;
  }
  assert(Accepting[State] && "sampling walked off the language");
  return true;
}
