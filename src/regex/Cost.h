//===- regex/Cost.h - Cost homomorphisms (Def. 3.2) ------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost homomorphisms over regular expressions: five strictly positive
/// integer constants (c1..c5) charged for, respectively, nullary
/// constructors (including every alphabet literal), '?', '*',
/// concatenation and union. Following the paper's 5-tuple convention,
/// (5, 2, 7, 2, 19) means the Kleene star costs 7. The twelve cost
/// functions of the evaluation (Fig. 1, Table 1) are provided by
/// paperCostFunctions().
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_REGEX_COST_H
#define PARESY_REGEX_COST_H

#include "regex/Regex.h"

#include <array>
#include <cstdint>
#include <string>

namespace paresy {

/// A cost homomorphism (Def. 3.2). All five constants must be > 0;
/// validate() checks this.
struct CostFn {
  /// c1: cost of the nullary constructors: @, #, and every literal.
  uint32_t Literal = 1;
  /// c2: cost added by '?'.
  uint32_t Question = 1;
  /// c3: cost added by '*'.
  uint32_t Star = 1;
  /// c4: cost added by concatenation.
  uint32_t Concat = 1;
  /// c5: cost added by union.
  uint32_t Union = 1;

  constexpr CostFn() = default;
  constexpr CostFn(uint32_t C1, uint32_t C2, uint32_t C3, uint32_t C4,
                   uint32_t C5)
      : Literal(C1), Question(C2), Star(C3), Concat(C4), Union(C5) {}

  /// True iff every constant is strictly positive (a requirement of
  /// Def. 3.2; Lemma 3.4 and the bottom-up sweep rely on it).
  constexpr bool isValid() const {
    return Literal > 0 && Question > 0 && Star > 0 && Concat > 0 &&
           Union > 0;
  }

  /// The smallest cost any constructor adds on top of its operands;
  /// bounds how far OnTheFly mode can run past a full cache.
  constexpr uint32_t minConstructorCost() const {
    uint32_t Min = Question;
    if (Star < Min)
      Min = Star;
    if (Concat < Min)
      Min = Concat;
    if (Union < Min)
      Min = Union;
    return Min;
  }

  /// cost(R) per Def. 3.2.
  uint64_t of(const Regex *R) const;

  /// Renders the paper's tuple notation, e.g. "(1, 1, 10, 1, 1)".
  std::string name() const;

  bool operator==(const CostFn &O) const = default;
};

/// The twelve cost functions benchmarked in Fig. 1 and Table 1, in the
/// paper's order: (1,1,1,1,1) first, (20,20,20,5,30) last.
const std::array<CostFn, 12> &paperCostFunctions();

} // namespace paresy

#endif // PARESY_REGEX_COST_H
