//===- regex/Regex.h - Regular expression AST ------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The regular expression syntax of Def. 2.7 in the paper, extended
/// with the question-mark constructor of Def. 2.8:
///
///   r ::= @ | # | a | r r | r + r | r* | r?
///
/// where '@' denotes the empty language and '#' the empty-string
/// language (ASCII stand-ins for the paper's emptyset and epsilon).
/// Nodes are immutable and hash-consed by a RegexManager, so structural
/// equality is pointer equality and sub-terms are shared. The search
/// itself never manipulates this syntax (it works on characteristic
/// sequences); the AST exists for inputs, reconstruction of results,
/// verification and the baselines.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_REGEX_REGEX_H
#define PARESY_REGEX_REGEX_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

namespace paresy {

/// Discriminator for the regular constructors (Def. 2.7).
enum class RegexKind : uint8_t {
  Empty,    ///< The empty language, printed '@'.
  Epsilon,  ///< The empty-string language, printed '#'.
  Literal,  ///< A single alphabet character.
  Question, ///< r? == # + r.
  Star,     ///< Kleene star r*.
  Concat,   ///< Concatenation r1 r2.
  Union     ///< Alternation r1 + r2.
};

/// Returns the arity of a regular constructor (0, 1 or 2).
constexpr unsigned regexArity(RegexKind Kind) {
  switch (Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Literal:
    return 0;
  case RegexKind::Question:
  case RegexKind::Star:
    return 1;
  case RegexKind::Concat:
  case RegexKind::Union:
    return 2;
  }
  return 0;
}

/// An immutable, hash-consed regular expression node. Create instances
/// only through a RegexManager; two structurally equal expressions
/// created by the same manager are the same pointer.
class Regex {
public:
  RegexKind kind() const { return Kind; }

  /// The character of a Literal node.
  char symbol() const {
    assert(Kind == RegexKind::Literal && "symbol() on non-literal");
    return Symbol;
  }

  /// The operand of a unary node, or the left operand of a binary one.
  const Regex *lhs() const {
    assert(regexArity(Kind) >= 1 && "lhs() on a nullary node");
    return Lhs;
  }

  /// The right operand of a binary node.
  const Regex *rhs() const {
    assert(regexArity(Kind) == 2 && "rhs() on a non-binary node");
    return Rhs;
  }

  /// Number of AST nodes in this expression (shared sub-terms counted
  /// once per occurrence).
  size_t nodeCount() const;

  /// True iff the empty string is in the language of this expression.
  /// (Brzozowski's nullability predicate; precomputed per node.)
  bool nullable() const { return Nullable; }

private:
  friend class RegexManager;
  Regex(RegexKind Kind, char Symbol, const Regex *Lhs, const Regex *Rhs,
        bool Nullable)
      : Kind(Kind), Symbol(Symbol), Nullable(Nullable), Lhs(Lhs), Rhs(Rhs) {}

  RegexKind Kind;
  char Symbol;
  bool Nullable;
  const Regex *Lhs;
  const Regex *Rhs;
};

/// Owns and uniques Regex nodes. All factory methods return the unique
/// node for the requested shape; no simplification is performed (the
/// cost homomorphism is defined over raw syntax, so `r + r` and `r`
/// must remain distinct expressions).
class RegexManager {
public:
  RegexManager();
  RegexManager(const RegexManager &) = delete;
  RegexManager &operator=(const RegexManager &) = delete;

  const Regex *empty() { return EmptyNode; }
  const Regex *epsilon() { return EpsilonNode; }
  const Regex *literal(char C);
  const Regex *question(const Regex *R);
  const Regex *star(const Regex *R);
  const Regex *concat(const Regex *L, const Regex *R);
  const Regex *alt(const Regex *L, const Regex *R);

  /// Number of distinct nodes created so far.
  size_t size() const { return Nodes.size(); }

private:
  struct NodeKey {
    RegexKind Kind;
    char Symbol;
    const Regex *Lhs;
    const Regex *Rhs;
    bool operator==(const NodeKey &O) const {
      return Kind == O.Kind && Symbol == O.Symbol && Lhs == O.Lhs &&
             Rhs == O.Rhs;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey &K) const;
  };

  const Regex *intern(RegexKind Kind, char Symbol, const Regex *Lhs,
                      const Regex *Rhs);

  std::deque<Regex> Nodes;
  std::unordered_map<NodeKey, const Regex *, NodeKeyHash> Unique;
  const Regex *EmptyNode;
  const Regex *EpsilonNode;
};

/// Renders \p R with minimal parentheses; round-trips through
/// parseRegex. '@' is the empty language, '#' is epsilon.
std::string toString(const Regex *R);

/// Result of parseRegex: on success Re is non-null; otherwise Error
/// describes the problem and ErrorPos is a byte offset into the input.
struct ParseResult {
  const Regex *Re = nullptr;
  std::string Error;
  size_t ErrorPos = 0;
  explicit operator bool() const { return Re != nullptr; }
};

/// Parses the syntax printed by toString:
///   union := concat ('+' concat)* ; concat := postfix+ ;
///   postfix := atom ('*'|'?')* ; atom := '('union')' | '@' | '#' | sym
/// where sym is any character other than the meta characters
/// "()+*?@#" and whitespace (which is skipped).
ParseResult parseRegex(RegexManager &M, std::string_view Text);

} // namespace paresy

#endif // PARESY_REGEX_REGEX_H
