//===- regex/Enumerator.h - Naive syntactic enumerator ----------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately naive REI engine: enumerate *syntax trees* bottom-up
/// by exact cost (every tree of cost c is produced at level c), check
/// each against the examples with the derivative matcher, return the
/// first hit. No characteristic sequences, no uniqueness filtering, no
/// sharing with the Paresy search path - which is the point: it is an
/// independent minimality/precision oracle for property tests, and the
/// "no observational equivalence" strawman the paper's Sec. 3 argues
/// against (its cost shows up in the ablation benches).
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_REGEX_ENUMERATOR_H
#define PARESY_REGEX_ENUMERATOR_H

#include "regex/Cost.h"
#include "regex/Regex.h"

#include <cstdint>
#include <string>
#include <vector>

namespace paresy {

/// Outcome of NaiveEnumerator::findMinimal.
struct EnumeratorResult {
  /// The minimal satisfying expression, or null if none was found.
  const Regex *Re = nullptr;
  /// cost(Re) when found.
  uint64_t Cost = 0;
  /// Number of expressions constructed and checked.
  uint64_t Checked = 0;
  /// True when the expression budget was exhausted before MaxCost, in
  /// which case "not found" is inconclusive.
  bool Aborted = false;

  bool found() const { return Re != nullptr; }
};

/// Exhaustive bottom-up enumeration of RE(Sigma) by cost level.
class NaiveEnumerator {
public:
  /// \p Sigma is the alphabet as a list of characters (order is the
  /// enumeration tie-break order, it does not affect minimality).
  NaiveEnumerator(RegexManager &M, std::vector<char> Sigma)
      : M(M), Sigma(std::move(Sigma)) {}

  /// Returns a satisfying expression of provably minimal cost (every
  /// expression of lower cost is enumerated and refuted first), or a
  /// not-found/aborted result. \p MaxExpressions bounds memory; an
  /// abort makes "not found" inconclusive but never fabricates a hit.
  EnumeratorResult findMinimal(const std::vector<std::string> &Pos,
                               const std::vector<std::string> &Neg,
                               const CostFn &Cost, uint64_t MaxCost,
                               uint64_t MaxExpressions = 2000000);

private:
  RegexManager &M;
  std::vector<char> Sigma;
};

} // namespace paresy

#endif // PARESY_REGEX_ENUMERATOR_H
