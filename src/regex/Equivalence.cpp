//===- regex/Equivalence.cpp - Deciding language equality ----------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Equivalence.h"

#include "regex/Matcher.h"
#include "support/Bits.h"

#include <deque>
#include <unordered_set>

using namespace paresy;

namespace {

struct PairKey {
  const Regex *A;
  const Regex *B;
  bool operator==(const PairKey &O) const { return A == O.A && B == O.B; }
};

struct PairKeyHash {
  size_t operator()(const PairKey &K) const {
    return size_t(hashMix64(reinterpret_cast<uintptr_t>(K.A) * 31 ^
                            reinterpret_cast<uintptr_t>(K.B)));
  }
};

} // namespace

EquivalenceResult paresy::checkEquivalent(RegexManager &M, const Regex *A,
                                          const Regex *B,
                                          const std::vector<char> &Sigma) {
  EquivalenceResult Result;
  DerivativeMatcher D(M);

  // Breadth-first bisimulation: visiting pairs in BFS order makes the
  // first disagreement a shortest witness.
  struct Item {
    const Regex *A;
    const Regex *B;
    std::string Path;
  };
  std::deque<Item> Worklist;
  std::unordered_set<PairKey, PairKeyHash> Seen;
  Worklist.push_back(Item{A, B, ""});
  Seen.insert(PairKey{A, B});

  while (!Worklist.empty()) {
    Item Current = std::move(Worklist.front());
    Worklist.pop_front();
    ++Result.PairsExplored;

    if (Current.A->nullable() != Current.B->nullable()) {
      Result.Equivalent = false;
      Result.Witness = std::move(Current.Path);
      return Result;
    }
    for (char C : Sigma) {
      const Regex *Da = D.derive(Current.A, C);
      const Regex *Db = D.derive(Current.B, C);
      // Both dead: every continuation agrees.
      if (Da->kind() == RegexKind::Empty &&
          Db->kind() == RegexKind::Empty)
        continue;
      if (Seen.insert(PairKey{Da, Db}).second)
        Worklist.push_back(Item{Da, Db, Current.Path + C});
    }
  }
  Result.Equivalent = true;
  return Result;
}
