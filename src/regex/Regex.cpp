//===- regex/Regex.cpp - Regular expression AST ----------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Regex.h"

#include "support/Bits.h"
#include "support/Compiler.h"

#include <vector>

using namespace paresy;

size_t Regex::nodeCount() const {
  switch (Kind) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Literal:
    return 1;
  case RegexKind::Question:
  case RegexKind::Star:
    return 1 + Lhs->nodeCount();
  case RegexKind::Concat:
  case RegexKind::Union:
    return 1 + Lhs->nodeCount() + Rhs->nodeCount();
  }
  PARESY_UNREACHABLE("invalid regex kind");
}

size_t RegexManager::NodeKeyHash::operator()(const NodeKey &K) const {
  uint64_t H = hashMix64(uint64_t(K.Kind) * 131 + uint64_t(uint8_t(K.Symbol)));
  H = hashMix64(H ^ reinterpret_cast<uintptr_t>(K.Lhs));
  H = hashMix64(H ^ reinterpret_cast<uintptr_t>(K.Rhs));
  return size_t(H);
}

RegexManager::RegexManager() {
  EmptyNode = intern(RegexKind::Empty, 0, nullptr, nullptr);
  EpsilonNode = intern(RegexKind::Epsilon, 0, nullptr, nullptr);
}

const Regex *RegexManager::intern(RegexKind Kind, char Symbol,
                                  const Regex *Lhs, const Regex *Rhs) {
  NodeKey Key{Kind, Symbol, Lhs, Rhs};
  auto It = Unique.find(Key);
  if (It != Unique.end())
    return It->second;

  bool Nullable = false;
  switch (Kind) {
  case RegexKind::Empty:
  case RegexKind::Literal:
    Nullable = false;
    break;
  case RegexKind::Epsilon:
  case RegexKind::Question:
  case RegexKind::Star:
    Nullable = true;
    break;
  case RegexKind::Concat:
    Nullable = Lhs->nullable() && Rhs->nullable();
    break;
  case RegexKind::Union:
    Nullable = Lhs->nullable() || Rhs->nullable();
    break;
  }

  Nodes.push_back(Regex(Kind, Symbol, Lhs, Rhs, Nullable));
  const Regex *Node = &Nodes.back();
  Unique.emplace(Key, Node);
  return Node;
}

const Regex *RegexManager::literal(char C) {
  return intern(RegexKind::Literal, C, nullptr, nullptr);
}

const Regex *RegexManager::question(const Regex *R) {
  assert(R && "null operand");
  return intern(RegexKind::Question, 0, R, nullptr);
}

const Regex *RegexManager::star(const Regex *R) {
  assert(R && "null operand");
  return intern(RegexKind::Star, 0, R, nullptr);
}

const Regex *RegexManager::concat(const Regex *L, const Regex *R) {
  assert(L && R && "null operand");
  return intern(RegexKind::Concat, 0, L, R);
}

const Regex *RegexManager::alt(const Regex *L, const Regex *R) {
  assert(L && R && "null operand");
  return intern(RegexKind::Union, 0, L, R);
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

/// Binding strength: Union < Concat < postfix unary < atom.
enum Precedence { PrecUnion = 0, PrecConcat = 1, PrecUnary = 2, PrecAtom = 3 };

Precedence precedenceOf(const Regex *R) {
  switch (R->kind()) {
  case RegexKind::Union:
    return PrecUnion;
  case RegexKind::Concat:
    return PrecConcat;
  case RegexKind::Question:
  case RegexKind::Star:
    return PrecUnary;
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Literal:
    return PrecAtom;
  }
  PARESY_UNREACHABLE("invalid regex kind");
}

void printInto(const Regex *R, Precedence Context, std::string &Out) {
  bool NeedParens = precedenceOf(R) < Context;
  if (NeedParens)
    Out += '(';
  switch (R->kind()) {
  case RegexKind::Empty:
    Out += '@';
    break;
  case RegexKind::Epsilon:
    Out += '#';
    break;
  case RegexKind::Literal:
    Out += R->symbol();
    break;
  case RegexKind::Question:
    printInto(R->lhs(), PrecUnary, Out);
    Out += '?';
    break;
  case RegexKind::Star:
    printInto(R->lhs(), PrecUnary, Out);
    Out += '*';
    break;
  case RegexKind::Concat:
    // Right operands print one level tighter so that right-nested
    // trees keep their parentheses and parsing (left-associative)
    // round-trips the exact tree.
    printInto(R->lhs(), PrecConcat, Out);
    printInto(R->rhs(), PrecUnary, Out);
    break;
  case RegexKind::Union:
    printInto(R->lhs(), PrecUnion, Out);
    Out += '+';
    printInto(R->rhs(), PrecConcat, Out);
    break;
  }
  if (NeedParens)
    Out += ')';
}

} // namespace

std::string paresy::toString(const Regex *R) {
  assert(R && "printing a null regex");
  std::string Out;
  printInto(R, PrecUnion, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over the printer's grammar.
class Parser {
public:
  Parser(RegexManager &M, std::string_view Text) : M(M), Text(Text) {}

  ParseResult run() {
    const Regex *Re = parseUnion();
    if (!Re)
      return fail();
    skipSpace();
    if (Pos != Text.size()) {
      Error = "unexpected trailing input";
      return fail();
    }
    ParseResult Result;
    Result.Re = Re;
    return Result;
  }

private:
  static bool isMeta(char C) {
    return C == '(' || C == ')' || C == '+' || C == '*' || C == '?' ||
           C == '@' || C == '#';
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool atAtomStart() {
    skipSpace();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    return C == '(' || C == '@' || C == '#' || !isMeta(C);
  }

  const Regex *parseUnion() {
    const Regex *Lhs = parseConcat();
    if (!Lhs)
      return nullptr;
    skipSpace();
    while (Pos < Text.size() && Text[Pos] == '+') {
      ++Pos;
      const Regex *Rhs = parseConcat();
      if (!Rhs)
        return nullptr;
      Lhs = M.alt(Lhs, Rhs);
      skipSpace();
    }
    return Lhs;
  }

  const Regex *parseConcat() {
    const Regex *Lhs = parsePostfix();
    if (!Lhs)
      return nullptr;
    while (atAtomStart()) {
      const Regex *Rhs = parsePostfix();
      if (!Rhs)
        return nullptr;
      Lhs = M.concat(Lhs, Rhs);
    }
    return Lhs;
  }

  const Regex *parsePostfix() {
    const Regex *Re = parseAtom();
    if (!Re)
      return nullptr;
    skipSpace();
    while (Pos < Text.size() && (Text[Pos] == '*' || Text[Pos] == '?')) {
      Re = Text[Pos] == '*' ? M.star(Re) : M.question(Re);
      ++Pos;
      skipSpace();
    }
    return Re;
  }

  const Regex *parseAtom() {
    skipSpace();
    if (Pos >= Text.size()) {
      Error = "expected an atom, found end of input";
      return nullptr;
    }
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      const Regex *Inner = parseUnion();
      if (!Inner)
        return nullptr;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ')') {
        Error = "expected ')'";
        return nullptr;
      }
      ++Pos;
      return Inner;
    }
    if (C == '@') {
      ++Pos;
      return M.empty();
    }
    if (C == '#') {
      ++Pos;
      return M.epsilon();
    }
    if (isMeta(C)) {
      Error = std::string("unexpected '") + C + "'";
      return nullptr;
    }
    ++Pos;
    return M.literal(C);
  }

  ParseResult fail() {
    ParseResult Result;
    Result.Error = Error.empty() ? "parse error" : Error;
    Result.ErrorPos = Pos;
    return Result;
  }

  RegexManager &M;
  std::string_view Text;
  size_t Pos = 0;
  std::string Error;
};

} // namespace

ParseResult paresy::parseRegex(RegexManager &M, std::string_view Text) {
  return Parser(M, Text).run();
}
