//===- regex/Dfa.h - Deterministic finite automata ------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DFA substrate for the regex library: construction from a regular
/// expression (Brzozowski derivatives - each distinct simplified
/// derivative is a state), Moore minimisation, product-construction
/// equivalence, membership, and language counting/sampling per length.
///
/// The search itself never touches automata (that is the paper's
/// point: characteristic sequences replace them); the DFA layer exists
/// for the verification side of the repository - a third independent
/// contains-check engine, exact language statistics for tests and the
/// stress harness, and the classic representation the paper's related
/// work (INFAnt etc.) accelerates.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_REGEX_DFA_H
#define PARESY_REGEX_DFA_H

#include "regex/Regex.h"
#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paresy {

/// An immutable, complete DFA over an explicit alphabet. States are
/// dense 0-based indices; state 0 is the start state; every state has
/// a transition for every alphabet symbol (a sink rejecting state is
/// materialised if needed).
class Dfa {
public:
  /// Builds the derivative automaton of \p Re over \p Sigma. The
  /// result is deterministic and complete but not necessarily minimal.
  static Dfa fromRegex(RegexManager &M, const Regex *Re,
                       const std::vector<char> &Sigma);

  size_t stateCount() const { return Accepting.size(); }
  size_t alphabetSize() const { return Sigma.size(); }
  const std::vector<char> &alphabet() const { return Sigma; }

  /// True iff \p W (over the alphabet) is accepted. Characters
  /// outside the alphabet reject.
  bool accepts(std::string_view W) const;

  bool isAccepting(size_t State) const { return Accepting[State]; }

  /// The successor of \p State on \p Symbol (by alphabet index).
  size_t next(size_t State, size_t SymbolIdx) const {
    return Transitions[State * Sigma.size() + SymbolIdx];
  }

  /// Language-preserving state minimisation (Moore partition
  /// refinement). The result also has unreachable states pruned.
  Dfa minimize() const;

  /// The complement automaton (same states, flipped acceptance;
  /// sound because automata here are complete).
  Dfa complement() const;

  /// True iff the two automata (over identical alphabets) accept the
  /// same language; decided by BFS over the product automaton.
  static bool equivalent(const Dfa &A, const Dfa &B);

  /// Number of accepted strings of exactly length \p Len (saturating
  /// at UINT64_MAX). Dynamic programming over states.
  uint64_t countAccepted(unsigned Len) const;

  /// Samples a uniformly random accepted string of exactly length
  /// \p Len; returns false if none exists.
  bool sampleAccepted(unsigned Len, Rng &R, std::string &Out) const;

private:
  Dfa(std::vector<char> Sigma, std::vector<uint32_t> Transitions,
      std::vector<uint8_t> Accepting)
      : Sigma(std::move(Sigma)), Transitions(std::move(Transitions)),
        Accepting(std::move(Accepting)) {}

  /// Count of accepted continuations of each length from each state:
  /// Counts[L][S] = #{w in Sigma^L : delta*(S, w) accepting}.
  std::vector<std::vector<uint64_t>> countTable(unsigned Len) const;

  std::vector<char> Sigma;
  std::vector<uint32_t> Transitions; // stateCount x |Sigma|.
  std::vector<uint8_t> Accepting;
};

} // namespace paresy

#endif // PARESY_REGEX_DFA_H
