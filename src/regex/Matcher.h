//===- regex/Matcher.h - Regex contains-checking ----------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two independent contains-check engines (Sec. 5.1 distinguishes REI
/// from the contains-check; Paresy still needs the latter to *verify*
/// inferred expressions, and the baselines use it heavily):
///
///  * DerivativeMatcher - Brzozowski derivatives with simplifying smart
///    constructors and memoisation; shares a RegexManager.
///  * NfaMatcher        - Thompson construction + subset simulation.
///
/// The engines are written independently on purpose and cross-checked
/// in the test suite, so a bug in one cannot silently validate the
/// synthesizer.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_REGEX_MATCHER_H
#define PARESY_REGEX_MATCHER_H

#include "regex/Regex.h"

#include <string_view>
#include <unordered_map>
#include <vector>

namespace paresy {

/// Brzozowski-derivative matcher. Derivatives are built with
/// simplifying constructors (associativity/commutativity/idempotence
/// of '+', unit/zero laws of '.', star collapsing) to keep the term
/// universe finite in practice, and memoised per (node, character).
class DerivativeMatcher {
public:
  /// \p M must outlive the matcher; derivative terms are interned
  /// into it.
  explicit DerivativeMatcher(RegexManager &M) : M(M) {}

  /// True iff \p W is in Lang(\p R).
  bool matches(const Regex *R, std::string_view W);

  /// The derivative of \p R with respect to character \p C, simplified.
  const Regex *derive(const Regex *R, char C);

private:
  const Regex *mkUnion(const Regex *L, const Regex *R);
  const Regex *mkConcat(const Regex *L, const Regex *R);
  const Regex *mkStar(const Regex *R);

  struct DeriveKey {
    const Regex *Re;
    char Ch;
    bool operator==(const DeriveKey &O) const {
      return Re == O.Re && Ch == O.Ch;
    }
  };
  struct DeriveKeyHash {
    size_t operator()(const DeriveKey &K) const;
  };

  RegexManager &M;
  std::unordered_map<DeriveKey, const Regex *, DeriveKeyHash> Cache;
};

/// Thompson-NFA matcher: compiles once, then answers membership via
/// subset simulation in O(|W| * states).
class NfaMatcher {
public:
  explicit NfaMatcher(const Regex *R);

  /// True iff \p W is in the language of the compiled expression.
  bool matches(std::string_view W);

  /// Number of NFA states (useful for tests and diagnostics).
  size_t stateCount() const { return States.size(); }

private:
  enum class StateKind : uint8_t { Char, Split, Accept, Dead };
  struct State {
    StateKind Kind;
    char Ch = 0;
    int Out0 = -1;
    int Out1 = -1;
  };

  /// A partially built automaton piece: entry state plus the dangling
  /// out-edges ((state, slot) pairs) still to be patched.
  struct Fragment {
    int Start;
    std::vector<std::pair<int, int>> Dangling;
  };

  Fragment compile(const Regex *R);
  int addState(StateKind Kind, char Ch = 0);
  void patch(const std::vector<std::pair<int, int>> &Dangling, int Target);
  void addClosure(int StateIdx, std::vector<int> &Set, uint32_t Mark);

  std::vector<State> States;
  int StartState = -1;
  std::vector<uint32_t> Marks;
  uint32_t Generation = 0;
};

/// True iff \p R accepts every string in \p Pos and rejects every
/// string in \p Neg, checked with the derivative engine.
bool satisfiesExamples(RegexManager &M, const Regex *R,
                       const std::vector<std::string> &Pos,
                       const std::vector<std::string> &Neg);

} // namespace paresy

#endif // PARESY_REGEX_MATCHER_H
