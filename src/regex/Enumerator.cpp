//===- regex/Enumerator.cpp - Naive syntactic enumerator --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Enumerator.h"

#include "regex/Matcher.h"

using namespace paresy;

EnumeratorResult
NaiveEnumerator::findMinimal(const std::vector<std::string> &Pos,
                             const std::vector<std::string> &Neg,
                             const CostFn &Cost, uint64_t MaxCost,
                             uint64_t MaxExpressions) {
  EnumeratorResult Result;
  if (!Cost.isValid())
    return Result;

  DerivativeMatcher Matcher(M);
  auto Satisfies = [&](const Regex *Re) {
    for (const std::string &W : Pos)
      if (!Matcher.matches(Re, W))
        return false;
    for (const std::string &W : Neg)
      if (Matcher.matches(Re, W))
        return false;
    return true;
  };

  // Levels[C] holds every syntax tree of cost exactly C. Distinct
  // constructions always yield distinct trees, so no deduplication is
  // needed (and none is wanted: we are counting raw syntax).
  std::vector<std::vector<const Regex *>> Levels(size_t(MaxCost) + 1);
  uint64_t Total = 0;

  auto Emit = [&](uint64_t C, const Regex *Re) -> const Regex * {
    ++Result.Checked;
    if (Satisfies(Re))
      return Re;
    Levels[size_t(C)].push_back(Re);
    ++Total;
    return nullptr;
  };

  // Level c1: the nullary constructors.
  if (Cost.Literal <= MaxCost) {
    uint64_t C1 = Cost.Literal;
    if (const Regex *Hit = Emit(C1, M.empty()))
      return {Hit, C1, Result.Checked, false};
    if (const Regex *Hit = Emit(C1, M.epsilon()))
      return {Hit, C1, Result.Checked, false};
    for (char Ch : Sigma)
      if (const Regex *Hit = Emit(C1, M.literal(Ch)))
        return {Hit, C1, Result.Checked, false};
  }

  for (uint64_t C = Cost.Literal + 1; C <= MaxCost; ++C) {
    if (Total > MaxExpressions) {
      Result.Aborted = true;
      return Result;
    }
    // Question marks, then stars, then concatenations, then unions -
    // the same in-level order as the Paresy sweep (Alg. 1 line 12).
    if (C > Cost.Question)
      for (const Regex *Operand : Levels[size_t(C - Cost.Question)])
        if (const Regex *Hit = Emit(C, M.question(Operand)))
          return {Hit, C, Result.Checked, false};
    if (C > Cost.Star)
      for (const Regex *Operand : Levels[size_t(C - Cost.Star)])
        if (const Regex *Hit = Emit(C, M.star(Operand)))
          return {Hit, C, Result.Checked, false};
    for (unsigned Binary = 0; Binary != 2; ++Binary) {
      uint64_t OpCost = Binary == 0 ? Cost.Concat : Cost.Union;
      if (C <= OpCost)
        continue;
      uint64_t Budget = C - OpCost;
      for (uint64_t Lhs = 1; Lhs < Budget; ++Lhs) {
        uint64_t Rhs = Budget - Lhs;
        for (const Regex *L : Levels[size_t(Lhs)]) {
          for (const Regex *R : Levels[size_t(Rhs)]) {
            const Regex *Re =
                Binary == 0 ? M.concat(L, R) : M.alt(L, R);
            if (const Regex *Hit = Emit(C, Re))
              return {Hit, C, Result.Checked, false};
          }
          if (Total > MaxExpressions) {
            Result.Aborted = true;
            return Result;
          }
        }
      }
    }
  }
  return Result;
}
