//===- regex/Equivalence.h - Deciding language equality ------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decision procedure for Lang(A) == Lang(B) over a given alphabet,
/// by bisimulation over Brzozowski derivatives: two expressions are
/// equivalent iff no reachable derivative pair disagrees on
/// nullability. The simplifying constructors of DerivativeMatcher
/// (ACI-normalised unions, unit/zero laws) keep the derivative space
/// finite, so the procedure terminates.
///
/// Used by the test suite to check results *semantically* - e.g. that
/// the synthesized minimal expression denotes exactly the intended
/// target language, not merely one agreeing on the examples - and by
/// downstream users who want to compare inferred expressions across
/// runs or engines.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_REGEX_EQUIVALENCE_H
#define PARESY_REGEX_EQUIVALENCE_H

#include "regex/Regex.h"

#include <string>
#include <vector>

namespace paresy {

/// Outcome of an equivalence check.
struct EquivalenceResult {
  /// True iff the two expressions denote the same language over the
  /// alphabet.
  bool Equivalent = false;
  /// When not equivalent: a shortest-found witness string in exactly
  /// one of the two languages.
  std::string Witness;
  /// Derivative pairs explored (diagnostics).
  size_t PairsExplored = 0;
};

/// Decides Lang(A) == Lang(B) with both languages over the symbols in
/// \p Sigma. Strings over characters outside Sigma are ignored (no
/// expression built from Sigma literals can accept them anyway).
EquivalenceResult checkEquivalent(RegexManager &M, const Regex *A,
                                  const Regex *B,
                                  const std::vector<char> &Sigma);

/// Convenience: true iff equivalent.
inline bool areEquivalent(RegexManager &M, const Regex *A, const Regex *B,
                          const std::vector<char> &Sigma) {
  return checkEquivalent(M, A, B, Sigma).Equivalent;
}

} // namespace paresy

#endif // PARESY_REGEX_EQUIVALENCE_H
