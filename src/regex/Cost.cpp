//===- regex/Cost.cpp - Cost homomorphisms ---------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Cost.h"

#include "support/Compiler.h"

#include <cstdio>

using namespace paresy;

uint64_t CostFn::of(const Regex *R) const {
  assert(R && "cost of a null regex");
  switch (R->kind()) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Literal:
    return Literal;
  case RegexKind::Question:
    return of(R->lhs()) + Question;
  case RegexKind::Star:
    return of(R->lhs()) + Star;
  case RegexKind::Concat:
    return of(R->lhs()) + of(R->rhs()) + Concat;
  case RegexKind::Union:
    return of(R->lhs()) + of(R->rhs()) + Union;
  }
  PARESY_UNREACHABLE("invalid regex kind");
}

std::string CostFn::name() const {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "(%u, %u, %u, %u, %u)", Literal, Question,
                Star, Concat, Union);
  return Buf;
}

const std::array<CostFn, 12> &paresy::paperCostFunctions() {
  static const std::array<CostFn, 12> Fns = {{
      CostFn(1, 1, 1, 1, 1),
      CostFn(10, 1, 1, 1, 1),
      CostFn(1, 10, 1, 1, 1),
      CostFn(1, 1, 10, 1, 1),
      CostFn(1, 1, 1, 10, 1),
      CostFn(1, 1, 1, 1, 10),
      CostFn(10, 10, 10, 10, 1),
      CostFn(10, 10, 10, 1, 10),
      CostFn(10, 10, 1, 10, 10),
      CostFn(10, 1, 10, 10, 10),
      CostFn(1, 10, 10, 10, 10),
      CostFn(20, 20, 20, 5, 30),
  }};
  return Fns;
}
