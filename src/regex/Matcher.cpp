//===- regex/Matcher.cpp - Regex contains-checking --------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "regex/Matcher.h"

#include "support/Bits.h"
#include "support/Compiler.h"

#include <algorithm>

using namespace paresy;

//===----------------------------------------------------------------------===//
// DerivativeMatcher
//===----------------------------------------------------------------------===//

size_t
DerivativeMatcher::DeriveKeyHash::operator()(const DeriveKey &K) const {
  return size_t(
      hashMix64(reinterpret_cast<uintptr_t>(K.Re) ^
                (uint64_t(uint8_t(K.Ch)) << 56)));
}

const Regex *DerivativeMatcher::mkUnion(const Regex *L, const Regex *R) {
  // Flatten both sides, drop empties and duplicates, and rebuild in a
  // canonical (pointer-ordered) right-nested shape. This keeps the set
  // of derivative terms small: unions are where derivative blow-up
  // happens.
  std::vector<const Regex *> Parts;
  auto Collect = [&](const Regex *Node, auto &&Self) -> void {
    if (Node->kind() == RegexKind::Empty)
      return;
    if (Node->kind() == RegexKind::Union) {
      Self(Node->lhs(), Self);
      Self(Node->rhs(), Self);
      return;
    }
    Parts.push_back(Node);
  };
  Collect(L, Collect);
  Collect(R, Collect);
  if (Parts.empty())
    return M.empty();
  std::sort(Parts.begin(), Parts.end());
  Parts.erase(std::unique(Parts.begin(), Parts.end()), Parts.end());
  const Regex *Acc = Parts.back();
  for (size_t I = Parts.size() - 1; I-- > 0;)
    Acc = M.alt(Parts[I], Acc);
  return Acc;
}

const Regex *DerivativeMatcher::mkConcat(const Regex *L, const Regex *R) {
  if (L->kind() == RegexKind::Empty || R->kind() == RegexKind::Empty)
    return M.empty();
  if (L->kind() == RegexKind::Epsilon)
    return R;
  if (R->kind() == RegexKind::Epsilon)
    return L;
  return M.concat(L, R);
}

const Regex *DerivativeMatcher::mkStar(const Regex *R) {
  if (R->kind() == RegexKind::Empty || R->kind() == RegexKind::Epsilon)
    return M.epsilon();
  if (R->kind() == RegexKind::Star)
    return R;
  if (R->kind() == RegexKind::Question)
    return M.star(R->lhs()); // (r?)* == r*
  return M.star(R);
}

const Regex *DerivativeMatcher::derive(const Regex *R, char C) {
  DeriveKey Key{R, C};
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  const Regex *Result = nullptr;
  switch (R->kind()) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    Result = M.empty();
    break;
  case RegexKind::Literal:
    Result = R->symbol() == C ? M.epsilon() : M.empty();
    break;
  case RegexKind::Question:
    // d(r?) = d(# + r) = d(r).
    Result = derive(R->lhs(), C);
    break;
  case RegexKind::Star:
    Result = mkConcat(derive(R->lhs(), C), mkStar(R->lhs()));
    break;
  case RegexKind::Concat: {
    const Regex *Head = mkConcat(derive(R->lhs(), C), R->rhs());
    Result = R->lhs()->nullable() ? mkUnion(Head, derive(R->rhs(), C))
                                  : Head;
    break;
  }
  case RegexKind::Union:
    Result = mkUnion(derive(R->lhs(), C), derive(R->rhs(), C));
    break;
  }
  assert(Result && "derivative not computed");
  Cache.emplace(Key, Result);
  return Result;
}

bool DerivativeMatcher::matches(const Regex *R, std::string_view W) {
  const Regex *Current = R;
  for (char C : W) {
    Current = derive(Current, C);
    if (Current->kind() == RegexKind::Empty)
      return false; // No continuation can be accepted.
  }
  return Current->nullable();
}

//===----------------------------------------------------------------------===//
// NfaMatcher
//===----------------------------------------------------------------------===//

NfaMatcher::NfaMatcher(const Regex *R) {
  assert(R && "compiling a null regex");
  Fragment Frag = compile(R);
  int Accept = addState(StateKind::Accept);
  patch(Frag.Dangling, Accept);
  StartState = Frag.Start;
  Marks.assign(States.size(), 0);
}

int NfaMatcher::addState(StateKind Kind, char Ch) {
  States.push_back(State{Kind, Ch, -1, -1});
  return int(States.size()) - 1;
}

void NfaMatcher::patch(const std::vector<std::pair<int, int>> &Dangling,
                       int Target) {
  for (auto [StateIdx, Slot] : Dangling) {
    if (Slot == 0)
      States[StateIdx].Out0 = Target;
    else
      States[StateIdx].Out1 = Target;
  }
}

NfaMatcher::Fragment NfaMatcher::compile(const Regex *R) {
  switch (R->kind()) {
  case RegexKind::Empty: {
    int Dead = addState(StateKind::Dead);
    return Fragment{Dead, {}};
  }
  case RegexKind::Epsilon: {
    int Eps = addState(StateKind::Split);
    return Fragment{Eps, {{Eps, 0}}};
  }
  case RegexKind::Literal: {
    int Ch = addState(StateKind::Char, R->symbol());
    return Fragment{Ch, {{Ch, 0}}};
  }
  case RegexKind::Concat: {
    Fragment Lhs = compile(R->lhs());
    Fragment Rhs = compile(R->rhs());
    patch(Lhs.Dangling, Rhs.Start);
    return Fragment{Lhs.Start, std::move(Rhs.Dangling)};
  }
  case RegexKind::Union: {
    Fragment Lhs = compile(R->lhs());
    Fragment Rhs = compile(R->rhs());
    int Split = addState(StateKind::Split);
    States[Split].Out0 = Lhs.Start;
    States[Split].Out1 = Rhs.Start;
    Fragment Result{Split, std::move(Lhs.Dangling)};
    Result.Dangling.insert(Result.Dangling.end(), Rhs.Dangling.begin(),
                           Rhs.Dangling.end());
    return Result;
  }
  case RegexKind::Star: {
    Fragment Body = compile(R->lhs());
    int Split = addState(StateKind::Split);
    States[Split].Out0 = Body.Start;
    patch(Body.Dangling, Split);
    return Fragment{Split, {{Split, 1}}};
  }
  case RegexKind::Question: {
    Fragment Body = compile(R->lhs());
    int Split = addState(StateKind::Split);
    States[Split].Out0 = Body.Start;
    Fragment Result{Split, std::move(Body.Dangling)};
    Result.Dangling.push_back({Split, 1});
    return Result;
  }
  }
  PARESY_UNREACHABLE("invalid regex kind");
}

void NfaMatcher::addClosure(int StateIdx, std::vector<int> &Set,
                            uint32_t Mark) {
  if (StateIdx < 0 || Marks[size_t(StateIdx)] == Mark)
    return;
  Marks[size_t(StateIdx)] = Mark;
  const State &S = States[size_t(StateIdx)];
  if (S.Kind == StateKind::Split) {
    addClosure(S.Out0, Set, Mark);
    addClosure(S.Out1, Set, Mark);
    return;
  }
  if (S.Kind == StateKind::Dead)
    return;
  Set.push_back(StateIdx);
}

bool NfaMatcher::matches(std::string_view W) {
  std::vector<int> Current, Next;
  addClosure(StartState, Current, ++Generation);
  for (char C : W) {
    Next.clear();
    uint32_t Mark = ++Generation;
    for (int StateIdx : Current) {
      const State &S = States[size_t(StateIdx)];
      if (S.Kind == StateKind::Char && S.Ch == C)
        addClosure(S.Out0, Next, Mark);
    }
    std::swap(Current, Next);
    if (Current.empty())
      return false;
  }
  for (int StateIdx : Current)
    if (States[size_t(StateIdx)].Kind == StateKind::Accept)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Convenience helpers
//===----------------------------------------------------------------------===//

bool paresy::satisfiesExamples(RegexManager &M, const Regex *R,
                               const std::vector<std::string> &Pos,
                               const std::vector<std::string> &Neg) {
  DerivativeMatcher Matcher(M);
  for (const std::string &W : Pos)
    if (!Matcher.matches(R, W))
      return false;
  for (const std::string &W : Neg)
    if (Matcher.matches(R, W))
      return false;
  return true;
}
