//===- engine/CpuBackend.h - Sequential reference backend --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential CPU backend: the paper's reference implementation of
/// the per-level phases, one candidate at a time on the calling
/// thread. Generation goes through the CsAlgebra (which accounts split
/// pairs), uniqueness through one open-addressing CsHashSet per shard
/// (owner-computes by CS hash; one shard under the default options),
/// and candidates are appended to their owner shard as they survive -
/// no temporary storage, no compaction pass. This is the semantics
/// every other backend is tested against.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_CPUBACKEND_H
#define PARESY_ENGINE_CPUBACKEND_H

#include "core/CsHashSet.h"
#include "engine/Backend.h"

#include <memory>
#include <vector>

namespace paresy {
namespace engine {

/// One candidate at a time, in enumeration order, on one thread.
class CpuBackend : public Backend {
public:
  std::string_view name() const override { return "cpu"; }
  size_t planCacheCapacity(const SearchContext &Ctx,
                           uint64_t BudgetBytes) override;
  uint64_t planStoreBytes(const SearchContext &Ctx,
                          uint64_t BudgetBytes) override;
  void prepare(SearchContext &Ctx) override;
  LevelOutcome runLevel(SearchContext &Ctx, uint64_t LevelCost,
                        LevelTasks &Tasks) override;
  uint64_t auxBytesUsed() const override;

  /// Session support: the per-shard CsHashSets serialize exactly, and
  /// rebuilding them by re-inserting rows in global-id order replays
  /// the original insertion order (appends commit in rank order), so
  /// both paths reproduce the uninterrupted layout bit for bit.
  bool supportsResume() const override { return true; }

  /// runLevel() journals every pruned duplicate - the find() probe
  /// yields the winner row at the cost of the membership test it
  /// replaces.
  bool supportsDeltaLedger() const override { return true; }
  void saveState(SnapshotWriter &W) const override;
  bool loadState(SnapshotReader &R, SearchContext &Ctx) override;
  void rebuildFromStore(SearchContext &Ctx,
                        uint64_t NextCandidateId) override;

private:
  /// One uniqueness set per shard, keyed on that shard's segment.
  std::vector<std::unique_ptr<CsHashSet>> Unique;
  std::vector<uint64_t> Scratch;
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_CPUBACKEND_H
