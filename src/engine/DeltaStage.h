//===- engine/DeltaStage.h - Spec-delta incremental resynthesis --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reusing a parked (or solved) session's search state when its spec
/// gains examples (DESIGN.md Sec. 14). A superset edit leaves the cost
/// sweep's enumeration untouched - candidate order, costs and operand
/// ranges depend only on the alphabet and the sweep options - so the
/// one thing an edit can change below a given level is which candidates
/// were *pruned as duplicates*. deltaResynthesize() therefore:
///
///  1. widens every committed row of the old store by the edit's
///     appended universe columns (core/DeltaWiden.h) - semantically, so
///     widened rows are bit-identical to a cold run's;
///  2. re-checks each journaled pruning decision (engine/DupLedger.h)
///     against the widened rows, level by level; the first dup whose
///     appended bits diverge from its winner's marks the level the
///     resumed sweep must re-run;
///  3. hands the validated prefix - store, levels, counters, ledger -
///     to a fresh SearchSession on the edited query, which resumes the
///     sweep from that boundary on the old session's (stolen) backend.
///
/// The contract, property-tested across backends, shard counts and
/// store tiers: the delta session's result and equivalence-relevant
/// counters are identical to a cold run of the edited query. When the
/// edit cannot be grafted (examples removed, options differ, no ledger
/// coverage, store full under the wider rows, ...) the attempt declines
/// and the old session is left intact for ordinary resume or parking.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_DELTASTAGE_H
#define PARESY_ENGINE_DELTASTAGE_H

#include "engine/Session.h"

#include <memory>
#include <string>

namespace paresy {
namespace engine {

/// Outcome of one delta-resynthesis attempt.
struct DeltaAttempt {
  /// The resumed session on the edited query (Running, or already
  /// Finished when the old satisfier's level still contains one for
  /// the edited spec); null when the attempt declined.
  std::unique_ptr<SearchSession> Session;
  /// Why the attempt declined (empty on success).
  std::string DeclineReason;
  /// Universe columns appended by the edit.
  uint64_t ColumnsAppended = 0;
  /// Old completed levels validated and reused verbatim.
  uint64_t LevelsSkipped = 0;
  /// Old completed levels the resumed sweep re-runs (a dup split, or
  /// the ledger's coverage ended).
  uint64_t LevelsReplayed = 0;
};

/// True iff canonical \p Outer is a proper superset edit of canonical
/// \p Inner: every example kept with its sign, at least one added.
/// The spec relation under which \p Outer can be grafted onto a
/// session parked on \p Inner; the serving layer uses it to select
/// delta donors (deltaResynthesize re-checks it authoritatively).
/// Both specs must already be canonical (lang/Fingerprint.h).
bool isSupersetEdit(const Spec &Inner, const Spec &Outer);

/// Attempts to graft \p NewQ - a staged query whose spec is a proper
/// superset edit of \p Old's - onto \p Old's parked search state.
///
/// On success, \p Old's backend is *stolen* by the returned session and
/// \p Old is finished: it must be discarded, not resumed or saved. On
/// decline, \p Old is intact and still parked (a pending mid-level
/// rollback may have been applied, which is an ordinary resume step).
DeltaAttempt deltaResynthesize(SearchSession &Old,
                               std::shared_ptr<const StagedQuery> NewQ);

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_DELTASTAGE_H
