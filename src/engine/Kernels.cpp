//===- engine/Kernels.cpp - Shared per-task CS kernel bodies -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Kernels.h"

#include "lang/CsKernels.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "support/Bits.h"

#include <cassert>
#include <string_view>
#include <vector>

using namespace paresy;
using namespace paresy::engine;

namespace {

uint64_t concatStaged(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                      const Universe &U, const GuideTable &GT) {
  // The fold of Alg. 2 lines 10-13, width-specialized (see
  // lang/CsKernels.h); no data-dependent early exit.
  size_t Words = U.csWords();
  cskernel::concatStaged(Dst, A, B, GT, U.size(), Words);
  return GT.totalPairs() + Words;
}

uint64_t concatUnstaged(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                        const Universe &U) {
  // Ablation slow path: re-derive every split through string slicing
  // and hash lookups. Universe lookups are const and therefore safe
  // from any number of tasks.
  size_t Words = U.csWords();
  clearWords(Dst, Words);
  uint64_t Cuts = 0;
  for (size_t W = 0; W != U.size(); ++W) {
    const std::string &Word = U.word(W);
    bool Member = false;
    for (size_t Cut = 0; Cut <= Word.size(); ++Cut) {
      ++Cuts;
      int64_t L = U.indexOf(std::string_view(Word).substr(0, Cut));
      int64_t R = U.indexOf(std::string_view(Word).substr(Cut));
      assert(L >= 0 && R >= 0 && "universe must be infix-closed");
      Member |= testBit(A, size_t(L)) & testBit(B, size_t(R));
    }
    if (Member)
      setBit(Dst, W);
  }
  return Cuts + Words;
}

} // namespace

uint64_t paresy::engine::csConcat(uint64_t *Dst, const uint64_t *A,
                                  const uint64_t *B, const Universe &U,
                                  const GuideTable *GT) {
  return GT ? concatStaged(Dst, A, B, U, *GT) : concatUnstaged(Dst, A, B, U);
}

uint64_t paresy::engine::csStar(uint64_t *Dst, const uint64_t *A,
                                const Universe &U, const GuideTable *GT) {
  size_t Words = U.csWords();
  // Fixpoint of S = 1 + S.A with task-local scratch (unused by the
  // register-resident 1-word specialization).
  static thread_local std::vector<uint64_t> Current, Next;
  if (GT) {
    if (Current.size() < Words) {
      Current.resize(Words);
      Next.resize(Words);
    }
    uint64_t Rounds = cskernel::starStaged(
        Dst, A, *GT, U.size(), Words, U.epsilonIndex(), Current.data(),
        Next.data());
    // Work-unit formula unchanged from the unfused loop: one concat
    // plus one word-level union pass per round, plus the seed and the
    // final store.
    return Rounds * (GT->totalPairs() + 2 * Words) + 2 * Words;
  }
  Current.assign(Words, 0);
  Next.assign(Words, 0);
  setBit(Current.data(), U.epsilonIndex());
  uint64_t Ops = Words;
  for (;;) {
    Ops += csConcat(Next.data(), Current.data(), A, U, GT);
    orWords(Next.data(), Next.data(), Current.data(), Words);
    Ops += Words;
    if (equalWords(Next.data(), Current.data(), Words))
      break;
    copyWords(Current.data(), Next.data(), Words);
  }
  copyWords(Dst, Current.data(), Words);
  return Ops + Words;
}

uint64_t paresy::engine::generateCs(uint64_t *Dst, const Provenance &Prov,
                                    const Universe &U, const GuideTable *GT,
                                    const ShardedStore &Store) {
  size_t Words = U.csWords();
  switch (Prov.Kind) {
  case CsOp::Literal: {
    clearWords(Dst, Words);
    char Symbol = Prov.Symbol;
    int64_t Idx = U.indexOf(std::string_view(&Symbol, 1));
    if (Idx >= 0)
      setBit(Dst, size_t(Idx));
    return Words;
  }
  case CsOp::Epsilon:
    clearWords(Dst, Words);
    setBit(Dst, U.epsilonIndex());
    return Words;
  case CsOp::Empty:
    clearWords(Dst, Words);
    return Words;
  case CsOp::Question:
    copyWords(Dst, Store.cs(Prov.Lhs), Words);
    setBit(Dst, U.epsilonIndex());
    return Words;
  case CsOp::Star:
    return csStar(Dst, Store.cs(Prov.Lhs), U, GT);
  case CsOp::Concat:
    return csConcat(Dst, Store.cs(Prov.Lhs), Store.cs(Prov.Rhs), U, GT);
  case CsOp::Union:
    orWords(Dst, Store.cs(Prov.Lhs), Store.cs(Prov.Rhs), Words);
    return Words;
  }
  return 0;
}
