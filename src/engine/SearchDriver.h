//===- engine/SearchDriver.h - Backend-agnostic cost sweep -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine half of the engine/backend split (DESIGN.md Sec. 4): one
/// implementation of the paper's Alg. 1 cost sweep shared by every
/// backend. The pipeline is two phases with a first-class seam
/// (engine/Staging.h): stage() validates the specification and builds
/// the immutable staged artifacts (universe, guide table), and
/// runStaged() derives the cost bound and the OnTheFly completeness
/// horizon, enumerates each cost level's candidate tasks in the
/// canonical order (?, *, ., +), and assembles the result and
/// statistics; the backend it is given executes each level's
/// generate/uniqueness/check/compact phases (see Backend.h).
/// runSearch() composes the two and is the one-call entry point.
///
/// core/synthesize() is runSearch with the sequential backend;
/// gpusim/synthesizeGpu() is runSearch with the simulated-device
/// backend. New execution strategies only implement Backend and
/// inherit the entire pipeline - including its minimality guarantees.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_SEARCHDRIVER_H
#define PARESY_ENGINE_SEARCHDRIVER_H

#include "engine/Staging.h"

namespace paresy {
namespace engine {

class Backend;

/// Runs the Paresy search on \p S over \p Sigma, executing the
/// per-level phases on \p B: stage(S, Sigma, Opts) + runStaged(.., B).
/// Thread-safe as long as \p B is not shared across concurrent calls.
SynthResult runSearch(const Spec &S, const Alphabet &Sigma,
                      const SynthOptions &Opts, Backend &B);

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_SEARCHDRIVER_H
