//===- engine/DeltaStage.cpp - Spec-delta incremental resynthesis ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The graft of DESIGN.md Sec. 14: widen the old store by the edit's
/// appended columns, validate the journaled pruning decisions level by
/// level, and resume the sweep on the edited query from the first
/// level whose decisions no longer hold. Declines are cheap and leave
/// the old session intact; the expensive failure modes (a destination
/// shard filling under wider rows, a dup split below a sealed window)
/// decline after the stolen backend is handed back untouched.
///
//===----------------------------------------------------------------------===//

#include "engine/DeltaStage.h"

#include "core/DeltaWiden.h"
#include "engine/Backend.h"
#include "engine/DupLedger.h"
#include "lang/CsKernels.h"
#include "lang/Fingerprint.h"
#include "lang/Universe.h"

#include <algorithm>
#include <cassert>

using namespace paresy;
using namespace paresy::engine;

namespace {

/// Mirror of the session's budget resolution (Session.cpp): MaxCost,
/// or the overfit bound - widened by a question mark without the
/// epsilon seed - when MaxCost is 0. Must stay identical; the replay
/// boundary is clamped by the *edited* query's resolution.
uint64_t resolveMaxCost(const Spec &S, const SynthOptions &Opts) {
  uint64_t MaxCost =
      Opts.MaxCost ? Opts.MaxCost : overfitCostBound(S, Opts.Cost);
  if (!Opts.MaxCost && !Opts.SeedEpsilon)
    MaxCost += Opts.Cost.Question;
  return MaxCost;
}

/// True iff canonical \p Inner is contained in canonical \p Outer
/// (both shortlex-sorted and deduplicated).
bool specContained(const Spec &Inner, const Spec &Outer) {
  return std::includes(Outer.Pos.begin(), Outer.Pos.end(),
                       Inner.Pos.begin(), Inner.Pos.end(), shortlexLess) &&
         std::includes(Outer.Neg.begin(), Outer.Neg.end(),
                       Inner.Neg.begin(), Inner.Neg.end(), shortlexLess);
}

} // namespace

bool paresy::engine::isSupersetEdit(const Spec &Inner, const Spec &Outer) {
  return specContained(Inner, Outer) &&
         Outer.exampleCount() > Inner.exampleCount();
}

DeltaAttempt
paresy::engine::deltaResynthesize(SearchSession &Old,
                                  std::shared_ptr<const StagedQuery> NewQ) {
  DeltaAttempt A;
  auto Decline = [&](const char *Why) {
    A.DeclineReason = Why;
    return std::move(A);
  };

  //===--------------------------------------------------------------------===//
  // Eligibility (the old session is untouched past this block)
  //===--------------------------------------------------------------------===//

  if (!NewQ || NewQ->immediate())
    return Decline("edited query resolves without a search");
  bool OldFound = Old.St == SessionState::Finished &&
                  Old.Result.Status == SynthStatus::Found;
  if (!(Old.St == SessionState::Parked || OldFound))
    return Decline("old session is neither parked nor solved");
  if (!Old.Prepared || !Old.Store)
    return Decline("old session never ran a level");
  if (!Old.QOwned || !Old.BOwned)
    return Decline("old session does not own its query and backend");
  if (!Old.B->supportsResume() || !Old.B->supportsDeltaLedger())
    return Decline("backend does not support delta resynthesis");
  if (!Old.Ledger || Old.Ledger->levelCount() == 0)
    return Decline("no journaled level prefix to validate");
  // Error tolerance makes the mistake budget - and with it every
  // satisfies() verdict - a function of the example count; only exact
  // queries replay. (An old session with a nonzero budget never has a
  // ledger, so checking the edited query suffices.)
  if (NewQ->mistakeBudget() != 0)
    return Decline("error-tolerant queries cannot replay");
  // Same alphabet, same non-budget sweep options: the enumeration and
  // all cost/geometry decisions must be the edit-invariant part.
  if (canonicalLineageText(NewQ->alphabet(), NewQ->options()) !=
      canonicalLineageText(Old.Q->alphabet(), Old.EffOpts))
    return Decline("alphabet or sweep options differ");

  Spec OldC = canonicalSpec(Old.Q->spec());
  Spec NewC = canonicalSpec(NewQ->spec());
  if (!specContained(OldC, NewC))
    return Decline("edit removed or flipped examples");
  if (NewC.exampleCount() <= OldC.exampleCount())
    return Decline("edit added no examples");

  const Universe &OldU = *Old.Q->universe();
  const Universe &NewU = *NewQ->universe();
  DeltaGeometry G;
  if (!buildDeltaGeometry(OldU, NewU, G))
    return Decline("old universe does not embed in the edited one");

  // A mid-level park left a partial level behind; drop it now exactly
  // as a resume would, so the store ends at a journaled boundary.
  if (Old.NeedsRollback)
    Old.rollbackToBoundary();

  uint64_t NewMaxResolved = resolveMaxCost(NewQ->spec(), NewQ->options());
  const uint64_t CostLit = NewQ->options().Cost.Literal;

  //===--------------------------------------------------------------------===//
  // Build the edited session around the stolen backend
  //===--------------------------------------------------------------------===//

  std::unique_ptr<SearchSession> NS(
      new SearchSession(std::move(NewQ), std::move(Old.BOwned)));
  // Declines past this point hand the backend back; re-planning the
  // capacity restores the memory partition planCacheCapacity() is
  // about to derive for the edited geometry.
  auto DeclineLate = [&](const char *Why) {
    Old.BOwned = std::move(NS->BOwned);
    Old.B->planCacheCapacity(Old.Ctx, Old.EffOpts.MemoryLimitBytes);
    return Decline(Why);
  };

  NS->bindContext();
  NS->Stats.PrecomputeSeconds = NS->Q->stagingSeconds();
  unsigned Shards = std::max(1u, NS->EffOpts.Shards);
  size_t Capacity =
      NS->B->planCacheCapacity(NS->Ctx, NS->EffOpts.MemoryLimitBytes);
  NS->Store = std::make_unique<ShardedStore>(
      NS->Q->universe()->csWords(), Shards,
      std::max<size_t>(1, Capacity / Shards), NS->storeTierConfig());
  NS->Ctx.Store = NS->Store.get();

  //===--------------------------------------------------------------------===//
  // Widen + validate, level by level
  //===--------------------------------------------------------------------===//

  ShardedStore &OldStore = *Old.Store;
  ShardedStore &NewStore = *NS->Store;
  const size_t NewWords = NewU.csWords();

  DeltaWidenFn Widen = [&](uint32_t Id, const uint64_t *OldCs,
                           uint64_t *NewCs) {
    cskernel::widenScatter(NewCs, OldCs, G.NewOfOld.data(), G.OldBits,
                           G.OldWords, G.NewWords);
    deltaFillAppended(NewCs, OldStore.provenance(Id), G, NewStore);
  };

  const DupLedger &Journal = *Old.Ledger;
  size_t Validated = 0;
  uint64_t BoundaryCand = 0, BoundaryUniq = 0;
  std::vector<uint64_t> NewNonEmpty;
  std::vector<uint64_t> DupRow(NewWords);
  std::vector<uint32_t> PreShardRows(NewStore.shardCount());
  bool Split = false;

  for (size_t LI = 0; LI != Journal.levelCount() && !Split; ++LI) {
    const DupLevelRec &L = Journal.level(LI);
    if (L.Cost > NewMaxResolved)
      break; // The edited budget is smaller; never materialize past it.
    auto [Begin, End] = OldStore.level(L.Cost);
    assert(NewStore.size() == Begin &&
           "journal levels must extend the widened store contiguously");
    size_t PreSize = NewStore.size();
    for (unsigned S = 0; S != NewStore.shardCount(); ++S)
      PreShardRows[S] = uint32_t(NewStore.shardRows(S));

    if (!NewStore.appendColumns(OldStore, Begin, End, Widen))
      return DeclineLate("widened rows overflow a destination shard");

    // Re-derive every pruning decision of this level. A dup's old
    // columns equal its winner's by construction (they collided), so
    // only the appended columns can diverge: rebuild them from the
    // dup's provenance on top of the winner's scattered base.
    for (size_t D = L.DupBegin; D != L.DupEnd && !Split; ++D) {
      const DupRec &Rec = Journal.dup(D);
      const uint64_t *Winner = NewStore.cs(Rec.WinnerRow);
      copyWords(DupRow.data(), Winner, NewWords);
      for (uint32_t J : G.Appended)
        clearBit(DupRow.data(), J);
      deltaFillAppended(DupRow.data(), Rec.Prov, G, NewStore);
      // cs() may have rotated a compressed chunk out of its scratch
      // slot while the fill read operands; refetch for the compare.
      Split = !equalWords(DupRow.data(), NewStore.cs(Rec.WinnerRow),
                          NewWords);
    }
    if (Split) {
      // The level's pruning changed: the resumed sweep re-runs it (and
      // everything after). Un-append its rows; with a byte-budgeted
      // window the append may already have auto-sealed some of them,
      // and sealed rows cannot truncate - decline, cold-running is
      // then the honest cost.
      if (NewStore.compressed() && NewStore.sealedRows() > PreSize)
        return DeclineLate("dup split below an auto-sealed window");
      NewStore.truncate(PreShardRows, PreSize);
      break;
    }

    NewStore.setLevel(L.Cost, Begin, End);
    if (End != Begin)
      NewNonEmpty.push_back(L.Cost);
    if (NewStore.compressed())
      NewStore.sealLevel(); // Backend pointers rebind in prepare().
    ++Validated;
    BoundaryCand = L.CumCandidates;
    BoundaryUniq = L.CumUnique;
  }

  if (Validated == 0)
    return DeclineLate("no level survived validation");

  // The first cost the resumed sweep runs. Journaled levels are the
  // consecutive completed costs from the seed on, so the boundary is
  // simply one past the last validated cost.
  uint64_t R = Journal.level(Validated - 1).Cost + 1;

  A.ColumnsAppended = G.appendedCount();
  A.LevelsSkipped = Validated;
  uint64_t OldDone = Old.Stats.LastCompletedCost >= CostLit
                         ? Old.Stats.LastCompletedCost - CostLit + 1
                         : 0;
  uint64_t Reusable =
      std::min<uint64_t>(OldDone, NewMaxResolved - CostLit + 1);
  A.LevelsReplayed = Reusable > Validated ? Reusable - Validated : 0;

  //===--------------------------------------------------------------------===//
  // Hand the validated prefix to the edited session
  //===--------------------------------------------------------------------===//

  NS->Ledger = std::make_unique<DupLedger>(Journal);
  NS->Ledger->keepLevelPrefix(Validated);
  NS->Ctx.Ledger = NS->Ledger.get();

  NS->Stats.CandidatesGenerated = BoundaryCand;
  NS->Stats.UniqueLanguages = BoundaryUniq;
  NS->Stats.LastCompletedCost = R - 1;
  NS->NonEmptyLevels = std::move(NewNonEmpty);
  NS->MaxCostResolved = NewMaxResolved;
  NS->NextCost = R;
  NS->PairsBefore = 0;
  NS->CacheFilled = false;
  NS->Prepared = true;
  NS->St = SessionState::Running;

  // The old session's backend state keys on the old store; from here
  // the old session is dead and must be discarded by the caller.
  Old.St = SessionState::Finished;

  // Solved-session fast path: every level through the old satisfier's
  // cost validated, so the edited spec's minimal satisfier - if one
  // exists at all - sits in that same level. Any regex satisfying the
  // superset spec satisfies the old one, and the old sweep proved the
  // levels below the satisfier empty of those; within the level, the
  // first satisfying *committed* row is the cold run's answer (a
  // pruned dup satisfies iff its earlier-ranked winner does).
  if (OldFound && R > Old.Result.Cost) {
    uint64_t Cf = Old.Result.Cost;
    auto [LB, LE] = NewStore.level(Cf);
    const std::vector<uint64_t> &Pos = NewU.posMask();
    const std::vector<uint64_t> &Neg = NewU.negMask();
    for (uint32_t Id = LB; Id != LE; ++Id) {
      const uint64_t *Cs = NewStore.cs(Id);
      if (containsWords(Cs, Pos.data(), NewWords) &&
          disjointWords(Cs, Neg.data(), NewWords)) {
        Provenance Sat = NewStore.provenance(Id);
        NS->B->prepare(NS->Ctx); // Rebind aux structures to the store.
        NS->Clock.reset();
        NS->Clock.rewind(NS->ConsumedSeconds);
        NS->finishFound(Sat, Cf);
        A.Session = std::move(NS);
        return std::move(A);
      }
    }
    // No widened row of the level still satisfies: the sweep continues
    // past it, exactly as a cold run would (NextCost is already Cf+1).
    assert(R == Cf + 1 && "found level must be the last validated");
  }

  // Rebuild the uniqueness state over the widened rows (global-id
  // order reproduces the uninterrupted insertion schedule) and resume.
  NS->B->rebuildFromStore(NS->Ctx, BoundaryCand);
  A.Session = std::move(NS);
  return std::move(A);
}
