//===- engine/LevelTasks.h - Lazy per-level task enumeration -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver's enumeration of one cost level's candidate tasks, in
/// the canonical order of Alg. 1 line 12 (?, *, ., +), exposed as a
/// pull stream. Concat/union levels have a number of tasks quadratic
/// in the cache population, so the level is never materialised;
/// backends pull chunks bounded by their batch size and memory use
/// stays flat no matter how large the level is. The i-th task pulled
/// has rank i, which is the candidate id the uniqueness and satisfier
/// minima are taken over - ranks, not schedules, decide winners.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_LEVELTASKS_H
#define PARESY_ENGINE_LEVELTASKS_H

#include "engine/Backend.h"

#include <cstdint>
#include <vector>

namespace paresy {
namespace engine {

/// A stream of the candidate tasks of one cost level.
class LevelTasks {
public:
  /// The seed level (cost c1): alphabet literals, then {epsilon} under
  /// SeedEpsilon, then - with an error budget - the empty language.
  static LevelTasks seedLevel(const SearchContext &Ctx);

  /// A composite level \p C: questions, stars, concatenations and
  /// unions over the cached levels. \p NonEmptyLevels must stay alive
  /// and unchanged while the stream is drained.
  static LevelTasks sweepLevel(const SearchContext &Ctx, uint64_t C,
                               const std::vector<uint64_t> &NonEmptyLevels);

  /// Produces the next task in enumeration order. Returns false when
  /// the level is exhausted.
  bool next(Provenance &Out);

  /// Clears \p Out and refills it with up to \p Max next tasks;
  /// returns the number filled (0 = exhausted).
  size_t fill(std::vector<Provenance> &Out, size_t Max);

private:
  enum class Phase : uint8_t {
    SeedLiteral,
    SeedEpsilon,
    SeedEmpty,
    Question,
    Star,
    ConcatLevels, // Advancing to the next non-empty concat level pair.
    Concat,       // Emitting one level pair's (I, J) products.
    UnionLevels,
    Union,
    Done
  };

  LevelTasks() = default;

  const SearchContext *Ctx = nullptr;
  const std::vector<uint64_t> *Levels = nullptr;
  uint64_t C = 0;
  Phase P = Phase::Done;

  // Unary / seed state: the pending range [I, IEnd).
  uint32_t I = 0;
  uint32_t IEnd = 0;

  // Binary state: position within the current level pair.
  size_t LevelIdx = 0;         // Next entry of Levels to consider.
  uint32_t LB = 0, LE = 0;     // Left operand row range.
  uint32_t RB = 0, RE = 0;     // Right operand row range.
  uint32_t J = 0;              // Next right operand row.
  bool SameLevel = false;      // Union: both operands from one level.
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_LEVELTASKS_H
