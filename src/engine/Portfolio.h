//===- engine/Portfolio.h - Racing equivalent sweep configurations -----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The portfolio racer: several result-equivalent sweep configurations
/// of one query run concurrently, the first to finish wins, the losers
/// are cancelled. The arms differ only in options the repo proves (and
/// tests) result-preserving - guide table on/off, shard count, CS
/// padding - so *which* arm wins changes wall-clock behaviour only,
/// never the returned regex or cost: the racer is deterministic in
/// content even though it is a race in time.
///
/// All arms share one staged query: restage() re-derives each arm's
/// StagedQuery from the base artifact, sharing the universe and guide
/// table whenever the geometry allows (engine/Staging.h), so the
/// expensive staging work is paid once. Each arm owns a private
/// SearchSession and backend; a shared cooperative stop token
/// (SearchSession::setCancelToken) is set by the first arm to Find,
/// and every other arm winds down at its next poll point with
/// SynthStatus::Cancelled. Cancelled results are discarded - never
/// cached, never parked (service/SynthService.h relies on this).
///
/// Reached through SynthOptions::Portfolio (honoured by
/// engine::synthesizeWith and the service layer) and
/// `paresy_cli --portfolio`.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_PORTFOLIO_H
#define PARESY_ENGINE_PORTFOLIO_H

#include "engine/BackendRegistry.h"
#include "engine/Staging.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace paresy {
namespace engine {

/// What one arm of the race did, for stats surfaces (CLI, service).
struct PortfolioArmReport {
  /// The option delta this arm ran ("base", "no-guide", "shards=4",
  /// "no-pad", ...).
  std::string Label;
  SynthStatus Status = SynthStatus::NotFound;
  /// Cost levels the arm executed before finishing or being cancelled.
  uint64_t LevelsRun = 0;
  /// Wall-clock seconds the arm's thread ran.
  double Seconds = 0;
  bool Winner = false;
};

/// The race's result plus per-arm accounting.
struct PortfolioOutcome {
  SynthResult Result;
  std::vector<PortfolioArmReport> Arms;
};

/// Races the standard arm set - base options, guide table flipped,
/// shard count flipped (1 <-> 4), padding flipped - over \p Q on the
/// backend registered under \p BackendName. \p Config is divided
/// across the arms: with Workers == 0 each arm runs its kernels inline
/// (the arms themselves are the parallelism), otherwise each arm gets
/// an equal share of the workers. Losing arms' results are discarded.
PortfolioOutcome runPortfolio(std::shared_ptr<const StagedQuery> Q,
                              std::string_view BackendName,
                              const BackendConfig &Config = {});

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_PORTFOLIO_H
