//===- engine/SearchDriver.cpp - Backend-agnostic cost sweep -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// runStaged()/runSearch() as thin wrappers over the session state
/// machine of engine/Session.h: one uninterrupted run of a
/// SearchSession is bit-identical to the pre-session run-to-completion
/// sweep (test-enforced), and callers that never pause pay nothing for
/// the pause points.
///
//===----------------------------------------------------------------------===//

#include "engine/SearchDriver.h"

#include "engine/Session.h"

using namespace paresy;
using namespace paresy::engine;

SynthResult paresy::engine::runStaged(const StagedQuery &Q, Backend &B) {
  if (Q.immediate())
    return Q.immediateResult();
  SearchSession Session(Q, B);
  return Session.run();
}

SynthResult paresy::engine::runSearch(const Spec &S, const Alphabet &Sigma,
                                      const SynthOptions &Opts, Backend &B) {
  return runStaged(*stage(S, Sigma, Opts), B);
}
