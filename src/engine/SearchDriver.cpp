//===- engine/SearchDriver.cpp - Backend-agnostic cost sweep -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Implementation of Alg. 1 (the cost sweep) and the task enumeration
/// of Alg. 2, plus OnTheFly mode and the REI-with-error variant of
/// Sec. 5.2, independent of how levels execute. See DESIGN.md for the
/// deviations (epsilon seeding, commutative-union halving).
///
//===----------------------------------------------------------------------===//

#include "engine/SearchDriver.h"

#include "engine/Backend.h"
#include "engine/LevelTasks.h"
#include "lang/CharSeq.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

using namespace paresy;
using namespace paresy::engine;

namespace {

/// One synthesis run: owns the staged data, the language cache and the
/// sweep state; delegates level execution to the backend.
class Driver {
public:
  Driver(const Spec &S, const Alphabet &Sigma, const SynthOptions &Opts,
         Backend &B)
      : S(S), Sigma(Sigma), Opts(Opts), B(B) {}

  SynthResult run();

private:
  SynthResult invalid(std::string Message) {
    SynthResult R;
    R.Status = SynthStatus::InvalidInput;
    R.Message = std::move(Message);
    return R;
  }

  SynthResult trivial(const char *Regex, uint64_t Cost) {
    SynthResult R;
    R.Status = SynthStatus::Found;
    R.Regex = Regex;
    R.Cost = Cost;
    return R;
  }

  SynthResult finish(SynthStatus Status, std::string Message = {});
  SynthResult finishFound(const Provenance &Satisfier, uint64_t Cost);
  void fillStats(SynthResult &R);

  /// Runs one level through the backend and folds its outcome into the
  /// sweep state. Returns true when the sweep must stop (the caller
  /// then dispatches on the recorded outcome).
  bool runLevel(uint64_t C);

  const Spec &S;
  const Alphabet &Sigma;
  const SynthOptions &Opts;
  Backend &B;

  std::unique_ptr<Universe> U;
  std::unique_ptr<GuideTable> GT;
  std::unique_ptr<CsAlgebra> Algebra;
  std::unique_ptr<LanguageCache> Cache;
  SearchContext Ctx;
  std::vector<uint64_t> NonEmptyLevels; // Sorted costs with cached CSs.

  SynthStats Stats;
  WallTimer Clock;
  uint64_t KernelOps = 0; // Backend-reported work units.
  LevelOutcome Last;      // Outcome of the most recent level.

  // Cache-full bookkeeping (Sec. 3 "OnTheFly mode").
  bool CacheFilled = false;
  uint64_t FilledCost = 0;
};

SynthResult Driver::run() {
  const CostFn &Cost = Opts.Cost;
  if (!Cost.isValid())
    return invalid("cost function constants must all be positive");
  if (!(Opts.AllowedError >= 0.0 && Opts.AllowedError < 1.0))
    return invalid("allowed error must lie in [0, 1)");
  std::string SpecError;
  if (!S.validate(Sigma, &SpecError))
    return invalid(SpecError);

  unsigned MistakeBudget =
      unsigned(std::floor(Opts.AllowedError * double(S.exampleCount())));

  // Trivial specifications (Alg. 1 lines 4-5). Any solution costs at
  // least c1, and these cost exactly c1.
  if (S.Pos.empty())
    return trivial("@", Cost.Literal);
  if (S.Pos.size() == 1 && S.Pos.front().empty() && MistakeBudget == 0)
    return trivial("#", Cost.Literal);

  // Staging: infix closure, guide table, masks (Sec. 3 "Staging").
  U = std::make_unique<Universe>(S, Opts.PadToPowerOfTwo);
  if (Opts.UseGuideTable) {
    GT = std::make_unique<GuideTable>(*U);
    Stats.GuidePairs = GT->totalPairs();
  }
  Algebra = std::make_unique<CsAlgebra>(*U, GT.get());
  Stats.UniverseSize = U->size();
  Stats.CsWords = U->csWords();
  Stats.PrecomputeSeconds = Clock.seconds();

  Ctx.S = &S;
  Ctx.Sigma = &Sigma;
  Ctx.Opts = &Opts;
  Ctx.U = U.get();
  Ctx.GT = GT.get();
  Ctx.Algebra = Algebra.get();
  Ctx.MistakeBudget = MistakeBudget;
  Ctx.Clock = &Clock;

  // The backend divides the memory budget between the language cache
  // and its own uniqueness structures.
  size_t Capacity = B.planCacheCapacity(Ctx, Opts.MemoryLimitBytes);
  Cache = std::make_unique<LanguageCache>(U->csWords(), Capacity);
  Ctx.Cache = Cache.get();
  B.prepare(Ctx);

  uint64_t MaxCost = Opts.MaxCost ? Opts.MaxCost : overfitCostBound(S, Cost);
  // The overfit bound writes epsilon as the literal '#'; without the
  // epsilon seed that literal is unreachable and the fallback is a
  // question mark, so widen the automatic bound accordingly.
  if (!Opts.MaxCost && !Opts.SeedEpsilon)
    MaxCost += Cost.Question;

  // The completeness horizon once the cache has filled at cost F:
  // every candidate at cost <= F + MinExtra - 1 references only
  // levels < F, which are fully cached, so minimality still holds.
  uint64_t MinExtra = std::min<uint64_t>(
      std::min<uint64_t>(Cost.Question, Cost.Star),
      std::min<uint64_t>(uint64_t(Cost.Concat) + Cost.Literal,
                         uint64_t(Cost.Union) + Cost.Literal));

  // Seed level (Alg. 1 line 6), processed through the same phases as
  // every other level.
  if (runLevel(Cost.Literal)) {
    if (Last.FoundSatisfier)
      return finishFound(Last.Satisfier, Cost.Literal);
    if (Last.TimedOut)
      return finish(SynthStatus::Timeout);
    return finish(SynthStatus::OutOfMemory, Last.AbortReason);
  }

  for (uint64_t C = uint64_t(Cost.Literal) + 1; C <= MaxCost; ++C) {
    if (CacheFilled) {
      uint64_t Horizon =
          Opts.EnableOnTheFly ? FilledCost + MinExtra - 1 : FilledCost;
      if (C > Horizon)
        return finish(SynthStatus::OutOfMemory);
    }
    if (Opts.TimeoutSeconds > 0 && Clock.seconds() > Opts.TimeoutSeconds)
      return finish(SynthStatus::Timeout);

    if (runLevel(C)) {
      // A satisfier takes precedence over resource aborts in the same
      // level: candidates of one level share the same cost, so the
      // first satisfier is minimal even if the level was cut short.
      if (Last.FoundSatisfier)
        return finishFound(Last.Satisfier, C);
      if (Last.TimedOut)
        return finish(SynthStatus::Timeout);
      return finish(SynthStatus::OutOfMemory, Last.AbortReason);
    }
  }
  return finish(SynthStatus::NotFound);
}

bool Driver::runLevel(uint64_t C) {
  LevelTasks Tasks = C == Opts.Cost.Literal
                         ? LevelTasks::seedLevel(Ctx)
                         : LevelTasks::sweepLevel(Ctx, C, NonEmptyLevels);

  Ctx.CandidatesBefore = Stats.CandidatesGenerated;
  uint32_t LevelBegin = uint32_t(Cache->size());
  Last = B.runLevel(Ctx, C, Tasks);
  uint32_t LevelEnd = uint32_t(Cache->size());

  Stats.CandidatesGenerated += Last.Candidates;
  Stats.UniqueLanguages += Last.Unique;
  KernelOps += Last.Ops;
  Cache->setLevel(C, LevelBegin, LevelEnd);
  if (LevelEnd != LevelBegin)
    NonEmptyLevels.push_back(C);
  if (Last.CacheFilled && !CacheFilled) {
    CacheFilled = true;
    FilledCost = C;
    Stats.OnTheFly = Opts.EnableOnTheFly;
  }
  // A satisfier never cuts a level short (all its candidates were
  // generated), so the level still counts as completed; only resource
  // aborts leave it partial.
  if (!Last.TimedOut && !Last.Abort)
    Stats.LastCompletedCost = C;
  return Last.FoundSatisfier || Last.TimedOut || Last.Abort;
}

void Driver::fillStats(SynthResult &R) {
  Stats.CacheEntries = Cache ? Cache->size() : 0;
  Stats.MemoryBytes = (Cache ? Cache->bytesUsed() : 0) + B.auxBytesUsed();
  Stats.PairsVisited = (Algebra ? Algebra->pairsVisited() : 0) + KernelOps;
  Stats.SearchSeconds = Clock.seconds() - Stats.PrecomputeSeconds;
  R.Stats = Stats;
}

SynthResult Driver::finish(SynthStatus Status, std::string Message) {
  SynthResult R;
  R.Status = Status;
  R.Message = std::move(Message);
  fillStats(R);
  return R;
}

SynthResult Driver::finishFound(const Provenance &Satisfier, uint64_t Cost) {
  RegexManager M;
  const Regex *Re = Cache->reconstructCandidate(Satisfier, M);
  SynthResult R;
  R.Status = SynthStatus::Found;
  R.Regex = toString(Re);
  R.Cost = Cost;
  assert(Opts.Cost.of(Re) == Cost &&
         "reconstructed expression must cost exactly its level");
  fillStats(R);
  return R;
}

} // namespace

SynthResult paresy::engine::runSearch(const Spec &S, const Alphabet &Sigma,
                                      const SynthOptions &Opts, Backend &B) {
  return Driver(S, Sigma, Opts, B).run();
}
