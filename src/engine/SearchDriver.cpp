//===- engine/SearchDriver.cpp - Backend-agnostic cost sweep -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Implementation of runStaged() - Alg. 1's cost sweep and the task
/// enumeration of Alg. 2, plus OnTheFly mode and the REI-with-error
/// variant of Sec. 5.2, independent of how levels execute - over the
/// staged artifacts of engine/Staging.h. See DESIGN.md for the
/// deviations (epsilon seeding, commutative-union halving).
///
//===----------------------------------------------------------------------===//

#include "engine/SearchDriver.h"

#include "engine/Backend.h"
#include "engine/LevelTasks.h"
#include "lang/CharSeq.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

using namespace paresy;
using namespace paresy::engine;

namespace {

/// One sweep over a staged query: owns the per-run mutable state (the
/// algebra's counters, the language cache, sweep bookkeeping) and
/// delegates level execution to the backend. The staged artifacts are
/// only read, so any number of Sweeps may share one StagedQuery.
class Sweep {
public:
  Sweep(const StagedQuery &Q, Backend &B)
      : Q(Q), S(Q.spec()), Sigma(Q.alphabet()), Opts(Q.options()), B(B) {}

  SynthResult run();

private:
  SynthResult finish(SynthStatus Status, std::string Message = {});
  SynthResult finishFound(const Provenance &Satisfier, uint64_t Cost);
  void fillStats(SynthResult &R);

  /// Runs one level through the backend and folds its outcome into the
  /// sweep state. Returns true when the sweep must stop (the caller
  /// then dispatches on the recorded outcome).
  bool runLevel(uint64_t C);

  const StagedQuery &Q;
  const Spec &S;
  const Alphabet &Sigma;
  const SynthOptions &Opts;
  Backend &B;

  std::unique_ptr<CsAlgebra> Algebra;
  std::unique_ptr<ShardedStore> Store;
  SearchContext Ctx;
  std::vector<uint64_t> NonEmptyLevels; // Sorted costs with cached CSs.

  SynthStats Stats;
  WallTimer Clock; // The sweep's clock; staging was timed at stage().
  uint64_t KernelOps = 0; // Backend-reported work units.
  LevelOutcome Last;      // Outcome of the most recent level.

  // Cache-full bookkeeping (Sec. 3 "OnTheFly mode").
  bool CacheFilled = false;
  uint64_t FilledCost = 0;
};

SynthResult Sweep::run() {
  const CostFn &Cost = Opts.Cost;
  const Universe &U = *Q.universe();
  const GuideTable *GT = Q.guideTable().get();

  // TimeoutSeconds budgets staging + sweep, exactly as in the fused
  // pre-split pipeline: charge this query's staging time against the
  // deadline up front. Runs off a cached artifact are charged only the
  // (tiny) restage time - reuse widens their effective budget.
  Clock.rewind(Q.stagingSeconds());

  // The algebra is per-run (it counts the split pairs this sweep
  // visits and owns star-fold scratch); the artifacts it reads are the
  // staged, shared ones.
  Algebra = std::make_unique<CsAlgebra>(U, GT);
  if (GT)
    Stats.GuidePairs = GT->totalPairs();
  Stats.UniverseSize = U.size();
  Stats.CsWords = U.csWords();
  Stats.PrecomputeSeconds = Q.stagingSeconds();

  Ctx.S = &S;
  Ctx.Sigma = &Sigma;
  Ctx.Opts = &Opts;
  Ctx.U = &U;
  Ctx.GT = GT;
  Ctx.Algebra = Algebra.get();
  Ctx.MistakeBudget = Q.mistakeBudget();
  Ctx.Clock = &Clock;

  // The backend divides the memory budget between the language store
  // and its own uniqueness structures; the store divides its share -
  // row capacity, and with it MemoryLimitBytes - evenly across the
  // shards (DESIGN.md Sec. 8). One shard reproduces the monolithic
  // cache exactly.
  unsigned Shards = std::max(1u, Opts.Shards);
  size_t Capacity = B.planCacheCapacity(Ctx, Opts.MemoryLimitBytes);
  Store = std::make_unique<ShardedStore>(
      U.csWords(), Shards, std::max<size_t>(1, Capacity / Shards));
  Ctx.Store = Store.get();
  B.prepare(Ctx);

  uint64_t MaxCost = Opts.MaxCost ? Opts.MaxCost : overfitCostBound(S, Cost);
  // The overfit bound writes epsilon as the literal '#'; without the
  // epsilon seed that literal is unreachable and the fallback is a
  // question mark, so widen the automatic bound accordingly.
  if (!Opts.MaxCost && !Opts.SeedEpsilon)
    MaxCost += Cost.Question;

  // The completeness horizon once the cache has filled at cost F:
  // every candidate at cost <= F + MinExtra - 1 references only
  // levels < F, which are fully cached, so minimality still holds.
  uint64_t MinExtra = std::min<uint64_t>(
      std::min<uint64_t>(Cost.Question, Cost.Star),
      std::min<uint64_t>(uint64_t(Cost.Concat) + Cost.Literal,
                         uint64_t(Cost.Union) + Cost.Literal));

  // Seed level (Alg. 1 line 6), processed through the same phases as
  // every other level.
  if (runLevel(Cost.Literal)) {
    if (Last.FoundSatisfier)
      return finishFound(Last.Satisfier, Cost.Literal);
    if (Last.TimedOut)
      return finish(SynthStatus::Timeout);
    return finish(SynthStatus::OutOfMemory, Last.AbortReason);
  }

  for (uint64_t C = uint64_t(Cost.Literal) + 1; C <= MaxCost; ++C) {
    if (CacheFilled) {
      uint64_t Horizon =
          Opts.EnableOnTheFly ? FilledCost + MinExtra - 1 : FilledCost;
      if (C > Horizon)
        return finish(SynthStatus::OutOfMemory);
    }
    if (Opts.TimeoutSeconds > 0 && Clock.seconds() > Opts.TimeoutSeconds)
      return finish(SynthStatus::Timeout);

    if (runLevel(C)) {
      // A satisfier takes precedence over resource aborts in the same
      // level: candidates of one level share the same cost, so the
      // first satisfier is minimal even if the level was cut short.
      if (Last.FoundSatisfier)
        return finishFound(Last.Satisfier, C);
      if (Last.TimedOut)
        return finish(SynthStatus::Timeout);
      return finish(SynthStatus::OutOfMemory, Last.AbortReason);
    }
  }
  return finish(SynthStatus::NotFound);
}

bool Sweep::runLevel(uint64_t C) {
  LevelTasks Tasks = C == Opts.Cost.Literal
                         ? LevelTasks::seedLevel(Ctx)
                         : LevelTasks::sweepLevel(Ctx, C, NonEmptyLevels);

  Ctx.CandidatesBefore = Stats.CandidatesGenerated;
  uint32_t LevelBegin = uint32_t(Store->size());
  Last = B.runLevel(Ctx, C, Tasks);
  uint32_t LevelEnd = uint32_t(Store->size());

  Stats.CandidatesGenerated += Last.Candidates;
  Stats.UniqueLanguages += Last.Unique;
  KernelOps += Last.Ops;
  Store->setLevel(C, LevelBegin, LevelEnd);
  if (LevelEnd != LevelBegin)
    NonEmptyLevels.push_back(C);
  if (Last.CacheFilled && !CacheFilled) {
    CacheFilled = true;
    FilledCost = C;
    Stats.OnTheFly = Opts.EnableOnTheFly;
  }
  // A satisfier never cuts a level short (all its candidates were
  // generated), so the level still counts as completed; only resource
  // aborts leave it partial.
  if (!Last.TimedOut && !Last.Abort)
    Stats.LastCompletedCost = C;
  return Last.FoundSatisfier || Last.TimedOut || Last.Abort;
}

void Sweep::fillStats(SynthResult &R) {
  Stats.CacheEntries = Store ? Store->size() : 0;
  Stats.MemoryBytes = (Store ? Store->bytesUsed() : 0) + B.auxBytesUsed();
  Stats.PairsVisited = (Algebra ? Algebra->pairsVisited() : 0) + KernelOps;
  Stats.SearchSeconds = Clock.seconds() - Stats.PrecomputeSeconds;
  if (Store) {
    Stats.ShardCount = Store->shardCount();
    Stats.ShardRows.resize(Store->shardCount());
    Stats.ShardDropped.resize(Store->shardCount());
    for (unsigned S = 0; S != Store->shardCount(); ++S) {
      Stats.ShardRows[S] = Store->shardRows(S);
      Stats.ShardDropped[S] = Store->shardDropped(S);
    }
  }
  R.Stats = Stats;
}

SynthResult Sweep::finish(SynthStatus Status, std::string Message) {
  SynthResult R;
  R.Status = Status;
  R.Message = std::move(Message);
  fillStats(R);
  return R;
}

SynthResult Sweep::finishFound(const Provenance &Satisfier, uint64_t Cost) {
  RegexManager M;
  const Regex *Re = Store->reconstructCandidate(Satisfier, M);
  SynthResult R;
  R.Status = SynthStatus::Found;
  R.Regex = toString(Re);
  R.Cost = Cost;
  assert(Opts.Cost.of(Re) == Cost &&
         "reconstructed expression must cost exactly its level");
  fillStats(R);
  return R;
}

} // namespace

SynthResult paresy::engine::runStaged(const StagedQuery &Q, Backend &B) {
  if (Q.immediate())
    return Q.immediateResult();
  return Sweep(Q, B).run();
}

SynthResult paresy::engine::runSearch(const Spec &S, const Alphabet &Sigma,
                                      const SynthOptions &Opts, Backend &B) {
  return runStaged(*stage(S, Sigma, Opts), B);
}
