//===- engine/CpuBackend.cpp - Sequential reference backend ------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/CpuBackend.h"

#include "engine/LevelTasks.h"
#include "lang/CharSeq.h"
#include "lang/Universe.h"

#include <algorithm>

using namespace paresy;
using namespace paresy::engine;

size_t CpuBackend::planCacheCapacity(const SearchContext &Ctx,
                                     uint64_t BudgetBytes) {
  // Each cached CS costs its padded row, its provenance, its
  // precomputed hash, and an amortised uniqueness slot+tag (the paper
  // estimates "approx. 3k bits per CS").
  uint64_t PerEntry =
      uint64_t(LanguageCache::strideForWords(Ctx.U->csWords())) *
          sizeof(uint64_t) +
      sizeof(Provenance) + sizeof(uint64_t) + 8;
  uint64_t Capacity = std::max<uint64_t>(16, BudgetBytes / PerEntry);
  return size_t(std::min<uint64_t>(Capacity, 0xfffffffeu));
}

void CpuBackend::prepare(SearchContext &Ctx) {
  Unique = std::make_unique<CsHashSet>(*Ctx.Cache);
  Scratch.assign(Ctx.U->csWords(), 0);
}

LevelOutcome CpuBackend::runLevel(SearchContext &Ctx, uint64_t,
                                  LevelTasks &Tasks) {
  const SynthOptions &Opts = *Ctx.Opts;
  CsAlgebra &Algebra = *Ctx.Algebra;
  LanguageCache &Cache = *Ctx.Cache;
  uint64_t *Cs = Scratch.data();
  LevelOutcome Out;

  Provenance Prov;
  while (Tasks.next(Prov)) {
    // Alg. 2 lines 15-19, one candidate at a time.
    switch (Prov.Kind) {
    case CsOp::Literal:
      Algebra.makeLiteral(Cs, Prov.Symbol);
      break;
    case CsOp::Epsilon:
      Algebra.makeEpsilon(Cs);
      break;
    case CsOp::Empty:
      Algebra.makeEmpty(Cs);
      break;
    case CsOp::Question:
      Algebra.question(Cs, Cache.cs(Prov.Lhs));
      break;
    case CsOp::Star:
      Algebra.star(Cs, Cache.cs(Prov.Lhs));
      break;
    case CsOp::Concat:
      Algebra.concat(Cs, Cache.cs(Prov.Lhs), Cache.cs(Prov.Rhs));
      break;
    case CsOp::Union:
      Algebra.unionOf(Cs, Cache.cs(Prov.Lhs), Cache.cs(Prov.Rhs));
      break;
    }
    ++Out.Candidates;

    if (Opts.TimeoutSeconds > 0 && !Out.TimedOut &&
        ((Ctx.CandidatesBefore + Out.Candidates) & 0xfff) == 0 &&
        Ctx.Clock->seconds() > Opts.TimeoutSeconds)
      Out.TimedOut = true;

    if (!Opts.UniquenessCheck || !Unique->contains(Cs)) {
      ++Out.Unique;
      if (!Out.FoundSatisfier && Algebra.satisfies(Cs, Ctx.MistakeBudget)) {
        Out.FoundSatisfier = true;
        Out.Satisfier = Prov;
      }
      if (!Cache.full()) {
        uint32_t Idx = Cache.append(Cs, Prov);
        if (Opts.UniquenessCheck)
          Unique->insert(Cs, Idx);
      } else {
        // The candidate is dropped from the cache but was fully
        // checked: OnTheFly keeps sweeping while the driver's
        // completeness horizon holds.
        Out.CacheFilled = true;
        if (!Opts.EnableOnTheFly)
          Out.Abort = true; // Paper behaviour: an immediate OOM error.
      }
    }
    if (Out.TimedOut || Out.Abort)
      break;
  }
  return Out;
}
