//===- engine/CpuBackend.cpp - Sequential reference backend ------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/CpuBackend.h"

#include "core/Snapshot.h"
#include "engine/DupLedger.h"
#include "engine/LevelTasks.h"
#include "lang/CharSeq.h"
#include "lang/Universe.h"
#include "support/Bits.h"

#include <algorithm>

using namespace paresy;
using namespace paresy::engine;

size_t CpuBackend::planCacheCapacity(const SearchContext &Ctx,
                                     uint64_t BudgetBytes) {
  // Each cached CS costs its padded row, its provenance, its
  // precomputed hash, and an amortised uniqueness slot+tag (the paper
  // estimates "approx. 3k bits per CS"). A sharded store adds its
  // per-row directory word; one shard keeps no directory.
  uint64_t PerEntry =
      uint64_t(LanguageCache::strideForWords(Ctx.U->csWords())) *
          sizeof(uint64_t) +
      sizeof(Provenance) + sizeof(uint64_t) + 8 +
      (Ctx.Opts->Shards > 1 ? sizeof(uint64_t) : 0);
  if (storeCompressionEnabled(*Ctx.Opts))
    // Sealed rows cost codec bytes, not their padded stride, so the
    // row count is only an address-space bound here - fullness is
    // byte-driven (chargedBytes against planStoreBytes' share), and
    // with a spill directory sealed bytes need not stay resident at
    // all. Bound by the per-row metadata alone and let the byte
    // verdict decide.
    PerEntry = sizeof(Provenance) + sizeof(uint64_t) + 8 +
               (Ctx.Opts->Shards > 1 ? sizeof(uint64_t) : 0);
  uint64_t Capacity = std::max<uint64_t>(16, BudgetBytes / PerEntry);
  return size_t(std::min<uint64_t>(Capacity, 0xfffffffeu));
}

uint64_t CpuBackend::planStoreBytes(const SearchContext &Ctx,
                                    uint64_t BudgetBytes) {
  (void)Ctx;
  // Rows, provenance and hashes are the store's; the remaining quarter
  // funds the uniqueness sets' slots and tags (the same amortised
  // slot+tag charge planCacheCapacity folds into PerEntry).
  return BudgetBytes - BudgetBytes / 4;
}

void CpuBackend::prepare(SearchContext &Ctx) {
  Unique.clear();
  for (unsigned S = 0; S != Ctx.Store->shardCount(); ++S)
    Unique.push_back(std::make_unique<CsHashSet>(Ctx.Store->shard(S)));
  Scratch.assign(Ctx.U->csWords(), 0);
}

uint64_t CpuBackend::auxBytesUsed() const {
  uint64_t Bytes = 0;
  for (const std::unique_ptr<CsHashSet> &Set : Unique)
    Bytes += Set->bytesUsed();
  return Bytes;
}

void CpuBackend::saveState(SnapshotWriter &W) const {
  size_t Section = W.beginSection("cpu");
  W.u32(uint32_t(Unique.size()));
  for (const std::unique_ptr<CsHashSet> &Set : Unique)
    saveCsHashSet(W, *Set);
  W.endSection(Section);
}

bool CpuBackend::loadState(SnapshotReader &R, SearchContext &Ctx) {
  if (!R.enterSection("cpu"))
    return false;
  uint32_t Shards = 0;
  if (!R.u32(Shards) || Shards != Ctx.Store->shardCount()) {
    R.markFailed();
    return false;
  }
  Unique.clear();
  for (unsigned S = 0; S != Shards; ++S) {
    std::unique_ptr<CsHashSet> Set = loadCsHashSet(R, Ctx.Store->shard(S));
    if (!Set)
      return false;
    Unique.push_back(std::move(Set));
  }
  return R.leaveSection();
}

void CpuBackend::rebuildFromStore(SearchContext &Ctx, uint64_t) {
  prepare(Ctx);
  if (!Ctx.Opts->UniquenessCheck)
    return; // The sets exist but the sweep never consults them.
  ShardedStore &Store = *Ctx.Store;
  // Global-id order is the original insertion order (winners commit in
  // candidate-rank order), so the rebuilt sets grow through the same
  // schedule and end up bit-identical to the uninterrupted run's.
  for (size_t Id = 0; Id != Store.size(); ++Id) {
    unsigned Owner = Store.shardOfHash(Store.rowHash(Id));
    Unique[Owner]->insert(Store.cs(Id), Store.localRow(Id));
  }
}

LevelOutcome CpuBackend::runLevel(SearchContext &Ctx, uint64_t,
                                  LevelTasks &Tasks) {
  const SynthOptions &Opts = *Ctx.Opts;
  CsAlgebra &Algebra = *Ctx.Algebra;
  ShardedStore &Store = *Ctx.Store;
  size_t Words = Store.csWords();
  // A single shard with uniqueness off needs no routing hash; every
  // other configuration hashes each candidate exactly once and reuses
  // it for the owner lookup, the membership probe and the append.
  bool Route = Opts.UniquenessCheck || Store.shardCount() > 1;
  uint64_t *Cs = Scratch.data();
  LevelOutcome Out;

  Provenance Prov;
  while (Tasks.next(Prov)) {
    // Alg. 2 lines 15-19, one candidate at a time.
    switch (Prov.Kind) {
    case CsOp::Literal:
      Algebra.makeLiteral(Cs, Prov.Symbol);
      break;
    case CsOp::Epsilon:
      Algebra.makeEpsilon(Cs);
      break;
    case CsOp::Empty:
      Algebra.makeEmpty(Cs);
      break;
    case CsOp::Question:
      Algebra.question(Cs, Store.cs(Prov.Lhs));
      break;
    case CsOp::Star:
      Algebra.star(Cs, Store.cs(Prov.Lhs));
      break;
    case CsOp::Concat:
      Algebra.concat(Cs, Store.cs(Prov.Lhs), Store.cs(Prov.Rhs));
      break;
    case CsOp::Union:
      Algebra.unionOf(Cs, Store.cs(Prov.Lhs), Store.cs(Prov.Rhs));
      break;
    }
    ++Out.Candidates;

    // Timeout and stop-token polls share one cadence; both cut the
    // level short the same way.
    if (((Ctx.CandidatesBefore + Out.Candidates) & 0xfff) == 0) {
      if (Opts.TimeoutSeconds > 0 && !Out.TimedOut &&
          Ctx.Clock->seconds() > Opts.TimeoutSeconds)
        Out.TimedOut = true;
      if (Ctx.Cancel && Ctx.Cancel->load(std::memory_order_relaxed))
        Out.Cancelled = true;
    }

    // Owner-computes routing: the CS's owner shard holds both its
    // uniqueness slot and, if it survives, its row.
    uint64_t Hash = Route ? hashWords(Cs, Words) : 0;
    unsigned Owner = Route ? Store.shardOfHash(Hash) : 0;
    // find() is contains() returning the colliding row: the dup
    // ledger's winner costs nothing beyond the membership probe.
    int64_t WinnerLocal =
        Opts.UniquenessCheck ? Unique[Owner]->find(Cs, Hash) : -1;
    if (WinnerLocal >= 0) {
      if (Ctx.Ledger)
        Ctx.Ledger->record(Prov,
                           Store.globalOf(Owner, uint32_t(WinnerLocal)));
    } else {
      ++Out.Unique;
      if (!Out.FoundSatisfier && Algebra.satisfies(Cs, Ctx.MistakeBudget)) {
        Out.FoundSatisfier = true;
        Out.Satisfier = Prov;
      }
      if (!Store.shardFull(Owner)) {
        uint32_t Id = Route ? Store.append(Owner, Cs, Prov, Hash)
                            : Store.append(Cs, Prov);
        if (Opts.UniquenessCheck)
          Unique[Owner]->insert(Cs, Store.localRow(Id));
      } else {
        // The candidate is dropped from the cache but was fully
        // checked: OnTheFly keeps sweeping while the driver's
        // completeness horizon holds. With a winner missing from the
        // store, later dup sets are unknowable - the ledger's
        // coverage ends here.
        Store.noteDropped(Owner);
        Out.CacheFilled = true;
        if (Ctx.Ledger)
          Ctx.Ledger->markBroken();
        if (!Opts.EnableOnTheFly)
          Out.Abort = true; // Paper behaviour: an immediate OOM error.
      }
    }
    if (Out.TimedOut || Out.Cancelled || Out.Abort)
      break;
  }
  return Out;
}
