//===- engine/HeteroBackend.h - CPU + GPU-sim co-scheduling backend ----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heterogeneous backend ("hetero"): one cost level executed by
/// *two* engines at once - the host CPU pool of the cpu-parallel
/// backend and the simulated device of the gpusim backend - instead
/// of leaving one of them idle. The shape follows dfc-opencl's
/// heterogeneous design: every kernel grid is chopped into
/// shard-granular grains, a static split seeds each engine's range of
/// a shared work-stealing queue (support/WorkQueue.h), and whichever
/// engine finishes first steals grains from the other, so the level
/// ends when *both* are out of work, never when the slower one is.
/// The split ratio is re-estimated level to level by an EWMA of each
/// engine's observed throughput - the CPU side from measured kernel
/// rates, the GPU side from the gpusim/PerfModel device model - so
/// the seed converges to the engines' real speed ratio and stealing
/// only has to correct the residual error. The EWMA is kept *per
/// kernel class* (generate/unique/check/compact), not blended: the
/// engines' relative speed differs by orders of magnitude between
/// kernels (the host is strongest on the compute-dense generate
/// inner loop, weakest on the hash-probe kernels), and per-kernel
/// splits let each engine specialise in the grids it is relatively
/// fast at - the classic heterogeneous-scheduling win that a single
/// blended ratio forfeits.
///
/// Results are bit-identical to every single-engine backend at every
/// shard count, for free: the batched pipeline's winners are
/// schedule-independent minima and the rank-ordered exchange pass
/// (BatchedBackend.h) assigns global ids on the host, so *which*
/// engine computed a grain is unobservable in the output
/// (test-enforced by tests/hetero_test.cpp).
///
/// This is the seam a real CUDA/OpenCL backend slots into: replace
/// the GPU-side pool with device launches and the queue becomes the
/// host-side scheduler of a genuine CPU+GPU co-execution.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_HETEROBACKEND_H
#define PARESY_ENGINE_HETEROBACKEND_H

#include "engine/BatchedBackend.h"
#include "support/ThreadPool.h"

namespace paresy {
namespace engine {

/// Construction-time knobs of the heterogeneous backend.
struct HeteroOptions {
  /// Threads of the CPU-side engine's pool (0 = the grains run on the
  /// draining thread alone).
  unsigned CpuWorkers = 0;
  /// Threads of the GPU-side engine's pool (0 = its grains run on the
  /// one thread that drives the simulated device).
  unsigned GpuWorkers = 0;
  /// No concurrency at all: both engines drain their seeded ranges
  /// sequentially on the caller (no helper thread, no stealing). Used
  /// when an outer pool already owns the parallelism
  /// (BackendConfig::InlineKernels); results are identical either way.
  bool InlineKernels = false;
  /// Fraction of each grid initially assigned to the CPU engine
  /// (seeding every kernel class); the per-kernel EWMA replaces it
  /// from each kernel's second observed level on.
  double InitialCpuShare = 0.5;
  /// Smoothing factor of the per-engine throughput EWMA in (0, 1];
  /// higher weighs the latest level more.
  double EwmaAlpha = 0.4;
  /// Tasks per work-stealing grain. Small enough that stealing can
  /// balance a skewed split, large enough that a grain amortises its
  /// queue claim.
  size_t GrainTasks = 256;
  /// Timing model of the GPU-side engine (defaults to the gpusim
  /// A100 model).
  gpusim::DeviceSpec GpuSpec;
};

/// The batched kernel pipeline co-scheduled across a host CPU engine
/// and the simulated GPU engine with work stealing.
class HeteroBackend : public BatchedBackend {
public:
  explicit HeteroBackend(const HeteroOptions &Options = {});

  std::string_view name() const override { return "hetero"; }
  size_t planCacheCapacity(const SearchContext &Ctx,
                           uint64_t BudgetBytes) override;
  void prepare(SearchContext &Ctx) override;
  LevelOutcome runLevel(SearchContext &Ctx, uint64_t LevelCost,
                        LevelTasks &Tasks) override;
  void addBackendStats(SynthStats &Stats) const override;

  /// The GPU-side engine's device accounting (modelled seconds, ops).
  const gpusim::PerfModel &gpuPerf() const { return GpuModel; }
  /// The current adaptive CPU share of a grid's grains, averaged over
  /// the kernel classes weighted by their observed work.
  double cpuShare() const;

protected:
  /// Co-schedules the grid: grains seeded CpuShare/1-CpuShare across
  /// the two engines' sides of a WorkQueue, drained concurrently with
  /// stealing (sequentially under InlineKernels).
  uint64_t launch(const char *Name, size_t Tasks,
                  const std::function<uint64_t(size_t)> &Body) override;

private:
  /// Adaptive schedule state of one kernel class. The engines' speed
  /// ratio is kernel-specific, so each class carries its own
  /// throughput EWMAs and split ratio.
  struct KernelSched {
    const char *Name;
    double Share;       ///< CPU fraction of this kernel's grains.
    double CpuEwma = 0; ///< ops/s, measured (CPU engine).
    double GpuEwma = 0; ///< ops/s, modelled (GPU engine).
    uint64_t OpsTotal = 0; ///< Work weight for the blended report.
    // Per-level accumulators feeding the EWMAs.
    double CpuSecsLevel = 0;
    double GpuSecsLevel = 0;
    uint64_t CpuOpsLevel = 0;
    uint64_t GpuOpsLevel = 0;
  };

  /// The schedule entry of kernel \p Name (kernel names are literals,
  /// so pointer identity is the fast path).
  KernelSched &kernelSched(const char *Name);

  /// Accounts one launch's per-engine outcome: totals, the GPU device
  /// model, the kernel's level accumulators, and the co-scheduled
  /// (concurrent-execution) time.
  void account(KernelSched &K, uint64_t CpuT, uint64_t CpuO,
               double CpuSecs, uint64_t GpuT, uint64_t GpuO,
               uint64_t StolenNow);

  HeteroOptions Opts;
  ThreadPool CpuPool;
  ThreadPool GpuPool;
  gpusim::PerfModel GpuModel;

  // Adaptive schedule state, one entry per kernel class seen.
  std::vector<KernelSched> Kernels;

  // Run totals, reported through addBackendStats().
  uint64_t CpuTasksTotal = 0;
  uint64_t GpuTasksTotal = 0;
  uint64_t CpuOpsTotal = 0;
  uint64_t GpuOpsTotal = 0;
  uint64_t StealsTotal = 0;
  double CpuBusyTotal = 0;
  double CoschedSeconds = 0;
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_HETEROBACKEND_H
