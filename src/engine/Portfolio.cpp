//===- engine/Portfolio.cpp - Racing equivalent sweep configurations ---------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Portfolio.h"

#include "engine/Backend.h"
#include "engine/Session.h"
#include "support/Timer.h"

#include <atomic>
#include <thread>

using namespace paresy;
using namespace paresy::engine;

namespace {

struct ArmPlan {
  std::string Label;
  SynthOptions Opts;
};

/// The standard arm set: the base configuration plus one flip of each
/// result-preserving sweep option. Every arm returns the same regex
/// and cost when it Finds (ablation/shard invariants, test-enforced),
/// so the race is deterministic in content.
std::vector<ArmPlan> planArms(const SynthOptions &Base) {
  std::vector<ArmPlan> Arms;
  SynthOptions Common = Base;
  Common.Portfolio = false; // Arms never recurse into the racer.

  Arms.push_back({"base", Common});

  ArmPlan Guide{Common.UseGuideTable ? "no-guide" : "guide", Common};
  Guide.Opts.UseGuideTable = !Common.UseGuideTable;
  Arms.push_back(std::move(Guide));

  ArmPlan Shard{Common.Shards <= 1 ? "shards=4" : "shards=1", Common};
  Shard.Opts.Shards = Common.Shards <= 1 ? 4 : 1;
  Arms.push_back(std::move(Shard));

  ArmPlan Pad{Common.PadToPowerOfTwo ? "no-pad" : "pad", Common};
  Pad.Opts.PadToPowerOfTwo = !Common.PadToPowerOfTwo;
  Arms.push_back(std::move(Pad));
  return Arms;
}

} // namespace

PortfolioOutcome
paresy::engine::runPortfolio(std::shared_ptr<const StagedQuery> Q,
                             std::string_view BackendName,
                             const BackendConfig &Config) {
  PortfolioOutcome Out;
  if (!Q) {
    Out.Result.Status = SynthStatus::InvalidInput;
    Out.Result.Message = "portfolio: no staged query";
    return Out;
  }
  if (Q->immediate()) {
    // Nothing to race: staging already resolved the query.
    Out.Result = Q->immediateResult();
    return Out;
  }

  std::vector<ArmPlan> Plans = planArms(Q->options());
  size_t N = Plans.size();

  // Divide the machine across the arms: with no explicit worker count
  // the arms themselves are the parallelism and each runs its kernels
  // inline; otherwise each arm gets an equal share of the pool.
  BackendConfig ArmConfig = Config;
  if (Config.Workers == 0)
    ArmConfig.InlineKernels = true;
  else
    ArmConfig.Workers = std::max(1u, Config.Workers / unsigned(N));

  // Build every arm up front so a bad backend name fails before any
  // thread starts.
  std::vector<std::unique_ptr<SearchSession>> Sessions;
  for (const ArmPlan &Plan : Plans) {
    std::unique_ptr<Backend> B = createBackend(BackendName, ArmConfig);
    if (!B) {
      Out.Result.Status = SynthStatus::InvalidInput;
      Out.Result.Message = unknownBackendMessage(BackendName);
      return Out;
    }
    std::shared_ptr<const StagedQuery> ArmQ = restage(*Q, Plan.Opts);
    Sessions.push_back(
        std::make_unique<SearchSession>(std::move(ArmQ), std::move(B)));
  }

  std::atomic<bool> Stop{false};
  std::vector<SynthResult> Results(N);
  Out.Arms.resize(N);
  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    Out.Arms[I].Label = Plans[I].Label;
    Sessions[I]->setCancelToken(&Stop);
    Threads.emplace_back([&, I] {
      WallTimer T;
      Results[I] = Sessions[I]->run();
      Out.Arms[I].Seconds = T.seconds();
      // First Find wins the race; every other arm winds down at its
      // next poll point. (Found results are identical across arms, so
      // the time race never changes the returned content.)
      if (Results[I].found())
        Stop.store(true, std::memory_order_relaxed);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  size_t WinnerIdx = N;
  for (size_t I = 0; I != N; ++I) {
    Out.Arms[I].Status = Results[I].Status;
    Out.Arms[I].LevelsRun = Results[I].Stats.LevelsRun;
    if (WinnerIdx == N && Results[I].found())
      WinnerIdx = I;
  }
  if (WinnerIdx == N) {
    // No arm found an answer. Nobody set the stop token, so no arm was
    // cancelled: report the base configuration's (deterministic)
    // outcome at the given budgets.
    WinnerIdx = 0;
  }
  Out.Arms[WinnerIdx].Winner = true;
  Out.Result = Results[WinnerIdx];
  return Out;
}
