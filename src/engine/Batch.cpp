//===- engine/Batch.cpp - Batched synthesis over a shared pool ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Batch.h"

#include "support/ThreadPool.h"

using namespace paresy;
using namespace paresy::engine;

std::vector<SynthResult>
paresy::engine::synthesizeBatch(const std::vector<Spec> &Specs,
                                const Alphabet &Sigma,
                                const SynthOptions &Opts,
                                const BatchOptions &Batch) {
  std::vector<SynthResult> Results(Specs.size());
  // Each spec gets a private backend instance created inside its task:
  // backends are single-run, and a worker-confined instance needs no
  // locking. Kernel execution is forced inline (Workers = 0 in the
  // config) because the spec tasks already occupy the pool.
  BackendConfig Config;
  Config.InlineKernels = true;
  ThreadPool Pool(Batch.Workers);
  Pool.parallelFor(Specs.size(), [&](size_t I) {
    Results[I] = synthesizeWith(Batch.Backend, Specs[I], Sigma, Opts, Config);
  });
  return Results;
}
