//===- engine/Batch.cpp - Batched synthesis over a shared pool ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// synthesizeBatch() is a one-shot SynthService: one service instance
/// bound to the batch's backend, the whole spec list submitted, the
/// futures collected in input order. The batch thereby inherits the
/// service's request-level machinery - duplicate specs in one batch
/// run a single search (coalesced or cache-hit) and every duplicate
/// receives the identical result.
///
//===----------------------------------------------------------------------===//

#include "engine/Batch.h"

#include "service/SynthService.h"

#include <algorithm>

using namespace paresy;
using namespace paresy::engine;

std::vector<SynthResult>
paresy::engine::synthesizeBatch(const std::vector<Spec> &Specs,
                                const Alphabet &Sigma,
                                const SynthOptions &Opts,
                                const BatchOptions &Batch) {
  service::ServiceOptions SOpts;
  SOpts.Backend = Batch.Backend;
  SOpts.Workers = Batch.Workers;
  // The batch submits everything up front; size the cache and the
  // queue so no request ever stalls on either.
  SOpts.ResultCacheCapacity = Specs.size();
  SOpts.MaxQueueDepth = std::max<size_t>(Specs.size(), 1);
  // Kernel execution stays inline on the request workers (spec-level
  // parallelism replaces kernel-level parallelism; pools do not nest).
  SOpts.Kernels.InlineKernels = true;
  service::SynthService Service(std::move(SOpts));
  return Service.synthesizeAll(Specs, Sigma, Opts);
}
