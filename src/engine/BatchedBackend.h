//===- engine/BatchedBackend.h - Bulk-synchronous kernel pipeline ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-parallel execution of one cost level, shared by the
/// host-parallel backend and the GPU simulator (Sec. 3 "GPU language
/// cache implementation"), over the hash-partitioned store of DESIGN.md
/// Sec. 8. Each level runs in batches of independent tasks through the
/// kernel pipeline:
///
///   1. generate   - one task per candidate, CS into temporary
///                   storage (the paper's grey area (a)); when the
///                   state is sharded (or uniqueness is on) the task
///                   also hashes its CS and computes its owner shard -
///                   the partition step of a multi-device all-to-all;
///   2. uniqueness - concurrent insert into the *owner shard's*
///                   WarpHashSet, min-id winners;
///   3. check      - winners tested against the spec, atomic-min on
///                   the first satisfier;
///   4. exchange   - a candidate-rank-ordered host pass assigning
///                   every winner its global id and its owner-shard
///                   row (the all-to-all's metadata pass - a
///                   per-shard multi-split the old compaction scan
///                   could not express);
///   5. compact    - winners copied into their owner shards' segments
///                   (the paper's blue area (b)), concurrently across
///                   shards and rows.
///
/// Candidate ids are enumeration ranks, and the uniqueness winners
/// (atomic min over inserter ids), the chosen satisfier (atomic min
/// over candidate ids) and the global row ids (assigned in rank order)
/// are all schedule- and shard-count-independent, so results are
/// identical for any worker count - and, while the memory budget
/// holds, any shard count (under pressure per-shard fill order
/// differs; see DESIGN.md Sec. 8) - and identical to the sequential
/// backend (asserted by tests/engine_test.cpp and
/// tests/shard_test.cpp).
///
/// Subclasses choose the execution substrate (thread pool vs simulated
/// device with modelled timing) and the memory-partitioning policy.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_BATCHEDBACKEND_H
#define PARESY_ENGINE_BATCHEDBACKEND_H

#include "engine/Backend.h"
#include "gpusim/Device.h"
#include "gpusim/WarpHashSet.h"

#include <functional>
#include <memory>
#include <vector>

namespace paresy {
namespace engine {

/// Backend base class executing levels as batched kernels on a
/// (possibly simulated) data-parallel device.
class BatchedBackend : public Backend {
public:
  /// \p Spec is the timing model of the underlying device (ignored by
  /// callers that never read the perf counters); \p Workers host
  /// threads execute the grids (0 = inline); \p BatchTasks bounds
  /// temporary storage per kernel batch.
  BatchedBackend(const gpusim::DeviceSpec &Spec, unsigned Workers,
                 size_t BatchTasks);

  void prepare(SearchContext &Ctx) override;
  LevelOutcome runLevel(SearchContext &Ctx, uint64_t LevelCost,
                        LevelTasks &Tasks) override;
  uint64_t auxBytesUsed() const override;

  /// Session support. The per-shard WarpHashSets and the candidate-id
  /// cursor serialize exactly. A store-based rebuild re-inserts the
  /// committed rows keyed by their global ids; stored winner ids then
  /// differ from the uninterrupted run's candidate ids, which is
  /// invisible to later levels - a rebuilt entry only has to lose the
  /// min-id winner race against future candidates, and global row ids
  /// are strictly below every future candidate id.
  bool supportsResume() const override { return true; }

  /// processBatch() journals pruned duplicates through a post-exchange
  /// rank-order pass (winner slots rewritten to global row ids, dups
  /// recorded against them).
  bool supportsDeltaLedger() const override { return true; }
  void saveState(SnapshotWriter &W) const override;
  bool loadState(SnapshotReader &R, SearchContext &Ctx) override;
  void rebuildFromStore(SearchContext &Ctx,
                        uint64_t NextCandidateId) override;

  /// Modelled-device accounting (meaningful for the GPU simulator).
  const gpusim::PerfModel &perf() const { return Dev.perf(); }
  unsigned workerCount() const { return Dev.workerCount(); }

protected:
  /// The pipeline's memory partition - ~60% language cache rows, ~30%
  /// hash set slots, the rest temporaries - shared by every batched
  /// backend. Stores the hash capacity (see HashCapacity) and returns
  /// the cache row capacity (charging the store's per-row directory
  /// word when sharding is on). Subclasses call this from
  /// planCacheCapacity() with their budget (device-capped or not).
  size_t splitBudget(const SearchContext &Ctx, uint64_t BudgetBytes);

public:
  /// The store's byte share of splitBudget's partition (60%).
  uint64_t planStoreBytes(const SearchContext &Ctx,
                          uint64_t BudgetBytes) override;

protected:

  /// Subclasses set this from planCacheCapacity() when dividing the
  /// memory budget; prepare() divides it across the per-shard hash
  /// sets it allocates.
  size_t HashCapacity = 32;

  /// The kernel-launch seam every pipeline stage goes through.
  /// \p Body(TaskIdx) runs once per task in [0, Tasks) and returns its
  /// work units; the call blocks until the grid finished and returns
  /// the aggregate. The default executes on this backend's device;
  /// the heterogeneous backend overrides it to co-schedule the grid
  /// across two engines (task results must stay - and are -
  /// schedule-independent, so overrides never change results).
  virtual uint64_t launch(const char *Name, size_t Tasks,
                          const std::function<uint64_t(size_t)> &Body) {
    return Dev.launch(Name, Tasks, Body);
  }

private:
  /// Runs one batch of tasks through the kernels. Returns false when
  /// the run must stop (a shard's hash set full, or a shard's cache
  /// segment full with OnTheFly disabled).
  bool processBatch(SearchContext &Ctx, LevelOutcome &Out);

  gpusim::Device Dev;
  size_t BatchTasks;
  /// One uniqueness set per shard (owner-computes by CS hash).
  std::vector<std::unique_ptr<gpusim::WarpHashSet>> HashSets;

  // Device buffers reused across batches.
  std::vector<Provenance> Batch;      // Tasks pulled for this batch.
  std::vector<uint64_t> TempCs;       // batch x CsWords.
  std::vector<uint64_t> TaskHash;     // CS hash per task (routing).
  std::vector<uint32_t> TaskShard;    // Owner shard per task.
  std::vector<int64_t> TaskSlot;      // Hash slot per task.
  std::vector<uint32_t> WinnerFlag;   // 1 iff task is unique winner.
  std::vector<uint32_t> RowId;        // Global row per winner (or none).

  uint64_t IdBase = 0; // Candidate id of the current batch's task 0.
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_BATCHEDBACKEND_H
