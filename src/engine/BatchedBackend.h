//===- engine/BatchedBackend.h - Bulk-synchronous kernel pipeline ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-parallel execution of one cost level, shared by the
/// host-parallel backend and the GPU simulator (Sec. 3 "GPU language
/// cache implementation"). Each level runs in batches of independent
/// tasks through five kernels:
///
///   1. generate   - one task per candidate, CS into temporary
///                   storage (the paper's grey area (a));
///   2. uniqueness - concurrent WarpHashSet insert, min-id winners;
///   3. check      - winners tested against the spec, atomic-min on
///                   the first satisfier;
///   4. scan + compact - winners copied contiguously into the
///                   language cache (the paper's blue area (b)).
///
/// Candidate ids are enumeration ranks, and both the uniqueness
/// winners (atomic min over inserter ids) and the chosen satisfier
/// (atomic min over candidate ids) are schedule-independent minima, so
/// results are identical for any worker count - and identical to the
/// sequential backend (asserted by tests/engine_test.cpp).
///
/// Subclasses choose the execution substrate (thread pool vs simulated
/// device with modelled timing) and the memory-partitioning policy.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_BATCHEDBACKEND_H
#define PARESY_ENGINE_BATCHEDBACKEND_H

#include "engine/Backend.h"
#include "gpusim/Device.h"
#include "gpusim/WarpHashSet.h"

#include <memory>

namespace paresy {
namespace engine {

/// Backend base class executing levels as batched kernels on a
/// (possibly simulated) data-parallel device.
class BatchedBackend : public Backend {
public:
  /// \p Spec is the timing model of the underlying device (ignored by
  /// callers that never read the perf counters); \p Workers host
  /// threads execute the grids (0 = inline); \p BatchTasks bounds
  /// temporary storage per kernel batch.
  BatchedBackend(const gpusim::DeviceSpec &Spec, unsigned Workers,
                 size_t BatchTasks);

  void prepare(SearchContext &Ctx) override;
  LevelOutcome runLevel(SearchContext &Ctx, uint64_t LevelCost,
                        LevelTasks &Tasks) override;
  uint64_t auxBytesUsed() const override {
    return HashSet ? HashSet->bytesUsed() : 0;
  }

  /// Modelled-device accounting (meaningful for the GPU simulator).
  const gpusim::PerfModel &perf() const { return Dev.perf(); }
  unsigned workerCount() const { return Dev.workerCount(); }

protected:
  /// The pipeline's memory partition - ~60% language cache rows, ~30%
  /// hash set slots, the rest temporaries - shared by every batched
  /// backend. Stores the hash capacity (see HashCapacity) and returns
  /// the cache row capacity. Subclasses call this from
  /// planCacheCapacity() with their budget (device-capped or not).
  size_t splitBudget(size_t CsWords, uint64_t BudgetBytes);

  /// Subclasses set this from planCacheCapacity() when dividing the
  /// memory budget; prepare() allocates the hash set with it.
  size_t HashCapacity = 32;

private:
  /// Runs one batch of tasks through the kernels. Returns false when
  /// the run must stop (hash set full, or cache full with OnTheFly
  /// disabled).
  bool processBatch(SearchContext &Ctx, LevelOutcome &Out);

  gpusim::Device Dev;
  size_t BatchTasks;
  std::unique_ptr<gpusim::WarpHashSet> HashSet;

  // Device buffers reused across batches.
  std::vector<Provenance> Batch;      // Tasks pulled for this batch.
  std::vector<uint64_t> TempCs;       // batch x CsWords.
  std::vector<int64_t> TaskSlot;      // Hash slot per task.
  std::vector<uint32_t> WinnerFlag;   // 1 iff task is unique winner.
  std::vector<uint64_t> WinnerOffset; // Exclusive scan of WinnerFlag.

  uint64_t IdBase = 0; // Candidate id of the current batch's task 0.
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_BATCHEDBACKEND_H
