//===- engine/Backend.cpp - Pluggable search-backend interface ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Backend.h"

#include "core/Snapshot.h"

using namespace paresy;
using namespace paresy::engine;

// Anchor the vtable.
Backend::~Backend() = default;

// Defaults for backends predating (or opting out of) resumable
// sessions: nothing to save, nothing restorable. Guarded by
// supportsResume() so the session layer never relies on them.
void Backend::saveState(SnapshotWriter &) const {}

bool Backend::loadState(SnapshotReader &R, SearchContext &) {
  R.markFailed();
  return false;
}

void Backend::rebuildFromStore(SearchContext &, uint64_t) {}
