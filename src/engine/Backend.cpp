//===- engine/Backend.cpp - Pluggable search-backend interface ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Backend.h"

using namespace paresy;
using namespace paresy::engine;

// Anchor the vtable.
Backend::~Backend() = default;
