//===- engine/Staging.cpp - Staging as a first-class immutable artifact ------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Staging.h"

#include "core/ShardedStore.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "support/Bits.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <string>

using namespace paresy;
using namespace paresy::engine;

namespace {

SynthResult invalidResult(std::string Message) {
  SynthResult R;
  R.Status = SynthStatus::InvalidInput;
  R.Message = std::move(Message);
  return R;
}

SynthResult trivialResult(const char *Regex, uint64_t Cost) {
  SynthResult R;
  R.Status = SynthStatus::Found;
  R.Regex = Regex;
  R.Cost = Cost;
  return R;
}

unsigned mistakeBudgetOf(const Spec &S, const SynthOptions &Opts) {
  return unsigned(
      std::floor(Opts.AllowedError * double(S.exampleCount())));
}

} // namespace

uint64_t StagedQuery::stagedBytes() const {
  if (!U)
    return 0;
  uint64_t Bytes = 0;
  for (const std::string &W : U->words())
    Bytes += sizeof(std::string) + W.capacity() +
             48; // Index map node estimate.
  Bytes += (U->posMask().size() + U->negMask().size()) * sizeof(uint64_t);
  if (GT)
    Bytes += GT->totalPairs() * sizeof(SplitPair) +
             (GT->rowCount() + 1) * sizeof(uint32_t);
  return Bytes;
}

bool paresy::engine::resolveWithoutSearch(const Spec &S,
                                          const Alphabet &Sigma,
                                          const SynthOptions &Opts,
                                          SynthResult &Out) {
  if (!Opts.Cost.isValid()) {
    Out = invalidResult("cost function constants must all be positive");
    return true;
  }
  if (!(Opts.AllowedError >= 0.0 && Opts.AllowedError < 1.0)) {
    Out = invalidResult("allowed error must lie in [0, 1)");
    return true;
  }
  if (Opts.Shards > ShardedStore::MaxShards) {
    Out = invalidResult("shard count must be at most " +
                        std::to_string(ShardedStore::MaxShards) +
                        " (0 selects the default)");
    return true;
  }
  std::string SpecError;
  if (!S.validate(Sigma, &SpecError)) {
    Out = invalidResult(std::move(SpecError));
    return true;
  }

  // Trivial specifications (Alg. 1 lines 4-5). Any solution costs at
  // least c1, and these cost exactly c1.
  if (S.Pos.empty()) {
    Out = trivialResult("@", Opts.Cost.Literal);
    return true;
  }
  if (S.Pos.size() == 1 && S.Pos.front().empty() &&
      mistakeBudgetOf(S, Opts) == 0) {
    Out = trivialResult("#", Opts.Cost.Literal);
    return true;
  }
  return false;
}

std::shared_ptr<const StagedQuery>
paresy::engine::stage(const Spec &S, const Alphabet &Sigma,
                      const SynthOptions &Opts) {
  std::shared_ptr<StagedQuery> Q(new StagedQuery);
  Q->S = S;
  Q->Sigma = Sigma;
  Q->Opts = Opts;
  if (resolveWithoutSearch(S, Sigma, Opts, Q->Immediate)) {
    Q->IsImmediate = true;
    return Q;
  }
  Q->MistakeBudget = mistakeBudgetOf(S, Opts);

  // Staging proper: infix closure, guide table (Sec. 3 "Staging").
  WallTimer Clock;
  Q->U = std::make_shared<const Universe>(S, Opts.PadToPowerOfTwo);
  if (Opts.UseGuideTable)
    Q->GT = std::make_shared<const GuideTable>(*Q->U);
  Q->StagingSeconds = Clock.seconds();
  return Q;
}

std::shared_ptr<const StagedQuery>
paresy::engine::restage(const StagedQuery &Base,
                        const SynthOptions &NewOpts) {
  // Universe geometry must match to reuse anything; immediate bases
  // staged nothing worth sharing. A differing PadToPowerOfTwo flag
  // only changes the geometry when padding actually widens this
  // universe - a closure whose size is already a power of two has
  // identical padded and unpadded layouts, so the artifacts stay
  // shareable (cheap resumes must never silently re-stage).
  bool PadIsNoOp = false;
  if (Base.universe()) {
    size_t Bits = std::max<size_t>(1, Base.universe()->size());
    PadIsNoOp = size_t(nextPowerOfTwo(Bits)) == Bits;
  }
  bool SameGeometry =
      Base.universe() &&
      (NewOpts.PadToPowerOfTwo == Base.options().PadToPowerOfTwo ||
       PadIsNoOp);
  if (!SameGeometry)
    return stage(Base.spec(), Base.alphabet(), NewOpts);

  std::shared_ptr<StagedQuery> Q(new StagedQuery);
  Q->S = Base.spec();
  Q->Sigma = Base.alphabet();
  Q->Opts = NewOpts;
  if (resolveWithoutSearch(Q->S, Q->Sigma, NewOpts, Q->Immediate)) {
    Q->IsImmediate = true;
    return Q;
  }
  Q->MistakeBudget = mistakeBudgetOf(Q->S, NewOpts);

  WallTimer Clock;
  Q->U = Base.universe();
  if (NewOpts.UseGuideTable)
    Q->GT = Base.guideTable()
                ? Base.guideTable()
                : std::make_shared<const GuideTable>(*Q->U);
  // Shared artifacts cost this query (almost) nothing to stage;
  // report only what restaging actually spent.
  Q->StagingSeconds = Clock.seconds();
  return Q;
}
