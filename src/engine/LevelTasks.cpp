//===- engine/LevelTasks.cpp - Lazy per-level task enumeration ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/LevelTasks.h"

#include "lang/Alphabet.h"

using namespace paresy;
using namespace paresy::engine;

LevelTasks LevelTasks::seedLevel(const SearchContext &Ctx) {
  LevelTasks T;
  T.Ctx = &Ctx;
  T.P = Phase::SeedLiteral;
  T.I = 0;
  T.IEnd = uint32_t(Ctx.Sigma->size());
  return T;
}

LevelTasks LevelTasks::sweepLevel(const SearchContext &Ctx, uint64_t C,
                                  const std::vector<uint64_t> &NonEmpty) {
  LevelTasks T;
  T.Ctx = &Ctx;
  T.Levels = &NonEmpty;
  T.C = C;
  T.P = Phase::Question;
  if (C > Ctx.Opts->Cost.Question)
    std::tie(T.I, T.IEnd) = Ctx.Store->level(C - Ctx.Opts->Cost.Question);
  return T;
}

bool LevelTasks::next(Provenance &Out) {
  const CostFn &Cost = Ctx->Opts->Cost;
  for (;;) {
    switch (P) {
    case Phase::SeedLiteral:
      if (I < IEnd) {
        Out = Provenance{CsOp::Literal, Ctx->Sigma->symbol(I), 0, 0};
        ++I;
        return true;
      }
      P = Phase::SeedEpsilon;
      break;

    case Phase::SeedEpsilon:
      P = Phase::SeedEmpty;
      if (Ctx->Opts->SeedEpsilon) {
        Out = Provenance{CsOp::Epsilon, 0, 0, 0};
        return true;
      }
      break;

    case Phase::SeedEmpty:
      P = Phase::Done;
      if (Ctx->MistakeBudget > 0) {
        Out = Provenance{CsOp::Empty, 0, 0, 0};
        return true;
      }
      break;

    case Phase::Question:
      if (I < IEnd) {
        Out = Provenance{CsOp::Question, 0, I, 0};
        ++I;
        return true;
      }
      I = IEnd = 0;
      if (C > Cost.Star)
        std::tie(I, IEnd) = Ctx->Store->level(C - Cost.Star);
      P = Phase::Star;
      break;

    case Phase::Star:
      if (I < IEnd) {
        Out = Provenance{CsOp::Star, 0, I, 0};
        ++I;
        return true;
      }
      LevelIdx = 0;
      P = Phase::ConcatLevels;
      break;

    case Phase::ConcatLevels: {
      // Alg. 2 line 5: all ordered cost splits L + R = Budget,
      // restricted to the non-empty cached levels.
      bool Entered = false;
      if (C > Cost.Concat) {
        uint64_t Budget = C - Cost.Concat;
        while (LevelIdx != Levels->size()) {
          uint64_t LC = (*Levels)[LevelIdx];
          if (LC + Cost.Literal > Budget)
            break;
          ++LevelIdx;
          auto [Lb, Le] = Ctx->Store->level(LC);
          auto [Rb, Re] = Ctx->Store->level(Budget - LC);
          if (Lb == Le || Rb == Re)
            continue;
          LB = Lb;
          LE = Le;
          RB = Rb;
          RE = Re;
          I = LB;
          J = RB;
          P = Phase::Concat;
          Entered = true;
          break;
        }
      }
      if (!Entered) {
        LevelIdx = 0;
        P = Phase::UnionLevels;
      }
      break;
    }

    case Phase::Concat:
      if (I != LE) {
        Out = Provenance{CsOp::Concat, 0, I, J};
        if (++J == RE) {
          ++I;
          J = RB;
        }
        return true;
      }
      P = Phase::ConcatLevels;
      break;

    case Phase::UnionLevels: {
      // Union is commutative and idempotent, so only splits with
      // L <= R and, within one level, only pairs I < J are generated
      // (a deviation from the paper's "all L, R" that halves the work
      // but changes neither the reachable languages nor minimality).
      bool Entered = false;
      if (C > Cost.Union) {
        uint64_t Budget = C - Cost.Union;
        while (LevelIdx != Levels->size()) {
          uint64_t LC = (*Levels)[LevelIdx];
          if (2 * LC > Budget)
            break;
          ++LevelIdx;
          uint64_t RC = Budget - LC;
          auto [Lb, Le] = Ctx->Store->level(LC);
          auto [Rb, Re] = Ctx->Store->level(RC);
          if (Lb == Le || Rb == Re)
            continue;
          LB = Lb;
          LE = Le;
          RB = Rb;
          RE = Re;
          SameLevel = LC == RC;
          I = LB;
          J = SameLevel ? I + 1 : RB;
          P = Phase::Union;
          Entered = true;
          break;
        }
      }
      if (!Entered)
        P = Phase::Done;
      break;
    }

    case Phase::Union:
      while (I != LE && J >= RE) {
        ++I;
        J = SameLevel ? I + 1 : RB;
      }
      if (I != LE) {
        Out = Provenance{CsOp::Union, 0, I, J};
        ++J;
        return true;
      }
      P = Phase::UnionLevels;
      break;

    case Phase::Done:
      return false;
    }
  }
}

size_t LevelTasks::fill(std::vector<Provenance> &Out, size_t Max) {
  Out.clear();
  Provenance Prov;
  while (Out.size() < Max && next(Prov))
    Out.push_back(Prov);
  return Out.size();
}
