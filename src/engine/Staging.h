//===- engine/Staging.h - Staging as a first-class immutable artifact --------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staging half of the stage/run split. The paper's pipeline has a
/// cheap per-spec staging phase — build the infix-closure universe and
/// the guide table, both functions of (spec, alphabet, geometry flags)
/// only — fused into an expensive search phase. This header carves the
/// staging product out as StagedQuery, an immutable artifact that can
/// be built once and then:
///
///   * run many times (runStaged is const in the query),
///   * run on different backends (the universe and guide table are
///     read-only during a sweep; a fresh CsAlgebra and language cache
///     are created per run, because those carry per-run counters and
///     scratch), and
///   * re-derived cheaply for new sweep options (restage shares the
///     universe/guide table whenever the staging-relevant flags
///     agree) — the basis of the service layer's staged-artifact
///     cache (service/SynthService.h).
///
/// Queries that need no search at all — invalid input, the trivial
/// specifications of Alg. 1 lines 4-5 — are resolved at stage time and
/// carry their immediate result instead of staged data.
///
/// runSearch (engine/SearchDriver.h) is stage() + runStaged() and is
/// bit-for-bit equivalent to the pre-split fused pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_STAGING_H
#define PARESY_ENGINE_STAGING_H

#include "core/Synthesizer.h"

#include <memory>

namespace paresy {

class GuideTable;
class Universe;

namespace engine {

class Backend;

/// The immutable product of staging one query (spec + alphabet +
/// options): either an immediate result, or the shareable artifacts
/// the cost sweep consumes. Returned as shared_ptr-to-const; safe to
/// hold in caches and to run from many threads concurrently.
class StagedQuery {
public:
  const Spec &spec() const { return S; }
  const Alphabet &alphabet() const { return Sigma; }
  const SynthOptions &options() const { return Opts; }

  /// True when the query resolved without search (invalid input or a
  /// trivial specification); immediateResult() is then the answer and
  /// universe()/guideTable() are null.
  bool immediate() const { return IsImmediate; }
  const SynthResult &immediateResult() const { return Immediate; }

  /// The staged universe; null iff immediate().
  const std::shared_ptr<const Universe> &universe() const { return U; }

  /// The staged guide table; null when immediate() or when
  /// SynthOptions::UseGuideTable is off.
  const std::shared_ptr<const GuideTable> &guideTable() const { return GT; }

  /// floor(AllowedError * #(P u N)) misclassifications permitted.
  unsigned mistakeBudget() const { return MistakeBudget; }

  /// Seconds spent building the staged artifacts (reported as
  /// SynthStats::PrecomputeSeconds by every run of this query).
  double stagingSeconds() const { return StagingSeconds; }

  /// Estimated bytes held by the staged artifacts (universe words and
  /// masks, guide-table pairs); 0 when immediate(). Cache layers
  /// budget their staged-artifact memory with this.
  uint64_t stagedBytes() const;

private:
  StagedQuery() = default;

  friend std::shared_ptr<const StagedQuery>
  stage(const Spec &, const Alphabet &, const SynthOptions &);
  friend std::shared_ptr<const StagedQuery> restage(const StagedQuery &,
                                                    const SynthOptions &);

  Spec S;
  Alphabet Sigma;
  SynthOptions Opts;
  std::shared_ptr<const Universe> U;
  std::shared_ptr<const GuideTable> GT;
  unsigned MistakeBudget = 0;
  double StagingSeconds = 0;
  bool IsImmediate = false;
  SynthResult Immediate;
};

/// Classifies queries that resolve without a search. Returns true and
/// fills \p Out for invalid input (bad cost function, error fraction
/// out of range, invalid spec) and for the trivial specifications of
/// Alg. 1 lines 4-5; checks run in the same order as the pre-split
/// driver, so messages are identical. The single source of truth for
/// this classification — stage() and the service layer both use it.
bool resolveWithoutSearch(const Spec &S, const Alphabet &Sigma,
                          const SynthOptions &Opts, SynthResult &Out);

/// Stages one query: validates, resolves trivial cases, and builds the
/// universe and (under UseGuideTable) the guide table.
std::shared_ptr<const StagedQuery> stage(const Spec &S,
                                         const Alphabet &Sigma,
                                         const SynthOptions &Opts);

/// Re-stages \p Base under \p NewOpts, sharing its universe and guide
/// table whenever the universe geometry is unchanged: always when only
/// sweep options (cost function, budgets, shards, error, ablation
/// flags other than padding) differ, and even across a PadToPowerOfTwo
/// flip when padding is a no-op for this universe. Falls back to a
/// full stage() otherwise. The spec and alphabet are Base's. Budget
/// retries (engine/Session.h resume) rely on this sharing being total:
/// a MaxCost/Timeout-only change never rebuilds artifacts
/// (test-enforced).
std::shared_ptr<const StagedQuery> restage(const StagedQuery &Base,
                                           const SynthOptions &NewOpts);

/// Runs the cost sweep of \p Q on \p B. Immediate queries return their
/// result without touching the backend. Thread-safe for concurrent
/// calls sharing one StagedQuery, as long as each call has its own
/// backend instance.
SynthResult runStaged(const StagedQuery &Q, Backend &B);

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_STAGING_H
