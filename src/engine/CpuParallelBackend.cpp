//===- engine/CpuParallelBackend.cpp - Multi-core host backend ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/CpuParallelBackend.h"

#include "lang/Universe.h"

using namespace paresy;
using namespace paresy::engine;

namespace {

gpusim::DeviceSpec hostSpec() {
  // The timing model is unused on this backend; only the thread pool
  // executes. Zero the session overhead so no one mistakes the perf
  // counters for a device projection.
  gpusim::DeviceSpec Spec;
  Spec.Name = "host";
  Spec.SessionOverheadSeconds = 0;
  return Spec;
}

} // namespace

CpuParallelBackend::CpuParallelBackend(unsigned Workers)
    : BatchedBackend(hostSpec(),
                     Workers == Inline
                         ? 0
                         : (Workers ? Workers : ThreadPool::defaultWorkers()),
                     /*BatchTasks=*/size_t(1) << 16) {}

size_t CpuParallelBackend::planCacheCapacity(const SearchContext &Ctx,
                                             uint64_t BudgetBytes) {
  // The shared pipeline split, against host memory only (no device
  // size cap).
  return splitBudget(Ctx, BudgetBytes);
}
