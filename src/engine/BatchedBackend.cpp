//===- engine/BatchedBackend.cpp - Bulk-synchronous kernel pipeline ----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/BatchedBackend.h"

#include "core/Snapshot.h"
#include "engine/DupLedger.h"
#include "engine/Kernels.h"
#include "engine/LevelTasks.h"
#include "lang/CharSeq.h"
#include "lang/Universe.h"
#include "support/Bits.h"

#include <algorithm>
#include <atomic>

using namespace paresy;
using namespace paresy::engine;
using namespace paresy::gpusim;

namespace {

/// RowId sentinel: winner checked but not cached (owner shard full).
constexpr uint32_t NoRow = 0xffffffffu;

} // namespace

BatchedBackend::BatchedBackend(const DeviceSpec &Spec, unsigned Workers,
                               size_t BatchTasks)
    : Dev(Spec, Workers), BatchTasks(std::max<size_t>(1, BatchTasks)) {}

size_t BatchedBackend::splitBudget(const SearchContext &Ctx,
                                   uint64_t BudgetBytes) {
  size_t CsWords = Ctx.U->csWords();
  uint64_t RowBytes =
      LanguageCache::strideForWords(CsWords) * sizeof(uint64_t) +
      sizeof(Provenance) + sizeof(uint64_t) +
      (Ctx.Opts->Shards > 1 ? sizeof(uint64_t) : 0);
  if (storeCompressionEnabled(*Ctx.Opts))
    // Compressed store: sealed rows cost codec bytes, so the row
    // count is only a metadata/address-space bound and fullness is
    // byte-driven against planStoreBytes' 60% share. The hash sets
    // keep full-key slots either way (they are the hot probe path),
    // which is why their 30% share is unchanged - and why the batched
    // pipelines see a smaller ceiling lift than "cpu" does.
    RowBytes = sizeof(Provenance) + sizeof(uint64_t) +
               (Ctx.Opts->Shards > 1 ? sizeof(uint64_t) : 0);
  uint64_t SlotBytes =
      CsWords * sizeof(uint64_t) + WarpHashSet::slotBytes();
  uint64_t CacheCap =
      std::max<uint64_t>(16, BudgetBytes * 6 / 10 / RowBytes);
  CacheCap = std::min<uint64_t>(CacheCap, 0xfffffffeu);
  uint64_t HashCap =
      std::max<uint64_t>(32, BudgetBytes * 3 / 10 / SlotBytes);
  HashCapacity = size_t(std::min<uint64_t>(HashCap, 0x7fffffffu));
  return size_t(CacheCap);
}

uint64_t BatchedBackend::planStoreBytes(const SearchContext &Ctx,
                                        uint64_t BudgetBytes) {
  (void)Ctx;
  // Mirrors splitBudget's partition: 60% language store, 30% hash
  // sets, the rest temporaries.
  return BudgetBytes * 6 / 10;
}

void BatchedBackend::prepare(SearchContext &Ctx) {
  unsigned Shards = Ctx.Store->shardCount();
  size_t PerShard = std::max<size_t>(32, HashCapacity / Shards);
  HashSets.clear();
  for (unsigned S = 0; S != Shards; ++S)
    HashSets.push_back(
        std::make_unique<WarpHashSet>(Ctx.U->csWords(), PerShard));
  IdBase = 0;
}

uint64_t BatchedBackend::auxBytesUsed() const {
  uint64_t Bytes = 0;
  for (const std::unique_ptr<WarpHashSet> &Set : HashSets)
    Bytes += Set->bytesUsed();
  return Bytes;
}

void BatchedBackend::saveState(SnapshotWriter &W) const {
  size_t Section = W.beginSection("batched");
  W.u64(IdBase);
  W.u32(uint32_t(HashSets.size()));
  for (const std::unique_ptr<WarpHashSet> &Set : HashSets)
    Set->save(W);
  W.endSection(Section);
}

bool BatchedBackend::loadState(SnapshotReader &R, SearchContext &Ctx) {
  if (!R.enterSection("batched"))
    return false;
  uint64_t Base = 0;
  uint32_t Shards = 0;
  if (!R.u64(Base) || !R.u32(Shards) ||
      Shards != Ctx.Store->shardCount()) {
    R.markFailed();
    return false;
  }
  std::vector<std::unique_ptr<WarpHashSet>> Sets;
  for (unsigned S = 0; S != Shards; ++S) {
    std::unique_ptr<WarpHashSet> Set = WarpHashSet::restore(R);
    if (!Set || Set->keyWords() != Ctx.U->csWords()) {
      R.markFailed();
      return false;
    }
    Sets.push_back(std::move(Set));
  }
  if (!R.leaveSection())
    return false;
  HashSets = std::move(Sets);
  IdBase = Base;
  return true;
}

void BatchedBackend::rebuildFromStore(SearchContext &Ctx,
                                      uint64_t NextCandidateId) {
  prepare(Ctx);
  IdBase = NextCandidateId;
  if (!Ctx.Opts->UniquenessCheck)
    return; // The uniqueness kernel is ablated; the sets stay empty.
  ShardedStore &Store = *Ctx.Store;
  for (size_t Id = 0; Id != Store.size(); ++Id) {
    uint64_t Hash = Store.rowHash(Id);
    // Row ids are dense append ranks < NextCandidateId, so every
    // rebuilt entry loses the min-winner race against resumed
    // candidates - exactly like the original entries, whose ids were
    // also below every future rank.
    int64_t Slot = HashSets[Store.shardOfHash(Hash)]->insert(
        Store.cs(Id), uint32_t(Id), Hash);
    (void)Slot;
    assert(Slot >= 0 && "rebuilt uniqueness set cannot be smaller than "
                        "the set that admitted these rows");
  }
}

LevelOutcome BatchedBackend::runLevel(SearchContext &Ctx, uint64_t,
                                      LevelTasks &Tasks) {
  LevelOutcome Out;
  const SynthOptions &Opts = *Ctx.Opts;
  // Pull the level in bounded batches: a concat/union level can hold
  // quadratically many tasks, so it is never materialised whole.
  while (Tasks.fill(Batch, BatchTasks)) {
    // Grown independently: a backend reused across searches can see a
    // narrower universe with a larger batch, where TempCs still fits
    // but the per-task vectors would not.
    size_t Words = Ctx.U->csWords();
    if (TempCs.size() < Batch.size() * Words)
      TempCs.resize(Batch.size() * Words);
    if (TaskHash.size() < Batch.size()) {
      TaskHash.resize(Batch.size());
      TaskShard.resize(Batch.size());
      TaskSlot.resize(Batch.size());
      WinnerFlag.resize(Batch.size());
      RowId.resize(Batch.size());
    }
    bool Continue = processBatch(Ctx, Out);
    IdBase += Batch.size();
    if (!Continue)
      break;
    // Deadline and stop-token checks between batches, so a
    // quadratically large level cannot overrun the timeout (or outlive
    // a lost portfolio race) by more than one batch.
    if (Opts.TimeoutSeconds > 0 &&
        Ctx.Clock->seconds() > Opts.TimeoutSeconds) {
      Out.TimedOut = true;
      break;
    }
    if (Ctx.Cancel && Ctx.Cancel->load(std::memory_order_relaxed)) {
      Out.Cancelled = true;
      break;
    }
  }
  return Out;
}

bool BatchedBackend::processBatch(SearchContext &Ctx, LevelOutcome &Out) {
  const SynthOptions &Opts = *Ctx.Opts;
  const Universe &U = *Ctx.U;
  const GuideTable *GT = Ctx.GT;
  ShardedStore &Store = *Ctx.Store;
  size_t Count = Batch.size();
  size_t Words = U.csWords();
  // A single shard with uniqueness off needs no routing hash; every
  // other configuration hashes in the generate kernel and reuses the
  // hash for the owner shard, the uniqueness insert and the row hash.
  bool Route = Opts.UniquenessCheck || Store.shardCount() > 1;

  // Kernel 1: generate every candidate CS into temporary storage and,
  // when routing, partition it (hash + owner shard) - the compute half
  // of the all-to-all exchange.
  Out.Ops += launch("paresy.generate", Count, [&](size_t T) -> uint64_t {
    uint64_t Ops = generateCs(TempCs.data() + T * Words, Batch[T], U, GT,
                              Store);
    if (Route) {
      uint64_t Hash = hashWords(TempCs.data() + T * Words, Words);
      TaskHash[T] = Hash;
      TaskShard[T] = Store.shardOfHash(Hash);
      Ops += Words;
    }
    return Ops;
  });
  Out.Candidates += Count;

  // Kernel 2: concurrent uniqueness insertion into each candidate's
  // owner shard (min-id winners). Owner-computes keeps per-shard sets
  // globally exact: every distinct CS has exactly one home set. With
  // the uniqueness ablation off every candidate is its own winner,
  // exactly as in the sequential backend.
  if (Opts.UniquenessCheck) {
    std::atomic<bool> Full{false};
    launch("paresy.unique", Count, [&](size_t T) -> uint64_t {
      uint32_t Id = uint32_t(IdBase + T);
      int64_t Slot = HashSets[TaskShard[T]]->insert(
          TempCs.data() + T * Words, Id, TaskHash[T]);
      TaskSlot[T] = Slot;
      if (Slot < 0)
        Full.store(true, std::memory_order_relaxed);
      return 2;
    });
    if (Full.load()) {
      Out.Abort = true;
      Out.AbortReason = "uniqueness hash set exhausted";
      return false;
    }
  }

  // Kernel 3: winner flags and specification check; the first
  // satisfying winner (minimum candidate id) is recorded atomically.
  std::atomic<uint64_t> FoundId{UINT64_MAX};
  launch("paresy.check", Count, [&](size_t T) -> uint64_t {
    uint32_t Id = uint32_t(IdBase + T);
    bool Winner =
        !Opts.UniquenessCheck ||
        HashSets[TaskShard[T]]->isWinner(size_t(TaskSlot[T]), Id);
    WinnerFlag[T] = Winner ? 1 : 0;
    if (Winner &&
        Ctx.Algebra->satisfies(TempCs.data() + T * Words,
                               Ctx.MistakeBudget)) {
      uint64_t Candidate = IdBase + T;
      uint64_t Expected = FoundId.load(std::memory_order_relaxed);
      while (Candidate < Expected &&
             !FoundId.compare_exchange_weak(Expected, Candidate,
                                            std::memory_order_relaxed)) {
      }
    }
    return Words;
  });

  uint64_t FoundNow = FoundId.load(std::memory_order_relaxed);
  if (!Out.FoundSatisfier && FoundNow != UINT64_MAX) {
    Out.FoundSatisfier = true;
    Out.Satisfier = Batch[size_t(FoundNow - IdBase)];
  }

  // Exchange pass: walk winners in candidate-rank order, assigning
  // each its global id (the next append rank) and a row in its owner
  // shard. Rank order is what makes ids - and with them every
  // downstream level's task enumeration - identical across shard
  // counts, worker counts and backends. Winners whose owner shard is
  // full are checked but not cached: the OnTheFly regime, per shard.
  // (This rank walk replaced the exclusive scan that used to compute
  // compaction offsets; per-shard row assignment is a multi-split the
  // single scan cannot express.)
  uint64_t Winners = 0;
  for (size_t T = 0; T != Count; ++T) {
    if (!WinnerFlag[T])
      continue;
    ++Winners;
    unsigned Owner = Route ? TaskShard[T] : 0;
    if (!Store.shardFull(Owner)) {
      RowId[T] = Store.reserveRow(Owner);
    } else {
      RowId[T] = NoRow;
      Store.noteDropped(Owner);
      Out.CacheFilled = true;
    }
  }
  Out.Unique += Winners;

  // Kernel 4: compact winners into their owner shards' segments - the
  // data-movement half of the all-to-all. Distinct reserved rows write
  // concurrently; the directory is only read. The routing hash doubles
  // as the row hash, so no winner is hashed twice.
  if (Winners > 0) {
    launch("paresy.compact", Count, [&](size_t T) -> uint64_t {
      if (!WinnerFlag[T] || RowId[T] == NoRow)
        return 1;
      if (Route)
        Store.writeRow(RowId[T], TempCs.data() + T * Words, Batch[T],
                       TaskHash[T]);
      else
        Store.writeRow(RowId[T], TempCs.data() + T * Words, Batch[T]);
      return Words + 1;
    });
  }
  // Dup-ledger pass (spec-delta, DESIGN.md Sec. 14), rank order like
  // the exchange: each committed winner's slot is rewritten from its
  // candidate id to its global row id - row ids sit strictly below
  // every future candidate id, so the rewritten value keeps winning
  // the atomic-min insert race exactly as before - and each dup is
  // journaled against the (already rewritten) winner row. A dropped
  // winner leaves a slot no store row can resolve; coverage ends
  // there.
  if (Ctx.Ledger && Opts.UniquenessCheck) {
    if (Out.CacheFilled) {
      Ctx.Ledger->markBroken();
    } else {
      for (size_t T = 0; T != Count; ++T) {
        if (WinnerFlag[T])
          HashSets[TaskShard[T]]->setWinner(size_t(TaskSlot[T]), RowId[T]);
        else
          Ctx.Ledger->record(
              Batch[T], HashSets[TaskShard[T]]->winnerAt(size_t(TaskSlot[T])));
      }
    }
  }
  if (Out.CacheFilled && !Opts.EnableOnTheFly) {
    Out.Abort = true; // Paper behaviour: an immediate OOM error.
    return false;
  }
  return true;
}
