//===- engine/BatchedBackend.cpp - Bulk-synchronous kernel pipeline ----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/BatchedBackend.h"

#include "engine/Kernels.h"
#include "engine/LevelTasks.h"
#include "gpusim/Scan.h"
#include "lang/CharSeq.h"
#include "lang/Universe.h"

#include <algorithm>
#include <atomic>

using namespace paresy;
using namespace paresy::engine;
using namespace paresy::gpusim;

BatchedBackend::BatchedBackend(const DeviceSpec &Spec, unsigned Workers,
                               size_t BatchTasks)
    : Dev(Spec, Workers), BatchTasks(std::max<size_t>(1, BatchTasks)) {}

size_t BatchedBackend::splitBudget(size_t CsWords, uint64_t BudgetBytes) {
  uint64_t RowBytes =
      LanguageCache::strideForWords(CsWords) * sizeof(uint64_t) +
      sizeof(Provenance) + sizeof(uint64_t);
  uint64_t SlotBytes =
      CsWords * sizeof(uint64_t) + WarpHashSet::slotBytes();
  uint64_t CacheCap =
      std::max<uint64_t>(16, BudgetBytes * 6 / 10 / RowBytes);
  CacheCap = std::min<uint64_t>(CacheCap, 0xfffffffeu);
  uint64_t HashCap =
      std::max<uint64_t>(32, BudgetBytes * 3 / 10 / SlotBytes);
  HashCapacity = size_t(std::min<uint64_t>(HashCap, 0x7fffffffu));
  return size_t(CacheCap);
}

void BatchedBackend::prepare(SearchContext &Ctx) {
  HashSet = std::make_unique<WarpHashSet>(Ctx.U->csWords(), HashCapacity);
  IdBase = 0;
}

LevelOutcome BatchedBackend::runLevel(SearchContext &Ctx, uint64_t,
                                      LevelTasks &Tasks) {
  LevelOutcome Out;
  const SynthOptions &Opts = *Ctx.Opts;
  // Pull the level in bounded batches: a concat/union level can hold
  // quadratically many tasks, so it is never materialised whole.
  while (Tasks.fill(Batch, BatchTasks)) {
    size_t Words = Ctx.U->csWords();
    if (TempCs.size() < Batch.size() * Words) {
      TempCs.resize(Batch.size() * Words);
      TaskSlot.resize(Batch.size());
      WinnerFlag.resize(Batch.size());
      WinnerOffset.resize(Batch.size());
    }
    bool Continue = processBatch(Ctx, Out);
    IdBase += Batch.size();
    if (!Continue)
      break;
    // Deadline check between batches, so a quadratically large level
    // cannot overrun the timeout by more than one batch.
    if (Opts.TimeoutSeconds > 0 &&
        Ctx.Clock->seconds() > Opts.TimeoutSeconds) {
      Out.TimedOut = true;
      break;
    }
  }
  return Out;
}

bool BatchedBackend::processBatch(SearchContext &Ctx, LevelOutcome &Out) {
  const SynthOptions &Opts = *Ctx.Opts;
  const Universe &U = *Ctx.U;
  const GuideTable *GT = Ctx.GT;
  LanguageCache &Cache = *Ctx.Cache;
  size_t Count = Batch.size();
  size_t Words = U.csWords();

  // Kernel 1: generate every candidate CS into temporary storage.
  Out.Ops += Dev.launch("paresy.generate", Count, [&](size_t T) -> uint64_t {
    return generateCs(TempCs.data() + T * Words, Batch[T], U, GT, Cache);
  });
  Out.Candidates += Count;

  // Kernel 2: concurrent uniqueness insertion (min-id winners). With
  // the uniqueness ablation off every candidate is its own winner,
  // exactly as in the sequential backend.
  if (Opts.UniquenessCheck) {
    std::atomic<bool> Full{false};
    Dev.launch("paresy.unique", Count, [&](size_t T) -> uint64_t {
      uint32_t Id = uint32_t(IdBase + T);
      int64_t Slot = HashSet->insert(TempCs.data() + T * Words, Id);
      TaskSlot[T] = Slot;
      if (Slot < 0)
        Full.store(true, std::memory_order_relaxed);
      return Words + 2;
    });
    if (Full.load()) {
      Out.Abort = true;
      Out.AbortReason = "uniqueness hash set exhausted";
      return false;
    }
  }

  // Kernel 3: winner flags and specification check; the first
  // satisfying winner (minimum candidate id) is recorded atomically.
  std::atomic<uint64_t> FoundId{UINT64_MAX};
  Dev.launch("paresy.check", Count, [&](size_t T) -> uint64_t {
    uint32_t Id = uint32_t(IdBase + T);
    bool Winner =
        !Opts.UniquenessCheck || HashSet->isWinner(size_t(TaskSlot[T]), Id);
    WinnerFlag[T] = Winner ? 1 : 0;
    if (Winner &&
        Ctx.Algebra->satisfies(TempCs.data() + T * Words,
                               Ctx.MistakeBudget)) {
      uint64_t Candidate = IdBase + T;
      uint64_t Expected = FoundId.load(std::memory_order_relaxed);
      while (Candidate < Expected &&
             !FoundId.compare_exchange_weak(Expected, Candidate,
                                            std::memory_order_relaxed)) {
      }
    }
    return Words;
  });

  uint64_t FoundNow = FoundId.load(std::memory_order_relaxed);
  if (!Out.FoundSatisfier && FoundNow != UINT64_MAX) {
    Out.FoundSatisfier = true;
    Out.Satisfier = Batch[size_t(FoundNow - IdBase)];
  }

  // Kernel 4+5: compact winners into the language cache (scan for
  // offsets, then a parallel copy). Winners beyond the remaining
  // capacity are checked but not cached: the OnTheFly regime.
  uint64_t Winners =
      exclusiveScan(Dev, WinnerFlag.data(), WinnerOffset.data(), Count);
  Out.Unique += Winners;
  uint64_t Space = Cache.capacity() - Cache.size();
  uint64_t ToCache = std::min<uint64_t>(Winners, Space);
  if (ToCache < Winners)
    Out.CacheFilled = true;
  if (ToCache > 0) {
    uint32_t Base = Cache.reserveRows(size_t(ToCache));
    Dev.launch("paresy.compact", Count, [&](size_t T) -> uint64_t {
      if (!WinnerFlag[T] || WinnerOffset[T] >= ToCache)
        return 1;
      Cache.writeRow(Base + size_t(WinnerOffset[T]),
                     TempCs.data() + T * Words, Batch[T]);
      return Words + 1;
    });
  }
  if (Out.CacheFilled && !Opts.EnableOnTheFly) {
    Out.Abort = true; // Paper behaviour: an immediate OOM error.
    return false;
  }
  return true;
}
