//===- engine/BackendRegistry.h - String-keyed backend dispatch --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime backend selection, modelled on the searchCpu()/searchGpu()
/// dispatch idiom of GPU pattern-matching engines: callers name a
/// backend by string ("cpu", "cpu-parallel", "gpusim") and the
/// registry constructs it. Out-of-tree backends register a factory
/// under a new key and immediately work with synthesizeWith(),
/// synthesizeBatch() and the cross-backend equivalence test corpus.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_BACKENDREGISTRY_H
#define PARESY_ENGINE_BACKENDREGISTRY_H

#include "core/Synthesizer.h"

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace paresy {
namespace engine {

class Backend;

/// Construction-time knobs a factory may honour.
struct BackendConfig {
  /// Worker threads for parallel backends. 0 means the backend's
  /// default (one per spare hardware thread for "cpu-parallel",
  /// inline kernel execution for "gpusim"); ignored by "cpu".
  unsigned Workers = 0;
  /// Forces kernel execution inline on the calling thread, overriding
  /// Workers. Set by synthesizeBatch(), whose spec-level tasks already
  /// occupy the worker pool. Results never depend on this (backends
  /// are schedule-independent); only thread usage does.
  bool InlineKernels = false;
};

using BackendFactory =
    std::function<std::unique_ptr<Backend>(const BackendConfig &)>;

/// Registers \p Factory under \p Name. Returns false (and leaves the
/// registry unchanged) when the name is already taken. Thread-safe.
bool registerBackend(std::string Name, BackendFactory Factory);

/// Creates the backend registered under \p Name, or null for unknown
/// names. Thread-safe.
std::unique_ptr<Backend> createBackend(std::string_view Name,
                                       const BackendConfig &Config = {});

/// True iff a factory is registered under \p Name, without
/// constructing anything. Thread-safe.
bool hasBackend(std::string_view Name);

/// The registered backend names, sorted ("cpu", "cpu-parallel",
/// "gpusim", "hetero" plus any out-of-tree registrations).
std::vector<std::string> backendNames();

/// The diagnostic every string-driven surface reports for an
/// unrecognised backend name: names the offender *and* lists the
/// registered backends, so a typo is a one-glance fix.
std::string unknownBackendMessage(std::string_view Name);

/// One-call dispatch: runs the search on the backend registered under
/// \p Name. Unknown names produce an InvalidInput result naming the
/// backend, so string-driven callers (CLI, servers) need no separate
/// validation step.
SynthResult synthesizeWith(std::string_view Name, const Spec &S,
                           const Alphabet &Sigma, const SynthOptions &Opts,
                           const BackendConfig &Config = {});

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_BACKENDREGISTRY_H
