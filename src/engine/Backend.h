//===- engine/Backend.h - Pluggable search-backend interface -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend half of the engine/backend split (DESIGN.md Sec. 4).
/// The paper's central observation is that one search algorithm - the
/// staged cost sweep of Alg. 1/2 - can be expressed both sequentially
/// and as data-parallel kernels. The engine encodes that split
/// directly: SearchDriver owns every backend-agnostic phase (spec
/// validation, staging, the cost-level loop, the completeness horizon,
/// timeout and memory accounting, result assembly), while a Backend
/// owns the per-level data-parallel phases: generate every candidate
/// CS of the level, drop duplicates, test candidates against the
/// specification, and compact the survivors into the language cache.
///
/// Three backends ship with the library (see BackendRegistry.h):
/// "cpu" (the sequential reference), "cpu-parallel" (the kernels on a
/// host thread pool), and "gpusim" (the kernels on the simulated
/// device with modelled timing). All three are required by test to
/// produce identical results, statuses and candidate counts.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_BACKEND_H
#define PARESY_ENGINE_BACKEND_H

#include "core/ShardedStore.h"
#include "core/Synthesizer.h"
#include "support/Timer.h"

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

namespace paresy {

class Alphabet;
class CsAlgebra;
class GuideTable;
class Universe;

namespace engine {

class DupLedger;
class LevelTasks;

/// One run's shared state, owned by the SearchDriver and lent to the
/// backend for the duration of the run. Staged data (universe, guide
/// table, algebra) is read-only during the sweep; the sharded language
/// store is append-only and written exclusively by the backend's
/// compaction phase (the driver only records level ranges).
struct SearchContext {
  const Spec *S = nullptr;
  const Alphabet *Sigma = nullptr;
  const SynthOptions *Opts = nullptr;
  const Universe *U = nullptr;
  /// Null when SynthOptions::UseGuideTable is off; backends must then
  /// use the unstaged split discovery (engine/Kernels.h).
  const GuideTable *GT = nullptr;
  CsAlgebra *Algebra = nullptr;
  /// The hash-partitioned language store (DESIGN.md Sec. 8). Set by
  /// the driver after planCacheCapacity(), before prepare(); one shard
  /// under the default options.
  ShardedStore *Store = nullptr;
  /// floor(AllowedError * #(P u N)) misclassifications permitted.
  unsigned MistakeBudget = 0;
  /// The run's wall clock, for in-level timeout checks.
  const WallTimer *Clock = nullptr;
  /// Candidates generated in all completed levels, so backends can
  /// keep a run-global cadence for periodic checks.
  uint64_t CandidatesBefore = 0;
  /// Cooperative stop token (engine/Portfolio.h), or null. Backends
  /// poll it at their timeout-check cadence and stop the level with
  /// LevelOutcome::Cancelled; like a timeout, cancellation may cut a
  /// level short, and the run's partial work stays reported.
  const std::atomic<bool> *Cancel = nullptr;
  /// Spec-delta dup ledger (engine/DupLedger.h), or null. Backends
  /// whose supportsDeltaLedger() is true record every pruned duplicate
  /// (provenance + winner row) here, in candidate-rank order, and mark
  /// the ledger broken when a winner is dropped (CacheFilled). The
  /// session sets this only on ledger-capable backends.
  DupLedger *Ledger = nullptr;
};

/// What happened while a backend ran one cost level.
struct LevelOutcome {
  /// Candidates generated (every processed task counts, unique or not).
  uint64_t Candidates = 0;
  /// Candidates that survived uniqueness checking.
  uint64_t Unique = 0;
  /// Kernel work units performed (split-pair evaluations and friends);
  /// zero for backends that account work through the CsAlgebra.
  uint64_t Ops = 0;
  /// A satisfying candidate was found; Satisfier reconstructs it. The
  /// level always runs to completion first (all candidates of a level
  /// share its cost, so the first satisfier in enumeration order is
  /// minimal), which keeps candidate counts backend-independent.
  bool FoundSatisfier = false;
  Provenance Satisfier{};
  /// The language cache reached capacity during this level (at least
  /// one unique candidate was checked but dropped).
  bool CacheFilled = false;
  /// The deadline passed mid-level; remaining tasks were skipped.
  bool TimedOut = false;
  /// The cooperative stop token fired mid-level; remaining tasks were
  /// skipped. Terminal: the session reports SynthStatus::Cancelled.
  bool Cancelled = false;
  /// The backend cannot continue (uniqueness structure exhausted, or
  /// cache full with OnTheFly disabled). Maps to OutOfMemory.
  bool Abort = false;
  std::string AbortReason;
};

/// A search backend: the data-parallel phases of the Paresy sweep.
/// Instances are single-run and not thread-safe; create one per
/// concurrent synthesis (they are cheap before prepare()).
class Backend {
public:
  virtual ~Backend();

  /// Registry key / display name ("cpu", "cpu-parallel", "gpusim").
  virtual std::string_view name() const = 0;

  /// Divides the run's memory budget between the language store and
  /// the backend's own structures. Called once after staging (Ctx has
  /// U/GT/Algebra but no Store yet); returns the total row capacity
  /// the driver should give the store (it divides rows - and with
  /// them the budget - evenly across shards).
  virtual size_t planCacheCapacity(const SearchContext &Ctx,
                                   uint64_t BudgetBytes) = 0;

  /// Bytes of the run's budget that planCacheCapacity() will hand the
  /// language store (the rest funds backend structures). The byte
  /// budget of the compressed store mirrors this split, so a byte-full
  /// verdict fires where the raw row capacity would have. Must be
  /// consistent with planCacheCapacity's division of the same budget.
  virtual uint64_t planStoreBytes(const SearchContext &Ctx,
                                  uint64_t BudgetBytes) {
    (void)Ctx;
    return BudgetBytes;
  }

  /// Allocates per-run structures (uniqueness set, temporaries).
  /// Called once, after the cache exists.
  virtual void prepare(SearchContext &Ctx) = 0;

  /// Runs every candidate of cost level \p LevelCost: generate,
  /// uniqueness, check, compact. \p Tasks streams the driver's
  /// enumeration of the level in canonical order (?, *, ., +); a
  /// task's pull rank is the candidate's id, and uniqueness/satisfier
  /// winners must be minimal-rank so results are schedule-independent.
  /// Levels can be combinatorially large - backends must pull bounded
  /// chunks, never the whole level.
  virtual LevelOutcome runLevel(SearchContext &Ctx, uint64_t LevelCost,
                                LevelTasks &Tasks) = 0;

  /// Bytes held by backend-owned structures, for the memory stats.
  virtual uint64_t auxBytesUsed() const = 0;

  /// Adds backend-specific counters to the run's stats (called by the
  /// session when it assembles a result). The default adds nothing;
  /// the heterogeneous backend reports its per-engine split here.
  virtual void addBackendStats(SynthStats &Stats) const { (void)Stats; }

  /// Level-boundary notification: the driver sealed the completed
  /// level into the store's compressed tier (ShardedStore::sealLevel
  /// already ran). Backends that cache row pointers across levels must
  /// refresh them here; the default has nothing to refresh (uniqueness
  /// structures hold row *indices* or key copies, never pointers).
  virtual void onLevelSealed(SearchContext &Ctx) { (void)Ctx; }

  /// Resumable-session support (engine/Session.h). A backend that
  /// returns true implements all three hooks below; the default is a
  /// non-resumable backend (sessions on it still run, but cannot park
  /// across a mid-level timeout or snapshot to bytes). All hooks are
  /// level-boundary operations: no level may be in flight.
  virtual bool supportsResume() const { return false; }

  /// True when runLevel() honours SearchContext::Ledger - the
  /// precondition of spec-delta resynthesis (engine/DeltaStage.h),
  /// which replays pruning decisions from the recorded dups. The
  /// default backend ignores the ledger and must say so.
  virtual bool supportsDeltaLedger() const { return false; }

  /// Serializes the per-run state runLevel() carries across levels
  /// (uniqueness structures, candidate-id cursor) as sections of
  /// \p W (core/Snapshot.h).
  virtual void saveState(SnapshotWriter &W) const;

  /// Restores state saved by saveState() into a prepared backend
  /// (prepare() ran against the restored store in \p Ctx). Returns
  /// false on a malformed stream.
  virtual bool loadState(SnapshotReader &R, SearchContext &Ctx);

  /// Rebuilds the uniqueness state from the committed rows of
  /// Ctx.Store after the driver rolled a partial level back to its
  /// boundary. Only exact while no winner has been dropped (the
  /// session checks); \p NextCandidateId is the enumeration rank the
  /// resumed level restarts at - every rebuilt entry must lose the
  /// min-id race against it and all later ranks.
  virtual void rebuildFromStore(SearchContext &Ctx,
                                uint64_t NextCandidateId);
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_BACKEND_H
