//===- engine/BackendRegistry.cpp - String-keyed backend dispatch ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/BackendRegistry.h"

#include "dist/Coordinator.h"
#include "engine/CpuBackend.h"
#include "engine/CpuParallelBackend.h"
#include "engine/GpuSimBackend.h"
#include "engine/HeteroBackend.h"
#include "engine/Portfolio.h"
#include "engine/SearchDriver.h"
#include "support/ThreadPool.h"

#include <map>
#include <mutex>

using namespace paresy;
using namespace paresy::engine;

namespace {

using FactoryMap = std::map<std::string, BackendFactory, std::less<>>;

std::mutex &registryLock() {
  static std::mutex M;
  return M;
}

/// The factory map with the in-tree backends pre-registered. Built
/// lazily on first use so registration order never depends on static
/// initialisation order across translation units.
FactoryMap &factories() {
  static FactoryMap Map = [] {
    FactoryMap M;
    M.emplace("cpu", [](const BackendConfig &) {
      return std::make_unique<CpuBackend>();
    });
    M.emplace("cpu-parallel", [](const BackendConfig &Config) {
      return std::make_unique<CpuParallelBackend>(
          Config.InlineKernels ? CpuParallelBackend::Inline : Config.Workers);
    });
    M.emplace("gpusim", [](const BackendConfig &Config) {
      gpusim::GpuOptions Gpu;
      Gpu.HostWorkers = Config.InlineKernels ? 0 : Config.Workers;
      return std::make_unique<GpuSimBackend>(Gpu);
    });
    M.emplace("hetero", [](const BackendConfig &Config) {
      HeteroOptions Hetero;
      if (Config.InlineKernels) {
        Hetero.InlineKernels = true;
      } else {
        // Split the requested pool (or the host's spare threads)
        // between the two co-scheduled engines.
        unsigned Total =
            Config.Workers ? Config.Workers : ThreadPool::defaultWorkers();
        Hetero.CpuWorkers = Total / 2;
        Hetero.GpuWorkers = Total - Total / 2;
      }
      return std::make_unique<HeteroBackend>(Hetero);
    });
    M.emplace("dist", [](const BackendConfig &Config) {
      // In-process virtual workers (threads over loopback channels) -
      // the degenerate case of the coordinator/worker split, same code
      // path as real `--join` processes.
      return dist::DistBackend::inProcess(Config.Workers);
    });
    return M;
  }();
  return Map;
}

} // namespace

bool paresy::engine::registerBackend(std::string Name,
                                     BackendFactory Factory) {
  std::lock_guard<std::mutex> Lock(registryLock());
  return factories().emplace(std::move(Name), std::move(Factory)).second;
}

std::unique_ptr<Backend>
paresy::engine::createBackend(std::string_view Name,
                              const BackendConfig &Config) {
  BackendFactory Factory;
  {
    std::lock_guard<std::mutex> Lock(registryLock());
    FactoryMap &Map = factories();
    auto It = Map.find(Name);
    if (It == Map.end())
      return nullptr;
    Factory = It->second;
  }
  return Factory(Config);
}

bool paresy::engine::hasBackend(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(registryLock());
  FactoryMap &Map = factories();
  return Map.find(Name) != Map.end();
}

std::vector<std::string> paresy::engine::backendNames() {
  std::lock_guard<std::mutex> Lock(registryLock());
  std::vector<std::string> Names;
  for (const auto &[Name, Factory] : factories())
    Names.push_back(Name);
  return Names;
}

std::string paresy::engine::unknownBackendMessage(std::string_view Name) {
  std::string Known;
  for (const std::string &N : backendNames()) {
    if (!Known.empty())
      Known += ", ";
    Known += N;
  }
  return "unknown backend '" + std::string(Name) +
         "' (registered: " + Known + ")";
}

SynthResult paresy::engine::synthesizeWith(std::string_view Name,
                                           const Spec &S,
                                           const Alphabet &Sigma,
                                           const SynthOptions &Opts,
                                           const BackendConfig &Config) {
  if (!hasBackend(Name)) {
    SynthResult R;
    R.Status = SynthStatus::InvalidInput;
    R.Message = unknownBackendMessage(Name);
    return R;
  }
  if (Opts.Portfolio)
    return runPortfolio(stage(S, Sigma, Opts), Name, Config).Result;
  std::unique_ptr<Backend> B = createBackend(Name, Config);
  if (!B) {
    SynthResult R;
    R.Status = SynthStatus::InvalidInput;
    R.Message = unknownBackendMessage(Name);
    return R;
  }
  return runSearch(S, Sigma, Opts, *B);
}
