//===- engine/HeteroBackend.cpp - CPU + GPU-sim co-scheduling backend --------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/HeteroBackend.h"

#include "support/Timer.h"
#include "support/WorkQueue.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

using namespace paresy;
using namespace paresy::engine;

namespace {

/// Spec of the (unused) base-class device: the hetero backend routes
/// every grid through its own two engines, so the base Dev never runs
/// a kernel and its perf counters stay inert.
gpusim::DeviceSpec unusedDevSpec() {
  gpusim::DeviceSpec Spec;
  Spec.Name = "hetero";
  Spec.SessionOverheadSeconds = 0;
  return Spec;
}

/// Both engines must always hold some share, or the EWMA could starve
/// one permanently on a single noisy level.
double clampShare(double Share) {
  return std::clamp(Share, 0.05, 0.95);
}

} // namespace

HeteroBackend::HeteroBackend(const HeteroOptions &Options)
    : BatchedBackend(unusedDevSpec(), /*Workers=*/0,
                     /*BatchTasks=*/size_t(1) << 16),
      Opts(Options), CpuPool(Options.CpuWorkers),
      GpuPool(Options.GpuWorkers), GpuModel(Options.GpuSpec) {
  Opts.GrainTasks = std::max<size_t>(1, Opts.GrainTasks);
  Opts.InitialCpuShare = clampShare(Opts.InitialCpuShare);
}

size_t HeteroBackend::planCacheCapacity(const SearchContext &Ctx,
                                        uint64_t BudgetBytes) {
  // Host memory plan: the language cache lives in host memory on both
  // engines (the GPU side is simulated), so no device cap applies.
  return splitBudget(Ctx, BudgetBytes);
}

void HeteroBackend::prepare(SearchContext &Ctx) {
  BatchedBackend::prepare(Ctx);
  // A fresh search restarts the adaptive schedule and the accounting;
  // a resume does too - the EWMAs re-converge within a level or two.
  GpuModel = gpusim::PerfModel(Opts.GpuSpec);
  Kernels.clear();
  CpuTasksTotal = GpuTasksTotal = 0;
  CpuOpsTotal = GpuOpsTotal = 0;
  StealsTotal = 0;
  CpuBusyTotal = 0;
  CoschedSeconds = 0;
}

HeteroBackend::KernelSched &HeteroBackend::kernelSched(const char *Name) {
  for (KernelSched &K : Kernels)
    if (K.Name == Name || std::strcmp(K.Name, Name) == 0)
      return K;
  Kernels.push_back(KernelSched{Name, Opts.InitialCpuShare});
  return Kernels.back();
}

double HeteroBackend::cpuShare() const {
  double Weighted = 0, Weight = 0;
  for (const KernelSched &K : Kernels) {
    Weighted += K.Share * double(K.OpsTotal);
    Weight += double(K.OpsTotal);
  }
  return Weight > 0 ? Weighted / Weight : Opts.InitialCpuShare;
}

void HeteroBackend::account(KernelSched &K, uint64_t CpuT, uint64_t CpuO,
                            double CpuSecs, uint64_t GpuT, uint64_t GpuO,
                            uint64_t StolenNow) {
  CpuTasksTotal += CpuT;
  CpuOpsTotal += CpuO;
  GpuTasksTotal += GpuT;
  GpuOpsTotal += GpuO;
  StealsTotal += StolenNow;
  CpuBusyTotal += CpuSecs;
  K.OpsTotal += CpuO + GpuO;
  K.CpuSecsLevel += CpuSecs;
  K.CpuOpsLevel += CpuO;
  K.GpuOpsLevel += GpuO;
  double GpuSecs = 0;
  if (GpuT > 0) {
    // The model's session overhead is a constant of modeledSeconds(),
    // so the before/after delta is exactly this launch's charge.
    double Before = GpuModel.modeledSeconds();
    GpuModel.recordLaunch(size_t(GpuT), GpuO);
    GpuSecs = GpuModel.modeledSeconds() - Before;
    K.GpuSecsLevel += GpuSecs;
  }
  // The engines run concurrently, so the launch costs the slower side.
  CoschedSeconds += std::max(CpuSecs, GpuSecs);
}

uint64_t HeteroBackend::launch(const char *Name, size_t Tasks,
                               const std::function<uint64_t(size_t)> &Body) {
  if (Tasks == 0)
    return 0;
  KernelSched &K = kernelSched(Name);
  size_t Grain = Opts.GrainTasks;
  uint32_t NumUnits = uint32_t((Tasks + Grain - 1) / Grain);

  auto runRange = [&](size_t Begin, size_t End) -> uint64_t {
    uint64_t Ops = 0;
    for (size_t I = Begin; I != End; ++I)
      Ops += Body(I);
    return Ops;
  };

  if (NumUnits < 2) {
    // Too small to split: a co-scheduling round trip costs more than
    // the grid, so the CPU engine takes it whole.
    WallTimer T;
    uint64_t Ops = runRange(0, Tasks);
    account(K, Tasks, Ops, T.seconds(), 0, 0, 0);
    return Ops;
  }

  uint32_t Split = uint32_t(std::lround(K.Share * double(NumUnits)));
  // Both engines always hold at least one grain, so the EWMAs keep
  // getting a fresh sample from each.
  Split = std::max<uint32_t>(1, std::min(Split, NumUnits - 1));

  if (Opts.InlineKernels) {
    // An outer pool owns the parallelism: both engines drain
    // sequentially on the caller, no stealing. With no stealing to
    // correct imbalance, the grains are striped (Bresenham) instead
    // of split into contiguous ranges - a grid's work units are often
    // concentrated at one end, and striping samples that skew evenly
    // into both engines. Identical results either way - which engine
    // runs a grain is never observable.
    auto isCpuUnit = [&](uint32_t Unit) {
      return uint64_t(Unit + 1) * Split / NumUnits >
             uint64_t(Unit) * Split / NumUnits;
    };
    uint64_t CpuOps = 0, GpuOps = 0;
    uint64_t CpuT = 0, GpuT = 0;
    double CpuSecs = 0;
    for (unsigned Side = 0; Side < 2; ++Side) {
      WallTimer T;
      for (uint32_t Unit = 0; Unit != NumUnits; ++Unit) {
        if (isCpuUnit(Unit) != (Side == 0))
          continue;
        size_t Begin = size_t(Unit) * Grain;
        size_t End = std::min(Begin + Grain, Tasks);
        uint64_t Ops = runRange(Begin, End);
        (Side == 0 ? CpuOps : GpuOps) += Ops;
        (Side == 0 ? CpuT : GpuT) += End - Begin;
      }
      if (Side == 0)
        CpuSecs = T.seconds();
    }
    account(K, CpuT, CpuOps, CpuSecs, GpuT, GpuOps, 0);
    return CpuOps + GpuOps;
  }

  WorkQueue Q(NumUnits, Split);
  std::atomic<uint64_t> SideOps[2] = {{0}, {0}};
  std::atomic<uint64_t> SideTasks[2] = {{0}, {0}};
  auto drain = [&](unsigned SideIdx, ThreadPool &Pool) {
    // Every lane (workers plus the driving thread) loops the queue:
    // own side front-first, then steals from the other side's back.
    size_t Lanes = size_t(Pool.workerCount()) + 1;
    Pool.parallelFor(Lanes, [&](size_t) {
      uint64_t Ops = 0;
      uint64_t Count = 0;
      for (uint32_t Unit; (Unit = Q.claim(SideIdx)) != WorkQueue::None;) {
        size_t Begin = size_t(Unit) * Grain;
        size_t End = std::min(Begin + Grain, Tasks);
        Ops += runRange(Begin, End);
        Count += End - Begin;
      }
      SideOps[SideIdx].fetch_add(Ops, std::memory_order_relaxed);
      SideTasks[SideIdx].fetch_add(Count, std::memory_order_relaxed);
    });
  };

  // The GPU engine drains on a helper thread (its pool's driver), the
  // CPU engine on the caller - the two engines genuinely co-execute.
  double CpuSecs = 0;
  std::thread GpuThread([&] { drain(1, GpuPool); });
  {
    WallTimer T;
    drain(0, CpuPool);
    CpuSecs = T.seconds();
  }
  GpuThread.join();

  uint64_t CpuT = SideTasks[0].load(std::memory_order_relaxed);
  uint64_t GpuT = SideTasks[1].load(std::memory_order_relaxed);
  uint64_t CpuO = SideOps[0].load(std::memory_order_relaxed);
  uint64_t GpuO = SideOps[1].load(std::memory_order_relaxed);
  account(K, CpuT, CpuO, CpuSecs, GpuT, GpuO,
          Q.stolenBy(0) + Q.stolenBy(1));
  return CpuO + GpuO;
}

LevelOutcome HeteroBackend::runLevel(SearchContext &Ctx,
                                     uint64_t LevelCost,
                                     LevelTasks &Tasks) {
  for (KernelSched &K : Kernels) {
    K.CpuSecsLevel = K.GpuSecsLevel = 0;
    K.CpuOpsLevel = K.GpuOpsLevel = 0;
  }
  LevelOutcome Out = BatchedBackend::runLevel(Ctx, LevelCost, Tasks);
  // Per-engine, per-kernel throughput EWMAs feeding the next level's
  // static splits: the CPU rate is measured, the GPU rate comes from
  // the device model - the currencies match because both count the
  // kernels' work units (see gpusim/PerfModel.h). Kept per kernel
  // class because the engines' speed ratio differs by orders of
  // magnitude between the compute-dense and the hash-probe kernels.
  double Alpha = std::clamp(Opts.EwmaAlpha, 0.01, 1.0);
  for (KernelSched &K : Kernels) {
    if (K.CpuSecsLevel > 0 && K.CpuOpsLevel > 0) {
      double Rate = double(K.CpuOpsLevel) / K.CpuSecsLevel;
      K.CpuEwma =
          K.CpuEwma > 0 ? (1 - Alpha) * K.CpuEwma + Alpha * Rate : Rate;
    }
    if (K.GpuSecsLevel > 0 && K.GpuOpsLevel > 0) {
      double Rate = double(K.GpuOpsLevel) / K.GpuSecsLevel;
      K.GpuEwma =
          K.GpuEwma > 0 ? (1 - Alpha) * K.GpuEwma + Alpha * Rate : Rate;
    }
    if (K.CpuEwma > 0 && K.GpuEwma > 0)
      K.Share = clampShare(K.CpuEwma / (K.CpuEwma + K.GpuEwma));
  }
  return Out;
}

void HeteroBackend::addBackendStats(SynthStats &Stats) const {
  Stats.HeteroCpuTasks = CpuTasksTotal;
  Stats.HeteroGpuTasks = GpuTasksTotal;
  Stats.HeteroCpuOps = CpuOpsTotal;
  Stats.HeteroGpuOps = GpuOpsTotal;
  Stats.HeteroSteals = StealsTotal;
  Stats.HeteroCpuShare = cpuShare();
  Stats.HeteroCpuSeconds = CpuBusyTotal;
  Stats.HeteroCoschedSeconds = CoschedSeconds;
}
