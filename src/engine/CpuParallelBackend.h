//===- engine/CpuParallelBackend.h - Multi-core host backend -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel CPU backend: the batched kernel pipeline executed for
/// real on a support/ThreadPool, with no device timing model - the
/// first multi-core execution of the search in this repo. Results are
/// bit-identical to the sequential backend for every worker count
/// (uniqueness winners and the chosen satisfier are schedule-
/// independent minima; see BatchedBackend.h).
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_CPUPARALLELBACKEND_H
#define PARESY_ENGINE_CPUPARALLELBACKEND_H

#include "engine/BatchedBackend.h"

namespace paresy {
namespace engine {

/// The generate/check kernels on a host thread pool.
class CpuParallelBackend : public BatchedBackend {
public:
  /// Worker count requesting inline kernel execution (no pool at all).
  static constexpr unsigned Inline = ~0u;

  /// \p Workers host threads (0 = one per spare hardware thread; on a
  /// single-core host the kernels then run inline, which is still the
  /// same deterministic pipeline; Inline = no worker threads).
  explicit CpuParallelBackend(unsigned Workers = 0);

  std::string_view name() const override { return "cpu-parallel"; }
  size_t planCacheCapacity(const SearchContext &Ctx,
                           uint64_t BudgetBytes) override;
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_CPUPARALLELBACKEND_H
