//===- engine/GpuSimBackend.h - Simulated-device backend ---------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GPU-simulation backend: the batched kernel pipeline on the
/// simulated device of gpusim/ - kernels execute functionally on host
/// threads while the PerfModel charges each launch its modelled device
/// time (the number Table 1's "GPU" column reproduces). Functional
/// results are identical to the other backends; only the perf
/// accounting differs. gpusim/synthesizeGpu() wraps this backend and
/// surfaces the accounting.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_GPUSIMBACKEND_H
#define PARESY_ENGINE_GPUSIMBACKEND_H

#include "engine/BatchedBackend.h"
#include "gpusim/GpuSynthesizer.h"

namespace paresy {
namespace engine {

/// The kernels on the simulated device, with modelled timing and a
/// device memory cap.
class GpuSimBackend : public BatchedBackend {
public:
  explicit GpuSimBackend(const gpusim::GpuOptions &Gpu = gpusim::GpuOptions());

  std::string_view name() const override { return "gpusim"; }
  size_t planCacheCapacity(const SearchContext &Ctx,
                           uint64_t BudgetBytes) override;
  uint64_t planStoreBytes(const SearchContext &Ctx,
                          uint64_t BudgetBytes) override;

private:
  uint64_t DeviceMemoryBytes;
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_GPUSIMBACKEND_H
