//===- engine/DupLedger.h - Per-level pruning journal for spec deltas --------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dup ledger of spec-delta resynthesis (DESIGN.md Sec. 14).
///
/// The only pruning decision the cost sweep bases on CS *equality* -
/// and hence the only one a spec edit can invalidate - is dropping a
/// candidate whose CS collides with an earlier winner. Everything else
/// (costs, enumeration order, operand ranges) is independent of the
/// examples. So to know whether the levels computed under the old spec
/// are still exactly what a cold run on the edited spec would produce,
/// it suffices to re-check each dropped candidate against its winner
/// under the widened columns: if every pair still collides, the
/// level's rows, ids and counters are all unchanged; the first pair
/// that splits marks the level the resumed sweep must re-run.
///
/// The ledger is that journal: per completed level, the cumulative
/// candidate/unique counters at its boundary plus one compact record
/// per dropped duplicate (its provenance and its winner's global row
/// id). Backends append records in candidate-rank order from
/// runLevel() via SearchContext::Ledger; the session brackets levels
/// with beginLevel / commitLevel / cancelLevel so mid-level rollbacks
/// never leave half a level journaled.
///
/// Degradation is by prefix, never by gaps: once the byte cap is
/// reached - or a winner was dropped (CacheFilled), after which the
/// dup set is unknowable - the ledger stops covering further levels
/// but keeps everything already committed. A delta replay then simply
/// re-runs from the first uncovered level.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_DUPLEDGER_H
#define PARESY_ENGINE_DUPLEDGER_H

#include "core/LanguageCache.h"
#include "core/Snapshot.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace paresy {
namespace engine {

/// One pruned candidate: how it was built and which committed row it
/// collided with. Operand ids and the winner id are global row ids,
/// stable across shard counts and backends.
struct DupRec {
  Provenance Prov;
  uint32_t WinnerRow = 0;
};

/// One covered level: its cost, the run-cumulative counters at its
/// boundary (what a resumed sweep restores when it replays through
/// this level), and its slice of the dup records.
struct DupLevelRec {
  uint64_t Cost = 0;
  uint64_t CumCandidates = 0;
  uint64_t CumUnique = 0;
  uint32_t DupBegin = 0;
  uint32_t DupEnd = 0;
};

/// Append-only journal of pruning decisions, coverage degrading by
/// level prefix under a byte cap.
class DupLedger {
public:
  /// Cap on record storage (~16 MiB). Far above any instance the
  /// sweep solves interactively; a bound, not a tuning knob.
  static constexpr uint64_t ByteCap = 16 << 20;

  /// Coverage ended (byte cap or a dropped winner): levels after the
  /// committed prefix are not journaled and a delta replay re-runs
  /// them.
  bool truncated() const { return Truncated; }

  /// Completed levels with full dup coverage, in execution order.
  size_t levelCount() const { return Levels.size(); }
  const DupLevelRec &level(size_t I) const { return Levels[I]; }

  /// The covered level of cost \p Cost, or null.
  const DupLevelRec *findLevel(uint64_t Cost) const {
    for (const DupLevelRec &L : Levels)
      if (L.Cost == Cost)
        return &L;
    return nullptr;
  }

  const DupRec &dup(size_t I) const { return Dups[I]; }

  uint64_t bytesUsed() const {
    return Dups.size() * sizeof(DupRec) + Levels.size() * sizeof(DupLevelRec);
  }

  /// Opens journaling for the level about to run. No-op once
  /// truncated.
  void beginLevel() {
    assert(!Open && "level journal already open");
    if (Truncated)
      return;
    Open = true;
    OpenBegin = uint32_t(Dups.size());
  }

  /// Journals one pruned duplicate of the open level. Backends call
  /// this in candidate-rank order; past the byte cap the level - and
  /// all later ones - degrade to uncovered.
  void record(const Provenance &P, uint32_t WinnerRow) {
    if (!Open)
      return;
    if (bytesUsed() >= ByteCap) {
      markBroken();
      return;
    }
    Dups.push_back({P, WinnerRow});
  }

  /// Commits the open level: it is fully journaled and its boundary
  /// counters are \p CumCandidates / \p CumUnique.
  void commitLevel(uint64_t Cost, uint64_t CumCandidates,
                   uint64_t CumUnique) {
    if (!Open)
      return;
    Open = false;
    Levels.push_back({Cost, CumCandidates, CumUnique, OpenBegin,
                      uint32_t(Dups.size())});
  }

  /// Discards the open level's records (mid-level rollback: the level
  /// will re-run and re-journal).
  void cancelLevel() {
    if (!Open)
      return;
    Open = false;
    Dups.resize(OpenBegin);
  }

  /// Ends coverage: drops the open level (if any) and refuses further
  /// journaling. Called when a winner is dropped (CacheFilled) or the
  /// byte cap is reached.
  void markBroken() {
    cancelLevel();
    Truncated = true;
  }

  /// Keeps only the first \p Count committed levels and their dup
  /// records, reopening coverage (a delta replay validated this prefix
  /// and re-runs the rest, journaling afresh). Pre: no open level.
  void keepLevelPrefix(size_t Count) {
    assert(!Open && "truncating mid-level");
    assert(Count <= Levels.size() && "prefix longer than the journal");
    Dups.resize(Count == Levels.size() ? Dups.size()
                                       : Levels[Count].DupBegin);
    Levels.resize(Count);
    Truncated = false;
  }

  /// Serializes the committed prefix as one tagged section.
  void save(SnapshotWriter &W) const {
    assert(!Open && "serializing mid-level");
    size_t Section = W.beginSection("ledger");
    W.u8(Truncated ? 1 : 0);
    W.u64(Levels.size());
    for (const DupLevelRec &L : Levels) {
      W.u64(L.Cost);
      W.u64(L.CumCandidates);
      W.u64(L.CumUnique);
      W.u64(uint64_t(L.DupEnd) - L.DupBegin);
    }
    W.u64(Dups.size());
    for (const DupRec &D : Dups) {
      W.u8(uint8_t(D.Prov.Kind));
      W.u8(uint8_t(D.Prov.Symbol));
      W.u32(D.Prov.Lhs);
      W.u32(D.Prov.Rhs);
      W.u32(D.WinnerRow);
    }
    W.endSection(Section);
  }

  /// Restores a ledger serialized by save(); false on a malformed
  /// stream (the ledger is then unusable).
  bool load(SnapshotReader &R) {
    if (!R.enterSection("ledger"))
      return false;
    uint8_t Trunc = 0;
    uint64_t NLevels = 0;
    if (!R.u8(Trunc) || !R.u64(NLevels))
      return false;
    Truncated = Trunc != 0;
    Levels.clear();
    Dups.clear();
    uint32_t Offset = 0;
    for (uint64_t I = 0; I != NLevels; ++I) {
      DupLevelRec L;
      uint64_t Count = 0;
      if (!R.u64(L.Cost) || !R.u64(L.CumCandidates) ||
          !R.u64(L.CumUnique) || !R.u64(Count))
        return false;
      if (Count > 0xffffffffu - Offset) {
        R.markFailed();
        return false;
      }
      L.DupBegin = Offset;
      Offset += uint32_t(Count);
      L.DupEnd = Offset;
      Levels.push_back(L);
    }
    uint64_t NDups = 0;
    if (!R.u64(NDups))
      return false;
    if (NDups != Offset || NDups > ByteCap / sizeof(DupRec) + 1) {
      R.markFailed();
      return false;
    }
    Dups.reserve(size_t(NDups));
    for (uint64_t I = 0; I != NDups; ++I) {
      DupRec D;
      uint8_t Kind = 0, Symbol = 0;
      if (!R.u8(Kind) || !R.u8(Symbol) || !R.u32(D.Prov.Lhs) ||
          !R.u32(D.Prov.Rhs) || !R.u32(D.WinnerRow))
        return false;
      if (Kind > uint8_t(CsOp::Union)) {
        R.markFailed();
        return false;
      }
      D.Prov.Kind = CsOp(Kind);
      D.Prov.Symbol = char(Symbol);
      Dups.push_back(D);
    }
    return R.leaveSection();
  }

private:
  std::vector<DupRec> Dups;
  std::vector<DupLevelRec> Levels;
  uint32_t OpenBegin = 0;
  bool Open = false;
  bool Truncated = false;
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_DUPLEDGER_H
