//===- engine/Kernels.h - Shared per-task CS kernel bodies -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inner loops of the data-parallel backends: free functions over
/// raw CS words that construct one candidate's characteristic sequence
/// from its provenance, with no shared mutable state, so any number of
/// tasks can run them concurrently. Both the host-parallel backend and
/// the GPU simulator execute these exact bodies (one task per
/// candidate, results into pre-allocated buffers), mirroring how the
/// paper's CUDA kernels are structured.
///
/// Each function returns the work units it performed - split-pair
/// evaluations plus word-level passes - the currency the GPU
/// performance model charges for.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_KERNELS_H
#define PARESY_ENGINE_KERNELS_H

#include "core/ShardedStore.h"

#include <cstdint>

namespace paresy {

class GuideTable;
class Universe;

namespace engine {

/// Dst = A . B. Uses the staged guide-table fold when \p GT is
/// non-null; otherwise re-derives every split through universe lookups
/// (the unstaged ablation path). Dst must not alias A or B.
uint64_t csConcat(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                  const Universe &U, const GuideTable *GT);

/// Dst = A* as the fixpoint of S = 1 + S.A, with task-local scratch.
/// Dst must not alias A.
uint64_t csStar(uint64_t *Dst, const uint64_t *A, const Universe &U,
                const GuideTable *GT);

/// Builds the CS for one provenance task into \p Dst. Operand rows
/// are read from \p Store by global id (always at strictly lower
/// cost, hence already compacted when the task runs).
uint64_t generateCs(uint64_t *Dst, const Provenance &Prov,
                    const Universe &U, const GuideTable *GT,
                    const ShardedStore &Store);

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_KERNELS_H
