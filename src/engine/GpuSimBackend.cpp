//===- engine/GpuSimBackend.cpp - Simulated-device backend -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/GpuSimBackend.h"

#include "lang/Universe.h"

#include <algorithm>

using namespace paresy;
using namespace paresy::engine;

GpuSimBackend::GpuSimBackend(const gpusim::GpuOptions &Gpu)
    : BatchedBackend(Gpu.Spec, Gpu.HostWorkers, Gpu.BatchTasks),
      DeviceMemoryBytes(Gpu.Spec.MemoryBytes) {}

size_t GpuSimBackend::planCacheCapacity(const SearchContext &Ctx,
                                        uint64_t BudgetBytes) {
  // The shared pipeline split, against whatever fits on the device.
  return splitBudget(Ctx,
                     std::min<uint64_t>(BudgetBytes, DeviceMemoryBytes));
}

uint64_t GpuSimBackend::planStoreBytes(const SearchContext &Ctx,
                                       uint64_t BudgetBytes) {
  // Same device cap as planCacheCapacity, so the store's byte budget
  // and its row capacity describe the same memory.
  return BatchedBackend::planStoreBytes(
      Ctx, std::min<uint64_t>(BudgetBytes, DeviceMemoryBytes));
}
