//===- engine/Session.cpp - Resumable search sessions ------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The per-level state machine behind runStaged(): Alg. 1's cost sweep
/// and the task enumeration of Alg. 2, plus OnTheFly mode and the
/// REI-with-error variant of Sec. 5.2, restructured so the sweep can
/// stop and continue at any level boundary. See DESIGN.md Sec. 9 for
/// the state machine and the snapshot format, and Sec. 2 for the
/// deviations from the paper's pseudocode (epsilon seeding,
/// commutative-union halving).
///
//===----------------------------------------------------------------------===//

#include "engine/Session.h"

#include "core/Snapshot.h"
#include "engine/DupLedger.h"
#include "engine/LevelTasks.h"
#include "lang/CharSeq.h"
#include "lang/Fingerprint.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace paresy;
using namespace paresy::engine;

const char *paresy::engine::sessionStateName(SessionState St) {
  switch (St) {
  case SessionState::Running:
    return "Running";
  case SessionState::Parked:
    return "Parked";
  case SessionState::Finished:
    return "Finished";
  }
  return "?";
}

namespace {

/// The resolved cost bound of \p Opts for \p S: MaxCost, or the
/// always-sufficient overfit bound when MaxCost is 0. The overfit
/// bound writes epsilon as the literal '#'; without the epsilon seed
/// that literal is unreachable and the fallback is a question mark, so
/// the automatic bound widens accordingly.
uint64_t resolveMaxCost(const Spec &S, const SynthOptions &Opts) {
  uint64_t MaxCost =
      Opts.MaxCost ? Opts.MaxCost : overfitCostBound(S, Opts.Cost);
  if (!Opts.MaxCost && !Opts.SeedEpsilon)
    MaxCost += Opts.Cost.Question;
  return MaxCost;
}

/// A timeout of 0 means "none": rank budgets so that every real budget
/// is below it.
double timeoutRank(double TimeoutSeconds) {
  return TimeoutSeconds == 0 ? std::numeric_limits<double>::infinity()
                             : TimeoutSeconds;
}

} // namespace

SearchSession::SearchSession(std::shared_ptr<const StagedQuery> Query,
                             std::unique_ptr<Backend> Backend)
    : QOwned(std::move(Query)), BOwned(std::move(Backend)),
      Q(QOwned.get()), B(BOwned.get()) {
  initCommon();
}

SearchSession::SearchSession(const StagedQuery &Query,
                             engine::Backend &Backend)
    : Q(&Query), B(&Backend) {
  initCommon();
}

SearchSession::~SearchSession() = default;

void SearchSession::initCommon() {
  EffOpts = Q->options();
  if (Q->immediate()) {
    Result = Q->immediateResult();
    St = SessionState::Finished;
    return;
  }
  // TimeoutSeconds budgets staging + sweep, exactly as in the fused
  // pre-split pipeline: this query's staging time counts against the
  // deadline up front. Runs off a cached artifact were charged only
  // the (tiny) restage time - reuse widens their effective budget.
  ConsumedSeconds = Q->stagingSeconds();
  St = SessionState::Running;
}

void SearchSession::bindContext() {
  const Universe &U = *Q->universe();
  const GuideTable *GT = Q->guideTable().get();

  // The algebra is per-run (it counts the split pairs this run visits
  // and owns star-fold scratch); the artifacts it reads are the
  // staged, shared ones. PairsBefore carries counts from earlier runs
  // of a restored session.
  Algebra = std::make_unique<CsAlgebra>(U, GT);
  if (GT)
    Stats.GuidePairs = GT->totalPairs();
  Stats.UniverseSize = U.size();
  Stats.CsWords = U.csWords();

  Ctx.S = &Q->spec();
  Ctx.Sigma = &Q->alphabet();
  Ctx.Opts = &EffOpts;
  Ctx.U = &U;
  Ctx.GT = GT;
  Ctx.Algebra = Algebra.get();
  Ctx.MistakeBudget = Q->mistakeBudget();
  Ctx.Clock = &Clock;
  Ctx.Cancel = Cancel ? Cancel : ParkRequest;

  // The completeness horizon once the cache has filled at cost F:
  // every candidate at cost <= F + MinExtra - 1 references only
  // levels < F, which are fully cached, so minimality still holds.
  const CostFn &Cost = EffOpts.Cost;
  MinExtra = std::min<uint64_t>(
      std::min<uint64_t>(Cost.Question, Cost.Star),
      std::min<uint64_t>(uint64_t(Cost.Concat) + Cost.Literal,
                         uint64_t(Cost.Union) + Cost.Literal));
}

StoreTierConfig SearchSession::storeTierConfig() {
  StoreTierConfig Tier;
  if (!storeCompressionEnabled(EffOpts))
    return Tier;
  Tier.Compress = true;
  // The store's byte budget is the share planCacheCapacity() gives it
  // of the same run budget, so a byte-full verdict fires where the raw
  // row capacity would have (just much later in rows).
  Tier.ByteBudget = B->planStoreBytes(Ctx, EffOpts.MemoryLimitBytes);
  // The in-flight window cap: an explicit option wins; otherwise an
  // eighth of the store's byte share (floored so tiny budgets do not
  // seal every few rows), split across the shards. Without a byte
  // budget the window stays unbounded - levels were already free to
  // grow, and capping would only add seal overhead.
  unsigned ShardCount = std::max(1u, EffOpts.Shards);
  if (EffOpts.WindowStoreBytes)
    Tier.WindowBudget = EffOpts.WindowStoreBytes;
  else if (Tier.ByteBudget)
    Tier.WindowBudget =
        std::max<uint64_t>(uint64_t(64) << 10, Tier.ByteBudget / 8) /
        ShardCount;
  if (!EffOpts.SpillDir.empty()) {
    Tier.PinnedBytes = EffOpts.PinnedStoreBytes;
    // One spill file name per store instance, so concurrent sessions
    // sharing a SpillDir never collide (each shard then appends its
    // own ".shardN" suffix).
    static std::atomic<uint64_t> SpillSerial{0};
    Tier.SpillPath =
        EffOpts.SpillDir + "/paresy-spill-" +
        std::to_string(SpillSerial.fetch_add(1, std::memory_order_relaxed));
  }
  return Tier;
}

void SearchSession::prepareRun() {
  bindContext();
  Stats.PrecomputeSeconds = Q->stagingSeconds();

  // The backend divides the memory budget between the language store
  // and its own uniqueness structures; the store divides its share -
  // row capacity, and with it MemoryLimitBytes - evenly across the
  // shards (DESIGN.md Sec. 8). One shard reproduces the monolithic
  // cache exactly.
  unsigned Shards = std::max(1u, EffOpts.Shards);
  size_t Capacity = B->planCacheCapacity(Ctx, EffOpts.MemoryLimitBytes);
  Store = std::make_unique<ShardedStore>(
      Q->universe()->csWords(), Shards,
      std::max<size_t>(1, Capacity / Shards), storeTierConfig());
  Ctx.Store = Store.get();
  B->prepare(Ctx);

  // Journal pruned duplicates for spec-delta resynthesis. Error
  // tolerance is excluded: its mistake budget grows with the example
  // count, so satisfies() verdicts - not just dup sets - would need
  // revalidation.
  if (B->supportsDeltaLedger() && Ctx.MistakeBudget == 0) {
    Ledger = std::make_unique<DupLedger>();
    Ctx.Ledger = Ledger.get();
  }

  MaxCostResolved = resolveMaxCost(Q->spec(), EffOpts);
  NextCost = EffOpts.Cost.Literal;
  Prepared = true;
}

uint64_t SearchSession::horizon() const {
  return EffOpts.EnableOnTheFly ? FilledCost + MinExtra - 1 : FilledCost;
}

SessionState SearchSession::step() {
  if (St == SessionState::Finished)
    return St;
  if (!Prepared)
    prepareRun();
  else if (NeedsRollback)
    rollbackToBoundary();
  St = SessionState::Running;

  // The session clock runs only while the session does: parked wall
  // time never counts against the timeout budget.
  Clock.reset();
  Clock.rewind(ConsumedSeconds);

  // Cooperative cancellation wins over every budget verdict: a
  // cancelled arm's answer is discarded by its portfolio, so parking
  // state or reporting NotFound for it would only waste memory.
  if (Cancel && Cancel->load(std::memory_order_relaxed)) {
    finishWith(SynthStatus::Cancelled, "cancelled by stop token");
    return St;
  }

  // A park request (serving layer: the client disconnected) stops at
  // the boundary like a timeout would, keeping the full state so a
  // reconnect with the same session fingerprint warm-starts.
  if (parkRequested()) {
    parkWith(SynthStatus::Timeout, "interrupted; session parked for resume");
    return St;
  }

  // Budget and horizon checks, in the pre-session driver's order. The
  // seed level (Alg. 1 line 6) runs unconditionally, like the fused
  // pipeline ran it before entering the sweep loop.
  if (NextCost != EffOpts.Cost.Literal) {
    if (NextCost > MaxCostResolved) {
      parkWith(SynthStatus::NotFound);
      return St;
    }
    if (CacheFilled && NextCost > horizon()) {
      finishWith(SynthStatus::OutOfMemory);
      return St;
    }
    if (EffOpts.TimeoutSeconds > 0 &&
        Clock.seconds() > EffOpts.TimeoutSeconds) {
      parkWith(SynthStatus::Timeout);
      return St;
    }
  }

  runLevelAt(NextCost);
  if (St == SessionState::Running)
    ConsumedSeconds = Clock.seconds();
  return St;
}

SynthResult SearchSession::run() {
  while (St == SessionState::Running)
    step();
  return Result;
}

void SearchSession::captureBoundary() {
  LastBoundary.Candidates = Stats.CandidatesGenerated;
  LastBoundary.Unique = Stats.UniqueLanguages;
  LastBoundary.Pairs = PairsBefore + Algebra->pairsVisited();
  LastBoundary.KernelOps = KernelOps;
  LastBoundary.LastCompletedCost = Stats.LastCompletedCost;
  LastBoundary.NonEmptyLevels = NonEmptyLevels.size();
  LastBoundary.StoreSize = Store->size();
  LastBoundary.ShardRows.resize(Store->shardCount());
  for (unsigned S = 0; S != Store->shardCount(); ++S)
    LastBoundary.ShardRows[S] = uint32_t(Store->shardRows(S));
  LastBoundary.CacheFilled = CacheFilled;
  LastBoundary.FilledCost = FilledCost;
  LastBoundary.OnTheFly = Stats.OnTheFly;
}

void SearchSession::rollbackToBoundary() {
  assert(NeedsRollback && "no partial level to roll back");
  Stats.CandidatesGenerated = LastBoundary.Candidates;
  Stats.UniqueLanguages = LastBoundary.Unique;
  Stats.LastCompletedCost = LastBoundary.LastCompletedCost;
  Stats.OnTheFly = LastBoundary.OnTheFly;
  KernelOps = LastBoundary.KernelOps;
  PairsBefore = LastBoundary.Pairs;
  Algebra->resetPairsVisited();
  CacheFilled = LastBoundary.CacheFilled;
  FilledCost = LastBoundary.FilledCost;
  NonEmptyLevels.resize(LastBoundary.NonEmptyLevels);
  Store->truncate(LastBoundary.ShardRows, LastBoundary.StoreSize);
  B->rebuildFromStore(Ctx, LastBoundary.Candidates);
  NeedsRollback = false;
}

void SearchSession::runLevelAt(uint64_t C) {
  captureBoundary();
  ++Stats.LevelsRun;
  LevelTasks Tasks = C == EffOpts.Cost.Literal
                         ? LevelTasks::seedLevel(Ctx)
                         : LevelTasks::sweepLevel(Ctx, C, NonEmptyLevels);

  Ctx.CandidatesBefore = Stats.CandidatesGenerated;
  uint32_t LevelBegin = uint32_t(Store->size());
  if (Ctx.Ledger)
    Ledger->beginLevel();
  LevelOutcome Last = B->runLevel(Ctx, C, Tasks);
  uint32_t LevelEnd = uint32_t(Store->size());

  // A timed-out level that can roll back is about to be erased from
  // the kept state; recording it in the level table would leave a
  // stale entry truncation cannot distinguish from a completed empty
  // level, so the boundary's table would no longer be reproduced
  // exactly. Its work still counts in the *reported* stats below,
  // exactly like the pre-session driver.
  // A mid-level stop by the *park* token (not the cancel token) must
  // keep the session resumable, so it follows the timeout path below.
  bool ParkInterrupt = Last.Cancelled && parkRequested();
  bool WillRollback = (Last.TimedOut || ParkInterrupt) &&
                      !Last.FoundSatisfier && B->supportsResume() &&
                      !LastBoundary.CacheFilled;
  Stats.CandidatesGenerated += Last.Candidates;
  Stats.UniqueLanguages += Last.Unique;
  KernelOps += Last.Ops;
  if (!WillRollback) {
    Store->setLevel(C, LevelBegin, LevelEnd);
    if (LevelEnd != LevelBegin)
      NonEmptyLevels.push_back(C);
    // Level boundary: the kept level's rows are final, so the
    // compressed store seals them out of the open window (and spills
    // past the pinned budget). A rolled-back level stays unsealed -
    // its rows are about to be truncated away, and truncation only
    // reaches open-window rows.
    if (Store->compressed()) {
      Store->sealLevel();
      B->onLevelSealed(Ctx);
    }
  }
  if (Last.CacheFilled && !CacheFilled) {
    CacheFilled = true;
    FilledCost = C;
    Stats.OnTheFly = EffOpts.EnableOnTheFly;
  }
  // A satisfier never cuts a level short (all its candidates were
  // generated), so the level still counts as completed; only resource
  // aborts, timeouts and cancellations leave it partial.
  if (!Last.TimedOut && !Last.Abort && !Last.Cancelled) {
    Stats.LastCompletedCost = C;
    // The ledger journals completed levels only: a cut-short level's
    // partial dup list could never be validated against a cold run.
    if (Ctx.Ledger)
      Ledger->commitLevel(C, Stats.CandidatesGenerated,
                          Stats.UniqueLanguages);
    fireProgress(C);
  } else if (Ctx.Ledger) {
    Ledger->cancelLevel();
  }

  // A satisfier takes precedence over resource aborts in the same
  // level: candidates of one level share the same cost, so the first
  // satisfier is minimal even if the level was cut short.
  if (Last.FoundSatisfier) {
    finishFound(Last.Satisfier, C);
    return;
  }
  if (Last.Cancelled) {
    if (ParkInterrupt) {
      // The disconnect struck mid-level: roll back to the boundary and
      // park, exactly like a mid-level timeout, so the reconnect
      // re-runs the level whole. Backends that cannot roll back lose
      // the state; report Timeout (never cached) rather than
      // Cancelled so the retry path stays open.
      if (WillRollback) {
        NeedsRollback = true;
        parkWith(SynthStatus::Timeout,
                 "interrupted; session parked for resume");
      } else {
        finishWith(SynthStatus::Timeout,
                   "interrupted mid-level; state not resumable on this "
                   "backend");
      }
      return;
    }
    finishWith(SynthStatus::Cancelled, "cancelled by stop token");
    return;
  }
  if (Last.TimedOut) {
    // The deadline struck mid-level. The reported result counts the
    // partial level's work, exactly like the pre-session driver; the
    // *kept* state rolls back to the boundary before the next step,
    // so the level re-runs whole on resume. Rolling back is exact
    // only while no winner has been dropped (a filled shard loses the
    // dropped CSs the uniqueness sets would need), and only on
    // backends that can rebuild their sets.
    if (WillRollback) {
      NeedsRollback = true;
      parkWith(SynthStatus::Timeout);
    } else {
      finishWith(SynthStatus::Timeout);
    }
    return;
  }
  if (Last.Abort) {
    finishWith(SynthStatus::OutOfMemory, Last.AbortReason);
    return;
  }
  NextCost = C + 1;
}

void SearchSession::fillStats(SynthResult &R) {
  B->addBackendStats(Stats);
  Stats.CacheEntries = Store ? Store->size() : 0;
  Stats.MemoryBytes = (Store ? Store->bytesUsed() : 0) + B->auxBytesUsed();
  Stats.PairsVisited =
      PairsBefore + (Algebra ? Algebra->pairsVisited() : 0) + KernelOps;
  ConsumedSeconds = Clock.seconds();
  Stats.SearchSeconds = ConsumedSeconds - Stats.PrecomputeSeconds;
  if (Store) {
    Stats.ShardCount = Store->shardCount();
    Stats.ShardRows.resize(Store->shardCount());
    Stats.ShardDropped.resize(Store->shardCount());
    for (unsigned S = 0; S != Store->shardCount(); ++S) {
      Stats.ShardRows[S] = Store->shardRows(S);
      Stats.ShardDropped[S] = Store->shardDropped(S);
    }
    if (Store->compressed()) {
      Stats.StoreCompressed = true;
      Stats.StoreSealedRows = Store->sealedRows();
      Stats.StoreWindowRows = Store->windowRows();
      Stats.StoreCompressedBytes = Store->compressedBytes();
      Stats.StoreLogicalBytes =
          uint64_t(Store->sealedRows()) *
          LanguageCache::strideForWords(Store->csWords()) *
          sizeof(uint64_t);
      Stats.StoreCompressionRatio = Store->compressionRatio();
      for (unsigned C = 0; C != NumRowCodecs; ++C)
        Stats.StoreCodecRows[C] = Store->codecRows(C);
      Stats.StoreHotChunks = Store->hotChunks();
      Stats.StoreSpilledChunks = Store->spilledChunks();
      Stats.StoreHotBytes = Store->hotBytes();
      Stats.StoreSpilledBytes = Store->spilledBytes();
    }
  }
  R.Stats = Stats;
}

void SearchSession::finishWith(SynthStatus Status, std::string Message) {
  SynthResult R;
  R.Status = Status;
  R.Message = std::move(Message);
  fillStats(R);
  Result = std::move(R);
  St = SessionState::Finished;
}

void SearchSession::parkWith(SynthStatus Status, std::string Message) {
  SynthResult R;
  R.Status = Status;
  R.Message = std::move(Message);
  fillStats(R);
  Result = std::move(R);
  St = SessionState::Parked;
}

bool SearchSession::parkRequested() const {
  if (Cancel && Cancel->load(std::memory_order_relaxed))
    return false; // The cancel token wins: a cancelled arm never parks.
  return ParkRequest && ParkRequest->load(std::memory_order_relaxed);
}

void SearchSession::fireProgress(uint64_t CompletedCost) {
  if (!Progress)
    return;
  SessionProgress P;
  P.CompletedCost = CompletedCost;
  P.NextCost = CompletedCost + 1;
  P.MaxCost = MaxCostResolved;
  P.Candidates = Stats.CandidatesGenerated;
  P.Unique = Stats.UniqueLanguages;
  P.ConsumedSeconds = Clock.seconds();
  Progress(P);
}

void SearchSession::finishFound(const Provenance &Satisfier,
                                uint64_t Cost) {
  RegexManager M;
  const Regex *Re = Store->reconstructCandidate(Satisfier, M);
  SynthResult R;
  R.Status = SynthStatus::Found;
  R.Regex = toString(Re);
  R.Cost = Cost;
  assert(EffOpts.Cost.of(Re) == Cost &&
         "reconstructed expression must cost exactly its level");
  fillStats(R);
  Result = std::move(R);
  St = SessionState::Finished;
}

//===----------------------------------------------------------------------===//
// Budget extension
//===----------------------------------------------------------------------===//

bool SearchSession::canExtendTo(const SynthOptions &NewOpts) const {
  if (St != SessionState::Parked)
    return false;
  // Budgets may only widen: the resumed sweep must retrace the prefix
  // a cold run at the new budget would compute.
  if (resolveMaxCost(Q->spec(), NewOpts) < MaxCostResolved)
    return false;
  double NewRank = timeoutRank(NewOpts.TimeoutSeconds);
  double OldRank = timeoutRank(EffOpts.TimeoutSeconds);
  if (Result.Status != SynthStatus::Timeout)
    return NewRank >= OldRank;
  // A Timeout park that exhausted its deadline needs a *strictly*
  // larger one: resuming under the same deadline re-times-out
  // instantly off the recorded clock, and a load-inflated first run
  // would then pin Timeout on retries that a genuine re-run might beat
  // (NotFound parks carry no clock, so an equal deadline is fine
  // there). An *interrupt* park (the park token: a client disconnect)
  // recorded less compute than the old deadline, so an equal budget
  // still has headroom and may resume.
  return NewRank > OldRank ||
         (NewRank >= OldRank && ConsumedSeconds < OldRank);
}

bool SearchSession::deltaCapable() const {
  return Prepared && Store && QOwned && BOwned && Ledger &&
         Ledger->levelCount() > 0 && B->supportsResume() &&
         B->supportsDeltaLedger();
}

bool SearchSession::extendBudget(uint64_t NewMaxCost,
                                 double NewTimeoutSeconds) {
  if (St == SessionState::Finished)
    return false;
  EffOpts.MaxCost = NewMaxCost;
  EffOpts.TimeoutSeconds = NewTimeoutSeconds;
  if (Prepared)
    MaxCostResolved = resolveMaxCost(Q->spec(), EffOpts);
  // Each budget extension starts a new run: the per-run level counter
  // restarts so callers aggregating LevelsRun across retries never
  // double-count the parked prefix.
  Stats.LevelsRun = 0;
  St = SessionState::Running;
  return true;
}

void SearchSession::setCancelToken(const std::atomic<bool> *Token) {
  Cancel = Token;
  Ctx.Cancel = Token ? Token : ParkRequest;
}

void SearchSession::setParkToken(const std::atomic<bool> *Token) {
  ParkRequest = Token;
  if (!Cancel)
    Ctx.Cancel = Token;
}

void SearchSession::setProgressHook(SessionProgressFn Hook) {
  Progress = std::move(Hook);
}

uint64_t SearchSession::bytesUsed() const {
  return (Store ? Store->bytesUsed() : 0) + B->auxBytesUsed();
}

std::string SearchSession::sessionKeyText() const {
  return canonicalSessionText(canonicalSpec(Q->spec()), Q->alphabet(),
                              EffOpts);
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

namespace {

/// Driver-progress byte in the snapshot that marks a still-Running
/// session (a clean pause); parked sessions store their result status.
constexpr uint8_t RunningMarker = 0xff;

} // namespace

bool SearchSession::canSave() const {
  return St != SessionState::Finished && B->supportsResume();
}

bool SearchSession::save(SnapshotWriter &W) {
  if (!canSave())
    return false;
  if (!Prepared)
    prepareRun(); // A never-stepped session snapshots as "before level 1".
  if (NeedsRollback)
    rollbackToBoundary();

  writeSnapshotHeader(W, "session");

  size_t Meta = W.beginSection("meta");
  W.str(sessionKeyText());
  W.str(B->name());
  W.endSection(Meta);

  size_t Driver = W.beginSection("driver");
  W.u8(St == SessionState::Parked ? uint8_t(Result.Status)
                                  : RunningMarker);
  W.u64(NextCost);
  W.u64(Stats.CandidatesGenerated);
  W.u64(Stats.UniqueLanguages);
  W.u64(Stats.LastCompletedCost);
  W.u64(PairsBefore + Algebra->pairsVisited());
  W.u64(KernelOps);
  W.u8(CacheFilled ? 1 : 0);
  W.u64(FilledCost);
  W.u8(Stats.OnTheFly ? 1 : 0);
  W.f64(ConsumedSeconds);
  W.f64(Stats.PrecomputeSeconds);
  W.u64(NonEmptyLevels.size());
  for (uint64_t Level : NonEmptyLevels)
    W.u64(Level);
  W.endSection(Driver);

  saveShardedStore(W, *Store);
  B->saveState(W);
  if (Ledger)
    Ledger->save(W);
  appendSnapshotChecksum(W);
  return true;
}

std::unique_ptr<SearchSession>
SearchSession::restore(std::string_view Bytes,
                       std::shared_ptr<const StagedQuery> Query,
                       std::unique_ptr<Backend> Backend,
                       std::string *Error) {
  auto Fail = [&](std::string Message) -> std::unique_ptr<SearchSession> {
    if (Error)
      *Error = std::move(Message);
    return nullptr;
  };
  if (!verifySnapshotChecksum(Bytes))
    return Fail("snapshot rejected: truncated or corrupt (checksum "
                "mismatch)");
  SnapshotReader R(stripSnapshotChecksum(Bytes));
  if (!readSnapshotHeader(R, "session"))
    return Fail("snapshot rejected: not a paresy session snapshot of "
                "this format version");

  std::string KeyText, BackendName;
  if (!R.enterSection("meta") || !R.str(KeyText) || !R.str(BackendName) ||
      !R.leaveSection())
    return Fail("snapshot rejected: malformed meta section");
  if (!Query || Query->immediate())
    return Fail("snapshot rejected: the query resolves without a "
                "search; nothing to resume");
  std::string Expect =
      canonicalSessionText(canonicalSpec(Query->spec()),
                           Query->alphabet(), Query->options());
  if (KeyText != Expect)
    return Fail("snapshot rejected: it belongs to a different query "
                "(spec, alphabet or non-budget options differ)");
  if (!Backend || Backend->name() != BackendName)
    return Fail("snapshot rejected: it was taken on backend '" +
                BackendName + "'");
  if (!Backend->supportsResume())
    return Fail("snapshot rejected: backend '" + BackendName +
                "' does not support resumable sessions");

  std::unique_ptr<SearchSession> S(
      new SearchSession(std::move(Query), std::move(Backend)));
  if (!S->restoreBody(R))
    return Fail("snapshot rejected: malformed or inconsistent session "
                "state");
  return S;
}

bool SearchSession::restoreBody(SnapshotReader &R) {

  uint8_t StatusByte = 0, CacheFilledByte = 0, OnTheFlyByte = 0;
  uint64_t Candidates = 0, Unique = 0, LastCompleted = 0;
  uint64_t CompletedPairs = 0, Ops = 0, LevelCount = 0;
  double Consumed = 0, Precompute = 0;
  if (!R.enterSection("driver") || !R.u8(StatusByte) || !R.u64(NextCost) ||
      !R.u64(Candidates) || !R.u64(Unique) || !R.u64(LastCompleted) ||
      !R.u64(CompletedPairs) || !R.u64(Ops) || !R.u8(CacheFilledByte) ||
      !R.u64(FilledCost) || !R.u8(OnTheFlyByte) || !R.f64(Consumed) ||
      !R.f64(Precompute) || !R.u64(LevelCount))
    return false;
  if (StatusByte != RunningMarker &&
      StatusByte != uint8_t(SynthStatus::Timeout) &&
      StatusByte != uint8_t(SynthStatus::NotFound))
    return false;
  if (NextCost < EffOpts.Cost.Literal ||
      LevelCount > R.remaining() / 8)
    return false;
  NonEmptyLevels.assign(size_t(LevelCount), 0);
  for (uint64_t &Level : NonEmptyLevels)
    if (!R.u64(Level))
      return false;
  if (!std::is_sorted(NonEmptyLevels.begin(), NonEmptyLevels.end()) ||
      !R.leaveSection())
    return false;

  bindContext();
  Store = loadShardedStore(R, storeTierConfig());
  if (!Store || Store->csWords() != Q->universe()->csWords() ||
      Store->shardCount() != std::max(1u, EffOpts.Shards))
    return false;
  Ctx.Store = Store.get();
  // planCacheCapacity() re-derives the backend's own memory partition
  // (the store's capacity is authoritative from the stream; with the
  // budgets excluded from the session key it re-plans identically).
  B->planCacheCapacity(Ctx, EffOpts.MemoryLimitBytes);
  B->prepare(Ctx);
  if (!B->loadState(R, Ctx))
    return false;
  if (B->supportsDeltaLedger() && Ctx.MistakeBudget == 0) {
    Ledger = std::make_unique<DupLedger>();
    Ctx.Ledger = Ledger.get();
    // The ledger section trails the backend state. Snapshots written
    // before it existed simply end here; the restored session then has
    // no delta coverage but resumes normally.
    if (R.remaining() > 0) {
      if (!Ledger->load(R))
        return false;
    } else {
      Ledger->markBroken();
    }
  }

  Stats.CandidatesGenerated = Candidates;
  Stats.UniqueLanguages = Unique;
  Stats.LastCompletedCost = LastCompleted;
  Stats.OnTheFly = OnTheFlyByte != 0;
  Stats.PrecomputeSeconds = Precompute;
  PairsBefore = CompletedPairs;
  KernelOps = Ops;
  CacheFilled = CacheFilledByte != 0;
  ConsumedSeconds = Consumed;
  MaxCostResolved = resolveMaxCost(Q->spec(), EffOpts);
  Prepared = true;

  if (StatusByte == RunningMarker) {
    St = SessionState::Running;
  } else {
    Clock.reset();
    Clock.rewind(ConsumedSeconds);
    parkWith(SynthStatus(StatusByte));
  }
  return true;
}
