//===- engine/Batch.h - Batched synthesis over a shared pool -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call form of serving many independent specifications:
/// synthesizeBatch() runs a whole spec list through a one-shot
/// synthesis service (service/SynthService.h) bound to the requested
/// backend. Each search runs a private backend instance, so runs never
/// share mutable state; results land at the spec's index and are
/// bit-identical for every worker count (each individual run is
/// deterministic, and the scheduling only decides *when* a run
/// executes, never what it computes). Duplicate specs in one batch are
/// coalesced into a single search. Long-lived serving - result
/// caching across calls, async handles, queueing - is the service
/// itself; use SynthService directly for that.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_BATCH_H
#define PARESY_ENGINE_BATCH_H

#include "engine/BackendRegistry.h"

#include <string>
#include <vector>

namespace paresy {
namespace engine {

/// Scheduling knobs for one batch.
struct BatchOptions {
  /// Registry key of the backend each spec runs on.
  std::string Backend = "cpu";
  /// Worker threads running specs concurrently; 0 runs them one after
  /// another on the caller. When > 0, each spec's backend executes its
  /// kernels inline on its worker (spec-level parallelism replaces
  /// kernel-level parallelism; pools do not nest).
  unsigned Workers = 0;
};

/// Synthesizes every spec of \p Specs over the shared alphabet
/// \p Sigma with the same options. Returns one result per spec, in
/// input order. Unknown backend names yield InvalidInput results.
std::vector<SynthResult> synthesizeBatch(const std::vector<Spec> &Specs,
                                         const Alphabet &Sigma,
                                         const SynthOptions &Opts,
                                         const BatchOptions &Batch = {});

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_BATCH_H
