//===- engine/Session.h - Resumable search sessions --------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost sweep as a first-class, pausable state machine (DESIGN.md
/// Sec. 9). Alg. 1 sweeps cost levels monotonically, so everything a
/// run computes up to level C - the language store, the uniqueness
/// sets, the level table - is reusable verbatim by any retry of the
/// same query with a larger MaxCost or Timeout. The run-to-completion
/// runStaged() used to throw that state away on Timeout and NotFound;
/// SearchSession keeps it:
///
///   * the sweep advances one cost level per step(), and every level
///     boundary is a pause point;
///   * a session whose budget runs out *parks* instead of dying:
///     NotFound (cost budget) and Timeout (wall clock) leave the
///     session holding its full search state, and extendBudget() +
///     run() continue exactly where it stopped;
///   * a parked session serializes to a versioned byte stream
///     (save(), core/Snapshot.h) and restores in another process
///     (restore()), keyed by the budget-invariant session fingerprint
///     (lang/Fingerprint.h) so a snapshot can never be resumed against
///     a different query;
///   * a timeout that strikes *mid-level* rolls back to the last
///     completed boundary before resuming: the partial level's rows
///     are truncated and the backend rebuilds its uniqueness state
///     from the store, so the level re-runs from scratch.
///
/// The resume-equivalence invariant (test-enforced for every backend
/// and shard count): pause -> snapshot -> restore -> resume yields the
/// same results, costs and candidate counts as one uninterrupted run
/// at the final budget. runStaged() is now a thin wrapper - construct
/// a session, run it to its first stop - and is bit-identical to the
/// pre-session driver on every path.
///
/// The service layer (service/SynthService.h) parks sessions in
/// memory; paresy_cli --checkpoint/--resume parks them on disk.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_ENGINE_SESSION_H
#define PARESY_ENGINE_SESSION_H

#include "engine/Backend.h"
#include "engine/Staging.h"
#include "support/Timer.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace paresy {

class CsAlgebra;

namespace engine {

class SearchSession;
struct DeltaAttempt;

/// Declared in engine/DeltaStage.h; defined there as a friend so it
/// can graft a superset-edit query onto a parked session's state.
DeltaAttempt deltaResynthesize(SearchSession &Old,
                               std::shared_ptr<const StagedQuery> NewQ);

/// Lifecycle of a SearchSession.
enum class SessionState : uint8_t {
  /// More levels remain within the current budgets; step()/run()
  /// advance the sweep.
  Running,
  /// Stopped at a level boundary because a budget ran out (Timeout or
  /// NotFound). result() is the answer at the current budget;
  /// extendBudget() + run() continue the sweep.
  Parked,
  /// Terminal: Found, InvalidInput, OutOfMemory, or a Timeout whose
  /// boundary state could not be kept. result() is final.
  Finished,
};

const char *sessionStateName(SessionState St);

/// What a session reports after every completed cost level (the
/// streaming anytime-results hook, serve/SynthServer.h): the level
/// just proven candidate-free (or the level where the satisfier was
/// found), the level the next step runs, the resolved cost horizon,
/// and the work counters so far. The best *provable* answer at this
/// point is "no regex of cost <= CompletedCost matches" plus the
/// overfit union candidate; a server streams that as the best-so-far.
struct SessionProgress {
  uint64_t CompletedCost = 0;
  uint64_t NextCost = 0;
  uint64_t MaxCost = 0;
  uint64_t Candidates = 0;
  uint64_t Unique = 0;
  double ConsumedSeconds = 0;
};

using SessionProgressFn = std::function<void(const SessionProgress &)>;

/// One query's cost sweep, pausable at every level boundary.
/// Not thread-safe; one thread drives a session at a time.
class SearchSession {
public:
  /// Owning constructor: the session keeps the staged query and the
  /// backend alive for its whole life (what parked sessions need).
  SearchSession(std::shared_ptr<const StagedQuery> Q,
                std::unique_ptr<Backend> B);

  /// Borrowing constructor for run-to-completion callers whose query
  /// and backend outlive the session (engine::runStaged).
  SearchSession(const StagedQuery &Q, Backend &B);

  ~SearchSession();

  SearchSession(const SearchSession &) = delete;
  SearchSession &operator=(const SearchSession &) = delete;

  SessionState state() const { return St; }
  const StagedQuery &query() const { return *Q; }
  /// The owning handle to the staged query (null for borrowing
  /// sessions): lets cache layers re-pin the artifacts a resumed
  /// session already carries instead of re-staging them.
  std::shared_ptr<const StagedQuery> queryHandle() const { return QOwned; }
  Backend &backend() const { return *B; }

  /// The cost level the next step() executes (meaningful while not
  /// Finished).
  uint64_t nextCost() const { return NextCost; }

  /// The resolved cost bound of the current budget (MaxCost, or the
  /// overfit bound when MaxCost is 0).
  uint64_t maxCost() const { return MaxCostResolved; }

  /// The wall-clock budget of the current run (0 = none) and the
  /// compute seconds already charged against it (staging + completed
  /// sweep work, across every run of this session).
  double timeoutSeconds() const { return EffOpts.TimeoutSeconds; }
  double consumedSeconds() const { return ConsumedSeconds; }

  /// Advances the sweep by at most one cost level and returns the new
  /// state. On a Parked session this re-evaluates the budgets (the
  /// caller extended them, or accepts re-parking); on Finished it is a
  /// no-op.
  SessionState step();

  /// Runs until the session parks or finishes; returns result().
  SynthResult run();

  /// The result at the current stop. Valid when Parked or Finished;
  /// Parked results are answers *at the current budget* (Timeout or
  /// NotFound) that a budget extension may still improve.
  const SynthResult &result() const { return Result; }

  /// True when a retry with \p NewOpts can be served by extending this
  /// session: it is Parked and NewOpts only widens the budgets. The
  /// caller guarantees the non-budget fields match (equal canonical
  /// session text); this checks the budget ordering.
  bool canExtendTo(const SynthOptions &NewOpts) const;

  /// True when this session can serve as the *donor* of a spec-delta
  /// graft (engine/DeltaStage.h): it owns its query and backend, the
  /// backend journaled its pruning decisions, and a validated level
  /// prefix exists. The serving layer keeps Finished(Found) sessions
  /// parked only when they pass this check - a solved session without
  /// a ledger has nothing an edit could reuse.
  bool deltaCapable() const;

  /// Raises the budgets of a Parked session and puts it back to
  /// Running: \p NewMaxCost replaces SynthOptions::MaxCost (0 = the
  /// overfit bound) and \p NewTimeoutSeconds replaces the *total*
  /// compute budget (staging plus all sweep work so far and to come;
  /// 0 = none). No-op on Finished sessions (returns false).
  bool extendBudget(uint64_t NewMaxCost, double NewTimeoutSeconds);

  /// Installs a cooperative stop token (engine/Portfolio.h): when
  /// \p Token reads true, the next poll point - between candidates on
  /// the sequential backend, between batches on the batched ones,
  /// between levels here - finishes the session with
  /// SynthStatus::Cancelled. Cancelled sessions are terminal: they
  /// never park, and their results must be discarded, not cached.
  /// Null detaches the token.
  void setCancelToken(const std::atomic<bool> *Token);

  /// Installs a cooperative *park* token: when \p Token reads true the
  /// session stops like a mid-run timeout instead of a cancellation -
  /// it rolls a partial level back to the last boundary and parks with
  /// SynthStatus::Timeout, keeping its full state for a later
  /// extendBudget() + run(). This is the disconnect path of the
  /// serving layer: a vanished client must not poison the session the
  /// way Cancelled (terminal, never cached) would, because the same
  /// client may reconnect and warm-start it. When both tokens are set
  /// the cancel token wins. Null detaches the token.
  void setParkToken(const std::atomic<bool> *Token);

  /// Installs a hook fired after every completed cost level (including
  /// the level that finds the satisfier), from the thread driving the
  /// session. Null detaches. Hooks are not serialized by save(); a
  /// restored or re-run session starts with none.
  void setProgressHook(SessionProgressFn Hook);

  /// Bytes pinned by the parked search state (store + backend
  /// structures), for resume-cache byte budgets.
  uint64_t bytesUsed() const;

  /// The session's budget-invariant identity: the canonical session
  /// text of its query and effective options (lang/Fingerprint.h).
  std::string sessionKeyText() const;

  /// True when this session can be serialized: it is at a level
  /// boundary (Running before a step, or Parked) and the backend
  /// supports state serialization.
  bool canSave() const;

  /// Serializes the full session state (driver progress, sharded
  /// store, backend state) as one self-describing, checksummed stream.
  /// Pre: canSave(). Returns false if the state cannot be serialized.
  bool save(SnapshotWriter &W);

  /// Restores a session serialized by save(). \p Q must stage the same
  /// spec/alphabet/options up to the budgets (equal canonical session
  /// text - budgets may be larger: that is the resume-with-extension
  /// path), and \p B must be a fresh backend of the saved kind. On
  /// failure returns null and, when \p Error is given, says why.
  static std::unique_ptr<SearchSession>
  restore(std::string_view Bytes, std::shared_ptr<const StagedQuery> Q,
          std::unique_ptr<Backend> B, std::string *Error = nullptr);

private:
  friend DeltaAttempt deltaResynthesize(SearchSession &Old,
                                        std::shared_ptr<const StagedQuery> NewQ);

  /// Counters and store geometry at the last completed level boundary,
  /// for rolling back a partially executed level.
  struct Boundary {
    uint64_t Candidates = 0;
    uint64_t Unique = 0;
    uint64_t Pairs = 0;
    uint64_t KernelOps = 0;
    uint64_t LastCompletedCost = 0;
    size_t NonEmptyLevels = 0;
    size_t StoreSize = 0;
    std::vector<uint32_t> ShardRows;
    bool CacheFilled = false;
    uint64_t FilledCost = 0;
    bool OnTheFly = false;
  };

  void initCommon();
  void bindContext();
  /// The store-level tier configuration EffOpts selects: byte budget
  /// from the backend's planned store share, a process-unique spill
  /// file name under SpillDir. Raw (all defaults) when compression is
  /// off.
  StoreTierConfig storeTierConfig();
  void prepareRun();
  bool restoreBody(SnapshotReader &R);
  uint64_t horizon() const;
  void captureBoundary();
  /// Rolls a partial level back to the captured boundary and rebuilds
  /// the backend's uniqueness state from the truncated store.
  void rollbackToBoundary();
  void runLevelAt(uint64_t C);
  void fillStats(SynthResult &R);
  void finishWith(SynthStatus Status, std::string Message = {});
  void finishFound(const Provenance &Satisfier, uint64_t Cost);
  void parkWith(SynthStatus Status, std::string Message = {});
  /// True when the park token (and not the cancel token) fired.
  bool parkRequested() const;
  void fireProgress(uint64_t CompletedCost);

  // Query and backend, owning or borrowed (see constructors).
  std::shared_ptr<const StagedQuery> QOwned;
  std::unique_ptr<Backend> BOwned;
  const StagedQuery *Q;
  Backend *B;

  /// The options the sweep runs under: the staged query's options with
  /// the budgets (MaxCost, TimeoutSeconds) possibly extended.
  SynthOptions EffOpts;

  // Per-run state (created by prepareRun / restore).
  std::unique_ptr<CsAlgebra> Algebra;
  std::unique_ptr<ShardedStore> Store;
  /// The spec-delta dup ledger (engine/DupLedger.h), kept when the
  /// backend journals pruned duplicates and the mistake budget is zero
  /// (error tolerance makes pruning spec-dependent beyond dup-dropping,
  /// so those sessions carry none). Serialized with the session.
  std::unique_ptr<DupLedger> Ledger;
  SearchContext Ctx;
  std::vector<uint64_t> NonEmptyLevels;
  SynthStats Stats;
  WallTimer Clock;

  SessionState St = SessionState::Running;
  SynthResult Result;
  bool Prepared = false;
  /// A mid-level timeout left a partial level behind; roll back before
  /// the next level (or a save).
  bool NeedsRollback = false;

  uint64_t NextCost = 0;
  uint64_t MaxCostResolved = 0;
  uint64_t MinExtra = 0;
  /// Pairs counted by algebras of earlier runs of this session (a
  /// restore starts a fresh CsAlgebra).
  uint64_t PairsBefore = 0;
  uint64_t KernelOps = 0;
  /// Compute seconds consumed so far (staging + sweep, across runs);
  /// the timeout budget is measured against this, so parked wall time
  /// never counts.
  double ConsumedSeconds = 0;

  bool CacheFilled = false;
  uint64_t FilledCost = 0;

  /// Cooperative stop token threaded into SearchContext::Cancel.
  const std::atomic<bool> *Cancel = nullptr;
  /// Cooperative park token (setParkToken); threaded into
  /// SearchContext::Cancel only when no cancel token is installed, so
  /// backends stop mid-level for it too.
  const std::atomic<bool> *ParkRequest = nullptr;
  /// Per-level progress hook (setProgressHook); never serialized.
  SessionProgressFn Progress;

  Boundary LastBoundary;
};

} // namespace engine
} // namespace paresy

#endif // PARESY_ENGINE_SESSION_H
