//===- core/ShardedStore.h - Hash-partitioned search state -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded language store (DESIGN.md Sec. 8): the search state of
/// the sweep - the language cache and, per backend, its uniqueness
/// structure - partitioned into N shards by CS hash. One monolithic
/// cache plus one hash set is the paper's scalability ceiling (a
/// single device arena, SynthOptions::MemoryLimitBytes); hash
/// partitioning is the classic route past it and the prerequisite for
/// multi-device backends, where each shard is one device's slice of
/// the state.
///
/// Ownership is owner-computes: a characteristic sequence's owner
/// shard is a pure function of its bits (shardOfHash over the row
/// hash), so every distinct language has exactly one home and a
/// per-shard uniqueness set answers global membership questions.
///
/// Id encoding: a row's *global id* is its dense append rank - the
/// order unique winners are committed in, which every backend performs
/// in candidate-rank order - and is therefore identical for every
/// shard count and worker count. The store maps each global id to its
/// physical (shard, local-row) location through a packed directory
/// word. Provenance operands, GuideTable-driven level ranges and the
/// min-candidate-id winner rules all speak global ids and survive the
/// partitioning untouched; only the bytes move. N = 1 reduces to
/// exactly the pre-sharding layout (one segment, no directory).
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_CORE_SHARDEDSTORE_H
#define PARESY_CORE_SHARDEDSTORE_H

#include "core/LanguageCache.h"

#include <memory>
#include <vector>

namespace paresy {

class SnapshotReader;
class SnapshotWriter;

/// N LanguageCache segments behind one global-id address space.
///
/// Sequential append (the CPU backend) and the reserve/write bulk
/// path (the batched backends) both assign global ids in call order;
/// callers must reserve in candidate-rank order, which is what makes
/// ids - and hence results - shard-count- and schedule-independent.
/// writeRow() is safe for concurrent distinct ids once the rows are
/// reserved (the directory is only read).
class ShardedStore {
public:
  /// Upper bound on SynthOptions::Shards, enforced at validation. Far
  /// beyond any single-host benefit; bounds the per-shard metadata.
  static constexpr unsigned MaxShards = 64;

  /// \p NumShards segments of \p CapacityPerShard rows each, rows of
  /// \p CsWords 64-bit words. The driver derives CapacityPerShard by
  /// dividing the backend's planned row capacity (and with it the
  /// MemoryLimitBytes budget) evenly across shards. \p Tier selects
  /// the segments' storage mode; byte and pinned budgets are divided
  /// evenly across shards and SpillPath becomes one ".shardN" file per
  /// segment.
  ShardedStore(size_t CsWords, unsigned NumShards, size_t CapacityPerShard,
               const StoreTierConfig &Tier = {});

  unsigned shardCount() const { return unsigned(Shards.size()); }
  size_t csWords() const { return CsWordCount; }

  /// Total rows committed, across all shards (== the next global id).
  size_t size() const {
    return shardCount() == 1 ? Shards[0]->size() : Dir.size();
  }
  /// Total row capacity across all shards.
  size_t capacity() const { return TotalCapacity; }

  /// Owner shard of a CS with row hash \p Hash. Uses a middle band of
  /// the hash (bits 24..55): disjoint from both consumers of the same
  /// hash - the uniqueness sets' slot index (low bits) and their tag
  /// byte (top 8 bits) - so per-shard sets keep full slot entropy.
  unsigned shardOfHash(uint64_t Hash) const {
    return unsigned((((Hash >> 24) & 0xffffffffULL) * shardCount()) >> 32);
  }
  /// Owner shard of \p Cs (hashes the row words).
  unsigned shardOf(const uint64_t *Cs) const;

  /// Shard \p S's segment (the per-shard uniqueness sets key on it).
  const LanguageCache &shard(unsigned S) const { return *Shards[S]; }

  bool shardFull(unsigned S) const { return Shards[S]->full(); }

  /// Rows committed to shard \p S.
  size_t shardRows(unsigned S) const { return Shards[S]->size(); }

  /// Winners dropped because shard \p S was full (see noteDropped).
  uint64_t shardDropped(unsigned S) const { return Dropped[S]; }

  /// Records a checked-but-uncached winner owned by full shard \p S
  /// (the OnTheFly regime's per-shard overflow accounting).
  void noteDropped(unsigned S) { ++Dropped[S]; }

  /// Row words of global id \p Id.
  const uint64_t *cs(size_t Id) const {
    if (shardCount() == 1) // Ids are local rows; no directory at all.
      return Shards[0]->cs(Id);
    uint64_t Loc = Dir[Id];
    return Shards[Loc >> 32]->cs(uint32_t(Loc));
  }

  /// Precomputed hash of global id \p Id's row words.
  uint64_t rowHash(size_t Id) const {
    if (shardCount() == 1)
      return Shards[0]->rowHash(Id);
    uint64_t Loc = Dir[Id];
    return Shards[Loc >> 32]->rowHash(uint32_t(Loc));
  }

  const Provenance &provenance(size_t Id) const {
    if (shardCount() == 1)
      return Shards[0]->provenance(Id);
    uint64_t Loc = Dir[Id];
    return Shards[Loc >> 32]->provenance(uint32_t(Loc));
  }

  /// Local row index of global id \p Id within its owner shard (the
  /// handle the per-shard uniqueness sets store).
  uint32_t localRow(size_t Id) const {
    return shardCount() == 1 ? uint32_t(Id) : uint32_t(Dir[Id]);
  }

  /// Inverse of localRow: the global id of shard \p S's local row
  /// \p Local (what a per-shard uniqueness probe yields back into
  /// global-id space - the dup ledger records winners this way).
  uint32_t globalOf(unsigned S, uint32_t Local) const {
    return shardCount() == 1 ? Local : LocalToGlobal[S][Local];
  }

  /// Appends a row to shard \p Owner with its precomputed \p Hash
  /// (Owner must be shardOfHash(Hash)). Pre: !shardFull(Owner).
  /// Returns the new global id.
  uint32_t append(unsigned Owner, const uint64_t *Cs, const Provenance &P,
                  uint64_t Hash);

  /// Convenience append: hashes \p Cs and routes to its owner.
  uint32_t append(const uint64_t *Cs, const Provenance &P);

  /// Bulk path step 1: reserves the next global id in shard \p Owner.
  /// Pre: !shardFull(Owner). Call in candidate-rank order; fill with
  /// writeRow() (possibly concurrently) afterwards.
  uint32_t reserveRow(unsigned Owner);

  /// Bulk path step 2: fills reserved global id \p Id. Safe to call
  /// concurrently for distinct ids.
  void writeRow(size_t Id, const uint64_t *Cs, const Provenance &P);

  /// writeRow() with a caller-precomputed hash of \p Cs (the batched
  /// pipeline reuses the routing hash as the row hash).
  void writeRow(size_t Id, const uint64_t *Cs, const Provenance &P,
                uint64_t Hash);

  /// Spec-delta widening (DESIGN.md Sec. 14): appends the widened
  /// image of \p Old's global ids [Begin, End) to this store, which
  /// must currently hold exactly \p Begin rows - append ranks line up,
  /// so every row keeps its global id and provenance (copied verbatim)
  /// keeps meaning. \p WidenRow produces each row's new words; the
  /// widened bits re-hash and re-route, so a row's *shard* may move
  /// even though its id does not. Shard counts of the two stores are
  /// independent. Returns false when a destination shard fills before
  /// \p End - the store is then partially extended and the caller
  /// discards it (the delta is declined, never patched up).
  bool appendColumns(const ShardedStore &Old, uint32_t Begin, uint32_t End,
                     const DeltaWidenFn &WidenRow);

  /// Records that cost level \p Cost spans global ids [Begin, End).
  /// Levels are contiguous in global-id space by construction (ids are
  /// append ranks and levels append in order).
  void setLevel(uint64_t Cost, uint32_t Begin, uint32_t End);

  /// Global-id range of cost level \p Cost; (0,0)-style empty range
  /// for levels never recorded.
  std::pair<uint32_t, uint32_t> level(uint64_t Cost) const;

  /// Rolls the store back to a level boundary: shard \p S keeps its
  /// first \p ShardRows[S] rows, the global-id space shrinks to
  /// \p GlobalSize, and level ranges reaching past it are dropped.
  /// Only valid for boundaries where no winner had been dropped yet
  /// (the session's parkable regime); overflow counters reset to zero.
  void truncate(const std::vector<uint32_t> &ShardRows, size_t GlobalSize);

  /// Seals every shard's open window at a level boundary (a no-op in
  /// raw mode). Concurrent readers must be quiesced.
  void sealLevel();

  /// Whether the segments run the compressed + tiered storage mode.
  bool compressed() const { return Shards[0]->compressed(); }

  /// Resident bytes held by every segment plus the directory.
  uint64_t bytesUsed() const;

  /// Deterministic byte charge across all segments (LanguageCache::
  /// chargedBytes summed; equals bytesUsed + directory in raw mode).
  uint64_t chargedBytes() const;

  //===--------------------------------------------------------------------===//
  // Aggregate compression / tier statistics (all zero in raw mode)
  //===--------------------------------------------------------------------===//

  size_t sealedRows() const;
  size_t windowRows() const;
  uint64_t compressedBytes() const;
  uint64_t codecRows(unsigned C) const;
  size_t hotChunks() const;
  size_t spilledChunks() const;
  uint64_t hotBytes() const;
  uint64_t spilledBytes() const;

  /// Logical (padded-stride) bytes of the sealed rows divided by their
  /// compressed bytes; 0 when nothing is sealed.
  double compressionRatio() const;

  /// Rebuilds the regular expression recorded for global id \p Id.
  const Regex *reconstruct(size_t Id, RegexManager &M) const;

  /// Rebuilds the expression for a candidate whose operands are
  /// committed rows (global ids); the candidate itself need not be
  /// cached (OnTheFly hits).
  const Regex *reconstructCandidate(const Provenance &P,
                                    RegexManager &M) const;

private:
  /// Snapshot (de)serialization (core/Snapshot.h) reads and rebuilds
  /// the private state directly.
  friend void saveShardedStore(SnapshotWriter &, const ShardedStore &);
  friend std::unique_ptr<ShardedStore>
  loadShardedStore(SnapshotReader &, const StoreTierConfig &);

  const Regex *reconstructImpl(const Provenance &P, RegexManager &M,
                               std::vector<const Regex *> &Memo) const;

  /// Rebuilds LocalToGlobal from the directory (snapshot load).
  void rebuildShardIndex();

  size_t CsWordCount;
  size_t TotalCapacity;
  std::vector<std::unique_ptr<LanguageCache>> Shards;
  /// Global id -> packed location: shard in the high 32 bits, local
  /// row in the low 32. Empty with one shard (ids are local rows),
  /// which is what makes N = 1 byte-for-byte the pre-sharding layout;
  /// capacity planners charge the entry only when sharding is on.
  std::vector<uint64_t> Dir;
  /// Per-shard inverse directory: local row -> global id (globalOf).
  /// Empty vectors with one shard, like Dir.
  std::vector<std::vector<uint32_t>> LocalToGlobal;
  std::vector<uint64_t> Dropped; // Per-shard overflow counters.
  std::vector<std::pair<uint32_t, uint32_t>> Levels;
};

} // namespace paresy

#endif // PARESY_CORE_SHARDEDSTORE_H
