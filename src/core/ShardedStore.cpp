//===- core/ShardedStore.cpp - Hash-partitioned search state -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ShardedStore.h"

#include "support/Bits.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>

using namespace paresy;

ShardedStore::ShardedStore(size_t CsWords, unsigned NumShards,
                           size_t CapacityPerShard,
                           const StoreTierConfig &Tier)
    : CsWordCount(CsWords) {
  assert(NumShards >= 1 && NumShards <= MaxShards && "bad shard count");
  // Global ids are uint32 (Provenance operands); cap the address space
  // exactly as the monolithic cache's planners do.
  CapacityPerShard =
      std::min<size_t>(CapacityPerShard, 0xfffffffeu / NumShards);
  TotalCapacity = CapacityPerShard * NumShards;
  Shards.reserve(NumShards);
  for (unsigned S = 0; S != NumShards; ++S) {
    StoreTierConfig ShardTier = Tier;
    // Budgets split evenly, like the row capacity; each shard spills
    // to its own file so the per-shard chunk tables stay independent.
    ShardTier.ByteBudget = Tier.ByteBudget / NumShards;
    ShardTier.PinnedBytes = Tier.PinnedBytes / NumShards;
    if (!Tier.SpillPath.empty())
      ShardTier.SpillPath =
          Tier.SpillPath + ".shard" + std::to_string(S);
    Shards.push_back(std::make_unique<LanguageCache>(CsWords,
                                                     CapacityPerShard,
                                                     std::move(ShardTier)));
  }
  Dropped.assign(NumShards, 0);
  LocalToGlobal.assign(NumShards, {});
}

unsigned ShardedStore::shardOf(const uint64_t *Cs) const {
  return shardOfHash(hashWords(Cs, CsWordCount));
}

uint32_t ShardedStore::append(unsigned Owner, const uint64_t *Cs,
                              const Provenance &P, uint64_t Hash) {
  assert(Owner == shardOfHash(Hash) && "row appended to a non-owner shard");
  uint32_t Local = Shards[Owner]->append(Cs, P, Hash);
  if (shardCount() == 1)
    return Local; // Ids are local rows; no directory maintained.
  uint32_t Id = uint32_t(Dir.size());
  Dir.push_back(uint64_t(Owner) << 32 | Local);
  LocalToGlobal[Owner].push_back(Id);
  return Id;
}

uint32_t ShardedStore::append(const uint64_t *Cs, const Provenance &P) {
  uint64_t Hash = hashWords(Cs, CsWordCount);
  return append(shardOfHash(Hash), Cs, P, Hash);
}

uint32_t ShardedStore::reserveRow(unsigned Owner) {
  assert(!Shards[Owner]->full() && "reserving in a full shard");
  uint32_t Local = Shards[Owner]->reserveRows(1);
  if (shardCount() == 1)
    return Local;
  uint32_t Id = uint32_t(Dir.size());
  Dir.push_back(uint64_t(Owner) << 32 | Local);
  LocalToGlobal[Owner].push_back(Id);
  return Id;
}

void ShardedStore::writeRow(size_t Id, const uint64_t *Cs,
                            const Provenance &P) {
  writeRow(Id, Cs, P, hashWords(Cs, CsWordCount));
}

void ShardedStore::writeRow(size_t Id, const uint64_t *Cs,
                            const Provenance &P, uint64_t Hash) {
  if (shardCount() == 1) {
    Shards[0]->writeRow(Id, Cs, P, Hash);
    return;
  }
  uint64_t Loc = Dir[Id];
  Shards[Loc >> 32]->writeRow(uint32_t(Loc), Cs, P, Hash);
}

bool ShardedStore::appendColumns(const ShardedStore &Old, uint32_t Begin,
                                 uint32_t End, const DeltaWidenFn &WidenRow) {
  assert(size() == Begin && "widened rows must extend the global-id space");
  assert(End <= Old.size() && "widening rows the old store never committed");
  if (shardCount() == 1 && Old.shardCount() == 1)
    return Shards[0]->appendColumns(*Old.Shards[0], Begin, End, WidenRow);
  std::vector<uint64_t> Row(CsWordCount);
  for (uint32_t Id = Begin; Id != End; ++Id) {
    WidenRow(Id, Old.cs(Id), Row.data());
    // The widened words re-hash; the hash picks the owner, exactly as
    // a cold run on the edited spec would route this row.
    uint64_t Hash = hashWords(Row.data(), CsWordCount);
    unsigned Owner = shardOfHash(Hash);
    if (Shards[Owner]->full())
      return false;
    append(Owner, Row.data(), Old.provenance(Id), Hash);
  }
  return true;
}

void ShardedStore::rebuildShardIndex() {
  LocalToGlobal.assign(Shards.size(), {});
  if (shardCount() == 1)
    return;
  for (unsigned S = 0; S != shardCount(); ++S)
    LocalToGlobal[S].reserve(Shards[S]->size());
  for (size_t Id = 0; Id != Dir.size(); ++Id) {
    uint64_t Loc = Dir[Id];
    assert(uint32_t(Loc) == LocalToGlobal[Loc >> 32].size() &&
           "directory local rows out of append order");
    LocalToGlobal[Loc >> 32].push_back(uint32_t(Id));
  }
}

void ShardedStore::setLevel(uint64_t Cost, uint32_t Begin, uint32_t End) {
  assert(Begin <= End && End <= size() && "bad level range");
  if (Levels.size() <= Cost)
    Levels.resize(Cost + 1, {0, 0});
  Levels[Cost] = {Begin, End};
}

std::pair<uint32_t, uint32_t> ShardedStore::level(uint64_t Cost) const {
  if (Cost >= Levels.size())
    return {0, 0};
  return Levels[Cost];
}

void ShardedStore::truncate(const std::vector<uint32_t> &ShardRows,
                            size_t GlobalSize) {
  assert(ShardRows.size() == Shards.size() && "one row count per shard");
  assert(GlobalSize <= size() && "truncating beyond the current size");
  for (unsigned S = 0; S != shardCount(); ++S)
    Shards[S]->truncate(ShardRows[S]);
  if (shardCount() > 1) {
    Dir.resize(GlobalSize);
    for (unsigned S = 0; S != shardCount(); ++S)
      LocalToGlobal[S].resize(ShardRows[S]);
  }
  assert(size() == GlobalSize && "shard row counts disagree with the "
                                 "global size");
  std::fill(Dropped.begin(), Dropped.end(), 0);
  // Clear level ranges reaching past the boundary, and drop trailing
  // never-recorded entries so the table is exactly the boundary's
  // (snapshots of a rolled-back store must match it byte for byte).
  for (std::pair<uint32_t, uint32_t> &L : Levels)
    if (L.second > GlobalSize)
      L = {0, 0};
  while (!Levels.empty() && Levels.back() == std::pair<uint32_t, uint32_t>())
    Levels.pop_back();
}

void ShardedStore::sealLevel() {
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    S->sealLevel();
}

uint64_t ShardedStore::bytesUsed() const {
  uint64_t Bytes = Dir.size() * sizeof(uint64_t);
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    Bytes += S->bytesUsed();
  return Bytes;
}

uint64_t ShardedStore::chargedBytes() const {
  uint64_t Bytes = Dir.size() * sizeof(uint64_t);
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    Bytes += S->chargedBytes();
  return Bytes;
}

size_t ShardedStore::sealedRows() const {
  size_t N = 0;
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    N += S->sealedRows();
  return N;
}

size_t ShardedStore::windowRows() const {
  size_t N = 0;
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    N += S->windowRows();
  return N;
}

uint64_t ShardedStore::compressedBytes() const {
  uint64_t N = 0;
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    N += S->compressedBytes();
  return N;
}

uint64_t ShardedStore::codecRows(unsigned C) const {
  uint64_t N = 0;
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    N += S->codecRows(C);
  return N;
}

size_t ShardedStore::hotChunks() const {
  size_t N = 0;
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    N += S->hotChunks();
  return N;
}

size_t ShardedStore::spilledChunks() const {
  size_t N = 0;
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    N += S->spilledChunks();
  return N;
}

uint64_t ShardedStore::hotBytes() const {
  uint64_t N = 0;
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    N += S->hotBytes();
  return N;
}

uint64_t ShardedStore::spilledBytes() const {
  uint64_t N = 0;
  for (const std::unique_ptr<LanguageCache> &S : Shards)
    N += S->spilledBytes();
  return N;
}

double ShardedStore::compressionRatio() const {
  uint64_t Compressed = compressedBytes();
  if (!Compressed)
    return 0.0;
  uint64_t Logical = uint64_t(sealedRows()) *
                     LanguageCache::strideForWords(CsWordCount) *
                     sizeof(uint64_t);
  return double(Logical) / double(Compressed);
}

const Regex *ShardedStore::reconstruct(size_t Id, RegexManager &M) const {
  return reconstructCandidate(provenance(Id), M);
}

const Regex *ShardedStore::reconstructCandidate(const Provenance &P,
                                                RegexManager &M) const {
  std::vector<const Regex *> Memo(size(), nullptr);
  return reconstructImpl(P, M, Memo);
}

const Regex *
ShardedStore::reconstructImpl(const Provenance &P, RegexManager &M,
                              std::vector<const Regex *> &Memo) const {
  auto Operand = [&](uint32_t Id) -> const Regex * {
    assert(Id < size() && "provenance operand out of range");
    if (Memo[Id])
      return Memo[Id];
    const Regex *Re = reconstructImpl(provenance(Id), M, Memo);
    Memo[Id] = Re;
    return Re;
  };
  switch (P.Kind) {
  case CsOp::Literal:
    return M.literal(P.Symbol);
  case CsOp::Epsilon:
    return M.epsilon();
  case CsOp::Empty:
    return M.empty();
  case CsOp::Question:
    return M.question(Operand(P.Lhs));
  case CsOp::Star:
    return M.star(Operand(P.Lhs));
  case CsOp::Concat:
    return M.concat(Operand(P.Lhs), Operand(P.Rhs));
  case CsOp::Union:
    return M.alt(Operand(P.Lhs), Operand(P.Rhs));
  }
  PARESY_UNREACHABLE("invalid provenance kind");
}
