//===- core/LanguageCache.h - Write-once matrix of languages ----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The language cache of Sec. 3: Paresy's core data structure. It is a
/// contiguous, write-once matrix whose rows are characteristic
/// sequences, appended in never-decreasing cost order; `startPoints`
/// (here: the per-cost level table) maps a cost to its row range.
/// Every row carries lightweight provenance - the outermost regular
/// constructor and the row indices of its operands - from which a
/// minimal regular expression is reconstructed on demand.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_CORE_LANGUAGECACHE_H
#define PARESY_CORE_LANGUAGECACHE_H

#include "regex/Regex.h"
#include "support/AlignedAlloc.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace paresy {

class SnapshotReader;
class SnapshotWriter;

/// Outermost constructor of a cached language (the paper's "L and R
/// auxiliary data").
enum class CsOp : uint8_t {
  Literal,  ///< Seed: the single-character language {Symbol}.
  Epsilon,  ///< Seed: {""}.
  Empty,    ///< Seed: the empty language (error-tolerant mode only).
  Question, ///< Lhs?
  Star,     ///< Lhs*
  Concat,   ///< Lhs . Rhs
  Union     ///< Lhs + Rhs
};

/// How a cached CS was built: constructor plus operand row indices
/// (valid because operands always live at strictly lower cost, hence
/// lower row index).
struct Provenance {
  CsOp Kind = CsOp::Empty;
  char Symbol = 0;
  uint32_t Lhs = 0;
  uint32_t Rhs = 0;
};

/// Append-only storage for characteristic sequences with provenance
/// and cost-level ranges. Rows are never modified once appended.
///
/// Layout: the matrix is a single cache-line-aligned allocation whose
/// rows are padded to strideForWords(CsWords) words, so no row
/// straddles a cache line it does not have to. Padding words are
/// always zero. Each row's hash is computed once when the row is
/// written and served from rowHash(); the uniqueness set reads it
/// instead of re-hashing row words.
class LanguageCache {
public:
  /// \p CsWords is the row width in 64-bit words; \p MaxEntries caps
  /// the number of rows (derived from the memory budget by the
  /// synthesizer).
  LanguageCache(size_t CsWords, size_t MaxEntries);

  /// Row stride (words) used for \p CsWords-word rows: the next power
  /// of two below a cache line (a row never straddles a line the base
  /// alignment does not force), whole cache lines beyond. Exposed so
  /// backends can plan capacity from the real per-row footprint.
  static size_t strideForWords(size_t CsWords) {
    if (CsWords >= WordsPerCacheLine)
      return (CsWords + WordsPerCacheLine - 1) / WordsPerCacheLine *
             WordsPerCacheLine;
    return size_t(nextPowerOfTwo(CsWords));
  }

  size_t csWords() const { return CsWordCount; }
  size_t rowStride() const { return RowStride; }
  size_t capacity() const { return MaxEntries; }
  size_t size() const { return EntryCount; }
  bool full() const { return EntryCount == MaxEntries; }

  /// Row \p Idx of the matrix.
  const uint64_t *cs(size_t Idx) const {
    assert(Idx < EntryCount && "cache row out of range");
    return Store.data() + Idx * RowStride;
  }

  /// Hash of row \p Idx's CS words, precomputed at append/writeRow
  /// time.
  uint64_t rowHash(size_t Idx) const {
    assert(Idx < EntryCount && "cache row out of range");
    return RowHashes[Idx];
  }

  /// Appends a row (copies \p Cs). Pre: !full(). Returns its index.
  uint32_t append(const uint64_t *Cs, const Provenance &Prov);

  /// Append with a caller-precomputed hash of \p Cs (callers that
  /// already hashed for routing or uniqueness skip the re-hash).
  uint32_t append(const uint64_t *Cs, const Provenance &Prov,
                  uint64_t Hash);

  /// Bulk interface for the GPU-style compaction kernel: reserves
  /// \p Count zero-initialised rows (pre: Count <= capacity-size) and
  /// returns the index of the first; distinct reserved rows may then
  /// be written concurrently with writeRow.
  uint32_t reserveRows(size_t Count);

  /// Fills a reserved row. Safe to call concurrently for distinct
  /// \p Idx.
  void writeRow(size_t Idx, const uint64_t *Cs, const Provenance &Prov);

  /// writeRow() with a caller-precomputed hash of \p Cs.
  void writeRow(size_t Idx, const uint64_t *Cs, const Provenance &Prov,
                uint64_t Hash);

  const Provenance &provenance(size_t Idx) const {
    assert(Idx < EntryCount && "cache row out of range");
    return Prov[Idx];
  }

  /// Records that cost level \p Cost spans rows [Begin, End).
  void setLevel(uint64_t Cost, uint32_t Begin, uint32_t End);

  /// Row range of cost level \p Cost; empty (0,0)-style range for
  /// levels never recorded.
  std::pair<uint32_t, uint32_t> level(uint64_t Cost) const;

  /// Discards rows [NewSize, size()) and any level range reaching into
  /// them: rolls the cache back to a level boundary so a partially
  /// executed level can be re-run (engine/Session.h). The write-once
  /// contract is per-row - a truncated row index may be appended again.
  void truncate(size_t NewSize);

  /// Bytes held by the CS matrix (at its padded stride) plus
  /// provenance and the per-row hashes.
  uint64_t bytesUsed() const {
    return uint64_t(EntryCount) *
           (RowStride * sizeof(uint64_t) + sizeof(Provenance) +
            sizeof(uint64_t));
  }

private:
  /// Snapshot (de)serialization (core/Snapshot.h) reads and rebuilds
  /// the private state directly.
  friend void saveLanguageCache(SnapshotWriter &, const LanguageCache &);
  friend std::unique_ptr<LanguageCache> loadLanguageCache(SnapshotReader &);

  size_t CsWordCount;
  size_t RowStride;
  size_t MaxEntries;
  size_t EntryCount = 0;
  AlignedWordBuffer Store;
  std::vector<uint64_t> RowHashes;
  std::vector<Provenance> Prov;
  std::vector<std::pair<uint32_t, uint32_t>> Levels;
};

} // namespace paresy

#endif // PARESY_CORE_LANGUAGECACHE_H
