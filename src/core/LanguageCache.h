//===- core/LanguageCache.h - Write-once matrix of languages ----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The language cache of Sec. 3: Paresy's core data structure. It is a
/// contiguous, write-once matrix whose rows are characteristic
/// sequences, appended in never-decreasing cost order; `startPoints`
/// (here: the per-cost level table) maps a cost to its row range.
/// Every row carries lightweight provenance - the outermost regular
/// constructor and the row indices of its operands - from which a
/// minimal regular expression is reconstructed on demand.
///
/// Two storage modes (DESIGN.md Sec. 11):
///
///  * Raw (the default): one fixed cache-line-aligned allocation, rows
///    at their padded stride - the paper's single uninitialised arena.
///  * Compressed + tiered (StoreTierConfig::Compress): only the
///    *open window* - the rows of the level currently being built -
///    lives in the aligned form the kernels read and write. At every
///    level boundary the window is sealed into an immutable chunk of
///    per-row codec bytes (lang/RowCodec.h), and sealed chunks can
///    further spill to disk and page back on demand under a pinned-
///    bytes budget. Reads of sealed rows decompress through a small
///    per-thread scratch ring, so cs() keeps returning a plain
///    word pointer on every path. Fullness becomes byte-driven
///    (charged compressed + window + metadata bytes against
///    ByteBudget) instead of row-driven.
///
/// Layout (raw mode and the open window): rows are padded to
/// strideForWords(CsWords) words, so no row straddles a cache line it
/// does not have to. Padding words are always zero. Each row's hash is
/// computed once when the row is written and served from rowHash();
/// the uniqueness set reads it instead of re-hashing row words.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_CORE_LANGUAGECACHE_H
#define PARESY_CORE_LANGUAGECACHE_H

#include "lang/RowCodec.h"
#include "regex/Regex.h"
#include "support/AlignedAlloc.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace paresy {

class SnapshotReader;
class SnapshotWriter;

/// Outermost constructor of a cached language (the paper's "L and R
/// auxiliary data").
enum class CsOp : uint8_t {
  Literal,  ///< Seed: the single-character language {Symbol}.
  Epsilon,  ///< Seed: {""}.
  Empty,    ///< Seed: the empty language (error-tolerant mode only).
  Question, ///< Lhs?
  Star,     ///< Lhs*
  Concat,   ///< Lhs . Rhs
  Union     ///< Lhs + Rhs
};

/// How a cached CS was built: constructor plus operand row indices
/// (valid because operands always live at strictly lower cost, hence
/// lower row index).
struct Provenance {
  CsOp Kind = CsOp::Empty;
  char Symbol = 0;
  uint32_t Lhs = 0;
  uint32_t Rhs = 0;
};

/// Storage-tier configuration of a language store (DESIGN.md Sec. 11).
/// The default is the paper's raw single-arena layout; Compress turns
/// on the sealed-row codec, and a non-empty SpillPath adds the disk
/// tier below it.
struct StoreTierConfig {
  /// Seal completed levels into per-row codec bytes.
  bool Compress = false;
  /// Byte budget charged against sealed + window + metadata bytes; a
  /// full() verdict once reached. 0 leaves fullness row-driven only.
  uint64_t ByteBudget = 0;
  /// Hot-tier budget for sealed chunk bytes: at each seal point,
  /// least-recently-read chunks beyond it spill to SpillPath.
  /// Meaningful only with a SpillPath; 0 there means "spill all".
  uint64_t PinnedBytes = 0;
  /// Byte cap on the uncompressed open window: once a sequential
  /// append pushes the window past it, the window auto-seals into a
  /// chunk mid-level, so one huge in-flight level cannot hold the
  /// whole byte budget hostage in aligned form. 0 seals at level
  /// boundaries only. Reserved-row batches (writeRow) never
  /// auto-seal - bulk writers rely on a stable window.
  uint64_t WindowBudget = 0;
  /// Spill file of this store's cold chunks; empty disables the disk
  /// tier (sealed chunks all stay in memory).
  std::string SpillPath;
};

/// Widens one row across a spec edit (core/DeltaWiden.h): fills
/// \p NewCs (the destination store's csWords) with the widened bits of
/// the source store's row \p Id, whose words are \p OldCs. The
/// callback owns the whole row content - scatter and appended columns.
using DeltaWidenFn =
    std::function<void(uint32_t Id, const uint64_t *OldCs, uint64_t *NewCs)>;

/// Append-only storage for characteristic sequences with provenance
/// and cost-level ranges. Rows are never modified once appended.
class LanguageCache {
public:
  /// \p CsWords is the row width in 64-bit words; \p MaxEntries caps
  /// the number of rows (derived from the memory budget by the
  /// synthesizer). \p Tier selects the storage mode; under
  /// Tier.Compress the arena is not preallocated and MaxEntries is an
  /// address-space bound, with fullness driven by Tier.ByteBudget.
  LanguageCache(size_t CsWords, size_t MaxEntries,
                StoreTierConfig Tier = {});

  ~LanguageCache();

  /// Row stride (words) used for \p CsWords-word rows: the next power
  /// of two below a cache line (a row never straddles a line the base
  /// alignment does not force), whole cache lines beyond. Exposed so
  /// backends can plan capacity from the real per-row footprint.
  static size_t strideForWords(size_t CsWords) {
    if (CsWords >= WordsPerCacheLine)
      return (CsWords + WordsPerCacheLine - 1) / WordsPerCacheLine *
             WordsPerCacheLine;
    return size_t(nextPowerOfTwo(CsWords));
  }

  size_t csWords() const { return CsWordCount; }
  size_t rowStride() const { return RowStride; }
  size_t capacity() const { return MaxEntries; }
  size_t size() const { return EntryCount; }

  /// The storage-tier configuration this cache was built with.
  const StoreTierConfig &tier() const { return Tier; }
  bool compressed() const { return Tier.Compress; }

  /// No further row fits: the row capacity is reached or, under
  /// compression, the charged byte budget is exhausted (chargedBytes).
  bool full() const {
    if (EntryCount >= MaxEntries)
      return true;
    return Tier.Compress && Tier.ByteBudget &&
           chargedBytes() >= Tier.ByteBudget;
  }

  /// Row \p Idx of the matrix. Raw rows and the open window resolve to
  /// the aligned store; sealed rows decompress through a per-thread
  /// scratch ring (the pointer stays valid until the calling thread
  /// reads several further sealed rows - callers hold at most their
  /// operands, see DESIGN.md Sec. 11).
  const uint64_t *cs(size_t Idx) const {
    assert(Idx < EntryCount && "cache row out of range");
    if (!Tier.Compress)
      return Store.data() + Idx * RowStride;
    if (Idx >= WindowBase)
      return Window.data() + (Idx - WindowBase) * RowStride;
    return sealedRow(Idx);
  }

  /// Hash of row \p Idx's CS words, precomputed at append/writeRow
  /// time.
  uint64_t rowHash(size_t Idx) const {
    assert(Idx < EntryCount && "cache row out of range");
    return RowHashes[Idx];
  }

  /// Appends a row (copies \p Cs). Pre: !full(). Returns its index.
  uint32_t append(const uint64_t *Cs, const Provenance &Prov);

  /// Append with a caller-precomputed hash of \p Cs (callers that
  /// already hashed for routing or uniqueness skip the re-hash).
  uint32_t append(const uint64_t *Cs, const Provenance &Prov,
                  uint64_t Hash);

  /// Spec-delta widening (DESIGN.md Sec. 14), the single-store fast
  /// path: appends the widened image of \p Old's rows [Begin, End) -
  /// provenance copied verbatim, so operand indices keep meaning -
  /// with each row's words produced by \p WidenRow. Rows are visited
  /// in ascending order (operands precede consumers, the membership
  /// recursion's precondition). Returns false when this cache fills
  /// before \p End; the caller then discards the store.
  bool appendColumns(const LanguageCache &Old, uint32_t Begin, uint32_t End,
                     const DeltaWidenFn &WidenRow);

  /// Bulk interface for the GPU-style compaction kernel: reserves
  /// \p Count zero-initialised rows (pre: Count <= capacity-size) and
  /// returns the index of the first; distinct reserved rows may then
  /// be written concurrently with writeRow.
  uint32_t reserveRows(size_t Count);

  /// Fills a reserved row. Safe to call concurrently for distinct
  /// \p Idx.
  void writeRow(size_t Idx, const uint64_t *Cs, const Provenance &Prov);

  /// writeRow() with a caller-precomputed hash of \p Cs.
  void writeRow(size_t Idx, const uint64_t *Cs, const Provenance &Prov,
                uint64_t Hash);

  const Provenance &provenance(size_t Idx) const {
    assert(Idx < EntryCount && "cache row out of range");
    return Prov[Idx];
  }

  /// Records that cost level \p Cost spans rows [Begin, End).
  void setLevel(uint64_t Cost, uint32_t Begin, uint32_t End);

  /// Row range of cost level \p Cost; empty (0,0)-style range for
  /// levels never recorded.
  std::pair<uint32_t, uint32_t> level(uint64_t Cost) const;

  /// Discards rows [NewSize, size()) and any level range reaching into
  /// them: rolls the cache back to a level boundary so a partially
  /// executed level can be re-run (engine/Session.h). The write-once
  /// contract is per-row - a truncated row index may be appended again.
  /// Under compression, chunks auto-sealed past the boundary are
  /// dropped and a chunk straddling it is decoded back into the open
  /// window; the cache takes a fresh scratch-ring uid so stale decoded
  /// copies of discarded rows can never be served again.
  void truncate(size_t NewSize);

  /// Seals the open window into an immutable compressed chunk and
  /// re-enforces the pinned-bytes budget (spilling cold chunks).
  /// Level-boundary operation; a no-op in raw mode. Concurrent readers
  /// must be quiesced (no level in flight).
  void sealLevel();

  /// Resident bytes: the CS matrix (raw mode: at its padded stride;
  /// compressed: the open window plus hot chunk bytes and chunk
  /// tables) plus provenance and the per-row hashes. Spilled chunks
  /// do not count - this is the in-memory footprint the stats and the
  /// park LRU charge.
  uint64_t bytesUsed() const;

  /// Deterministic byte charge driving full() under compression:
  /// sealed compressed bytes (capped at PinnedBytes when a disk tier
  /// absorbs the excess) + open-window bytes + per-row metadata. A
  /// pure function of the committed rows and seal points, so verdicts
  /// are identical across backends and worker counts.
  uint64_t chargedBytes() const;

  //===--------------------------------------------------------------------===//
  // Compression / tier statistics (all zero in raw mode)
  //===--------------------------------------------------------------------===//

  /// Rows sealed into compressed chunks so far.
  size_t sealedRows() const { return Tier.Compress ? WindowBase : 0; }
  /// Rows still in the uncompressed open window.
  size_t windowRows() const {
    return Tier.Compress ? EntryCount - WindowBase : 0;
  }
  /// Total compressed bytes across all sealed chunks (hot + spilled).
  uint64_t compressedBytes() const { return SealedCompressedBytes; }
  /// Sealed rows stored under codec \p C (index < NumRowCodecs).
  uint64_t codecRows(unsigned C) const { return CodecCounts[C]; }
  /// Hot/spilled chunk counts and their byte split.
  size_t hotChunks() const;
  size_t spilledChunks() const;
  uint64_t hotBytes() const {
    return HotChunkBytes.load(std::memory_order_relaxed);
  }
  uint64_t spilledBytes() const {
    return SealedCompressedBytes - hotBytes();
  }

private:
  /// One sealed row range: per-row codec bytes plus the row-offset
  /// table. Hot chunks hold their bytes in memory; spilled chunks
  /// re-read them from the spill file on demand (ensureHot). Chunks
  /// only go cold at seal points (level boundaries and sequential
  /// auto-seals, both quiesced), so a chunk observed hot stays
  /// readable until the next seal point.
  struct SealedChunk {
    uint32_t BeginRow = 0;
    uint32_t EndRow = 0;
    /// Byte offset of each row's encoding in Bytes; EndRow - BeginRow
    /// + 1 entries (the last is the chunk's byte size).
    std::vector<uint32_t> Offsets;
    std::string Bytes;
    std::atomic<bool> Hot{true};
    std::atomic<uint64_t> LastTouch{0};
    uint64_t FileOffset = 0;
    uint64_t FileLen = 0; ///< 0: never written to the spill file.
  };

  /// Snapshot (de)serialization (core/Snapshot.h) reads and rebuilds
  /// the private state directly.
  friend void saveLanguageCache(SnapshotWriter &, const LanguageCache &);
  friend std::unique_ptr<LanguageCache>
  loadLanguageCache(SnapshotReader &, const StoreTierConfig &);

  /// Grows the open window to hold \p Rows rows (geometric; only ever
  /// called from the sequential append/reserve path, so no reader
  /// holds a window pointer across it).
  void ensureWindowRows(size_t Rows);

  /// Writable storage of row \p Idx (raw arena or open window).
  uint64_t *rowSlot(size_t Idx);

  /// Decompresses sealed row \p Idx through the calling thread's
  /// scratch ring.
  const uint64_t *sealedRow(size_t Idx) const;

  /// Pages chunk \p C back in from the spill file if it is cold.
  void ensureHot(SealedChunk &C) const;

  /// Seals the open window into a chunk (if non-empty) and enforces
  /// the pinned budget. Shared by sealLevel and the WindowBudget
  /// auto-seal in append.
  void sealWindow();

  /// truncate() helper for cuts below WindowBase: drops chunks past
  /// \p NewSize, decodes a straddling chunk's surviving prefix back
  /// into the window, and re-keys the scratch rings.
  void reopenSealedTail(size_t NewSize);

  /// Spills least-recently-read hot chunks until hot bytes fit
  /// PinnedBytes. No-op without a SpillPath.
  void enforcePinnedBudget();

  /// Appends \p C's bytes to the spill file and drops its in-memory
  /// copy. Pre: PageMutex held.
  bool spillChunk(SealedChunk &C);

  size_t CsWordCount;
  size_t RowStride;
  size_t MaxEntries;
  size_t EntryCount = 0;
  StoreTierConfig Tier;
  AlignedWordBuffer Store; ///< Raw mode: the whole arena. Else empty.
  std::vector<uint64_t> RowHashes;
  std::vector<Provenance> Prov;
  std::vector<std::pair<uint32_t, uint32_t>> Levels;

  // Compressed-mode state.
  size_t WindowBase = 0; ///< First row of the open window.
  size_t WindowCap = 0;  ///< Window capacity, in rows.
  AlignedWordBuffer Window;
  std::vector<std::unique_ptr<SealedChunk>> Chunks;
  uint64_t SealedCompressedBytes = 0;
  uint64_t CodecCounts[NumRowCodecs] = {};
  /// Distinguishes this cache's sealed rows in the per-thread scratch
  /// rings (never reused across cache instances, and refreshed by a
  /// truncate that reopens sealed rows).
  uint64_t CacheUid;

  // Disk-tier state. Mutable: paging a chunk back in is logically
  // const (cs() is a read), and all of it is guarded by PageMutex
  // except the two relaxed counters.
  mutable std::atomic<uint64_t> HotChunkBytes{0};
  mutable std::atomic<uint64_t> TouchClock{0};
  mutable std::mutex PageMutex;
  mutable std::FILE *Spill = nullptr;
  mutable uint64_t SpillFileSize = 0;
  bool SpillBroken = false; ///< Disk write failed; stop spilling.
};

} // namespace paresy

#endif // PARESY_CORE_LANGUAGECACHE_H
