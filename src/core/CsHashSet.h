//===- core/CsHashSet.h - Uniqueness checking for cached CSs -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential uniqueness checker (Sec. 3 "Uniqueness checking"):
/// an open-addressing hash set keyed by the full bit content of a
/// characteristic sequence. The paper's CPU implementation used
/// std::unordered_set; we use open addressing with linear probing so
/// that memory use is predictable (it is part of the cache budget) and
/// slot storage is just a row index - key bits live in the language
/// cache and are compared in place.
///
/// The concurrent GPU-style counterpart is gpusim/WarpHashSet.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_CORE_CSHASHSET_H
#define PARESY_CORE_CSHASHSET_H

#include "core/LanguageCache.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace paresy {

class SnapshotReader;
class SnapshotWriter;

/// Hash set of the CS rows already present in a LanguageCache.
///
/// Each slot carries an 8-bit tag (fingerprint byte of the key's
/// hash, see hashTagByte) beside the row index: a probe compares the
/// tag first and touches the row words only when it matches, so most
/// collision probes resolve from one byte of dense metadata instead of
/// a cache-line fetch from the row matrix. Re-hashing on growth reads
/// the hashes the cache precomputed at append time.
class CsHashSet {
public:
  /// \p Cache provides key storage; the set only records row indices.
  explicit CsHashSet(const LanguageCache &Cache);

  /// True iff a row with exactly the bits of \p Cs is present.
  bool contains(const uint64_t *Cs) const;

  /// contains() with a caller-precomputed hash of \p Cs (callers that
  /// already hashed for shard routing skip the re-hash).
  bool contains(const uint64_t *Cs, uint64_t Hash) const;

  /// The cache row holding exactly the bits of \p Cs, or -1 when
  /// absent. Same probe sequence as contains() - callers that need
  /// the duplicate's winner (the spec-delta dup ledger, DESIGN.md
  /// Sec. 14) pay nothing beyond the membership test.
  int64_t find(const uint64_t *Cs, uint64_t Hash) const;

  /// Registers cache row \p Idx, whose bits must equal \p Cs.
  /// Pre: !contains(Cs).
  void insert(const uint64_t *Cs, uint32_t Idx);

  size_t size() const { return Count; }

  /// Bytes of slot storage (reported in the memory statistics).
  uint64_t bytesUsed() const {
    return Slots.size() * (sizeof(uint32_t) + sizeof(uint8_t));
  }

private:
  /// Snapshot (de)serialization (core/Snapshot.h) reads and rebuilds
  /// the private state directly.
  friend void saveCsHashSet(SnapshotWriter &, const CsHashSet &);
  friend std::unique_ptr<CsHashSet> loadCsHashSet(SnapshotReader &,
                                                  const LanguageCache &);

  void grow();
  void place(uint32_t Idx, uint64_t Hash);

  static constexpr uint32_t EmptySlot = 0xffffffffu;

  const LanguageCache &Cache;
  std::vector<uint32_t> Slots;
  std::vector<uint8_t> Tags;
  size_t Count = 0;
};

} // namespace paresy

#endif // PARESY_CORE_CSHASHSET_H
