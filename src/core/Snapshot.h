//===- core/Snapshot.h - Versioned byte streams for search state -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of the sweep's search state (DESIGN.md Sec. 9). The
/// cost sweep of Alg. 1 is monotone in the cost budget: everything
/// computed up to level C is reusable verbatim by any retry with a
/// larger MaxCost or Timeout. Making that reuse real requires the
/// state a sweep carries across levels - the sharded language store,
/// the uniqueness sets, the driver's cursor and counters - to survive
/// the run that built it, either parked in memory (service resume
/// cache) or on disk (paresy_cli --checkpoint). This header is the
/// byte-stream layer both use.
///
/// Format rules, chosen so a snapshot written anywhere restores
/// anywhere:
///
///  * endian-stable: every multi-byte value is written least
///    significant byte first, regardless of host byte order;
///  * self-describing: streams open with a magic string and a format
///    version, and every component is a tagged, length-prefixed
///    section, so a reader can reject foreign bytes and skip sections
///    it does not know;
///  * fail-closed: SnapshotReader never reads past its bounds - any
///    truncation or structural corruption latches a failure flag that
///    every restore path checks; an optional fingerprint trailer
///    (appendSnapshotChecksum) additionally rejects payload bit rot.
///
/// The component payloads live with their owners: LanguageCache,
/// ShardedStore and CsHashSet (de)serialize here (they are core
/// types), gpusim::WarpHashSet in gpusim/, and the driver progress in
/// engine/Session.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_CORE_SNAPSHOT_H
#define PARESY_CORE_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace paresy {

class CsHashSet;
class LanguageCache;
class ShardedStore;
struct StoreTierConfig;

/// Version of the overall snapshot format; bumped whenever any
/// component payload changes incompatibly.
/// v2: cache sections carry a storage-mode byte; compressed caches
/// serialize their sealed chunks' codec bytes verbatim.
inline constexpr uint32_t SnapshotFormatVersion = 2;

/// Appends primitive values to a growing byte buffer, least
/// significant byte first.
class SnapshotWriter {
public:
  void u8(uint8_t V) { Buf.push_back(char(V)); }
  void u16(uint16_t V) { le(V, 2); }
  void u32(uint32_t V) { le(V, 4); }
  void u64(uint64_t V) { le(V, 8); }
  /// Exact bit pattern of \p V (doubles survive round trips bit for
  /// bit; never used for NaN-sensitive comparisons).
  void f64(double V);
  void bytes(const void *Data, size_t Size);
  /// Length-prefixed byte string.
  void str(std::string_view S);

  /// Opens a tagged section: writes the tag and a length placeholder.
  /// Returns a handle endSection() patches once the payload is known.
  /// Sections may nest.
  size_t beginSection(std::string_view Tag);
  void endSection(size_t Handle);

  size_t size() const { return Buf.size(); }
  const std::string &buffer() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  void le(uint64_t V, unsigned Bytes);

  std::string Buf;
};

/// Bounds-checked reader over a snapshot byte stream. Every accessor
/// returns false - and latches fail() - instead of reading out of
/// bounds or out of the current section, so restore code can check
/// once at the end instead of after every field.
class SnapshotReader {
public:
  explicit SnapshotReader(std::string_view Data) : Data(Data) {}

  bool u8(uint8_t &V);
  bool u16(uint16_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);
  bool f64(double &V);
  bool bytes(void *Out, size_t Size);
  bool str(std::string &Out);

  /// Reads a section header and requires its tag to equal \p Tag;
  /// bounds all reads until the matching leaveSection().
  bool enterSection(std::string_view Tag);
  /// Skips any unread payload and closes the innermost section.
  bool leaveSection();

  /// True once any read failed (truncation, tag mismatch, bounds).
  bool failed() const { return Failed; }
  /// Marks the stream bad from restore-side validation.
  void markFailed() { Failed = true; }

  /// Bytes left in the current section (or the whole stream).
  size_t remaining() const { return limit() - Pos; }
  bool atEnd() const { return Pos == Data.size(); }

private:
  size_t limit() const { return Ends.empty() ? Data.size() : Ends.back(); }
  bool take(const void *&Ptr, size_t Size);

  std::string_view Data;
  size_t Pos = 0;
  std::vector<size_t> Ends; // Innermost section end offsets.
  bool Failed = false;
};

/// Writes the stream envelope: magic, format version, and \p Kind
/// (which flavour of snapshot follows, e.g. "session").
void writeSnapshotHeader(SnapshotWriter &W, std::string_view Kind);

/// Reads and validates the envelope written by writeSnapshotHeader.
bool readSnapshotHeader(SnapshotReader &R, std::string_view Kind);

/// Appends a 128-bit fingerprint of everything written so far. Call
/// last; verifySnapshotChecksum() then detects any corruption of the
/// preceding bytes.
void appendSnapshotChecksum(SnapshotWriter &W);

/// True iff \p Data ends in a fingerprint trailer matching the bytes
/// before it. stripSnapshotChecksum() returns those payload bytes.
bool verifySnapshotChecksum(std::string_view Data);
std::string_view stripSnapshotChecksum(std::string_view Data);

//===----------------------------------------------------------------------===//
// Component payloads (core types)
//===----------------------------------------------------------------------===//

/// Serializes \p C (geometry, capacity, rows, provenance, level
/// ranges) as one tagged section. Compressed caches write their sealed
/// chunks' codec bytes verbatim (spilled chunks are paged back in
/// first) plus the open window's raw rows, so serialize -> restore ->
/// serialize is byte-identical.
void saveLanguageCache(SnapshotWriter &W, const LanguageCache &C);

/// Restores a cache serialized by saveLanguageCache; null on a
/// malformed stream (R is then failed()). \p Tier must match the saved
/// storage mode (a raw stream cannot restore into a compressed store
/// or vice versa - the modes charge different budgets); its budgets
/// and spill path are the restoring host's, not the saving host's.
std::unique_ptr<LanguageCache> loadLanguageCache(SnapshotReader &R,
                                                 const StoreTierConfig &Tier);

/// Serializes \p S: every shard segment plus the global-id directory,
/// overflow counters and level table.
void saveShardedStore(SnapshotWriter &W, const ShardedStore &S);

/// Restores a store serialized by saveShardedStore under the
/// store-level tier config \p Tier (split per shard exactly as the
/// ShardedStore constructor does).
std::unique_ptr<ShardedStore> loadShardedStore(SnapshotReader &R,
                                               const StoreTierConfig &Tier);

/// Serializes \p S's slot table. The key bits stay in the cache the
/// set indexes; restore binds the slots back to \p Cache, which must
/// be the restored counterpart of the cache the set was saved over.
void saveCsHashSet(SnapshotWriter &W, const CsHashSet &S);
std::unique_ptr<CsHashSet> loadCsHashSet(SnapshotReader &R,
                                         const LanguageCache &Cache);

} // namespace paresy

#endif // PARESY_CORE_SNAPSHOT_H
