//===- core/DeltaWiden.h - Widening cached rows across spec edits ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spec-delta incremental resynthesis, the store half (DESIGN.md
/// Sec. 14). When a spec gains examples (none removed), the universe
/// ic(P u N) is a superset of the old one: every old word keeps a
/// (shifted) shortlex position and the new infixes appear as fresh
/// columns. A cached row - the characteristic sequence of a candidate
/// language - widens losslessly:
///
///  * old bits scatter to their new positions (a pure permutation,
///    cskernel::widenScatter), and
///  * the appended columns are recomputed from the row's provenance
///    by a membership recursion over the split structure of each new
///    word (deltaFillAppended): a literal tests the word itself,
///    question/union read operand bits, concat folds over all splits
///    u v of the word, and star is the usual fixpoint - but because
///    columns are filled in shortlex order, the strictly-shorter
///    suffix bits a star split needs are already final, including the
///    row's own.
///
/// Membership is semantic, so a widened row is bit-identical to what a
/// cold run on the edited spec would have computed for the same
/// candidate - the invariant the whole delta path rests on.
///
/// DeltaGeometry precomputes the per-edit structure once (column map,
/// appended columns, their split pairs); ShardedStore::appendColumns
/// streams rows through it.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_CORE_DELTAWIDEN_H
#define PARESY_CORE_DELTAWIDEN_H

#include "core/ShardedStore.h"
#include "lang/Universe.h"

#include <cstdint>
#include <vector>

namespace paresy {

/// Precomputed geometry of one spec edit: how the old universe embeds
/// in the new one and how each appended column decomposes.
struct DeltaGeometry {
  size_t OldBits = 0;  ///< #ic of the old spec (un-padded).
  size_t NewBits = 0;  ///< #ic of the edited spec (un-padded).
  size_t OldWords = 0; ///< Old CS width in 64-bit words (padded).
  size_t NewWords = 0; ///< New CS width in 64-bit words (padded).
  /// Old universe index -> new universe index (shortlex-preserving
  /// injection; size OldBits).
  std::vector<uint32_t> NewOfOld;
  /// New universe indices with no old counterpart, ascending (so
  /// shortlex order: a column's proper infixes precede it).
  std::vector<uint32_t> Appended;
  /// CSR over Appended: column j's splits are SplitPairs[2*P .. ) for
  /// P in [SplitRows[j], SplitRows[j+1]). Each split is (u, v) with
  /// word = u v, both as new universe indices (infix closure
  /// guarantees membership); the epsilon halves are included.
  std::vector<uint32_t> SplitRows;
  std::vector<uint32_t> SplitPairs;
  /// Per appended column: the word's only character when it is a
  /// single-symbol word (the literal kernel's test), else 0.
  std::vector<char> Symbol1;

  size_t appendedCount() const { return Appended.size(); }
};

/// Builds the geometry of the edit \p OldU -> \p NewU. False when the
/// new universe does not contain every old word (then the edit removed
/// examples, or reordered the alphabet - no delta applies).
bool buildDeltaGeometry(const Universe &OldU, const Universe &NewU,
                        DeltaGeometry &G);

/// Fills the appended columns of \p Row. On entry Row holds the old
/// bits at their widened positions and zeros everywhere else (the
/// widenScatter postcondition); on exit the appended columns hold the
/// candidate's membership bits for the new words. \p P is the
/// candidate's provenance; operand rows are read - fully widened -
/// from \p S, so rows must be processed in global-id order (operands
/// precede their consumers).
void deltaFillAppended(uint64_t *Row, const Provenance &P,
                       const DeltaGeometry &G, const ShardedStore &S);

} // namespace paresy

#endif // PARESY_CORE_DELTAWIDEN_H
