//===- core/Snapshot.cpp - Versioned byte streams for search state -----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Snapshot.h"

#include "core/CsHashSet.h"
#include "core/ShardedStore.h"
#include "lang/Fingerprint.h"
#include "support/Bits.h"

#include <bit>
#include <cassert>
#include <cstring>
#include <new>

using namespace paresy;

static constexpr std::string_view SnapshotMagic = "paresy-snapshot";

//===----------------------------------------------------------------------===//
// SnapshotWriter
//===----------------------------------------------------------------------===//

void SnapshotWriter::le(uint64_t V, unsigned Bytes) {
  for (unsigned I = 0; I != Bytes; ++I)
    Buf.push_back(char(uint8_t(V >> (8 * I))));
}

void SnapshotWriter::f64(double V) { u64(std::bit_cast<uint64_t>(V)); }

void SnapshotWriter::bytes(const void *Data, size_t Size) {
  Buf.append(static_cast<const char *>(Data), Size);
}

void SnapshotWriter::str(std::string_view S) {
  u64(S.size());
  Buf.append(S);
}

size_t SnapshotWriter::beginSection(std::string_view Tag) {
  str(Tag);
  size_t Handle = Buf.size();
  u64(0); // Payload length, patched by endSection.
  return Handle;
}

void SnapshotWriter::endSection(size_t Handle) {
  assert(Handle + 8 <= Buf.size() && "section handle out of range");
  uint64_t Length = Buf.size() - (Handle + 8);
  for (unsigned I = 0; I != 8; ++I)
    Buf[Handle + I] = char(uint8_t(Length >> (8 * I)));
}

//===----------------------------------------------------------------------===//
// SnapshotReader
//===----------------------------------------------------------------------===//

bool SnapshotReader::take(const void *&Ptr, size_t Size) {
  if (Failed || Size > limit() - Pos) {
    Failed = true;
    return false;
  }
  Ptr = Data.data() + Pos;
  Pos += Size;
  return true;
}

bool SnapshotReader::bytes(void *Out, size_t Size) {
  const void *Ptr = nullptr;
  if (!take(Ptr, Size))
    return false;
  std::memcpy(Out, Ptr, Size);
  return true;
}

bool SnapshotReader::u8(uint8_t &V) { return bytes(&V, 1); }

bool SnapshotReader::u16(uint16_t &V) {
  uint8_t Raw[2];
  if (!bytes(Raw, 2))
    return false;
  V = uint16_t(Raw[0]) | uint16_t(Raw[1]) << 8;
  return true;
}

bool SnapshotReader::u32(uint32_t &V) {
  uint8_t Raw[4];
  if (!bytes(Raw, 4))
    return false;
  V = 0;
  for (unsigned I = 0; I != 4; ++I)
    V |= uint32_t(Raw[I]) << (8 * I);
  return true;
}

bool SnapshotReader::u64(uint64_t &V) {
  uint8_t Raw[8];
  if (!bytes(Raw, 8))
    return false;
  V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= uint64_t(Raw[I]) << (8 * I);
  return true;
}

bool SnapshotReader::f64(double &V) {
  uint64_t Bits = 0;
  if (!u64(Bits))
    return false;
  V = std::bit_cast<double>(Bits);
  return true;
}

bool SnapshotReader::str(std::string &Out) {
  uint64_t Size = 0;
  if (!u64(Size))
    return false;
  const void *Ptr = nullptr;
  if (!take(Ptr, size_t(Size)))
    return false;
  Out.assign(static_cast<const char *>(Ptr), size_t(Size));
  return true;
}

bool SnapshotReader::enterSection(std::string_view Tag) {
  std::string Found;
  uint64_t Length = 0;
  if (!str(Found) || !u64(Length))
    return false;
  if (Found != Tag || Length > limit() - Pos) {
    Failed = true;
    return false;
  }
  Ends.push_back(Pos + size_t(Length));
  return true;
}

bool SnapshotReader::leaveSection() {
  if (Failed || Ends.empty()) {
    Failed = true;
    return false;
  }
  Pos = Ends.back();
  Ends.pop_back();
  return true;
}

//===----------------------------------------------------------------------===//
// Envelope and checksum
//===----------------------------------------------------------------------===//

void paresy::writeSnapshotHeader(SnapshotWriter &W, std::string_view Kind) {
  W.bytes(SnapshotMagic.data(), SnapshotMagic.size());
  W.u32(SnapshotFormatVersion);
  W.str(Kind);
}

bool paresy::readSnapshotHeader(SnapshotReader &R, std::string_view Kind) {
  char Magic[16] = {};
  assert(SnapshotMagic.size() <= sizeof(Magic));
  if (!R.bytes(Magic, SnapshotMagic.size()) ||
      std::string_view(Magic, SnapshotMagic.size()) != SnapshotMagic) {
    R.markFailed();
    return false;
  }
  uint32_t Version = 0;
  std::string Found;
  if (!R.u32(Version) || !R.str(Found))
    return false;
  if (Version != SnapshotFormatVersion || Found != Kind) {
    R.markFailed();
    return false;
  }
  return true;
}

void paresy::appendSnapshotChecksum(SnapshotWriter &W) {
  Fingerprint F = fingerprintText(W.buffer());
  W.u64(F.Hi);
  W.u64(F.Lo);
}

std::string_view paresy::stripSnapshotChecksum(std::string_view Data) {
  return Data.substr(0, Data.size() - 16);
}

bool paresy::verifySnapshotChecksum(std::string_view Data) {
  if (Data.size() < 16)
    return false;
  std::string_view Payload = stripSnapshotChecksum(Data);
  Fingerprint Expected = fingerprintText(Payload);
  SnapshotReader Trailer(Data.substr(Payload.size()));
  uint64_t Hi = 0, Lo = 0;
  return Trailer.u64(Hi) && Trailer.u64(Lo) && Hi == Expected.Hi &&
         Lo == Expected.Lo;
}

//===----------------------------------------------------------------------===//
// LanguageCache
//===----------------------------------------------------------------------===//

namespace {

void saveLevels(SnapshotWriter &W,
                const std::vector<std::pair<uint32_t, uint32_t>> &Levels) {
  W.u64(Levels.size());
  for (const std::pair<uint32_t, uint32_t> &L : Levels) {
    W.u32(L.first);
    W.u32(L.second);
  }
}

bool loadLevels(SnapshotReader &R,
                std::vector<std::pair<uint32_t, uint32_t>> &Levels,
                size_t MaxEnd) {
  uint64_t Count = 0;
  if (!R.u64(Count) || Count > R.remaining() / 8) {
    R.markFailed();
    return false;
  }
  Levels.assign(size_t(Count), {0, 0});
  for (std::pair<uint32_t, uint32_t> &L : Levels) {
    if (!R.u32(L.first) || !R.u32(L.second))
      return false;
    if (L.first > L.second || L.second > MaxEnd) {
      R.markFailed();
      return false;
    }
  }
  return true;
}

} // namespace

namespace {

void saveProvenance(SnapshotWriter &W, const Provenance &P) {
  W.u8(uint8_t(P.Kind));
  W.u8(uint8_t(P.Symbol));
  W.u32(P.Lhs);
  W.u32(P.Rhs);
}

bool loadProvenance(SnapshotReader &R, Provenance &P) {
  uint8_t Kind = 0, Symbol = 0;
  if (!R.u8(Kind) || !R.u8(Symbol) || !R.u32(P.Lhs) || !R.u32(P.Rhs))
    return false;
  if (Kind > uint8_t(CsOp::Union)) {
    R.markFailed();
    return false;
  }
  P.Kind = CsOp(Kind);
  P.Symbol = char(Symbol);
  return true;
}

} // namespace

void paresy::saveLanguageCache(SnapshotWriter &W, const LanguageCache &C) {
  size_t Section = W.beginSection("cache");
  W.u64(C.CsWordCount);
  W.u64(C.MaxEntries);
  W.u64(C.EntryCount);
  W.u8(C.Tier.Compress ? 1 : 0);
  if (!C.Tier.Compress) {
    // One record per row: the CS words at their logical width (the
    // padded stride is a host layout choice the restoring side
    // re-derives) followed by the provenance.
    for (size_t Row = 0; Row != C.EntryCount; ++Row) {
      for (size_t Word = 0; Word != C.CsWordCount; ++Word)
        W.u64(C.cs(Row)[Word]);
      saveProvenance(W, C.Prov[Row]);
    }
  } else {
    // Sealed chunks go out as their codec bytes verbatim (offsets and
    // hashes are derived data the loader rebuilds while validating),
    // then the open window's raw words, then provenance for all rows.
    // Spilled chunks page back in first: the stream must stand alone.
    W.u64(C.WindowBase);
    W.u64(C.Chunks.size());
    for (const std::unique_ptr<LanguageCache::SealedChunk> &Chunk :
         C.Chunks) {
      C.ensureHot(*Chunk);
      W.u32(Chunk->BeginRow);
      W.u32(Chunk->EndRow);
      W.u64(Chunk->Bytes.size());
      W.bytes(Chunk->Bytes.data(), Chunk->Bytes.size());
    }
    for (size_t Row = C.WindowBase; Row != C.EntryCount; ++Row)
      for (size_t Word = 0; Word != C.CsWordCount; ++Word)
        W.u64(C.cs(Row)[Word]);
    for (size_t Row = 0; Row != C.EntryCount; ++Row)
      saveProvenance(W, C.Prov[Row]);
  }
  saveLevels(W, C.Levels);
  W.endSection(Section);
}

std::unique_ptr<LanguageCache>
paresy::loadLanguageCache(SnapshotReader &R, const StoreTierConfig &Tier) {
  if (!R.enterSection("cache"))
    return nullptr;
  uint64_t CsWords = 0, MaxEntries = 0, EntryCount = 0;
  uint8_t Mode = 0;
  if (!R.u64(CsWords) || !R.u64(MaxEntries) || !R.u64(EntryCount) ||
      !R.u8(Mode))
    return nullptr;
  // Plausibility bounds before allocating anything: sane geometry, a
  // storage mode matching the restoring configuration (the modes
  // charge different budgets, so crossing them silently would corrupt
  // accounting), and enough stream left to plausibly hold the rows.
  if (CsWords == 0 || CsWords > (uint64_t(1) << 20) ||
      EntryCount > MaxEntries || MaxEntries > 0xfffffffeu || Mode > 1 ||
      (Mode == 1) != Tier.Compress ||
      (Mode == 0 && EntryCount > 0 &&
       EntryCount > R.remaining() / (CsWords * 8))) {
    R.markFailed();
    return nullptr;
  }
  // Capacity is genuine metadata (a parked store's row budget), so it
  // can legitimately dwarf the stream; what must not happen is a
  // corrupt or crafted claim taking the process down. The fingerprint
  // trailer is a checksum, not a MAC - a crafted stream passes it - so
  // allocation failure is treated as one more way the stream is bad.
  std::unique_ptr<LanguageCache> C;
  try {
    C = std::make_unique<LanguageCache>(size_t(CsWords),
                                        size_t(MaxEntries), Tier);
  } catch (const std::bad_alloc &) {
    R.markFailed();
    return nullptr;
  }

  if (Mode == 0) {
    std::vector<uint64_t> Row(size_t(CsWords), 0);
    for (uint64_t I = 0; I != EntryCount; ++I) {
      for (uint64_t Word = 0; Word != CsWords; ++Word)
        if (!R.u64(Row[size_t(Word)]))
          return nullptr;
      Provenance P;
      if (!loadProvenance(R, P))
        return nullptr;
      C->append(Row.data(), P);
    }
    if (!loadLevels(R, C->Levels, size_t(EntryCount)) || !R.leaveSection())
      return nullptr;
    return C;
  }

  // Compressed mode: chunks tile [0, WindowBase), the window holds
  // [WindowBase, EntryCount). Every chunk row is decode-validated here
  // - offsets, hashes and codec counts are rebuilt from the bytes, so
  // nothing downstream ever chases a malformed encoding.
  uint64_t WindowBase = 0, ChunkCount = 0;
  if (!R.u64(WindowBase) || !R.u64(ChunkCount))
    return nullptr;
  // Bound the allocations the claimed counts imply by what the stream
  // can actually hold: a window row costs CsWords*8 payload bytes and
  // every row a 10-byte provenance record; a sealed row at least one
  // codec byte.
  if (WindowBase > EntryCount || ChunkCount > WindowBase ||
      EntryCount - WindowBase > R.remaining() / (CsWords * 8) ||
      EntryCount > R.remaining()) {
    R.markFailed();
    return nullptr;
  }
  std::vector<uint64_t> Row(size_t(CsWords), 0);
  uint64_t NextRow = 0;
  for (uint64_t I = 0; I != ChunkCount; ++I) {
    uint32_t Begin = 0, End = 0;
    uint64_t ByteLen = 0;
    if (!R.u32(Begin) || !R.u32(End) || !R.u64(ByteLen))
      return nullptr;
    if (Begin != NextRow || End <= Begin || End > WindowBase ||
        ByteLen > R.remaining()) {
      R.markFailed();
      return nullptr;
    }
    auto Chunk = std::make_unique<LanguageCache::SealedChunk>();
    Chunk->BeginRow = Begin;
    Chunk->EndRow = End;
    Chunk->Bytes.resize(size_t(ByteLen));
    if (!R.bytes(Chunk->Bytes.data(), size_t(ByteLen)))
      return nullptr;
    size_t Pos = 0;
    Chunk->Offsets.reserve(size_t(End - Begin) + 1);
    for (uint32_t RowIdx = Begin; RowIdx != End; ++RowIdx) {
      Chunk->Offsets.push_back(uint32_t(Pos));
      size_t Used = decodeRow(Chunk->Bytes.data() + Pos,
                              size_t(ByteLen) - Pos, Row.data(),
                              size_t(CsWords));
      if (Used == 0) {
        R.markFailed();
        return nullptr;
      }
      ++C->CodecCounts[uint8_t(Chunk->Bytes[Pos])];
      Pos += Used;
      C->RowHashes.push_back(hashWords(Row.data(), size_t(CsWords)));
    }
    if (Pos != size_t(ByteLen)) {
      R.markFailed();
      return nullptr;
    }
    Chunk->Offsets.push_back(uint32_t(ByteLen));
    Chunk->LastTouch.store(
        C->TouchClock.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    C->SealedCompressedBytes += ByteLen;
    C->HotChunkBytes.fetch_add(ByteLen, std::memory_order_relaxed);
    C->Chunks.push_back(std::move(Chunk));
    NextRow = End;
  }
  if (NextRow != WindowBase) {
    R.markFailed();
    return nullptr;
  }
  C->WindowBase = size_t(WindowBase);
  C->EntryCount = size_t(EntryCount);
  C->ensureWindowRows(size_t(EntryCount - WindowBase));
  for (uint64_t I = WindowBase; I != EntryCount; ++I) {
    for (uint64_t Word = 0; Word != CsWords; ++Word)
      if (!R.u64(Row[size_t(Word)]))
        return nullptr;
    uint64_t *Slot = C->rowSlot(size_t(I));
    copyWords(Slot, Row.data(), size_t(CsWords));
    clearWords(Slot + CsWords, C->RowStride - size_t(CsWords));
    C->RowHashes.push_back(hashWords(Row.data(), size_t(CsWords)));
  }
  C->Prov.resize(size_t(EntryCount));
  for (uint64_t I = 0; I != EntryCount; ++I)
    if (!loadProvenance(R, C->Prov[size_t(I)]))
      return nullptr;
  if (!loadLevels(R, C->Levels, size_t(EntryCount)) || !R.leaveSection())
    return nullptr;
  // Everything restored hot; the next level boundary re-applies the
  // pinned budget and spills what this host cannot keep in memory.
  return C;
}

//===----------------------------------------------------------------------===//
// ShardedStore
//===----------------------------------------------------------------------===//

void paresy::saveShardedStore(SnapshotWriter &W, const ShardedStore &S) {
  size_t Section = W.beginSection("store");
  W.u64(S.CsWordCount);
  W.u32(S.shardCount());
  W.u64(S.Shards[0]->capacity()); // Per-shard capacity; equal by construction.
  for (unsigned Shard = 0; Shard != S.shardCount(); ++Shard)
    saveLanguageCache(W, *S.Shards[Shard]);
  W.u64(S.Dir.size());
  for (uint64_t Loc : S.Dir)
    W.u64(Loc);
  for (uint64_t Count : S.Dropped)
    W.u64(Count);
  saveLevels(W, S.Levels);
  W.endSection(Section);
}

std::unique_ptr<ShardedStore>
paresy::loadShardedStore(SnapshotReader &R, const StoreTierConfig &Tier) {
  if (!R.enterSection("store"))
    return nullptr;
  uint64_t CsWords = 0, PerShard = 0;
  uint32_t Shards = 0;
  if (!R.u64(CsWords) || !R.u32(Shards) || !R.u64(PerShard))
    return nullptr;
  if (CsWords == 0 || Shards == 0 || Shards > ShardedStore::MaxShards) {
    R.markFailed();
    return nullptr;
  }
  // See loadLanguageCache: a crafted per-shard capacity must reject,
  // not abort.
  std::unique_ptr<ShardedStore> S;
  try {
    S = std::make_unique<ShardedStore>(size_t(CsWords), Shards,
                                       size_t(PerShard), Tier);
  } catch (const std::bad_alloc &) {
    R.markFailed();
    return nullptr;
  }
  size_t Rows = 0;
  for (uint32_t Shard = 0; Shard != Shards; ++Shard) {
    // Each segment restores under the per-shard config the store
    // constructor derived (split budgets, ".shardN" spill file).
    std::unique_ptr<LanguageCache> C =
        loadLanguageCache(R, S->Shards[Shard]->tier());
    if (!C)
      return nullptr;
    if (C->csWords() != size_t(CsWords) ||
        C->capacity() != S->Shards[Shard]->capacity()) {
      R.markFailed();
      return nullptr;
    }
    Rows += C->size();
    S->Shards[Shard] = std::move(C);
  }
  uint64_t DirSize = 0;
  if (!R.u64(DirSize))
    return nullptr;
  // One shard keeps no directory; with several, every row has exactly
  // one directory word resolving to a committed local row.
  if (Shards == 1 ? DirSize != 0 : DirSize != Rows) {
    R.markFailed();
    return nullptr;
  }
  S->Dir.assign(size_t(DirSize), 0);
  // Per shard, local rows appear in dense append order - the invariant
  // globalOf's inverse directory is rebuilt from below.
  std::vector<uint32_t> NextLocal(Shards, 0);
  for (uint64_t &Loc : S->Dir) {
    if (!R.u64(Loc))
      return nullptr;
    if ((Loc >> 32) >= Shards ||
        uint32_t(Loc) >= S->Shards[Loc >> 32]->size() ||
        uint32_t(Loc) != NextLocal[Loc >> 32]++) {
      R.markFailed();
      return nullptr;
    }
  }
  S->rebuildShardIndex();
  for (uint64_t &Count : S->Dropped)
    if (!R.u64(Count))
      return nullptr;
  if (!loadLevels(R, S->Levels, Rows))
    return nullptr;
  // Provenance operands are global ids of strictly lower append rank
  // (operands live at strictly lower cost). Asserts are compiled out
  // of release builds, so reconstruction would chase corrupt operands
  // unchecked - reject them here instead.
  for (size_t Id = 0; Id != Rows; ++Id) {
    const Provenance &P = S->provenance(Id);
    bool NeedsLhs = P.Kind == CsOp::Question || P.Kind == CsOp::Star ||
                    P.Kind == CsOp::Concat || P.Kind == CsOp::Union;
    bool NeedsRhs = P.Kind == CsOp::Concat || P.Kind == CsOp::Union;
    if ((NeedsLhs && P.Lhs >= Id) || (NeedsRhs && P.Rhs >= Id)) {
      R.markFailed();
      return nullptr;
    }
  }
  if (!R.leaveSection())
    return nullptr;
  return S;
}

//===----------------------------------------------------------------------===//
// CsHashSet
//===----------------------------------------------------------------------===//

void paresy::saveCsHashSet(SnapshotWriter &W, const CsHashSet &S) {
  size_t Section = W.beginSection("csset");
  W.u64(S.Slots.size());
  W.u64(S.Count);
  for (uint32_t Slot : S.Slots)
    W.u32(Slot);
  for (uint8_t Tag : S.Tags)
    W.u8(Tag);
  W.endSection(Section);
}

std::unique_ptr<CsHashSet>
paresy::loadCsHashSet(SnapshotReader &R, const LanguageCache &Cache) {
  if (!R.enterSection("csset"))
    return nullptr;
  uint64_t SlotCount = 0, Count = 0;
  if (!R.u64(SlotCount) || !R.u64(Count))
    return nullptr;
  // Slot tables are power-of-two sized, at least the construction
  // size, below the writer's 70% grow threshold (insert() grows
  // before ever reaching it, and contains()'s probe loop terminates
  // only through an empty slot - a fuller table can only come from a
  // crafted stream and would spin that loop forever), and their row
  // indices must resolve into the bound cache.
  if (SlotCount < 64 || (SlotCount & (SlotCount - 1)) != 0 ||
      10 * Count >= 7 * SlotCount || SlotCount > R.remaining() / 4) {
    R.markFailed();
    return nullptr;
  }
  auto S = std::make_unique<CsHashSet>(Cache);
  S->Slots.assign(size_t(SlotCount), 0);
  S->Tags.assign(size_t(SlotCount), 0);
  S->Count = size_t(Count);
  size_t Occupied = 0;
  for (uint32_t &Slot : S->Slots) {
    if (!R.u32(Slot))
      return nullptr;
    if (Slot == 0xffffffffu)
      continue;
    ++Occupied;
    if (Slot >= Cache.size()) {
      R.markFailed();
      return nullptr;
    }
  }
  if (Occupied != Count) {
    R.markFailed();
    return nullptr;
  }
  for (uint8_t &Tag : S->Tags)
    if (!R.u8(Tag))
      return nullptr;
  if (!R.leaveSection())
    return nullptr;
  return S;
}
