//===- core/Synthesizer.cpp - The Paresy search (CPU reference) -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The public sequential entry point. The search pipeline itself -
/// Alg. 1's cost sweep and Alg. 2's candidate construction, plus
/// OnTheFly mode and the REI-with-error variant - lives in the shared
/// engine (engine/SearchDriver.cpp); this translation unit binds it to
/// the sequential backend and keeps the pipeline-independent helpers.
///
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"

#include "core/ShardedStore.h"
#include "engine/CpuBackend.h"
#include "engine/SearchDriver.h"

#include <algorithm>
#include <cstdlib>

using namespace paresy;

unsigned paresy::defaultShardCount() {
  static const unsigned Value = [] {
    const char *Env = std::getenv("PARESY_TEST_SHARDS");
    if (!Env || !*Env)
      return 1u;
    long Parsed = std::strtol(Env, nullptr, 10);
    return unsigned(
        std::clamp<long>(Parsed, 1, long(ShardedStore::MaxShards)));
  }();
  return Value;
}

const char *paresy::statusName(SynthStatus Status) {
  switch (Status) {
  case SynthStatus::Found:
    return "Found";
  case SynthStatus::NotFound:
    return "NotFound";
  case SynthStatus::OutOfMemory:
    return "OutOfMemory";
  case SynthStatus::Timeout:
    return "Timeout";
  case SynthStatus::InvalidInput:
    return "InvalidInput";
  case SynthStatus::Cancelled:
    return "Cancelled";
  }
  return "Unknown";
}

uint64_t paresy::overfitCostBound(const Spec &S, const CostFn &Cost) {
  if (S.Pos.empty())
    return Cost.Literal;
  uint64_t Total = 0;
  for (const std::string &W : S.Pos) {
    if (W.empty())
      Total += Cost.Literal;
    else
      Total += uint64_t(W.size()) * Cost.Literal +
               uint64_t(W.size() - 1) * Cost.Concat;
  }
  Total += uint64_t(S.Pos.size() - 1) * Cost.Union;
  return Total;
}

SynthResult paresy::synthesize(const Spec &S, const Alphabet &Sigma,
                               const SynthOptions &Opts) {
  engine::CpuBackend Backend;
  return engine::runSearch(S, Sigma, Opts, Backend);
}
