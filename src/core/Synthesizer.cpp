//===- core/Synthesizer.cpp - The Paresy search (CPU reference) -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Implementation of Alg. 1 (the cost sweep) and Alg. 2 (candidate
/// construction) from the paper, plus OnTheFly mode and the
/// REI-with-error variant of Sec. 5.2. See Synthesizer.h for the
/// contract and DESIGN.md for the deviations (epsilon seeding,
/// commutative-union halving).
///
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"

#include "core/CsHashSet.h"
#include "core/LanguageCache.h"
#include "lang/CharSeq.h"
#include "lang/GuideTable.h"
#include "lang/Universe.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <memory>

using namespace paresy;

const char *paresy::statusName(SynthStatus Status) {
  switch (Status) {
  case SynthStatus::Found:
    return "Found";
  case SynthStatus::NotFound:
    return "NotFound";
  case SynthStatus::OutOfMemory:
    return "OutOfMemory";
  case SynthStatus::Timeout:
    return "Timeout";
  case SynthStatus::InvalidInput:
    return "InvalidInput";
  }
  return "Unknown";
}

uint64_t paresy::overfitCostBound(const Spec &S, const CostFn &Cost) {
  if (S.Pos.empty())
    return Cost.Literal;
  uint64_t Total = 0;
  for (const std::string &W : S.Pos) {
    if (W.empty())
      Total += Cost.Literal;
    else
      Total += uint64_t(W.size()) * Cost.Literal +
               uint64_t(W.size() - 1) * Cost.Concat;
  }
  Total += uint64_t(S.Pos.size() - 1) * Cost.Union;
  return Total;
}

namespace {

/// One synthesis run. Owns the staged data (universe, guide table),
/// the language cache and the sweep state.
class Searcher {
public:
  Searcher(const Spec &S, const Alphabet &Sigma, const SynthOptions &Opts)
      : S(S), Sigma(Sigma), Opts(Opts) {}

  SynthResult run();

private:
  SynthResult invalid(std::string Message) {
    SynthResult R;
    R.Status = SynthStatus::InvalidInput;
    R.Message = std::move(Message);
    return R;
  }

  SynthResult trivial(const char *Regex, uint64_t Cost) {
    SynthResult R;
    R.Status = SynthStatus::Found;
    R.Regex = Regex;
    R.Cost = Cost;
    return R;
  }

  void seedLevel();
  void buildQuestions(uint64_t C);
  void buildStars(uint64_t C);
  void buildConcats(uint64_t C);
  void buildUnions(uint64_t C);
  void processCandidate(const Provenance &Prov);
  void fillStats(SynthResult &R);
  SynthResult finishFound();

  bool stopRequested() const { return TimedOut || OomAbort; }
  void maybeCheckTimeout() {
    if (Opts.TimeoutSeconds <= 0 || TimedOut)
      return;
    if ((Stats.CandidatesGenerated & 0xfff) != 0)
      return;
    if (Clock.seconds() > Opts.TimeoutSeconds)
      TimedOut = true;
  }

  const Spec &S;
  const Alphabet &Sigma;
  const SynthOptions &Opts;

  std::unique_ptr<Universe> U;
  std::unique_ptr<GuideTable> GT;
  std::unique_ptr<CsAlgebra> Algebra;
  std::unique_ptr<LanguageCache> Cache;
  std::unique_ptr<CsHashSet> Unique;
  std::vector<uint64_t> Scratch;
  std::vector<uint64_t> NonEmptyLevels; // Sorted costs with cached CSs.

  SynthStats Stats;
  WallTimer Clock;
  unsigned MistakeBudget = 0;
  uint64_t CurrentCost = 0;

  // First satisfying candidate of the lowest cost level (kept until
  // the level completes so candidate counts match the batch-oriented
  // GPU implementation exactly).
  bool HavePending = false;
  Provenance Pending;
  uint64_t PendingCost = 0;

  // Cache-full bookkeeping (Sec. 3 "OnTheFly mode").
  bool CacheFilled = false;
  uint64_t FilledCost = 0;
  uint64_t Horizon = 0;

  bool TimedOut = false;
  bool OomAbort = false;
};

SynthResult Searcher::run() {
  const CostFn &Cost = Opts.Cost;
  if (!Cost.isValid())
    return invalid("cost function constants must all be positive");
  if (!(Opts.AllowedError >= 0.0 && Opts.AllowedError < 1.0))
    return invalid("allowed error must lie in [0, 1)");
  std::string SpecError;
  if (!S.validate(Sigma, &SpecError))
    return invalid(SpecError);

  MistakeBudget =
      unsigned(std::floor(Opts.AllowedError * double(S.exampleCount())));

  // Trivial specifications (Alg. 1 lines 4-5). Any solution costs at
  // least c1, and these cost exactly c1.
  if (S.Pos.empty())
    return trivial("@", Cost.Literal);
  if (S.Pos.size() == 1 && S.Pos.front().empty() && MistakeBudget == 0)
    return trivial("#", Cost.Literal);

  // Staging: infix closure, guide table, masks (Sec. 3 "Staging").
  U = std::make_unique<Universe>(S, Opts.PadToPowerOfTwo);
  if (Opts.UseGuideTable) {
    GT = std::make_unique<GuideTable>(*U);
    Stats.GuidePairs = GT->totalPairs();
  }
  Algebra = std::make_unique<CsAlgebra>(*U, GT.get());
  Stats.UniverseSize = U->size();
  Stats.CsWords = U->csWords();
  Stats.PrecomputeSeconds = Clock.seconds();

  // Derive the cache capacity from the memory budget. Each cached CS
  // costs its bits, its provenance, and an amortised uniqueness slot
  // (the paper estimates "approx. 3k bits per CS").
  uint64_t PerEntry = uint64_t(U->csWords()) * sizeof(uint64_t) +
                      sizeof(Provenance) + 6;
  uint64_t Capacity = std::max<uint64_t>(16, Opts.MemoryLimitBytes / PerEntry);
  Capacity = std::min<uint64_t>(Capacity, 0xfffffffeu);
  Cache = std::make_unique<LanguageCache>(U->csWords(), size_t(Capacity));
  Unique = std::make_unique<CsHashSet>(*Cache);
  Scratch.assign(U->csWords(), 0);

  uint64_t MaxCost =
      Opts.MaxCost ? Opts.MaxCost : overfitCostBound(S, Cost);
  // The overfit bound writes epsilon as the literal '#'; without the
  // epsilon seed that literal is unreachable and the fallback is a
  // question mark, so widen the automatic bound accordingly.
  if (!Opts.MaxCost && !Opts.SeedEpsilon)
    MaxCost += Cost.Question;

  // The completeness horizon once the cache has filled at cost F:
  // every candidate at cost <= F + MinExtra - 1 references only
  // levels < F, which are fully cached, so minimality still holds.
  uint64_t MinExtra = std::min<uint64_t>(
      std::min<uint64_t>(Cost.Question, Cost.Star),
      std::min<uint64_t>(uint64_t(Cost.Concat) + Cost.Literal,
                         uint64_t(Cost.Union) + Cost.Literal));

  CurrentCost = Cost.Literal;
  seedLevel();
  if (HavePending)
    return finishFound();
  if (OomAbort) {
    SynthResult R;
    R.Status = SynthStatus::OutOfMemory;
    fillStats(R);
    return R;
  }

  for (uint64_t C = uint64_t(Cost.Literal) + 1; C <= MaxCost; ++C) {
    if (CacheFilled) {
      Horizon = Opts.EnableOnTheFly ? FilledCost + MinExtra - 1
                                    : FilledCost;
      if (C > Horizon) {
        SynthResult R;
        R.Status = SynthStatus::OutOfMemory;
        fillStats(R);
        return R;
      }
    }

    CurrentCost = C;
    uint32_t LevelBegin = uint32_t(Cache->size());
    // In-level constructor order from Alg. 1 line 12.
    buildQuestions(C);
    buildStars(C);
    buildConcats(C);
    buildUnions(C);
    uint32_t LevelEnd = uint32_t(Cache->size());
    Cache->setLevel(C, LevelBegin, LevelEnd);
    if (LevelEnd != LevelBegin)
      NonEmptyLevels.push_back(C);

    // A satisfier takes precedence over resource aborts in the same
    // level: candidates of one level share the same cost, so the
    // first satisfier is minimal even if the level was cut short.
    if (HavePending)
      return finishFound();
    if (TimedOut) {
      SynthResult R;
      R.Status = SynthStatus::Timeout;
      fillStats(R);
      return R;
    }
    if (OomAbort) {
      SynthResult R;
      R.Status = SynthStatus::OutOfMemory;
      fillStats(R);
      return R;
    }
    Stats.LastCompletedCost = C;
  }

  SynthResult R;
  R.Status = SynthStatus::NotFound;
  fillStats(R);
  return R;
}

void Searcher::seedLevel() {
  // Alg. 1 line 6: the alphabet literals, plus {epsilon} (DESIGN.md
  // deviation) and - under an error budget, where the empty language
  // can be a legitimate answer (Sec. 5.2) - the empty language.
  uint32_t LevelBegin = uint32_t(Cache->size());
  for (size_t I = 0; I != Sigma.size(); ++I) {
    Provenance Prov;
    Prov.Kind = CsOp::Literal;
    Prov.Symbol = Sigma.symbol(I);
    Algebra->makeLiteral(Scratch.data(), Prov.Symbol);
    processCandidate(Prov);
  }
  if (Opts.SeedEpsilon) {
    Provenance Prov;
    Prov.Kind = CsOp::Epsilon;
    Algebra->makeEpsilon(Scratch.data());
    processCandidate(Prov);
  }
  if (MistakeBudget > 0) {
    Provenance Prov;
    Prov.Kind = CsOp::Empty;
    Algebra->makeEmpty(Scratch.data());
    processCandidate(Prov);
  }
  uint64_t C1 = Opts.Cost.Literal;
  Cache->setLevel(C1, LevelBegin, uint32_t(Cache->size()));
  if (Cache->size() != LevelBegin)
    NonEmptyLevels.push_back(C1);
  Stats.LastCompletedCost = C1;
}

void Searcher::buildQuestions(uint64_t C) {
  if (C <= Opts.Cost.Question || stopRequested())
    return;
  auto [Begin, End] = Cache->level(C - Opts.Cost.Question);
  for (uint32_t I = Begin; I != End && !stopRequested(); ++I) {
    Provenance Prov;
    Prov.Kind = CsOp::Question;
    Prov.Lhs = I;
    Algebra->question(Scratch.data(), Cache->cs(I));
    processCandidate(Prov);
  }
}

void Searcher::buildStars(uint64_t C) {
  if (C <= Opts.Cost.Star || stopRequested())
    return;
  auto [Begin, End] = Cache->level(C - Opts.Cost.Star);
  for (uint32_t I = Begin; I != End && !stopRequested(); ++I) {
    Provenance Prov;
    Prov.Kind = CsOp::Star;
    Prov.Lhs = I;
    Algebra->star(Scratch.data(), Cache->cs(I));
    processCandidate(Prov);
  }
}

void Searcher::buildConcats(uint64_t C) {
  if (C <= Opts.Cost.Concat || stopRequested())
    return;
  uint64_t Budget = C - Opts.Cost.Concat;
  // Alg. 2 line 5: all ordered cost splits L + R = Budget, restricted
  // to the non-empty cached levels.
  for (uint64_t LC : NonEmptyLevels) {
    if (LC + Opts.Cost.Literal > Budget)
      break;
    uint64_t RC = Budget - LC;
    auto [LB, LE] = Cache->level(LC);
    auto [RB, RE] = Cache->level(RC);
    if (LB == LE || RB == RE)
      continue;
    for (uint32_t I = LB; I != LE; ++I) {
      const uint64_t *LCs = Cache->cs(I);
      for (uint32_t J = RB; J != RE; ++J) {
        Provenance Prov;
        Prov.Kind = CsOp::Concat;
        Prov.Lhs = I;
        Prov.Rhs = J;
        Algebra->concat(Scratch.data(), LCs, Cache->cs(J));
        processCandidate(Prov);
        if (stopRequested())
          return;
      }
    }
  }
}

void Searcher::buildUnions(uint64_t C) {
  if (C <= Opts.Cost.Union || stopRequested())
    return;
  uint64_t Budget = C - Opts.Cost.Union;
  // Union is commutative and idempotent, so only splits with L <= R
  // and, within one level, only pairs I < J are generated (a deviation
  // from the paper's "all L, R" that halves the work but changes
  // neither the reachable languages nor minimality).
  for (uint64_t LC : NonEmptyLevels) {
    if (2 * LC > Budget)
      break;
    uint64_t RC = Budget - LC;
    auto [LB, LE] = Cache->level(LC);
    auto [RB, RE] = Cache->level(RC);
    if (LB == LE || RB == RE)
      continue;
    for (uint32_t I = LB; I != LE; ++I) {
      const uint64_t *LCs = Cache->cs(I);
      uint32_t JBegin = LC == RC ? I + 1 : RB;
      for (uint32_t J = JBegin; J < RE; ++J) {
        Provenance Prov;
        Prov.Kind = CsOp::Union;
        Prov.Lhs = I;
        Prov.Rhs = J;
        Algebra->unionOf(Scratch.data(), LCs, Cache->cs(J));
        processCandidate(Prov);
        if (stopRequested())
          return;
      }
    }
  }
}

void Searcher::processCandidate(const Provenance &Prov) {
  // Alg. 2 lines 15-19, with the solution deferred to the end of the
  // level (same cost, first-in-order winner; see class comment).
  ++Stats.CandidatesGenerated;
  maybeCheckTimeout();

  if (Opts.UniquenessCheck && Unique->contains(Scratch.data()))
    return;
  ++Stats.UniqueLanguages;

  if (!HavePending && Algebra->satisfies(Scratch.data(), MistakeBudget)) {
    HavePending = true;
    Pending = Prov;
    PendingCost = CurrentCost;
  }

  if (!Cache->full()) {
    uint32_t Idx = Cache->append(Scratch.data(), Prov);
    if (Opts.UniquenessCheck)
      Unique->insert(Scratch.data(), Idx);
    return;
  }
  if (!CacheFilled) {
    CacheFilled = true;
    FilledCost = CurrentCost;
    Stats.OnTheFly = Opts.EnableOnTheFly;
    if (!Opts.EnableOnTheFly)
      OomAbort = true; // Paper behaviour: an immediate OOM error.
  }
  // The candidate is dropped from the cache but was fully checked:
  // OnTheFly keeps sweeping while completeness holds (see run()).
}

void Searcher::fillStats(SynthResult &R) {
  Stats.CacheEntries = Cache ? Cache->size() : 0;
  Stats.MemoryBytes =
      (Cache ? Cache->bytesUsed() : 0) + (Unique ? Unique->bytesUsed() : 0);
  if (Algebra)
    Stats.PairsVisited = Algebra->pairsVisited();
  Stats.SearchSeconds = Clock.seconds() - Stats.PrecomputeSeconds;
  R.Stats = Stats;
}

SynthResult Searcher::finishFound() {
  RegexManager M;
  const Regex *Re = Cache->reconstructCandidate(Pending, M);
  SynthResult R;
  R.Status = SynthStatus::Found;
  R.Regex = toString(Re);
  R.Cost = PendingCost;
  assert(Opts.Cost.of(Re) == PendingCost &&
         "reconstructed expression must cost exactly its level");
  fillStats(R);
  return R;
}

} // namespace

SynthResult paresy::synthesize(const Spec &S, const Alphabet &Sigma,
                               const SynthOptions &Opts) {
  return Searcher(S, Sigma, Opts).run();
}
