//===- core/CsHashSet.cpp - Uniqueness checking for cached CSs ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CsHashSet.h"

#include "support/Bits.h"

#include <cassert>

using namespace paresy;

CsHashSet::CsHashSet(const LanguageCache &Cache) : Cache(Cache) {
  Slots.assign(64, EmptySlot);
}

bool CsHashSet::contains(const uint64_t *Cs) const {
  size_t Mask = Slots.size() - 1;
  size_t SlotIdx = size_t(hashWords(Cs, Cache.csWords())) & Mask;
  for (;;) {
    uint32_t Entry = Slots[SlotIdx];
    if (Entry == EmptySlot)
      return false;
    if (equalWords(Cache.cs(Entry), Cs, Cache.csWords()))
      return true;
    SlotIdx = (SlotIdx + 1) & Mask;
  }
}

void CsHashSet::insert(const uint64_t *Cs, uint32_t Idx) {
  assert(equalWords(Cache.cs(Idx), Cs, Cache.csWords()) &&
         "slot key must match the cache row");
  if (10 * (Count + 1) >= 7 * Slots.size())
    grow();
  size_t Mask = Slots.size() - 1;
  size_t SlotIdx = size_t(hashWords(Cs, Cache.csWords())) & Mask;
  while (Slots[SlotIdx] != EmptySlot) {
    assert(!equalWords(Cache.cs(Slots[SlotIdx]), Cs, Cache.csWords()) &&
           "inserting a duplicate CS");
    SlotIdx = (SlotIdx + 1) & Mask;
  }
  Slots[SlotIdx] = Idx;
  ++Count;
}

void CsHashSet::grow() {
  std::vector<uint32_t> Old = std::move(Slots);
  Slots.assign(Old.size() * 2, EmptySlot);
  size_t Mask = Slots.size() - 1;
  for (uint32_t Entry : Old) {
    if (Entry == EmptySlot)
      continue;
    size_t SlotIdx =
        size_t(hashWords(Cache.cs(Entry), Cache.csWords())) & Mask;
    while (Slots[SlotIdx] != EmptySlot)
      SlotIdx = (SlotIdx + 1) & Mask;
    Slots[SlotIdx] = Entry;
  }
}
