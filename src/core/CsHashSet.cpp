//===- core/CsHashSet.cpp - Uniqueness checking for cached CSs ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CsHashSet.h"

#include "support/Bits.h"

#include <cassert>

using namespace paresy;

CsHashSet::CsHashSet(const LanguageCache &Cache) : Cache(Cache) {
  Slots.assign(64, EmptySlot);
  Tags.assign(64, 0);
}

bool CsHashSet::contains(const uint64_t *Cs) const {
  return contains(Cs, hashWords(Cs, Cache.csWords()));
}

bool CsHashSet::contains(const uint64_t *Cs, uint64_t Hash) const {
  return find(Cs, Hash) >= 0;
}

int64_t CsHashSet::find(const uint64_t *Cs, uint64_t Hash) const {
  assert(Hash == hashWords(Cs, Cache.csWords()) &&
         "precomputed hash mismatch");
  size_t Mask = Slots.size() - 1;
  uint8_t Tag = hashTagByte(Hash);
  size_t SlotIdx = size_t(Hash) & Mask;
  for (;;) {
    uint32_t Entry = Slots[SlotIdx];
    if (Entry == EmptySlot)
      return -1;
    // Tag first: only a matching fingerprint justifies fetching the
    // row words.
    if (Tags[SlotIdx] == Tag &&
        equalWords(Cache.cs(Entry), Cs, Cache.csWords()))
      return int64_t(Entry);
    SlotIdx = (SlotIdx + 1) & Mask;
  }
}

void CsHashSet::insert(const uint64_t *Cs, uint32_t Idx) {
  assert(equalWords(Cache.cs(Idx), Cs, Cache.csWords()) &&
         "slot key must match the cache row");
  if (10 * (Count + 1) >= 7 * Slots.size())
    grow();
  // The cache hashed this row when it was appended; reuse it.
  uint64_t Hash = Cache.rowHash(Idx);
  assert(Hash == hashWords(Cs, Cache.csWords()) &&
         "cached row hash out of sync");
  place(Idx, Hash);
  ++Count;
}

void CsHashSet::place(uint32_t Idx, uint64_t Hash) {
  size_t Mask = Slots.size() - 1;
  size_t SlotIdx = size_t(Hash) & Mask;
  while (Slots[SlotIdx] != EmptySlot) {
    assert(!equalWords(Cache.cs(Slots[SlotIdx]), Cache.cs(Idx),
                       Cache.csWords()) &&
           "inserting a duplicate CS");
    SlotIdx = (SlotIdx + 1) & Mask;
  }
  Slots[SlotIdx] = Idx;
  Tags[SlotIdx] = hashTagByte(Hash);
}

void CsHashSet::grow() {
  std::vector<uint32_t> Old = std::move(Slots);
  Slots.assign(Old.size() * 2, EmptySlot);
  Tags.assign(Old.size() * 2, 0);
  for (uint32_t Entry : Old) {
    if (Entry == EmptySlot)
      continue;
    // Precomputed row hashes make the rehash a metadata-only pass: no
    // key words are read.
    place(Entry, Cache.rowHash(Entry));
  }
}
