//===- core/LanguageCache.cpp - Write-once matrix of languages --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/LanguageCache.h"

#include "support/Bits.h"
#include "support/Compiler.h"

using namespace paresy;

LanguageCache::LanguageCache(size_t CsWords, size_t MaxEntries)
    : CsWordCount(CsWords), RowStride(strideForWords(CsWords)),
      MaxEntries(MaxEntries), Store(MaxEntries * RowStride) {
  assert(CsWords > 0 && "rows need at least one word");
  // The paper allocates the cache as one contiguous, uninitialised
  // array whose structure emerges during the search; the aligned store
  // mirrors that (pages commit as rows are appended) and keeps
  // out-of-budget allocation failures at construction time.
  RowHashes.reserve(MaxEntries);
  Prov.reserve(MaxEntries);
}

uint32_t LanguageCache::append(const uint64_t *Cs, const Provenance &P) {
  assert(!full() && "appending to a full language cache");
  uint64_t *Row = Store.data() + EntryCount * RowStride;
  copyWords(Row, Cs, CsWordCount);
  clearWords(Row + CsWordCount, RowStride - CsWordCount);
  RowHashes.push_back(hashWords(Cs, CsWordCount));
  Prov.push_back(P);
  return uint32_t(EntryCount++);
}

uint32_t LanguageCache::reserveRows(size_t Count) {
  assert(EntryCount + Count <= MaxEntries &&
         "reserving beyond the cache capacity");
  uint32_t Base = uint32_t(EntryCount);
  EntryCount += Count;
  clearWords(Store.data() + size_t(Base) * RowStride, Count * RowStride);
  // Reserved rows get their real hash in writeRow; until then the
  // placeholder is never read (only the uniqueness set reads hashes,
  // and it indexes rows that were appended, not reserved).
  RowHashes.resize(EntryCount, 0);
  Prov.resize(EntryCount);
  return Base;
}

void LanguageCache::writeRow(size_t Idx, const uint64_t *Cs,
                             const Provenance &P) {
  assert(Idx < EntryCount && "writing an unreserved row");
  uint64_t *Row = Store.data() + Idx * RowStride;
  copyWords(Row, Cs, CsWordCount);
  // Padding words were zeroed by reserveRows and stay zero.
  RowHashes[Idx] = hashWords(Cs, CsWordCount);
  Prov[Idx] = P;
}

void LanguageCache::setLevel(uint64_t Cost, uint32_t Begin, uint32_t End) {
  assert(Begin <= End && End <= EntryCount && "bad level range");
  if (Levels.size() <= Cost)
    Levels.resize(Cost + 1, {0, 0});
  Levels[Cost] = {Begin, End};
}

std::pair<uint32_t, uint32_t> LanguageCache::level(uint64_t Cost) const {
  if (Cost >= Levels.size())
    return {0, 0};
  return Levels[Cost];
}

const Regex *LanguageCache::reconstruct(size_t Idx, RegexManager &M) const {
  std::vector<const Regex *> Memo(EntryCount, nullptr);
  return reconstructImpl(provenance(Idx), M, Memo);
}

const Regex *
LanguageCache::reconstructCandidate(const Provenance &P,
                                    RegexManager &M) const {
  std::vector<const Regex *> Memo(EntryCount, nullptr);
  return reconstructImpl(P, M, Memo);
}

const Regex *
LanguageCache::reconstructImpl(const Provenance &P, RegexManager &M,
                               std::vector<const Regex *> &Memo) const {
  auto Operand = [&](uint32_t Idx) -> const Regex * {
    assert(Idx < EntryCount && "provenance operand out of range");
    if (Memo[Idx])
      return Memo[Idx];
    const Regex *Re = reconstructImpl(Prov[Idx], M, Memo);
    Memo[Idx] = Re;
    return Re;
  };
  switch (P.Kind) {
  case CsOp::Literal:
    return M.literal(P.Symbol);
  case CsOp::Epsilon:
    return M.epsilon();
  case CsOp::Empty:
    return M.empty();
  case CsOp::Question:
    return M.question(Operand(P.Lhs));
  case CsOp::Star:
    return M.star(Operand(P.Lhs));
  case CsOp::Concat:
    return M.concat(Operand(P.Lhs), Operand(P.Rhs));
  case CsOp::Union:
    return M.alt(Operand(P.Lhs), Operand(P.Rhs));
  }
  PARESY_UNREACHABLE("invalid provenance kind");
}
