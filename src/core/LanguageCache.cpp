//===- core/LanguageCache.cpp - Write-once matrix of languages --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/LanguageCache.h"

#include "support/Bits.h"
#include "support/Compiler.h"

#include <algorithm>
#include <stdexcept>

using namespace paresy;

namespace {

/// Process-unique cache ids for the sealed-row scratch rings: a ring
/// slot is valid only for the exact cache instance that filled it, and
/// uids are never reused, so a destroyed cache can never alias a live
/// slot.
std::atomic<uint64_t> NextCacheUid{1};

/// Per-thread decode ring for sealed rows. Eight slots: callers hold
/// at most two sealed-row pointers at once (a concat/union's operands)
/// and the ring gives repeated reads of the same hot operand a free
/// hit. Slots key on (cache uid, row); sealed rows are immutable for a
/// cache's lifetime, so a match can never be stale.
///
/// The two most recently accessed slots are never chosen as refill
/// victims: a hit hands out a pointer into its slot, and a caller
/// holding that pointer may trigger one more read (the second operand
/// of a concat/union) before consuming both - evicting the hit slot
/// there would silently swap the first operand's bits for the
/// second's.
struct ScratchRing {
  static constexpr unsigned SlotCount = 8;
  struct Slot {
    uint64_t Uid = 0;
    uint64_t Row = 0;
    std::vector<uint64_t> Words;
  };
  Slot Slots[SlotCount];
  unsigned Next = 0;
  unsigned LastA = SlotCount; // Most recently accessed slot.
  unsigned LastB = SlotCount; // Second most recently accessed slot.

  void touch(unsigned Idx) {
    if (LastA == Idx)
      return;
    LastB = LastA;
    LastA = Idx;
  }

  /// The next refill victim, skipping the two live-pointer slots.
  unsigned victim() {
    unsigned Idx = Next++ % SlotCount;
    while (Idx == LastA || Idx == LastB)
      Idx = Next++ % SlotCount;
    return Idx;
  }
};

thread_local ScratchRing Ring;

} // namespace

LanguageCache::LanguageCache(size_t CsWords, size_t MaxEntries,
                             StoreTierConfig TierConfig)
    : CsWordCount(CsWords), RowStride(strideForWords(CsWords)),
      MaxEntries(MaxEntries), Tier(std::move(TierConfig)),
      Store(Tier.Compress ? 0 : MaxEntries * RowStride),
      CacheUid(NextCacheUid.fetch_add(1, std::memory_order_relaxed)) {
  assert(CsWords > 0 && "rows need at least one word");
  // Raw mode mirrors the paper: one contiguous, uninitialised array
  // whose structure emerges during the search (pages commit as rows
  // are appended), with out-of-budget allocation failures at
  // construction time. Compressed mode allocates nothing up front -
  // the open window grows with the live level and sealed levels cost
  // only their codec bytes.
  if (!Tier.Compress) {
    RowHashes.reserve(MaxEntries);
    Prov.reserve(MaxEntries);
  }
}

LanguageCache::~LanguageCache() {
  if (Spill) {
    std::fclose(Spill);
    std::remove(Tier.SpillPath.c_str());
  }
}

void LanguageCache::ensureWindowRows(size_t Rows) {
  if (Rows <= WindowCap)
    return;
  size_t NewCap = std::max<size_t>(WindowCap ? WindowCap * 2 : 64, Rows);
  AlignedWordBuffer Grown(NewCap * RowStride);
  copyWords(Grown.data(), Window.data(),
            (EntryCount - WindowBase) * RowStride);
  Window = std::move(Grown);
  WindowCap = NewCap;
}

uint64_t *LanguageCache::rowSlot(size_t Idx) {
  if (!Tier.Compress)
    return Store.data() + Idx * RowStride;
  assert(Idx >= WindowBase && "writing a sealed row");
  return Window.data() + (Idx - WindowBase) * RowStride;
}

uint32_t LanguageCache::append(const uint64_t *Cs, const Provenance &P) {
  return append(Cs, P, hashWords(Cs, CsWordCount));
}

uint32_t LanguageCache::append(const uint64_t *Cs, const Provenance &P,
                               uint64_t Hash) {
  assert(!full() && "appending to a full language cache");
  assert(Hash == hashWords(Cs, CsWordCount) && "precomputed hash mismatch");
  if (Tier.Compress)
    ensureWindowRows(EntryCount - WindowBase + 1);
  uint64_t *Row = rowSlot(EntryCount);
  copyWords(Row, Cs, CsWordCount);
  clearWords(Row + CsWordCount, RowStride - CsWordCount);
  RowHashes.push_back(Hash);
  Prov.push_back(P);
  uint32_t Idx = uint32_t(EntryCount++);
  // Mid-level auto-seal: the sequential append path is the only
  // writer and holds no window pointers, so sealing here is as
  // quiesced as a level boundary. Operands always live in already-
  // sealed levels, and probe reads of this level go through cs()'s
  // sealed dispatch afterwards - results are bit-identical either way.
  if (Tier.Compress && Tier.WindowBudget &&
      (EntryCount - WindowBase) * RowStride * sizeof(uint64_t) >=
          Tier.WindowBudget)
    sealWindow();
  return Idx;
}

bool LanguageCache::appendColumns(const LanguageCache &Old, uint32_t Begin,
                                  uint32_t End,
                                  const DeltaWidenFn &WidenRow) {
  assert(EntryCount == Begin && "widened rows must extend the row space");
  // One scratch row: Old.cs() may serve compressed rows from a
  // per-thread ring, so the widened words are built outside it.
  std::vector<uint64_t> Row(CsWordCount);
  for (uint32_t Id = Begin; Id != End; ++Id) {
    if (full())
      return false;
    WidenRow(Id, Old.cs(Id), Row.data());
    append(Row.data(), Old.provenance(Id));
  }
  return true;
}

uint32_t LanguageCache::reserveRows(size_t Count) {
  assert(EntryCount + Count <= MaxEntries &&
         "reserving beyond the cache capacity");
  uint32_t Base = uint32_t(EntryCount);
  if (Tier.Compress)
    ensureWindowRows(EntryCount - WindowBase + Count);
  EntryCount += Count;
  clearWords(rowSlot(Base), Count * RowStride);
  // Reserved rows get their real hash in writeRow; until then the
  // placeholder is never read (only the uniqueness set reads hashes,
  // and it indexes rows that were appended, not reserved).
  RowHashes.resize(EntryCount, 0);
  Prov.resize(EntryCount);
  return Base;
}

void LanguageCache::writeRow(size_t Idx, const uint64_t *Cs,
                             const Provenance &P) {
  writeRow(Idx, Cs, P, hashWords(Cs, CsWordCount));
}

void LanguageCache::writeRow(size_t Idx, const uint64_t *Cs,
                             const Provenance &P, uint64_t Hash) {
  assert(Idx < EntryCount && "writing an unreserved row");
  assert(Hash == hashWords(Cs, CsWordCount) && "precomputed hash mismatch");
  uint64_t *Row = rowSlot(Idx);
  copyWords(Row, Cs, CsWordCount);
  // Padding words were zeroed by reserveRows and stay zero.
  RowHashes[Idx] = Hash;
  Prov[Idx] = P;
}

void LanguageCache::setLevel(uint64_t Cost, uint32_t Begin, uint32_t End) {
  assert(Begin <= End && End <= EntryCount && "bad level range");
  if (Levels.size() <= Cost)
    Levels.resize(Cost + 1, {0, 0});
  Levels[Cost] = {Begin, End};
}

std::pair<uint32_t, uint32_t> LanguageCache::level(uint64_t Cost) const {
  if (Cost >= Levels.size())
    return {0, 0};
  return Levels[Cost];
}

void LanguageCache::truncate(size_t NewSize) {
  assert(NewSize <= EntryCount && "truncating beyond the current size");
  // Rollbacks stop at level boundaries, but a WindowBudget auto-seal
  // may have sealed part of the level being rolled back - those chunks
  // reopen here. Level-boundary chunks survive untouched.
  if (Tier.Compress && NewSize < WindowBase)
    reopenSealedTail(NewSize);
  EntryCount = NewSize;
  RowHashes.resize(NewSize);
  Prov.resize(NewSize);
  // Level ranges reaching into the dropped tail belong to the level
  // being rolled back; it re-records itself when it re-runs. Trailing
  // never-recorded entries go too, so the table is exactly the one the
  // boundary had (snapshots of a rolled-back store must match).
  for (std::pair<uint32_t, uint32_t> &L : Levels)
    if (L.second > NewSize)
      L = {0, 0};
  while (!Levels.empty() && Levels.back() == std::pair<uint32_t, uint32_t>())
    Levels.pop_back();
}

//===----------------------------------------------------------------------===//
// Sealing, decompression and the disk tier
//===----------------------------------------------------------------------===//

void LanguageCache::sealLevel() {
  if (!Tier.Compress)
    return;
  sealWindow();
}

void LanguageCache::sealWindow() {
  if (WindowBase != EntryCount) {
    auto C = std::make_unique<SealedChunk>();
    C->BeginRow = uint32_t(WindowBase);
    C->EndRow = uint32_t(EntryCount);
    size_t Rows = EntryCount - WindowBase;
    C->Offsets.reserve(Rows + 1);
    for (size_t R = 0; R != Rows; ++R) {
      C->Offsets.push_back(uint32_t(C->Bytes.size()));
      RowCodec Used =
          encodeRow(Window.data() + R * RowStride, CsWordCount, C->Bytes);
      ++CodecCounts[unsigned(Used)];
    }
    C->Offsets.push_back(uint32_t(C->Bytes.size()));
    SealedCompressedBytes += C->Bytes.size();
    HotChunkBytes.fetch_add(C->Bytes.size(), std::memory_order_relaxed);
    C->LastTouch.store(TouchClock.fetch_add(1, std::memory_order_relaxed) +
                           1,
                       std::memory_order_relaxed);
    Chunks.push_back(std::move(C));
    WindowBase = EntryCount;
  }
  enforcePinnedBudget();
}

void LanguageCache::reopenSealedTail(size_t NewSize) {
  assert(Tier.Compress && NewSize < WindowBase && "nothing sealed to reopen");
  // Decoded prefix of a straddling chunk; stride-padded and
  // zero-initialised so padding words come out clean.
  std::vector<uint64_t> Reopened;
  size_t NewBase = NewSize;
  while (!Chunks.empty() && Chunks.back()->EndRow > NewSize) {
    SealedChunk &C = *Chunks.back();
    ensureHot(C); // Spilled bytes are needed for tags and the prefix.
    size_t Rows = C.EndRow - C.BeginRow;
    size_t Keep = C.BeginRow < NewSize ? NewSize - C.BeginRow : 0;
    // The kept prefix re-enters the window; re-sealing re-counts its
    // codecs, so the whole chunk's tags are un-counted here.
    for (size_t R = 0; R != Rows; ++R) {
      uint8_t Tag = uint8_t(C.Bytes[C.Offsets[R]]);
      assert(Tag < NumRowCodecs && CodecCounts[Tag] > 0);
      --CodecCounts[Tag];
    }
    SealedCompressedBytes -= C.Bytes.size();
    HotChunkBytes.fetch_sub(C.Bytes.size(), std::memory_order_relaxed);
    if (Keep) {
      NewBase = C.BeginRow;
      Reopened.assign(Keep * RowStride, 0);
      for (size_t R = 0; R != Keep; ++R) {
        size_t Off = C.Offsets[R];
        size_t Used =
            decodeRow(C.Bytes.data() + Off, C.Offsets[R + 1] - Off,
                      Reopened.data() + R * RowStride, CsWordCount);
        (void)Used;
        assert(Used == C.Offsets[R + 1] - Off && "reopened row must decode");
      }
    }
    // The chunk's spill-file extent (if any) is left behind as dead
    // bytes; the file is append-only and dies with the cache.
    Chunks.pop_back();
  }
  WindowBase = NewBase;
  size_t WRows = NewSize - NewBase;
  // The old window's rows are all past the cut; the reopened prefix is
  // the entire new window (ensureWindowRows would copy stale rows
  // using the not-yet-cut EntryCount, so allocate directly).
  WindowCap = std::max<size_t>(64, WRows);
  Window = AlignedWordBuffer(WindowCap * RowStride);
  copyWords(Window.data(), Reopened.data(), WRows * RowStride);
  // Discarded rows may be re-appended with different bits under the
  // same indices; a fresh uid keeps every thread's scratch ring from
  // serving decoded copies of the old rows.
  CacheUid = NextCacheUid.fetch_add(1, std::memory_order_relaxed);
}

const uint64_t *LanguageCache::sealedRow(size_t Idx) const {
  assert(Tier.Compress && Idx < WindowBase && "not a sealed row");
  for (unsigned SlotIdx = 0; SlotIdx != ScratchRing::SlotCount; ++SlotIdx) {
    ScratchRing::Slot &S = Ring.Slots[SlotIdx];
    if (S.Uid == CacheUid && S.Row == Idx && !S.Words.empty()) {
      Ring.touch(SlotIdx);
      return S.Words.data();
    }
  }

  // Chunks tile [0, WindowBase) in order; find the one holding Idx.
  auto It = std::upper_bound(
      Chunks.begin(), Chunks.end(), Idx,
      [](size_t Row, const std::unique_ptr<SealedChunk> &C) {
        return Row < C->BeginRow;
      });
  assert(It != Chunks.begin() && "sealed row not covered by any chunk");
  SealedChunk &C = **std::prev(It);
  assert(Idx >= C.BeginRow && Idx < C.EndRow && "chunk lookup mismatch");
  ensureHot(C);
  C.LastTouch.store(TouchClock.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);

  unsigned SlotIdx = Ring.victim();
  ScratchRing::Slot &S = Ring.Slots[SlotIdx];
  S.Uid = 0; // Invalid while being refilled.
  if (S.Words.size() != RowStride)
    S.Words.assign(RowStride, 0);
  else // Zero the padding a wider previous tenant may have written.
    clearWords(S.Words.data() + CsWordCount, RowStride - CsWordCount);
  size_t Local = Idx - C.BeginRow;
  size_t Off = C.Offsets[Local];
  size_t Len = C.Offsets[Local + 1] - Off;
  size_t Used = decodeRow(C.Bytes.data() + Off, Len, S.Words.data(),
                          CsWordCount);
  (void)Used;
  assert(Used == Len && "sealed row bytes must decode exactly");
  S.Uid = CacheUid;
  S.Row = Idx;
  Ring.touch(SlotIdx);
  return S.Words.data();
}

void LanguageCache::ensureHot(SealedChunk &C) const {
  if (C.Hot.load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> Lock(PageMutex);
  if (C.Hot.load(std::memory_order_relaxed))
    return;
  std::string Buf;
  Buf.resize(size_t(C.FileLen));
  if (!Spill || std::fseek(Spill, long(C.FileOffset), SEEK_SET) != 0 ||
      std::fread(Buf.data(), 1, Buf.size(), Spill) != Buf.size())
    throw std::runtime_error("paresy: failed to page a spilled chunk "
                             "back in from " +
                             Tier.SpillPath);
  C.Bytes = std::move(Buf);
  HotChunkBytes.fetch_add(C.FileLen, std::memory_order_relaxed);
  // Release: readers that observe Hot also observe the bytes. Once a
  // chunk is hot it stays hot until the next level boundary, so the
  // pointer a reader takes cannot be freed under it.
  C.Hot.store(true, std::memory_order_release);
}

bool LanguageCache::spillChunk(SealedChunk &C) {
  if (!Spill) {
    Spill = std::fopen(Tier.SpillPath.c_str(), "w+b");
    if (!Spill)
      return false;
  }
  if (C.FileLen == 0) { // First spill: append the bytes to the file.
    if (std::fseek(Spill, long(SpillFileSize), SEEK_SET) != 0 ||
        std::fwrite(C.Bytes.data(), 1, C.Bytes.size(), Spill) !=
            C.Bytes.size() ||
        std::fflush(Spill) != 0)
      return false;
    C.FileOffset = SpillFileSize;
    C.FileLen = C.Bytes.size();
    SpillFileSize += C.Bytes.size();
  }
  HotChunkBytes.fetch_sub(C.Bytes.size(), std::memory_order_relaxed);
  C.Bytes = std::string(); // Free the in-memory copy.
  C.Hot.store(false, std::memory_order_release);
  return true;
}

void LanguageCache::enforcePinnedBudget() {
  if (Tier.SpillPath.empty() || SpillBroken)
    return;
  std::lock_guard<std::mutex> Lock(PageMutex);
  while (HotChunkBytes.load(std::memory_order_relaxed) > Tier.PinnedBytes) {
    SealedChunk *Cold = nullptr;
    for (const std::unique_ptr<SealedChunk> &C : Chunks) {
      if (!C->Hot.load(std::memory_order_relaxed) || C->Bytes.empty())
        continue;
      if (!Cold || C->LastTouch.load(std::memory_order_relaxed) <
                       Cold->LastTouch.load(std::memory_order_relaxed))
        Cold = C.get();
    }
    if (!Cold)
      break;
    if (!spillChunk(*Cold)) {
      // A dead disk must not kill the search: keep everything hot from
      // here on (the byte charge already planned for PinnedBytes, so
      // this only means using more RAM than asked, not wrong results).
      SpillBroken = true;
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Accounting
//===----------------------------------------------------------------------===//

uint64_t LanguageCache::chargedBytes() const {
  if (!Tier.Compress)
    return bytesUsed();
  uint64_t Sealed = SealedCompressedBytes;
  // With a disk tier the pinned budget bounds what sealing keeps in
  // memory, so only that much is charged; the cap is a formula over
  // seal history - not the paging state - which keeps full() verdicts
  // deterministic across backends and worker counts.
  if (!Tier.SpillPath.empty() && Sealed > Tier.PinnedBytes)
    Sealed = Tier.PinnedBytes;
  return Sealed +
         uint64_t(EntryCount - WindowBase) * RowStride * sizeof(uint64_t) +
         uint64_t(EntryCount) * (sizeof(Provenance) + sizeof(uint64_t));
}

uint64_t LanguageCache::bytesUsed() const {
  uint64_t Meta = uint64_t(EntryCount) *
                  (sizeof(Provenance) + sizeof(uint64_t));
  if (!Tier.Compress)
    return uint64_t(EntryCount) * RowStride * sizeof(uint64_t) + Meta;
  uint64_t OffsetTables = 0;
  for (const std::unique_ptr<SealedChunk> &C : Chunks)
    OffsetTables += C->Offsets.size() * sizeof(uint32_t);
  return uint64_t(EntryCount - WindowBase) * RowStride * sizeof(uint64_t) +
         hotBytes() + OffsetTables + Meta;
}

size_t LanguageCache::hotChunks() const {
  size_t N = 0;
  for (const std::unique_ptr<SealedChunk> &C : Chunks)
    N += C->Hot.load(std::memory_order_relaxed) ? 1 : 0;
  return N;
}

size_t LanguageCache::spilledChunks() const {
  return Chunks.size() - hotChunks();
}

// Provenance-to-expression reconstruction lives one layer up, in
// ShardedStore: operands are global ids, which only the store can
// resolve across segments.
