//===- core/LanguageCache.cpp - Write-once matrix of languages --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/LanguageCache.h"

#include "support/Bits.h"
#include "support/Compiler.h"

using namespace paresy;

LanguageCache::LanguageCache(size_t CsWords, size_t MaxEntries)
    : CsWordCount(CsWords), RowStride(strideForWords(CsWords)),
      MaxEntries(MaxEntries), Store(MaxEntries * RowStride) {
  assert(CsWords > 0 && "rows need at least one word");
  // The paper allocates the cache as one contiguous, uninitialised
  // array whose structure emerges during the search; the aligned store
  // mirrors that (pages commit as rows are appended) and keeps
  // out-of-budget allocation failures at construction time.
  RowHashes.reserve(MaxEntries);
  Prov.reserve(MaxEntries);
}

uint32_t LanguageCache::append(const uint64_t *Cs, const Provenance &P) {
  return append(Cs, P, hashWords(Cs, CsWordCount));
}

uint32_t LanguageCache::append(const uint64_t *Cs, const Provenance &P,
                               uint64_t Hash) {
  assert(!full() && "appending to a full language cache");
  assert(Hash == hashWords(Cs, CsWordCount) && "precomputed hash mismatch");
  uint64_t *Row = Store.data() + EntryCount * RowStride;
  copyWords(Row, Cs, CsWordCount);
  clearWords(Row + CsWordCount, RowStride - CsWordCount);
  RowHashes.push_back(Hash);
  Prov.push_back(P);
  return uint32_t(EntryCount++);
}

uint32_t LanguageCache::reserveRows(size_t Count) {
  assert(EntryCount + Count <= MaxEntries &&
         "reserving beyond the cache capacity");
  uint32_t Base = uint32_t(EntryCount);
  EntryCount += Count;
  clearWords(Store.data() + size_t(Base) * RowStride, Count * RowStride);
  // Reserved rows get their real hash in writeRow; until then the
  // placeholder is never read (only the uniqueness set reads hashes,
  // and it indexes rows that were appended, not reserved).
  RowHashes.resize(EntryCount, 0);
  Prov.resize(EntryCount);
  return Base;
}

void LanguageCache::writeRow(size_t Idx, const uint64_t *Cs,
                             const Provenance &P) {
  writeRow(Idx, Cs, P, hashWords(Cs, CsWordCount));
}

void LanguageCache::writeRow(size_t Idx, const uint64_t *Cs,
                             const Provenance &P, uint64_t Hash) {
  assert(Idx < EntryCount && "writing an unreserved row");
  assert(Hash == hashWords(Cs, CsWordCount) && "precomputed hash mismatch");
  uint64_t *Row = Store.data() + Idx * RowStride;
  copyWords(Row, Cs, CsWordCount);
  // Padding words were zeroed by reserveRows and stay zero.
  RowHashes[Idx] = Hash;
  Prov[Idx] = P;
}

void LanguageCache::setLevel(uint64_t Cost, uint32_t Begin, uint32_t End) {
  assert(Begin <= End && End <= EntryCount && "bad level range");
  if (Levels.size() <= Cost)
    Levels.resize(Cost + 1, {0, 0});
  Levels[Cost] = {Begin, End};
}

std::pair<uint32_t, uint32_t> LanguageCache::level(uint64_t Cost) const {
  if (Cost >= Levels.size())
    return {0, 0};
  return Levels[Cost];
}

void LanguageCache::truncate(size_t NewSize) {
  assert(NewSize <= EntryCount && "truncating beyond the current size");
  EntryCount = NewSize;
  RowHashes.resize(NewSize);
  Prov.resize(NewSize);
  // Level ranges reaching into the dropped tail belong to the level
  // being rolled back; it re-records itself when it re-runs. Trailing
  // never-recorded entries go too, so the table is exactly the one the
  // boundary had (snapshots of a rolled-back store must match).
  for (std::pair<uint32_t, uint32_t> &L : Levels)
    if (L.second > NewSize)
      L = {0, 0};
  while (!Levels.empty() && Levels.back() == std::pair<uint32_t, uint32_t>())
    Levels.pop_back();
}

// Provenance-to-expression reconstruction lives one layer up, in
// ShardedStore: operands are global ids, which only the store can
// resolve across segments.
