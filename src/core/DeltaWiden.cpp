//===- core/DeltaWiden.cpp - Widening cached rows across spec edits ----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DeltaWiden.h"

#include "lang/CsKernels.h"
#include "support/Compiler.h"

#include <cassert>

using namespace paresy;

bool paresy::buildDeltaGeometry(const Universe &OldU, const Universe &NewU,
                                DeltaGeometry &G) {
  G.OldBits = OldU.size();
  G.NewBits = NewU.size();
  G.OldWords = OldU.csWords();
  G.NewWords = NewU.csWords();
  G.NewOfOld.assign(G.OldBits, 0);
  std::vector<char> Covered(G.NewBits, 0);
  for (size_t I = 0; I != G.OldBits; ++I) {
    int64_t N = NewU.indexOf(OldU.word(I));
    if (N < 0)
      return false; // An old word vanished: not a superset edit.
    G.NewOfOld[I] = uint32_t(N);
    Covered[size_t(N)] = 1;
  }

  G.Appended.clear();
  G.SplitRows.assign(1, 0);
  G.SplitPairs.clear();
  G.Symbol1.clear();
  for (size_t N = 0; N != G.NewBits; ++N) {
    if (Covered[N])
      continue;
    G.Appended.push_back(uint32_t(N));
    const std::string &W = NewU.word(N);
    // Every split half is an infix of W, hence of the new examples:
    // the infix closure contains it by construction.
    for (size_t K = 0; K <= W.size(); ++K) {
      int64_t U = NewU.indexOf(std::string_view(W).substr(0, K));
      int64_t V = NewU.indexOf(std::string_view(W).substr(K));
      assert(U >= 0 && V >= 0 && "split half missing from the closure");
      G.SplitPairs.push_back(uint32_t(U));
      G.SplitPairs.push_back(uint32_t(V));
    }
    G.SplitRows.push_back(uint32_t(G.SplitPairs.size() / 2));
    G.Symbol1.push_back(W.size() == 1 ? W[0] : char(0));
  }
  return true;
}

void paresy::deltaFillAppended(uint64_t *Row, const Provenance &P,
                               const DeltaGeometry &G,
                               const ShardedStore &S) {
  const size_t Cols = G.appendedCount();
  if (!Cols)
    return;
  const uint32_t *Pairs = G.SplitPairs.data();
  auto set = [&](size_t J) {
    const uint32_t N = G.Appended[J];
    Row[N / 64] |= uint64_t(1) << (N % 64);
  };

  switch (P.Kind) {
  case CsOp::Literal:
    // A new word is a member of {c} iff it *is* "c" - possible when a
    // symbol of the alphabet first appears in the added examples.
    for (size_t J = 0; J != Cols; ++J)
      if (G.Symbol1[J] == P.Symbol && P.Symbol != 0)
        set(J);
    return;
  case CsOp::Epsilon:
  case CsOp::Empty:
    // Epsilon is an infix of everything, so it is always an old word;
    // appended words are non-empty and never members.
    return;
  case CsOp::Question: {
    // L? = {eps} u L, and appended words are non-empty.
    const uint64_t *L = S.cs(P.Lhs);
    for (size_t J = 0; J != Cols; ++J)
      if (cskernel::testBit(L, G.Appended[J]))
        set(J);
    return;
  }
  case CsOp::Union: {
    const uint64_t *L = S.cs(P.Lhs);
    const uint64_t *R = S.cs(P.Rhs);
    for (size_t J = 0; J != Cols; ++J)
      if (cskernel::testBit(L, G.Appended[J]) ||
          cskernel::testBit(R, G.Appended[J]))
        set(J);
    return;
  }
  case CsOp::Concat: {
    const uint64_t *L = S.cs(P.Lhs);
    const uint64_t *R = S.cs(P.Rhs);
    for (size_t J = 0; J != Cols; ++J)
      if (cskernel::deltaSplitAny(L, R, Pairs, G.SplitRows[J],
                                  G.SplitRows[J + 1],
                                  /*SkipEpsilonLhs=*/false))
        set(J);
    return;
  }
  case CsOp::Star: {
    // w in A* iff some split w = u v with u != eps has u in A and
    // v in A*. v is strictly shorter than w, so its bit - old word or
    // appended column alike - is already final in Row when columns are
    // visited in ascending shortlex order.
    const uint64_t *A = S.cs(P.Lhs);
    for (size_t J = 0; J != Cols; ++J)
      if (cskernel::deltaSplitAny(A, Row, Pairs, G.SplitRows[J],
                                  G.SplitRows[J + 1],
                                  /*SkipEpsilonLhs=*/true))
        set(J);
    return;
  }
  }
  PARESY_UNREACHABLE("invalid provenance kind");
}
