//===- core/Synthesizer.h - The Paresy search (CPU reference) ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: precise and minimal regular
/// expression inference from positive and negative examples (the
/// paper's Alg. 1/2), as a sequential CPU search. Given a cost
/// homomorphism and a specification (P, N), synthesize() returns a
/// regular expression that accepts all of P, rejects all of N, and is
/// of provably minimal cost - or a principled failure status (the
/// cost budget, the memory budget or the timeout was exhausted).
///
/// synthesize() runs the shared engine (engine/SearchDriver.h) on the
/// sequential backend. The GPU-style implementation with identical
/// semantics lives in gpusim/GpuSynthesizer.h; other backends - the
/// multi-core host backend among them - are reached by name through
/// engine/BackendRegistry.h, and engine/Batch.h schedules many specs
/// over a shared pool. All entry points share these option/result
/// types.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_CORE_SYNTHESIZER_H
#define PARESY_CORE_SYNTHESIZER_H

#include "lang/Spec.h"
#include "regex/Cost.h"

#include <cstdint>
#include <string>
#include <vector>

namespace paresy {

/// Default for SynthOptions::Shards: the PARESY_TEST_SHARDS
/// environment variable when set (clamped to [1, 64]; how CI runs the
/// unit suites at a non-trivial shard count), 1 otherwise. Read once
/// per process.
unsigned defaultShardCount();

/// Tuning knobs for one synthesis run. The ablation flags default to
/// the paper's design; turning them off reproduces the strawmen
/// quantified in bench_ablations.
struct SynthOptions {
  /// The cost homomorphism defining minimality (Def. 3.2).
  CostFn Cost;

  /// Upper bound on the cost sweep. 0 selects the always-sufficient
  /// bound cost(w1 + ... + wk) of the maximally overfitted expression
  /// over P (Sec. 4.3 "Performance evaluation").
  uint64_t MaxCost = 0;

  /// Budget for the language cache, its uniqueness set and the
  /// per-row provenance. This is the paper's scalability limit.
  /// Divided evenly across Shards (DESIGN.md Sec. 8).
  uint64_t MemoryLimitBytes = uint64_t(256) << 20;

  /// Hash-partitioned shards of the search state (language cache and
  /// uniqueness structure; DESIGN.md Sec. 8). 0 and 1 both select the
  /// single-arena layout of the paper; at most ShardedStore::MaxShards
  /// (64). While the memory budget holds, results, costs and candidate
  /// counts are identical for every value. Under memory pressure hash
  /// skew can fill one shard before the monolithic cache would have
  /// filled, so only the weaker OnTheFly guarantee is shard-invariant:
  /// a Found answer is still the same minimal cost.
  unsigned Shards = defaultShardCount();

  /// Wall-clock timeout in seconds; 0 disables it.
  double TimeoutSeconds = 0;

  /// Allowed error in [0, 1): the returned expression may misclassify
  /// at most floor(AllowedError * #(P u N)) examples (Sec. 5.2).
  /// 0 is precise REI.
  double AllowedError = 0;

  /// Keep searching after the cache fills, as long as minimality can
  /// still be guaranteed (Sec. 3 "OnTheFly mode").
  bool EnableOnTheFly = true;

  /// Seed the cache with the {epsilon} language. Deviation from the
  /// paper's pseudocode: required for minimality whenever
  /// cost(?) > cost(literal) + cost(+) (see DESIGN.md).
  bool SeedEpsilon = true;

  /// Drop duplicate languages as soon as they are constructed
  /// (Sec. 3 "Uniqueness checking").
  bool UniquenessCheck = true;

  /// Stage all word splits in the guide table up front (Sec. 3
  /// "Staging"). Off: splits are re-derived on every concatenation.
  bool UseGuideTable = true;

  /// Pad CS bit length to the next power of two (the paper's second
  /// space-time trade-off).
  bool PadToPowerOfTwo = true;

  /// Compressed + tiered language store (DESIGN.md Sec. 11): sealed
  /// levels shrink to per-row codec bytes and the memory budget is
  /// charged in resident bytes, raising the solvable-instance ceiling
  /// at a fixed MemoryLimitBytes. Results are bit-identical to the raw
  /// store. Implied by a non-empty SpillDir.
  bool CompressStore = false;

  /// Directory for the compressed store's cold-level spill files;
  /// empty disables the disk tier. Implies CompressStore.
  std::string SpillDir;

  /// With a SpillDir: sealed compressed bytes kept in memory; colder
  /// levels spill and page back on demand.
  uint64_t PinnedStoreBytes = uint64_t(64) << 20;

  /// Byte cap on a compressed store's uncompressed in-flight window
  /// (per shard): past it the window auto-seals mid-level, so one
  /// geometric level cannot hold the whole byte budget in aligned
  /// form. 0 derives the cap from the memory budget (or leaves the
  /// window unbounded when there is no budget). Lossless either way -
  /// results never change, only resident bytes.
  uint64_t WindowStoreBytes = 0;

  /// Race a portfolio of equivalent sweep configurations (guide table
  /// on/off, shard count, padding) over one shared staged query and
  /// return the first winner, cancelling the losers
  /// (engine/Portfolio.h). Every arm is result-identical by the
  /// repo's ablation/shard invariants, so this changes wall-clock
  /// behaviour only - it is deliberately *excluded* from the
  /// canonical query/session fingerprints (lang/Fingerprint.h).
  bool Portfolio = false;
};

/// Whether \p Opts selects the compressed + tiered store (directly or
/// via a spill directory).
inline bool storeCompressionEnabled(const SynthOptions &Opts) {
  return Opts.CompressStore || !Opts.SpillDir.empty();
}

/// Why a synthesis run ended.
enum class SynthStatus : uint8_t {
  Found,       ///< Minimal satisfying expression returned.
  NotFound,    ///< No satisfying expression with cost <= MaxCost.
  OutOfMemory, ///< Cache exhausted before a verdict (paper's
               ///< "out-of-memory error").
  Timeout,     ///< TimeoutSeconds elapsed.
  InvalidInput, ///< Spec/alphabet/options rejected; see Message.
  Cancelled    ///< Stopped by a cooperative stop token (a portfolio
               ///< arm lost its race). Never cached, never parked.
};

/// Human-readable status name.
const char *statusName(SynthStatus Status);

/// Counters and timings for one run; "# REs" in the paper's tables is
/// CandidatesGenerated.
struct SynthStats {
  /// Candidate languages constructed (each corresponds to one checked
  /// regular expression).
  uint64_t CandidatesGenerated = 0;
  /// Candidates that survived uniqueness checking.
  uint64_t UniqueLanguages = 0;
  /// Rows stored in the language cache.
  uint64_t CacheEntries = 0;
  /// Bytes used by cache rows, provenance and the uniqueness set.
  uint64_t MemoryBytes = 0;
  /// #ic(P u N).
  uint64_t UniverseSize = 0;
  /// CS width in 64-bit words.
  uint64_t CsWords = 0;
  /// Total split pairs staged in the guide table.
  uint64_t GuidePairs = 0;
  /// Split pairs visited by concatenation/star folds (work measure).
  uint64_t PairsVisited = 0;
  /// Highest cost level whose candidates were all generated.
  uint64_t LastCompletedCost = 0;
  /// Cost levels this run executed (complete or partial): the
  /// per-backend work counter the service layer aggregates.
  uint64_t LevelsRun = 0;
  /// Heterogeneous backend only ("hetero"): work split between the
  /// two co-scheduled engines, in kernel tasks and work units, plus
  /// the work-stealing traffic and the final adaptive CPU share.
  uint64_t HeteroCpuTasks = 0;
  uint64_t HeteroGpuTasks = 0;
  uint64_t HeteroCpuOps = 0;
  uint64_t HeteroGpuOps = 0;
  uint64_t HeteroSteals = 0;
  double HeteroCpuShare = 0;
  /// Measured seconds the CPU engine spent inside kernel drains (its
  /// side of the co-schedule; the per-engine throughput the EWMA sees).
  double HeteroCpuSeconds = 0;
  /// Modelled seconds the co-scheduled level pipeline would take with
  /// the two engines running concurrently: per launch, the maximum of
  /// the CPU side's measured busy time and the GPU side's modelled
  /// device time (gpusim/PerfModel.h), summed.
  double HeteroCoschedSeconds = 0;
  /// True iff the run kept searching past a full cache.
  bool OnTheFly = false;
  /// Shards the search state was partitioned into (resolved
  /// SynthOptions::Shards; 1 = the monolithic layout).
  uint64_t ShardCount = 1;
  /// Rows cached per shard (size ShardCount): the occupancy-skew
  /// diagnostic the service layer aggregates.
  std::vector<uint64_t> ShardRows;
  /// Winners checked but dropped per shard because the owner shard
  /// was full (non-zero only under memory pressure).
  std::vector<uint64_t> ShardDropped;
  /// Seconds spent staging (universe, guide table, masks).
  double PrecomputeSeconds = 0;
  /// Seconds spent in the cost sweep.
  double SearchSeconds = 0;

  /// Compressed + tiered store counters (SynthOptions::CompressStore;
  /// all zero on the raw store). MemoryBytes above is always the
  /// *resident* footprint: compressed hot chunks + the uncompressed
  /// open window + metadata, never the logical row bytes.
  bool StoreCompressed = false;
  /// Rows sealed into compressed chunks / still in the open window.
  uint64_t StoreSealedRows = 0;
  uint64_t StoreWindowRows = 0;
  /// Compressed bytes across sealed chunks (hot + spilled) and their
  /// logical (padded-stride) size; the ratio Logical/Compressed is the
  /// headline compression number.
  uint64_t StoreCompressedBytes = 0;
  uint64_t StoreLogicalBytes = 0;
  double StoreCompressionRatio = 0;
  /// Sealed rows per codec, indexed like lang/RowCodec.h's RowCodec.
  uint64_t StoreCodecRows[4] = {};
  /// Disk-tier occupancy: chunk counts and compressed-byte split
  /// between the pinned hot tier and the spill files.
  uint64_t StoreHotChunks = 0;
  uint64_t StoreSpilledChunks = 0;
  uint64_t StoreHotBytes = 0;
  uint64_t StoreSpilledBytes = 0;
  /// Distributed execution (the "dist" backend; DESIGN.md Sec. 13):
  /// workers at run end, live resharding migrations and the time they
  /// took, candidate rows routed through the all-to-all exchange, and
  /// total channel traffic in both directions.
  unsigned DistWorkers = 0;
  uint64_t DistMigrations = 0;
  double DistMigrationSeconds = 0;
  uint64_t DistExchangedRows = 0;
  uint64_t DistExchangedBytes = 0;
};

/// Result of a synthesis run.
struct SynthResult {
  SynthStatus Status = SynthStatus::NotFound;
  /// On Found: the expression, printable syntax (parseRegex parses
  /// it); '@' = empty language, '#' = epsilon.
  std::string Regex;
  /// On Found: cost(Regex) under the requested cost function.
  uint64_t Cost = 0;
  /// On InvalidInput: what was wrong.
  std::string Message;
  SynthStats Stats;

  bool found() const { return Status == SynthStatus::Found; }
};

/// Runs the Paresy search on \p S over \p Sigma. Thread-safe (no
/// shared mutable state between calls).
SynthResult synthesize(const Spec &S, const Alphabet &Sigma,
                       const SynthOptions &Opts);

/// The cost of the maximally overfitted solution w1 + ... + wk for the
/// positive examples: an upper bound at which the sweep always
/// terminates (used when SynthOptions::MaxCost is 0). Returns
/// Cost.Literal for an empty P (the cost of '@').
uint64_t overfitCostBound(const Spec &S, const CostFn &Cost);

} // namespace paresy

#endif // PARESY_CORE_SYNTHESIZER_H
