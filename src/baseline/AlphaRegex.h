//===- baseline/AlphaRegex.h - Top-down REI baseline --------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ reimplementation of AlphaRegex (Lee, So, Oh: "Synthesizing
/// Regular Expressions from Examples for Introductory Automata
/// Assignments", GPCE 2016) - the baseline of the paper's Table 2.
///
/// AlphaRegex searches top-down over regular expressions extended with
/// holes: a best-first (uniform-cost) sweep pops the cheapest state,
/// expands its leftmost hole with every constructor, and prunes states
/// by two semantic approximations:
///
///  * over-approximation  (holes -> Sigma*): if some positive example
///    is already unmatchable, no completion can fix it;
///  * under-approximation (holes -> empty): if some negative example
///    is already matched, every completion stays wrong;
///
/// plus syntactic redundancy rules (no directly nested stars, ordered
/// union operands, no syntactically identical union sides). The
/// original's optional "wild card" heuristic - an atom X denoting
/// (a1+...+ak) at literal cost - is reproduced behind a flag, as it is
/// what lets AlphaRegex solve Table 2's no9 quickly.
///
/// Differences from the OCaml original are documented in DESIGN.md;
/// notably our rule set is language-preserving, so this reimplementation
/// tends to preserve minimality where the original (per the paper's
/// findings) sometimes does not.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_BASELINE_ALPHAREGEX_H
#define PARESY_BASELINE_ALPHAREGEX_H

#include "core/Synthesizer.h"
#include "lang/Spec.h"
#include "regex/Cost.h"

#include <cstdint>
#include <string>

namespace paresy {
namespace baseline {

/// Knobs for one AlphaRegex run.
struct AlphaRegexOptions {
  /// Cost homomorphism; holes are priced like literals, which is an
  /// admissible lower bound on any completion.
  CostFn Cost;
  /// Enable the wild-card atom X == (a1+...+ak) at literal cost.
  bool UseWildcard = false;
  /// Also expand holes with '?' (the original grammar has no '?';
  /// off by default for fidelity).
  bool EnableQuestion = false;
  /// Enable the over/under-approximation pruning (on in the original;
  /// the ablation bench turns it off).
  bool EnablePruning = true;
  /// Abort after this many popped states (memory/time guard).
  uint64_t MaxStates = 2000000;
  /// Wall-clock timeout in seconds; 0 disables.
  double TimeoutSeconds = 0;
};

/// Outcome of an AlphaRegex run.
struct AlphaRegexResult {
  SynthStatus Status = SynthStatus::NotFound;
  /// On Found: the expression in this library's printable syntax.
  std::string Regex;
  /// On Found: cost(Regex).
  uint64_t Cost = 0;
  /// Complete (hole-free) expressions checked against the examples -
  /// the "# REs" AlphaRegex column of Table 2.
  uint64_t Checked = 0;
  /// States popped from the worklist.
  uint64_t Expanded = 0;
  /// States discarded by the approximation pruning.
  uint64_t Pruned = 0;
  double Seconds = 0;

  bool found() const { return Status == SynthStatus::Found; }
};

/// Runs AlphaRegex on \p S over \p Sigma.
AlphaRegexResult alphaRegexSynthesize(const Spec &S, const Alphabet &Sigma,
                                      const AlphaRegexOptions &Opts);

} // namespace baseline
} // namespace paresy

#endif // PARESY_BASELINE_ALPHAREGEX_H
