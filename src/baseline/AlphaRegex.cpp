//===- baseline/AlphaRegex.cpp - Top-down REI baseline ------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baseline/AlphaRegex.h"

#include "regex/Matcher.h"
#include "support/Timer.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

using namespace paresy;
using namespace paresy::baseline;

namespace {

/// Internal markers inside the shared Regex AST: holes and the wild
/// card are literals on characters no alphabet may contain (alphabets
/// are restricted to printable characters).
constexpr char HoleChar = '\x01';
constexpr char WildcardChar = '\x02';

bool isHole(const Regex *R) {
  return R->kind() == RegexKind::Literal && R->symbol() == HoleChar;
}

bool isWildcard(const Regex *R) {
  return R->kind() == RegexKind::Literal && R->symbol() == WildcardChar;
}

/// Deterministic structural order on hash-consed expressions (cheaper
/// than comparing printed strings, stable across runs unlike pointer
/// order). Returns <0, 0, >0.
int syntacticCompare(const Regex *A, const Regex *B) {
  if (A == B)
    return 0;
  if (A->kind() != B->kind())
    return int(A->kind()) < int(B->kind()) ? -1 : 1;
  switch (A->kind()) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    return 0;
  case RegexKind::Literal:
    return int(A->symbol()) - int(B->symbol());
  case RegexKind::Question:
  case RegexKind::Star:
    return syntacticCompare(A->lhs(), B->lhs());
  case RegexKind::Concat:
  case RegexKind::Union: {
    int Cmp = syntacticCompare(A->lhs(), B->lhs());
    return Cmp != 0 ? Cmp : syntacticCompare(A->rhs(), B->rhs());
  }
  }
  return 0;
}

/// The search engine for one run.
class AlphaSearcher {
public:
  AlphaSearcher(const Spec &S, const Alphabet &Sigma,
                const AlphaRegexOptions &Opts)
      : S(S), Sigma(Sigma), Opts(Opts), Matcher(M) {}

  AlphaRegexResult run();

private:
  struct WorkItem {
    uint64_t CostLb;
    uint64_t Seq; // FIFO tie-break keeps the search deterministic.
    const Regex *State;
  };
  struct WorkItemGreater {
    bool operator()(const WorkItem &A, const WorkItem &B) const {
      if (A.CostLb != B.CostLb)
        return A.CostLb > B.CostLb;
      return A.Seq > B.Seq;
    }
  };

  bool containsHole(const Regex *R);
  const Regex *substituteMarkers(const Regex *R, const Regex *ForHole);
  const Regex *replaceLeftmostHole(const Regex *R, const Regex *With,
                                   bool &Done);
  bool structurallyRedundant(const Regex *R);
  bool prunedByApproximation(const Regex *R);
  void push(const Regex *State);
  const Regex *sigmaStar();
  const Regex *wildcardUnion();

  const Spec &S;
  const Alphabet &Sigma;
  const AlphaRegexOptions &Opts;
  RegexManager M;
  DerivativeMatcher Matcher;
  std::priority_queue<WorkItem, std::vector<WorkItem>, WorkItemGreater>
      Queue;
  uint64_t NextSeq = 0;
  AlphaRegexResult Result;
  std::unordered_map<const Regex *, const Regex *> OverMemo;
  std::unordered_map<const Regex *, const Regex *> UnderMemo;
  std::unordered_map<const Regex *, bool> HoleMemo;
  std::unordered_map<const Regex *, bool> RedundantMemo;
  const Regex *SigmaStarRe = nullptr;
  const Regex *WildcardRe = nullptr;
};

const Regex *AlphaSearcher::sigmaStar() {
  if (SigmaStarRe)
    return SigmaStarRe;
  SigmaStarRe = M.star(wildcardUnion());
  return SigmaStarRe;
}

const Regex *AlphaSearcher::wildcardUnion() {
  if (WildcardRe)
    return WildcardRe;
  assert(Sigma.size() > 0 && "wildcard needs a non-empty alphabet");
  const Regex *Acc = M.literal(Sigma.symbol(0));
  for (size_t I = 1; I != Sigma.size(); ++I)
    Acc = M.alt(Acc, M.literal(Sigma.symbol(I)));
  WildcardRe = Acc;
  return WildcardRe;
}

bool AlphaSearcher::containsHole(const Regex *R) {
  auto It = HoleMemo.find(R);
  if (It != HoleMemo.end())
    return It->second;
  bool Result = false;
  switch (R->kind()) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    break;
  case RegexKind::Literal:
    Result = isHole(R);
    break;
  case RegexKind::Question:
  case RegexKind::Star:
    Result = containsHole(R->lhs());
    break;
  case RegexKind::Concat:
  case RegexKind::Union:
    Result = containsHole(R->lhs()) || containsHole(R->rhs());
    break;
  }
  HoleMemo.emplace(R, Result);
  return Result;
}

/// Replaces holes with \p ForHole and wildcards with (a1+...+ak);
/// memoised per (node) because ForHole is fixed per memo table.
const Regex *AlphaSearcher::substituteMarkers(const Regex *R,
                                              const Regex *ForHole) {
  auto &Memo = ForHole->kind() == RegexKind::Empty ? UnderMemo : OverMemo;
  auto It = Memo.find(R);
  if (It != Memo.end())
    return It->second;
  const Regex *Out = nullptr;
  switch (R->kind()) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    Out = R;
    break;
  case RegexKind::Literal:
    Out = isHole(R) ? ForHole : (isWildcard(R) ? wildcardUnion() : R);
    break;
  case RegexKind::Question:
    Out = M.question(substituteMarkers(R->lhs(), ForHole));
    break;
  case RegexKind::Star:
    Out = M.star(substituteMarkers(R->lhs(), ForHole));
    break;
  case RegexKind::Concat:
    Out = M.concat(substituteMarkers(R->lhs(), ForHole),
                   substituteMarkers(R->rhs(), ForHole));
    break;
  case RegexKind::Union:
    Out = M.alt(substituteMarkers(R->lhs(), ForHole),
                substituteMarkers(R->rhs(), ForHole));
    break;
  }
  Memo.emplace(R, Out);
  return Out;
}

const Regex *AlphaSearcher::replaceLeftmostHole(const Regex *R,
                                                const Regex *With,
                                                bool &Done) {
  if (Done)
    return R;
  switch (R->kind()) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
    return R;
  case RegexKind::Literal:
    if (isHole(R)) {
      Done = true;
      return With;
    }
    return R;
  case RegexKind::Question: {
    const Regex *L = replaceLeftmostHole(R->lhs(), With, Done);
    return L == R->lhs() ? R : M.question(L);
  }
  case RegexKind::Star: {
    const Regex *L = replaceLeftmostHole(R->lhs(), With, Done);
    return L == R->lhs() ? R : M.star(L);
  }
  case RegexKind::Concat: {
    const Regex *L = replaceLeftmostHole(R->lhs(), With, Done);
    if (L != R->lhs())
      return M.concat(L, R->rhs());
    const Regex *Rr = replaceLeftmostHole(R->rhs(), With, Done);
    return Rr == R->rhs() ? R : M.concat(R->lhs(), Rr);
  }
  case RegexKind::Union: {
    const Regex *L = replaceLeftmostHole(R->lhs(), With, Done);
    if (L != R->lhs())
      return M.alt(L, R->rhs());
    const Regex *Rr = replaceLeftmostHole(R->rhs(), With, Done);
    return Rr == R->rhs() ? R : M.alt(R->lhs(), Rr);
  }
  }
  return R;
}

/// Syntactic normal-form rules (all language-preserving): reject
/// states no normal-form derivation would produce. Memoised per node
/// (states share almost all structure through hash-consing).
bool AlphaSearcher::structurallyRedundant(const Regex *R) {
  auto It = RedundantMemo.find(R);
  if (It != RedundantMemo.end())
    return It->second;
  bool Result = false;
  switch (R->kind()) {
  case RegexKind::Empty:
  case RegexKind::Epsilon:
  case RegexKind::Literal:
    break;
  case RegexKind::Question:
    // (e?)? and (e*)? are redundant.
    Result = R->lhs()->kind() == RegexKind::Question ||
             R->lhs()->kind() == RegexKind::Star ||
             structurallyRedundant(R->lhs());
    break;
  case RegexKind::Star:
    // (e*)* and (e?)* are redundant (== e*).
    Result = R->lhs()->kind() == RegexKind::Star ||
             R->lhs()->kind() == RegexKind::Question ||
             structurallyRedundant(R->lhs());
    break;
  case RegexKind::Concat:
    // Concatenation is associative: force right-nested chains.
    Result = R->lhs()->kind() == RegexKind::Concat ||
             structurallyRedundant(R->lhs()) ||
             structurallyRedundant(R->rhs());
    break;
  case RegexKind::Union:
    // Union is associative too: force right-nested chains. e+e is
    // redundant *for hole-free e* (two holes will become different
    // completions); hole-free unions must also be ordered (one
    // canonical operand order suffices since + is commutative).
    if (R->lhs()->kind() == RegexKind::Union)
      Result = true;
    else if (R->lhs() == R->rhs() && !containsHole(R->lhs()))
      Result = true;
    else if (!containsHole(R->lhs()) && !containsHole(R->rhs()) &&
             syntacticCompare(R->lhs(), R->rhs()) >= 0)
      Result = true;
    else
      Result = structurallyRedundant(R->lhs()) ||
               structurallyRedundant(R->rhs());
    break;
  }
  RedundantMemo.emplace(R, Result);
  return Result;
}

bool AlphaSearcher::prunedByApproximation(const Regex *R) {
  // Over-approximation: holes -> Sigma*; a positive example that the
  // over-approximation rejects is rejected by every completion.
  const Regex *Over = substituteMarkers(R, sigmaStar());
  for (const std::string &W : S.Pos)
    if (!Matcher.matches(Over, W))
      return true;
  // Under-approximation: holes -> empty; a negative example the
  // under-approximation accepts is accepted by every completion.
  const Regex *Under = substituteMarkers(R, M.empty());
  for (const std::string &W : S.Neg)
    if (Matcher.matches(Under, W))
      return true;
  return false;
}

void AlphaSearcher::push(const Regex *State) {
  if (structurallyRedundant(State))
    return;
  if (Opts.EnablePruning && prunedByApproximation(State)) {
    ++Result.Pruned;
    return;
  }
  Queue.push(WorkItem{Opts.Cost.of(State), NextSeq++, State});
}

AlphaRegexResult AlphaSearcher::run() {
  WallTimer Clock;
  if (!Opts.Cost.isValid()) {
    Result.Status = SynthStatus::InvalidInput;
    return Result;
  }
  std::string SpecError;
  if (!S.validate(Sigma, &SpecError) || Sigma.empty()) {
    Result.Status = SynthStatus::InvalidInput;
    return Result;
  }

  push(M.literal(HoleChar));
  while (!Queue.empty()) {
    if (Result.Expanded >= Opts.MaxStates ||
        (Opts.TimeoutSeconds > 0 &&
         Clock.seconds() > Opts.TimeoutSeconds)) {
      Result.Status = Result.Expanded >= Opts.MaxStates
                          ? SynthStatus::OutOfMemory
                          : SynthStatus::Timeout;
      Result.Seconds = Clock.seconds();
      return Result;
    }
    WorkItem Item = Queue.top();
    Queue.pop();
    ++Result.Expanded;

    if (!containsHole(Item.State)) {
      // A complete expression: the actual compliance check.
      ++Result.Checked;
      const Regex *Concrete = substituteMarkers(Item.State, M.empty());
      auto Satisfies = [&](const Regex *Re) {
        for (const std::string &W : S.Pos)
          if (!Matcher.matches(Re, W))
            return false;
        for (const std::string &W : S.Neg)
          if (Matcher.matches(Re, W))
            return false;
        return true;
      };
      if (Satisfies(Concrete)) {
        Result.Status = SynthStatus::Found;
        Result.Regex = toString(Concrete);
        Result.Cost = Opts.Cost.of(Concrete);
        Result.Seconds = Clock.seconds();
        return Result;
      }
      continue;
    }

    // Expand the leftmost hole with every constructor.
    auto Expand = [&](const Regex *With) {
      bool Done = false;
      push(replaceLeftmostHole(Item.State, With, Done));
    };
    for (size_t I = 0; I != Sigma.size(); ++I)
      Expand(M.literal(Sigma.symbol(I)));
    if (Opts.UseWildcard)
      Expand(M.literal(WildcardChar));
    const Regex *Hole = M.literal(HoleChar);
    Expand(M.alt(Hole, Hole));
    Expand(M.concat(Hole, Hole));
    Expand(M.star(Hole));
    if (Opts.EnableQuestion)
      Expand(M.question(Hole));
  }
  Result.Status = SynthStatus::NotFound;
  Result.Seconds = Clock.seconds();
  return Result;
}

} // namespace

AlphaRegexResult
paresy::baseline::alphaRegexSynthesize(const Spec &S, const Alphabet &Sigma,
                                       const AlphaRegexOptions &Opts) {
  return AlphaSearcher(S, Sigma, Opts).run();
}
