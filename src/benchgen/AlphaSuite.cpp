//===- benchgen/AlphaSuite.cpp - The 25-instance classroom suite ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "benchgen/AlphaSuite.h"

using namespace paresy;
using namespace paresy::benchgen;

namespace {

SuiteInstance make(const char *Name, const char *Description,
                   const char *Target, std::vector<std::string> Pos,
                   std::vector<std::string> Neg) {
  SuiteInstance Inst;
  Inst.Name = Name;
  Inst.Description = Description;
  Inst.Target = Target;
  Inst.Examples = Spec(std::move(Pos), std::move(Neg));
  return Inst;
}

std::vector<SuiteInstance> buildSuite() {
  std::vector<SuiteInstance> Suite;
  Suite.reserve(25);

  Suite.push_back(make(
      "no1", "strings beginning with 0", "0(0+1)*",
      {"0", "00", "01", "010", "0110"},
      {"1", "10", "11", "101", "1000"}));

  Suite.push_back(make(
      "no2", "strings ending with 01", "(0+1)*01",
      {"01", "001", "101", "0101", "11001"},
      {"0", "1", "10", "011", "0110", "111"}));

  Suite.push_back(make(
      "no3", "strings containing the substring 0101",
      "(0+1)*0101(0+1)*",
      {"0101", "00101", "01010", "10101", "110101", "0101011"},
      {"0", "01", "010", "0110", "1010", "00110", "010011"}));

  Suite.push_back(make(
      "no4", "strings beginning with 1 and ending with 0", "1(0+1)*0",
      {"10", "100", "110", "1010", "10110"},
      {"0", "1", "01", "11", "011", "101", "0110"}));

  Suite.push_back(make(
      "no5", "strings with an even number of 0s", "1*(01*01*)*",
      {"1", "11", "00", "010", "0110", "10011", "00100"},
      {"0", "01", "10", "000", "0111", "01100"}));

  Suite.push_back(make(
      "no6", "strings whose third symbol is 1 (length >= 3)",
      "(0+1)(0+1)1(0+1)*",
      {"001", "011", "101011", "0010010010", "1110101", "011010"},
      {"0", "1", "00", "10", "000101", "0100110010", "100"}));

  Suite.push_back(make(
      "no7", "non-empty strings of even length", "((0+1)(0+1))((0+1)(0+1))*",
      {"00", "01", "1011", "111000", "10"},
      {"0", "1", "011", "01101", "1110101"}));

  Suite.push_back(make(
      "no8", "strings containing at least two 1s", "0*10*1(0+1)*",
      {"11", "101", "110", "0101", "10001"},
      {"0", "1", "00", "010", "1000", "00100"}));

  Suite.push_back(make(
      "no9", "strings whose fifth symbol from the end is 1",
      "(0+1)*1(0+1)(0+1)(0+1)(0+1)",
      {"10000", "110100", "0100011110", "111110000", "0101010101"},
      {"0", "1", "10", "00000", "000001111", "0000000000", "01110"}));

  Suite.push_back(make(
      "no10", "strings with no two consecutive 0s", "(1+01)*0?",
      {"1", "0", "01", "10", "101", "0101", "11011"},
      {"00", "100", "001", "0100", "11001"}));

  Suite.push_back(make(
      "no11", "strings beginning with 1", "1(0+1)*",
      {"1", "10", "11", "101", "1100"},
      {"0", "00", "01", "010", "0011"}));

  Suite.push_back(make(
      "no12", "strings containing the substring 11", "(0+1)*11(0+1)*",
      {"11", "011", "110", "0110", "10111"},
      {"0", "1", "10", "0101", "10010"}));

  Suite.push_back(make(
      "no13", "strings with an odd number of 1s", "0*10*(10*10*)*",
      {"1", "01", "10", "111", "01011", "00100"},
      {"0", "11", "00", "0110", "1001", "101101"}));

  Suite.push_back(make(
      "no14", "strings containing at least three 1s",
      "(0+1)*1(0+1)*1(0+1)*1(0+1)*",
      {"111", "010101", "11100", "101010", "1111"},
      {"0", "1", "11", "0101", "10001", "000110"}));

  Suite.push_back(make(
      "no15", "strings ending with 00", "(0+1)*00",
      {"00", "100", "000", "0100", "11000"},
      {"0", "1", "01", "10", "110", "0010"}));

  Suite.push_back(make(
      "no16", "strings beginning and ending with the same symbol",
      "0+1+0(0+1)*0+1(0+1)*1",
      {"0", "1", "00", "11", "010", "101", "0110", "1001"},
      {"01", "10", "001", "110", "0111", "1000"}));

  Suite.push_back(make(
      "no17", "strings containing the substring 101", "(0+1)*101(0+1)*",
      {"101", "0101", "1010", "1101", "10100"},
      {"0", "1", "10", "01", "1001", "0110", "11001"}));

  Suite.push_back(make(
      "no18", "strings of length exactly three", "(0+1)(0+1)(0+1)",
      {"000", "010", "101", "111", "110"},
      {"0", "11", "0000", "01", "10101"}));

  Suite.push_back(make(
      "no19", "non-empty strings of 1s only", "11*",
      {"1", "11", "111", "11111"},
      {"0", "10", "01", "110", "1011"}));

  Suite.push_back(make(
      "no20", "strings containing at most one 1", "0*1?0*",
      {"0", "1", "00", "010", "0001", "00100"},
      {"11", "101", "110", "01011", "1001"}));

  Suite.push_back(make(
      "no21", "strings with an even number of 1s", "0*(10*10*)*",
      {"0", "00", "11", "0110", "1001", "101101"},
      {"1", "10", "01", "111", "01011", "100"}));

  Suite.push_back(make(
      "no22", "strings beginning with 01 or ending with 10",
      "01(0+1)*+(0+1)*10",
      {"01", "010", "0111", "110", "1010", "0100110"},
      {"0", "1", "11", "00", "100", "0011", "111"}));

  Suite.push_back(make(
      "no23", "strings whose second symbol is 0", "(0+1)0(0+1)*",
      {"00", "10", "001", "100", "0010", "1011"},
      {"0", "1", "01", "11", "0111", "110"}));

  Suite.push_back(make(
      "no24", "non-empty strings not ending with 1", "(0+1)*0",
      {"0", "10", "00", "110", "0100"},
      {"1", "01", "11", "001", "1011"}));

  Suite.push_back(make(
      "no25", "strings with at most one pair of consecutive 1s",
      "(0+10)*(11?)?(0+01)*",
      {"0", "1", "11", "011", "110", "0110", "10101"},
      {"111", "1111", "11011", "110110", "011011"}));

  return Suite;
}

} // namespace

const std::vector<SuiteInstance> &paresy::benchgen::alphaRegexSuite() {
  static const std::vector<SuiteInstance> Suite = buildSuite();
  return Suite;
}
