//===- benchgen/AlphaSuite.h - The 25-instance classroom suite ----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reconstruction of the AlphaRegex benchmark suite used in the
/// paper's Table 2 (Lee et al. 2016/2017: introductory automata
/// assignments over the binary alphabet). The original artefact is not
/// available offline, so the 25 instances here are rebuilt from the
/// classic assignment catalogue: each has an English description, an
/// intended target expression, and hand-crafted positive/negative
/// examples that force the concept. Following the paper's adaptation,
/// wild cards are already expanded to (0+1) and no instance uses
/// epsilon as an example (AlphaRegex cannot handle it); instances no6
/// and no9 deliberately need >64-bit and >128-bit characteristic
/// sequences, reproducing the Table 2 footnote about WarpCore's key
/// width limits.
///
/// Every instance is validated by the test suite: the target satisfies
/// the examples (via both matchers), and examples are disjoint and
/// duplicate-free.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_BENCHGEN_ALPHASUITE_H
#define PARESY_BENCHGEN_ALPHASUITE_H

#include "lang/Spec.h"

#include <vector>

namespace paresy {
namespace benchgen {

/// One classroom instance.
struct SuiteInstance {
  const char *Name;        ///< "no1" ... "no25".
  const char *Description; ///< The assignment in English.
  const char *Target;      ///< Intended solution (this library's syntax).
  Spec Examples;
};

/// The 25 instances, in order. Built once; cheap to reference.
const std::vector<SuiteInstance> &alphaRegexSuite();

} // namespace benchgen
} // namespace paresy

#endif // PARESY_BENCHGEN_ALPHASUITE_H
