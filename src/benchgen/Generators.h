//===- benchgen/Generators.h - Type 1 / Type 2 benchmark generators -----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's parameterised benchmark construction (Sec. 4.3): fully
/// reproducible random specifications controlled by the alphabet, the
/// maximal example length le, and the example counts p and n.
///
///  * Type 1 samples (P, N) uniformly from pairs of disjoint subsets
///    of Sigma^{<=le}; because long strings dominate Sigma^{<=le},
///    Type 1 instances are dominated by long examples.
///  * Type 2 gives every length the same chance (pick a length
///    uniformly, then a uniform string of that length), so short
///    strings - epsilon in particular - appear in most instances.
///
/// Generation is deterministic in the seed and independent of the
/// platform (see support/Rng.h).
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_BENCHGEN_GENERATORS_H
#define PARESY_BENCHGEN_GENERATORS_H

#include "lang/Spec.h"

#include <cstdint>
#include <string>

namespace paresy {
namespace benchgen {

/// Which sampling scheme (Sec. 4.3).
enum class BenchType : uint8_t { Type1 = 1, Type2 = 2 };

/// Generator parameters; names follow the paper.
struct GenParams {
  Alphabet Sigma = Alphabet::of("01");
  /// le: maximal example length.
  unsigned MaxLen = 5;
  /// p: number of positive examples.
  unsigned NumPos = 8;
  /// n: number of negative examples.
  unsigned NumNeg = 8;
  uint64_t Seed = 1;
};

/// A generated instance with a reproducible name such as
/// "T1-le5-p8-n8-s42".
struct GeneratedBenchmark {
  std::string Name;
  Spec Examples;
};

/// Generates one instance of the requested type. Returns false (with
/// \p Error) when the parameters are unsatisfiable, e.g. p + n exceeds
/// #Sigma^{<=le}.
bool generate(BenchType Type, const GenParams &Params,
              GeneratedBenchmark &Out, std::string *Error);

/// Number of strings over \p AlphabetSize symbols with length <= \p
/// MaxLen (saturates at UINT64_MAX).
uint64_t countStringsUpTo(unsigned AlphabetSize, unsigned MaxLen);

} // namespace benchgen
} // namespace paresy

#endif // PARESY_BENCHGEN_GENERATORS_H
