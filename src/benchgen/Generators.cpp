//===- benchgen/Generators.cpp - Type 1 / Type 2 benchmark generators ---------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "benchgen/Generators.h"

#include "support/Rng.h"

#include <cstdio>
#include <set>

using namespace paresy;
using namespace paresy::benchgen;

uint64_t paresy::benchgen::countStringsUpTo(unsigned AlphabetSize,
                                            unsigned MaxLen) {
  if (AlphabetSize == 0)
    return 1; // Only epsilon.
  uint64_t Total = 0;
  uint64_t LenCount = 1; // |Sigma^0|
  for (unsigned Len = 0; Len <= MaxLen; ++Len) {
    if (UINT64_MAX - Total < LenCount)
      return UINT64_MAX;
    Total += LenCount;
    if (Len != MaxLen && LenCount > UINT64_MAX / AlphabetSize)
      return UINT64_MAX;
    LenCount *= AlphabetSize;
  }
  return Total;
}

namespace {

/// Decodes the \p Index-th string of Sigma^{<=MaxLen} in shortlex
/// order (uniform index => uniform string).
std::string decodeString(const Alphabet &Sigma, unsigned MaxLen,
                         uint64_t Index) {
  uint64_t K = Sigma.size();
  uint64_t LenCount = 1;
  for (unsigned Len = 0; Len <= MaxLen; ++Len) {
    if (Index < LenCount) {
      std::string Word(Len, ' ');
      for (unsigned Pos = Len; Pos-- > 0;) {
        Word[Pos] = Sigma.symbol(size_t(Index % K));
        Index /= K;
      }
      return Word;
    }
    Index -= LenCount;
    LenCount *= K;
  }
  return std::string(); // Unreachable for valid indices.
}

std::string uniformStringOfLength(const Alphabet &Sigma, unsigned Len,
                                  Rng &R) {
  std::string Word(Len, ' ');
  for (unsigned Pos = 0; Pos != Len; ++Pos)
    Word[Pos] = Sigma.symbol(size_t(R.below(Sigma.size())));
  return Word;
}

bool generateType1(const GenParams &P, Spec &Out, std::string *Error) {
  uint64_t Space = countStringsUpTo(unsigned(P.Sigma.size()), P.MaxLen);
  uint64_t Needed = uint64_t(P.NumPos) + P.NumNeg;
  if (Needed > Space) {
    if (Error)
      *Error = "p + n exceeds the number of strings up to length le";
    return false;
  }
  Rng R(P.Seed);
  std::set<std::string> Chosen;
  std::vector<std::string> Order;
  while (Order.size() < Needed) {
    std::string W = decodeString(P.Sigma, P.MaxLen, R.below(Space));
    if (Chosen.insert(W).second)
      Order.push_back(std::move(W));
  }
  Out.Pos.assign(Order.begin(), Order.begin() + P.NumPos);
  Out.Neg.assign(Order.begin() + P.NumPos, Order.end());
  return true;
}

bool generateType2(const GenParams &P, Spec &Out, std::string *Error) {
  // Every length gets the same chance; lengths whose strings are
  // exhausted are resampled. Feasibility: p + n distinct strings must
  // exist at all.
  uint64_t Space = countStringsUpTo(unsigned(P.Sigma.size()), P.MaxLen);
  uint64_t Needed = uint64_t(P.NumPos) + P.NumNeg;
  if (Needed > Space) {
    if (Error)
      *Error = "p + n exceeds the number of strings up to length le";
    return false;
  }
  Rng R(P.Seed);
  std::set<std::string> Chosen;
  std::vector<std::string> Order;
  uint64_t Attempts = 0;
  uint64_t MaxAttempts = 10000 * (Needed + 1);
  while (Order.size() < Needed) {
    if (++Attempts > MaxAttempts) {
      // Dense corner (e.g. tiny alphabet, tiny le): fall back to
      // shortlex enumeration of whatever is still unused.
      for (uint64_t I = 0; I < Space && Order.size() < Needed; ++I) {
        std::string W = decodeString(P.Sigma, P.MaxLen, I);
        if (Chosen.insert(W).second)
          Order.push_back(std::move(W));
      }
      break;
    }
    unsigned Len = unsigned(R.below(uint64_t(P.MaxLen) + 1));
    std::string W = uniformStringOfLength(P.Sigma, Len, R);
    if (Chosen.insert(W).second)
      Order.push_back(std::move(W));
  }
  Out.Pos.assign(Order.begin(), Order.begin() + P.NumPos);
  Out.Neg.assign(Order.begin() + P.NumPos, Order.end());
  return true;
}

} // namespace

bool paresy::benchgen::generate(BenchType Type, const GenParams &Params,
                                GeneratedBenchmark &Out,
                                std::string *Error) {
  char Name[128];
  std::snprintf(Name, sizeof(Name), "T%u-le%u-p%u-n%u-s%llu",
                unsigned(Type), Params.MaxLen, Params.NumPos,
                Params.NumNeg,
                static_cast<unsigned long long>(Params.Seed));
  Out.Name = Name;
  bool Ok = Type == BenchType::Type1
                ? generateType1(Params, Out.Examples, Error)
                : generateType2(Params, Out.Examples, Error);
  return Ok;
}
