//===- serve/Wire.cpp - Length-prefixed binary wire protocol ------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Wire.h"

#include "core/Snapshot.h"
#include "support/Socket.h"

using namespace paresy;
using namespace paresy::serve;

namespace {

/// Every payload is a snapshot stream of kind "frame": magic + format
/// version, the frame type byte, the type's fields, checksum trailer.
SnapshotWriter openPayload(FrameType Type) {
  SnapshotWriter W;
  writeSnapshotHeader(W, "frame");
  W.u8(uint8_t(Type));
  return W;
}

std::string sealPayload(SnapshotWriter &W) {
  appendSnapshotChecksum(W);
  return W.take();
}

void writeStringList(SnapshotWriter &W, const std::vector<std::string> &L) {
  W.u64(L.size());
  for (const std::string &S : L)
    W.str(S);
}

bool readStringList(SnapshotReader &R, std::vector<std::string> &Out) {
  uint64_t Count = 0;
  if (!R.u64(Count))
    return false;
  // Each entry costs at least its length prefix, so a count beyond the
  // remaining bytes is structurally impossible: reject it before
  // looping (fail closed, and never trust a length field).
  if (Count > R.remaining())
    return false;
  Out.clear();
  Out.resize(size_t(Count));
  for (std::string &S : Out)
    if (!R.str(S))
      return false;
  return true;
}

/// The client-settable SynthOptions subset (see Wire.h): cost tuple,
/// budgets, shards, error tolerance, and the semantic flag bits.
/// SpillDir/PinnedStoreBytes/WindowStoreBytes stay server-side.
enum OptionFlagBits : uint8_t {
  FlagOnTheFly = 1 << 0,
  FlagSeedEpsilon = 1 << 1,
  FlagUniquenessCheck = 1 << 2,
  FlagUseGuideTable = 1 << 3,
  FlagPadToPowerOfTwo = 1 << 4,
  FlagCompressStore = 1 << 5,
  FlagPortfolio = 1 << 6,
};

void writeOptions(SnapshotWriter &W, const SynthOptions &O) {
  W.u32(O.Cost.Literal);
  W.u32(O.Cost.Question);
  W.u32(O.Cost.Star);
  W.u32(O.Cost.Concat);
  W.u32(O.Cost.Union);
  W.u64(O.MaxCost);
  W.u64(O.MemoryLimitBytes);
  W.u32(O.Shards);
  W.f64(O.TimeoutSeconds);
  W.f64(O.AllowedError);
  uint8_t Flags = 0;
  if (O.EnableOnTheFly)
    Flags |= FlagOnTheFly;
  if (O.SeedEpsilon)
    Flags |= FlagSeedEpsilon;
  if (O.UniquenessCheck)
    Flags |= FlagUniquenessCheck;
  if (O.UseGuideTable)
    Flags |= FlagUseGuideTable;
  if (O.PadToPowerOfTwo)
    Flags |= FlagPadToPowerOfTwo;
  if (O.CompressStore)
    Flags |= FlagCompressStore;
  if (O.Portfolio)
    Flags |= FlagPortfolio;
  W.u8(Flags);
}

bool readOptions(SnapshotReader &R, SynthOptions &O) {
  uint8_t Flags = 0;
  if (!R.u32(O.Cost.Literal) || !R.u32(O.Cost.Question) ||
      !R.u32(O.Cost.Star) || !R.u32(O.Cost.Concat) ||
      !R.u32(O.Cost.Union) || !R.u64(O.MaxCost) ||
      !R.u64(O.MemoryLimitBytes) || !R.u32(O.Shards) ||
      !R.f64(O.TimeoutSeconds) || !R.f64(O.AllowedError) || !R.u8(Flags))
    return false;
  O.EnableOnTheFly = Flags & FlagOnTheFly;
  O.SeedEpsilon = Flags & FlagSeedEpsilon;
  O.UniquenessCheck = Flags & FlagUniquenessCheck;
  O.UseGuideTable = Flags & FlagUseGuideTable;
  O.PadToPowerOfTwo = Flags & FlagPadToPowerOfTwo;
  O.CompressStore = Flags & FlagCompressStore;
  O.Portfolio = Flags & FlagPortfolio;
  return true;
}

} // namespace

std::string serve::encodeFrame(const HelloFrame &F) {
  SnapshotWriter W = openPayload(FrameType::Hello);
  W.u32(F.Protocol);
  W.str(F.Tenant);
  W.f64(F.Weight);
  // The capability word exists only in v2+ payloads: a v1 Hello must
  // stay byte-identical to what a v1 build emits.
  if (F.Protocol >= 2)
    W.u64(F.Capabilities);
  return sealPayload(W);
}

std::string serve::encodeFrame(const HelloOkFrame &F) {
  SnapshotWriter W = openPayload(FrameType::HelloOk);
  W.u32(F.Protocol);
  W.str(F.Banner);
  if (F.Protocol >= 2)
    W.u64(F.Capabilities);
  return sealPayload(W);
}

std::string serve::encodeFrame(const SubmitFrame &F) {
  SnapshotWriter W = openPayload(FrameType::Submit);
  W.u64(F.RequestId);
  writeStringList(W, F.Examples.Pos);
  writeStringList(W, F.Examples.Neg);
  W.str(F.AlphabetChars);
  writeOptions(W, F.Opts);
  return sealPayload(W);
}

std::string serve::encodeFrame(const CancelFrame &F) {
  SnapshotWriter W = openPayload(FrameType::Cancel);
  W.u64(F.RequestId);
  return sealPayload(W);
}

std::string serve::encodeFrame(FrameType Bare) {
  SnapshotWriter W = openPayload(Bare);
  return sealPayload(W);
}

std::string serve::encodeFrame(const ProgressFrame &F) {
  SnapshotWriter W = openPayload(FrameType::Progress);
  W.u64(F.RequestId);
  W.str(F.BestRegex);
  W.u64(F.BestCost);
  W.u64(F.CompletedCost);
  W.u64(F.Horizon);
  W.u64(F.Candidates);
  W.f64(F.ConsumedSeconds);
  return sealPayload(W);
}

std::string serve::encodeFrame(const ResultFrame &F) {
  SnapshotWriter W = openPayload(FrameType::Result);
  W.u64(F.RequestId);
  W.u8(F.Status);
  W.str(F.Regex);
  W.u64(F.Cost);
  W.str(F.Message);
  W.u64(F.Candidates);
  W.u64(F.Unique);
  W.f64(F.PrecomputeSeconds);
  W.f64(F.SearchSeconds);
  W.u64(F.LevelsRun);
  W.u8(F.Parked);
  return sealPayload(W);
}

std::string serve::encodeFrame(const OverloadedFrame &F) {
  SnapshotWriter W = openPayload(FrameType::Overloaded);
  W.u64(F.RequestId);
  W.str(F.Reason);
  W.u8(F.Retryable);
  return sealPayload(W);
}

std::string serve::encodeFrame(const StatsReplyFrame &F) {
  SnapshotWriter W = openPayload(FrameType::StatsReply);
  W.str(F.Text);
  return sealPayload(W);
}

std::string serve::encodeFrame(const ErrorFrame &F) {
  SnapshotWriter W = openPayload(FrameType::Error);
  W.str(F.Message);
  return sealPayload(W);
}

bool serve::decodeFrame(std::string_view Payload, Frame &Out,
                        std::string *Error) {
  auto Fail = [&](const char *Why) {
    if (Error)
      *Error = Why;
    return false;
  };
  if (Payload.size() > MaxFrameBytes)
    return Fail("frame rejected: payload exceeds MaxFrameBytes");
  if (!verifySnapshotChecksum(Payload))
    return Fail("frame rejected: truncated or corrupt (checksum "
                "mismatch)");
  SnapshotReader R(stripSnapshotChecksum(Payload));
  if (!readSnapshotHeader(R, "frame"))
    return Fail("frame rejected: not a paresy wire frame of this "
                "format version");
  uint8_t TypeByte = 0;
  if (!R.u8(TypeByte))
    return Fail("frame rejected: missing frame type");

  Out = Frame();
  Out.Type = FrameType(TypeByte);
  bool Ok = true;
  switch (Out.Type) {
  case FrameType::Hello:
    Ok = R.u32(Out.Hello.Protocol) && R.str(Out.Hello.Tenant) &&
         R.f64(Out.Hello.Weight) &&
         (Out.Hello.Protocol < 2 || R.u64(Out.Hello.Capabilities));
    break;
  case FrameType::HelloOk:
    Ok = R.u32(Out.HelloOk.Protocol) && R.str(Out.HelloOk.Banner) &&
         (Out.HelloOk.Protocol < 2 || R.u64(Out.HelloOk.Capabilities));
    break;
  case FrameType::Submit:
    Ok = R.u64(Out.Submit.RequestId) &&
         readStringList(R, Out.Submit.Examples.Pos) &&
         readStringList(R, Out.Submit.Examples.Neg) &&
         R.str(Out.Submit.AlphabetChars) && readOptions(R, Out.Submit.Opts);
    break;
  case FrameType::Cancel:
    Ok = R.u64(Out.Cancel.RequestId);
    break;
  case FrameType::StatsReq:
  case FrameType::Bye:
    break;
  case FrameType::Progress:
    Ok = R.u64(Out.Progress.RequestId) && R.str(Out.Progress.BestRegex) &&
         R.u64(Out.Progress.BestCost) && R.u64(Out.Progress.CompletedCost) &&
         R.u64(Out.Progress.Horizon) && R.u64(Out.Progress.Candidates) &&
         R.f64(Out.Progress.ConsumedSeconds);
    break;
  case FrameType::Result:
    Ok = R.u64(Out.Result.RequestId) && R.u8(Out.Result.Status) &&
         R.str(Out.Result.Regex) && R.u64(Out.Result.Cost) &&
         R.str(Out.Result.Message) && R.u64(Out.Result.Candidates) &&
         R.u64(Out.Result.Unique) && R.f64(Out.Result.PrecomputeSeconds) &&
         R.f64(Out.Result.SearchSeconds) && R.u64(Out.Result.LevelsRun) &&
         R.u8(Out.Result.Parked);
    break;
  case FrameType::Overloaded:
    Ok = R.u64(Out.Overloaded.RequestId) && R.str(Out.Overloaded.Reason) &&
         R.u8(Out.Overloaded.Retryable);
    break;
  case FrameType::StatsReply:
    Ok = R.str(Out.Stats.Text);
    break;
  case FrameType::Error:
    Ok = R.str(Out.Error.Message);
    break;
  default:
    return Fail("frame rejected: unknown frame type");
  }
  if (!Ok || R.failed())
    return Fail("frame rejected: malformed payload");
  if (!R.atEnd())
    return Fail("frame rejected: trailing bytes after payload");
  return true;
}

bool serve::writeFrame(Socket &S, std::string_view Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  uint32_t Len = uint32_t(Payload.size());
  unsigned char Prefix[4] = {
      (unsigned char)(Len & 0xff), (unsigned char)((Len >> 8) & 0xff),
      (unsigned char)((Len >> 16) & 0xff),
      (unsigned char)((Len >> 24) & 0xff)};
  return S.sendAll(Prefix, sizeof(Prefix)) &&
         S.sendAll(Payload.data(), Payload.size());
}

bool serve::readFrame(Socket &S, std::string &Payload) {
  unsigned char Prefix[4];
  if (!S.recvAll(Prefix, sizeof(Prefix)))
    return false;
  uint32_t Len = uint32_t(Prefix[0]) | (uint32_t(Prefix[1]) << 8) |
                 (uint32_t(Prefix[2]) << 16) | (uint32_t(Prefix[3]) << 24);
  if (Len > MaxFrameBytes)
    return false;
  Payload.resize(Len);
  return Len == 0 || S.recvAll(Payload.data(), Len);
}
