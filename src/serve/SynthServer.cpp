//===- serve/SynthServer.cpp - Multi-tenant TCP synthesis server --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/SynthServer.h"

#include <algorithm>
#include <cstdio>

using namespace paresy;
using namespace paresy::serve;

std::string serve::overfitRegexText(const Spec &S) {
  if (S.Pos.empty())
    return "@";
  std::string Out;
  for (size_t I = 0; I != S.Pos.size(); ++I) {
    if (I)
      Out += '+';
    Out += S.Pos[I].empty() ? std::string("#") : S.Pos[I];
  }
  return Out;
}

/// One live connection. The socket is read by its reader thread only;
/// writes (from the reader and any worker streaming progress) are
/// serialized by WriteM. Teardown shuts the socket down but never
/// closes it while jobs still hold the Conn - the destructor closes.
struct SynthServer::Conn {
  Socket Sock;
  std::mutex WriteM;
  std::string Tenant = "default";
  double Weight = 1.0;
  /// Requests admitted and not yet answered, by client request id
  /// (guarded by ActiveM): the Cancel and disconnect paths mark these
  /// sinks gone so the search parks.
  std::mutex ActiveM;
  std::unordered_map<uint64_t, std::shared_ptr<service::ClientSink>>
      Active;
};

/// One admitted Submit frame, queued for a worker.
struct SynthServer::Job {
  std::shared_ptr<Conn> C;
  uint64_t RequestId = 0;
  Spec Examples;
  std::string AlphabetChars;
  SynthOptions Opts;
  std::shared_ptr<service::ClientSink> Sink;
};

namespace {

service::ServiceOptions synchronousService(service::ServiceOptions O) {
  // The server's worker pool owns the parallelism; a synchronous
  // service keeps each search on the worker that owns the response.
  O.Workers = 0;
  return O;
}

} // namespace

SynthServer::SynthServer(ServerOptions O)
    : Opts(std::move(O)), Service(synchronousService(Opts.Service)),
      Gate(Opts.MaxSessionsPerTenant, Opts.MaxParkedPerTenant) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
}

SynthServer::~SynthServer() { stop(); }

bool SynthServer::start(std::string *Error) {
  if (!L.open(Opts.Host, Opts.Port, Error))
    return false;
  Workers.reserve(Opts.Workers);
  for (unsigned I = 0; I != Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void SynthServer::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Stopping && !Acceptor.joinable())
      return; // Already stopped.
    Stopping = true;
    // Unblock every reader stuck in recv; sockets stay open (jobs may
    // still hold the Conn) and close with their last owner.
    for (const std::shared_ptr<Conn> &C : Conns)
      C->Sock.shutdownBoth();
  }
  WorkReady.notify_all();
  if (Acceptor.joinable())
    Acceptor.join();
  // The acceptor is gone, so Readers is stable; move it out under the
  // lock and join without holding it (readers lock M on their way out).
  std::vector<std::thread> Rs;
  {
    std::lock_guard<std::mutex> Lock(M);
    Rs.swap(Readers);
  }
  for (std::thread &T : Rs)
    T.join();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
  L.close();
  std::lock_guard<std::mutex> Lock(M);
  Conns.clear();
}

ServerStats SynthServer::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters;
}

std::string SynthServer::banner() const {
  // The service runs synchronously (Workers = 0) behind the server's
  // own pool; report the pool, which is the real execution width.
  service::ServiceOptions SO = Service.options();
  SO.Workers = Opts.Workers;
  return service::serviceBanner(SO, Opts.Defaults);
}

std::string SynthServer::statsText() const {
  std::string Out = service::serviceStatsText(Service.stats());
  ServerStats S = stats();
  char Buf[400];
  std::snprintf(Buf, sizeof(Buf),
                "server: %llu connection(s), %llu submitted, "
                "%llu completed, %llu shed (%llu stale), "
                "%llu quota-denied, %llu session-capped, "
                "%llu park-capped, %llu disconnect(s), "
                "%llu progress frame(s), queue %zu (peak %zu)\n",
                (unsigned long long)S.Connections,
                (unsigned long long)S.Submitted,
                (unsigned long long)S.Completed,
                (unsigned long long)(S.ShedQueueFull + S.ShedStale),
                (unsigned long long)S.ShedStale,
                (unsigned long long)S.QuotaDenied,
                (unsigned long long)S.ShedSessionCap,
                (unsigned long long)S.ShedParkBudget,
                (unsigned long long)S.Disconnects,
                (unsigned long long)S.ProgressFrames, S.QueueDepth,
                S.PeakQueueDepth);
  Out += Buf;
  return Out;
}

void SynthServer::sendFrame(Conn &C, const std::string &Payload) {
  std::lock_guard<std::mutex> Lock(C.WriteM);
  if (C.Sock.valid())
    writeFrame(C.Sock, Payload); // A dead peer fails silently; the
                                 // reader observes the disconnect.
}

void SynthServer::acceptLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Stopping)
        return;
    }
    Socket S = L.accept(100);
    if (!S.valid())
      continue;
    auto C = std::make_shared<Conn>();
    C->Sock = std::move(S);
    std::lock_guard<std::mutex> Lock(M);
    if (Stopping)
      return; // The new socket closes unanswered.
    ++Counters.Connections;
    Conns.push_back(C);
    Readers.emplace_back([this, C] { connLoop(C); });
  }
}

void SynthServer::connLoop(std::shared_ptr<Conn> C) {
  std::string Payload;
  Frame F;
  // Handshake: exactly one Hello, any protocol version up to ours.
  // The reply speaks the client's version, so a v1 client keeps
  // round-tripping against a v2 server; only versions we have never
  // defined are rejected (fail closed, never guess at frame layouts).
  bool Ok = readFrame(C->Sock, Payload) && decodeFrame(Payload, F) &&
            F.Type == FrameType::Hello;
  if (Ok &&
      (F.Hello.Protocol < 1 || F.Hello.Protocol > WireProtocolVersion)) {
    sendFrame(*C, encodeFrame(ErrorFrame{
                      "protocol version mismatch: server speaks v1-v" +
                      std::to_string(WireProtocolVersion)}));
    Ok = false;
  }
  if (Ok) {
    C->Tenant = F.Hello.Tenant.empty() ? "default" : F.Hello.Tenant;
    C->Weight = std::clamp(F.Hello.Weight, 0.1,
                           std::max(0.1, Opts.MaxTenantWeight));
    HelloOkFrame Hello;
    Hello.Protocol = F.Hello.Protocol;
    Hello.Banner = banner();
    Hello.Capabilities = ServerCapabilities;
    sendFrame(*C, encodeFrame(Hello));

    while (readFrame(C->Sock, Payload)) {
      std::string DecodeError;
      if (!decodeFrame(Payload, F, &DecodeError)) {
        sendFrame(*C, encodeFrame(ErrorFrame{DecodeError}));
        break;
      }
      if (F.Type == FrameType::Bye)
        break;
      if (F.Type == FrameType::StatsReq) {
        sendFrame(*C, encodeFrame(StatsReplyFrame{statsText()}));
        continue;
      }
      if (F.Type == FrameType::Cancel) {
        std::shared_ptr<service::ClientSink> Sink;
        {
          std::lock_guard<std::mutex> Lock(C->ActiveM);
          auto It = C->Active.find(F.Cancel.RequestId);
          if (It != C->Active.end()) {
            Sink = It->second;
            C->Active.erase(It);
          }
        }
        if (Sink)
          Service.abandon(Sink); // Parks, never cancels: see Session.h.
        continue;
      }
      if (F.Type != FrameType::Submit) {
        sendFrame(*C, encodeFrame(
                          ErrorFrame{"unexpected frame type from client"}));
        break;
      }
      handleSubmit(C, std::move(F.Submit));
    }
  } else if (C->Sock.valid()) {
    sendFrame(*C, encodeFrame(ErrorFrame{"expected a Hello frame"}));
  }

  // Disconnect: every request still active loses its waiter. Once all
  // waiters of an in-flight search are gone it stops at the next poll
  // point and parks its session for a warm-started reconnect.
  std::vector<std::shared_ptr<service::ClientSink>> Abandoned;
  {
    std::lock_guard<std::mutex> Lock(C->ActiveM);
    for (auto &[Id, Sink] : C->Active)
      Abandoned.push_back(Sink);
    C->Active.clear();
  }
  for (const std::shared_ptr<service::ClientSink> &Sink : Abandoned)
    Service.abandon(Sink);
  C->Sock.shutdownBoth();
  std::lock_guard<std::mutex> Lock(M);
  if (!Abandoned.empty())
    ++Counters.Disconnects;
  Conns.erase(std::remove(Conns.begin(), Conns.end(), C), Conns.end());
}

void SynthServer::handleSubmit(const std::shared_ptr<Conn> &C,
                               SubmitFrame S) {
  double Now = Clock.seconds();
  const char *DenyReason = nullptr;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Stopping)
      return;
    if (Opts.TenantRatePerSec > 0 &&
        !Buckets
             .try_emplace(C->Tenant,
                          TokenBucket(Opts.TenantRatePerSec,
                                      std::max(1.0, Opts.TenantBurst)))
             .first->second.tryAcquire(Now)) {
      ++Counters.QuotaDenied;
      DenyReason = "tenant quota exceeded; retry later";
    } else if (Queue.size() >= std::max<size_t>(Opts.MaxQueueDepth, 1)) {
      ++Counters.ShedQueueFull;
      DenyReason = "server overloaded: request queue is full";
    } else {
      // Last check acquires: an admitted Submit owns one per-tenant
      // session slot until it is answered (result or shed).
      switch (Gate.tryAcquire(C->Tenant)) {
      case TenantGate::Verdict::SessionCapped:
        ++Counters.ShedSessionCap;
        DenyReason = "tenant session cap reached; retry later";
        break;
      case TenantGate::Verdict::ParkCapped:
        ++Counters.ShedParkBudget;
        DenyReason = "tenant park budget exhausted; retry later";
        break;
      case TenantGate::Verdict::Admitted:
        break;
      }
    }
  }
  if (DenyReason) {
    OverloadedFrame O;
    O.RequestId = S.RequestId;
    O.Reason = DenyReason;
    sendFrame(*C, encodeFrame(O));
    return;
  }

  Job J;
  J.C = C;
  J.RequestId = S.RequestId;
  J.Examples = std::move(S.Examples);
  J.AlphabetChars = std::move(S.AlphabetChars);
  J.Opts = S.Opts;
  // Host-resource options are the server's call, never the wire's.
  J.Opts.SpillDir = Opts.Defaults.SpillDir;
  J.Opts.PinnedStoreBytes = Opts.Defaults.PinnedStoreBytes;
  J.Opts.WindowStoreBytes = Opts.Defaults.WindowStoreBytes;

  // The streaming sink: best-so-far is the overfit union candidate
  // until the minimal answer lands in the Result frame, so the
  // streamed best cost never increases.
  auto Sink = std::make_shared<service::ClientSink>();
  uint64_t Id = J.RequestId;
  std::string Best = overfitRegexText(J.Examples);
  uint64_t BestCost = overfitCostBound(J.Examples, J.Opts.Cost);
  std::shared_ptr<Conn> CC = C;
  Sink->OnProgress = [this, CC, Id, Best,
                      BestCost](const engine::SessionProgress &P) {
    ProgressFrame F;
    F.RequestId = Id;
    F.BestRegex = Best;
    F.BestCost = BestCost;
    F.CompletedCost = P.CompletedCost;
    F.Horizon = P.MaxCost;
    F.Candidates = P.Candidates;
    F.ConsumedSeconds = P.ConsumedSeconds;
    sendFrame(*CC, encodeFrame(F));
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.ProgressFrames;
  };
  J.Sink = Sink;
  {
    std::lock_guard<std::mutex> Lock(C->ActiveM);
    C->Active[Id] = Sink;
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Stopping) {
      Gate.release(C->Tenant);
      return;
    }
    ++Counters.Submitted;
    Queue.push(C->Tenant, C->Weight, Now, std::move(J));
    Counters.QueueDepth = Queue.size();
    Counters.PeakQueueDepth =
        std::max(Counters.PeakQueueDepth, Counters.QueueDepth);
  }
  WorkReady.notify_one();
}

void SynthServer::workerLoop() {
  for (;;) {
    FairQueue<Job>::Entry E;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkReady.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Stopping)
        return; // Pending jobs die with their closing connections.
      std::optional<FairQueue<Job>::Entry> Got = Queue.pop();
      Counters.QueueDepth = Queue.size();
      if (!Got)
        continue;
      E = std::move(*Got);
    }
    // Staleness shed: a job that sat past the deadline answers
    // Overloaded instead of burning a worker on a stale request.
    double Age = Clock.seconds() - E.EnqueuedAt;
    if (Opts.QueueAgeDeadlineSeconds > 0 &&
        Age > Opts.QueueAgeDeadlineSeconds) {
      {
        std::lock_guard<std::mutex> Lock(M);
        ++Counters.ShedStale;
        Gate.release(E.Payload.C->Tenant);
      }
      {
        std::lock_guard<std::mutex> Lock(E.Payload.C->ActiveM);
        E.Payload.C->Active.erase(E.Payload.RequestId);
      }
      OverloadedFrame O;
      O.RequestId = E.Payload.RequestId;
      O.Reason = "server overloaded: queue age exceeded deadline";
      sendFrame(*E.Payload.C, encodeFrame(O));
      continue;
    }
    runJob(std::move(E.Payload));
  }
}

void SynthServer::runJob(Job J) {
  // Cancelled or disconnected while queued: nobody wants the answer.
  if (J.Sink->Gone.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> Lock(M);
    Gate.release(J.C->Tenant);
    return;
  }

  SynthResult Res;
  Alphabet Sigma;
  std::string Error;
  if (!J.AlphabetChars.empty()) {
    Sigma = Alphabet::create(J.AlphabetChars, &Error);
  } else {
    inferAlphabet(J.Examples, Sigma, &Error);
  }
  if (!Error.empty()) {
    Res.Status = SynthStatus::InvalidInput;
    Res.Message = Error;
  } else {
    service::SubmitContext Ctx;
    Ctx.Tenant = J.C->Tenant;
    Ctx.Sink = J.Sink;
    Res = Service.submit(J.Examples, Sigma, J.Opts, Ctx).get();
  }

  // Deregister before replying: a Cancel racing the answer is a no-op.
  {
    std::lock_guard<std::mutex> Lock(J.C->ActiveM);
    J.C->Active.erase(J.RequestId);
  }

  ResultFrame R;
  R.RequestId = J.RequestId;
  R.Status = uint8_t(Res.Status);
  R.Regex = Res.Regex;
  R.Cost = Res.Cost;
  R.Message = Res.Message;
  R.Candidates = Res.Stats.CandidatesGenerated;
  R.Unique = Res.Stats.UniqueLanguages;
  R.PrecomputeSeconds = Res.Stats.PrecomputeSeconds;
  R.SearchSeconds = Res.Stats.SearchSeconds;
  R.LevelsRun = Res.Stats.LevelsRun;
  R.Parked = J.Sink->SessionParked.load(std::memory_order_relaxed) ? 1 : 0;
  // Per-tenant ledger strictly before the reply: a parked search
  // charges one parked session to its tenant, a resumed one drains one
  // (a resumed search that parks again does both - net zero), and the
  // session slot is returned. Ordering this before sendFrame makes an
  // immediate resubmit-on-result deterministic: the client never races
  // its own released slot.
  {
    std::lock_guard<std::mutex> Lock(M);
    if (J.Sink->SessionParked.load(std::memory_order_relaxed))
      Gate.notePark(J.C->Tenant);
    if (J.Sink->SessionResumed.load(std::memory_order_relaxed))
      Gate.noteResume(J.C->Tenant);
    Gate.release(J.C->Tenant);
  }
  if (!J.Sink->Gone.load(std::memory_order_relaxed))
    sendFrame(*J.C, encodeFrame(R));
  std::lock_guard<std::mutex> Lock(M);
  ++Counters.Completed;
}
