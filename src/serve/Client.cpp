//===- serve/Client.cpp - Blocking client for the synthesis server ------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

using namespace paresy;
using namespace paresy::serve;

bool ServeClient::connect(const std::string &Host, uint16_t Port,
                          const std::string &Tenant, double Weight,
                          std::string *Error) {
  Sock = connectTo(Host, Port, Error);
  if (!Sock.valid())
    return false;
  HelloFrame Hello;
  Hello.Tenant = Tenant;
  Hello.Weight = Weight;
  if (!writeFrame(Sock, encodeFrame(Hello))) {
    if (Error)
      *Error = "connection closed during handshake";
    Sock.close();
    return false;
  }
  std::string Payload;
  Frame F;
  if (!readFrame(Sock, Payload) || !decodeFrame(Payload, F, Error)) {
    if (Error && Error->empty())
      *Error = "connection closed during handshake";
    Sock.close();
    return false;
  }
  if (F.Type != FrameType::HelloOk) {
    if (Error)
      *Error = F.Type == FrameType::Error
                   ? F.Error.Message
                   : std::string("unexpected handshake reply");
    Sock.close();
    return false;
  }
  Banner = F.HelloOk.Banner;
  Protocol = F.HelloOk.Protocol;
  Capabilities = F.HelloOk.Capabilities;
  return true;
}

bool ServeClient::submit(uint64_t RequestId, const Spec &Examples,
                         const std::string &AlphabetChars,
                         const SynthOptions &Opts) {
  SubmitFrame F;
  F.RequestId = RequestId;
  F.Examples = Examples;
  F.AlphabetChars = AlphabetChars;
  F.Opts = Opts;
  return writeFrame(Sock, encodeFrame(F));
}

bool ServeClient::cancel(uint64_t RequestId) {
  CancelFrame F;
  F.RequestId = RequestId;
  return writeFrame(Sock, encodeFrame(F));
}

bool ServeClient::requestStats() {
  return writeFrame(Sock, encodeFrame(FrameType::StatsReq));
}

bool ServeClient::next(Frame &Out, std::string *Error) {
  std::string Payload;
  if (!readFrame(Sock, Payload)) {
    if (Error)
      *Error = "connection closed";
    return false;
  }
  return decodeFrame(Payload, Out, Error);
}

void ServeClient::goodbye() {
  if (!Sock.valid())
    return;
  writeFrame(Sock, encodeFrame(FrameType::Bye));
  Sock.close();
}
