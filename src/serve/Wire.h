//===- serve/Wire.h - Length-prefixed binary wire protocol --------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the network serving stack (DESIGN.md Sec. 12).
/// Every message is one *frame*: a 4-byte little-endian payload length
/// followed by the payload, which is a core/Snapshot byte stream - the
/// same envelope (magic + format version + kind tag), little-endian
/// primitives, and 128-bit fingerprint trailer the session snapshots
/// use. Decoding is fail-closed exactly like snapshot restore: a
/// truncated, oversized, bit-rotten or trailing-garbage payload is
/// rejected as a whole, never partially applied.
///
/// Frame types: client -> server Hello / Submit / Cancel / StatsReq /
/// Bye, server -> client HelloOk / Progress / Result / Overloaded /
/// StatsReply / Error. Submit carries the spec, the alphabet, and the
/// client-settable subset of SynthOptions; host-resource options
/// (spill directory, pinned/window byte caps) are deliberately *not*
/// on the wire - a client must not dictate the server's disk layout.
///
/// Progress frames stream the anytime state after every completed cost
/// level: the best candidate so far (initially the overfit union of
/// the positive examples, later the found minimal regex), the proven
/// floor ("no solution of cost <= CompletedCost"), and the cost
/// horizon. Best cost is non-increasing over a request's lifetime;
/// tests enforce that monotonicity.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SERVE_WIRE_H
#define PARESY_SERVE_WIRE_H

#include "core/Synthesizer.h"
#include "lang/Spec.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace paresy {

class Socket;

namespace serve {

/// Version of the frame vocabulary. v2 appended a capability bitset to
/// Hello and HelloOk; the word is encoded only when the frame's own
/// Protocol field is >= 2, so v1 payloads are still byte-identical to
/// what a v1 build produced. Servers accept any version in [1, this]
/// and answer in the client's version; versions beyond it are rejected
/// with an Error frame (fail closed, never guess).
inline constexpr uint32_t WireProtocolVersion = 2;

/// Capability bits carried by the v2 Hello/HelloOk exchange. A client
/// advertises what it can consume, the server what it implements; each
/// side intersects locally. Bits are informational - no frame type is
/// gated on them yet - so unknown bits are ignored, never rejected.
enum WireCapability : uint64_t {
  /// The server reuses a parked sweep when a resubmitted spec only
  /// added examples (spec-delta resynthesis, DESIGN.md Sec. 14), so
  /// interactive refinement loops are cheap against this server.
  CapDeltaResynthesis = 1ull << 0,
};

/// Everything this build implements (advertised in HelloOk).
inline constexpr uint64_t ServerCapabilities = CapDeltaResynthesis;

/// Hard cap on one frame's payload: a length prefix beyond it is
/// treated as a protocol violation and the connection is dropped
/// before any allocation.
inline constexpr uint32_t MaxFrameBytes = 16u << 20;

enum class FrameType : uint8_t {
  // Client -> server.
  Hello = 1,    ///< First frame on a connection: version + tenant.
  Submit = 2,   ///< One synthesis request.
  Cancel = 3,   ///< Abandon a request (best effort; parks the session).
  StatsReq = 4, ///< Ask for the server's stats text.
  Bye = 5,      ///< Orderly goodbye (same effect as closing).
  // Server -> client.
  HelloOk = 16,    ///< Hello accepted; carries the server banner.
  Progress = 17,   ///< Streaming anytime state (one per cost level).
  Result = 18,     ///< Final answer for a request.
  Overloaded = 19, ///< Admission refused (quota or shed); retryable.
  StatsReply = 20, ///< Stats text.
  Error = 21,      ///< Protocol-level failure; connection closes.
};

struct HelloFrame {
  uint32_t Protocol = WireProtocolVersion;
  std::string Tenant = "default";
  /// Fair-share weight this tenant asks for (the server clamps it).
  double Weight = 1.0;
  /// What the client can consume; on the wire only when Protocol >= 2.
  uint64_t Capabilities = 0;
};

struct HelloOkFrame {
  uint32_t Protocol = WireProtocolVersion;
  std::string Banner;
  /// What the server implements; on the wire only when Protocol >= 2.
  uint64_t Capabilities = 0;
};

struct SubmitFrame {
  /// Client-chosen id echoed on every Progress/Result/Overloaded
  /// frame, so one connection can multiplex requests.
  uint64_t RequestId = 0;
  Spec Examples;
  /// Alphabet characters; empty infers the alphabet from the examples.
  std::string AlphabetChars;
  /// Client-settable options; host-resource fields keep the server's
  /// defaults (see file comment).
  SynthOptions Opts;
};

struct CancelFrame {
  uint64_t RequestId = 0;
};

struct ProgressFrame {
  uint64_t RequestId = 0;
  /// Best candidate so far (always satisfies the spec).
  std::string BestRegex;
  uint64_t BestCost = 0;
  /// Proven: no satisfying regex of cost <= CompletedCost exists
  /// (except BestRegex itself once it is the found answer).
  uint64_t CompletedCost = 0;
  /// Resolved cost bound of the sweep.
  uint64_t Horizon = 0;
  uint64_t Candidates = 0;
  double ConsumedSeconds = 0;
};

struct ResultFrame {
  uint64_t RequestId = 0;
  uint8_t Status = 0; ///< SynthStatus.
  std::string Regex;
  uint64_t Cost = 0;
  std::string Message;
  uint64_t Candidates = 0;
  uint64_t Unique = 0;
  double PrecomputeSeconds = 0;
  double SearchSeconds = 0;
  uint64_t LevelsRun = 0;
  /// The session parked server-side: a reconnect submitting the same
  /// spec/options with an equal-or-wider budget warm-starts it.
  uint8_t Parked = 0;
};

struct OverloadedFrame {
  uint64_t RequestId = 0;
  std::string Reason;
  uint8_t Retryable = 1;
};

struct StatsReplyFrame {
  std::string Text;
};

struct ErrorFrame {
  std::string Message;
};

/// A decoded frame: Type selects which member is meaningful.
struct Frame {
  FrameType Type = FrameType::Error;
  HelloFrame Hello;
  HelloOkFrame HelloOk;
  SubmitFrame Submit;
  CancelFrame Cancel;
  ProgressFrame Progress;
  ResultFrame Result;
  OverloadedFrame Overloaded;
  StatsReplyFrame Stats;
  ErrorFrame Error;
};

/// Payload encoders (length prefix not included; writeFrame adds it).
std::string encodeFrame(const HelloFrame &F);
std::string encodeFrame(const HelloOkFrame &F);
std::string encodeFrame(const SubmitFrame &F);
std::string encodeFrame(const CancelFrame &F);
std::string encodeFrame(FrameType Bare); ///< StatsReq / Bye.
std::string encodeFrame(const ProgressFrame &F);
std::string encodeFrame(const ResultFrame &F);
std::string encodeFrame(const OverloadedFrame &F);
std::string encodeFrame(const StatsReplyFrame &F);
std::string encodeFrame(const ErrorFrame &F);

/// Fail-closed payload decoder: checksum, envelope, per-type fields,
/// and exact-length consumption must all hold, or the frame is
/// rejected (\p Error says why when given).
bool decodeFrame(std::string_view Payload, Frame &Out,
                 std::string *Error = nullptr);

/// Writes one length-prefixed frame. False on a broken connection or
/// an oversized payload.
bool writeFrame(Socket &S, std::string_view Payload);

/// Reads one length-prefixed frame payload. False on EOF, a broken
/// connection, or a length prefix beyond MaxFrameBytes.
bool readFrame(Socket &S, std::string &Payload);

} // namespace serve
} // namespace paresy

#endif // PARESY_SERVE_WIRE_H
