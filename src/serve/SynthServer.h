//===- serve/SynthServer.h - Multi-tenant TCP synthesis server ----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front end over service/SynthService (DESIGN.md
/// Sec. 12): an acceptor thread, one reader thread per connection, and
/// a worker pool draining a weighted fair queue. Admission control
/// happens in the reader (per-tenant token-bucket quota, bounded
/// global queue depth - both answered with retryable Overloaded
/// frames); staleness shedding happens at dequeue (a job older than
/// the queue-age deadline is shed, not run). Workers run searches
/// through a synchronous SynthService, so the service's caches,
/// coalescing and session parking all apply across tenants.
///
/// Streaming anytime results: each completed cost level pushes a
/// Progress frame carrying the best-so-far candidate (the overfit
/// union of the positive examples until the minimal answer is found),
/// the proven cost floor, and the cost horizon. The best cost is
/// non-increasing per request. A disconnect marks the request's sink
/// gone; once every waiter is gone the search stops at its next poll
/// point and the session *parks* (engine/Session.h park token), so a
/// reconnect submitting the same spec/options with an equal-or-wider
/// budget warm-starts from the parked cost level.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SERVE_SYNTHSERVER_H
#define PARESY_SERVE_SYNTHSERVER_H

#include "serve/Admission.h"
#include "serve/Wire.h"
#include "service/SynthService.h"
#include "support/Socket.h"
#include "support/Timer.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace paresy {
namespace serve {

/// Construction-time configuration of one server.
struct ServerOptions {
  std::string Host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t Port = 0;

  /// Worker threads draining the fair queue (>= 1). Each runs its
  /// search synchronously through the shared service.
  unsigned Workers = 1;

  /// The backing service configuration. Workers is forced to 0: the
  /// server's own pool is the execution parallelism, and a synchronous
  /// service keeps searches on the worker that owns the response.
  service::ServiceOptions Service;

  /// Server-side option defaults applied over every Submit frame:
  /// host-resource fields the wire protocol deliberately omits
  /// (SpillDir, PinnedStoreBytes, WindowStoreBytes).
  SynthOptions Defaults;

  /// Admission: pending jobs beyond this depth are shed with a
  /// retryable Overloaded frame.
  size_t MaxQueueDepth = 64;
  /// Staleness: a job whose queue age exceeds this at dequeue is shed
  /// instead of run (0 disables the check).
  double QueueAgeDeadlineSeconds = 30.0;
  /// Per-tenant token bucket: sustained requests per second (0 =
  /// unlimited) and burst allowance.
  double TenantRatePerSec = 0;
  double TenantBurst = 64;
  /// Per-tenant concurrent-session cap: Submit frames admitted (queued
  /// or running) at once for one tenant; a breach answers a retryable
  /// Overloaded frame. 0 = unlimited.
  size_t MaxSessionsPerTenant = 0;
  /// Per-tenant parked-session budget (serve/Admission.h TenantGate):
  /// a tenant holding this many parked sweep states in the service's
  /// resume LRU is serialized to one session at a time - enough to
  /// resume and drain the charge, not enough to keep stuffing the
  /// shared LRU - with further concurrent Submits answered by a
  /// retryable Overloaded frame. 0 = unlimited.
  size_t MaxParkedPerTenant = 0;
  /// Clamp on the fair-share weight a Hello may request.
  double MaxTenantWeight = 16.0;
};

/// Monotonic server counters (admission and transport; the search
/// counters live in ServiceStats).
struct ServerStats {
  uint64_t Connections = 0;    ///< Accepted connections.
  uint64_t Submitted = 0;      ///< Submit frames admitted to the queue.
  uint64_t Completed = 0;      ///< Result frames sent.
  uint64_t ShedQueueFull = 0;  ///< Overloaded: queue at MaxQueueDepth.
  uint64_t ShedStale = 0;      ///< Overloaded: queue age past deadline.
  uint64_t QuotaDenied = 0;    ///< Overloaded: tenant bucket empty.
  uint64_t ShedSessionCap = 0; ///< Overloaded: tenant session cap.
  uint64_t ShedParkBudget = 0; ///< Overloaded: tenant park budget.
  uint64_t Disconnects = 0;    ///< Connections that left requests behind.
  uint64_t ProgressFrames = 0; ///< Progress frames sent.
  size_t QueueDepth = 0;       ///< Jobs queued right now.
  size_t PeakQueueDepth = 0;   ///< High-water mark of QueueDepth.
};

/// A multi-tenant TCP server over one SynthService. start() spawns
/// the acceptor and workers; stop() (or the destructor) shuts every
/// thread down and closes every connection.
class SynthServer {
public:
  explicit SynthServer(ServerOptions Opts);
  ~SynthServer();

  SynthServer(const SynthServer &) = delete;
  SynthServer &operator=(const SynthServer &) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads. False
  /// (with \p Error) when the listener cannot open.
  bool start(std::string *Error);

  /// Stops accepting, closes every connection, joins every thread.
  /// Idempotent.
  void stop();

  /// The bound port (after start(); resolves ephemeral binds).
  uint16_t port() const { return L.port(); }

  const ServerOptions &options() const { return Opts; }

  /// The self-describing banner (backend, workers, shards, store tier,
  /// park budget) sent in every HelloOk and printed by `--serve`. The
  /// worker count is the server pool's, not the synchronous service's.
  std::string banner() const;

  /// The backing service (its stats are the cache/session counters).
  service::SynthService &service() { return Service; }

  /// A consistent snapshot of the transport counters.
  ServerStats stats() const;

  /// The stats text a StatsReq frame returns: service + server lines.
  std::string statsText() const;

private:
  struct Conn;
  struct Job;

  void acceptLoop();
  void connLoop(std::shared_ptr<Conn> C);
  /// Admission control for one Submit frame (quota, then queue depth);
  /// admitted jobs enter the fair queue with a streaming sink attached.
  void handleSubmit(const std::shared_ptr<Conn> &C, SubmitFrame S);
  void workerLoop();
  /// Handles one admitted Submit frame end to end on this worker.
  void runJob(Job J);
  /// Serializes frame writes per connection (progress fan-out may
  /// come from another worker's thread).
  static void sendFrame(Conn &C, const std::string &Payload);

  ServerOptions Opts;
  service::SynthService Service;
  Listener L;
  WallTimer Clock;

  mutable std::mutex M;
  std::condition_variable WorkReady;
  FairQueue<Job> Queue;
  std::unordered_map<std::string, TokenBucket> Buckets;
  TenantGate Gate;
  ServerStats Counters;
  bool Stopping = false;
  std::vector<std::shared_ptr<Conn>> Conns;

  std::vector<std::thread> Workers;
  std::vector<std::thread> Readers;
  std::thread Acceptor;
};

/// The maximally overfitted candidate for \p S: the union of the
/// positive examples ('#' for the empty word, '@' when P is empty).
/// It satisfies any valid spec, costs overfitCostBound(S, Cost), and
/// is the Progress stream's initial best-so-far.
std::string overfitRegexText(const Spec &S);

} // namespace serve
} // namespace paresy

#endif // PARESY_SERVE_SYNTHSERVER_H
