//===- serve/Client.h - Blocking client for the synthesis server --------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client over the serve/Wire.h protocol, used by the
/// CLI's --connect mode, the serve-labelled tests, and bench_serve.
/// One connection, one thread: connect() performs the Hello handshake,
/// submit()/cancel()/requestStats() write frames, next() blocks for
/// the next server frame. disconnect() closes the socket abruptly -
/// that is the tested path by which an in-flight search parks its
/// session server-side for a later warm-started reconnect.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SERVE_CLIENT_H
#define PARESY_SERVE_CLIENT_H

#include "serve/Wire.h"
#include "support/Socket.h"

#include <string>

namespace paresy {
namespace serve {

class ServeClient {
public:
  ServeClient() = default;

  /// Connects and runs the Hello handshake as \p Tenant with fair-share
  /// \p Weight. False (with \p Error) on connect failure, a rejected
  /// handshake, or a protocol mismatch.
  bool connect(const std::string &Host, uint16_t Port,
               const std::string &Tenant, double Weight,
               std::string *Error);

  bool connected() const { return Sock.valid(); }

  /// The server banner from the HelloOk frame.
  const std::string &banner() const { return Banner; }

  /// The protocol version the handshake settled on (the server echoes
  /// the version we offered; 0 before connect()).
  uint32_t protocol() const { return Protocol; }

  /// Capability bits the server advertised in HelloOk (serve/Wire.h
  /// WireCapability; always 0 from a v1 server).
  uint64_t serverCapabilities() const { return Capabilities; }

  /// Sends one Submit frame. Progress/Result/Overloaded frames for it
  /// arrive via next(), tagged with \p RequestId.
  bool submit(uint64_t RequestId, const Spec &Examples,
              const std::string &AlphabetChars, const SynthOptions &Opts);

  /// Asks the server to abandon a request (its session parks).
  bool cancel(uint64_t RequestId);

  /// Asks for the server's stats text (answered by a StatsReply).
  bool requestStats();

  /// Blocks for the next server frame. False on EOF/disconnect or an
  /// undecodable frame (\p Error says why when given).
  bool next(Frame &Out, std::string *Error = nullptr);

  /// Orderly goodbye: sends Bye and closes.
  void goodbye();

  /// Hard disconnect: closes the socket with no Bye, abandoning every
  /// in-flight request (server-side their sessions park).
  void disconnect() { Sock.close(); }

private:
  Socket Sock;
  std::string Banner;
  uint32_t Protocol = 0;
  uint64_t Capabilities = 0;
};

} // namespace serve
} // namespace paresy

#endif // PARESY_SERVE_CLIENT_H
