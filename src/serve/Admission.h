//===- serve/Admission.h - Token buckets + weighted fair queueing -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission-control primitives of the network server (DESIGN.md
/// Sec. 12), kept header-only and clock-free so tests drive them with
/// explicit timestamps and assert exact schedules:
///
///  * TokenBucket - the per-tenant rate quota. Deterministic: time is
///    a parameter, never sampled. A rate of 0 disables refill (the
///    bucket is then a pure burst allowance, which is how tests pin
///    quota-denial behaviour without sleeping).
///
///  * FairQueue - weighted fair dequeue over tenants via start-time
///    fair queueing: each pushed item gets the virtual finish time
///    max(global, tenant's last) + 1/weight, and pop() always takes
///    the smallest tag (FIFO within ties, by sequence number). A
///    tenant with weight 3 drains ~3 items for every 1 of a weight-1
///    tenant under contention, yet an idle tenant's first item never
///    waits behind a backlog it did not build (its start tag catches
///    up to the global virtual time).
///
///  * TenantGate - the per-tenant session ledger: a cap on concurrent
///    admitted sessions, plus a parked-session budget that keeps one
///    tenant from stuffing the service's shared parked-session LRU
///    (SynthService's resume cache) with its own sweep states and
///    evicting everybody else's warm starts. A tenant over its park
///    budget degrades to strictly serial admission - one session at a
///    time, exactly the path that resumes (and thereby drains) its
///    parked state - instead of being locked out.
///
/// The server composes them: bucket check at admission (quota), depth
/// check at admission (backpressure shed), gate check at admission
/// (per-tenant session cap + park budget), queue-age check at dequeue
/// (staleness shed) - see serve/SynthServer.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SERVE_ADMISSION_H
#define PARESY_SERVE_ADMISSION_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace paresy {
namespace serve {

/// A deterministic token bucket: \p RatePerSec tokens accrue per
/// second up to \p Burst. Callers pass the current time explicitly.
class TokenBucket {
public:
  TokenBucket() = default;
  TokenBucket(double RatePerSec, double Burst)
      : Rate(RatePerSec), Burst(Burst), Tokens(Burst) {}

  /// Takes one token if available at \p NowSeconds.
  bool tryAcquire(double NowSeconds) {
    refill(NowSeconds);
    if (Tokens < 1.0)
      return false;
    Tokens -= 1.0;
    return true;
  }

  /// Tokens available at \p NowSeconds (after refill).
  double available(double NowSeconds) {
    refill(NowSeconds);
    return Tokens;
  }

private:
  void refill(double Now) {
    if (Now > Last)
      Tokens = std::min(Burst, Tokens + (Now - Last) * Rate);
    Last = std::max(Last, Now);
  }

  double Rate = 0;
  double Burst = 1;
  double Tokens = 1;
  double Last = 0;
};

/// A weighted fair queue (start-time fair queueing) over opaque
/// payloads. Not thread-safe; the server holds its mutex around it.
template <typename T> class FairQueue {
public:
  struct Entry {
    std::string Tenant;
    double EnqueuedAt = 0;
    T Payload;
  };

  /// Enqueues \p Payload for \p Tenant with fair-share \p Weight
  /// (clamped below to a sane minimum) at time \p NowSeconds.
  void push(const std::string &Tenant, double Weight, double NowSeconds,
            T Payload) {
    double &TenantTag = LastFinish[Tenant];
    double Start = std::max(VirtualTime, TenantTag);
    double Finish = Start + 1.0 / std::max(Weight, 1e-6);
    TenantTag = Finish;
    Items.emplace(std::make_pair(Finish, Seq++),
                  Entry{Tenant, NowSeconds, std::move(Payload)});
  }

  /// Pops the entry with the smallest virtual finish tag (FIFO within
  /// ties). Empty optional when the queue is empty.
  std::optional<Entry> pop() {
    if (Items.empty())
      return std::nullopt;
    auto It = Items.begin();
    VirtualTime = It->first.first;
    Entry E = std::move(It->second);
    Items.erase(It);
    return E;
  }

  size_t size() const { return Items.size(); }
  bool empty() const { return Items.empty(); }

  /// Enqueue time of the next entry pop() would return (the queue-age
  /// shedding probe). 0 when empty.
  double headEnqueuedAt() const {
    return Items.empty() ? 0 : Items.begin()->second.EnqueuedAt;
  }

private:
  // Keyed by (virtual finish tag, sequence): ordered dequeue with a
  // deterministic FIFO tiebreak.
  std::map<std::pair<double, uint64_t>, Entry> Items;
  std::unordered_map<std::string, double> LastFinish;
  double VirtualTime = 0;
  uint64_t Seq = 0;
};

/// The per-tenant session ledger: concurrent admitted sessions
/// (acquired at admission, released when the request is answered) and
/// the parked-session charge (incremented when a tenant's search parks
/// its sweep state in the service LRU, decremented when a retry
/// resumes one). Deterministic and clock-free like the other
/// primitives; not thread-safe - the server holds its mutex around it.
class TenantGate {
public:
  enum class Verdict : uint8_t {
    Admitted,      ///< Acquired one active-session slot.
    SessionCapped, ///< At MaxActive concurrent sessions already.
    ParkCapped,    ///< Over the park budget and a session is already
                   ///< running: serialized until the charge drains.
  };

  TenantGate() = default;
  /// \p MaxActive caps concurrent admitted sessions per tenant;
  /// \p MaxParked is the parked-session budget. 0 disables either.
  TenantGate(size_t MaxActive, size_t MaxParked)
      : MaxActive(MaxActive), MaxParked(MaxParked) {}

  /// Admission check for one Submit. On Admitted the caller owns one
  /// active-session slot and must release() it when the request is
  /// answered (result, shed, or abandoned-while-queued). A tenant at
  /// or over its park budget is never denied outright - it keeps one
  /// session at a time so a resuming retry can drain the charge.
  Verdict tryAcquire(const std::string &Tenant) {
    Ledger &L = Tenants[Tenant];
    if (MaxParked && L.Parked >= MaxParked && L.Active >= 1)
      return Verdict::ParkCapped;
    if (MaxActive && L.Active >= MaxActive)
      return Verdict::SessionCapped;
    ++L.Active;
    return Verdict::Admitted;
  }

  /// Returns the active-session slot of an answered request.
  void release(const std::string &Tenant) {
    auto It = Tenants.find(Tenant);
    if (It == Tenants.end())
      return;
    if (It->second.Active > 0)
      --It->second.Active;
    eraseIfIdle(It);
  }

  /// Charges one parked session to \p Tenant (its search ended with
  /// its sweep state parked in the service LRU).
  void notePark(const std::string &Tenant) { ++Tenants[Tenant].Parked; }

  /// Drains one parked charge (a retry warm-started from a parked
  /// state, consuming the LRU entry). Saturates at zero: LRU evictions
  /// the server cannot observe may have drained the charge already.
  void noteResume(const std::string &Tenant) {
    auto It = Tenants.find(Tenant);
    if (It == Tenants.end())
      return;
    if (It->second.Parked > 0)
      --It->second.Parked;
    eraseIfIdle(It);
  }

  size_t active(const std::string &Tenant) const {
    auto It = Tenants.find(Tenant);
    return It == Tenants.end() ? 0 : It->second.Active;
  }
  size_t parked(const std::string &Tenant) const {
    auto It = Tenants.find(Tenant);
    return It == Tenants.end() ? 0 : It->second.Parked;
  }

private:
  struct Ledger {
    size_t Active = 0;
    size_t Parked = 0;
  };

  /// The ledger map stays bounded by live tenants: an entry with no
  /// active session and no parked charge is dropped.
  void eraseIfIdle(std::unordered_map<std::string, Ledger>::iterator It) {
    if (It->second.Active == 0 && It->second.Parked == 0)
      Tenants.erase(It);
  }

  size_t MaxActive = 0;
  size_t MaxParked = 0;
  std::unordered_map<std::string, Ledger> Tenants;
};

} // namespace serve
} // namespace paresy

#endif // PARESY_SERVE_ADMISSION_H
