//===- support/Timer.h - Wall-clock timing ---------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timer used by the synthesizers (timeout
/// handling) and the benchmark harnesses (reported seconds).
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SUPPORT_TIMER_H
#define PARESY_SUPPORT_TIMER_H

#include <chrono>

namespace paresy {

/// Measures elapsed wall-clock time from construction or the last
/// reset().
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Restarts the timer.
  void reset() { Start = Clock::now(); }

  /// Moves the start \p Seconds into the past: accounts for elapsed
  /// time measured before this timer existed (e.g. a staging phase
  /// timed elsewhere that a deadline must still cover).
  void rewind(double Seconds) {
    Start -= std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(Seconds));
  }

  /// Seconds elapsed since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed since construction/reset.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace paresy

#endif // PARESY_SUPPORT_TIMER_H
