//===- support/Socket.cpp - Minimal TCP socket wrappers ----------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#if defined(__unix__) || defined(__APPLE__)
#define PARESY_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define PARESY_HAVE_SOCKETS 0
#endif

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using namespace paresy;

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

#if PARESY_HAVE_SOCKETS

bool Socket::sendAll(const void *Data, size_t Size) {
  const char *P = static_cast<const char *>(Data);
  while (Size > 0) {
    ssize_t N = ::send(Fd, P, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    P += N;
    Size -= size_t(N);
  }
  return true;
}

bool Socket::recvAll(void *Data, size_t Size) {
  char *P = static_cast<char *>(Data);
  while (Size > 0) {
    ssize_t N = ::recv(Fd, P, Size, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // Peer closed.
    P += N;
    Size -= size_t(N);
  }
  return true;
}

void Socket::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

namespace {

/// Resolves Host:Port into a sockaddr_in. Numeric addresses first (no
/// resolver round trip for the common 127.0.0.1 case), names second.
bool resolveV4(const std::string &Host, uint16_t Port, sockaddr_in &Out,
               std::string *Error) {
  std::memset(&Out, 0, sizeof(Out));
  Out.sin_family = AF_INET;
  Out.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Out.sin_addr) == 1)
    return true;
  addrinfo Hints{};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  if (::getaddrinfo(Host.c_str(), nullptr, &Hints, &Res) != 0 || !Res) {
    if (Error)
      *Error = "cannot resolve host '" + Host + "'";
    return false;
  }
  Out.sin_addr =
      reinterpret_cast<sockaddr_in *>(Res->ai_addr)->sin_addr;
  ::freeaddrinfo(Res);
  return true;
}

} // namespace

Socket paresy::connectTo(const std::string &Host, uint16_t Port,
                         std::string *Error) {
  sockaddr_in Addr;
  if (!resolveV4(Host, Port, Addr, Error))
    return Socket();
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket(): ") + std::strerror(errno);
    return Socket();
  }
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (Rc < 0 && errno == EINTR);
  if (Rc < 0) {
    if (Error)
      *Error = "cannot connect to " + Host + ":" + std::to_string(Port) +
               ": " + std::strerror(errno);
    ::close(Fd);
    return Socket();
  }
  // Frames are small and latency-bound; never batch them.
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Socket(Fd);
}

bool Listener::open(const std::string &Host, uint16_t Port,
                    std::string *Error) {
  close();
  sockaddr_in Addr;
  if (!resolveV4(Host, Port, Addr, Error))
    return false;
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    if (Error)
      *Error = "cannot listen on " + Host + ":" + std::to_string(Port) +
               ": " + std::strerror(errno);
    close();
    return false;
  }
  sockaddr_in Bound;
  socklen_t Len = sizeof(Bound);
  BoundPort = Port;
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
    BoundPort = ntohs(Bound.sin_port);
  return true;
}

Socket Listener::accept(int TimeoutMillis) {
  if (Fd < 0)
    return Socket();
  pollfd P{Fd, POLLIN, 0};
  int Rc;
  do {
    Rc = ::poll(&P, 1, TimeoutMillis);
  } while (Rc < 0 && errno == EINTR);
  if (Rc <= 0 || !(P.revents & POLLIN))
    return Socket();
  int Conn;
  do {
    Conn = ::accept(Fd, nullptr, nullptr);
  } while (Conn < 0 && errno == EINTR);
  if (Conn < 0)
    return Socket();
  int One = 1;
  ::setsockopt(Conn, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Socket(Conn);
}

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

#else // !PARESY_HAVE_SOCKETS

namespace {
constexpr const char *NoSockets =
    "TCP serving is not supported on this platform";
}

bool Socket::sendAll(const void *, size_t) { return false; }
bool Socket::recvAll(void *, size_t) { return false; }
void Socket::shutdownBoth() {}
void Socket::close() { Fd = -1; }

Socket paresy::connectTo(const std::string &, uint16_t,
                         std::string *Error) {
  if (Error)
    *Error = NoSockets;
  return Socket();
}

bool Listener::open(const std::string &, uint16_t, std::string *Error) {
  if (Error)
    *Error = NoSockets;
  return false;
}
Socket Listener::accept(int) { return Socket(); }
void Listener::close() { Fd = -1; }

#endif // PARESY_HAVE_SOCKETS
