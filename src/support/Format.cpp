//===- support/Format.cpp - Text formatting helpers ------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace paresy;

std::string paresy::withCommas(uint64_t N) {
  std::string Digits = std::to_string(N);
  std::string Out;
  Out.reserve(Digits.size() + Digits.size() / 3);
  size_t Lead = Digits.size() % 3;
  if (Lead == 0)
    Lead = 3;
  for (size_t I = 0; I != Digits.size(); ++I) {
    if (I != 0 && (I - Lead) % 3 == 0 && I >= Lead)
      Out += ',';
    Out += Digits[I];
  }
  return Out;
}

std::string paresy::formatSeconds(double Seconds, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Seconds);
  return Buf;
}

std::string paresy::formatSpeedup(double Ratio) {
  char Buf[64];
  if (Ratio >= 10)
    std::snprintf(Buf, sizeof(Buf), "%.0fx", Ratio);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2fx", Ratio);
  return Buf;
}

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() <= Header.size() && "row wider than header");
  Row.resize(Header.size());
  Rows.push_back(std::move(Row));
}

std::string TextTable::render() const {
  std::vector<size_t> Width(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Width[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Width[C])
        Width[C] = Row[C].size();

  auto AppendRow = [&](std::string &Out,
                       const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      Out += Row[C];
      if (C + 1 != Row.size())
        Out += std::string(Width[C] - Row[C].size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  AppendRow(Out, Header);
  size_t Total = 0;
  for (size_t C = 0; C != Width.size(); ++C)
    Total += Width[C] + (C + 1 != Width.size() ? 2 : 0);
  Out += std::string(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    AppendRow(Out, Row);
  return Out;
}
