//===- support/AlignedAlloc.h - Cache-line-aligned word storage -----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity, cache-line-aligned, *uninitialised* array of
/// 64-bit words: the backing store of the language cache. Alignment
/// guarantees that a power-of-two row stride never straddles cache
/// lines; skipping value-initialisation keeps construction O(1) - the
/// cache commits pages only as rows are appended, exactly like the
/// paper's one big uninitialised device allocation.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SUPPORT_ALIGNEDALLOC_H
#define PARESY_SUPPORT_ALIGNEDALLOC_H

#include "support/Bits.h"

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace paresy {

/// Owning span of \p capacity() uninitialised uint64_t words whose
/// base address is aligned to a cache line.
class AlignedWordBuffer {
public:
  AlignedWordBuffer() = default;

  explicit AlignedWordBuffer(size_t Count) : Count(Count) {
    if (Count)
      Words = static_cast<uint64_t *>(::operator new(
          Count * sizeof(uint64_t), std::align_val_t(CacheLineBytes)));
  }

  AlignedWordBuffer(AlignedWordBuffer &&O) noexcept
      : Words(std::exchange(O.Words, nullptr)),
        Count(std::exchange(O.Count, 0)) {}

  AlignedWordBuffer &operator=(AlignedWordBuffer &&O) noexcept {
    if (this != &O) {
      release();
      Words = std::exchange(O.Words, nullptr);
      Count = std::exchange(O.Count, 0);
    }
    return *this;
  }

  AlignedWordBuffer(const AlignedWordBuffer &) = delete;
  AlignedWordBuffer &operator=(const AlignedWordBuffer &) = delete;

  ~AlignedWordBuffer() { release(); }

  uint64_t *data() { return Words; }
  const uint64_t *data() const { return Words; }
  size_t capacity() const { return Count; }

private:
  void release() {
    if (Words)
      ::operator delete(Words, std::align_val_t(CacheLineBytes));
  }

  uint64_t *Words = nullptr;
  size_t Count = 0;
};

} // namespace paresy

#endif // PARESY_SUPPORT_ALIGNEDALLOC_H
