//===- support/Socket.h - Minimal TCP socket wrappers ------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin POSIX socket layer under the network serving stack
/// (serve/SynthServer.h, serve/Client.h). Deliberately minimal: RAII
/// file descriptors, full-buffer send/recv loops (the wire layer
/// frames messages, so partial reads are never surfaced upward), a
/// listener with a polled accept so server threads can observe a stop
/// flag, and nothing else. All blocking calls retry on EINTR; sends
/// use MSG_NOSIGNAL so a peer disconnect surfaces as a failed write,
/// never as SIGPIPE.
///
/// On non-POSIX hosts the whole layer compiles to stubs that fail with
/// a clear error string, keeping the library portable without an
/// #ifdef in every serving file.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SUPPORT_SOCKET_H
#define PARESY_SUPPORT_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace paresy {

/// An owned, connected TCP socket. Move-only; the destructor closes.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Writes all \p Size bytes; false on any error (including a closed
  /// peer). Safe to call from several threads only under an external
  /// lock (the serving layer holds a per-connection write mutex).
  bool sendAll(const void *Data, size_t Size);

  /// Reads exactly \p Size bytes; false on EOF or error.
  bool recvAll(void *Data, size_t Size);

  /// Half-close in both directions: any blocked recvAll() on this
  /// socket (in another thread) returns false. Idempotent.
  void shutdownBoth();

  /// Closes the descriptor. Idempotent.
  void close();

private:
  int Fd = -1;
};

/// Connects to Host:Port (numeric or resolvable name). Returns an
/// invalid Socket and fills \p Error on failure.
Socket connectTo(const std::string &Host, uint16_t Port,
                 std::string *Error);

/// A listening TCP socket with a polled accept.
class Listener {
public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds and listens on Host:Port (SO_REUSEADDR; Port 0 picks an
  /// ephemeral port, readable via port()).
  bool open(const std::string &Host, uint16_t Port, std::string *Error);

  bool valid() const { return Fd >= 0; }

  /// The bound port (resolved after open(), also for ephemeral binds).
  uint16_t port() const { return BoundPort; }

  /// Waits up to \p TimeoutMillis for a connection; returns an invalid
  /// Socket on timeout or a closed listener, so accept loops can poll
  /// a stop flag between calls.
  Socket accept(int TimeoutMillis);

  void close();

private:
  int Fd = -1;
  uint16_t BoundPort = 0;
};

} // namespace paresy

#endif // PARESY_SUPPORT_SOCKET_H
