//===- support/Bits.h - Word-level bitvector primitives -------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Primitives for fixed-width bitvectors stored as contiguous spans of
/// 64-bit words. Characteristic sequences (Sec. 3 of the paper) are
/// represented exactly like this: the i-th bit of a span is 1 iff the
/// i-th word of ic(P u N) belongs to the language. All operations are
/// free functions over (pointer, word count) so the same code serves
/// the CPU synthesizer, the GPU-style kernels, and the hash sets.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SUPPORT_BITS_H
#define PARESY_SUPPORT_BITS_H

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace paresy {

/// Number of bits per storage word.
inline constexpr unsigned BitsPerWord = 64;

/// Returns the number of 64-bit words needed to hold \p NumBits bits.
constexpr size_t wordsForBits(size_t NumBits) {
  return (NumBits + BitsPerWord - 1) / BitsPerWord;
}

/// Returns the smallest power of two that is >= \p N (and >= 1).
/// The paper's "second space-time trade-off" pads every characteristic
/// sequence to a power-of-two bit length computed with this.
constexpr uint64_t nextPowerOfTwo(uint64_t N) {
  return N <= 1 ? 1 : uint64_t(1) << (64 - std::countl_zero(N - 1));
}

/// Bytes per cache line assumed by the row-stride layout (the common
/// size on x86-64 and most aarch64 parts; an over-estimate only wastes
/// a little padding).
inline constexpr size_t CacheLineBytes = 64;

/// 64-bit words per cache line.
inline constexpr size_t WordsPerCacheLine =
    CacheLineBytes / sizeof(uint64_t);

/// Reads bit \p Idx of the bitvector starting at \p Words.
inline bool testBit(const uint64_t *Words, size_t Idx) {
  return (Words[Idx / BitsPerWord] >> (Idx % BitsPerWord)) & 1u;
}

/// Index of the lowest set bit of \p Word (pre: Word != 0).
inline unsigned countTrailingZeros(uint64_t Word) {
  return unsigned(std::countr_zero(Word));
}

/// Invokes \p Fn(BitIdx) for every set bit of the bitvector, in
/// ascending order, walking word by word with ctz instead of testing
/// every position: the cost is proportional to the popcount, not the
/// bit length.
template <typename FnT>
inline void forEachSetBit(const uint64_t *Words, size_t NumWords,
                          FnT &&Fn) {
  for (size_t I = 0; I != NumWords; ++I) {
    uint64_t W = Words[I];
    while (W) {
      Fn(I * BitsPerWord + countTrailingZeros(W));
      W &= W - 1; // Clear the lowest set bit.
    }
  }
}

/// Sets bit \p Idx of the bitvector starting at \p Words.
inline void setBit(uint64_t *Words, size_t Idx) {
  Words[Idx / BitsPerWord] |= uint64_t(1) << (Idx % BitsPerWord);
}

/// Clears bit \p Idx of the bitvector starting at \p Words.
inline void clearBit(uint64_t *Words, size_t Idx) {
  Words[Idx / BitsPerWord] &= ~(uint64_t(1) << (Idx % BitsPerWord));
}

/// Zeroes \p NumWords words starting at \p Dst.
inline void clearWords(uint64_t *Dst, size_t NumWords) {
  for (size_t I = 0; I != NumWords; ++I)
    Dst[I] = 0;
}

/// Copies \p NumWords words from \p Src to \p Dst.
inline void copyWords(uint64_t *Dst, const uint64_t *Src, size_t NumWords) {
  for (size_t I = 0; I != NumWords; ++I)
    Dst[I] = Src[I];
}

/// Dst = A | B over \p NumWords words. This implements language union
/// (semiring addition of characteristic sequences).
inline void orWords(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                    size_t NumWords) {
  for (size_t I = 0; I != NumWords; ++I)
    Dst[I] = A[I] | B[I];
}

/// Dst |= Src over \p NumWords words; returns true iff any Dst word
/// changed. Fuses the union and the fixpoint test of the star fold
/// into one pass (the separate or/compare/copy passes were the star
/// loop's second-largest cost after the concat itself).
inline bool orWordsInto(uint64_t *Dst, const uint64_t *Src,
                        size_t NumWords) {
  uint64_t Changed = 0;
  for (size_t I = 0; I != NumWords; ++I) {
    uint64_t Old = Dst[I];
    uint64_t New = Old | Src[I];
    Changed |= Old ^ New;
    Dst[I] = New;
  }
  return Changed != 0;
}

/// Dst = A & B over \p NumWords words (language intersection).
inline void andWords(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                     size_t NumWords) {
  for (size_t I = 0; I != NumWords; ++I)
    Dst[I] = A[I] & B[I];
}

/// Dst = A & ~B over \p NumWords words (language difference).
inline void andNotWords(uint64_t *Dst, const uint64_t *A, const uint64_t *B,
                        size_t NumWords) {
  for (size_t I = 0; I != NumWords; ++I)
    Dst[I] = A[I] & ~B[I];
}

/// Dst = ~A over \p NumWords words, then masks the tail so that bits at
/// and above \p NumBits stay zero (language complement relative to the
/// finite universe).
inline void notWords(uint64_t *Dst, const uint64_t *A, size_t NumWords,
                     size_t NumBits) {
  for (size_t I = 0; I != NumWords; ++I)
    Dst[I] = ~A[I];
  if (size_t Rem = NumBits % BitsPerWord)
    Dst[NumWords - 1] &= (uint64_t(1) << Rem) - 1;
}

/// Returns true iff the two bitvectors hold identical words.
inline bool equalWords(const uint64_t *A, const uint64_t *B,
                       size_t NumWords) {
  for (size_t I = 0; I != NumWords; ++I)
    if (A[I] != B[I])
      return false;
  return true;
}

/// Returns true iff all \p NumWords words of \p A are zero.
inline bool isZeroWords(const uint64_t *A, size_t NumWords) {
  for (size_t I = 0; I != NumWords; ++I)
    if (A[I] != 0)
      return false;
  return true;
}

/// Returns true iff A is a superset of B viewed as bit sets,
/// i.e. (A & B) == B.
inline bool containsWords(const uint64_t *A, const uint64_t *B,
                          size_t NumWords) {
  for (size_t I = 0; I != NumWords; ++I)
    if ((A[I] & B[I]) != B[I])
      return false;
  return true;
}

/// Returns true iff A and B share no set bit, i.e. (A & B) == 0.
inline bool disjointWords(const uint64_t *A, const uint64_t *B,
                          size_t NumWords) {
  for (size_t I = 0; I != NumWords; ++I)
    if ((A[I] & B[I]) != 0)
      return false;
  return true;
}

/// Number of set bits across \p NumWords words.
inline unsigned popcountWords(const uint64_t *A, size_t NumWords) {
  unsigned Count = 0;
  for (size_t I = 0; I != NumWords; ++I)
    Count += unsigned(std::popcount(A[I]));
  return Count;
}

/// Number of bits set in A but not in B: |A \ B|.
inline unsigned popcountAndNot(const uint64_t *A, const uint64_t *B,
                               size_t NumWords) {
  unsigned Count = 0;
  for (size_t I = 0; I != NumWords; ++I)
    Count += unsigned(std::popcount(A[I] & ~B[I]));
  return Count;
}

/// Number of bits set in both A and B: |A n B|.
inline unsigned popcountAnd(const uint64_t *A, const uint64_t *B,
                            size_t NumWords) {
  unsigned Count = 0;
  for (size_t I = 0; I != NumWords; ++I)
    Count += unsigned(std::popcount(A[I] & B[I]));
  return Count;
}

/// Mixes a 64-bit value (SplitMix64 finalizer). Good avalanche; used as
/// the per-word step of span hashing and by the hash sets.
constexpr uint64_t hashMix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Hashes \p NumWords words starting at \p Words.
inline uint64_t hashWords(const uint64_t *Words, size_t NumWords) {
  uint64_t H = 0x2545f4914f6cdd1dULL;
  for (size_t I = 0; I != NumWords; ++I)
    H = hashMix64(H ^ Words[I]);
  return H;
}

/// The per-slot fingerprint byte both hash sets store next to their
/// slots: the top seven hash bits with the high bit forced, so a tag
/// is never zero (zero marks an unpublished slot) and equal keys
/// always produce equal tags. A probe whose tag differs from the
/// slot's can skip the slot without touching the key words - with
/// random keys that resolves 127/128 of collision probes from one
/// byte of hot metadata.
constexpr uint8_t hashTagByte(uint64_t Hash) {
  return uint8_t(Hash >> 56) | uint8_t(0x80);
}

} // namespace paresy

#endif // PARESY_SUPPORT_BITS_H
