//===- support/ThreadPool.h - Fixed-size worker pool -----------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size thread pool with a parallel-for primitive. The
/// GPU simulator (src/gpusim) executes kernel grids on top of this; it
/// deliberately exposes only bulk-synchronous operations because that
/// is the only execution shape CUDA kernels have.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SUPPORT_THREADPOOL_H
#define PARESY_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paresy {

/// Fixed set of worker threads executing bulk-parallel index ranges.
///
/// parallelFor(N, F) runs F(I) for every I in [0, N), distributing
/// chunks over the workers, and returns only when all iterations have
/// completed (a synchronous "kernel launch"). With zero workers (or on
/// single-core hosts) the loop runs inline on the caller, which keeps
/// the execution fully deterministic and cheap.
class ThreadPool {
public:
  /// Creates \p NumWorkers worker threads. 0 means "run inline".
  explicit ThreadPool(unsigned NumWorkers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads (0 = inline execution).
  unsigned workerCount() const { return unsigned(Workers.size()); }

  /// Runs Body(I) for all I in [0, Count), blocking until done. Bodies
  /// must not themselves call parallelFor on the same pool.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

  /// Default worker count for this host: hardware_concurrency() - 1
  /// workers (the caller participates), at least 0.
  static unsigned defaultWorkers();

private:
  void workerMain();
  /// Runs chunks of the current job until it is exhausted.
  void runChunks();

  struct Job {
    size_t Count = 0;
    const std::function<void(size_t)> *Body = nullptr;
    size_t NextChunk = 0;
    size_t NumChunks = 0;
    size_t ChunkSize = 1;
    size_t Remaining = 0;
    uint64_t Generation = 0;
  };

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable WorkDone;
  Job Current;
  bool HasJob = false;
  bool Stopping = false;
};

} // namespace paresy

#endif // PARESY_SUPPORT_THREADPOOL_H
