//===- support/Compiler.h - Portability and diagnostics helpers ----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler helpers shared by every library: an unreachable marker
/// in the spirit of llvm_unreachable, and a fatal-error reporter for
/// unrecoverable environment failures in tool code.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SUPPORT_COMPILER_H
#define PARESY_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace paresy {

/// Reports a fatal internal error and aborts. Used by the
/// PARESY_UNREACHABLE macro; call sites should prefer the macro so that
/// file/line information is captured.
[[noreturn]] inline void unreachableInternal(const char *Msg,
                                             const char *File, int Line) {
  std::fprintf(stderr, "paresy fatal: %s at %s:%d\n",
               Msg ? Msg : "unreachable executed", File, Line);
  std::abort();
}

/// Reports an unrecoverable usage/environment error (bad input file,
/// exhausted resources) and exits. Library code avoids this; it is for
/// tools, benches and examples.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "paresy error: %s\n", Msg);
  std::exit(1);
}

} // namespace paresy

/// Marks a point in code that must never be reached if the program
/// invariants hold.
#define PARESY_UNREACHABLE(MSG)                                               \
  ::paresy::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // PARESY_SUPPORT_COMPILER_H
