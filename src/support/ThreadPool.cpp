//===- support/ThreadPool.cpp - Fixed-size worker pool ---------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace paresy;

ThreadPool::ThreadPool(unsigned NumWorkers) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

unsigned ThreadPool::defaultWorkers() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 1 ? HW - 1 : 0;
}

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Body) {
  if (Count == 0)
    return;
  // Inline execution keeps single-core hosts deterministic and avoids
  // pointless synchronisation for tiny grids.
  if (Workers.empty() || Count == 1) {
    for (size_t I = 0; I != Count; ++I)
      Body(I);
    return;
  }

  std::unique_lock<std::mutex> Lock(Mutex);
  assert(!HasJob && "nested/concurrent parallelFor on one pool");
  Current.Count = Count;
  Current.Body = &Body;
  Current.ChunkSize =
      std::max<size_t>(1, Count / (8 * (Workers.size() + 1)));
  Current.NextChunk = 0;
  Current.NumChunks =
      (Count + Current.ChunkSize - 1) / Current.ChunkSize;
  Current.Remaining = Current.NumChunks;
  ++Current.Generation;
  HasJob = true;
  WorkReady.notify_all();

  runChunks(); // The caller participates as one more worker.
  WorkDone.wait(Lock, [&] { return !HasJob; });
}

void ThreadPool::runChunks() {
  // Precondition: Mutex is held by the calling frame (unique_lock in
  // parallelFor, or the worker's wait loop). We re-acquire around each
  // chunk claim and completion.
  while (HasJob && Current.NextChunk < Current.NumChunks) {
    size_t ChunkIdx = Current.NextChunk++;
    size_t Begin = ChunkIdx * Current.ChunkSize;
    size_t End = std::min(Begin + Current.ChunkSize, Current.Count);
    const std::function<void(size_t)> *Body = Current.Body;
    Mutex.unlock();
    for (size_t I = Begin; I != End; ++I)
      (*Body)(I);
    Mutex.lock();
    if (--Current.Remaining == 0) {
      HasJob = false;
      WorkDone.notify_all();
    }
  }
}

void ThreadPool::workerMain() {
  uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [&] {
      return Stopping || (HasJob && Current.Generation != SeenGeneration);
    });
    if (Stopping)
      return;
    SeenGeneration = Current.Generation;
    runChunks();
  }
}
