//===- support/WorkQueue.h - Two-sided work-stealing range queue -----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling substrate of the heterogeneous backend
/// (engine/HeteroBackend.h): a fixed range of independent work units
/// [0, NumUnits) split between two engines, where a finished engine
/// *steals* from the slow one instead of idling. The shape follows
/// dfc-opencl's heterogeneous design - a static split seeds the
/// schedule, dynamic stealing corrects the seed's error - restricted
/// to exactly two consumers-with-teams, which is what CPU+GPU
/// co-execution needs and what keeps the queue a pair of packed
/// 64-bit cursors instead of a general deque.
///
/// Each side owns a contiguous sub-range and holds one atomic word
/// packing (Next, End). Claims from the owning side pop the front
/// (Next++); steals take the victim's *back* (End--), so the thief
/// and the owner only collide on the final unit, where the CAS on the
/// packed word arbitrates. Every unit is claimed exactly once; which
/// side claims it is scheduling, never semantics - callers must only
/// submit units whose results are claim-order-independent (the kernel
/// grains of the batched pipeline are, by design).
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SUPPORT_WORKQUEUE_H
#define PARESY_SUPPORT_WORKQUEUE_H

#include <atomic>
#include <cstdint>

namespace paresy {

/// A two-sided work-stealing queue over the unit range [0, NumUnits).
/// Side 0 is seeded with [0, Split), side 1 with [Split, NumUnits).
/// claim() is lock-free and safe to call from any number of threads
/// acting for either side.
class WorkQueue {
public:
  /// claim() result when no work remains anywhere.
  static constexpr uint32_t None = 0xffffffffu;

  /// \p Split is clamped to [0, NumUnits].
  WorkQueue(uint32_t NumUnits, uint32_t Split) {
    if (Split > NumUnits)
      Split = NumUnits;
    Side[0].store(pack(0, Split), std::memory_order_relaxed);
    Side[1].store(pack(Split, NumUnits), std::memory_order_relaxed);
  }

  WorkQueue(const WorkQueue &) = delete;
  WorkQueue &operator=(const WorkQueue &) = delete;

  /// Claims the next unit for \p Taker (0 or 1): the front of its own
  /// sub-range while that lasts, then the back of the other side's
  /// (a steal). Returns None when every unit has been claimed.
  uint32_t claim(unsigned Taker) {
    uint32_t Unit = popFront(Taker);
    if (Unit != None)
      return Unit;
    Unit = popBack(1 - Taker);
    if (Unit != None)
      Stolen[Taker].fetch_add(1, std::memory_order_relaxed);
    return Unit;
  }

  /// Units side \p Taker took from the *other* side's range.
  uint64_t stolenBy(unsigned Taker) const {
    return Stolen[Taker].load(std::memory_order_relaxed);
  }

  /// Units not yet claimed (racy under concurrent claims; exact once
  /// the consumers have quiesced).
  uint32_t remaining() const {
    uint32_t Left = 0;
    for (const std::atomic<uint64_t> &S : Side) {
      uint64_t Word = S.load(std::memory_order_relaxed);
      Left += end(Word) - next(Word);
    }
    return Left;
  }

private:
  static uint64_t pack(uint32_t Next, uint32_t End) {
    return uint64_t(End) << 32 | Next;
  }
  static uint32_t next(uint64_t Word) { return uint32_t(Word); }
  static uint32_t end(uint64_t Word) { return uint32_t(Word >> 32); }

  uint32_t popFront(unsigned S) {
    uint64_t Word = Side[S].load(std::memory_order_relaxed);
    while (next(Word) < end(Word)) {
      // One CAS on the packed word claims the front unit; a concurrent
      // steal of the same (last) unit changes End and fails this CAS.
      if (Side[S].compare_exchange_weak(Word,
                                        pack(next(Word) + 1, end(Word)),
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed))
        return next(Word);
    }
    return None;
  }

  uint32_t popBack(unsigned S) {
    uint64_t Word = Side[S].load(std::memory_order_relaxed);
    while (next(Word) < end(Word)) {
      if (Side[S].compare_exchange_weak(Word,
                                        pack(next(Word), end(Word) - 1),
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed))
        return end(Word) - 1;
    }
    return None;
  }

  /// One packed (Next, End) cursor per side, cache-line separated so
  /// the two engines' claims do not false-share.
  alignas(64) std::atomic<uint64_t> Side[2];
  alignas(64) std::atomic<uint64_t> Stolen[2] = {{0}, {0}};
};

} // namespace paresy

#endif // PARESY_SUPPORT_WORKQUEUE_H
