//===- support/Rng.h - Deterministic random number generation -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fully deterministic PRNG (xoshiro256**, seeded via
/// SplitMix64). The paper's benchmark suite must be "suitably random to
/// reduce biasing measurements, yet remain fully reproducible" (Sec.
/// 4.3); std::mt19937 distributions are not guaranteed identical across
/// standard library implementations, so we ship our own.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SUPPORT_RNG_H
#define PARESY_SUPPORT_RNG_H

#include "support/Bits.h"

#include <cassert>
#include <cstdint>

namespace paresy {

/// xoshiro256** by Blackman & Vigna, seeded with SplitMix64 so that any
/// 64-bit seed yields a well-mixed state.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      Word = hashMix64(X);
    }
  }

  /// Returns the next 64 uniformly random bits.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be > 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() needs a positive bound");
    uint64_t Threshold = (-Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniform integer in [Lo, Hi] (inclusive).
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + below(Hi - Lo + 1);
  }

  /// Returns a uniform double in [0, 1).
  double unit() {
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability \p P.
  bool chance(double P) { return unit() < P; }

private:
  static constexpr uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace paresy

#endif // PARESY_SUPPORT_RNG_H
