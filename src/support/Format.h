//===- support/Format.h - Text formatting helpers --------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers used by the benchmark harnesses to print tables
/// that mirror the paper's: thousands separators for "# REs" columns,
/// fixed-precision seconds, and a simple column-aligned table writer.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SUPPORT_FORMAT_H
#define PARESY_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

namespace paresy {

/// Renders \p N with comma thousands separators, e.g. 26774099142 ->
/// "26,774,099,142" (the style of Table 1's "# REs" column).
std::string withCommas(uint64_t N);

/// Renders \p Seconds with \p Precision fractional digits.
std::string formatSeconds(double Seconds, int Precision = 4);

/// Renders a ratio as the paper prints speedups, e.g. "1026x".
std::string formatSpeedup(double Ratio);

/// Accumulates rows of strings and prints them column-aligned with a
/// header row and a separator, matching the plain-text tables in
/// EXPERIMENTS.md.
class TextTable {
public:
  /// Sets the header row; defines the column count.
  explicit TextTable(std::vector<std::string> Header);

  /// Appends one row. Rows shorter than the header are padded with "".
  void addRow(std::vector<std::string> Row);

  /// Renders the table to a string (trailing newline included).
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace paresy

#endif // PARESY_SUPPORT_FORMAT_H
