//===- dist/Channel.h - Message channels between shard workers ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport under the distributed execution mode (DESIGN.md
/// Sec. 13): an ordered, reliable, message-oriented channel between
/// the coordinator and one shard worker. Two implementations share the
/// interface so the protocol layer cannot tell them apart:
///
///  * LoopbackChannel - an in-memory queue pair for "virtual workers"
///    (pinned threads under one roof) and for tests; send never
///    blocks, close wakes blocked receivers;
///  * SocketChannel - a length-prefixed framing over support/Socket,
///    the process-separation transport behind `paresy_cli
///    --coordinator` / `--join`. A peer death surfaces as a failed
///    send/recv, never as a hang (support/Socket's recvAll returns
///    false on EOF), which is what makes the coordinator's fail-closed
///    worker-loss story possible.
///
/// Channels move opaque byte strings; dist/Protocol.h gives the bytes
/// meaning (and the checksummed, versioned, fail-closed envelope).
/// Each endpoint is owned by exactly one thread; there is no internal
/// locking of the socket variant.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_DIST_CHANNEL_H
#define PARESY_DIST_CHANNEL_H

#include "support/Socket.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace paresy {
namespace dist {

/// Hard cap on one message's bytes. Deliberately far beyond the wire
/// protocol's 16 MiB frame cap: a StoreSync message carries an entire
/// sharded store snapshot, which on a large instance exceeds any
/// per-request frame budget.
inline constexpr uint64_t MaxDistMessageBytes = uint64_t(1) << 30;

/// One end of an ordered, reliable message channel to a shard worker
/// (or, from a worker's perspective, to the coordinator).
class ShardChannel {
public:
  virtual ~ShardChannel();

  /// Sends one message; false once the channel is broken or closed.
  virtual bool send(std::string_view Bytes) = 0;

  /// Receives the next message, blocking until one arrives or the
  /// channel dies. False on close/peer loss - the caller's fail-closed
  /// path, never a hang.
  virtual bool recv(std::string &Bytes) = 0;

  /// Breaks the channel: any blocked recv() (either end for loopback)
  /// returns false. Idempotent.
  virtual void close() = 0;

  /// Traffic counters for the exchange stats (bytes of message
  /// payloads, framing excluded).
  uint64_t bytesSent() const { return SentBytes; }
  uint64_t bytesReceived() const { return RecvBytes; }

protected:
  uint64_t SentBytes = 0;
  uint64_t RecvBytes = 0;
};

/// A connected pair of in-memory channel ends: what A sends, B
/// receives, and vice versa.
struct ChannelPair {
  std::unique_ptr<ShardChannel> A;
  std::unique_ptr<ShardChannel> B;
};

/// Creates a loopback pair (unbounded queues; close on either end
/// wakes both).
ChannelPair makeLoopbackPair();

/// Message framing over a connected TCP socket: u32-LE payload length,
/// then the payload, exactly the serve/Wire discipline but with the
/// MaxDistMessageBytes cap.
class SocketChannel : public ShardChannel {
public:
  explicit SocketChannel(Socket S) : Sock(std::move(S)) {}

  bool send(std::string_view Bytes) override;
  bool recv(std::string &Bytes) override;
  void close() override;

private:
  Socket Sock;
};

} // namespace dist
} // namespace paresy

#endif // PARESY_DIST_CHANNEL_H
