//===- dist/Coordinator.cpp - Distributed shard-worker backend ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"

#include "core/LanguageCache.h"
#include "core/Snapshot.h"
#include "dist/Worker.h"
#include "engine/LevelTasks.h"
#include "gpusim/WarpHashSet.h"
#include "lang/Alphabet.h"
#include "lang/Spec.h"
#include "lang/Universe.h"

#include <algorithm>
#include <utility>

using namespace paresy;
using namespace paresy::dist;
using namespace paresy::engine;

DistBackend::DistBackend(unsigned Workers, DistClusterOptions Cluster,
                         bool Loopback)
    : Loopback(Loopback), InitialWorkers(std::max(1u, Workers)),
      Cluster(std::move(Cluster)), BatchTasks(size_t(1) << 16) {}

std::unique_ptr<DistBackend>
DistBackend::inProcess(unsigned Workers, DistClusterOptions Cluster) {
  return std::unique_ptr<DistBackend>(
      new DistBackend(Workers ? Workers : 2, std::move(Cluster), true));
}

std::unique_ptr<DistBackend>
DistBackend::overChannels(std::vector<std::unique_ptr<ShardChannel>> Channels,
                          DistClusterOptions Cluster) {
  std::unique_ptr<DistBackend> B(
      new DistBackend(std::max<unsigned>(1, unsigned(Channels.size())),
                      std::move(Cluster), false));
  for (std::unique_ptr<ShardChannel> &Ch : Channels)
    B->Links.push_back(WorkerLink{std::move(Ch), std::thread()});
  return B;
}

DistBackend::~DistBackend() {
  SnapshotWriter W = openMessage(Msg::Shutdown);
  std::string Payload = sealMessage(W);
  for (WorkerLink &L : Links) {
    if (L.Ch) {
      L.Ch->send(Payload); // Best effort; close() unblocks either way.
      L.Ch->close();
    }
    if (L.Thread.joinable())
      L.Thread.join();
  }
}

void DistBackend::markBroken(unsigned Worker, const std::string &Why) {
  (void)Worker;
  if (Broken)
    return; // First failure wins; it is the one the session reports.
  Broken = true;
  BrokenWhy = Why;
}

bool DistBackend::sendTo(unsigned Worker, const std::string &Payload) {
  if (Broken)
    return false;
  if (Links[Worker].Ch && Links[Worker].Ch->send(Payload))
    return true;
  markBroken(Worker, "distributed worker " + std::to_string(Worker) +
                         " failed (connection lost)");
  return false;
}

bool DistBackend::recvExpect(unsigned Worker, Msg Expected,
                             std::string &Payload, MessageReader &M) {
  if (Broken)
    return false;
  if (!Links[Worker].Ch || !Links[Worker].Ch->recv(Payload)) {
    markBroken(Worker, "distributed worker " + std::to_string(Worker) +
                           " failed (connection lost)");
    return false;
  }
  if (!M.open(Payload)) {
    markBroken(Worker, "distributed worker " + std::to_string(Worker) +
                           " failed (corrupt message)");
    return false;
  }
  if (M.type() == Msg::Err) {
    std::string Why;
    M.r().str(Why);
    markBroken(Worker, "distributed worker " + std::to_string(Worker) +
                           " failed: " +
                           (Why.empty() ? std::string("unknown error") : Why));
    return false;
  }
  if (M.type() != Expected) {
    markBroken(Worker, "distributed worker " + std::to_string(Worker) +
                           " failed (unexpected reply)");
    return false;
  }
  return true;
}

void DistBackend::spawnLoopbackWorker() {
  ChannelPair Pair = makeLoopbackPair();
  WorkerLink L;
  L.Ch = std::move(Pair.A);
  L.Thread = std::thread(
      [Ch = std::move(Pair.B)]() { runWorker(*Ch); });
  Links.push_back(std::move(L));
}

size_t DistBackend::planCacheCapacity(const SearchContext &Ctx,
                                      uint64_t BudgetBytes) {
  // BatchedBackend::splitBudget's partition, replicated number for
  // number: identical store capacities and per-shard set capacities on
  // the coordinator and every worker are what make distributed results
  // bit-identical to the in-process backends.
  size_t CsWords = Ctx.U->csWords();
  uint64_t RowBytes =
      LanguageCache::strideForWords(CsWords) * sizeof(uint64_t) +
      sizeof(Provenance) + sizeof(uint64_t) +
      (Ctx.Opts->Shards > 1 ? sizeof(uint64_t) : 0);
  if (storeCompressionEnabled(*Ctx.Opts))
    RowBytes = sizeof(Provenance) + sizeof(uint64_t) +
               (Ctx.Opts->Shards > 1 ? sizeof(uint64_t) : 0);
  uint64_t SlotBytes =
      CsWords * sizeof(uint64_t) + gpusim::WarpHashSet::slotBytes();
  uint64_t CacheCap =
      std::max<uint64_t>(16, BudgetBytes * 6 / 10 / RowBytes);
  CacheCap = std::min<uint64_t>(CacheCap, 0xfffffffeu);
  uint64_t HashCap =
      std::max<uint64_t>(32, BudgetBytes * 3 / 10 / SlotBytes);
  HashCapacity = size_t(std::min<uint64_t>(HashCap, 0x7fffffffu));
  return size_t(CacheCap);
}

uint64_t DistBackend::planStoreBytes(const SearchContext &Ctx,
                                     uint64_t BudgetBytes) {
  (void)Ctx;
  return BudgetBytes * 6 / 10;
}

std::string DistBackend::buildInit(const SearchContext &Ctx, unsigned Worker,
                                   unsigned Workers,
                                   const std::vector<uint32_t> &Map) const {
  SnapshotWriter W = openMessage(Msg::Init);
  W.u32(Worker);
  W.u32(Workers);
  W.u64(Ctx.S->Pos.size());
  for (const std::string &E : Ctx.S->Pos)
    W.str(E);
  W.u64(Ctx.S->Neg.size());
  for (const std::string &E : Ctx.S->Neg)
    W.str(E);
  W.str(Ctx.Sigma->symbols());
  writeDistOptions(W, *Ctx.Opts);
  W.str(Ctx.Opts->SpillDir);
  W.u64(Ctx.U->csWords());
  W.u64(SetCapacityPerShard);
  W.u64(TierByteBudget);
  W.u64(TierWindowBudget);
  W.u64(TierPinnedBytes);
  writeOwnerMap(W, Map);
  return sealMessage(W);
}

bool DistBackend::initWorker(const SearchContext &Ctx, unsigned Worker,
                             unsigned Workers,
                             const std::vector<uint32_t> &Map) {
  if (!sendTo(Worker, buildInit(Ctx, Worker, Workers, Map)))
    return false;
  std::string Payload;
  MessageReader M;
  return recvExpect(Worker, Msg::Ok, Payload, M);
}

bool DistBackend::syncStore(const SearchContext &Ctx, unsigned Worker) {
  SnapshotWriter W = openMessage(Msg::StoreSync);
  saveShardedStore(W, *Ctx.Store);
  return sendTo(Worker, sealMessage(W)); // Ack-less.
}

void DistBackend::prepare(SearchContext &Ctx) {
  unsigned Shards = Ctx.Store->shardCount();
  SetCapacityPerShard =
      std::max<uint64_t>(32, uint64_t(HashCapacity) / Shards);

  // The worker replicas' tier budgets: SearchSession::storeTierConfig's
  // math over the same options, shipped as scalars so replica stores
  // seal and spill on exactly the coordinator's schedule.
  TierByteBudget = TierWindowBudget = TierPinnedBytes = 0;
  if (storeCompressionEnabled(*Ctx.Opts)) {
    TierByteBudget = Ctx.Opts->MemoryLimitBytes * 6 / 10;
    unsigned ShardCount = std::max(1u, Ctx.Opts->Shards);
    if (Ctx.Opts->WindowStoreBytes)
      TierWindowBudget = Ctx.Opts->WindowStoreBytes;
    else if (TierByteBudget)
      TierWindowBudget =
          std::max<uint64_t>(uint64_t(64) << 10, TierByteBudget / 8) /
          ShardCount;
    if (!Ctx.Opts->SpillDir.empty())
      TierPinnedBytes = Ctx.Opts->PinnedStoreBytes;
  }

  if (Loopback)
    while (unsigned(Links.size()) < InitialWorkers)
      spawnLoopbackWorker();
  if (Links.empty()) {
    markBroken(0, "distributed cluster has no workers");
    return;
  }

  unsigned Workers = unsigned(Links.size());
  Owner.resize(Shards);
  for (unsigned S = 0; S != Shards; ++S)
    Owner[S] = S % Workers;

  // Init every worker (send all first: staging runs in parallel on the
  // virtual workers), then replicate the store - empty on a fresh run,
  // fully populated on the restore path, one code path either way.
  for (unsigned I = 0; I != Workers; ++I)
    if (!sendTo(I, buildInit(Ctx, I, Workers, Owner)))
      return;
  for (unsigned I = 0; I != Workers; ++I) {
    std::string Payload;
    MessageReader M;
    if (!recvExpect(I, Msg::Ok, Payload, M))
      return;
  }
  for (unsigned I = 0; I != Workers; ++I)
    if (!syncStore(Ctx, I))
      return;
  IdBase = 0;
  LastAux = 0;
  MaxWorkerBytes = 0;
}

void DistBackend::maybeReshard(const SearchContext &Ctx) {
  unsigned Current = unsigned(Links.size());
  unsigned Target = ReshardTarget.exchange(0, std::memory_order_relaxed);
  if (Cluster.WorkerByteBudget && MaxWorkerBytes > Cluster.WorkerByteBudget)
    Target = std::max(Target, Current + 1);
  unsigned Cap =
      Cluster.MaxWorkers ? Cluster.MaxWorkers : ShardedStore::MaxShards;
  Target = std::min(Target, Cap);
  if (Target <= Current)
    return; // Grow-only; shrink would orphan replicas mid-sweep.

  double Start = Ctx.Clock ? Ctx.Clock->seconds() : 0;

  // Acquire the joiners' links. A channel-fed cluster can only grow as
  // far as joiners are actually waiting; falling short is not an error
  // - the sweep continues at the size we have and retries at the next
  // boundary if the policy still wants more.
  while (unsigned(Links.size()) < Target) {
    if (Loopback) {
      spawnLoopbackWorker();
    } else if (Cluster.JoinPoll) {
      std::unique_ptr<ShardChannel> Ch = Cluster.JoinPoll();
      if (!Ch)
        break;
      Links.push_back(WorkerLink{std::move(Ch), std::thread()});
    } else {
      break;
    }
  }
  unsigned NewW = unsigned(Links.size());
  if (NewW == Current)
    return;

  // Bring the joiners up to date: identity + staging against the
  // *current* map (they own nothing yet), then the full store replica.
  for (unsigned I = Current; I != NewW; ++I)
    if (!initWorker(Ctx, I, NewW, Owner) || !syncStore(Ctx, I))
      return;

  // Stream every shard whose owner changes under the new map: its
  // uniqueness set leaves the old owner (Drop) and lands on the new
  // one as a raw snapshot section - no decode on the coordinator.
  std::vector<uint32_t> NewOwner(Owner.size());
  for (unsigned S = 0; S != Owner.size(); ++S)
    NewOwner[S] = S % NewW;
  for (unsigned S = 0; S != Owner.size(); ++S) {
    if (Owner[S] == NewOwner[S])
      continue;
    SnapshotWriter F = openMessage(Msg::SetFetch);
    F.u32(S);
    F.u8(1);
    if (!sendTo(Owner[S], sealMessage(F)))
      return;
    std::string Payload;
    MessageReader M;
    if (!recvExpect(Owner[S], Msg::SetBytes, Payload, M))
      return;
    std::string_view Bytes = M.rest();
    SnapshotWriter Ins = openMessage(Msg::SetInstall);
    Ins.u32(S);
    Ins.bytes(Bytes.data(), Bytes.size());
    if (!sendTo(NewOwner[S], sealMessage(Ins)))
      return;
    std::string AckPayload;
    MessageReader Ack;
    if (!recvExpect(NewOwner[S], Msg::Ok, AckPayload, Ack))
      return;
  }

  // Publish the new geometry; the next batch runs 1->N elastically.
  SnapshotWriter OW = openMessage(Msg::Owners);
  OW.u32(NewW);
  writeOwnerMap(OW, NewOwner);
  std::string OwnersPayload = sealMessage(OW);
  for (unsigned I = 0; I != NewW; ++I)
    if (!sendTo(I, OwnersPayload))
      return;
  Owner = std::move(NewOwner);
  ++Migrations;
  if (Ctx.Clock)
    MigrationSeconds += Ctx.Clock->seconds() - Start;
}

LevelOutcome DistBackend::runLevel(SearchContext &Ctx, uint64_t LevelCost,
                                   LevelTasks &Tasks) {
  LevelOutcome Out;
  if (Broken) {
    Out.Abort = true;
    Out.AbortReason = BrokenWhy;
    return Out;
  }
  maybeReshard(Ctx); // Level boundaries are the only reshard points.
  if (Broken) {
    Out.Abort = true;
    Out.AbortReason = BrokenWhy;
    return Out;
  }

  const SynthOptions &Opts = *Ctx.Opts;
  uint32_t LevelBegin = uint32_t(Ctx.Store->size());
  while (Tasks.fill(Batch, BatchTasks)) {
    bool Continue = processBatch(Ctx, Out);
    IdBase += Batch.size();
    if (!Continue)
      break;
    if (Opts.TimeoutSeconds > 0 &&
        Ctx.Clock->seconds() > Opts.TimeoutSeconds) {
      Out.TimedOut = true;
      break;
    }
    if (Ctx.Cancel && Ctx.Cancel->load(std::memory_order_relaxed)) {
      Out.Cancelled = true;
      break;
    }
  }

  // Only a cleanly completed level becomes a boundary on the replicas.
  // A timed-out or cancelled partial level is either rolled back (the
  // session truncates and we rebroadcast via rebuildFromStore) or
  // terminal - in both cases the replicas' missing setLevel/seal is
  // never observed.
  if (!Out.TimedOut && !Out.Cancelled && !Out.Abort && !Broken) {
    SnapshotWriter W = openMessage(Msg::LevelEnd);
    W.u64(LevelCost);
    W.u32(LevelBegin);
    W.u32(uint32_t(Ctx.Store->size()));
    W.u8(Ctx.Store->compressed() ? 1 : 0);
    std::string Payload = sealMessage(W);
    for (unsigned I = 0; I != Links.size(); ++I)
      if (!sendTo(I, Payload))
        break;
    if (!Broken)
      collectLevelAcks();
    if (Broken) {
      Out.Abort = true;
      Out.AbortReason = BrokenWhy;
    }
  }
  return Out;
}

bool DistBackend::collectLevelAcks() {
  LastAux = 0;
  MaxWorkerBytes = 0;
  for (unsigned I = 0; I != Links.size(); ++I) {
    std::string Payload;
    MessageReader M;
    if (!recvExpect(I, Msg::LevelAck, Payload, M))
      return false;
    uint64_t StoreBytes = 0, Aux = 0;
    if (!M.r().u64(StoreBytes) || !M.r().u64(Aux)) {
      markBroken(I, "distributed worker " + std::to_string(I) +
                        " failed (corrupt message)");
      return false;
    }
    LastAux += Aux;
    MaxWorkerBytes = std::max(MaxWorkerBytes, StoreBytes + Aux);
  }
  return true;
}

bool DistBackend::processBatch(SearchContext &Ctx, LevelOutcome &Out) {
  const SynthOptions &Opts = *Ctx.Opts;
  ShardedStore &Store = *Ctx.Store;
  size_t Count = Batch.size();
  size_t Words = Ctx.U->csWords();
  bool Route = Opts.UniquenessCheck || Store.shardCount() > 1;
  unsigned Workers = unsigned(Links.size());

  auto Fail = [&]() {
    Out.Abort = true;
    Out.AbortReason = BrokenWhy;
    return false;
  };
  auto Corrupt = [&](unsigned I) {
    markBroken(I, "distributed worker " + std::to_string(I) +
                      " failed (corrupt message)");
    return Fail();
  };

  // Phase 1: broadcast the batch; each worker generates its contiguous
  // rank slice (the generate kernel, split by rank).
  {
    SnapshotWriter GB = openMessage(Msg::GenBatch);
    GB.u64(IdBase);
    GB.u32(uint32_t(Count));
    for (const Provenance &P : Batch)
      writeTask(GB, P);
    std::string Payload = sealMessage(GB);
    for (unsigned I = 0; I != Workers; ++I)
      if (!sendTo(I, Payload))
        return Fail();
  }

  // Phase 2: collect GenOuts and route each cross-owner candidate to
  // its owner - the hub step of the all-to-all. Concatenating slices
  // in worker order keeps each destination's list rank-ascending,
  // which the workers' merge relies on.
  std::vector<CandList> ToWorker(Workers);
  for (unsigned I = 0; I != Workers; ++I) {
    std::string Payload;
    MessageReader M;
    if (!recvExpect(I, Msg::GenOut, Payload, M))
      return Fail();
    uint64_t GenOps = 0;
    CandList L;
    if (!M.r().u64(GenOps) || !readCandList(M.r(), L, Words))
      return Corrupt(I);
    Out.Ops += GenOps;
    for (size_t K = 0; K != L.size(); ++K) {
      uint32_t Rank = L.Ranks[K];
      if (Rank >= Count)
        return Corrupt(I);
      unsigned Shard = Route ? Store.shardOfHash(L.Hashes[K]) : 0;
      CandList &D = ToWorker[Owner[Shard]];
      D.Ranks.push_back(Rank);
      D.Hashes.push_back(L.Hashes[K]);
      D.Words.insert(D.Words.end(), L.Words.begin() + K * Words,
                     L.Words.begin() + (K + 1) * Words);
      ++ExchangedRows;
    }
  }
  Out.Candidates += Count;

  // Phase 3: deliver each worker its owned candidates (always, even
  // empty - the WinnerRep is the uniqueness/check barrier).
  for (unsigned I = 0; I != Workers; ++I) {
    SnapshotWriter E = openMessage(Msg::ExchIn);
    writeCandList(E, ToWorker[I], Words);
    if (!sendTo(I, sealMessage(E)))
      return Fail();
  }

  // Phase 4: scatter the winner reports back onto batch ranks. Reps
  // keeps every report's CS words alive for the compaction below.
  if (WinnerFlag.size() < Count) {
    WinnerFlag.resize(Count);
    WinnerHash.resize(Count);
    WinnerCs.resize(Count);
  }
  std::fill_n(WinnerFlag.begin(), Count, uint8_t(0));
  std::vector<CandList> Reps(Workers);
  bool AnyFull = false;
  uint64_t FoundNow = UINT64_MAX;
  for (unsigned I = 0; I != Workers; ++I) {
    std::string Payload;
    MessageReader M;
    if (!recvExpect(I, Msg::WinnerRep, Payload, M))
      return Fail();
    uint8_t SetFull = 0;
    uint64_t FoundRank = UINT64_MAX;
    if (!M.r().u8(SetFull) || !M.r().u64(FoundRank) ||
        !readCandList(M.r(), Reps[I], Words))
      return Corrupt(I);
    if (FoundRank != UINT64_MAX &&
        (FoundRank < IdBase || FoundRank - IdBase >= Count))
      return Corrupt(I);
    if (SetFull)
      AnyFull = true;
    FoundNow = std::min(FoundNow, FoundRank);
    const CandList &L = Reps[I];
    for (size_t K = 0; K != L.size(); ++K) {
      uint32_t Rank = L.Ranks[K];
      if (Rank >= Count || WinnerFlag[Rank])
        return Corrupt(I);
      WinnerFlag[Rank] = 1;
      WinnerHash[Rank] = L.Hashes[K];
      WinnerCs[Rank] = L.Words.data() + K * Words;
    }
  }
  if (AnyFull) {
    // Same point as the in-process pipeline: abort before the check
    // phase's results are consumed, so no satisfier is recorded.
    Out.Abort = true;
    Out.AbortReason = "uniqueness hash set exhausted";
    return false;
  }
  if (!Out.FoundSatisfier && FoundNow != UINT64_MAX) {
    Out.FoundSatisfier = true;
    Out.Satisfier = Batch[size_t(FoundNow - IdBase)];
  }

  // Phase 5: the exchange pass, verbatim from the in-process pipeline
  // - walk winners in candidate-rank order on the authoritative store,
  // assigning each its global id (the next append rank) and a row in
  // its owner shard. The row-winning subset, in the same order, is the
  // Commit that keeps every replica bit-identical.
  uint64_t Winners = 0;
  CandList Commit;
  for (size_t T = 0; T != Count; ++T) {
    if (!WinnerFlag[T])
      continue;
    ++Winners;
    unsigned OwnerShard = Route ? Store.shardOfHash(WinnerHash[T]) : 0;
    if (!Store.shardFull(OwnerShard)) {
      uint32_t Row = Store.reserveRow(OwnerShard);
      if (Route)
        Store.writeRow(Row, WinnerCs[T], Batch[T], WinnerHash[T]);
      else
        Store.writeRow(Row, WinnerCs[T], Batch[T]);
      Commit.Ranks.push_back(uint32_t(T));
      Commit.Hashes.push_back(WinnerHash[T]);
      Commit.Words.insert(Commit.Words.end(), WinnerCs[T],
                          WinnerCs[T] + Words);
    } else {
      Store.noteDropped(OwnerShard);
      Out.CacheFilled = true;
    }
  }
  Out.Unique += Winners;
  if (!Commit.empty()) {
    SnapshotWriter CW = openMessage(Msg::Commit);
    writeCandList(CW, Commit, Words);
    std::string Payload = sealMessage(CW);
    for (unsigned I = 0; I != Workers; ++I)
      if (!sendTo(I, Payload))
        return Fail();
  }
  if (Out.CacheFilled && !Opts.EnableOnTheFly) {
    Out.Abort = true; // Paper behaviour: an immediate OOM error.
    return false;
  }
  return true;
}

uint64_t DistBackend::auxBytesUsed() const { return LastAux; }

void DistBackend::addBackendStats(SynthStats &Stats) const {
  Stats.DistWorkers = unsigned(Links.size());
  Stats.DistMigrations += Migrations;
  Stats.DistMigrationSeconds += MigrationSeconds;
  Stats.DistExchangedRows += ExchangedRows;
  uint64_t Bytes = 0;
  for (const WorkerLink &L : Links)
    if (L.Ch)
      Bytes += L.Ch->bytesSent() + L.Ch->bytesReceived();
  Stats.DistExchangedBytes += Bytes;
}

void DistBackend::saveState(SnapshotWriter &W) const {
  // Byte-compatible with BatchedBackend's "batched" section, so dist
  // snapshots restore on any resumable backend and vice versa: the
  // shard sets are fetched from their owners and spliced in verbatim
  // (WarpHashSet::save sections are position-independent). A worker
  // failure mid-fetch truncates the section, which the restore side
  // rejects - fail closed, never a half-right snapshot.
  DistBackend &Self = const_cast<DistBackend &>(*this);
  size_t Section = W.beginSection("batched");
  W.u64(IdBase);
  W.u32(uint32_t(Owner.size()));
  for (unsigned S = 0; S != unsigned(Owner.size()); ++S) {
    SnapshotWriter F = openMessage(Msg::SetFetch);
    F.u32(S);
    F.u8(0); // Keep: saving must not disturb the live sweep.
    if (!Self.sendTo(Owner[S], sealMessage(F)))
      break;
    std::string Payload;
    MessageReader M;
    if (!Self.recvExpect(Owner[S], Msg::SetBytes, Payload, M))
      break;
    std::string_view Bytes = M.rest();
    W.bytes(Bytes.data(), Bytes.size());
  }
  W.endSection(Section);
}

bool DistBackend::loadState(SnapshotReader &R, SearchContext &Ctx) {
  if (Broken || !R.enterSection("batched"))
    return false;
  uint64_t Base = 0;
  uint32_t Shards = 0;
  if (!R.u64(Base) || !R.u32(Shards) ||
      Shards != Ctx.Store->shardCount() || Shards != Owner.size()) {
    R.markFailed();
    return false;
  }
  for (unsigned S = 0; S != Shards; ++S) {
    // Validate locally (restore() rejects malformed sections), then
    // re-serialize - byte-identical by construction - and install on
    // the shard's owner.
    std::unique_ptr<gpusim::WarpHashSet> Set =
        gpusim::WarpHashSet::restore(R);
    if (!Set || Set->keyWords() != Ctx.U->csWords()) {
      R.markFailed();
      return false;
    }
    SnapshotWriter Body;
    Set->save(Body);
    SnapshotWriter Ins = openMessage(Msg::SetInstall);
    Ins.u32(S);
    Ins.bytes(Body.buffer().data(), Body.buffer().size());
    if (!sendTo(Owner[S], sealMessage(Ins)))
      return false;
    std::string Payload;
    MessageReader M;
    if (!recvExpect(Owner[S], Msg::Ok, Payload, M))
      return false;
  }
  if (!R.leaveSection())
    return false;
  IdBase = Base;
  return true;
}

void DistBackend::rebuildFromStore(SearchContext &Ctx,
                                   uint64_t NextCandidateId) {
  IdBase = NextCandidateId;
  // The session already truncated the authoritative store to the last
  // boundary; replicas follow, then rebuild their owned shards' sets
  // from the surviving rows (BatchedBackend::rebuildFromStore, split
  // by ownership).
  SnapshotWriter W = openMessage(Msg::Truncate);
  W.u64(uint64_t(Ctx.Store->size()));
  W.u64(NextCandidateId);
  unsigned Shards = Ctx.Store->shardCount();
  W.u32(Shards);
  for (unsigned S = 0; S != Shards; ++S)
    W.u32(uint32_t(Ctx.Store->shardRows(S)));
  std::string Payload = sealMessage(W);
  for (unsigned I = 0; I != Links.size(); ++I)
    if (!sendTo(I, Payload))
      return;
}
