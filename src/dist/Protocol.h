//===- dist/Protocol.h - Coordinator/worker message protocol -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message vocabulary of the distributed execution mode (DESIGN.md
/// Sec. 13), spoken over dist/Channel.h between the coordinator
/// (dist/Coordinator.h) and shard workers (dist/Worker.h). Every
/// message reuses the serve/Wire payload discipline: a snapshot stream
/// (core/Snapshot.h) of kind "dist" - magic + format version, one type
/// byte, the type's fields, checksum trailer - so a truncated,
/// corrupted or foreign-version message is rejected fail-closed by the
/// same machinery that guards snapshots and network frames.
///
/// The conversation is a star: the coordinator drives, workers react.
/// Per batch of one cost level:
///
///   GenBatch  C->W  the batch's tasks + id base; each worker
///                   generates its contiguous rank slice
///   GenOut    W->C  candidates owned by *other* workers' shards
///                   (the all-to-all's first half, via the hub)
///   ExchIn    C->W  candidates this worker's shards own, collected
///                   from the other workers' GenOuts
///   WinnerRep W->C  min-id uniqueness winners + satisfier rank
///   Commit    C->W  the winners that got rows, in candidate-rank
///                   order, so every replica appends identically
///
/// plus lifecycle (Init/StoreSync/Owners/LevelEnd/Truncate/Shutdown)
/// and migration/persistence traffic (SetFetch/SetInstall with raw
/// WarpHashSet snapshot sections). Candidate lists travel as struct-
/// of-arrays (ranks, hashes, CS words) - the wire twin of the batched
/// pipeline's task vectors.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_DIST_PROTOCOL_H
#define PARESY_DIST_PROTOCOL_H

#include "core/LanguageCache.h"
#include "core/Snapshot.h"
#include "core/Synthesizer.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace paresy {
namespace dist {

/// Message types. Coordinator-to-worker types live below 16,
/// worker-to-coordinator types at 16 and above.
enum class Msg : uint8_t {
  // Coordinator -> worker.
  Init = 1,      ///< Identity, spec, options, budgets, ownership map.
  StoreSync = 2, ///< Full ShardedStore snapshot to replicate.
  Owners = 3,    ///< New worker count + shard ownership map.
  GenBatch = 4,  ///< One batch of level tasks to generate.
  ExchIn = 5,    ///< Candidates owned by the receiver's shards.
  Commit = 6,    ///< Row-winning candidates to append, rank order.
  LevelEnd = 7,  ///< Level boundary: record range, maybe seal.
  SetFetch = 8,  ///< Serialize one shard's uniqueness set.
  SetInstall = 9, ///< Install one shard's uniqueness set.
  Truncate = 10, ///< Roll back to a level boundary and rebuild sets.
  Shutdown = 11, ///< Clean exit.

  // Worker -> coordinator.
  GenOut = 16,    ///< Generate results: ops + cross-owner candidates.
  WinnerRep = 17, ///< Uniqueness/check results for owned candidates.
  LevelAck = 18,  ///< Byte accounting at a level boundary.
  SetBytes = 19,  ///< One shard set's snapshot section (SetFetch reply).
  Ok = 20,        ///< Generic acknowledgement.
  Err = 21,       ///< Fatal worker-side failure, with reason.
};

/// A candidate list in struct-of-arrays form. Ranks index the current
/// batch's tasks (candidate id = IdBase + rank); Words holds
/// Ranks.size() * CsWords row words, row-major.
struct CandList {
  std::vector<uint32_t> Ranks;
  std::vector<uint64_t> Hashes;
  std::vector<uint64_t> Words;

  size_t size() const { return Ranks.size(); }
  bool empty() const { return Ranks.empty(); }
  void clear() {
    Ranks.clear();
    Hashes.clear();
    Words.clear();
  }
};

/// Opens a message payload: snapshot header of kind "dist" plus the
/// type byte. Append fields, then seal with sealMessage().
SnapshotWriter openMessage(Msg Type);

/// Appends the checksum trailer and takes the finished payload.
std::string sealMessage(SnapshotWriter &W);

/// Verifies one received payload (checksum, envelope, type byte) and
/// exposes a bounded reader over its fields. The payload must outlive
/// the reader.
class MessageReader {
public:
  /// False on any structural problem - the caller's fail-closed path.
  bool open(std::string_view Payload);

  Msg type() const { return Type; }
  SnapshotReader &r() { return *R; }

  /// The unread tail of the payload (checksum trailer excluded): how
  /// raw snapshot sections (SetBytes) are spliced without a parse.
  std::string_view rest() const;

private:
  std::string_view Body;
  std::optional<SnapshotReader> R;
  Msg Type = Msg::Err;
};

/// Candidate-list fields (u32 count, ranks, hashes, then the row
/// words). \p CsWords is the fixed row width both sides were
/// initialised with.
void writeCandList(SnapshotWriter &W, const CandList &L, size_t CsWords);
bool readCandList(SnapshotReader &R, CandList &Out, size_t CsWords);

/// Shard-ownership map fields (u32 count + u32 owner per shard).
void writeOwnerMap(SnapshotWriter &W, const std::vector<uint32_t> &Owner);
bool readOwnerMap(SnapshotReader &R, std::vector<uint32_t> &Out);

/// The SynthOptions subset a worker needs to stage and sweep
/// identically, in serve/Wire's field order (cost tuple, budgets,
/// shards, error, semantic flag bits).
void writeDistOptions(SnapshotWriter &W, const SynthOptions &O);
bool readDistOptions(SnapshotReader &R, SynthOptions &O);

/// One level task (provenance) as wire fields.
void writeTask(SnapshotWriter &W, const Provenance &P);
bool readTask(SnapshotReader &R, Provenance &Out);

} // namespace dist
} // namespace paresy

#endif // PARESY_DIST_PROTOCOL_H
