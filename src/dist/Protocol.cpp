//===- dist/Protocol.cpp - Coordinator/worker message protocol ---------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dist/Protocol.h"

namespace paresy {
namespace dist {

namespace {

/// Same semantic flag bits as serve/Wire.cpp's client options, so the
/// two wire vocabularies cannot drift apart silently.
enum OptionFlagBits : uint8_t {
  FlagOnTheFly = 1 << 0,
  FlagSeedEpsilon = 1 << 1,
  FlagUniquenessCheck = 1 << 2,
  FlagUseGuideTable = 1 << 3,
  FlagPadToPowerOfTwo = 1 << 4,
  FlagCompressStore = 1 << 5,
  FlagPortfolio = 1 << 6,
};

} // namespace

SnapshotWriter openMessage(Msg Type) {
  SnapshotWriter W;
  writeSnapshotHeader(W, "dist");
  W.u8(uint8_t(Type));
  return W;
}

std::string sealMessage(SnapshotWriter &W) {
  appendSnapshotChecksum(W);
  return W.take();
}

bool MessageReader::open(std::string_view Payload) {
  if (!verifySnapshotChecksum(Payload))
    return false;
  Body = stripSnapshotChecksum(Payload);
  R.emplace(Body);
  if (!readSnapshotHeader(*R, "dist"))
    return false;
  uint8_t TypeByte = 0;
  if (!R->u8(TypeByte))
    return false;
  Type = Msg(TypeByte);
  return true;
}

std::string_view MessageReader::rest() const {
  if (!R)
    return {};
  return Body.substr(Body.size() - R->remaining());
}

void writeCandList(SnapshotWriter &W, const CandList &L, size_t CsWords) {
  W.u32(uint32_t(L.Ranks.size()));
  for (uint32_t Rank : L.Ranks)
    W.u32(Rank);
  for (uint64_t Hash : L.Hashes)
    W.u64(Hash);
  W.bytes(L.Words.data(), L.Ranks.size() * CsWords * sizeof(uint64_t));
}

bool readCandList(SnapshotReader &R, CandList &Out, size_t CsWords) {
  Out.clear();
  uint32_t Count = 0;
  if (!R.u32(Count))
    return false;
  // Every entry costs at least 4 + 8 + 8 * CsWords bytes; a count the
  // remaining payload cannot hold is structurally impossible. Reject
  // it before sizing any buffer (fail closed, never trust a length).
  uint64_t PerEntry = 4 + 8 + uint64_t(CsWords) * 8;
  if (uint64_t(Count) * PerEntry > R.remaining()) {
    R.markFailed();
    return false;
  }
  Out.Ranks.resize(Count);
  Out.Hashes.resize(Count);
  Out.Words.resize(size_t(Count) * CsWords);
  for (uint32_t &Rank : Out.Ranks)
    if (!R.u32(Rank))
      return false;
  for (uint64_t &Hash : Out.Hashes)
    if (!R.u64(Hash))
      return false;
  if (!Out.Words.empty() &&
      !R.bytes(Out.Words.data(), Out.Words.size() * sizeof(uint64_t)))
    return false;
  // Snapshot streams are little-endian by contract; the word block is
  // written verbatim, so big-endian hosts must swap. The repo's
  // supported hosts are little-endian (snapshot bytes() callers make
  // the same assumption), so nothing to do here.
  return true;
}

void writeOwnerMap(SnapshotWriter &W, const std::vector<uint32_t> &Owner) {
  W.u32(uint32_t(Owner.size()));
  for (uint32_t O : Owner)
    W.u32(O);
}

bool readOwnerMap(SnapshotReader &R, std::vector<uint32_t> &Out) {
  uint32_t Count = 0;
  if (!R.u32(Count))
    return false;
  // ShardedStore::MaxShards bounds any legitimate map.
  if (uint64_t(Count) * 4 > R.remaining() || Count == 0 || Count > 64) {
    R.markFailed();
    return false;
  }
  Out.resize(Count);
  for (uint32_t &O : Out)
    if (!R.u32(O))
      return false;
  return true;
}

void writeDistOptions(SnapshotWriter &W, const SynthOptions &O) {
  W.u32(O.Cost.Literal);
  W.u32(O.Cost.Question);
  W.u32(O.Cost.Star);
  W.u32(O.Cost.Concat);
  W.u32(O.Cost.Union);
  W.u64(O.MaxCost);
  W.u64(O.MemoryLimitBytes);
  W.u32(O.Shards);
  W.f64(O.TimeoutSeconds);
  W.f64(O.AllowedError);
  uint8_t Flags = 0;
  if (O.EnableOnTheFly)
    Flags |= FlagOnTheFly;
  if (O.SeedEpsilon)
    Flags |= FlagSeedEpsilon;
  if (O.UniquenessCheck)
    Flags |= FlagUniquenessCheck;
  if (O.UseGuideTable)
    Flags |= FlagUseGuideTable;
  if (O.PadToPowerOfTwo)
    Flags |= FlagPadToPowerOfTwo;
  if (O.CompressStore)
    Flags |= FlagCompressStore;
  if (O.Portfolio)
    Flags |= FlagPortfolio;
  W.u8(Flags);
}

bool readDistOptions(SnapshotReader &R, SynthOptions &O) {
  uint8_t Flags = 0;
  if (!R.u32(O.Cost.Literal) || !R.u32(O.Cost.Question) ||
      !R.u32(O.Cost.Star) || !R.u32(O.Cost.Concat) ||
      !R.u32(O.Cost.Union) || !R.u64(O.MaxCost) ||
      !R.u64(O.MemoryLimitBytes) || !R.u32(O.Shards) ||
      !R.f64(O.TimeoutSeconds) || !R.f64(O.AllowedError) || !R.u8(Flags))
    return false;
  O.EnableOnTheFly = Flags & FlagOnTheFly;
  O.SeedEpsilon = Flags & FlagSeedEpsilon;
  O.UniquenessCheck = Flags & FlagUniquenessCheck;
  O.UseGuideTable = Flags & FlagUseGuideTable;
  O.PadToPowerOfTwo = Flags & FlagPadToPowerOfTwo;
  O.CompressStore = Flags & FlagCompressStore;
  O.Portfolio = Flags & FlagPortfolio;
  return true;
}

void writeTask(SnapshotWriter &W, const Provenance &P) {
  W.u8(uint8_t(P.Kind));
  W.u8(uint8_t(P.Symbol));
  W.u32(P.Lhs);
  W.u32(P.Rhs);
}

bool readTask(SnapshotReader &R, Provenance &Out) {
  uint8_t Kind = 0, Symbol = 0;
  if (!R.u8(Kind) || !R.u8(Symbol) || !R.u32(Out.Lhs) || !R.u32(Out.Rhs))
    return false;
  if (Kind > uint8_t(CsOp::Union)) {
    R.markFailed();
    return false;
  }
  Out.Kind = CsOp(Kind);
  Out.Symbol = char(Symbol);
  return true;
}

} // namespace dist
} // namespace paresy
