//===- dist/Channel.cpp - Message channels between shard workers -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dist/Channel.h"

#include <cstring>

namespace paresy {
namespace dist {

ShardChannel::~ShardChannel() = default;

//===----------------------------------------------------------------------===//
// Loopback
//===----------------------------------------------------------------------===//

namespace {

/// Shared core of a loopback pair: two directed queues under one lock.
/// Direction d sends into Q[d] and receives from Q[1 - d].
struct LoopbackCore {
  std::mutex Lock;
  std::condition_variable Ready;
  std::deque<std::string> Q[2];
  bool Closed = false;
};

class LoopbackChannel final : public ShardChannel {
public:
  LoopbackChannel(std::shared_ptr<LoopbackCore> Core, int Dir)
      : Core(std::move(Core)), Dir(Dir) {}

  ~LoopbackChannel() override { close(); }

  bool send(std::string_view Bytes) override {
    if (Bytes.size() > MaxDistMessageBytes)
      return false;
    std::lock_guard<std::mutex> G(Core->Lock);
    if (Core->Closed)
      return false;
    Core->Q[Dir].emplace_back(Bytes);
    SentBytes += Bytes.size();
    Core->Ready.notify_all();
    return true;
  }

  bool recv(std::string &Bytes) override {
    std::unique_lock<std::mutex> G(Core->Lock);
    auto &Inbox = Core->Q[1 - Dir];
    Core->Ready.wait(G, [&] { return !Inbox.empty() || Core->Closed; });
    if (Inbox.empty())
      return false;
    Bytes = std::move(Inbox.front());
    Inbox.pop_front();
    RecvBytes += Bytes.size();
    return true;
  }

  void close() override {
    std::lock_guard<std::mutex> G(Core->Lock);
    Core->Closed = true;
    Core->Ready.notify_all();
  }

private:
  std::shared_ptr<LoopbackCore> Core;
  int Dir;
};

} // namespace

ChannelPair makeLoopbackPair() {
  auto Core = std::make_shared<LoopbackCore>();
  ChannelPair P;
  P.A = std::make_unique<LoopbackChannel>(Core, 0);
  P.B = std::make_unique<LoopbackChannel>(Core, 1);
  return P;
}

//===----------------------------------------------------------------------===//
// Socket framing
//===----------------------------------------------------------------------===//

bool SocketChannel::send(std::string_view Bytes) {
  if (!Sock.valid() || Bytes.size() > MaxDistMessageBytes)
    return false;
  unsigned char Header[4];
  uint32_t Size = uint32_t(Bytes.size());
  Header[0] = (unsigned char)(Size & 0xff);
  Header[1] = (unsigned char)((Size >> 8) & 0xff);
  Header[2] = (unsigned char)((Size >> 16) & 0xff);
  Header[3] = (unsigned char)((Size >> 24) & 0xff);
  if (!Sock.sendAll(Header, sizeof(Header)))
    return false;
  if (!Bytes.empty() && !Sock.sendAll(Bytes.data(), Bytes.size()))
    return false;
  SentBytes += Bytes.size();
  return true;
}

bool SocketChannel::recv(std::string &Bytes) {
  if (!Sock.valid())
    return false;
  unsigned char Header[4];
  if (!Sock.recvAll(Header, sizeof(Header)))
    return false;
  uint32_t Size = uint32_t(Header[0]) | (uint32_t(Header[1]) << 8) |
                  (uint32_t(Header[2]) << 16) | (uint32_t(Header[3]) << 24);
  if (uint64_t(Size) > MaxDistMessageBytes)
    return false;
  Bytes.resize(Size);
  if (Size != 0 && !Sock.recvAll(Bytes.data(), Size))
    return false;
  RecvBytes += Size;
  return true;
}

void SocketChannel::close() {
  if (!Sock.valid())
    return;
  Sock.shutdownBoth();
  Sock.close();
}

} // namespace dist
} // namespace paresy
