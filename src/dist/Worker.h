//===- dist/Worker.h - Shard-owner worker loop --------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker half of the distributed execution mode (DESIGN.md
/// Sec. 13). A shard worker is a pure reactive state machine over one
/// ShardChannel to the coordinator: it stages the query locally from
/// the Init message (universe and guide table are deterministic
/// functions of spec + options, so every replica stages identically),
/// replicates the sharded store from StoreSync snapshots, owns the
/// uniqueness sets of the shards the ownership map assigns it, and
/// then executes the batched pipeline's generate/unique/check locally
/// - generation split by contiguous candidate-rank slice, uniqueness
/// and checking split by shard ownership - while the coordinator runs
/// the rank-ordered exchange pass that assigns global ids.
///
/// Workers never enumerate levels and never decide row placement; they
/// apply the coordinator's Commit messages through the same
/// reserveRow/writeRow path every in-process backend uses, which is
/// what keeps all replicas - and therefore results - bit-identical at
/// every worker count.
///
/// The same loop serves both deployment shapes: a thread over a
/// loopback channel (the coordinator's in-process "virtual workers")
/// and a separate `paresy_cli --join` process over a socket.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_DIST_WORKER_H
#define PARESY_DIST_WORKER_H

namespace paresy {
namespace dist {

class ShardChannel;

/// Runs one shard worker over \p Link until a Shutdown message or a
/// channel/protocol failure. Returns true on a clean shutdown, false
/// when the loop ended on an error (the peer saw a best-effort Err
/// message or a closed channel either way - fail closed).
bool runWorker(ShardChannel &Link);

} // namespace dist
} // namespace paresy

#endif // PARESY_DIST_WORKER_H
