//===- dist/Worker.cpp - Shard-owner worker loop -------------------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "dist/Worker.h"

#include "core/Snapshot.h"
#include "dist/Channel.h"
#include "dist/Protocol.h"
#include "engine/Kernels.h"
#include "engine/Staging.h"
#include "gpusim/WarpHashSet.h"
#include "lang/CharSeq.h"
#include "lang/Universe.h"
#include "support/Bits.h"

#include <atomic>
#include <string>
#include <vector>

using namespace paresy;
using namespace paresy::dist;

namespace {

/// Serial for worker-local spill paths, so two virtual workers in one
/// process (or two joins of one host) never share a spill file.
std::atomic<uint64_t> SpillSerial{0};

/// One owned candidate of the current batch: its rank, routing hash,
/// CS pointer (into the slice buffer or the received exchange words)
/// and, after insertion, its uniqueness slot.
struct OwnedCand {
  uint32_t Rank = 0;
  uint64_t Hash = 0;
  const uint64_t *Cs = nullptr;
  int64_t Slot = -1;
};

struct WorkerState {
  ShardChannel &Link;

  unsigned Index = 0;
  unsigned WorkerCount = 1;
  SynthOptions Opts;
  std::shared_ptr<const engine::StagedQuery> Query;
  std::unique_ptr<CsAlgebra> Algebra;
  unsigned MistakeBudget = 0;
  size_t CsWords = 0;
  uint64_t SetCapacityPerShard = 32;
  StoreTierConfig Tier;
  std::unique_ptr<ShardedStore> Store;
  /// Index = shard; null for shards other workers own.
  std::vector<std::unique_ptr<gpusim::WarpHashSet>> Sets;
  std::vector<uint32_t> Owner;

  // Current batch (GenBatch .. Commit).
  uint64_t IdBase = 0;
  std::vector<Provenance> Tasks;
  std::vector<uint64_t> SliceCs; // (SliceEnd - SliceBegin) x CsWords.
  uint32_t SliceBegin = 0;
  uint32_t SliceEnd = 0;
  bool Route = false;
  std::vector<OwnedCand> Stash; ///< Own-owned candidates of my slice.
  CandList Received;            ///< ExchIn candidates (keeps Cs alive).
  std::vector<OwnedCand> Owned; ///< Stash + Received, rank order.

  explicit WorkerState(ShardChannel &Link) : Link(Link) {}

  bool fail(const std::string &Reason) {
    SnapshotWriter W = openMessage(Msg::Err);
    W.str(Reason);
    Link.send(sealMessage(W)); // Best effort; we exit either way.
    return false;
  }

  bool reply(SnapshotWriter &W) { return Link.send(sealMessage(W)); }

  bool replyOk() {
    SnapshotWriter W = openMessage(Msg::Ok);
    return reply(W);
  }

  bool handleInit(SnapshotReader &R);
  bool handleStoreSync(MessageReader &M);
  bool handleOwners(SnapshotReader &R);
  bool handleGenBatch(SnapshotReader &R);
  bool handleExchIn(SnapshotReader &R);
  bool handleCommit(SnapshotReader &R);
  bool handleLevelEnd(SnapshotReader &R);
  bool handleSetFetch(SnapshotReader &R);
  bool handleSetInstall(SnapshotReader &R);
  bool handleTruncate(SnapshotReader &R);

  bool run();
};

bool WorkerState::handleInit(SnapshotReader &R) {
  uint32_t Idx = 0, Count = 0;
  Spec S;
  std::string AlphabetChars, SpillDir;
  SynthOptions O;
  uint64_t Words = 0, SetCap = 0, ByteBudget = 0, WindowBudget = 0,
           PinnedBytes = 0;
  std::vector<uint32_t> Map;
  if (!R.u32(Idx) || !R.u32(Count) || Count == 0 || Idx >= Count)
    return fail("dist init rejected: malformed identity");
  {
    uint64_t N = 0;
    if (!R.u64(N) || N > R.remaining())
      return fail("dist init rejected: malformed examples");
    S.Pos.resize(size_t(N));
    for (std::string &E : S.Pos)
      if (!R.str(E))
        return fail("dist init rejected: malformed examples");
    if (!R.u64(N) || N > R.remaining())
      return fail("dist init rejected: malformed examples");
    S.Neg.resize(size_t(N));
    for (std::string &E : S.Neg)
      if (!R.str(E))
        return fail("dist init rejected: malformed examples");
  }
  if (!R.str(AlphabetChars) || !readDistOptions(R, O) || !R.str(SpillDir) ||
      !R.u64(Words) || !R.u64(SetCap) || !R.u64(ByteBudget) ||
      !R.u64(WindowBudget) || !R.u64(PinnedBytes) || !readOwnerMap(R, Map))
    return fail("dist init rejected: malformed fields");

  std::string Error;
  Alphabet Sigma = Alphabet::create(AlphabetChars, &Error);
  if (!Error.empty())
    return fail("dist init rejected: " + Error);

  // Stage locally: the universe and guide table are deterministic in
  // (spec, alphabet, options), so this replica is bit-identical to the
  // coordinator's.
  std::shared_ptr<const engine::StagedQuery> Q = engine::stage(S, Sigma, O);
  if (Q->immediate())
    return fail("dist init rejected: query resolves without search");
  if (Q->universe()->csWords() != Words)
    return fail("dist init rejected: universe width mismatch");

  Index = Idx;
  WorkerCount = Count;
  Opts = O;
  Query = std::move(Q);
  Algebra = std::make_unique<CsAlgebra>(*Query->universe(),
                                        Query->guideTable().get());
  MistakeBudget = Query->mistakeBudget();
  CsWords = size_t(Words);
  SetCapacityPerShard = SetCap;
  Tier = StoreTierConfig();
  Tier.Compress = storeCompressionEnabled(Opts);
  Tier.ByteBudget = ByteBudget;
  Tier.WindowBudget = WindowBudget;
  if (!SpillDir.empty()) {
    Tier.PinnedBytes = PinnedBytes;
    Tier.SpillPath = SpillDir + "/paresy-dist-w" + std::to_string(Index) +
                     "-" +
                     std::to_string(SpillSerial.fetch_add(1) + 1);
  }
  Owner = std::move(Map);
  Store.reset(); // Replicated by the StoreSync that always follows.
  Sets.clear();
  Sets.resize(Owner.size());
  for (unsigned Sh = 0; Sh != Owner.size(); ++Sh)
    if (Owner[Sh] == Index)
      Sets[Sh] = std::make_unique<gpusim::WarpHashSet>(
          CsWords, size_t(SetCapacityPerShard));
  IdBase = 0;
  return replyOk();
}

bool WorkerState::handleStoreSync(MessageReader &M) {
  if (!Query)
    return fail("dist store sync rejected: not initialised");
  std::unique_ptr<ShardedStore> Loaded = loadShardedStore(M.r(), Tier);
  if (!Loaded || M.r().failed())
    return fail("dist store sync rejected: malformed store snapshot");
  if (Loaded->csWords() != CsWords ||
      Loaded->shardCount() != Owner.size())
    return fail("dist store sync rejected: geometry mismatch");
  Store = std::move(Loaded);
  return true; // Ack-less; the next exchange surfaces failures.
}

bool WorkerState::handleOwners(SnapshotReader &R) {
  uint32_t Count = 0;
  std::vector<uint32_t> Map;
  if (!R.u32(Count) || Count == 0 || !readOwnerMap(R, Map) ||
      Map.size() != Owner.size() || Index >= Count)
    return fail("dist owners rejected: malformed map");
  WorkerCount = Count;
  Owner = std::move(Map);
  return true; // Ack-less; migrations end with a LevelEnd or batch.
}

bool WorkerState::handleGenBatch(SnapshotReader &R) {
  if (!Store || !Query)
    return fail("dist batch rejected: no replicated store");
  uint64_t Base = 0;
  uint32_t Count = 0;
  if (!R.u64(Base) || !R.u32(Count) ||
      uint64_t(Count) * 10 > R.remaining())
    return fail("dist batch rejected: malformed header");
  IdBase = Base;
  Tasks.resize(Count);
  for (Provenance &P : Tasks)
    if (!readTask(R, P))
      return fail("dist batch rejected: malformed task");

  const Universe &U = *Query->universe();
  const GuideTable *GT = Query->guideTable().get();
  Route = Opts.UniquenessCheck || Store->shardCount() > 1;
  SliceBegin = uint32_t(uint64_t(Index) * Count / WorkerCount);
  SliceEnd = uint32_t(uint64_t(Index + 1) * Count / WorkerCount);
  if (SliceCs.size() < size_t(SliceEnd - SliceBegin) * CsWords)
    SliceCs.resize(size_t(SliceEnd - SliceBegin) * CsWords);

  // Generate my contiguous rank slice; stash candidates my shards own,
  // forward the rest through the hub (GenOut).
  uint64_t GenOps = 0;
  Stash.clear();
  CandList Outbound;
  for (uint32_t T = SliceBegin; T != SliceEnd; ++T) {
    uint64_t *Dst = SliceCs.data() + size_t(T - SliceBegin) * CsWords;
    GenOps += engine::generateCs(Dst, Tasks[T], U, GT, *Store);
    uint64_t Hash = 0;
    unsigned Shard = 0;
    if (Route) {
      Hash = hashWords(Dst, CsWords);
      Shard = Store->shardOfHash(Hash);
      GenOps += CsWords;
    }
    if (Owner[Shard] == Index) {
      Stash.push_back({T, Hash, Dst, -1});
    } else {
      Outbound.Ranks.push_back(T);
      Outbound.Hashes.push_back(Hash);
      Outbound.Words.insert(Outbound.Words.end(), Dst, Dst + CsWords);
    }
  }
  SnapshotWriter W = openMessage(Msg::GenOut);
  W.u64(GenOps);
  writeCandList(W, Outbound, CsWords);
  return reply(W);
}

bool WorkerState::handleExchIn(SnapshotReader &R) {
  if (!Store || !Query)
    return fail("dist exchange rejected: no replicated store");
  if (!readCandList(R, Received, CsWords))
    return fail("dist exchange rejected: malformed candidates");

  // Merge the received candidates around my stash: rank slices are
  // contiguous per worker and the coordinator concatenates GenOuts in
  // worker order, so Received is ascending with a gap at my slice.
  Owned.clear();
  Owned.reserve(Stash.size() + Received.size());
  size_t RI = 0;
  for (; RI != Received.size() && Received.Ranks[RI] < SliceBegin; ++RI)
    Owned.push_back({Received.Ranks[RI], Received.Hashes[RI],
                     Received.Words.data() + RI * CsWords, -1});
  Owned.insert(Owned.end(), Stash.begin(), Stash.end());
  for (; RI != Received.size(); ++RI)
    Owned.push_back({Received.Ranks[RI], Received.Hashes[RI],
                     Received.Words.data() + RI * CsWords, -1});

  for (const OwnedCand &C : Owned)
    if (C.Rank >= Tasks.size())
      return fail("dist exchange rejected: rank out of batch");

  // Uniqueness inserts into my shards' sets (min-id winners). A full
  // set is reported after every insert ran - the full/not-full verdict
  // of a WarpHashSet depends on the distinct-key set, not on insert
  // order, so this stays deterministic.
  bool SetFull = false;
  if (Opts.UniquenessCheck) {
    for (OwnedCand &C : Owned) {
      unsigned Shard = Route ? Store->shardOfHash(C.Hash) : 0;
      if (Shard >= Owner.size() || Owner[Shard] != Index || !Sets[Shard])
        return fail("dist exchange rejected: candidate not mine");
      C.Slot = Sets[Shard]->insert(C.Cs, uint32_t(IdBase + C.Rank), C.Hash);
      if (C.Slot < 0)
        SetFull = true;
    }
  }

  SnapshotWriter W = openMessage(Msg::WinnerRep);
  if (SetFull) {
    W.u8(1);
    W.u64(UINT64_MAX);
    writeCandList(W, CandList(), CsWords);
    return reply(W);
  }

  // Winner flags and the specification check; ranks ascend, so the
  // first satisfying winner is the batch's minimum - the same answer
  // the in-process check kernel's atomic min computes.
  uint64_t FoundRank = UINT64_MAX;
  CandList Winners;
  for (const OwnedCand &C : Owned) {
    bool Winner = true;
    if (Opts.UniquenessCheck) {
      unsigned Shard = Route ? Store->shardOfHash(C.Hash) : 0;
      Winner = Sets[Shard]->isWinner(size_t(C.Slot),
                                     uint32_t(IdBase + C.Rank));
    }
    if (!Winner)
      continue;
    Winners.Ranks.push_back(C.Rank);
    Winners.Hashes.push_back(C.Hash);
    Winners.Words.insert(Winners.Words.end(), C.Cs, C.Cs + CsWords);
    if (FoundRank == UINT64_MAX &&
        Algebra->satisfies(C.Cs, MistakeBudget))
      FoundRank = IdBase + C.Rank;
  }
  W.u8(0);
  W.u64(FoundRank);
  writeCandList(W, Winners, CsWords);
  return reply(W);
}

bool WorkerState::handleCommit(SnapshotReader &R) {
  if (!Store)
    return fail("dist commit rejected: no replicated store");
  CandList L;
  if (!readCandList(R, L, CsWords))
    return fail("dist commit rejected: malformed candidates");
  // Apply in the coordinator's candidate-rank order through the same
  // reserveRow/writeRow path the in-process pipeline uses (reserved
  // rows never auto-seal, so seal schedules stay identical too).
  for (size_t I = 0; I != L.size(); ++I) {
    uint32_t Rank = L.Ranks[I];
    if (Rank >= Tasks.size())
      return fail("dist commit rejected: rank out of batch");
    const uint64_t *Cs = L.Words.data() + I * CsWords;
    unsigned Shard = Route ? Store->shardOfHash(L.Hashes[I]) : 0;
    if (Store->shardFull(Shard))
      return fail("dist commit rejected: replica diverged (shard full)");
    uint32_t Row = Store->reserveRow(Shard);
    if (Route)
      Store->writeRow(Row, Cs, Tasks[Rank], L.Hashes[I]);
    else
      Store->writeRow(Row, Cs, Tasks[Rank]);
  }
  return true; // Ack-less; LevelEnd's byte report closes the loop.
}

bool WorkerState::handleLevelEnd(SnapshotReader &R) {
  if (!Store)
    return fail("dist level end rejected: no replicated store");
  uint64_t Cost = 0;
  uint32_t Begin = 0, End = 0;
  uint8_t Seal = 0;
  if (!R.u64(Cost) || !R.u32(Begin) || !R.u32(End) || !R.u8(Seal))
    return fail("dist level end rejected: malformed fields");
  Store->setLevel(Cost, Begin, End);
  if (Seal)
    Store->sealLevel();
  uint64_t Aux = 0;
  for (const std::unique_ptr<gpusim::WarpHashSet> &Set : Sets)
    if (Set)
      Aux += Set->bytesUsed();
  SnapshotWriter W = openMessage(Msg::LevelAck);
  W.u64(Store->bytesUsed());
  W.u64(Aux);
  return reply(W);
}

bool WorkerState::handleSetFetch(SnapshotReader &R) {
  uint32_t Shard = 0;
  uint8_t Drop = 0;
  if (!R.u32(Shard) || !R.u8(Drop) || Shard >= Sets.size() || !Sets[Shard])
    return fail("dist set fetch rejected: no such shard set");
  SnapshotWriter W = openMessage(Msg::SetBytes);
  Sets[Shard]->save(W);
  if (Drop)
    Sets[Shard].reset();
  return reply(W);
}

bool WorkerState::handleSetInstall(SnapshotReader &R) {
  uint32_t Shard = 0;
  if (!R.u32(Shard) || Shard >= Sets.size())
    return fail("dist set install rejected: no such shard");
  std::unique_ptr<gpusim::WarpHashSet> Set = gpusim::WarpHashSet::restore(R);
  if (!Set || Set->keyWords() != CsWords)
    return fail("dist set install rejected: malformed set snapshot");
  Sets[Shard] = std::move(Set);
  return replyOk();
}

bool WorkerState::handleTruncate(SnapshotReader &R) {
  if (!Store)
    return fail("dist truncate rejected: no replicated store");
  uint64_t GlobalSize = 0, NextId = 0;
  uint32_t Shards = 0;
  if (!R.u64(GlobalSize) || !R.u64(NextId) || !R.u32(Shards) ||
      Shards != Store->shardCount())
    return fail("dist truncate rejected: malformed fields");
  std::vector<uint32_t> Rows(Shards);
  for (uint32_t &N : Rows)
    if (!R.u32(N))
      return fail("dist truncate rejected: malformed fields");
  Store->truncate(Rows, size_t(GlobalSize));
  IdBase = NextId;

  // Fresh sets, then re-admit the committed rows my shards own, keyed
  // by their global ids - exactly BatchedBackend::rebuildFromStore,
  // restricted to this worker's ownership.
  for (unsigned Sh = 0; Sh != Owner.size(); ++Sh)
    Sets[Sh] = Owner[Sh] == Index
                   ? std::make_unique<gpusim::WarpHashSet>(
                         CsWords, size_t(SetCapacityPerShard))
                   : nullptr;
  if (Opts.UniquenessCheck) {
    for (size_t Id = 0; Id != Store->size(); ++Id) {
      uint64_t Hash = Store->rowHash(Id);
      unsigned Shard = Store->shardOfHash(Hash);
      if (Owner[Shard] == Index)
        Sets[Shard]->insert(Store->cs(Id), uint32_t(Id), Hash);
    }
  }
  return true; // Ack-less.
}

bool WorkerState::run() {
  std::string Payload;
  while (Link.recv(Payload)) {
    MessageReader M;
    if (!M.open(Payload))
      return fail("dist message rejected: truncated or corrupt");
    bool Ok = false;
    switch (M.type()) {
    case Msg::Init:
      Ok = handleInit(M.r());
      break;
    case Msg::StoreSync:
      Ok = handleStoreSync(M);
      break;
    case Msg::Owners:
      Ok = handleOwners(M.r());
      break;
    case Msg::GenBatch:
      Ok = handleGenBatch(M.r());
      break;
    case Msg::ExchIn:
      Ok = handleExchIn(M.r());
      break;
    case Msg::Commit:
      Ok = handleCommit(M.r());
      break;
    case Msg::LevelEnd:
      Ok = handleLevelEnd(M.r());
      break;
    case Msg::SetFetch:
      Ok = handleSetFetch(M.r());
      break;
    case Msg::SetInstall:
      Ok = handleSetInstall(M.r());
      break;
    case Msg::Truncate:
      Ok = handleTruncate(M.r());
      break;
    case Msg::Shutdown:
      return true;
    default:
      Ok = fail("dist message rejected: unknown type");
      break;
    }
    if (!Ok)
      return false;
  }
  return false; // Channel died without a Shutdown.
}

} // namespace

bool paresy::dist::runWorker(ShardChannel &Link) {
  WorkerState S(Link);
  return S.run();
}
