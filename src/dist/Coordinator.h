//===- dist/Coordinator.h - Distributed shard-worker backend -----------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator half of the distributed execution mode (DESIGN.md
/// Sec. 13): an engine::Backend ("dist") that runs each cost level's
/// batched pipeline across N shard workers behind dist/Channel.h
/// links. The coordinator keeps the session-owned store as the
/// authoritative replica, enumerates level tasks exactly like every
/// in-process backend, broadcasts each batch, routes the workers'
/// cross-shard candidates (the all-to-all, via the hub), runs the
/// rank-ordered exchange pass that assigns dense global ids, and
/// commits the row winners back to every replica - so results are
/// bit-identical to the in-process backends at every worker count,
/// the same invariance bar the sharded store already meets.
///
/// Elasticity: requestReshard(N) (or a per-worker byte budget trip)
/// grows the cluster at the next level boundary - new workers are
/// initialised and store-synced, the affected shards' uniqueness sets
/// stream over as snapshot sections, and the sweep continues 1->N
/// without restarting. Worker loss is fail-closed: any channel or
/// protocol failure aborts the level before any partial global-id
/// assignment, and the session reports a clean OutOfMemory with the
/// worker named.
///
/// Two deployment shapes, one code path: inProcess() spawns pinned
/// "virtual worker" threads over loopback channels (the registry's
/// "dist" backend; also the test harness), overChannels() drives
/// remote `paresy_cli --join` processes over sockets.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_DIST_COORDINATOR_H
#define PARESY_DIST_COORDINATOR_H

#include "dist/Channel.h"
#include "dist/Protocol.h"
#include "engine/Backend.h"

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace paresy {
namespace dist {

/// Cluster-level knobs of a distributed backend.
struct DistClusterOptions {
  /// Per-worker resident-byte trip point (store replica + owned
  /// uniqueness sets, as reported by level-boundary acks): past it the
  /// coordinator grows the cluster by one worker at the next level
  /// boundary, when one is available. 0 disables the byte policy
  /// (explicit requestReshard still works).
  uint64_t WorkerByteBudget = 0;
  /// Upper bound on elastic growth; 0 means ShardedStore::MaxShards.
  unsigned MaxWorkers = 0;
  /// Source of elastic joiners for channel-fed clusters: polled at
  /// level boundaries when growth is wanted; returns null when no
  /// joiner is waiting. Loopback clusters spawn threads instead and
  /// ignore this.
  std::function<std::unique_ptr<ShardChannel>()> JoinPoll;
};

/// The "dist" backend: coordinator over N shard workers.
class DistBackend : public engine::Backend {
public:
  /// A cluster of \p Workers in-process virtual workers (threads over
  /// loopback channels), spawned lazily at prepare(). 0 selects the
  /// default of 2.
  static std::unique_ptr<DistBackend>
  inProcess(unsigned Workers, DistClusterOptions Cluster = {});

  /// A cluster over pre-connected channels (one per worker), e.g.
  /// accepted `paresy_cli --join` sockets.
  static std::unique_ptr<DistBackend>
  overChannels(std::vector<std::unique_ptr<ShardChannel>> Channels,
               DistClusterOptions Cluster = {});

  ~DistBackend() override;

  std::string_view name() const override { return "dist"; }
  size_t planCacheCapacity(const engine::SearchContext &Ctx,
                           uint64_t BudgetBytes) override;
  uint64_t planStoreBytes(const engine::SearchContext &Ctx,
                          uint64_t BudgetBytes) override;
  void prepare(engine::SearchContext &Ctx) override;
  engine::LevelOutcome runLevel(engine::SearchContext &Ctx,
                                uint64_t LevelCost,
                                engine::LevelTasks &Tasks) override;
  uint64_t auxBytesUsed() const override;
  void addBackendStats(SynthStats &Stats) const override;

  /// Resumable until a worker is lost: once the cluster is broken the
  /// session must not park on it (results could no longer be resumed
  /// bit-identically).
  bool supportsResume() const override { return !Broken; }
  void saveState(SnapshotWriter &W) const override;
  bool loadState(SnapshotReader &R, engine::SearchContext &Ctx) override;
  void rebuildFromStore(engine::SearchContext &Ctx,
                        uint64_t NextCandidateId) override;

  /// Requests growth to \p Workers at the next level boundary
  /// (grow-only; smaller or equal targets are ignored). Thread-safe.
  void requestReshard(unsigned Workers) {
    ReshardTarget.store(Workers, std::memory_order_relaxed);
  }

  /// Active workers (after prepare()).
  unsigned workerCount() const { return unsigned(Links.size()); }

  /// True once a worker was lost or a protocol error latched; the
  /// next level aborts with the failure's reason.
  bool broken() const { return Broken; }

private:
  struct WorkerLink {
    std::unique_ptr<ShardChannel> Ch;
    std::thread Thread; ///< Joinable only for virtual workers.
  };

  DistBackend(unsigned Workers, DistClusterOptions Cluster, bool Loopback);

  void markBroken(unsigned Worker, const std::string &Why);
  bool sendTo(unsigned Worker, const std::string &Payload);
  /// Receives one message from \p Worker and requires \p Expected;
  /// an Err message or any channel/decode failure latches Broken.
  bool recvExpect(unsigned Worker, Msg Expected, std::string &Payload,
                  MessageReader &M);
  void spawnLoopbackWorker();
  std::string buildInit(const engine::SearchContext &Ctx, unsigned Worker,
                        unsigned Workers,
                        const std::vector<uint32_t> &Map) const;
  bool initWorker(const engine::SearchContext &Ctx, unsigned Worker,
                  unsigned Workers, const std::vector<uint32_t> &Map);
  bool syncStore(const engine::SearchContext &Ctx, unsigned Worker);
  void maybeReshard(const engine::SearchContext &Ctx);
  bool processBatch(engine::SearchContext &Ctx,
                    engine::LevelOutcome &Out);
  bool collectLevelAcks();

  std::vector<WorkerLink> Links;
  bool Loopback = false;
  unsigned InitialWorkers = 2;
  DistClusterOptions Cluster;

  std::vector<uint32_t> Owner; ///< Shard -> owning worker.
  size_t HashCapacity = 32;
  uint64_t SetCapacityPerShard = 32;
  size_t BatchTasks;
  uint64_t IdBase = 0;

  // Tier numbers shipped to workers (the Session's storeTierConfig
  // math, replicated in prepare(); see Worker.cpp).
  uint64_t TierByteBudget = 0;
  uint64_t TierWindowBudget = 0;
  uint64_t TierPinnedBytes = 0;

  bool Broken = false;
  std::string BrokenWhy;
  std::atomic<unsigned> ReshardTarget{0};

  // Per-batch buffers (see processBatch).
  std::vector<Provenance> Batch;
  std::vector<uint8_t> WinnerFlag;
  std::vector<uint64_t> WinnerHash;
  std::vector<const uint64_t *> WinnerCs;

  // Level-boundary accounting from LevelAcks.
  uint64_t LastAux = 0;
  uint64_t MaxWorkerBytes = 0;

  // Stats.
  uint64_t Migrations = 0;
  double MigrationSeconds = 0;
  uint64_t ExchangedRows = 0;
};

} // namespace dist
} // namespace paresy

#endif // PARESY_DIST_COORDINATOR_H
