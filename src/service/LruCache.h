//===- service/LruCache.h - Bounded least-recently-used map ------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, exact LRU map used by the synthesis service for both its
/// result cache and its staged-artifact cache. Not thread-safe: the
/// service serializes access under its own mutex. Capacity 0 disables
/// the cache (get always misses, put is a no-op), which keeps the
/// "caching off" configuration on the same code path.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SERVICE_LRUCACHE_H
#define PARESY_SERVICE_LRUCACHE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace paresy {
namespace service {

/// Fixed-capacity map with least-recently-used eviction. get()
/// promotes to most-recently-used; put() evicts the LRU entry once the
/// capacity is exceeded and counts evictions.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
public:
  explicit LruCache(size_t Capacity) : Cap(Capacity) {}

  size_t size() const { return Map.size(); }
  size_t capacity() const { return Cap; }
  uint64_t evictions() const { return Evicted; }

  /// The value stored under \p K, promoted to most-recently-used, or
  /// null on a miss. The pointer is invalidated by the next put().
  Value *get(const Key &K) {
    auto It = Map.find(K);
    if (It == Map.end())
      return nullptr;
    Order.splice(Order.begin(), Order, It->second);
    return &It->second->second;
  }

  /// Inserts or overwrites the entry for \p K as most-recently-used.
  void put(const Key &K, Value V) {
    if (Cap == 0)
      return;
    auto It = Map.find(K);
    if (It != Map.end()) {
      It->second->second = std::move(V);
      Order.splice(Order.begin(), Order, It->second);
      return;
    }
    if (Map.size() == Cap) {
      Map.erase(Order.back().first);
      Order.pop_back();
      ++Evicted;
    }
    Order.emplace_front(K, std::move(V));
    Map.emplace(K, Order.begin());
  }

  /// Visits every entry, most-recently-used first, without promoting
  /// anything. For scans that select an entry by value (the service's
  /// delta-donor lookup); mutating the cache inside \p F is undefined.
  template <typename Fn> void forEach(Fn &&F) const {
    for (const Entry &E : Order)
      F(E.first, E.second);
  }

  /// Removes and returns the entry stored under \p K (not counted as
  /// an eviction - the caller takes ownership, e.g. to resume a parked
  /// session), or nothing on a miss.
  std::optional<Value> take(const Key &K) {
    auto It = Map.find(K);
    if (It == Map.end())
      return std::nullopt;
    Value Out = std::move(It->second->second);
    Order.erase(It->second);
    Map.erase(It);
    return Out;
  }

  /// Removes and returns the least-recently-used entry (counted as an
  /// eviction), or nothing when empty. For callers enforcing a budget
  /// beyond entry count, e.g. bytes.
  std::optional<std::pair<Key, Value>> evictOldest() {
    if (Order.empty())
      return std::nullopt;
    std::pair<Key, Value> Out = std::move(Order.back());
    Map.erase(Out.first);
    Order.pop_back();
    ++Evicted;
    return Out;
  }

private:
  using Entry = std::pair<Key, Value>;
  std::list<Entry> Order; // Front = most recently used.
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> Map;
  size_t Cap;
  uint64_t Evicted = 0;
};

} // namespace service
} // namespace paresy

#endif // PARESY_SERVICE_LRUCACHE_H
