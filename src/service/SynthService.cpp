//===- service/SynthService.cpp - Caching, coalescing synthesis service ------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SynthService.h"

#include "engine/Backend.h"

#include <algorithm>
#include <cassert>

using namespace paresy;
using namespace paresy::service;

SynthService::SynthService(ServiceOptions Opts)
    : Options(std::move(Opts)), Results(Options.ResultCacheCapacity),
      Staged(Options.StagedCacheCapacity) {
  Threads.reserve(Options.Workers);
  for (unsigned I = 0; I != Options.Workers; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

SynthService::~SynthService() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WorkReady.notify_all();
  SpaceReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

SynthService::ResultFuture SynthService::readyFuture(SynthResult R) {
  std::promise<SynthResult> P;
  P.set_value(std::move(R));
  return P.get_future().share();
}

SynthService::ResultFuture SynthService::submit(const Spec &S,
                                                const Alphabet &Sigma,
                                                const SynthOptions &Opts) {
  // Unknown backends answer first, exactly as synthesizeWith() does,
  // so the service is a drop-in for string-driven callers.
  if (!engine::hasBackend(Options.Backend)) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Submitted;
    ++Counters.Immediate;
    SynthResult R;
    R.Status = SynthStatus::InvalidInput;
    R.Message = "unknown backend '" + Options.Backend + "'";
    return readyFuture(std::move(R));
  }

  // Requests that need no search (invalid input, trivial specs) are
  // answered inline and never enter the caches: recomputing them is
  // cheaper than storing them, and validation must see the *original*
  // spec - canonicalization would erase exactly the duplicates that
  // make some specs invalid.
  SynthResult Fast;
  if (engine::resolveWithoutSearch(S, Sigma, Opts, Fast)) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Submitted;
    ++Counters.Immediate;
    return readyFuture(std::move(Fast));
  }

  Spec Canonical = canonicalSpec(S);
  std::string KeyText = canonicalQueryText(Canonical, Sigma, Opts);
  Fingerprint Key = fingerprintText(KeyText);

  std::unique_lock<std::mutex> Lock(M);
  ++Counters.Submitted;

  if (CachedResult *Hit = Results.get(Key);
      Hit && Hit->KeyText == KeyText) {
    ++Counters.Hits;
    return readyFuture(Hit->Result);
  }

  if (auto It = InFlight.find(Key);
      It != InFlight.end() && It->second->KeyText == KeyText) {
    ++Counters.Coalesced;
    return It->second->Future;
  }

  ++Counters.Misses;
  auto Req = std::make_shared<Request>();
  Req->Key = Key;
  Req->KeyText = std::move(KeyText);
  Req->Canonical = std::move(Canonical);
  Req->Sigma = Sigma;
  Req->Opts = Opts;
  Req->Future = Req->Promise.get_future().share();
  // Plain assignment: on the (2^-128) fingerprint collision with a
  // different in-flight query, the displaced request still completes
  // through its own future; only its coalescing window closes early.
  InFlight[Key] = Req;

  if (Options.Workers == 0) {
    Lock.unlock();
    execute(Req);
    return Req->Future;
  }

  SpaceReady.wait(Lock, [&] {
    return Queue.size() < std::max<size_t>(Options.MaxQueueDepth, 1) ||
           Stopping;
  });
  Queue.push_back(Req);
  Counters.QueueDepth = Queue.size();
  Counters.PeakQueueDepth =
      std::max(Counters.PeakQueueDepth, Counters.QueueDepth);
  Lock.unlock();
  WorkReady.notify_one();
  return Req->Future;
}

SynthResult SynthService::synthesize(const Spec &S, const Alphabet &Sigma,
                                     const SynthOptions &Opts) {
  return submit(S, Sigma, Opts).get();
}

std::vector<SynthResult>
SynthService::synthesizeAll(const std::vector<Spec> &Specs,
                            const Alphabet &Sigma,
                            const SynthOptions &Opts) {
  std::vector<ResultFuture> Futures;
  Futures.reserve(Specs.size());
  for (const Spec &S : Specs)
    Futures.push_back(submit(S, Sigma, Opts));
  std::vector<SynthResult> Out;
  Out.reserve(Specs.size());
  for (ResultFuture &F : Futures)
    Out.push_back(F.get());
  return Out;
}

ServiceStats SynthService::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  ServiceStats Copy = Counters;
  Copy.Evictions = Results.evictions();
  Copy.StagedBytes = StagedBytesTotal;
  Copy.QueueDepth = Queue.size();
  return Copy;
}

void SynthService::workerMain() {
  for (;;) {
    std::shared_ptr<Request> Req;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkReady.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, and fully drained.
      Req = std::move(Queue.front());
      Queue.pop_front();
      Counters.QueueDepth = Queue.size();
    }
    SpaceReady.notify_one();
    execute(Req);
  }
}

void SynthService::execute(const std::shared_ptr<Request> &Req) {
  // Staged-artifact reuse: requests that share a spec but differ in
  // sweep options (cost function, budgets, timeout) share the staged
  // universe and guide table.
  std::string StagedText =
      canonicalStagingText(Req->Canonical, Req->Sigma, Req->Opts);
  Fingerprint StagedKey = fingerprintText(StagedText);

  std::shared_ptr<const engine::StagedQuery> Base;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (CachedStaged *Hit = Staged.get(StagedKey);
        Hit && Hit->KeyText == StagedText) {
      Base = Hit->Query;
      ++Counters.StagedHits;
    } else {
      ++Counters.StagedMisses;
    }
  }
  std::shared_ptr<const engine::StagedQuery> Q =
      Base ? engine::restage(*Base, Req->Opts)
           : engine::stage(Req->Canonical, Req->Sigma, Req->Opts);

  engine::BackendConfig Config = Options.Kernels;
  if (Options.Workers > 0)
    Config.InlineKernels = true; // The request pool owns parallelism.
  std::unique_ptr<engine::Backend> B =
      engine::createBackend(Options.Backend, Config);
  assert(B && "backend existence was checked at submit");
  SynthResult R = engine::runStaged(*Q, *B);

  {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Searches;
    // Per-shard occupancy/overflow, aggregated across searches (the
    // skew signal an operator watches when raising --shards).
    if (R.Stats.ShardCount > 0) {
      Counters.ShardCount = R.Stats.ShardCount;
      if (Counters.ShardRows.size() < R.Stats.ShardRows.size())
        Counters.ShardRows.resize(R.Stats.ShardRows.size(), 0);
      if (Counters.ShardDropped.size() < R.Stats.ShardDropped.size())
        Counters.ShardDropped.resize(R.Stats.ShardDropped.size(), 0);
      for (size_t S = 0; S != R.Stats.ShardRows.size(); ++S)
        Counters.ShardRows[S] += R.Stats.ShardRows[S];
      for (size_t S = 0; S != R.Stats.ShardDropped.size(); ++S)
        Counters.ShardDropped[S] += R.Stats.ShardDropped[S];
    }
    // Timeout is the one wall-clock-dependent status: a re-run might
    // succeed, so replaying it from the cache would pin a transient
    // failure forever. Every other status is deterministic.
    if (R.Status != SynthStatus::Timeout)
      Results.put(Req->Key, CachedResult{Req->KeyText, R});
    if (!Q->immediate())
      putStaged(StagedKey,
                CachedStaged{std::move(StagedText), Q, Q->stagedBytes()});
    InFlight.erase(Req->Key);
  }
  Req->Promise.set_value(std::move(R));
}

void SynthService::putStaged(const Fingerprint &Key, CachedStaged Entry) {
  if (Options.StagedCacheCapacity == 0 ||
      Entry.Bytes > Options.StagedCacheBytes)
    return;

  // In-place replacement: swap the byte accounting, then trim in case
  // the entry grew.
  if (CachedStaged *Old = Staged.get(Key)) {
    StagedBytesTotal += Entry.Bytes - Old->Bytes;
    Staged.put(Key, std::move(Entry));
    while (StagedBytesTotal > Options.StagedCacheBytes) {
      std::optional<std::pair<Fingerprint, CachedStaged>> Evicted =
          Staged.evictOldest();
      if (!Evicted)
        break;
      StagedBytesTotal -= Evicted->second.Bytes;
    }
    return;
  }

  // Fresh insert: evict LRU-first until both budgets admit it. The
  // explicit count check keeps put() from evicting invisibly.
  while (Staged.size() + 1 > Options.StagedCacheCapacity ||
         StagedBytesTotal + Entry.Bytes > Options.StagedCacheBytes) {
    std::optional<std::pair<Fingerprint, CachedStaged>> Evicted =
        Staged.evictOldest();
    if (!Evicted)
      break;
    StagedBytesTotal -= Evicted->second.Bytes;
  }
  StagedBytesTotal += Entry.Bytes;
  Staged.put(Key, std::move(Entry));
}
