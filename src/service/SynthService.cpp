//===- service/SynthService.cpp - Caching, coalescing synthesis service ------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SynthService.h"

#include "engine/Backend.h"
#include "engine/DeltaStage.h"
#include "engine/Portfolio.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstdarg>
#include <cstdio>

using namespace paresy;
using namespace paresy::service;

SynthService::SynthService(ServiceOptions Opts)
    : Options(std::move(Opts)), Results(Options.ResultCacheCapacity),
      Staged(Options.StagedCacheCapacity),
      Sessions(Options.SessionParkCapacity) {
  Threads.reserve(Options.Workers);
  for (unsigned I = 0; I != Options.Workers; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

SynthService::~SynthService() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WorkReady.notify_all();
  SpaceReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

SynthService::ResultFuture SynthService::readyFuture(SynthResult R) {
  std::promise<SynthResult> P;
  P.set_value(std::move(R));
  return P.get_future().share();
}

namespace {

/// Shared admission logic of the service's two byte-budgeted LRUs
/// (staged artifacts, parked sessions). \p Entry must carry a Bytes
/// field. Rejects entries larger than the whole byte budget; replaces
/// in place with byte-delta accounting; otherwise evicts LRU-first
/// until both the entry-count and the byte budget admit the entry.
/// Returns true iff the entry was stored; evictions increment
/// \p Expired when given.
template <typename Entry>
bool putBudgeted(service::LruCache<Fingerprint, Entry, FingerprintHash>
                     &Cache,
                 uint64_t &BytesTotal, size_t MaxEntries,
                 uint64_t MaxBytes, uint64_t *Expired,
                 const Fingerprint &Key, Entry E) {
  if (MaxEntries == 0 || E.Bytes > MaxBytes)
    return false;

  auto EvictOne = [&] {
    std::optional<std::pair<Fingerprint, Entry>> Evicted =
        Cache.evictOldest();
    if (!Evicted)
      return false;
    BytesTotal -= Evicted->second.Bytes;
    if (Expired)
      ++*Expired;
    return true;
  };

  // In-place replacement: swap the byte accounting, then trim in case
  // the entry grew.
  if (Entry *Old = Cache.get(Key)) {
    BytesTotal += E.Bytes - Old->Bytes;
    Cache.put(Key, std::move(E));
    while (BytesTotal > MaxBytes && EvictOne()) {
    }
    return true;
  }

  // Fresh insert: evict LRU-first until both budgets admit it. The
  // explicit count check keeps put() from evicting invisibly.
  while ((Cache.size() + 1 > MaxEntries || BytesTotal + E.Bytes > MaxBytes) &&
         EvictOne()) {
  }
  BytesTotal += E.Bytes;
  Cache.put(Key, std::move(E));
  return true;
}

} // namespace

SynthService::ResultFuture SynthService::submit(const Spec &S,
                                                const Alphabet &Sigma,
                                                const SynthOptions &Opts) {
  return submit(S, Sigma, Opts, SubmitContext{});
}

void SynthService::bumpTenantLocked(const std::string &Tenant) {
  if (Tenant.empty())
    return;
  auto It = std::find_if(
      Counters.TenantRequests.begin(), Counters.TenantRequests.end(),
      [&](const auto &E) { return E.first == Tenant; });
  if (It == Counters.TenantRequests.end())
    Counters.TenantRequests.emplace_back(Tenant, 1);
  else
    ++It->second;
}

void SynthService::attachWaiter(Request &Req,
                                const std::shared_ptr<Request> &Owner,
                                const SubmitContext &Ctx) {
  if (Ctx.Sink) {
    Ctx.Sink->Owner = Owner;
    Req.Sinks.push_back(Ctx.Sink);
  } else {
    Req.HasPlainWaiter = true;
  }
  // A fresh waiter revives a search every earlier waiter abandoned.
  Req.ParkRequest.store(false, std::memory_order_relaxed);
}

void SynthService::abandon(const std::shared_ptr<ClientSink> &Sink) {
  if (!Sink)
    return;
  Sink->Gone.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(M);
  std::shared_ptr<Request> Req =
      std::static_pointer_cast<Request>(Sink->Owner.lock());
  if (!Req || Req->HasPlainWaiter)
    return;
  bool AllGone = !Req->Sinks.empty();
  for (const std::shared_ptr<ClientSink> &S : Req->Sinks)
    if (!S->Gone.load(std::memory_order_relaxed)) {
      AllGone = false;
      break;
    }
  if (AllGone)
    Req->ParkRequest.store(true, std::memory_order_relaxed);
}

SynthService::ResultFuture SynthService::submit(const Spec &S,
                                                const Alphabet &Sigma,
                                                const SynthOptions &Opts,
                                                const SubmitContext &Ctx) {
  // Unknown backends answer first, exactly as synthesizeWith() does,
  // so the service is a drop-in for string-driven callers.
  if (!engine::hasBackend(Options.Backend)) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Submitted;
    ++Counters.Immediate;
    bumpTenantLocked(Ctx.Tenant);
    SynthResult R;
    R.Status = SynthStatus::InvalidInput;
    R.Message = engine::unknownBackendMessage(Options.Backend);
    return readyFuture(std::move(R));
  }

  // Requests that need no search (invalid input, trivial specs) are
  // answered inline and never enter the caches: recomputing them is
  // cheaper than storing them, and validation must see the *original*
  // spec - canonicalization would erase exactly the duplicates that
  // make some specs invalid.
  SynthResult Fast;
  if (engine::resolveWithoutSearch(S, Sigma, Opts, Fast)) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Submitted;
    ++Counters.Immediate;
    bumpTenantLocked(Ctx.Tenant);
    return readyFuture(std::move(Fast));
  }

  Spec Canonical = canonicalSpec(S);
  std::string KeyText = canonicalQueryText(Canonical, Sigma, Opts);
  Fingerprint Key = fingerprintText(KeyText);

  std::unique_lock<std::mutex> Lock(M);
  ++Counters.Submitted;
  bumpTenantLocked(Ctx.Tenant);

  if (CachedResult *Hit = Results.get(Key);
      Hit && Hit->KeyText == KeyText) {
    ++Counters.Hits;
    return readyFuture(Hit->Result);
  }

  if (auto It = InFlight.find(Key);
      It != InFlight.end() && It->second->KeyText == KeyText) {
    ++Counters.Coalesced;
    attachWaiter(*It->second, It->second, Ctx);
    return It->second->Future;
  }

  ++Counters.Misses;
  auto Req = std::make_shared<Request>();
  Req->Key = Key;
  Req->KeyText = std::move(KeyText);
  Req->Canonical = std::move(Canonical);
  Req->Sigma = Sigma;
  Req->Opts = Opts;
  Req->Future = Req->Promise.get_future().share();
  attachWaiter(*Req, Req, Ctx);
  // Plain assignment: on the (2^-128) fingerprint collision with a
  // different in-flight query, the displaced request still completes
  // through its own future; only its coalescing window closes early.
  InFlight[Key] = Req;

  if (Options.Workers == 0) {
    Lock.unlock();
    execute(Req);
    return Req->Future;
  }

  SpaceReady.wait(Lock, [&] {
    return Queue.size() < std::max<size_t>(Options.MaxQueueDepth, 1) ||
           Stopping;
  });
  Queue.push_back(Req);
  Counters.QueueDepth = Queue.size();
  Counters.PeakQueueDepth =
      std::max(Counters.PeakQueueDepth, Counters.QueueDepth);
  Lock.unlock();
  WorkReady.notify_one();
  return Req->Future;
}

SynthResult SynthService::synthesize(const Spec &S, const Alphabet &Sigma,
                                     const SynthOptions &Opts) {
  return submit(S, Sigma, Opts).get();
}

std::vector<SynthResult>
SynthService::synthesizeAll(const std::vector<Spec> &Specs,
                            const Alphabet &Sigma,
                            const SynthOptions &Opts) {
  std::vector<ResultFuture> Futures;
  Futures.reserve(Specs.size());
  for (const Spec &S : Specs)
    Futures.push_back(submit(S, Sigma, Opts));
  std::vector<SynthResult> Out;
  Out.reserve(Specs.size());
  for (ResultFuture &F : Futures)
    Out.push_back(F.get());
  return Out;
}

ServiceStats SynthService::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  ServiceStats Copy = Counters;
  Copy.Evictions = Results.evictions();
  Copy.StagedBytes = StagedBytesTotal;
  Copy.SessionBytes = SessionBytesTotal;
  Copy.QueueDepth = Queue.size();
  return Copy;
}

void SynthService::workerMain() {
  for (;;) {
    std::shared_ptr<Request> Req;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkReady.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, and fully drained.
      Req = std::move(Queue.front());
      Queue.pop_front();
      Counters.QueueDepth = Queue.size();
    }
    SpaceReady.notify_one();
    execute(Req);
  }
}

void SynthService::execute(const std::shared_ptr<Request> &Req) {
  // Resume path first: a parked session with this request's
  // budget-invariant identity whose budgets only widened continues
  // from its parked cost level - and already carries its staged
  // artifacts, so the warm start skips staging entirely. Taking the
  // session out of the cache gives this worker sole ownership; a
  // concurrent same-session request simply runs cold.
  std::string SessionText =
      canonicalSessionText(Req->Canonical, Req->Sigma, Req->Opts);
  Fingerprint SessionKey = fingerprintText(SessionText);
  std::unique_ptr<engine::SearchSession> Session;
  bool Resumed = false;
  if (!Options.Portfolio) {
    // A portfolio race never parks (its arms' states die with the
    // race), so a portfolio service skips the resume path symmetrically.
    std::lock_guard<std::mutex> Lock(M);
    if (ParkedSession *Hit = Sessions.get(SessionKey);
        Hit && Hit->KeyText == SessionText &&
        Hit->Session->canExtendTo(Req->Opts)) {
      std::optional<ParkedSession> Taken = Sessions.take(SessionKey);
      SessionBytesTotal -= Taken->Bytes;
      Session = std::move(Taken->Session);
      Resumed = true;
      ++Counters.SessionsResumed;
    }
  }

  std::string StagedText =
      canonicalStagingText(Req->Canonical, Req->Sigma, Req->Opts);
  Fingerprint StagedKey = fingerprintText(StagedText);
  std::shared_ptr<const engine::StagedQuery> Q;
  if (Session) {
    Session->extendBudget(Req->Opts.MaxCost, Req->Opts.TimeoutSeconds);
    // Re-pin the session's own artifacts in the staged cache below.
    Q = Session->queryHandle();
  } else {
    // Staged-artifact reuse: requests that share a spec but differ in
    // sweep options (cost function, budgets, timeout) share the
    // staged universe and guide table.
    std::shared_ptr<const engine::StagedQuery> Base;
    {
      std::lock_guard<std::mutex> Lock(M);
      if (CachedStaged *Hit = Staged.get(StagedKey);
          Hit && Hit->KeyText == StagedText) {
        Base = Hit->Query;
        ++Counters.StagedHits;
      } else {
        ++Counters.StagedMisses;
      }
    }
    Q = Base ? engine::restage(*Base, Req->Opts)
             : engine::stage(Req->Canonical, Req->Sigma, Req->Opts);

    // No exact parked session matched, but a parked (or solved)
    // session whose spec this request strictly extends can donate its
    // whole validated level prefix (engine/DeltaStage.h).
    if (!Options.Portfolio)
      Session = tryDeltaGraft(Req, Q);
    if (!Options.Portfolio && !Session) {
      engine::BackendConfig Config = Options.Kernels;
      if (Options.Workers > 0)
        Config.InlineKernels = true; // The request pool owns parallelism.
      std::unique_ptr<engine::Backend> B =
          engine::createBackend(Options.Backend, Config);
      assert(B && "backend existence was checked at submit");
      Session =
          std::make_unique<engine::SearchSession>(Q, std::move(B));
    }
  }

  SynthResult R;
  uint64_t LevelsCharged = 0;
  uint64_t ArmsStarted = 0;
  uint64_t ArmsCancelled = 0;
  if (Session) {
    // Streaming + disconnect wiring: per-level progress fans out to
    // every live sink, and the park token stops the search at its
    // next poll point once every waiter has abandoned it. Both hooks
    // point into this request, so they are detached right after the
    // run - a parked session must carry no dangling pointers into a
    // dead request.
    Session->setParkToken(&Req->ParkRequest);
    Session->setProgressHook(
        [this, Req](const engine::SessionProgress &P) {
          std::vector<std::shared_ptr<ClientSink>> Fan;
          {
            std::lock_guard<std::mutex> Lock(M);
            Fan = Req->Sinks;
          }
          for (const std::shared_ptr<ClientSink> &S : Fan)
            if (S->OnProgress && !S->Gone.load(std::memory_order_relaxed))
              S->OnProgress(P);
        });
    R = Session->run();
    Session->setProgressHook(nullptr);
    Session->setParkToken(nullptr);
    LevelsCharged = R.Stats.LevelsRun;
  } else {
    // Portfolio strategy: race the equivalent sweep configurations
    // over the shared staged artifact; the work ledger charges every
    // arm's levels - cancelled arms' work was spent too.
    engine::BackendConfig Config = Options.Kernels;
    if (Options.Workers > 0)
      Config.InlineKernels = true;
    engine::PortfolioOutcome Race =
        engine::runPortfolio(Q, Options.Backend, Config);
    R = std::move(Race.Result);
    ArmsStarted = Race.Arms.size();
    for (const engine::PortfolioArmReport &Arm : Race.Arms) {
      LevelsCharged += Arm.LevelsRun;
      if (Arm.Status == SynthStatus::Cancelled)
        ++ArmsCancelled;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Searches;
    // Per-backend work ledger: cost levels executed under each
    // backend name (one name per service; kept a list so stats merge
    // naturally across services in callers).
    {
      auto It = std::find_if(
          Counters.BackendLevels.begin(), Counters.BackendLevels.end(),
          [&](const auto &E) { return E.first == Options.Backend; });
      if (It == Counters.BackendLevels.end())
        Counters.BackendLevels.emplace_back(Options.Backend,
                                            LevelsCharged);
      else
        It->second += LevelsCharged;
    }
    if (ArmsStarted > 0) {
      ++Counters.PortfolioRaces;
      Counters.PortfolioArms += ArmsStarted;
      Counters.PortfolioCancelled += ArmsCancelled;
    }
    // Compressed-store occupancy snapshot from the latest search (an
    // operator watching --serve-demo sees the current tier mix, not a
    // sum over dead stores).
    if (R.Stats.StoreCompressed) {
      Counters.StoreCompressed = true;
      Counters.StoreCompressionRatio = R.Stats.StoreCompressionRatio;
      Counters.StoreSealedRows = R.Stats.StoreSealedRows;
      Counters.StoreWindowRows = R.Stats.StoreWindowRows;
      Counters.StoreCompressedBytes = R.Stats.StoreCompressedBytes;
      for (int T = 0; T != 4; ++T)
        Counters.StoreCodecRows[T] = R.Stats.StoreCodecRows[T];
      Counters.StoreHotChunks = R.Stats.StoreHotChunks;
      Counters.StoreSpilledChunks = R.Stats.StoreSpilledChunks;
      Counters.StoreHotBytes = R.Stats.StoreHotBytes;
      Counters.StoreSpilledBytes = R.Stats.StoreSpilledBytes;
    }
    // Per-shard occupancy/overflow, aggregated across searches (the
    // skew signal an operator watches when raising --shards).
    if (R.Stats.ShardCount > 0) {
      Counters.ShardCount = R.Stats.ShardCount;
      if (Counters.ShardRows.size() < R.Stats.ShardRows.size())
        Counters.ShardRows.resize(R.Stats.ShardRows.size(), 0);
      if (Counters.ShardDropped.size() < R.Stats.ShardDropped.size())
        Counters.ShardDropped.resize(R.Stats.ShardDropped.size(), 0);
      for (size_t S = 0; S != R.Stats.ShardRows.size(); ++S)
        Counters.ShardRows[S] += R.Stats.ShardRows[S];
      for (size_t S = 0; S != R.Stats.ShardDropped.size(); ++S)
        Counters.ShardDropped[S] += R.Stats.ShardDropped[S];
    }
    // Timeout is the one wall-clock-dependent status: a re-run might
    // succeed, so replaying it from the cache would pin a transient
    // failure forever; Cancelled is a discarded race loser, not an
    // answer. Every other status is deterministic.
    if (R.Status != SynthStatus::Timeout &&
        R.Status != SynthStatus::Cancelled)
      Results.put(Req->Key, CachedResult{Req->KeyText, R});
    // Q is the freshly staged artifact on the cold path, the resumed
    // session's own staged query on the warm path (same staging text
    // either way - the session key subsumes the staging key).
    if (Q && !Q->immediate())
      putStaged(StagedKey,
                CachedStaged{std::move(StagedText), Q, Q->stagedBytes()});
    // Budget-exhausted searches park their sweep state for the next
    // budget extension; everything else dies with the session (a
    // portfolio race has no session here at all).
    if (Session && Session->state() == engine::SessionState::Parked) {
      uint64_t Bytes = Session->bytesUsed();
      if (parkSession(SessionKey, ParkedSession{std::move(SessionText),
                                                std::move(Session), Bytes}))
        // Publish "your session is parked for resume" before the
        // future resolves, so a waiter reading its sink after get()
        // never races the flag.
        for (const std::shared_ptr<ClientSink> &S : Req->Sinks)
          S->SessionParked.store(true, std::memory_order_relaxed);
    } else if (Session && R.Status == SynthStatus::Found &&
               Session->state() == engine::SessionState::Finished &&
               Session->deltaCapable()) {
      // A solved session whose backend journaled its pruning decisions
      // is kept as a *donor* for future superset edits (spec-delta
      // resynthesis). No sink flag: the client got a final answer, so
      // this entry is opportunistic cache state - like a result entry,
      // not a parked-for-resume promise the park-budget ledger tracks.
      uint64_t Bytes = Session->bytesUsed();
      parkSession(SessionKey, ParkedSession{std::move(SessionText),
                                            std::move(Session), Bytes});
    }
    // Publish "this run consumed a parked session" the same way; the
    // server's park-budget ledger drains one charge per resume.
    if (Resumed)
      for (const std::shared_ptr<ClientSink> &S : Req->Sinks)
        S->SessionResumed.store(true, std::memory_order_relaxed);
    InFlight.erase(Req->Key);
  }
  Req->Promise.set_value(std::move(R));
}

std::unique_ptr<engine::SearchSession> SynthService::tryDeltaGraft(
    const std::shared_ptr<Request> &Req,
    const std::shared_ptr<const engine::StagedQuery> &Q) {
  // Error-tolerant queries never replay (the mistake budget couples
  // every verdict to the example count); immediate ones never search.
  if (!Q || Q->immediate() || Q->mistakeBudget() != 0)
    return nullptr;

  std::string Lineage = canonicalLineageText(Req->Sigma, Req->Opts);
  std::unique_ptr<engine::SearchSession> Donor;
  {
    std::lock_guard<std::mutex> Lock(M);
    // Best donor: same lineage (alphabet + non-budget sweep options),
    // spec a proper subset of the request's, most examples - the
    // longest validated prefix to reuse. The graft re-checks all of
    // this authoritatively; the scan only selects.
    bool Have = false;
    Fingerprint BestKey;
    size_t BestCount = 0;
    Sessions.forEach([&](const Fingerprint &K, const ParkedSession &E) {
      const engine::StagedQuery &DQ = E.Session->query();
      Spec DonorSpec = canonicalSpec(DQ.spec());
      if (!engine::isSupersetEdit(DonorSpec, Req->Canonical))
        return;
      if (canonicalLineageText(DQ.alphabet(), DQ.options()) != Lineage)
        return;
      if (!Have || DonorSpec.exampleCount() > BestCount) {
        Have = true;
        BestKey = K;
        BestCount = DonorSpec.exampleCount();
      }
    });
    if (!Have)
      return nullptr;
    // Taking the entry gives this worker sole ownership of the donor,
    // exactly like the exact-resume path.
    std::optional<ParkedSession> Taken = Sessions.take(BestKey);
    SessionBytesTotal -= Taken->Bytes;
    Donor = std::move(Taken->Session);
  }

  // The widen + validate pass can be substantial; run it unlocked.
  engine::DeltaAttempt A = engine::deltaResynthesize(*Donor, Q);

  std::lock_guard<std::mutex> Lock(M);
  if (!A.Session) {
    ++Counters.DeltaDeclined;
    // A declined graft leaves the donor intact; return it to the cache
    // without counting a fresh park.
    uint64_t Bytes = Donor->bytesUsed();
    std::string Text = Donor->sessionKeyText();
    Fingerprint Key = fingerprintText(Text);
    putBudgeted(Sessions, SessionBytesTotal, Options.SessionParkCapacity,
                Options.SessionParkBytes, &Counters.SessionsExpired, Key,
                ParkedSession{std::move(Text), std::move(Donor), Bytes});
    return nullptr;
  }
  ++Counters.DeltaHits;
  Counters.DeltaColumnsAppended += A.ColumnsAppended;
  Counters.DeltaLevelsSkipped += A.LevelsSkipped;
  Counters.DeltaLevelsReplayed += A.LevelsReplayed;
  return std::move(A.Session);
}

bool SynthService::parkSession(const Fingerprint &Key,
                               ParkedSession Entry) {
  if (!putBudgeted(Sessions, SessionBytesTotal,
                   Options.SessionParkCapacity, Options.SessionParkBytes,
                   &Counters.SessionsExpired, Key, std::move(Entry)))
    return false;
  ++Counters.SessionsParked;
  return true;
}

void SynthService::putStaged(const Fingerprint &Key, CachedStaged Entry) {
  putBudgeted(Staged, StagedBytesTotal, Options.StagedCacheCapacity,
              Options.StagedCacheBytes, nullptr, Key, std::move(Entry));
}

//===----------------------------------------------------------------------===//
// Shared banner / stats text (every serving front end prints these)
//===----------------------------------------------------------------------===//

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, std::min(size_t(N), sizeof(Buf) - 1));
}

} // namespace

std::string service::serviceBanner(const ServiceOptions &Options,
                                   const SynthOptions &Defaults) {
  std::string Out;
  appendf(Out, "serving: backend %s%s, %u worker(s), %u shard(s)",
          Options.Backend.c_str(), Options.Portfolio ? " (portfolio)" : "",
          Options.Workers, Defaults.Shards ? Defaults.Shards : 1);
  if (storeCompressionEnabled(Defaults)) {
    appendf(Out, ", store compressed");
    if (!Defaults.SpillDir.empty())
      appendf(Out, "+spill (pinned %llu MiB)",
              (unsigned long long)(Defaults.PinnedStoreBytes >> 20));
  } else {
    appendf(Out, ", store raw");
  }
  appendf(Out, ", memory %llu MiB",
          (unsigned long long)(Defaults.MemoryLimitBytes >> 20));
  appendf(Out, ", session park cap %zu (%llu MiB)",
          Options.SessionParkCapacity,
          (unsigned long long)(Options.SessionParkBytes >> 20));
  return Out;
}

std::string service::serviceStatsText(const ServiceStats &St) {
  std::string Out;
  appendf(Out,
          "service: %llu submitted, %llu hits, %llu misses, "
          "%llu coalesced, %llu evictions, %llu searches\n",
          (unsigned long long)St.Submitted, (unsigned long long)St.Hits,
          (unsigned long long)St.Misses, (unsigned long long)St.Coalesced,
          (unsigned long long)St.Evictions,
          (unsigned long long)St.Searches);
  appendf(Out, "sessions: %llu parked, %llu resumed, %llu expired\n",
          (unsigned long long)St.SessionsParked,
          (unsigned long long)St.SessionsResumed,
          (unsigned long long)St.SessionsExpired);
  if (St.DeltaHits + St.DeltaDeclined > 0)
    appendf(Out,
            "delta: %llu graft(s), %llu declined, %llu column(s) "
            "appended, %llu level(s) skipped, %llu replayed\n",
            (unsigned long long)St.DeltaHits,
            (unsigned long long)St.DeltaDeclined,
            (unsigned long long)St.DeltaColumnsAppended,
            (unsigned long long)St.DeltaLevelsSkipped,
            (unsigned long long)St.DeltaLevelsReplayed);
  for (const auto &[Backend, Levels] : St.BackendLevels)
    appendf(Out, "levels: %llu cost level(s) run on backend %s\n",
            (unsigned long long)Levels, Backend.c_str());
  for (const auto &[Tenant, Requests] : St.TenantRequests)
    appendf(Out, "tenant: %s, %llu request(s)\n", Tenant.c_str(),
            (unsigned long long)Requests);
  if (St.PortfolioRaces > 0)
    appendf(Out, "portfolio: %llu race(s), %llu arm(s), %llu cancelled\n",
            (unsigned long long)St.PortfolioRaces,
            (unsigned long long)St.PortfolioArms,
            (unsigned long long)St.PortfolioCancelled);
  if (St.ShardCount > 1) {
    appendf(Out, "shards: %llu (rows per shard:",
            (unsigned long long)St.ShardCount);
    for (uint64_t Rows : St.ShardRows)
      appendf(Out, " %llu", (unsigned long long)Rows);
    appendf(Out, ")\n");
  }
  if (St.StoreCompressed) {
    appendf(Out, "info.store.compression_ratio: %.3f\n",
            St.StoreCompressionRatio);
    appendf(Out, "info.store.sealed_rows: %llu (window %llu)\n",
            (unsigned long long)St.StoreSealedRows,
            (unsigned long long)St.StoreWindowRows);
    appendf(Out,
            "info.store.codec_rows: raw %llu, zero %llu, bits %llu, "
            "words %llu\n",
            (unsigned long long)St.StoreCodecRows[0],
            (unsigned long long)St.StoreCodecRows[1],
            (unsigned long long)St.StoreCodecRows[2],
            (unsigned long long)St.StoreCodecRows[3]);
    appendf(Out, "info.store.tier_hot: %llu chunk(s), %llu bytes\n",
            (unsigned long long)St.StoreHotChunks,
            (unsigned long long)St.StoreHotBytes);
    appendf(Out, "info.store.tier_spilled: %llu chunk(s), %llu bytes\n",
            (unsigned long long)St.StoreSpilledChunks,
            (unsigned long long)St.StoreSpilledBytes);
  }
  return Out;
}
