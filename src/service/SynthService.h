//===- service/SynthService.h - Caching, coalescing synthesis service --------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-level serving layer over the search engine. A serving
/// workload sees the same or near-same specifications repeatedly (the
/// realistic case per the REI challenge corpus), and a bare
/// runSearch() pays the full staging + sweep price every time.
/// SynthService adds, in order of consultation:
///
///   1. **Normalization** — requests are canonicalized
///      (lang/Fingerprint.h), so example order never splits the cache.
///   2. **Result cache** — an LRU keyed by the 128-bit query
///      fingerprint; a hit returns the stored SynthResult bit for bit,
///      without creating a backend. Entries carry the exact canonical
///      key text and verify it on hits, so fingerprint collisions
///      degrade to misses, never to wrong answers.
///   3. **Coalescing** — concurrent submissions of one query attach to
///      a single in-flight search and share its future.
///   4. **Staged-artifact cache** — an LRU of StagedQuery keyed by the
///      staging fingerprint; requests that share a spec but differ in
///      sweep options (cost function, budgets) reuse the staged
///      universe/guide table through engine::restage().
///   5. **Session resume cache** — a byte-budgeted LRU of parked
///      search sessions (engine/Session.h) keyed by the
///      budget-invariant session fingerprint: a search that ends in
///      Timeout or NotFound keeps its sweep state, and a retry of the
///      same query with a wider MaxCost/Timeout continues from the
///      parked cost level instead of recomputing from level 1 — the
///      retry-heavy REI traffic shape made incremental.
///   6. **A bounded queue + worker pool** — submit() is asynchronous
///      (future-style handles); when the queue is at MaxQueueDepth,
///      submit blocks for space (backpressure, never silent drops).
///
/// One service instance is bound to one backend; that is what makes
/// the "a cache hit equals a cold run" guarantee exact (results are
/// deterministic per backend; stats fields such as MemoryBytes differ
/// across backends). Requests that resolve without a search - invalid
/// input, trivial specs - are answered inline on the submitting thread
/// and bypass both caches: they are cheaper to recompute than to
/// store, and keying them on the *canonical* spec would be wrong (a
/// spec invalid only through duplicate examples must not share an
/// entry with its deduplicated, valid form).
///
/// engine::synthesizeBatch() is a one-shot service; the CLI's
/// --serve-demo mode replays a workload through a long-lived one.
///
//===----------------------------------------------------------------------===//

#ifndef PARESY_SERVICE_SYNTHSERVICE_H
#define PARESY_SERVICE_SYNTHSERVICE_H

#include "engine/BackendRegistry.h"
#include "engine/Session.h"
#include "engine/Staging.h"
#include "lang/Fingerprint.h"
#include "service/LruCache.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace paresy {
namespace service {

class SynthService;

/// The streaming/abandonment handle of one waiter on one request (the
/// serving layer's per-client view; DESIGN.md Sec. 12). OnProgress is
/// fanned out after every completed cost level from the thread running
/// the search - it must be fast and must not call back into the
/// service. abandon() marks the sink Gone; when *every* waiter of an
/// in-flight request is gone, the search stops at the next poll point
/// and the session parks for a warm-started retry (never Cancelled -
/// the same client may reconnect).
struct ClientSink {
  std::function<void(const engine::SessionProgress &)> OnProgress;
  /// Set by SynthService::abandon; progress fan-out skips gone sinks.
  std::atomic<bool> Gone{false};
  /// Set (before the result future resolves) when the search parked
  /// its session for resume - the Result frame's "parked" bit.
  std::atomic<bool> SessionParked{false};
  /// Set (before the result future resolves) when the search
  /// warm-started from a parked session, consuming its LRU entry. A
  /// resumed search that runs out of budget again sets both flags.
  /// The network server's per-tenant park-budget ledger reads these
  /// to charge and drain parked holdings (serve/Admission.h).
  std::atomic<bool> SessionResumed{false};

private:
  friend class SynthService;
  std::weak_ptr<void> Owner; // The in-flight request this sink feeds.
};

/// Per-submission context of the tenant-aware entry point.
struct SubmitContext {
  /// Tenant name for the per-tenant request ledger; empty = untracked.
  std::string Tenant;
  /// Optional streaming/abandonment handle; null = a plain waiter
  /// (plain waiters pin the search: it never parks on abandonment).
  std::shared_ptr<ClientSink> Sink;
};

/// Construction-time configuration of one service instance.
struct ServiceOptions {
  /// Registry key of the backend every request runs on. A service is
  /// bound to exactly one backend (see file comment).
  std::string Backend = "cpu";

  /// Worker threads executing searches. 0 executes each miss inline on
  /// the submitting thread (fully synchronous, deterministic service).
  unsigned Workers = 0;

  /// Result-cache entries (LRU). 0 disables result caching.
  size_t ResultCacheCapacity = 1024;

  /// Staged-artifact cache entries (LRU). 0 disables staged reuse.
  size_t StagedCacheCapacity = 64;

  /// Byte budget for the staged-artifact cache (universes and guide
  /// tables pinned by cached StagedQueries, estimated by
  /// StagedQuery::stagedBytes). The entry-count bound alone would let
  /// a workload of large specs pin unbounded memory; this bound
  /// evicts LRU-first, and an artifact larger than the whole budget
  /// is simply not cached.
  uint64_t StagedCacheBytes = uint64_t(256) << 20;

  /// Pending-request bound; submit() blocks for space when the queue
  /// is full. Ignored when Workers == 0 (nothing queues).
  size_t MaxQueueDepth = 1024;

  /// Parked-session entries (LRU): searches that end in Timeout or
  /// NotFound park their full sweep state (engine/Session.h), keyed by
  /// the budget-invariant session fingerprint, and a retry with a
  /// wider MaxCost/Timeout warm-starts from the parked level instead
  /// of re-running from level 1. 0 disables parking (the pre-session
  /// behavior: every retry is a cold run).
  size_t SessionParkCapacity = 16;

  /// Byte budget for parked search state (language stores plus
  /// uniqueness sets, measured by SearchSession::bytesUsed). Evicts
  /// LRU-first; a session larger than the whole budget is not parked.
  uint64_t SessionParkBytes = uint64_t(256) << 20;

  /// Per-run backend construction knobs (e.g. kernel worker threads
  /// for a single-request service). When Workers > 0 the service
  /// forces InlineKernels, as the request pool already owns the
  /// parallelism (the synthesizeBatch idiom).
  engine::BackendConfig Kernels;

  /// Execution strategy: run every search miss as a portfolio race of
  /// result-equivalent sweep configurations on this service's backend
  /// (engine/Portfolio.h) instead of a single session. Results are
  /// identical (the arms are result-preserving); only wall-clock
  /// behaviour changes. A portfolio service keeps its result and
  /// staged caches but does not park/resume sessions - the racing
  /// arms' states die with the race, and cancelled arms are never
  /// cached.
  bool Portfolio = false;
};

/// Monotonic service counters plus current queue state. All counters
/// are totals since construction.
struct ServiceStats {
  uint64_t Submitted = 0;  ///< submit() calls.
  uint64_t Hits = 0;       ///< Served from the result cache.
  uint64_t Misses = 0;     ///< Scheduled a new search.
  uint64_t Coalesced = 0;  ///< Attached to an in-flight search.
  uint64_t Immediate = 0;  ///< Resolved without search (invalid/trivial).
  uint64_t Evictions = 0;  ///< Result-cache LRU evictions.
  uint64_t StagedHits = 0;   ///< Staged artifacts reused.
  uint64_t StagedMisses = 0; ///< Staged artifacts built.
  uint64_t StagedBytes = 0;  ///< Estimated bytes pinned by staged cache.
  uint64_t Searches = 0;   ///< Backend runs actually executed.
  uint64_t SessionsParked = 0;  ///< Sweep states kept after Timeout/NotFound.
  uint64_t SessionsResumed = 0; ///< Retries warm-started from a parked state.
  uint64_t SessionsExpired = 0; ///< Parked states evicted (count/byte budget).
  uint64_t SessionBytes = 0;    ///< Bytes pinned by parked states right now.

  /// Spec-delta resynthesis counters (engine/DeltaStage.h): requests
  /// whose spec strictly extends a parked (or solved) session's were
  /// grafted onto its widened store instead of running cold.
  uint64_t DeltaHits = 0;     ///< Edits grafted onto a parked store.
  uint64_t DeltaDeclined = 0; ///< Graft attempts that fell back cold.
  uint64_t DeltaColumnsAppended = 0; ///< Universe columns widened in.
  uint64_t DeltaLevelsSkipped = 0;   ///< Validated levels reused verbatim.
  uint64_t DeltaLevelsReplayed = 0;  ///< Levels re-run past the boundary.
  size_t QueueDepth = 0;     ///< Requests queued right now.
  size_t PeakQueueDepth = 0; ///< High-water mark of QueueDepth.

  /// Sharded-store occupancy, aggregated over every executed search
  /// (DESIGN.md Sec. 8). Vectors are sized to the largest shard count
  /// any request used; requests with fewer shards contribute to the
  /// leading entries.
  uint64_t ShardCount = 0;   ///< Shard count of the latest search.
  std::vector<uint64_t> ShardRows;    ///< Rows cached, per shard.
  std::vector<uint64_t> ShardDropped; ///< Overflow drops, per shard.

  /// Cost levels executed, accumulated per backend name (one entry
  /// for a single-backend service; portfolio races charge the sum of
  /// all arms' levels - cancelled arms included, their work was
  /// spent). The per-backend work ledger --serve-demo prints.
  std::vector<std::pair<std::string, uint64_t>> BackendLevels;

  /// Requests per tenant (tenant-aware submissions only; the network
  /// front-end's per-tenant ledger).
  std::vector<std::pair<std::string, uint64_t>> TenantRequests;

  /// Portfolio strategy counters (zero unless ServiceOptions::
  /// Portfolio): races run, arms started, and arms that lost and were
  /// cancelled mid-sweep.
  uint64_t PortfolioRaces = 0;
  uint64_t PortfolioArms = 0;
  uint64_t PortfolioCancelled = 0;

  /// Compressed + tiered store occupancy (DESIGN.md Sec. 11): a
  /// snapshot of the latest executed search's store, all zero while
  /// the service runs raw stores. Byte counters report *resident*
  /// bytes - compressed sealed rows plus the pinned uncompressed
  /// window - not the logical uncompressed footprint.
  bool StoreCompressed = false;        ///< Latest search compressed rows.
  double StoreCompressionRatio = 0;    ///< Logical / compressed bytes.
  uint64_t StoreSealedRows = 0;        ///< Rows in sealed (compressed) chunks.
  uint64_t StoreWindowRows = 0;        ///< Rows still in the open window.
  uint64_t StoreCompressedBytes = 0;   ///< Sealed chunk bytes (all tiers).
  uint64_t StoreCodecRows[4] = {0, 0, 0, 0}; ///< Rows per codec tag.
  uint64_t StoreHotChunks = 0;         ///< Sealed chunks resident in RAM.
  uint64_t StoreSpilledChunks = 0;     ///< Sealed chunks on disk only.
  uint64_t StoreHotBytes = 0;          ///< Bytes of hot sealed chunks.
  uint64_t StoreSpilledBytes = 0;      ///< Bytes of spilled sealed chunks.
};

/// A caching, coalescing, asynchronous synthesis service over one
/// backend. All public members are thread-safe.
class SynthService {
public:
  using ResultFuture = std::shared_future<SynthResult>;

  explicit SynthService(ServiceOptions Options = {});

  /// Drains the queue (every returned future completes), then joins
  /// the workers.
  ~SynthService();

  SynthService(const SynthService &) = delete;
  SynthService &operator=(const SynthService &) = delete;

  const ServiceOptions &options() const { return Options; }

  /// Submits one request. Returns a future that yields exactly what a
  /// cold engine::runSearch of the same request on this service's
  /// backend would (see file comment). Blocks only when the request
  /// queue is full.
  ResultFuture submit(const Spec &S, const Alphabet &Sigma,
                      const SynthOptions &Opts = {});

  /// Tenant-aware, streaming-capable submit (the network front-end's
  /// entry point): \p Ctx names the tenant for the per-tenant ledger
  /// and may carry a ClientSink receiving per-level progress. Sinks
  /// attach to coalesced requests too - every waiter of one in-flight
  /// search streams the same levels.
  ResultFuture submit(const Spec &S, const Alphabet &Sigma,
                      const SynthOptions &Opts, const SubmitContext &Ctx);

  /// Marks \p Sink gone (its client disconnected). When every waiter
  /// of the request is gone, the in-flight search stops at its next
  /// poll point and *parks* its session (engine/Session.h park token),
  /// so a reconnect submitting the same query with an equal-or-wider
  /// budget warm-starts instead of recomputing. Safe to call at any
  /// time, including after the request completed.
  void abandon(const std::shared_ptr<ClientSink> &Sink);

  /// Blocking convenience: submit(...).get().
  SynthResult synthesize(const Spec &S, const Alphabet &Sigma,
                         const SynthOptions &Opts = {});

  /// Submits every spec, then collects results in input order.
  std::vector<SynthResult>
  synthesizeAll(const std::vector<Spec> &Specs, const Alphabet &Sigma,
                const SynthOptions &Opts = {});

  /// A consistent snapshot of the counters.
  ServiceStats stats() const;

private:
  struct Request {
    Fingerprint Key;
    std::string KeyText;
    Spec Canonical;
    Alphabet Sigma;
    SynthOptions Opts;
    std::promise<SynthResult> Promise;
    ResultFuture Future;
    /// Streaming waiters (guarded by the service mutex).
    std::vector<std::shared_ptr<ClientSink>> Sinks;
    /// A future-only waiter exists; the search never parks on
    /// abandonment while one does.
    bool HasPlainWaiter = false;
    /// The session park token (engine/Session.h): set once every
    /// sink is gone and no plain waiter remains.
    std::atomic<bool> ParkRequest{false};
  };
  struct CachedResult {
    std::string KeyText; // Exact key, verified on every hit.
    SynthResult Result;
  };
  struct CachedStaged {
    std::string KeyText;
    std::shared_ptr<const engine::StagedQuery> Query;
    uint64_t Bytes = 0;
  };
  struct ParkedSession {
    std::string KeyText; // Exact session key, verified on every hit.
    std::unique_ptr<engine::SearchSession> Session;
    uint64_t Bytes = 0;
  };

  static ResultFuture readyFuture(SynthResult R);
  void workerMain();
  /// Stages (or reuses), runs, caches and publishes one request.
  void execute(const std::shared_ptr<Request> &Req);
  /// Inserts a staged artifact under the count and byte budgets,
  /// evicting LRU entries as needed. Caller holds the lock.
  void putStaged(const Fingerprint &Key, CachedStaged Entry);
  /// Parks a session under the count and byte budgets (evictions count
  /// as SessionsExpired). Caller holds the lock. True iff stored.
  bool parkSession(const Fingerprint &Key, ParkedSession Entry);
  /// Spec-delta resynthesis (engine/DeltaStage.h): scans the parked
  /// sessions for the best donor whose spec \p Req strictly extends
  /// (same lineage, most examples), takes it, and attempts the graft
  /// outside the lock. Returns the grafted session ready to run, or
  /// null (no donor, or the graft declined - the donor is then
  /// re-parked untouched). Takes its own locks.
  std::unique_ptr<engine::SearchSession>
  tryDeltaGraft(const std::shared_ptr<Request> &Req,
                const std::shared_ptr<const engine::StagedQuery> &Q);
  /// Attaches \p Ctx's waiter to \p Req. Caller holds the lock.
  void attachWaiter(Request &Req, const std::shared_ptr<Request> &Owner,
                    const SubmitContext &Ctx);
  /// Bumps the per-tenant ledger. Caller holds the lock.
  void bumpTenantLocked(const std::string &Tenant);

  ServiceOptions Options;

  mutable std::mutex M;
  std::condition_variable WorkReady;  // Queue non-empty or stopping.
  std::condition_variable SpaceReady; // Queue below MaxQueueDepth.
  std::deque<std::shared_ptr<Request>> Queue;
  std::unordered_map<Fingerprint, std::shared_ptr<Request>, FingerprintHash>
      InFlight;
  LruCache<Fingerprint, CachedResult, FingerprintHash> Results;
  LruCache<Fingerprint, CachedStaged, FingerprintHash> Staged;
  LruCache<Fingerprint, ParkedSession, FingerprintHash> Sessions;
  uint64_t StagedBytesTotal = 0;
  uint64_t SessionBytesTotal = 0;
  ServiceStats Counters;
  bool Stopping = false;

  std::vector<std::thread> Threads; // Last member: joins before the
                                    // state above is destroyed.
};

/// One self-describing configuration banner shared by every serving
/// front end (--serve, --serve-demo, the HelloOk frame): backend,
/// strategy, workers, shards, store tiering, park budgets.
std::string serviceBanner(const ServiceOptions &Options,
                          const SynthOptions &Defaults);

/// The service counters as the canonical multi-line stats text the
/// CLI prints and the server returns in StatsReply frames: cache and
/// session counters, the per-backend level ledger, portfolio and
/// per-tenant lines, shard occupancy, and the store-tier block.
std::string serviceStatsText(const ServiceStats &St);

} // namespace service
} // namespace paresy

#endif // PARESY_SERVICE_SYNTHSERVICE_H
