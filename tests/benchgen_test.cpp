//===- tests/benchgen_test.cpp - Benchmark generator and suite tests ----------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "benchgen/AlphaSuite.h"
#include "benchgen/Generators.h"

#include "lang/Universe.h"
#include "regex/Matcher.h"
#include "regex/Regex.h"

#include <gtest/gtest.h>

#include <set>

using namespace paresy;
using namespace paresy::benchgen;

//===----------------------------------------------------------------------===//
// countStringsUpTo
//===----------------------------------------------------------------------===//

TEST(Generators, CountStrings) {
  EXPECT_EQ(countStringsUpTo(2, 0), 1u);
  EXPECT_EQ(countStringsUpTo(2, 3), 1u + 2 + 4 + 8);
  EXPECT_EQ(countStringsUpTo(3, 2), 1u + 3 + 9);
  EXPECT_EQ(countStringsUpTo(1, 5), 6u);
  EXPECT_EQ(countStringsUpTo(0, 9), 1u);
  EXPECT_EQ(countStringsUpTo(2, 63), UINT64_MAX); // Saturates.
}

//===----------------------------------------------------------------------===//
// Generator properties (both types)
//===----------------------------------------------------------------------===//

struct GenCase {
  BenchType Type;
  uint64_t Seed;
};

class GeneratorProperties : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperties, SatisfiesDeclaredConstraints) {
  GenParams Params;
  Params.MaxLen = 5;
  Params.NumPos = 8;
  Params.NumNeg = 7;
  Params.Seed = GetParam().Seed;
  GeneratedBenchmark B;
  std::string Error;
  ASSERT_TRUE(generate(GetParam().Type, Params, B, &Error)) << Error;

  EXPECT_EQ(B.Examples.Pos.size(), 8u);
  EXPECT_EQ(B.Examples.Neg.size(), 7u);
  // Disjoint, duplicate-free, within the length bound and alphabet.
  EXPECT_TRUE(B.Examples.validate(Params.Sigma, &Error)) << Error;
  for (const std::string &W : B.Examples.Pos)
    EXPECT_LE(W.size(), 5u);
  for (const std::string &W : B.Examples.Neg)
    EXPECT_LE(W.size(), 5u);
}

TEST_P(GeneratorProperties, DeterministicInSeed) {
  GenParams Params;
  Params.Seed = GetParam().Seed;
  GeneratedBenchmark A, B;
  std::string Error;
  ASSERT_TRUE(generate(GetParam().Type, Params, A, &Error));
  ASSERT_TRUE(generate(GetParam().Type, Params, B, &Error));
  EXPECT_EQ(A.Examples.Pos, B.Examples.Pos);
  EXPECT_EQ(A.Examples.Neg, B.Examples.Neg);
  EXPECT_EQ(A.Name, B.Name);

  GenParams Other = Params;
  Other.Seed = Params.Seed + 1;
  GeneratedBenchmark C;
  ASSERT_TRUE(generate(GetParam().Type, Other, C, &Error));
  EXPECT_TRUE(A.Examples.Pos != C.Examples.Pos ||
              A.Examples.Neg != C.Examples.Neg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorProperties,
    ::testing::Values(GenCase{BenchType::Type1, 1},
                      GenCase{BenchType::Type1, 2},
                      GenCase{BenchType::Type1, 3},
                      GenCase{BenchType::Type2, 1},
                      GenCase{BenchType::Type2, 2},
                      GenCase{BenchType::Type2, 3}));

TEST(Generators, NamesEncodeParameters) {
  GenParams Params;
  Params.MaxLen = 7;
  Params.NumPos = 10;
  Params.NumNeg = 12;
  Params.Seed = 99;
  GeneratedBenchmark B;
  std::string Error;
  ASSERT_TRUE(generate(BenchType::Type1, Params, B, &Error));
  EXPECT_EQ(B.Name, "T1-le7-p10-n12-s99");
}

TEST(Generators, InfeasibleParametersRejected) {
  GenParams Params;
  Params.MaxLen = 1; // Only {eps, 0, 1}: 3 strings.
  Params.NumPos = 3;
  Params.NumNeg = 3;
  GeneratedBenchmark B;
  std::string Error;
  EXPECT_FALSE(generate(BenchType::Type1, Params, B, &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(generate(BenchType::Type2, Params, B, &Error));
}

TEST(Generators, ExhaustiveParametersStillWork) {
  // Exactly all strings of length <= 2: 7 strings split 4/3.
  GenParams Params;
  Params.MaxLen = 2;
  Params.NumPos = 4;
  Params.NumNeg = 3;
  GeneratedBenchmark B;
  std::string Error;
  ASSERT_TRUE(generate(BenchType::Type1, Params, B, &Error)) << Error;
  std::set<std::string> All(B.Examples.Pos.begin(), B.Examples.Pos.end());
  All.insert(B.Examples.Neg.begin(), B.Examples.Neg.end());
  EXPECT_EQ(All.size(), 7u);
  ASSERT_TRUE(generate(BenchType::Type2, Params, B, &Error)) << Error;
}

TEST(Generators, Type2FavoursShortStrings) {
  // Over many seeds, Type 2 must produce epsilon much more often than
  // Type 1 (the paper's motivation for Type 2, Sec. 4.3).
  GenParams Params;
  Params.MaxLen = 6;
  Params.NumPos = 6;
  Params.NumNeg = 6;
  int Type1Eps = 0, Type2Eps = 0;
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    Params.Seed = Seed;
    GeneratedBenchmark B;
    std::string Error;
    ASSERT_TRUE(generate(BenchType::Type1, Params, B, &Error));
    for (const auto &Side : {B.Examples.Pos, B.Examples.Neg})
      for (const std::string &W : Side)
        if (W.empty())
          ++Type1Eps;
    ASSERT_TRUE(generate(BenchType::Type2, Params, B, &Error));
    for (const auto &Side : {B.Examples.Pos, B.Examples.Neg})
      for (const std::string &W : Side)
        if (W.empty())
          ++Type2Eps;
  }
  EXPECT_GT(Type2Eps, Type1Eps);
  EXPECT_GT(Type2Eps, 20); // Epsilon in most Type 2 instances.
}

TEST(Generators, Type1FavoursLongStrings) {
  // Long strings dominate Sigma^{<=le}, so Type 1 averages close to
  // the maximum length.
  GenParams Params;
  Params.MaxLen = 6;
  Params.NumPos = 6;
  Params.NumNeg = 6;
  size_t TotalLen = 0, Count = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Params.Seed = Seed;
    GeneratedBenchmark B;
    std::string Error;
    ASSERT_TRUE(generate(BenchType::Type1, Params, B, &Error));
    for (const auto &Side : {B.Examples.Pos, B.Examples.Neg})
      for (const std::string &W : Side) {
        TotalLen += W.size();
        ++Count;
      }
  }
  EXPECT_GT(double(TotalLen) / double(Count), 4.5);
}

//===----------------------------------------------------------------------===//
// The 25-instance classroom suite
//===----------------------------------------------------------------------===//

TEST(AlphaSuite, HasTwentyFiveNamedInstances) {
  const auto &Suite = alphaRegexSuite();
  ASSERT_EQ(Suite.size(), 25u);
  EXPECT_STREQ(Suite.front().Name, "no1");
  EXPECT_STREQ(Suite.back().Name, "no25");
  std::set<std::string> Names;
  for (const SuiteInstance &Inst : Suite)
    Names.insert(Inst.Name);
  EXPECT_EQ(Names.size(), 25u);
}

class AlphaSuiteInstances : public ::testing::TestWithParam<int> {};

TEST_P(AlphaSuiteInstances, ExamplesAreValid) {
  const SuiteInstance &Inst = alphaRegexSuite()[size_t(GetParam())];
  std::string Error;
  EXPECT_TRUE(Inst.Examples.validate(Alphabet::of("01"), &Error))
      << Inst.Name << ": " << Error;
  EXPECT_GE(Inst.Examples.Pos.size(), 4u) << Inst.Name;
  EXPECT_GE(Inst.Examples.Neg.size(), 4u) << Inst.Name;
  // AlphaRegex cannot handle epsilon examples; the suite avoids them.
  for (const auto &Side : {Inst.Examples.Pos, Inst.Examples.Neg})
    for (const std::string &W : Side)
      EXPECT_FALSE(W.empty()) << Inst.Name;
}

TEST_P(AlphaSuiteInstances, TargetSatisfiesExamples) {
  const SuiteInstance &Inst = alphaRegexSuite()[size_t(GetParam())];
  RegexManager M;
  ParseResult P = parseRegex(M, Inst.Target);
  ASSERT_TRUE(P) << Inst.Name << ": " << P.Error;
  // Check with both engines: the target is the documentation of the
  // intended concept, so it must classify every example correctly.
  EXPECT_TRUE(satisfiesExamples(M, P.Re, Inst.Examples.Pos,
                                Inst.Examples.Neg))
      << Inst.Name << " target " << Inst.Target;
  NfaMatcher N(P.Re);
  for (const std::string &W : Inst.Examples.Pos)
    EXPECT_TRUE(N.matches(W)) << Inst.Name << " on " << W;
  for (const std::string &W : Inst.Examples.Neg)
    EXPECT_FALSE(N.matches(W)) << Inst.Name << " on " << W;
}

INSTANTIATE_TEST_SUITE_P(All, AlphaSuiteInstances,
                         ::testing::Range(0, 25));

TEST(AlphaSuite, No6AndNo9NeedWideCs) {
  // The Table 2 footnote: no6 needs 128-bit and no9 needs >128-bit
  // characteristic sequences (the WarpCore limitation regime).
  const auto &Suite = alphaRegexSuite();
  Universe U6(Suite[5].Examples);
  EXPECT_GT(U6.size(), 64u) << "no6";
  Universe U9(Suite[8].Examples);
  EXPECT_GT(U9.size(), 64u) << "no9";
}
