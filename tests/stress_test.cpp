//===- tests/stress_test.cpp - Cross-engine randomized stress ------------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Deterministic fuzz loop over the whole stack: draw a random target
/// expression, sample positive examples from its language and negative
/// examples from its complement (via the DFA counting sampler), then
/// require of the synthesizer that it (1) finds a solution, (2) the
/// solution is precise, and (3) costs no more than the generating
/// target - a minimality upper bound that holds for *every* run, not
/// just the small instances the exhaustive oracle can afford.
///
//===----------------------------------------------------------------------===//

#include "core/Synthesizer.h"
#include "gpusim/GpuSynthesizer.h"
#include "regex/Dfa.h"
#include "regex/Matcher.h"
#include "service/SynthService.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace paresy;

namespace {

const std::vector<char> Binary = {'0', '1'};

const Regex *randomRegex(RegexManager &M, Rng &R, int Budget) {
  if (Budget <= 1)
    return R.chance(0.5) ? M.literal('0') : M.literal('1');
  switch (R.below(5)) {
  case 0:
    return M.question(randomRegex(M, R, Budget - 1));
  case 1:
    return M.star(randomRegex(M, R, Budget - 1));
  case 2: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.concat(randomRegex(M, R, Left),
                    randomRegex(M, R, Budget - Left));
  }
  default: {
    int Left = 1 + int(R.below(uint64_t(Budget - 1)));
    return M.alt(randomRegex(M, R, Left),
                 randomRegex(M, R, Budget - Left));
  }
  }
}

/// Draws up to \p Want distinct strings of length <= MaxLen from A's
/// language, using the per-length counting sampler.
std::vector<std::string> sampleLanguage(const Dfa &A, unsigned MaxLen,
                                        unsigned Want, Rng &R) {
  std::set<std::string> Out;
  unsigned Attempts = 0;
  while (Out.size() < Want && Attempts < Want * 20) {
    ++Attempts;
    unsigned Len = unsigned(R.below(MaxLen + 1));
    std::string W;
    if (A.countAccepted(Len) > 0 && A.sampleAccepted(Len, R, W))
      Out.insert(W);
  }
  return std::vector<std::string>(Out.begin(), Out.end());
}

} // namespace

class SynthesisStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SynthesisStress, SolutionsAreSoundAndBoundedByTheTarget) {
  RegexManager M;
  Rng R(GetParam() * 6364136223846793005ULL + 1);
  for (int Round = 0; Round != 4; ++Round) {
    const Regex *Target = randomRegex(M, R, 7);
    Dfa A = Dfa::fromRegex(M, Target, Binary);
    Dfa NotA = A.complement();

    std::vector<std::string> Pos = sampleLanguage(A, 5, 4, R);
    std::vector<std::string> Neg = sampleLanguage(NotA, 5, 4, R);
    if (Pos.empty() || Neg.empty())
      continue; // Trivial or total language; nothing to force.

    Spec S(Pos, Neg);
    SCOPED_TRACE("target " + toString(Target));

    SynthOptions Opts;
    Opts.TimeoutSeconds = 30;
    SynthResult Result = synthesize(S, Alphabet::of("01"), Opts);
    if (Result.Status == SynthStatus::Timeout)
      continue;
    ASSERT_TRUE(Result.found()) << statusName(Result.Status);

    // (2) precision, via the independent matcher.
    ParseResult Parsed = parseRegex(M, Result.Regex);
    ASSERT_TRUE(Parsed) << Result.Regex;
    EXPECT_TRUE(satisfiesExamples(M, Parsed.Re, Pos, Neg))
        << Result.Regex;

    // (3) minimality upper bound: the target satisfies the spec by
    // construction, so the minimum can never exceed its cost.
    EXPECT_LE(Result.Cost, Opts.Cost.of(Target))
        << "result " << Result.Regex << " beats no target";

    // And the GPU-style engine agrees bit for bit.
    gpusim::GpuSynthResult Gpu =
        gpusim::synthesizeGpu(S, Alphabet::of("01"), Opts);
    ASSERT_TRUE(Gpu.found());
    EXPECT_EQ(Gpu.Result.Regex, Result.Regex);
    EXPECT_EQ(Gpu.Result.Stats.CandidatesGenerated,
              Result.Stats.CandidatesGenerated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisStress,
                         ::testing::Range<uint64_t>(1, 11));

//===----------------------------------------------------------------------===//
// Service over a sharded store, under concurrent identical requests
//===----------------------------------------------------------------------===//

TEST(ServiceShardStress, ConcurrentIdenticalRequestsOnShardedStore) {
  // Many threads hammer one service with the *same* query running on
  // a 3-shard store: the requests must coalesce/hit rather than fan
  // out into independent searches, every caller must receive the
  // byte-identical result, and the per-shard occupancy aggregation
  // must stay consistent under the contention.
  Spec S({"10", "101", "100", "1010", "1011", "1000", "1001"},
         {"", "0", "1", "00", "11", "010"});
  Alphabet Sigma = Alphabet::of("01");
  SynthOptions Opts;
  Opts.Shards = 3;
  SynthResult Ref = synthesize(S, Sigma, Opts);
  ASSERT_TRUE(Ref.found());

  service::ServiceOptions SvcOpts;
  SvcOpts.Backend = "cpu-parallel";
  SvcOpts.Workers = 4;
  service::SynthService Service(std::move(SvcOpts));

  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 16;
  std::vector<std::vector<SynthResult>> Got(Threads);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      for (unsigned I = 0; I != PerThread; ++I)
        Got[T].push_back(Service.synthesize(S, Sigma, Opts));
    });
  for (std::thread &T : Pool)
    T.join();

  for (unsigned T = 0; T != Threads; ++T)
    for (const SynthResult &R : Got[T]) {
      EXPECT_EQ(Ref.Regex, R.Regex);
      EXPECT_EQ(Ref.Cost, R.Cost);
      EXPECT_EQ(Ref.Stats.CandidatesGenerated,
                R.Stats.CandidatesGenerated);
      EXPECT_EQ(Ref.Stats.UniqueLanguages, R.Stats.UniqueLanguages);
    }

  service::ServiceStats St = Service.stats();
  EXPECT_EQ(St.Submitted, uint64_t(Threads) * PerThread);
  // Identical requests coalesce or hit; only a handful of real
  // searches may run (one per coalescing window).
  EXPECT_GE(St.Hits + St.Coalesced + 1, uint64_t(Threads) * PerThread)
      << "hits " << St.Hits << ", coalesced " << St.Coalesced
      << ", searches " << St.Searches;
  EXPECT_EQ(St.ShardCount, 3u);
  ASSERT_EQ(St.ShardRows.size(), 3u);
  uint64_t Rows = 0;
  for (uint64_t R : St.ShardRows)
    Rows += R;
  // Every executed search cached the same store contents.
  EXPECT_EQ(Rows, St.Searches * Ref.Stats.CacheEntries);
}
