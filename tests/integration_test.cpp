//===- tests/integration_test.cpp - Cross-module end-to-end tests -------------===//
//
// Part of the Paresy reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end flows spanning every library: spec file -> synthesis ->
/// verification -> semantic cross-checks against the intended target
/// languages; the classroom suite through both engines; and the
/// language-level (not just example-level) validation of results on
/// bounded-length string spaces.
///
//===----------------------------------------------------------------------===//

#include "baseline/AlphaRegex.h"
#include "benchgen/AlphaSuite.h"
#include "core/Synthesizer.h"
#include "gpusim/GpuSynthesizer.h"
#include "lang/Universe.h"
#include "regex/Equivalence.h"
#include "regex/Matcher.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace paresy;

namespace {

/// All strings over {0,1} of length <= MaxLen.
std::vector<std::string> allBinaryStrings(unsigned MaxLen) {
  std::vector<std::string> Out{""};
  size_t Begin = 0;
  for (unsigned Len = 1; Len <= MaxLen; ++Len) {
    size_t End = Out.size();
    for (size_t I = Begin; I != End; ++I) {
      Out.push_back(Out[I] + "0");
      Out.push_back(Out[I] + "1");
    }
    Begin = End;
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec file round trip through synthesis
//===----------------------------------------------------------------------===//

TEST(Integration, SpecFileToSynthesis) {
  std::string Path = ::testing::TempDir() + "/paresy_intro.spec";
  {
    Spec S({"10", "101", "100", "1010", "1011", "1000", "1001"},
           {"", "0", "1", "00", "11", "010"});
    std::FILE *File = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(File, nullptr);
    std::string Text = "# the paper's introductory example\n" + S.toText();
    std::fwrite(Text.data(), 1, Text.size(), File);
    std::fclose(File);
  }
  Spec Loaded;
  std::string Error;
  ASSERT_TRUE(readSpecFile(Path, Loaded, &Error)) << Error;
  EXPECT_EQ(Loaded.Pos.size(), 7u);
  EXPECT_EQ(Loaded.Neg.size(), 6u);

  Alphabet Sigma;
  ASSERT_TRUE(inferAlphabet(Loaded, Sigma, &Error)) << Error;
  EXPECT_EQ(Sigma.symbols(), "01");

  SynthOptions Opts;
  SynthResult R = synthesize(Loaded, Sigma, Opts);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Cost, 8u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Language-level agreement with the intended concept
//===----------------------------------------------------------------------===//

TEST(Integration, IntroExampleGeneralisesLikeTheTarget) {
  // The inferred expression must agree with 10(0+1)* not merely on
  // the examples but as a *language* - the "natural generalisation"
  // the paper motivates in the introduction. Decided exactly with the
  // derivative-bisimulation equivalence checker.
  Spec S({"10", "101", "100", "1010", "1011", "1000", "1001"},
         {"", "0", "1", "00", "11", "010"});
  SynthOptions Opts;
  SynthResult R = synthesize(S, Alphabet::of("01"), Opts);
  ASSERT_TRUE(R.found());

  RegexManager M;
  const Regex *Inferred = parseRegex(M, R.Regex).Re;
  const Regex *Target = parseRegex(M, "10(0+1)*").Re;
  ASSERT_NE(Inferred, nullptr);
  EquivalenceResult Equiv =
      checkEquivalent(M, Inferred, Target, {'0', '1'});
  EXPECT_TRUE(Equiv.Equivalent)
      << R.Regex << " differs from 10(0+1)* on '" << Equiv.Witness
      << "'";
  // Sanity for the bounded-check helper too.
  DerivativeMatcher D(M);
  for (const std::string &W : allBinaryStrings(4))
    EXPECT_EQ(D.matches(Inferred, W), D.matches(Target, W)) << W;
}

//===----------------------------------------------------------------------===//
// The classroom suite end to end (tractable instances)
//===----------------------------------------------------------------------===//

class SuiteSynthesis : public ::testing::TestWithParam<int> {};

TEST_P(SuiteSynthesis, ParesySolvesAndVerifies) {
  const benchgen::SuiteInstance &Inst =
      benchgen::alphaRegexSuite()[size_t(GetParam())];
  SynthOptions Opts;
  Opts.Cost = CostFn(20, 20, 20, 5, 30);
  Opts.TimeoutSeconds = 30;
  SynthResult R = synthesize(Inst.Examples, Alphabet::of("01"), Opts);
  if (R.Status == SynthStatus::Timeout)
    GTEST_SKIP() << Inst.Name << " timed out (bench territory)";
  ASSERT_TRUE(R.found()) << Inst.Name << ": " << statusName(R.Status);

  RegexManager M;
  ParseResult P = parseRegex(M, R.Regex);
  ASSERT_TRUE(P) << R.Regex;
  EXPECT_TRUE(satisfiesExamples(M, P.Re, Inst.Examples.Pos,
                                Inst.Examples.Neg))
      << Inst.Name << " -> " << R.Regex;

  // Minimality relative to the documented target: the synthesized
  // expression can never cost more than the hand-written one.
  const Regex *Target = parseRegex(M, Inst.Target).Re;
  ASSERT_NE(Target, nullptr);
  EXPECT_LE(R.Cost, Opts.Cost.of(Target))
      << Inst.Name << ": " << R.Regex << " vs target " << Inst.Target;
}

// The lighter 15 instances; heavyweights run in bench_table2.
INSTANTIATE_TEST_SUITE_P(Light, SuiteSynthesis,
                         ::testing::Values(0, 1, 3, 7, 10, 11, 14, 15,
                                           17, 18, 19, 22, 23));

//===----------------------------------------------------------------------===//
// Engine agreement on the suite
//===----------------------------------------------------------------------===//

TEST(Integration, AllThreeEnginesAgreeOnSimpleInstance) {
  const benchgen::SuiteInstance &No19 =
      benchgen::alphaRegexSuite()[18]; // 1+ (strings of 1s).
  CostFn Cost(20, 20, 20, 5, 30);

  SynthOptions POpts;
  POpts.Cost = Cost;
  SynthResult Cpu = synthesize(No19.Examples, Alphabet::of("01"), POpts);

  gpusim::GpuSynthResult Gpu =
      gpusim::synthesizeGpu(No19.Examples, Alphabet::of("01"), POpts);

  baseline::AlphaRegexOptions AOpts;
  AOpts.Cost = Cost;
  baseline::AlphaRegexResult Alpha = baseline::alphaRegexSynthesize(
      No19.Examples, Alphabet::of("01"), AOpts);

  ASSERT_TRUE(Cpu.found());
  ASSERT_TRUE(Gpu.found());
  ASSERT_TRUE(Alpha.found());
  EXPECT_EQ(Cpu.Regex, Gpu.Result.Regex);
  EXPECT_EQ(Cpu.Cost, Gpu.Result.Cost);
  EXPECT_EQ(Cpu.Cost, Alpha.Cost) << "cpu: " << Cpu.Regex
                                  << ", alpha: " << Alpha.Regex;
}

//===----------------------------------------------------------------------===//
// Wide characteristic sequences end to end (the no6 regime)
//===----------------------------------------------------------------------===//

TEST(Integration, MultiWordCsSynthesisWorks) {
  // no6's universe exceeds 64 words; the paper's GPU rejected it
  // (WarpCore key width). Both our engines must handle multi-word CSs
  // with identical results.
  const benchgen::SuiteInstance &No6 = benchgen::alphaRegexSuite()[5];
  Universe U(No6.Examples);
  ASSERT_GT(U.size(), 64u);

  SynthOptions Opts;
  Opts.Cost = CostFn(20, 20, 20, 5, 30);
  Opts.TimeoutSeconds = 60;
  SynthResult Cpu = synthesize(No6.Examples, Alphabet::of("01"), Opts);
  if (Cpu.Status == SynthStatus::Timeout)
    GTEST_SKIP() << "no6 timed out on this machine";
  ASSERT_TRUE(Cpu.found());
  gpusim::GpuSynthResult Gpu =
      gpusim::synthesizeGpu(No6.Examples, Alphabet::of("01"), Opts);
  ASSERT_TRUE(Gpu.found());
  EXPECT_EQ(Cpu.Regex, Gpu.Result.Regex);
  EXPECT_EQ(Cpu.Stats.CsWords, 2u);
}
